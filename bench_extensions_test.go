package glitchsim_test

import (
	"strings"
	"testing"

	"glitchsim"
	"glitchsim/internal/balance"
	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/internal/retime"
	"glitchsim/netlist"
)

// retimeGraph builds the retiming graph of a netlist with one pipeline
// stage, shared by the retiming benchmarks.
func retimeGraph(n *netlist.Netlist) *retime.Graph {
	return retime.FromNetlist(n, delay.Unit(), 1)
}

// BenchmarkBalanceStudy measures the delay-balancing extension: the
// §4.2 "1 + L/F" limit verified by construction, with buffer overhead.
func BenchmarkBalanceStudy(b *testing.B) {
	var rows []glitchsim.BalanceRow
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.BalanceStudy(200, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Circuit == "dirdet8" {
			b.ReportMetric(r.PredictedFactor, "predicted_factor")
			b.ReportMetric(r.CoreFactor, "core_factor")
			b.ReportMetric(float64(r.Buffers), "buffers")
		}
	}
}

// BenchmarkAdderStudy compares adder architectures for glitching.
func BenchmarkAdderStudy(b *testing.B) {
	var rows []glitchsim.AdderRow
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.AdderStudy(16, 500, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.LOverF(), strings.ReplaceAll(r.Arch, "-", "_")+"_L/F")
	}
}

// BenchmarkCorrelationStudy quantifies the §4.2 correlation-decay claim.
func BenchmarkCorrelationStudy(b *testing.B) {
	var rows []glitchsim.CorrelationRow
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.CorrelationStudy(2000, 99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].LowBitAutocorr, "input_autocorr")
	b.ReportMetric(rows[1].LowBitAutocorr, "after_absdiff_autocorr")
}

// BenchmarkMultiplierStudy extends Table 1 with the Booth multiplier.
func BenchmarkMultiplierStudy(b *testing.B) {
	var rows []glitchsim.AdderRow
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		rows, err = glitchsim.MultiplierStudy(8, 500, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.LOverF(), r.Arch+"_L/F")
	}
}

// BenchmarkEstimatorComparison runs the three-way activity estimator
// ablation: zero-delay vs density propagation vs event-driven truth.
func BenchmarkEstimatorComparison(b *testing.B) {
	var res glitchsim.EstimatorComparison
	for i := 0; i < b.N; i++ {
		var err error
		//lint:ignore SA1019 deprecated wrappers keep golden coverage
		res, err = glitchsim.CompareEstimators(16, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ZeroDelay, "zero_delay_per_cycle")
	b.ReportMetric(res.Density, "density_per_cycle")
	b.ReportMetric(res.Measured, "measured_per_cycle")
}

// BenchmarkRetimeWDOracle measures the O(V^3) W/D-matrix path on a
// mid-size circuit (the FEAS production path is benchmarked separately).
func BenchmarkRetimeWDOracle(b *testing.B) {
	n := circuits.NewRCA(16, circuits.Cells)
	g := retimeGraph(n)
	b.ResetTimer()
	var c int
	for i := 0; i < b.N; i++ {
		c, _ = g.MinPeriodWD()
	}
	b.ReportMetric(float64(c), "min_period")
}

// BenchmarkBalancePad measures the balancing transform itself on the
// direction detector.
func BenchmarkBalancePad(b *testing.B) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	b.ResetTimer()
	var buffers int
	for i := 0; i < b.N; i++ {
		res, err := balance.Pad(n, delay.Unit(), balance.Options{})
		if err != nil {
			b.Fatal(err)
		}
		buffers = res.BuffersInserted
	}
	b.ReportMetric(float64(buffers), "buffers")
}

// BenchmarkVerilogRoundTrip measures Verilog export+import of the 16x16
// Wallace multiplier.
func BenchmarkVerilogRoundTrip(b *testing.B) {
	n := circuits.NewWallaceMultiplier(16, circuits.Cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := glitchsim.ExportVerilog(&sb, n); err != nil {
			b.Fatal(err)
		}
		back, err := glitchsim.ImportVerilog(strings.NewReader(sb.String()))
		if err != nil {
			b.Fatal(err)
		}
		if back.NumCells() != n.NumCells() {
			b.Fatal("cell count changed")
		}
	}
}
