package glitchsim_test

import (
	"context"
	"sync"
	"testing"

	"glitchsim"
)

// collectEvents drains a session's event stream concurrently with the
// calling test's session method, returning the events after Close.
func collectEvents(s *glitchsim.Session) (<-chan []glitchsim.Event, func()) {
	out := make(chan []glitchsim.Event, 1)
	go func() {
		var evs []glitchsim.Event
		for ev := range s.Events() {
			evs = append(evs, ev)
		}
		out <- evs
	}()
	return out, s.Close
}

// TestSessionSeedEvents: a seed sweep emits one EventSeed per seed plus
// a final EventResult, and the blocking return value matches the
// non-session engine path.
func TestSessionSeedEvents(t *testing.T) {
	e := glitchsim.NewEngine()
	sess := e.NewSession(context.Background())
	evc, closeSess := collectEvents(sess)

	seeds := []uint64{1, 2, 3, 4, 5}
	req := glitchsim.SeedSweepRequest{
		Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 30}, Seeds: seeds,
	}
	agg, err := sess.MeasureSeeds(req)
	if err != nil {
		t.Fatal(err)
	}
	closeSess()
	evs := <-evc

	var seedEvents, resultEvents int
	seen := make(map[int]bool)
	for _, ev := range evs {
		switch ev.Kind {
		case glitchsim.EventSeed:
			seedEvents++
			seen[ev.Index] = true
			if ev.Total != len(seeds) {
				t.Errorf("seed event total = %d, want %d", ev.Total, len(seeds))
			}
			if ev.Activity == nil || ev.Err != nil {
				t.Errorf("seed event incomplete: %+v", ev)
			}
		case glitchsim.EventResult:
			resultEvents++
			if ev.Activity == nil || ev.Activity.Cycles != agg.Cycles() {
				t.Errorf("result event does not match aggregate: %+v", ev)
			}
		}
	}
	if seedEvents != len(seeds) || len(seen) != len(seeds) {
		t.Errorf("saw %d seed events over %d distinct indices, want %d", seedEvents, len(seen), len(seeds))
	}
	if resultEvents != 1 {
		t.Errorf("saw %d result events, want 1", resultEvents)
	}

	// The session's blocking result must equal the plain engine path.
	direct, err := e.MeasureSeeds(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Totals() != direct.Totals() {
		t.Errorf("session aggregate %+v != engine aggregate %+v", agg.Totals(), direct.Totals())
	}
}

// TestSessionTableRowEvents: Table1 emits one EventRow per multiplier
// row with the row payload attached.
func TestSessionTableRowEvents(t *testing.T) {
	e := glitchsim.NewEngine()
	sess := e.NewSession(context.Background())
	evc, closeSess := collectEvents(sess)

	rows, err := sess.Table1(glitchsim.ExperimentRequest{Cycles: 20})
	if err != nil {
		t.Fatal(err)
	}
	closeSess()
	evs := <-evc

	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	rowEvents := 0
	for _, ev := range evs {
		if ev.Kind != glitchsim.EventRow {
			continue
		}
		rowEvents++
		if ev.Mult == nil {
			t.Errorf("row event without payload: %+v", ev)
			continue
		}
		if *ev.Mult != rows[ev.Index] {
			t.Errorf("row event %d payload %+v != returned row %+v", ev.Index, *ev.Mult, rows[ev.Index])
		}
	}
	if rowEvents != 4 {
		t.Errorf("saw %d row events, want 4", rowEvents)
	}
}

// TestSessionCancelledConsumer: when the session context dies, emits are
// dropped rather than wedging the measurement pool, and the method
// returns the context error.
func TestSessionCancelledConsumer(t *testing.T) {
	e := glitchsim.NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	sess := e.NewSession(ctx)
	cancel() // no consumer ever reads Events()

	_, err := sess.MeasureSeeds(glitchsim.SeedSweepRequest{
		Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 30}, Seeds: []uint64{1, 2, 3},
	})
	if err == nil {
		t.Fatal("cancelled session measured successfully")
	}
	sess.Close()
}

// TestSessionFuncTap: a NewSessionFunc session delivers events to its
// callback (from concurrent worker goroutines) instead of the channel,
// and the channel stays empty.
func TestSessionFuncTap(t *testing.T) {
	e := glitchsim.NewEngine()
	var mu sync.Mutex
	var got []glitchsim.Event
	sess := e.NewSessionFunc(context.Background(), func(ev glitchsim.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	evc, closeSess := collectEvents(sess)

	seeds := []uint64{1, 2, 3}
	if _, err := sess.MeasureSeeds(glitchsim.SeedSweepRequest{
		Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 30}, Seeds: seeds,
	}); err != nil {
		t.Fatal(err)
	}
	closeSess()
	if chanEvents := <-evc; len(chanEvents) != 0 {
		t.Fatalf("func session leaked %d events onto the channel", len(chanEvents))
	}

	mu.Lock()
	defer mu.Unlock()
	seedEvents, results := 0, 0
	for _, ev := range got {
		switch ev.Kind {
		case glitchsim.EventSeed:
			seedEvents++
		case glitchsim.EventResult:
			results++
		}
	}
	if seedEvents != len(seeds) || results != 1 {
		t.Fatalf("tap saw %d seed events and %d results, want %d and 1", seedEvents, results, len(seeds))
	}
}
