package glitchsim

// Measurement checkpoint/resume: the root-package face of checkpointed,
// resumable measurements. A lane-decomposed (word-parallel) measurement
// configured with Config.CheckpointEvery folds its partial counter at
// every chunk boundary into a MeasureCheckpoint and hands it to
// Config.CheckpointSink; a later run configured with Config.Resume
// continues from that snapshot — same per-lane seed streams fast-
// forwarded past the completed prefix, same kernel state, same counter
// totals — so interrupted+resumed statistics are bit-identical to an
// uninterrupted run.
//
// Chunk boundaries are pure observation points: the kernels' dynamic
// state at a cycle boundary is exactly the settled net values, and the
// stimulus generator's position is a closed-form function of the cycle
// index (splitmix64 fast-forward), so taking — or not taking — a
// checkpoint never perturbs the simulation.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"

	"glitchsim/internal/core"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// CheckpointVersion is the MeasureCheckpoint format version; resume
// rejects snapshots written by any other version.
const CheckpointVersion = 1

// ErrStopAtCheckpoint, returned by a CheckpointSink, asks the
// measurement to stop cleanly at the chunk boundary the sink was just
// called for: the partial counter is returned together with a
// *CheckpointedError. This is how a draining daemon bounds its drain
// latency to one chunk instead of gambling on a grace period.
var ErrStopAtCheckpoint = errors.New("glitchsim: stop at checkpoint")

// ErrCheckpointed tags the error a measurement returns after its sink
// requested a stop: the measurement is not failed, it is parked at the
// checkpoint the sink just received. errors.Is(err, ErrCheckpointed)
// matches the concrete *CheckpointedError.
var ErrCheckpointed = errors.New("glitchsim: measurement stopped at a checkpoint")

// ErrCheckpointMismatch tags every resume validation failure: the
// snapshot does not belong to this (circuit, configuration) pair, or
// its payload fails integrity checks. Resuming anyway would produce
// statistics that are not bit-identical to any honest run, so the
// measurement refuses.
var ErrCheckpointMismatch = errors.New("glitchsim: checkpoint does not match the measurement")

// ErrCheckpointUnsupported reports a checkpoint request on a
// measurement the chunked word-parallel path cannot carry: an explicit
// stimulus Source, a single-lane run, or a run of at most one cycle.
// Checkpointing needs the lane-decomposed path because only there is
// the stimulus position a pure function of the cycle index.
var ErrCheckpointUnsupported = errors.New("glitchsim: checkpointing requires a lane-decomposed measurement (no explicit Source, Lanes > 1, Cycles > 1)")

// CheckpointedError reports a measurement stopped at a chunk boundary
// on its sink's request. The partial counter returned alongside covers
// exactly Cycle measured steps.
type CheckpointedError struct {
	// Cycle is the number of completed measured steps (word-parallel
	// cycles, each advancing every active lane by one vector).
	Cycle int
	// Total is the measurement's full step count.
	Total int
}

func (e *CheckpointedError) Error() string {
	return fmt.Sprintf("glitchsim: measurement stopped at checkpoint, cycle %d of %d", e.Cycle, e.Total)
}

// Is reports ErrCheckpointed so errors.Is works without the concrete
// type.
func (e *CheckpointedError) Is(target error) bool { return target == ErrCheckpointed }

// CheckpointMismatchError pinpoints the first field on which a resume
// snapshot disagrees with the measurement it was offered to.
type CheckpointMismatchError struct {
	Field     string
	Want, Got string
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("glitchsim: checkpoint mismatch on %s: checkpoint has %s, measurement wants %s",
		e.Field, e.Got, e.Want)
}

// Is reports ErrCheckpointMismatch so errors.Is works without the
// concrete type.
func (e *CheckpointMismatchError) Is(target error) bool { return target == ErrCheckpointMismatch }

// CheckpointSink receives the measurement checkpoint taken at each
// chunk boundary. The snapshot is freshly allocated and owned by the
// sink. Returning nil continues the measurement; returning
// ErrStopAtCheckpoint stops it cleanly at this boundary (the sink has
// the snapshot, the caller gets the partial counter and a
// *CheckpointedError); any other error aborts the measurement.
type CheckpointSink func(cp *MeasureCheckpoint) error

// MeasureCheckpoint is one measurement's complete resumable state at a
// chunk boundary: the identity of the run (circuit fingerprint and the
// configuration knobs that shape the stimulus and schedule), the packed
// net values of the word-parallel kernel, and the counter snapshot.
// It serializes to JSON round-trip-exactly and carries an FNV-64a
// checksum over its own canonical encoding, so torn or bit-rotted
// payloads are rejected at resume rather than resumed into garbage.
type MeasureCheckpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Cycle is the number of completed measured steps at the boundary.
	Cycle int `json:"cycle"`
	// TotalCycles, Lanes, Seed and Warmup pin the lane decomposition:
	// per-lane seeds and quotas are pure functions of (Seed, Lanes,
	// TotalCycles), so equality here means identical streams.
	TotalCycles int    `json:"total_cycles"`
	Lanes       int    `json:"lanes"`
	Seed        uint64 `json:"seed"`
	Warmup      int    `json:"warmup"`
	// DelayDigest is the hex FNV-1a digest of the compiled delay table
	// (sim.DelayTable.Digest); a different delay model changes every
	// waveform, so resume under one is refused.
	DelayDigest string `json:"delay_digest"`
	Inertial    bool   `json:"inertial"`
	// NetState holds the packed settled net values, 16 little-endian
	// bytes per net (Zero rail then One rail). JSON carries it base64.
	NetState []byte `json:"net_state"`
	// Counter is the folded statistics snapshot at the boundary.
	Counter *core.CounterSnapshot `json:"counter"`
	// Checksum is the hex FNV-64a hash of the checkpoint's canonical
	// JSON encoding with this field empty.
	Checksum string `json:"checksum"`
}

// checksum computes the canonical-content hash of the checkpoint.
func (cp *MeasureCheckpoint) checksum() (string, error) {
	shadow := *cp
	shadow.Checksum = ""
	data, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("glitchsim: encoding checkpoint for checksum: %w", err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// seal stamps the checkpoint's checksum; every checkpoint handed to a
// sink is sealed.
func (cp *MeasureCheckpoint) seal() error {
	sum, err := cp.checksum()
	if err != nil {
		return err
	}
	cp.Checksum = sum
	return nil
}

// Verify recomputes the checkpoint's checksum and compares. It catches
// torn writes and bit rot before any field is trusted; resume calls it
// first.
func (cp *MeasureCheckpoint) Verify() error {
	if cp == nil {
		return &CheckpointMismatchError{Field: "checkpoint", Want: "non-nil", Got: "nil"}
	}
	sum, err := cp.checksum()
	if err != nil {
		return err
	}
	if sum != cp.Checksum {
		return &CheckpointMismatchError{Field: "checksum", Want: sum, Got: cp.Checksum}
	}
	return nil
}

// matches validates the checkpoint against the measurement about to
// resume from it. maxQ is the run's step count (the largest lane
// quota).
func (cp *MeasureCheckpoint) matches(n *netlist.Netlist, cfg Config, lanes, maxQ int, dt *sim.DelayTable) error {
	check := func(field, want, got string) error {
		if want != got {
			return &CheckpointMismatchError{Field: field, Want: want, Got: got}
		}
		return nil
	}
	if err := check("version", fmt.Sprint(CheckpointVersion), fmt.Sprint(cp.Version)); err != nil {
		return err
	}
	if err := check("fingerprint", n.Fingerprint(), cp.Fingerprint); err != nil {
		return err
	}
	if err := check("total_cycles", fmt.Sprint(cfg.Cycles), fmt.Sprint(cp.TotalCycles)); err != nil {
		return err
	}
	if err := check("lanes", fmt.Sprint(lanes), fmt.Sprint(cp.Lanes)); err != nil {
		return err
	}
	if err := check("seed", fmt.Sprint(cfg.Seed), fmt.Sprint(cp.Seed)); err != nil {
		return err
	}
	if err := check("warmup", fmt.Sprint(cfg.Warmup), fmt.Sprint(cp.Warmup)); err != nil {
		return err
	}
	if err := check("delay_digest", delayDigest(dt), cp.DelayDigest); err != nil {
		return err
	}
	if err := check("inertial", fmt.Sprint(cfg.Inertial), fmt.Sprint(cp.Inertial)); err != nil {
		return err
	}
	if cp.Cycle < 0 || cp.Cycle > maxQ {
		return &CheckpointMismatchError{Field: "cycle", Want: fmt.Sprintf("within [0, %d]", maxQ), Got: fmt.Sprint(cp.Cycle)}
	}
	if want, got := 16*n.NumNets(), len(cp.NetState); want != got {
		return &CheckpointMismatchError{Field: "net_state", Want: fmt.Sprintf("%d bytes", want), Got: fmt.Sprintf("%d bytes", got)}
	}
	if cp.Counter == nil {
		return &CheckpointMismatchError{Field: "counter", Want: "non-nil", Got: "nil"}
	}
	return nil
}

// delayDigest renders a delay table's digest in the checkpoint's hex
// form.
func delayDigest(dt *sim.DelayTable) string { return fmt.Sprintf("%016x", dt.Digest()) }

// encodeNetState packs kernel net values into the checkpoint's byte
// form: 16 little-endian bytes per net, Zero rail first.
func encodeNetState(vals []logic.W) []byte {
	out := make([]byte, 16*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[16*i:], v.Zero)
		binary.LittleEndian.PutUint64(out[16*i+8:], v.One)
	}
	return out
}

// decodeNetState unpacks encodeNetState's byte form; length was
// validated by matches.
func decodeNetState(b []byte) []logic.W {
	vals := make([]logic.W, len(b)/16)
	for i := range vals {
		vals[i] = logic.W{
			Zero: binary.LittleEndian.Uint64(b[16*i:]),
			One:  binary.LittleEndian.Uint64(b[16*i+8:]),
		}
	}
	return vals
}

// captureCheckpoint folds the running measurement's state at a cycle
// boundary into a sealed MeasureCheckpoint.
func captureCheckpoint(ws sim.WideKernel, counter *core.WideCounter, n *netlist.Netlist,
	cfg Config, lanes, done int, dt *sim.DelayTable) (*MeasureCheckpoint, error) {
	snap, err := counter.Snapshot()
	if err != nil {
		return nil, err
	}
	cp := &MeasureCheckpoint{
		Version:     CheckpointVersion,
		Fingerprint: n.Fingerprint(),
		Cycle:       done,
		TotalCycles: cfg.Cycles,
		Lanes:       lanes,
		Seed:        cfg.Seed,
		Warmup:      cfg.Warmup,
		DelayDigest: delayDigest(dt),
		Inertial:    cfg.Inertial,
		NetState:    encodeNetState(ws.ExportState(nil)),
		Counter:     snap,
	}
	if err := cp.seal(); err != nil {
		return nil, err
	}
	return cp, nil
}
