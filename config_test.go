package glitchsim

import (
	"testing"

	"glitchsim/internal/circuits"
)

// TestConfigExplicitZero: the zero value of Cycles/Warmup selects the
// documented defaults, while ExplicitZero requests an actual zero count
// (previously impossible: an explicit 0 was silently promoted).
func TestConfigExplicitZero(t *testing.T) {
	nl := circuits.NewRCA(4, circuits.Cells)

	def := Config{}.withDefaults(nl)
	if def.Cycles != 500 || def.Warmup != 8 {
		t.Fatalf("zero-value defaults: cycles=%d warmup=%d, want 500/8", def.Cycles, def.Warmup)
	}
	if def.Seed != 1 || def.Delay == nil || def.Source == nil {
		t.Fatalf("zero-value defaults incomplete: %+v", def)
	}

	z := Config{Cycles: ExplicitZero, Warmup: ExplicitZero}.withDefaults(nl)
	if z.Cycles != 0 || z.Warmup != 0 {
		t.Fatalf("ExplicitZero: cycles=%d warmup=%d, want 0/0", z.Cycles, z.Warmup)
	}

	mixed := Config{Cycles: 25, Warmup: ExplicitZero}.withDefaults(nl)
	if mixed.Cycles != 25 || mixed.Warmup != 0 {
		t.Fatalf("mixed: cycles=%d warmup=%d, want 25/0", mixed.Cycles, mixed.Warmup)
	}
}

// TestMeasureZeroWarmup: with warm-up disabled the measurement includes
// the start-up cycles, so the counter sees exactly Cycles cycles and the
// run from reset differs from a warmed-up run only in where measurement
// starts — both must succeed.
func TestMeasureZeroWarmup(t *testing.T) {
	nl := circuits.NewRCA(8, circuits.Cells)

	cold, err := MeasureDetailed(nl, Config{Cycles: 30, Warmup: ExplicitZero})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cycles() != 30 {
		t.Fatalf("cold counter saw %d cycles, want 30", cold.Cycles())
	}

	warm, err := MeasureDetailed(nl, Config{Cycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cycles() != 30 {
		t.Fatalf("warm counter saw %d cycles, want 30", warm.Cycles())
	}

	// Zero measured cycles is a legal request: no classified activity.
	none, err := MeasureDetailed(nl, Config{Cycles: ExplicitZero})
	if err != nil {
		t.Fatal(err)
	}
	if none.Cycles() != 0 || none.Totals().Transitions != 0 {
		t.Fatalf("zero-cycle measurement recorded activity: %+v", none.Totals())
	}
}
