package glitchsim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"glitchsim/internal/core"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// Lane decomposition: the measurement-layer face of the word-parallel
// kernels. A measurement with L lanes distributes its Cycles random
// vectors over L independent seeded stimulus streams (each with its own
// warm-up) instead of one long stream, and all L streams advance in ONE
// word-parallel simulation, evaluating every gate for up to 64 patterns
// per visit — under every delay model. Uniform models with delay >= 1
// (the paper's unit-delay experiments; inertial and transport coincide
// there) ride the lockstep wavefront kernel; everything else (full-adder
// sum/carry ratios, per-type delays, zero delay, and inertial runs on
// those models) rides the lane-masked wide-event kernel. Both are
// bit-identical to L scalar runs merged in lane order by construction
// (TestWideKernelEquivalence, TestWideEventKernelEquivalence and
// TestMeasureLanesScalarWideAgree enforce it), so the delay model
// changes the speed of a measurement, never the meaning of its lane
// decomposition.
//
// Classification semantics are unchanged: every measured cycle is one
// random vector applied to a warmed-up circuit, and the counter sees
// exactly Cycles classified cycles. Only the pairing of consecutive
// vectors differs from a single-stream run, so lane-decomposed activity
// numbers are deterministic per (seed, lanes) but differ from the
// historical Lanes=1 stream. Set Lanes=1 (or SetDefaultLanes(1)) to
// reproduce pre-lanes measurements exactly.

// MaxLanes is the largest lane count a measurement can request: the
// 64-lane machine word of the bit-parallel kernel.
const MaxLanes = sim.MaxLanes

// defaultLanes holds the process-wide lane default; 0 means MaxLanes.
var defaultLanes atomic.Int32

// SetDefaultLanes sets the lane count used by measurements whose Config
// and Engine do not specify one: n = 1 restores the historical
// single-stream behaviour, n <= 0 restores the default of MaxLanes, and
// n is capped at MaxLanes. The cmd/glitchsim -lanes flag calls this.
func SetDefaultLanes(n int) {
	if n < 0 {
		n = 0
	}
	if n > MaxLanes {
		n = MaxLanes
	}
	defaultLanes.Store(int32(n))
}

// DefaultLanes returns the current process-wide lane default.
func DefaultLanes() int {
	if n := defaultLanes.Load(); n > 0 {
		return int(n)
	}
	return MaxLanes
}

// WithLanes fixes the engine's lane count for measurements whose Config
// does not specify one. n <= 0 (the default) tracks the process-wide
// DefaultLanes value, which the -lanes CLI flag sets; n is capped at
// MaxLanes.
func WithLanes(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		if n > MaxLanes {
			n = MaxLanes
		}
		e.lanes = n
	}
}

// Lanes returns the engine's effective lane count for a zero-valued
// Config.Lanes.
func (e *Engine) Lanes() int { return e.laneCount(Config{}) }

// laneCount resolves the effective lane count of a measurement: an
// explicit Config.Lanes wins, then the engine option, then the process
// default.
func (e *Engine) laneCount(cfg Config) int {
	n := cfg.Lanes
	if n == 0 {
		n = e.lanes
	}
	if n == 0 {
		n = DefaultLanes()
	}
	if n < 1 {
		n = 1
	}
	if n > MaxLanes {
		n = MaxLanes
	}
	return n
}

// laneSeedsInto derives the per-lane stimulus seeds of a decomposed
// measurement from its base seed: one splitmix64 draw per lane, so lane
// streams are mutually independent and stable across lane counts.
func laneSeedsInto(seeds []uint64, base uint64) {
	sm := stimulus.NewPRNG(base)
	for l := range seeds {
		seeds[l] = sm.Uint64()
	}
}

// laneSeeds is the allocating form of laneSeedsInto.
func laneSeeds(base uint64, lanes int) []uint64 {
	seeds := make([]uint64, lanes)
	laneSeedsInto(seeds, base)
	return seeds
}

// laneQuotasInto splits cycles across lanes as evenly as possible,
// non-increasing: the first cycles%lanes lanes measure one extra cycle.
// The quota sum is exactly cycles, so a decomposed measurement reports
// the same cycle count as a single-stream one.
func laneQuotasInto(quotas []int, cycles int) {
	lanes := len(quotas)
	base, rem := cycles/lanes, cycles%lanes
	for l := range quotas {
		quotas[l] = base
		if l < rem {
			quotas[l]++
		}
	}
}

// laneQuotas is the allocating form of laneQuotasInto.
func laneQuotas(cycles, lanes int) []int {
	quotas := make([]int, lanes)
	laneQuotasInto(quotas, cycles)
	return quotas
}

// Kernel identifies the simulation kernel a measurement runs on.
type Kernel string

const (
	// KernelScalar is the single-stream event-driven kernel: Lanes=1
	// measurements, explicit stimulus sources, and runs of at most one
	// cycle. (Its scheduler — wave, calendar or heap — is an internal
	// detail chosen per delay model.)
	KernelScalar Kernel = "scalar"
	// KernelWideLockstep is the 64-lane lockstep wavefront kernel,
	// selected for lane-decomposed measurements under uniform delay
	// models with delay >= 1 (the paper's unit-delay experiments).
	KernelWideLockstep Kernel = "wide-lockstep"
	// KernelWideEvent is the 64-lane lane-masked event-driven kernel,
	// selected for lane-decomposed measurements under every other delay
	// model: unequal per-cell delays (full-adder sum/carry ratios,
	// per-type models) and zero delay, in transport or inertial mode.
	// (Inertial runs on a uniform model still select the lockstep
	// kernel — the two modes coincide when no pulse can be narrower
	// than a cell delay.)
	KernelWideEvent Kernel = "wide-event"
)

// kernelFor reports which kernel measureCompiled routes a measurement
// to, mirroring its decomposition test and sim.NewWideKernel's
// eligibility rule. cfg and lanes are as measureCompiled receives them
// (engine defaults applied, Config defaults not yet).
func kernelFor(c *sim.Compiled, cfg Config, lanes int) Kernel {
	split := lanes > 1 && cfg.Source == nil
	cfg = cfg.withDefaults(c.Netlist())
	if !split || cfg.Cycles <= 1 {
		return KernelScalar
	}
	if d, ok := sim.UniformDelay(c, cfg.Delay); ok && d >= 1 {
		return KernelWideLockstep
	}
	return KernelWideEvent
}

// SelectedKernel reports which simulation kernel the engine would run
// the request on, without measuring anything: the value the service's
// /v1/measure responses and the CLI's -format json output surface so
// users can confirm the word-parallel fast path engaged. Kernel
// selection is deterministic — it depends only on the circuit, the
// resolved configuration and the engine's lane/delay defaults — so the
// prediction is exact.
func (e *Engine) SelectedKernel(req MeasureRequest) (Kernel, error) {
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return "", err
	}
	cfg := e.fillDefaults(req.Config)
	return kernelFor(e.compiled(nl), cfg, e.laneCount(cfg)), nil
}

// measureLanes measures a lane-decomposed configuration (cfg has its
// defaults resolved; cfg.Source is the unused default stream) on the
// word-parallel kernel NewWideKernel selects for the delay model. Every
// delay model runs word-parallel; the scalar kernel only ever simulates
// single-stream (Lanes=1 / explicit-Source) measurements.
func measureLanes(ctx context.Context, c *sim.Compiled, cfg Config, lanes int) (*core.Counter, error) {
	if cfg.Cycles < lanes {
		lanes = cfg.Cycles // never run a lane with nothing to measure
	}
	return measureWide(ctx, c, cfg, lanes)
}

// laneMaskOf returns the mask of the first n lanes.
func laneMaskOf(n int) uint64 {
	if n >= MaxLanes {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// wideScratch holds the per-measurement buffers of the word-parallel
// path. Measurements are short relative to their setup on small
// circuits, and batch sweeps issue thousands of them, so the buffers are
// pooled across measurement passes instead of reallocated per pass.
type wideScratch struct {
	seeds  []uint64
	quotas []int
	buf    []logic.W
}

var wideScratchPool = sync.Pool{New: func() any { return new(wideScratch) }}

// grow returns s's buffers resized to the measurement's lane count and
// input width, reusing their backing arrays when large enough.
func (s *wideScratch) grow(lanes, width int) {
	if cap(s.seeds) < lanes {
		s.seeds = make([]uint64, lanes)
		s.quotas = make([]int, lanes)
	}
	s.seeds, s.quotas = s.seeds[:lanes], s.quotas[:lanes]
	if cap(s.buf) < width {
		s.buf = make([]logic.W, width)
	}
	s.buf = s.buf[:width]
}

// measureWide runs one word-parallel measurement: lane l simulates the
// stream of laneSeeds(cfg.Seed)[l] for its quota of measured cycles
// (quotas are non-increasing; all lanes share the warm-up length). The
// folded counter is bit-identical to the per-lane scalar measurements
// merged in lane order, under every delay model.
//
// On a budget trip after k completed measured steps, the partial
// counter is returned WITH the error and its statistics equal the
// lane-order merge of scalar runs measuring min(quota_l, k) cycles
// each: per-lane masks are applied at the start of each step, so every
// completed step carries exactly the lanes that were still active.
// When cfg.CheckpointEvery > 0 the measured loop pauses at every chunk
// boundary to fold the counter and kernel state into a sealed
// MeasureCheckpoint for cfg.CheckpointSink; cfg.Resume restores such a
// checkpoint and continues from its cycle on the identical fast-
// forwarded seed streams (see checkpoint.go). Neither perturbs the
// simulation: a chunk boundary only reads state, so checkpointed,
// resumed and plain runs are bit-identical.
func measureWide(ctx context.Context, c *sim.Compiled, cfg Config, lanes int) (*core.Counter, error) {
	n := c.Netlist()
	mode := sim.Transport
	if cfg.Inertial {
		mode = sim.Inertial
	}
	dt := sim.NewDelayTable(c, cfg.Delay)
	opts := sim.Options{Delay: cfg.Delay, Delays: dt, Mode: mode, Budget: cfg.Budget.simBudget(time.Now())}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	ws := sim.NewWideKernel(c, opts)
	scratch := wideScratchPool.Get().(*wideScratch)
	defer wideScratchPool.Put(scratch)
	scratch.grow(lanes, n.InputWidth())
	seeds, quotas, buf := scratch.seeds, scratch.quotas, scratch.buf
	laneSeedsInto(seeds, cfg.Seed)
	laneQuotasInto(quotas, cfg.Cycles)
	src := stimulus.NewWideRandom(n.InputWidth(), seeds)
	maxQ := 0
	if len(quotas) > 0 {
		maxQ = quotas[0]
	}
	counter := core.NewWideCounter(n)
	startK := 0
	if cp := cfg.Resume; cp != nil {
		if err := cp.Verify(); err != nil {
			return nil, err
		}
		if err := cp.matches(n, cfg, lanes, maxQ, dt); err != nil {
			return nil, err
		}
		if err := counter.Restore(cp.Counter); err != nil {
			return nil, err
		}
		// The kernel rejoins the run at the recorded boundary: net values
		// from the snapshot, flip-flop registers re-derived, stimulus
		// fast-forwarded past the warm-up plus the completed prefix.
		ws.ImportState(decodeNetState(cp.NetState), cfg.Warmup+cp.Cycle)
		src.Skip(cfg.Warmup + cp.Cycle)
		startK = cp.Cycle
	} else {
		// Warm-up runs unmonitored: the kernel skips change capture
		// entirely, and attaching the counter afterwards is
		// indistinguishable from attach-then-Reset (the counter carries no
		// cross-cycle state beyond the statistics a reset would clear).
		for i := 0; i < cfg.Warmup; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := ws.Step(src.NextWide(buf)); err != nil {
				if errors.Is(err, sim.ErrBudgetExceeded) {
					return core.NewCounter(n), err
				}
				return nil, err
			}
		}
	}
	counter.SetLaneMask(laneMaskOf(lanes))
	ws.AttachWideMonitor(counter)
	active := lanes
	for k := startK; k < maxQ; k++ {
		// Retire lanes whose quota is exhausted (quotas non-increasing:
		// the active set is always a prefix).
		for active > 0 && quotas[active-1] <= k {
			active--
		}
		counter.SetLaneMask(laneMaskOf(active))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ws.Step(src.NextWide(buf)); err != nil {
			if errors.Is(err, sim.ErrBudgetExceeded) {
				return counter.Counter(), err
			}
			return nil, err
		}
		// Chunk boundary: k+1 completed steps. The final boundary is the
		// return value itself, so no checkpoint is taken there.
		if done := k + 1; cfg.CheckpointEvery > 0 && cfg.CheckpointSink != nil &&
			done < maxQ && done%cfg.CheckpointEvery == 0 {
			cp, err := captureCheckpoint(ws, counter, n, cfg, lanes, done, dt)
			if err != nil {
				return nil, err
			}
			if err := cfg.CheckpointSink(cp); err != nil {
				if errors.Is(err, ErrStopAtCheckpoint) {
					return counter.Counter(), &CheckpointedError{Cycle: done, Total: maxQ}
				}
				return nil, fmt.Errorf("glitchsim: checkpoint sink: %w", err)
			}
		}
	}
	return counter.Counter(), nil
}
