package glitchsim

import (
	"context"
	"errors"
	"sync/atomic"

	"glitchsim/internal/core"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// Lane decomposition: the measurement-layer face of the word-parallel
// kernel. A measurement with L lanes distributes its Cycles random
// vectors over L independent seeded stimulus streams (each with its own
// warm-up) instead of one long stream. Under a uniform delay model —
// the paper's unit-delay experiments — all L streams then advance in one
// word-parallel simulation, evaluating every gate for 64 patterns per
// visit; otherwise the same L streams run on the scalar kernel one after
// another. Both executions are bit-identical by construction (the wide
// kernel's per-lane behaviour equals a scalar run with that lane's
// stream; TestWideKernelEquivalence and TestMeasureLanesScalarWideAgree
// enforce it), so the delay model changes the speed of a measurement,
// never the meaning of its lane decomposition.
//
// Classification semantics are unchanged: every measured cycle is one
// random vector applied to a warmed-up circuit, and the counter sees
// exactly Cycles classified cycles. Only the pairing of consecutive
// vectors differs from a single-stream run, so lane-decomposed activity
// numbers are deterministic per (seed, lanes) but differ from the
// historical Lanes=1 stream. Set Lanes=1 (or SetDefaultLanes(1)) to
// reproduce pre-lanes measurements exactly.

// MaxLanes is the largest lane count a measurement can request: the
// 64-lane machine word of the bit-parallel kernel.
const MaxLanes = sim.MaxLanes

// defaultLanes holds the process-wide lane default; 0 means MaxLanes.
var defaultLanes atomic.Int32

// SetDefaultLanes sets the lane count used by measurements whose Config
// and Engine do not specify one: n = 1 restores the historical
// single-stream behaviour, n <= 0 restores the default of MaxLanes, and
// n is capped at MaxLanes. The cmd/glitchsim -lanes flag calls this.
func SetDefaultLanes(n int) {
	if n < 0 {
		n = 0
	}
	if n > MaxLanes {
		n = MaxLanes
	}
	defaultLanes.Store(int32(n))
}

// DefaultLanes returns the current process-wide lane default.
func DefaultLanes() int {
	if n := defaultLanes.Load(); n > 0 {
		return int(n)
	}
	return MaxLanes
}

// WithLanes fixes the engine's lane count for measurements whose Config
// does not specify one. n <= 0 (the default) tracks the process-wide
// DefaultLanes value, which the -lanes CLI flag sets; n is capped at
// MaxLanes.
func WithLanes(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		if n > MaxLanes {
			n = MaxLanes
		}
		e.lanes = n
	}
}

// Lanes returns the engine's effective lane count for a zero-valued
// Config.Lanes.
func (e *Engine) Lanes() int { return e.laneCount(Config{}) }

// laneCount resolves the effective lane count of a measurement: an
// explicit Config.Lanes wins, then the engine option, then the process
// default.
func (e *Engine) laneCount(cfg Config) int {
	n := cfg.Lanes
	if n == 0 {
		n = e.lanes
	}
	if n == 0 {
		n = DefaultLanes()
	}
	if n < 1 {
		n = 1
	}
	if n > MaxLanes {
		n = MaxLanes
	}
	return n
}

// laneSeeds derives the per-lane stimulus seeds of a decomposed
// measurement from its base seed: one splitmix64 draw per lane, so lane
// streams are mutually independent and stable across lane counts.
func laneSeeds(base uint64, lanes int) []uint64 {
	seeds := make([]uint64, lanes)
	sm := stimulus.NewPRNG(base)
	for l := range seeds {
		seeds[l] = sm.Uint64()
	}
	return seeds
}

// laneQuotas splits cycles across lanes as evenly as possible,
// non-increasing: the first cycles%lanes lanes measure one extra cycle.
// The quota sum is exactly cycles, so a decomposed measurement reports
// the same cycle count as a single-stream one.
func laneQuotas(cycles, lanes int) []int {
	quotas := make([]int, lanes)
	base, rem := cycles/lanes, cycles%lanes
	for l := range quotas {
		quotas[l] = base
		if l < rem {
			quotas[l]++
		}
	}
	return quotas
}

// measureLanes measures a lane-decomposed configuration (cfg has its
// defaults resolved; cfg.Source is the unused default stream): on the
// word-parallel kernel when the delay model is uniform, lane by lane on
// the scalar kernel otherwise. Both paths produce bit-identical
// counters.
func measureLanes(ctx context.Context, c *sim.Compiled, cfg Config, lanes int) (*core.Counter, error) {
	if cfg.Cycles < lanes {
		lanes = cfg.Cycles // never run a lane with nothing to measure
	}
	seeds := laneSeeds(cfg.Seed, lanes)
	quotas := laneQuotas(cfg.Cycles, lanes)
	counter, err := measureWide(ctx, c, cfg, seeds, quotas)
	if !errors.Is(err, sim.ErrNonUniformDelay) {
		return counter, err
	}
	// Scalar fallback: the same lane streams and quotas, simulated one
	// after another and merged in lane order. Each stream warms up
	// independently (required for bit-identity with the wide path and
	// for cross-delay-model stream invariance), so this path simulates
	// roughly lanes×Warmup extra cycles compared to a Lanes=1 run — see
	// the Config.Lanes docs for the tradeoff.
	n := c.Netlist()
	var agg *core.Counter
	for l, seed := range seeds {
		lcfg := cfg
		lcfg.Seed = seed
		lcfg.Cycles = quotas[l]
		lcfg.Source = stimulus.NewRandom(n.InputWidth(), seed)
		counter, err := measureStream(ctx, c, lcfg)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = counter
		} else if err := agg.Merge(counter); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// laneMaskOf returns the mask of the first n lanes.
func laneMaskOf(n int) uint64 {
	if n >= MaxLanes {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// measureWide runs one word-parallel pass: lane l simulates the stream
// of seeds[l] for quotas[l] measured cycles (quotas must be
// non-increasing; all lanes share the warm-up length). The folded
// counter is bit-identical to the per-lane scalar measurements merged in
// lane order.
func measureWide(ctx context.Context, c *sim.Compiled, cfg Config, seeds []uint64, quotas []int) (*core.Counter, error) {
	n := c.Netlist()
	mode := sim.Transport
	if cfg.Inertial {
		mode = sim.Inertial
	}
	opts := sim.Options{Delay: cfg.Delay, Mode: mode}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	ws, err := sim.NewWide(c, opts)
	if err != nil {
		return nil, err
	}
	src := stimulus.NewWideRandom(n.InputWidth(), seeds)
	buf := make([]logic.W, n.InputWidth())
	// Warm-up runs unmonitored: the kernel skips change capture entirely,
	// and attaching the counter afterwards is indistinguishable from
	// attach-then-Reset (the counter carries no cross-cycle state beyond
	// the statistics a reset would clear).
	for i := 0; i < cfg.Warmup; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ws.Step(src.NextWide(buf)); err != nil {
			return nil, err
		}
	}
	counter := core.NewWideCounter(n)
	counter.SetLaneMask(laneMaskOf(len(seeds)))
	ws.AttachWideMonitor(counter)
	active := len(seeds)
	maxQ := 0
	if len(quotas) > 0 {
		maxQ = quotas[0]
	}
	for k := 0; k < maxQ; k++ {
		// Retire lanes whose quota is exhausted (quotas non-increasing:
		// the active set is always a prefix).
		for active > 0 && quotas[active-1] <= k {
			active--
		}
		counter.SetLaneMask(laneMaskOf(active))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ws.Step(src.NextWide(buf)); err != nil {
			return nil, err
		}
	}
	return counter.Counter(), nil
}
