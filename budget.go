package glitchsim

// Resource governance: per-measurement budgets, the typed failure
// taxonomy they produce, and admission-time cost estimation. Budgets
// bound a measurement while it runs (enforced inside all three kernels
// on the cancellation poll); cost estimation predicts a measurement's
// footprint from netlist statistics alone, so a service can reject or
// shed a pathological request before compiling anything.

import (
	"time"

	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// Typed failure taxonomy, re-exported from the kernel layer so callers
// route on errors.Is / errors.As without importing internal packages.
var (
	// ErrBudgetExceeded marks a measurement aborted by a Budget; the
	// concrete error is a *BudgetError naming the exhausted resource.
	ErrBudgetExceeded = sim.ErrBudgetExceeded
	// ErrOscillation marks a cycle that failed to settle within the
	// guard time; the concrete error is an *OscillationError naming the
	// hot nets.
	ErrOscillation = sim.ErrOscillation
)

// BudgetError reports a measurement aborted by a resource budget; see
// the sim package for field semantics. On event and wall-clock trips
// the measurement entry points also return the partial counter with
// well-defined statistics through the last completed cycle boundary.
type BudgetError = sim.BudgetError

// OscillationError reports a settle-guard trip, naming the nets still
// toggling when the guard was exceeded.
type OscillationError = sim.OscillationError

// Budget resource names (BudgetError.Resource).
const (
	BudgetEvents    = sim.BudgetEvents
	BudgetWallClock = sim.BudgetWallClock
	BudgetMemory    = sim.BudgetMemory
)

// Budget bounds one measurement's resource consumption; the zero value
// is unlimited. Events and WallClock are enforced inside the simulation
// kernels on the periodic cancellation poll: a trip aborts the run with
// a *BudgetError whose Cycle records the completed-cycle boundary, and
// the measurement returns the partial activity counter accumulated
// through that boundary alongside the error. MemoryBytes is enforced at
// admission time, against the cost estimate, before the netlist is even
// compiled.
type Budget struct {
	// Events bounds the kernel's lifetime event count. Word-parallel
	// kernels count word events (one event covers up to 64 lanes), so
	// the same budget buys proportionally more simulated work there;
	// budget an estimate from EstimateCost, not a cross-kernel constant.
	Events uint64
	// MemoryBytes bounds the estimated footprint (CostEstimate
	// .MemoryBytes) of the compiled netlist plus kernel state.
	MemoryBytes uint64
	// WallClock bounds the elapsed time of one measurement pass.
	WallClock time.Duration
}

// IsZero reports whether the budget is entirely unlimited.
func (b Budget) IsZero() bool { return b == Budget{} }

// simBudget resolves the measurement-layer budget into the kernel form,
// anchoring the wall-clock allowance at start.
func (b Budget) simBudget(start time.Time) sim.Budget {
	sb := sim.Budget{Events: b.Events}
	if b.WallClock > 0 {
		sb.Deadline = start.Add(b.WallClock)
	}
	return sb
}

// CostEstimate predicts the resource footprint of one measurement from
// netlist statistics alone — nothing is compiled or simulated. The
// estimate is deliberately coarse (an order-of-magnitude planning
// number for admission control); in-kernel Budget enforcement remains
// the precise mechanism.
type CostEstimate struct {
	// Cells, Nets and Pins are the netlist's raw sizes; Pins counts cell
	// input pins, the CSR fanout volume.
	Cells, Nets, Pins int
	// Depth is the combinational logic depth; SequentialLevels the
	// register pipeline depth (both drive the warm-up default and the
	// glitch amplification heuristic).
	Depth, SequentialLevels int
	// Lanes is the resolved lane decomposition and Steps the number of
	// kernel steps the run executes, warm-up included (for a scalar run
	// Lanes is 1 and Steps counts plain cycles).
	Lanes, Steps int
	// EventsPerStep is the heuristic expected event count of one kernel
	// step: one injection per input plus cell evaluations amplified by
	// the depth-proportional glitching the paper analyzes.
	EventsPerStep uint64
	// Events = EventsPerStep * Steps, the number compared against event
	// limits at admission.
	Events uint64
	// MemoryBytes estimates the resident footprint of the compiled CSR
	// arrays plus one kernel's state.
	MemoryBytes uint64
}

// estimateCost computes the estimate for a config whose engine-level
// defaults are already applied and a resolved lane count.
func estimateCost(n *netlist.Netlist, cfg Config, lanes int) CostEstimate {
	if cfg.Source != nil || cfg.Cycles == 1 {
		lanes = 1 // single-stream paths never decompose
	}
	cfg = cfg.withDefaults(n)
	if cfg.Cycles < lanes {
		lanes = max(cfg.Cycles, 1)
	}
	pins := 0
	for i := range n.Cells {
		pins += len(n.Cells[i].In)
	}
	est := CostEstimate{
		Cells:            n.NumCells(),
		Nets:             n.NumNets(),
		Pins:             pins,
		Depth:            n.LogicDepth(),
		SequentialLevels: n.SequentialLevels(),
		Lanes:            lanes,
	}
	est.Steps = cfg.Warmup + (cfg.Cycles+lanes-1)/lanes
	// Per step: every input injects one event, and each cell evaluates
	// with ~50% input activity, amplified by depth-proportional glitching
	// (the paper's L/F grows with unbalanced path depth). Constants are
	// calibrated to land within ~2-5× of measured unit-delay event
	// counts on the built-in adders and multipliers.
	est.EventsPerStep = uint64(n.InputWidth()) +
		uint64(est.Cells)/2*uint64(1+est.Depth/4)
	if est.EventsPerStep == 0 {
		est.EventsPerStep = 1
	}
	est.Events = est.EventsPerStep * uint64(est.Steps)
	// CSR arrays (per cell: types, offsets, output nets; per pin: input
	// nets and fanout entries) plus one wide kernel's per-net state
	// (packed values, projections, change records, pending counts).
	est.MemoryBytes = 4096 +
		uint64(est.Cells)*48 +
		uint64(est.Nets)*96 +
		uint64(est.Pins)*16
	return est
}

// EstimateCost resolves the request's circuit and predicts its resource
// footprint under the engine's defaults, without compiling or running
// anything. The service's admission layer calls this on every incoming
// measure request.
func (e *Engine) EstimateCost(req MeasureRequest) (CostEstimate, error) {
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return CostEstimate{}, err
	}
	cfg := e.fillDefaults(req.Config)
	return estimateCost(nl, cfg, e.laneCount(cfg)), nil
}

// Load reports the engine's simulation-slot occupancy: slots in use and
// the WithMaxConcurrency capacity. A saturated engine (active ==
// capacity) is the service's signal to shed expensive requests with 429
// instead of queueing them.
func (e *Engine) Load() (active, capacity int) { return len(e.sem), cap(e.sem) }

// admitMemory rejects a measurement whose estimated footprint exceeds
// the request's memory budget — before compilation, so a pathological
// netlist never allocates its CSR arrays. cfg must have engine defaults
// applied.
func (e *Engine) admitMemory(n *netlist.Netlist, cfg Config) error {
	lim := cfg.Budget.MemoryBytes
	if lim == 0 {
		return nil
	}
	if est := estimateCost(n, cfg, e.laneCount(cfg)); est.MemoryBytes > lim {
		return &BudgetError{Resource: BudgetMemory, Limit: lim, Used: est.MemoryBytes}
	}
	return nil
}
