package verilog

import (
	"strings"
	"testing"

	"glitchsim/internal/registry"
)

// FuzzParse feeds arbitrary byte streams to the Verilog parser. Parse
// must never panic: malformed input yields an error (carrying a source
// line number), well-formed input yields a netlist that survives a
// second Write→Parse round trip. The corpus is seeded with the writer's
// output for every registry circuit plus hand-written subset samples,
// so the fuzzer starts from deep inside the accepted grammar (metadata
// block included) and mutates outward.
func FuzzParse(f *testing.F) {
	for _, name := range registry.Names() {
		n, err := registry.Build(name)
		if err != nil {
			f.Fatal(err)
		}
		if n.NumCells() > 200 {
			// The 16-bit multipliers make single executions so slow the
			// fuzzer stops exploring; the small circuits cover the same
			// grammar. TestRoundTripFingerprintRegistry still exercises
			// the full catalogue.
			continue
		}
		var sb strings.Builder
		if err := Write(&sb, n); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}
	f.Add("module m(a, z); input a; output z; buf g(z, a); endmodule")
	f.Add("module m(a, z); input a; output z; wire w; assign w = 1'b1; and g(z, a, w); endmodule")
	f.Add("module m(clk, a, q); input clk; input a; output q; glitchsim_dff g(q, a, clk); endmodule")
	f.Add("//! glitchsim 1\n//! module \"m\"\n//! order a z\nmodule m(a, po_z); input a; output po_z; wire z; not g(z, a); assign po_z = z; endmodule")
	f.Add("/* unterminated comment")
	f.Add("//! bus \"b\" x y\nmodule")

	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("parse error without line number: %v", err)
			}
			return
		}
		// Anything we accept must be writable and re-parseable.
		var sb strings.Builder
		if err := Write(&sb, n); err != nil {
			t.Fatalf("accepted netlist does not write: %v", err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("rewritten netlist does not parse: %v\n--- verilog ---\n%s", err, sb.String())
		}
		if back.NumCells() != n.NumCells() || back.NumNets() != n.NumNets() {
			t.Fatalf("re-parse changed structure: %d/%d -> %d/%d cells/nets",
				n.NumCells(), n.NumNets(), back.NumCells(), back.NumNets())
		}
	})
}
