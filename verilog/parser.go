package verilog

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"glitchsim/netlist"
)

// Parse reads the structural Verilog subset emitted by Write and
// reconstructs a netlist. It parses the first non-helper module in the
// stream; helper module definitions (glitchsim_*) are recognized by name
// and skipped. Supported statements:
//
//	input/output/wire declarations (scalar)
//	gate primitives: buf, not, and, nand, or, nor, xor, xnor
//	helper instances: glitchsim_const0/const1/mux2/maj3/ha/fa/dff
//	assign <net> = 1'b0 | 1'b1 | <net>;
//
// When the source carries the writer's `//!` metadata block, the
// original module/net/cell names, net numbering and bus membership are
// restored exactly, so the result has the same netlist.Fingerprint as
// the netlist that was written. Sources without metadata parse
// structurally: nets are numbered inputs-first then cell outputs in
// statement order.
//
// All parse errors carry the 1-based source line they were detected on.
func Parse(r io.Reader) (*netlist.Netlist, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	meta, err := parseMeta(string(src))
	if err != nil {
		return nil, err
	}
	toks, err := lex(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, meta: meta}
	return p.parse()
}

// --- metadata ---

// fileMeta is the decoded `//!` block: everything Parse needs to
// reconstruct a written netlist exactly. present is false when the
// source carries no metadata at all.
type fileMeta struct {
	present   bool
	module    string            // original module name; meaningful when moduleSet
	moduleSet bool              // a module directive was seen ("" is a valid name)
	order     []string          // net Verilog identifiers in net-ID order
	nets      map[string]string // verilog ident -> original net name (when differing)
	cells     map[string]string // instance ident -> original cell name (when differing)
	buses     []busMeta
}

type busMeta struct {
	name    string
	members []string
}

func parseMeta(src string) (*fileMeta, error) {
	m := &fileMeta{nets: map[string]string{}, cells: map[string]string{}}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, "//!") {
			continue
		}
		lineNo := i + 1
		fields, err := metaFields(strings.TrimSpace(line[3:]))
		if err != nil {
			return nil, fmt.Errorf("verilog: line %d: bad metadata: %v", lineNo, err)
		}
		if len(fields) == 0 {
			return nil, fmt.Errorf("verilog: line %d: empty metadata directive", lineNo)
		}
		m.present = true
		switch dir := fields[0]; dir {
		case "glitchsim":
			// Version marker; current sources say "glitchsim 1".
		case "module":
			if len(fields) != 2 {
				return nil, fmt.Errorf("verilog: line %d: module directive wants one name", lineNo)
			}
			m.module = fields[1]
			m.moduleSet = true
		case "order":
			m.order = append(m.order, fields[1:]...)
		case "net":
			if len(fields) != 3 {
				return nil, fmt.Errorf("verilog: line %d: net directive wants ident and name", lineNo)
			}
			m.nets[fields[1]] = fields[2]
		case "cell":
			if len(fields) != 3 {
				return nil, fmt.Errorf("verilog: line %d: cell directive wants ident and name", lineNo)
			}
			m.cells[fields[1]] = fields[2]
		case "bus":
			if len(fields) < 2 {
				return nil, fmt.Errorf("verilog: line %d: bus directive wants a name", lineNo)
			}
			m.buses = append(m.buses, busMeta{name: fields[1], members: fields[2:]})
		default:
			return nil, fmt.Errorf("verilog: line %d: unknown metadata directive %q", lineNo, dir)
		}
	}
	return m, nil
}

// metaFields splits a metadata payload into fields: whitespace-separated
// identifiers plus Go-quoted strings (which may contain any bytes).
func metaFields(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			return out, nil
		}
		if s[0] == '"' {
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted string")
			}
			val, err := strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			out = append(out, val)
			s = s[len(q):]
			continue
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		out = append(out, s[:end])
		s = s[end:]
	}
}

// --- lexer ---

type token struct {
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case isIdentRune(c) || c == '\'':
			j := i
			for j < len(src) && (isIdentRune(src[j]) || src[j] == '\'') {
				j++
			}
			toks = append(toks, token{text: src[i:j], line: line})
			i = j
		case strings.ContainsRune("(),;=@<>?:&|^~", rune(c)):
			// Two-char operator <= used in helper bodies.
			if c == '<' && i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{text: "<=", line: line})
				i += 2
				continue
			}
			toks = append(toks, token{text: string(c), line: line})
			i++
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentRune(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
	meta *fileMeta
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// line returns the source line of the token about to be consumed (or of
// the last token at end of input).
func (p *parser) line() int {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].line
	}
	if len(p.toks) > 0 {
		return p.toks[len(p.toks)-1].line
	}
	return 1
}

func (p *parser) expect(want string) error {
	ln := p.line()
	if got := p.next(); got != want {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", ln, want, got)
	}
	return nil
}

var helperSet = func() map[string]netlist.CellType {
	m := map[string]netlist.CellType{}
	for t, name := range helperModules {
		m[name] = t
	}
	return m
}()

var primitiveSet = func() map[string]netlist.CellType {
	m := map[string]netlist.CellType{}
	for t, name := range primitives {
		m[name] = t
	}
	return m
}()

// decl is one declared port or wire name.
type decl struct {
	name string
	line int
}

// statement is one ordered module body statement: a cell instantiation,
// a constant assign, or an alias assign.
type statement struct {
	kind stmtKind
	typ  netlist.CellType // stmtInst
	name string           // stmtInst: instance name
	args []string         // stmtInst: connections, outputs first
	dst  string           // stmtConst / stmtAlias
	src  string           // stmtAlias
	bit  int              // stmtConst
	line int
}

type stmtKind int

const (
	stmtInst stmtKind = iota
	stmtConst
	stmtAlias
)

func (p *parser) parse() (*netlist.Netlist, error) {
	for p.peek() != "" {
		if p.peek() != "module" {
			return nil, fmt.Errorf("verilog: line %d: expected module, got %q", p.line(), p.peek())
		}
		// Look ahead at the module name.
		if p.pos+1 >= len(p.toks) {
			return nil, fmt.Errorf("verilog: line %d: module keyword at end of input", p.line())
		}
		name := p.toks[p.pos+1].text
		if _, isHelper := helperSet[name]; isHelper {
			p.skipModule()
			continue
		}
		return p.parseModule()
	}
	return nil, fmt.Errorf("verilog: line 1: no user module found")
}

func (p *parser) skipModule() {
	for p.peek() != "" && p.next() != "endmodule" {
	}
}

func (p *parser) parseModule() (*netlist.Netlist, error) {
	modLine := p.line()
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	modName := p.next()
	// Port list (names only; directions come from declarations).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next() // port name or comma
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs, wires []decl
	var stmts []statement

	for {
		ln := p.line()
		switch t := p.next(); t {
		case "endmodule":
			return buildNetlist(modName, p.meta, inputs, outputs, wires, stmts, modLine, ln)
		case "":
			return nil, fmt.Errorf("verilog: line %d: unexpected end of input in module %s", ln, modName)
		case "input", "output", "wire":
			for {
				nameLn := p.line()
				name := p.next()
				d := decl{name: name, line: nameLn}
				switch t {
				case "input":
					inputs = append(inputs, d)
				case "output":
					outputs = append(outputs, d)
				default:
					wires = append(wires, d)
				}
				sepLn := p.line()
				if sep := p.next(); sep == ";" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("verilog: line %d: bad declaration separator %q", sepLn, sep)
				}
			}
		case "assign":
			dst := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next()
			switch rhs {
			case "1'b0":
				stmts = append(stmts, statement{kind: stmtConst, dst: dst, bit: 0, line: ln})
			case "1'b1":
				stmts = append(stmts, statement{kind: stmtConst, dst: dst, bit: 1, line: ln})
			default:
				stmts = append(stmts, statement{kind: stmtAlias, dst: dst, src: rhs, line: ln})
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			typ, okP := primitiveSet[t]
			htyp, okH := helperSet[t]
			if !okP && !okH {
				return nil, fmt.Errorf("verilog: line %d: unsupported statement %q", ln, t)
			}
			if okH {
				typ = htyp
			}
			instName := p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var args []string
			for {
				args = append(args, p.next())
				sepLn := p.line()
				if sep := p.next(); sep == ")" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("verilog: line %d: bad argument separator %q", sepLn, sep)
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			stmts = append(stmts, statement{kind: stmtInst, typ: typ, name: instName, args: args, line: ln})
		}
	}
}

// splitInst validates an instantiation's connection list and splits it
// into output and input nets (stripping the trailing clk of DFFs).
func splitInst(st *statement) (outs, ins []string, err error) {
	nOuts := st.typ.Outputs()
	if len(st.args) < nOuts {
		return nil, nil, fmt.Errorf("verilog: line %d: instance %s has too few connections", st.line, st.name)
	}
	outs, ins = st.args[:nOuts], st.args[nOuts:]
	if st.typ == netlist.DFF {
		if len(ins) == 0 || ins[len(ins)-1] != "clk" {
			return nil, nil, fmt.Errorf("verilog: line %d: dff %s must end with clk", st.line, st.name)
		}
		ins = ins[:len(ins)-1]
	}
	min, max := st.typ.InputRange()
	if len(ins) < min || (max >= 0 && len(ins) > max) {
		return nil, nil, fmt.Errorf("verilog: line %d: instance %s has %d inputs, want %d..%d",
			st.line, st.name, len(ins), min, max)
	}
	return outs, ins, nil
}

// buildNetlist assembles the parsed pieces, exactly (metadata present)
// or structurally. Builder methods panic on structural misuse the
// explicit checks below did not anticipate; the recover converts any
// such escape into a regular parse error so Parse never panics on
// malformed input.
func buildNetlist(modName string, meta *fileMeta, inputs, outputs, wires []decl,
	stmts []statement, modLine, endLine int) (n *netlist.Netlist, err error) {
	defer func() {
		if r := recover(); r != nil {
			n, err = nil, fmt.Errorf("verilog: line %d: invalid netlist: %v", modLine, r)
		}
	}()
	if meta.present {
		return buildExact(modName, meta, inputs, outputs, wires, stmts, endLine)
	}
	return buildLoose(modName, inputs, outputs, stmts, endLine)
}

// buildExact reconstructs a written netlist from the metadata block:
// nets are created in the recorded order under their original names, so
// the result is structurally identical (same Fingerprint) to the
// netlist Write was given.
func buildExact(modName string, meta *fileMeta, inputs, outputs, wires []decl,
	stmts []statement, endLine int) (*netlist.Netlist, error) {

	name := modName
	if meta.moduleSet {
		name = meta.module // "" is a valid original name
	}
	b := netlist.NewBuilder(name)

	inputSet := map[string]bool{}
	for _, d := range inputs {
		if d.name == "clk" {
			continue // implicit clock
		}
		if inputSet[d.name] {
			return nil, fmt.Errorf("verilog: line %d: input %s declared twice", d.line, d.name)
		}
		inputSet[d.name] = true
	}
	declared := map[string]bool{}
	for _, d := range wires {
		declared[d.name] = true
	}

	// Create every net in metadata order; original names of inputs and
	// wires alike come from the net directives (default: the ident).
	nets := map[string]netlist.NetID{}
	origSeen := map[string]bool{}
	var piOrder []string
	for _, v := range meta.order {
		if _, dup := nets[v]; dup {
			return nil, fmt.Errorf("verilog: line %d: net %s appears twice in metadata order", endLine, v)
		}
		if !inputSet[v] && !declared[v] {
			return nil, fmt.Errorf("verilog: line %d: metadata net %s is not declared", endLine, v)
		}
		orig := v
		if o, ok := meta.nets[v]; ok {
			orig = o
		}
		if origSeen[orig] {
			return nil, fmt.Errorf("verilog: line %d: original net name %q appears twice in metadata", endLine, orig)
		}
		origSeen[orig] = true
		if inputSet[v] {
			nets[v] = b.Input(orig)
			piOrder = append(piOrder, v)
		} else {
			nets[v] = b.Net(orig)
		}
	}
	if len(piOrder) != len(inputSet) {
		return nil, fmt.Errorf("verilog: line %d: %d inputs declared but %d appear in metadata order",
			endLine, len(inputSet), len(piOrder))
	}

	// Cells in statement order; assigns to non-net ports are aliases.
	driven := map[string]bool{}
	aliases := map[string]string{}
	for i := range stmts {
		st := &stmts[i]
		switch st.kind {
		case stmtAlias:
			if _, isNet := nets[st.dst]; isNet {
				return nil, fmt.Errorf("verilog: line %d: assign to net %s not supported with metadata", st.line, st.dst)
			}
			aliases[st.dst] = st.src
		case stmtConst:
			id, ok := nets[st.dst]
			if !ok {
				return nil, fmt.Errorf("verilog: line %d: constant assign to undeclared net %s", st.line, st.dst)
			}
			if driven[st.dst] || inputSet[st.dst] {
				return nil, fmt.Errorf("verilog: line %d: net %s driven twice", st.line, st.dst)
			}
			driven[st.dst] = true
			t := netlist.Const0
			if st.bit == 1 {
				t = netlist.Const1
			}
			b.AddCellDriving(t, "", nil, []netlist.NetID{id})
		case stmtInst:
			outs, ins, err := splitInst(st)
			if err != nil {
				return nil, err
			}
			outIDs := make([]netlist.NetID, len(outs))
			for pin, o := range outs {
				id, ok := nets[o]
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: output %s of instance %s is not a declared net", st.line, o, st.name)
				}
				if driven[o] || inputSet[o] {
					return nil, fmt.Errorf("verilog: line %d: net %s driven twice", st.line, o)
				}
				driven[o] = true
				outIDs[pin] = id
			}
			inIDs := make([]netlist.NetID, len(ins))
			for port, a := range ins {
				id, ok := nets[a]
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: instance %s reads undeclared net %s", st.line, st.name, a)
				}
				inIDs[port] = id
			}
			cellName := st.name
			if o, ok := meta.cells[st.name]; ok {
				cellName = o
			}
			b.AddCellDriving(st.typ, cellName, inIDs, outIDs)
		}
	}

	// Primary outputs in declaration order, resolved through aliases.
	resolve := resolver(nets, aliases)
	for _, d := range outputs {
		id, ok := resolve(d.name)
		if !ok {
			return nil, fmt.Errorf("verilog: line %d: output %s is undriven", d.line, d.name)
		}
		b.Output("", id)
	}

	// Buses from metadata.
	for _, bus := range meta.buses {
		ids := make([]netlist.NetID, len(bus.members))
		for i, v := range bus.members {
			id, ok := nets[v]
			if !ok {
				return nil, fmt.Errorf("verilog: line %d: bus %q references unknown net %s", endLine, bus.name, v)
			}
			ids[i] = id
		}
		b.NameBus(bus.name, ids)
	}

	built, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("verilog: line %d: %w", endLine, err)
	}
	return built, nil
}

// buildLoose assembles a netlist from sources without metadata: nets are
// numbered inputs-first, then cell outputs in statement order (forward
// references are fine — every output net is declared before any cell is
// created).
func buildLoose(modName string, inputs, outputs []decl, stmts []statement, endLine int) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(modName)
	nets := map[string]netlist.NetID{}

	for _, d := range inputs {
		if d.name == "clk" {
			continue // implicit clock
		}
		if _, dup := nets[d.name]; dup {
			return nil, fmt.Errorf("verilog: line %d: input %s declared twice", d.line, d.name)
		}
		nets[d.name] = b.Input(d.name)
	}

	// Pass 1: declare every driven net, validating single drivers and
	// connection counts — an alias assign drives its destination too, so
	// it conflicts with gates, constants, inputs and other aliases.
	// Pass 2: create the cells.
	aliases := map[string]string{}
	for i := range stmts {
		st := &stmts[i]
		var outs []string
		switch st.kind {
		case stmtAlias:
			_, drivenByNet := nets[st.dst]
			_, drivenByAlias := aliases[st.dst]
			if drivenByNet || drivenByAlias {
				return nil, fmt.Errorf("verilog: line %d: net %s driven twice", st.line, st.dst)
			}
			aliases[st.dst] = st.src
			continue
		case stmtConst:
			outs = []string{st.dst}
		case stmtInst:
			var err error
			if outs, _, err = splitInst(st); err != nil {
				return nil, err
			}
		}
		for _, o := range outs {
			_, drivenByNet := nets[o]
			_, drivenByAlias := aliases[o]
			if drivenByNet || drivenByAlias {
				return nil, fmt.Errorf("verilog: line %d: net %s driven twice", st.line, o)
			}
			nets[o] = b.Net(o)
		}
	}
	// Instance inputs resolve through the alias map too (assign w = a;
	// buf g(z, w);), not just primary outputs.
	resolve := resolver(nets, aliases)
	for i := range stmts {
		st := &stmts[i]
		switch st.kind {
		case stmtAlias:
		case stmtConst:
			t := netlist.Const0
			if st.bit == 1 {
				t = netlist.Const1
			}
			b.AddCellDriving(t, "", nil, []netlist.NetID{nets[st.dst]})
		case stmtInst:
			outs, ins, err := splitInst(st)
			if err != nil {
				return nil, err
			}
			outIDs := make([]netlist.NetID, len(outs))
			for pin, o := range outs {
				outIDs[pin] = nets[o]
			}
			inIDs := make([]netlist.NetID, len(ins))
			for port, a := range ins {
				id, ok := resolve(a)
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: instance %s reads net %s which has no driver", st.line, st.name, a)
				}
				inIDs[port] = id
			}
			b.AddCellDriving(st.typ, st.name, inIDs, outIDs)
		}
	}

	// Output-port nets that are pure aliases of internal nets (the
	// writer's po_* pattern) are registered as primary outputs of their
	// source nets, under the alias name with the po_ prefix stripped.
	for _, d := range outputs {
		id, ok := resolve(d.name)
		if !ok {
			return nil, fmt.Errorf("verilog: line %d: output %s is undriven", d.line, d.name)
		}
		b.Output(strings.TrimPrefix(d.name, "po_"), id)
	}
	built, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("verilog: line %d: %w", endLine, err)
	}
	return built, nil
}

// resolver returns a lookup through the alias map (assign dst = src)
// into real nets, with a visited set so alias cycles terminate.
func resolver(nets map[string]netlist.NetID, aliases map[string]string) func(string) (netlist.NetID, bool) {
	return func(name string) (netlist.NetID, bool) {
		seen := map[string]bool{}
		for {
			if id, ok := nets[name]; ok {
				return id, true
			}
			if seen[name] {
				return netlist.NoNet, false
			}
			seen[name] = true
			src, ok := aliases[name]
			if !ok {
				return netlist.NoNet, false
			}
			name = src
		}
	}
}

// sortedHelperNames returns the helper module names (for the parser's
// recognizer), deterministic for tests.
func sortedHelperNames() []string {
	out := make([]string, 0, len(helperModules))
	for _, v := range helperModules {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
