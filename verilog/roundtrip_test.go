package verilog

import (
	"strings"
	"testing"

	"glitchsim/internal/registry"
	"glitchsim/netlist"
)

// TestRoundTripFingerprintRegistry is the golden interchange test: for
// every built-in circuit, Write→Parse must reproduce the netlist
// exactly — same Fingerprint, which covers the module name, every cell
// (type, name, pins), every net (name, driver), PI/PO order and bus
// membership.
func TestRoundTripFingerprintRegistry(t *testing.T) {
	for _, name := range registry.Names() {
		t.Run(name, func(t *testing.T) {
			n, err := registry.Build(name)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := Write(&sb, n); err != nil {
				t.Fatalf("write: %v", err)
			}
			back, err := Parse(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got, want := back.Fingerprint(), n.Fingerprint(); got != want {
				t.Errorf("fingerprint changed across Verilog round trip:\n  want %s\n  got  %s", want, got)
			}
		})
	}
}

// TestRoundTripPreservesNames spot-checks that metadata restores names
// the Verilog identifier sanitizer would otherwise lose.
func TestRoundTripPreservesNames(t *testing.T) {
	b := netlist.NewBuilder("weird name/v2")
	x := b.InputBus("x", 2)
	s, co := b.HalfAdder(x[0], x[1])
	b.Output("sum[0]", s)
	b.OutputBus("carry bus", []netlist.NetID{co})
	n := b.MustBuild()

	var sb strings.Builder
	if err := Write(&sb, n); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if back.Name != n.Name {
		t.Errorf("module name: got %q, want %q", back.Name, n.Name)
	}
	if back.NetByName("x[0]") == netlist.NoNet || back.NetByName("x[1]") == netlist.NoNet {
		t.Error("bracketed input names lost")
	}
	if len(back.Bus("carry bus")) != 1 {
		t.Error("bus with space in name lost")
	}
	if got, want := back.Fingerprint(), n.Fingerprint(); got != want {
		t.Errorf("fingerprint changed:\n  want %s\n  got  %s", want, got)
	}
}

// TestParseErrorsCarryLineNumbers asserts the satellite requirement that
// every parser diagnostic names the offending source line.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not a module":   "wire x;",
		"module at end":  "module",
		"truncated":      "module m(a); input a;",
		"bad statement":  "module m(a); input a;\nfrobnicate g(a); endmodule",
		"undriven out":   "module m(a, z); input a; output z; endmodule",
		"double driver":  "module m(a, z); input a; output z; assign z = 1'b0; not g(z, a); endmodule",
		"bad char":       "module m(a); input a; $x endmodule",
		"dup input":      "module m(a); input a; input a; endmodule",
		"no inputs gate": "module m(z); output z; and g(z); endmodule",
		"undriven read":  "module m(a, z); input a; output z; not g(z, ghost); endmodule",
		"bad metadata":   "//! net onlyident\nmodule m(a); input a; endmodule",
		"bad meta quote": "//! module \"unterminated\nmodule m(a); input a; endmodule",
		"meta undecl":    "//! order ghost\nmodule m(a, z); input a; output z; buf g(z, a); endmodule",
	}
	for name, src := range cases {
		_, err := Parse(strings.NewReader(src))
		if err == nil {
			t.Errorf("%s: expected parse error", name)
			continue
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: error %q carries no line number", name, err)
		}
	}
}
