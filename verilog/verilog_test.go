package verilog

import (
	"strings"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
	"glitchsim/netlist"
)

func roundTrip(t *testing.T, n *netlist.Netlist) *netlist.Netlist {
	t.Helper()
	var sb strings.Builder
	if err := Write(&sb, n); err != nil {
		t.Fatalf("write: %v", err)
	}
	parsed, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n--- verilog ---\n%s", err, sb.String())
	}
	return parsed
}

// simEquivalent verifies cycle-by-cycle PO equivalence on random
// stimulus. The parsed netlist may order PIs differently; both are
// driven through name-matched vectors.
func simEquivalent(t *testing.T, a, b *netlist.Netlist, cycles int, seed uint64) {
	t.Helper()
	if a.InputWidth() != b.InputWidth() || a.OutputWidth() != b.OutputWidth() {
		t.Fatalf("interface mismatch: %d/%d vs %d/%d",
			a.InputWidth(), a.OutputWidth(), b.InputWidth(), b.OutputWidth())
	}
	sa := sim.New(a, sim.Options{})
	sb := sim.New(b, sim.Options{})
	rng := stimulus.NewPRNG(seed)
	va := make(logic.Vector, a.InputWidth())
	vb := make(logic.Vector, b.InputWidth())
	// Map PI names of a to PI positions in b (names survive sanitized).
	bIndex := map[string]int{}
	for i, id := range b.PIs {
		bIndex[b.Net(id).Name] = i
	}
	for cycle := 0; cycle < cycles; cycle++ {
		for i, id := range a.PIs {
			bit := logic.FromBit(rng.Uint64())
			va[i] = bit
			// Metadata round trips keep original names; plain parses see
			// the sanitized identifier.
			j, ok := bIndex[a.Net(id).Name]
			if !ok {
				j, ok = bIndex[ident(a.Net(id).Name)]
			}
			if !ok {
				t.Fatalf("input %q lost in round trip", a.Net(id).Name)
			}
			vb[j] = bit
		}
		if err := sa.Step(va); err != nil {
			t.Fatal(err)
		}
		if err := sb.Step(vb); err != nil {
			t.Fatal(err)
		}
		oa, ob := sa.Outputs(), sb.Outputs()
		for j := range oa {
			if oa[j] != ob[j] {
				t.Fatalf("cycle %d output %d differs: %v vs %v", cycle, j, oa[j], ob[j])
			}
		}
	}
}

func TestWriteContainsStructure(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	var sb strings.Builder
	if err := Write(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module rca4(", "input a_0_", "glitchsim_fa", "assign", "endmodule",
		"module glitchsim_fa",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
}

func TestRoundTripRCA(t *testing.T) {
	n := circuits.NewRCA(6, circuits.Cells)
	parsed := roundTrip(t, n)
	if parsed.NumCells() != n.NumCells() {
		t.Errorf("cell count changed: %d -> %d", n.NumCells(), parsed.NumCells())
	}
	simEquivalent(t, n, parsed, 150, 5)
}

func TestRoundTripGateLevel(t *testing.T) {
	n := circuits.NewRCA(5, circuits.Gates)
	simEquivalent(t, n, roundTrip(t, n), 150, 6)
}

func TestRoundTripSequential(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{
		Width: 4, Style: circuits.Cells, RegisterInputs: true,
	})
	parsed := roundTrip(t, n)
	if parsed.NumDFFs() != n.NumDFFs() {
		t.Errorf("DFF count changed: %d -> %d", n.NumDFFs(), parsed.NumDFFs())
	}
	simEquivalent(t, n, parsed, 100, 7)
}

func TestRoundTripMultiplier(t *testing.T) {
	n := circuits.NewWallaceMultiplier(4, circuits.Cells)
	simEquivalent(t, n, roundTrip(t, n), 120, 8)
}

func TestRoundTripCLA(t *testing.T) {
	n := circuits.NewCLA(8)
	simEquivalent(t, n, roundTrip(t, n), 120, 9)
}

func TestPropertyRoundTripRandomNetlists(t *testing.T) {
	rng := stimulus.NewPRNG(606)
	for trial := 0; trial < 15; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(4)),
			Gates:        10 + int(rng.Uintn(40)),
			Outputs:      3,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 == 0,
		})
		parsed := roundTrip(t, n)
		if parsed.NumCells() < n.NumCells() {
			t.Fatalf("trial %d: cells lost: %d -> %d", trial, n.NumCells(), parsed.NumCells())
		}
		simEquivalent(t, n, parsed, 30, rng.Uint64())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"not a module":  "wire x;",
		"truncated":     "module m(a); input a;",
		"bad statement": "module m(a); input a; frobnicate g(a); endmodule",
		"undriven out":  "module m(a, z); input a; output z; endmodule",
		"double driver": "module m(a, z); input a; output z; assign z = 1'b0; not g(z, a); endmodule",
		"bad char":      "module m(a); input a; $x endmodule",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseStandaloneSource(t *testing.T) {
	// Hand-written Verilog (not produced by Write) in the same subset.
	src := `
// half adder with registered carry
module ha_reg(clk, x, y, s, co_q);
  input clk;
  input x, y;
  output s, co_q;
  wire co;
  xor g0(s, x, y);
  and g1(co, x, y);
  glitchsim_dff g2(co_q, co, clk);
endmodule
` + helperLibrary
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 3 || n.NumDFFs() != 1 {
		t.Fatalf("parsed %d cells, %d dffs", n.NumCells(), n.NumDFFs())
	}
	s := sim.New(n, sim.Options{})
	// x=1, y=1 -> s=0, co_q delayed by a cycle.
	if err := s.Step(logic.Vector{logic.L1, logic.L1}); err != nil {
		t.Fatal(err)
	}
	out1 := s.Outputs()
	if out1[0] != logic.L0 {
		t.Errorf("sum = %v, want 0", out1[0])
	}
	if err := s.Step(logic.Vector{logic.L0, logic.L0}); err != nil {
		t.Fatal(err)
	}
	if got := s.Outputs()[1]; got != logic.L1 {
		t.Errorf("registered carry = %v, want 1 (one cycle after x=y=1)", got)
	}
}

func TestIdent(t *testing.T) {
	cases := map[string]string{
		"a[3]":  "a_3_",
		"n12":   "n12",
		"3x":    "n3x",
		"":      "n",
		"ok_id": "ok_id",
	}
	for in, want := range cases {
		if got := ident(in); got != want {
			t.Errorf("ident(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHelperNamesStable(t *testing.T) {
	names := sortedHelperNames()
	if len(names) != 7 {
		t.Fatalf("expected 7 helpers, got %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("helper names unsorted")
		}
	}
}
