package verilog

import (
	"strings"
	"testing"

	"glitchsim/netlist"
)

func TestLexerComments(t *testing.T) {
	src := `
// line comment with module keyword inside
/* block comment
   spanning lines with ; tokens */
module m(a, z); input a; output z; buf g(z, a); endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 1 {
		t.Fatalf("cells = %d", n.NumCells())
	}
}

func TestLexerRejectsStrayCharacters(t *testing.T) {
	for _, src := range []string{"module m(a); input a; # endmodule", "mod%ule"} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("source %q: expected error", src)
		}
	}
}

func TestParseAssignAlias(t *testing.T) {
	// assign chains must resolve transitively to the driving net.
	src := `
module m(a, z);
  input a;
  output z;
  wire w1, w2;
  not g(w1, a);
  assign w2 = w1;
  assign z = w2;
endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.OutputWidth() != 1 || n.NumCells() != 1 {
		t.Fatalf("unexpected structure: %d outputs, %d cells", n.OutputWidth(), n.NumCells())
	}
}

func TestParseAliasAsGateInput(t *testing.T) {
	// Aliases are valid on gate inputs too, not just primary outputs.
	src := `
module m(a, z);
  input a;
  output z;
  wire w;
  assign w = a;
  buf g(z, w);
endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 1 {
		t.Fatalf("cells = %d, want 1 (alias should not materialize)", n.NumCells())
	}
	buf := n.Cell(0)
	if n.Net(buf.In[0]).Name != "a" {
		t.Errorf("buf reads %q, want the aliased input a", n.Net(buf.In[0]).Name)
	}
}

func TestParseConstantAssigns(t *testing.T) {
	src := `
module m(a, z0, z1);
  input a;
  output z0, z1;
  wire k0, k1;
  assign k0 = 1'b0;
  assign k1 = 1'b1;
  and g0(z0, a, k1);
  or  g1(z1, a, k0);
endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	counts := n.CellCounts()
	if counts[netlist.Const0] != 1 || counts[netlist.Const1] != 1 {
		t.Fatalf("constants not recreated: %v", counts)
	}
}

func TestParseMultipleHelperInstances(t *testing.T) {
	src := `
module m(clk, a, b, z);
  input clk; input a, b;
  output z;
  wire s, co, q;
  glitchsim_ha g0(s, co, a, b);
  glitchsim_dff g1(q, co, clk);
  glitchsim_mux2 g2(z, s, q, b);
endmodule
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumCells() != 3 || n.NumDFFs() != 1 {
		t.Fatalf("structure: %d cells %d dffs", n.NumCells(), n.NumDFFs())
	}
}

func TestParseDFFWithoutClk(t *testing.T) {
	src := `module m(a, z); input a; output z; glitchsim_dff g(z, a, a); endmodule`
	if _, err := Parse(strings.NewReader(src)); err == nil {
		t.Fatal("dff without trailing clk should fail")
	}
}

func TestParseTooFewConnections(t *testing.T) {
	src := `module m(a, z); input a; output z; glitchsim_fa g(z); endmodule`
	if _, err := Parse(strings.NewReader(src)); err == nil {
		t.Fatal("short connection list should fail")
	}
}

func TestParseBadSeparators(t *testing.T) {
	// The port list itself is parsed leniently (directions come from the
	// declarations), so only declaration and argument separators error.
	for name, src := range map[string]string{
		"decl": `module m(a); input a; b; endmodule`,
		"args": `module m(a,z); input a; output z; buf g(z; a); endmodule`,
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriterCoversEveryCellType(t *testing.T) {
	// Every netlist cell type must have an emission path: a primitive, a
	// helper module, or the constant assign form.
	for _, typ := range []netlist.CellType{
		netlist.Const0, netlist.Const1, netlist.Buf, netlist.Not,
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Mux2, netlist.Maj3,
		netlist.HA, netlist.FA, netlist.DFF,
	} {
		_, isPrim := primitives[typ]
		_, isHelper := helperModules[typ]
		isConst := typ == netlist.Const0 || typ == netlist.Const1
		if !isPrim && !isHelper && !isConst {
			t.Errorf("cell type %v has no Verilog emission path", typ)
		}
	}
}

func TestParseRejectsAliasDriverConflicts(t *testing.T) {
	// An alias assign drives its destination: combining it with any
	// other driver is multi-driver Verilog and must be rejected, not
	// silently resolved.
	for name, src := range map[string]string{
		"alias then gate": `module m(a, z); input a; output z; assign z = a; not g(z, a); endmodule`,
		"gate then alias": `module m(a, z); input a; output z; not g(z, a); assign z = a; endmodule`,
		"alias twice":     `module m(a, b, z); input a, b; output z; assign z = a; assign z = b; endmodule`,
		"alias to input":  `module m(a, b); input a, b; assign a = b; endmodule`,
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: multi-driver source accepted", name)
		}
	}
}

func TestRoundTripAwkwardModuleNames(t *testing.T) {
	// Module names colliding with the helper namespace (or empty) must
	// still round-trip fingerprint-exact: the emitted module identifier
	// is mangled but metadata restores the original.
	for _, name := range []string{"glitchsim_dff", "glitchsim_const0", ""} {
		b := netlist.NewBuilder(name)
		a := b.Input("a")
		b.Output("z", b.Not(a))
		n := b.MustBuild()
		var sb strings.Builder
		if err := Write(&sb, n); err != nil {
			t.Fatalf("%q: write: %v", name, err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%q: parse: %v\n%s", name, err, sb.String())
		}
		if back.Name != name {
			t.Errorf("module name %q became %q", name, back.Name)
		}
		if back.Fingerprint() != n.Fingerprint() {
			t.Errorf("%q: fingerprint changed across round trip", name)
		}
	}
}
