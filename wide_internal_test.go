package glitchsim

// White-box tests of the lane-decomposition layer: the word-parallel
// execution and the scalar lane-by-lane fallback must be bit-identical
// for the same resolved configuration, quotas must partition the cycle
// budget exactly, and Lanes=1 must reproduce the historical
// single-stream measurement.

import (
	"context"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

func TestMeasureLanesScalarWideAgree(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name     string
		build    func() *netlist.Netlist
		cycles   int
		lanes    int
		dm       delay.Model
		inertial bool
	}{
		{"rca8-unit-64", func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) }, 100, 64, delay.Unit(), false},
		{"wallace8-unit-64", func() *netlist.Netlist { return circuits.NewWallaceMultiplier(8, circuits.Cells) }, 70, 64, delay.Unit(), false},
		{"dirdet8-uniform2-17", func() *netlist.Netlist {
			return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
		}, 90, 17, delay.Uniform(2), false},
		{"rca8-short-run", func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) }, 5, 64, delay.Unit(), false},
		// Non-uniform models: the wide-event kernel replaces the deleted
		// scalar lane-by-lane fallback and must stay bit-identical to it.
		{"array8-faratio-64", func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) }, 60, 64, delay.FullAdderRatio(2, 1), false},
		{"wallace8-typical-64", func() *netlist.Netlist { return circuits.NewWallaceMultiplier(8, circuits.Cells) }, 60, 64, delay.Typical(), false},
		{"dirdet8-faratio-23", func() *netlist.Netlist {
			return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
		}, 90, 23, delay.FullAdderRatio(3, 1), false},
		{"rca8-zero-64", func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) }, 50, 64, delay.Zero(), false},
		{"array8-typical-inertial", func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) }, 40, 64, delay.Typical(), true},
	} {
		nl := tc.build()
		c := sim.Compile(nl)
		cfg := Config{Cycles: tc.cycles, Seed: 9, Delay: tc.dm, Inertial: tc.inertial}.withDefaults(nl)

		lanes := tc.lanes
		if cfg.Cycles < lanes {
			lanes = cfg.Cycles
		}
		seeds := laneSeeds(cfg.Seed, lanes)
		quotas := laneQuotas(cfg.Cycles, lanes)

		wide, err := measureWide(ctx, c, cfg, lanes)
		if err != nil {
			t.Fatalf("%s: wide: %v", tc.name, err)
		}

		// Scalar reference: the same lanes, one stream at a time.
		var agg *core.Counter
		for l, seed := range seeds {
			lcfg := cfg
			lcfg.Seed = seed
			lcfg.Cycles = quotas[l]
			lcfg.Source = nil
			lcfg = lcfg.withDefaults(nl)
			counter, err := measureStream(ctx, c, lcfg)
			if err != nil {
				t.Fatalf("%s: scalar lane %d: %v", tc.name, l, err)
			}
			if agg == nil {
				agg = counter
			} else if err := agg.Merge(counter); err != nil {
				t.Fatal(err)
			}
		}

		if wide.Cycles() != agg.Cycles() || wide.Cycles() != tc.cycles {
			t.Fatalf("%s: cycles wide=%d scalar=%d want %d", tc.name, wide.Cycles(), agg.Cycles(), tc.cycles)
		}
		for i := 0; i < nl.NumNets(); i++ {
			id := netlist.NetID(i)
			if got, want := wide.Stats(id), agg.Stats(id); got != want {
				t.Fatalf("%s: net %s stats differ\nwide:   %+v\nscalar: %+v", tc.name, nl.Nets[i].Name, got, want)
			}
		}
	}
}

// TestLaneQuotasPartitionCycles: quotas sum to the cycle budget, are
// non-increasing, and differ by at most one.
func TestLaneQuotasPartitionCycles(t *testing.T) {
	for _, tc := range []struct{ cycles, lanes int }{
		{500, 64}, {64, 64}, {65, 64}, {63, 64}, {200, 7}, {1, 1}, {4320, 64},
	} {
		q := laneQuotas(tc.cycles, tc.lanes)
		sum := 0
		for l, v := range q {
			sum += v
			if l > 0 && v > q[l-1] {
				t.Fatalf("cycles=%d lanes=%d: quotas increase at %d", tc.cycles, tc.lanes, l)
			}
		}
		if sum != tc.cycles {
			t.Fatalf("cycles=%d lanes=%d: quota sum %d", tc.cycles, tc.lanes, sum)
		}
		if q[0]-q[len(q)-1] > 1 {
			t.Fatalf("cycles=%d lanes=%d: quota spread %d..%d", tc.cycles, tc.lanes, q[0], q[len(q)-1])
		}
	}
}

// TestLaneSeedsStable: lane seeds depend only on the base seed and lane
// index — a shorter lane list is a prefix of a longer one — and distinct
// base seeds give distinct streams.
func TestLaneSeedsStable(t *testing.T) {
	a := laneSeeds(1, 64)
	b := laneSeeds(1, 16)
	for l := range b {
		if a[l] != b[l] {
			t.Fatalf("lane %d seed differs across lane counts", l)
		}
	}
	c := laneSeeds(2, 16)
	same := 0
	for l := range c {
		if c[l] == b[l] {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d lane seeds collide across base seeds", same)
	}
}

// TestLanesOneIsHistoricalStream: Lanes=1 must reproduce the
// single-stream measurement exactly (the pre-lanes behaviour), and the
// default decomposed measurement must differ from it (different stream
// pairing) while agreeing on the per-cycle invariants.
func TestLanesOneIsHistoricalStream(t *testing.T) {
	ctx := context.Background()
	nl := circuits.NewRCA(8, circuits.Cells)
	c := sim.Compile(nl)
	cfg := Config{Cycles: 120, Seed: 5}.withDefaults(nl)

	historical, err := measureStream(ctx, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaLanes, err := measureCompiled(ctx, c, Config{Cycles: 120, Seed: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if historical.Totals() != viaLanes.Totals() || historical.Cycles() != viaLanes.Cycles() {
		t.Fatalf("Lanes=1 diverges from the historical stream: %+v vs %+v",
			viaLanes.Totals(), historical.Totals())
	}

	decomposed, err := measureCompiled(ctx, c, Config{Cycles: 120, Seed: 5}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if decomposed.Cycles() != 120 {
		t.Fatalf("decomposed cycles = %d, want 120", decomposed.Cycles())
	}
	if decomposed.Totals() == historical.Totals() {
		t.Error("decomposition produced the single-stream numbers (suspicious)")
	}
}

// TestSelectedKernel: the kernel predictor mirrors the actual routing —
// scalar for single-stream shapes, lockstep for uniform delay, event
// kernel for everything else.
func TestSelectedKernel(t *testing.T) {
	e := NewEngine()
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	for _, tc := range []struct {
		name string
		req  MeasureRequest
		want Kernel
	}{
		{"default-unit", MeasureRequest{Netlist: nl}, KernelWideLockstep},
		{"faratio", MeasureRequest{Netlist: nl, Config: Config{Delay: delay.FullAdderRatio(2, 1)}}, KernelWideEvent},
		{"typical-inertial", MeasureRequest{Netlist: nl, Config: Config{Delay: delay.Typical(), Inertial: true}}, KernelWideEvent},
		{"zero", MeasureRequest{Netlist: nl, Config: Config{Delay: delay.Zero()}}, KernelWideEvent},
		{"lanes1", MeasureRequest{Netlist: nl, Config: Config{Lanes: 1}}, KernelScalar},
		{"one-cycle", MeasureRequest{Netlist: nl, Config: Config{Cycles: 1}}, KernelScalar},
	} {
		got, err := e.SelectedKernel(tc.req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Errorf("%s: kernel %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestConfigLanesOverridesEngine: Config.Lanes wins over the engine
// option, which wins over the process default.
func TestConfigLanesOverridesEngine(t *testing.T) {
	e := NewEngine(WithLanes(4))
	if got := e.laneCount(Config{}); got != 4 {
		t.Errorf("engine lanes = %d, want 4", got)
	}
	if got := e.laneCount(Config{Lanes: 2}); got != 2 {
		t.Errorf("config lanes = %d, want 2", got)
	}
	if got := e.laneCount(Config{Lanes: 999}); got != MaxLanes {
		t.Errorf("overlarge lanes = %d, want %d", got, MaxLanes)
	}
	def := NewEngine()
	if got := def.laneCount(Config{}); got != DefaultLanes() {
		t.Errorf("default lanes = %d, want %d", got, DefaultLanes())
	}
	SetDefaultLanes(1)
	if got := def.laneCount(Config{}); got != 1 {
		t.Errorf("SetDefaultLanes(1): lanes = %d", got)
	}
	SetDefaultLanes(0)
	if got := def.laneCount(Config{}); got != MaxLanes {
		t.Errorf("SetDefaultLanes(0): lanes = %d, want %d", got, MaxLanes)
	}
}
