package glitchsim

import (
	"context"
	"fmt"
	"io"
	"math"

	"glitchsim/internal/analytic"
	"glitchsim/internal/balance"
	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/power"
	"glitchsim/internal/sim"
	"glitchsim/internal/stats"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

// This file hosts the extension studies beyond the paper's own tables:
// delay-path balancing (the paper's §6 "balancing delay paths" made
// concrete), the adder-architecture comparison its reference [2]
// performs, the §4.2 correlation claim, and Verilog interchange. Like
// the paper experiments, each study is an Engine method taking a
// context, with a deprecated package-level wrapper over DefaultEngine.

// BalanceRow compares one circuit before and after delay balancing.
type BalanceRow struct {
	Circuit string
	// Before and After are the activity measurements; After includes the
	// padding buffers.
	Before, After Activity
	// CoreTransitions is the balanced circuit's activity on the original
	// (non-buffer) cells only: by construction all useful, so the
	// original logic's reduction factor is Before.Transitions /
	// CoreTransitions ≈ 1 + L/F, the paper's predicted limit.
	CoreTransitions uint64
	// BufferTransitions is the activity the padding buffers themselves
	// add — the overhead the paper's thought experiment ignores, and the
	// reason the real technique of §5 is retiming, not padding.
	BufferTransitions uint64
	// Buffers is the number of padding buffers inserted.
	Buffers int
	// BeforeLogicMW / AfterLogicMW are the combinational power
	// components; After includes buffer switching and capacitance.
	BeforeLogicMW, AfterLogicMW float64
	// PredictedFactor is 1 + L/F; CoreFactor is the measured reduction
	// on original cells; TotalFactor includes buffer overhead (and can
	// be < 1 when padding is very deep).
	PredictedFactor, CoreFactor, TotalFactor float64
}

// BalanceStudy verifies the paper's balance-limit claim on real
// circuits: each circuit is buffer-padded until all paths are balanced,
// then re-measured. Useless activity drops to zero and the original
// cells' activity falls by exactly 1 + L/F; the buffers' own switching
// is reported separately as the cost of the technique.
func (e *Engine) BalanceStudy(ctx context.Context, req ExperimentRequest) ([]BalanceRow, error) {
	if err := fixedCircuit("BalanceStudy", req); err != nil {
		return nil, err
	}
	var rows []BalanceRow
	for _, build := range []func() *netlist.Netlist{
		func() *netlist.Netlist { return circuits.NewRCA(16, circuits.Cells) },
		func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) },
		func() *netlist.Netlist {
			return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
		},
	} {
		n := build()
		res, err := balance.Pad(n, delay.Unit(), balance.Options{})
		if err != nil {
			return nil, err
		}
		bdBefore, before, err := e.MeasurePower(ctx, MeasureRequest{
			Netlist: n, Config: Config{Cycles: req.Cycles, Seed: req.Seed},
		})
		if err != nil {
			return nil, err
		}
		counter, err := e.MeasureDetailed(ctx, MeasureRequest{
			Netlist: res.Netlist, Config: Config{Cycles: req.Cycles, Seed: req.Seed},
		})
		if err != nil {
			return nil, err
		}
		after := summarize(res.Netlist.Name, counter)
		bdAfter := power.FromActivity(counter, e.tech)

		var coreT, bufT uint64
		for _, id := range res.Netlist.InternalNets() {
			st := counter.Stats(id)
			if res.Netlist.Cell(res.Netlist.Net(id).Driver).Type == netlist.Buf {
				bufT += st.Transitions
			} else {
				coreT += st.Transitions
			}
		}
		row := BalanceRow{
			Circuit:           n.Name,
			Before:            before,
			After:             after,
			CoreTransitions:   coreT,
			BufferTransitions: bufT,
			Buffers:           res.BuffersInserted,
			BeforeLogicMW:     bdBefore.LogicW * 1e3,
			AfterLogicMW:      bdAfter.LogicW * 1e3,
			PredictedFactor:   before.BalanceLimitFactor(),
		}
		if coreT > 0 {
			row.CoreFactor = float64(before.Transitions) / float64(coreT)
		}
		if after.Transitions > 0 {
			row.TotalFactor = float64(before.Transitions) / float64(after.Transitions)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BalanceStudy is the package-level form of Engine.BalanceStudy.
//
// Deprecated: use DefaultEngine().BalanceStudy with a context.
func BalanceStudy(cycles int, seed uint64) ([]BalanceRow, error) {
	return DefaultEngine().BalanceStudy(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// AdderRow is one architecture in the adder comparison.
type AdderRow struct {
	Arch  string
	Depth int
	Cells int
	Activity
}

// AdderStudy compares ripple-carry, carry-select and carry-lookahead
// adders of one width (req.Width, default 16) for transition activity —
// the comparison the paper's reference [2] (Callaway & Swartzlander)
// makes: shallower, better-balanced carry structures glitch less.
func (e *Engine) AdderStudy(ctx context.Context, req ExperimentRequest) ([]AdderRow, error) {
	if err := fixedCircuit("AdderStudy", req); err != nil {
		return nil, err
	}
	w := req.Width
	if w == 0 {
		w = 16
	}
	return e.archStudy(ctx, req, []archBuild{
		{"ripple-carry", circuits.NewRCA(w, circuits.Gates)},
		{"carry-select", circuits.NewCarrySelect(w, 4, circuits.Gates)},
		{"carry-lookahead", circuits.NewCLA(w)},
	})
}

// AdderStudy is the package-level form of Engine.AdderStudy.
//
// Deprecated: use DefaultEngine().AdderStudy with a context.
func AdderStudy(width, cycles int, seed uint64) ([]AdderRow, error) {
	return DefaultEngine().AdderStudy(context.Background(), ExperimentRequest{Width: width, Cycles: cycles, Seed: seed})
}

// MultiplierStudy extends Table 1 with the radix-4 Booth multiplier: a
// third architecture whose recoding halves the partial products but adds
// its own reconvergent select logic. Returns rows for array, wallace and
// booth at req.Width (default 8; must be even for Booth).
func (e *Engine) MultiplierStudy(ctx context.Context, req ExperimentRequest) ([]AdderRow, error) {
	if err := fixedCircuit("MultiplierStudy", req); err != nil {
		return nil, err
	}
	w := req.Width
	if w == 0 {
		w = 8
	}
	return e.archStudy(ctx, req, []archBuild{
		{"array", circuits.NewArrayMultiplier(w, circuits.Cells)},
		{"wallace", circuits.NewWallaceMultiplier(w, circuits.Cells)},
		{"booth", circuits.NewBoothMultiplier(w, circuits.Cells)},
	})
}

// MultiplierStudy is the package-level form of Engine.MultiplierStudy.
//
// Deprecated: use DefaultEngine().MultiplierStudy with a context.
func MultiplierStudy(width, cycles int, seed uint64) ([]AdderRow, error) {
	return DefaultEngine().MultiplierStudy(context.Background(), ExperimentRequest{Width: width, Cycles: cycles, Seed: seed})
}

// archBuild names one architecture of an activity comparison study.
type archBuild struct {
	arch string
	n    *netlist.Netlist
}

// archStudy measures the architectures on the engine's pool and reports
// one row per build, in build order.
func (e *Engine) archStudy(ctx context.Context, req ExperimentRequest, builds []archBuild) ([]AdderRow, error) {
	jobs := make([]MeasureJob, len(builds))
	for i, bld := range builds {
		jobs[i] = MeasureJob{Netlist: bld.n, Config: Config{Cycles: req.Cycles, Seed: req.Seed}}
	}
	res, err := e.measureMany(ctx, jobs, 0, nil)
	if err != nil {
		return nil, err
	}
	rows := make([]AdderRow, len(builds))
	for i, bld := range builds {
		if res[i].Err != nil {
			return nil, res[i].Err
		}
		rows[i] = AdderRow{
			Arch:     bld.arch,
			Depth:    bld.n.LogicDepth(),
			Cells:    bld.n.NumCells(),
			Activity: res[i].Activity,
		}
	}
	return rows, nil
}

// EstimatorComparison is the three-way estimator ablation on one
// circuit: glitch-blind zero-delay, density propagation, and the
// event-driven ground truth.
type EstimatorComparison struct {
	Circuit string
	// Estimates in transitions per cycle.
	ZeroDelay, Density, Measured, MeasuredUseful float64
}

// CompareEstimators runs the three activity estimates on an N-bit RCA
// (req.Width, default 16): zero-delay tracks the useful activity,
// density propagation lands in between, and only event-driven simulation
// captures the full glitching.
func (e *Engine) CompareEstimators(ctx context.Context, req ExperimentRequest) (EstimatorComparison, error) {
	if err := fixedCircuit("CompareEstimators", req); err != nil {
		return EstimatorComparison{}, err
	}
	w := req.Width
	if w == 0 {
		w = 16
	}
	nl := circuits.NewRCA(w, circuits.Cells)
	act, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: Config{Cycles: req.Cycles, Seed: req.Seed}})
	if err != nil {
		return EstimatorComparison{}, err
	}
	return EstimatorComparison{
		Circuit:        nl.Name,
		ZeroDelay:      analytic.ZeroDelayActivityTotal(nl),
		Density:        analytic.DensityActivityTotal(nl),
		Measured:       float64(act.Transitions) / float64(act.Cycles),
		MeasuredUseful: float64(act.Useful) / float64(act.Cycles),
	}, nil
}

// CompareEstimators is the package-level form of Engine.CompareEstimators.
//
// Deprecated: use DefaultEngine().CompareEstimators with a context.
func CompareEstimators(width, cycles int, seed uint64) (EstimatorComparison, error) {
	return DefaultEngine().CompareEstimators(context.Background(), ExperimentRequest{Width: width, Cycles: cycles, Seed: seed})
}

// CorrelationRow reports the per-stage signal statistics of the
// direction detector under correlated video stimulus.
type CorrelationRow struct {
	Stage string
	// LowBitAutocorr is the mean |lag-1 autocorrelation| of the two
	// least-significant (switching-dominant) bits.
	LowBitAutocorr float64
	// MeanToggle is the average end-of-cycle toggle rate of the bus.
	MeanToggle float64
}

// CorrelationStudy measures how input correlation decays through the
// direction detector's stages under video-like stimulus, quantifying the
// paper's §4.2 claim that "signal statistics and correlations are almost
// completely lost immediately after the absolute differences are taken".
func (e *Engine) CorrelationStudy(ctx context.Context, req ExperimentRequest) ([]CorrelationRow, error) {
	if err := fixedCircuit("CorrelationStudy", req); err != nil {
		return nil, err
	}
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	collector := stats.NewCollector(n, nil)
	opts := sim.Options{Delay: delay.Unit()}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	c := e.compiled(n)
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	s := sim.NewFromCompiled(c, opts)
	s.AttachMonitor(collector)
	src := stimulus.NewConcat(
		stimulus.NewCorrelated(6, 8, 2, req.Seed),
		stimulus.NewConstant(logic.VectorFromUint(8, 8)),
	)
	for i := 0; i < req.Cycles; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Step(src.Next()); err != nil {
			return nil, err
		}
	}
	lowBits := func(buses ...string) (corr, tog float64) {
		count := 0
		for _, bus := range buses {
			ids := n.Bus(bus)
			if len(ids) < 2 {
				continue
			}
			for _, id := range ids[:2] {
				corr += math.Abs(collector.Autocorr(id))
				tog += collector.ToggleRate(id)
				count++
			}
		}
		if count > 0 {
			corr /= float64(count)
			tog /= float64(count)
		}
		return corr, tog
	}
	var rows []CorrelationRow
	for _, stage := range []struct {
		name  string
		buses []string
	}{
		{"video inputs", []string{"a0", "a1", "a2", "b0", "b1", "b2"}},
		{"after |a-b|", []string{"d0", "d1", "d2"}},
		{"after min/max", []string{"min", "max"}},
		{"spread", []string{"spread"}},
	} {
		corr, tog := lowBits(stage.buses...)
		rows = append(rows, CorrelationRow{Stage: stage.name, LowBitAutocorr: corr, MeanToggle: tog})
	}
	return rows, nil
}

// CorrelationStudy is the package-level form of Engine.CorrelationStudy.
//
// Deprecated: use DefaultEngine().CorrelationStudy with a context.
func CorrelationStudy(cycles int, seed uint64) ([]CorrelationRow, error) {
	return DefaultEngine().CorrelationStudy(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// BalanceNetlist pads a netlist's delay paths with buffers until every
// cell's inputs arrive simultaneously (see internal/balance). It returns
// the balanced netlist and the number of buffers inserted.
func BalanceNetlist(n *netlist.Netlist, dm delay.Model) (*netlist.Netlist, int, error) {
	res, err := balance.Pad(n, dm, balance.Options{})
	if err != nil {
		return nil, 0, err
	}
	return res.Netlist, res.BuffersInserted, nil
}

// ExportVerilog writes the netlist as structural Verilog.
func ExportVerilog(w io.Writer, n *netlist.Netlist) error { return verilog.Write(w, n) }

// ImportVerilog parses structural Verilog (the subset ExportVerilog
// emits) into a netlist.
func ImportVerilog(r io.Reader) (*netlist.Netlist, error) { return verilog.Parse(r) }

// NewCLA returns an N-bit carry-lookahead adder (4-bit blocks).
func NewCLA(width int) *netlist.Netlist { return circuits.NewCLA(width) }

// NewCarrySelect returns an N-bit carry-select adder with the given
// block size.
func NewCarrySelect(width, blockSize int) *netlist.Netlist {
	return circuits.NewCarrySelect(width, blockSize, circuits.Gates)
}

// Summary formats the key figures of one Activity for logs.
func Summary(a Activity) string {
	return fmt.Sprintf("%s L/F=%.2f (%d/%d)", a.Circuit, a.LOverF(), a.Useless, a.Useful)
}
