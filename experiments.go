package glitchsim

import (
	"context"
	"fmt"

	"glitchsim/internal/analytic"
	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/retime"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// The paper's experiment drivers, as Engine methods. Every driver takes
// a context and routes all measurement through the engine's compiled-
// netlist cache, worker pool and lane decomposition: with the default
// 64 lanes, a Table 1–3 row's ~500 random vectors run as ⌈500/64⌉
// word-parallel passes on the bit-parallel kernel (unit-delay rows) or
// as 64 scalar streams with identical semantics (the delay-imbalance
// rows), so delay-model comparisons like Table 2's useful-count
// invariance stay exact. The package-level functions of the same names
// are deprecated wrappers over DefaultEngine and remain bit-identical
// to the Engine methods for the arguments they documented; zero-valued
// cycle/width arguments select each experiment's paper defaults instead
// of falling through to Config's generic run length.

// ---------------------------------------------------------------------------
// E1 — §3.1 / Figure 3: worst-case transition count of a ripple-carry adder.

// WorstCaseResult describes the §3.1 worst case for an N-bit RCA.
type WorstCaseResult struct {
	N int
	// Probability that random operands trigger the worst case: 3·(1/8)^N.
	Probability float64
	// PrevA/PrevB and NewA/NewB are operands constructed to trigger it.
	PrevA, PrevB, NewA, NewB uint64
	// TimelineSumTransitions and TimelineCarryTransitions are the counts
	// on S_{N-1} and C_N from the analytic unit-delay timeline model.
	TimelineSumTransitions, TimelineCarryTransitions int
	// SimSumTransitions and SimCarryTransitions are the same counts
	// measured by the event-driven simulator. All four must equal N.
	SimSumTransitions, SimCarryTransitions int
}

// WorstCase constructs the §3.1 worst-case stimulus for an N-bit RCA
// (alternating carries from A=B=0101…, then a kill at stage 0 with all
// higher stages propagating), and measures S_{N-1} and C_N transitions
// both analytically and with the event-driven simulator. req.Width
// selects the adder width (default 4).
func (e *Engine) WorstCase(ctx context.Context, req ExperimentRequest) (WorstCaseResult, error) {
	if err := fixedCircuit("WorstCase", req); err != nil {
		return WorstCaseResult{}, err
	}
	n := req.Width
	if n == 0 {
		n = 4
	}
	if n < 2 || n > 16 {
		return WorstCaseResult{}, fmt.Errorf("glitchsim: worst case supports 2..16 bits, got %d", n)
	}
	if err := ctx.Err(); err != nil {
		return WorstCaseResult{}, err
	}
	mask := uint64(1)<<uint(n) - 1
	res := WorstCaseResult{
		N:           n,
		Probability: analytic.WorstCaseProbability(n),
		PrevA:       0x5555555555555555 & mask,
		PrevB:       0x5555555555555555 & mask,
		NewA:        (mask &^ 1),
		NewB:        0,
	}
	sums, carries := analytic.RCATimeline(n, res.PrevA, res.PrevB, res.NewA, res.NewB)
	res.TimelineSumTransitions = sums[n-1]
	res.TimelineCarryTransitions = carries[n-1]

	nl := circuits.NewRCA(n, circuits.Cells)
	sumNet := nl.Bus("sum")[n-1]
	carryNet := nl.Bus("carry")[n-1]
	s := sim.NewFromCompiled(e.compiled(nl), sim.Options{Delay: delay.Unit()})
	pi := make(logic.Vector, nl.InputWidth())
	apply := func(a, b uint64) error {
		copy(pi[:n], logic.VectorFromUint(a, n))
		copy(pi[n:], logic.VectorFromUint(b, n))
		return s.Step(pi)
	}
	if err := apply(res.PrevA, res.PrevB); err != nil {
		return WorstCaseResult{}, err
	}
	counter := core.NewCounterFor(nl, []netlist.NetID{sumNet, carryNet})
	s.AttachMonitor(counter)
	if err := apply(res.NewA, res.NewB); err != nil {
		return WorstCaseResult{}, err
	}
	res.SimSumTransitions = int(counter.Stats(sumNet).Transitions)
	res.SimCarryTransitions = int(counter.Stats(carryNet).Transitions)
	return res, nil
}

// WorstCase is the package-level form of Engine.WorstCase.
//
// Deprecated: use DefaultEngine().WorstCase with a context.
func WorstCase(n int) (WorstCaseResult, error) {
	// The historical function validated n directly; keep rejecting n=0
	// rather than letting the request default of 4 absorb it.
	if n < 2 || n > 16 {
		return WorstCaseResult{}, fmt.Errorf("glitchsim: worst case supports 2..16 bits, got %d", n)
	}
	return DefaultEngine().WorstCase(context.Background(), ExperimentRequest{Width: n})
}

// ---------------------------------------------------------------------------
// E2 — Figure 5 / §3.2–3.3: per-bit useful and useless transitions of a
// 16-bit RCA under random inputs, analytic vs. simulated.

// Fig5Bit is one bar group of Figure 5.
type Fig5Bit struct {
	Bit  int
	Kind string // "sum" or "carry" (carry i is C_{i+1})
	// Analytic expected counts (equations 2–7 × cycles).
	AnalyticUseful, AnalyticUseless float64
	// Simulated counts from the event-driven run.
	SimUseful, SimUseless uint64
}

// Fig5Result holds the full Figure 5 reproduction.
type Fig5Result struct {
	N, Cycles int
	Bits      []Fig5Bit
	// Analytic totals with the paper's per-bit rounding: for N=16 and
	// 4000 cycles these are exactly 119002/63334/55668.
	AnalyticTotal, AnalyticUseful, AnalyticUseless int64
	// Simulated totals.
	Sim Activity
}

// Figure5 reproduces Figure 5: an N-bit RCA (req.Width, default 16)
// driven with req.Cycles random vectors (default 4000), classified per
// sum and carry bit, next to the closed-form prediction.
func (e *Engine) Figure5(ctx context.Context, req ExperimentRequest) (Fig5Result, error) {
	if err := fixedCircuit("Figure5", req); err != nil {
		return Fig5Result{}, err
	}
	n := req.Width
	if n == 0 {
		n = 16
	}
	cycles := req.Cycles
	if cycles == 0 {
		cycles = 4000
	}
	pred := analytic.PredictRCA(n, cycles)
	nl := circuits.NewRCA(n, circuits.Cells)
	counter, err := e.MeasureDetailed(ctx, MeasureRequest{
		Netlist: nl, Config: Config{Cycles: cycles, Seed: req.Seed},
	})
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{N: n, Cycles: cycles, Sim: summarize(nl.Name, counter)}
	res.AnalyticTotal, res.AnalyticUseful, res.AnalyticUseless = pred.RoundedTotals()
	sumBits := counter.BusBitStats("sum")
	carryBits := counter.BusBitStats("carry")
	for i := 0; i < n; i++ {
		res.Bits = append(res.Bits, Fig5Bit{
			Bit: i, Kind: "sum",
			AnalyticUseful:  pred.SumUseful[i],
			AnalyticUseless: pred.SumUseless[i],
			SimUseful:       sumBits[i].Useful,
			SimUseless:      sumBits[i].Useless,
		})
	}
	for i := 0; i < n; i++ {
		res.Bits = append(res.Bits, Fig5Bit{
			Bit: i, Kind: "carry",
			AnalyticUseful:  pred.CarryUseful[i],
			AnalyticUseless: pred.CarryUseless[i],
			SimUseful:       carryBits[i].Useful,
			SimUseless:      carryBits[i].Useless,
		})
	}
	return res, nil
}

// Figure5 is the package-level form of Engine.Figure5.
//
// Deprecated: use DefaultEngine().Figure5 with a context.
func Figure5(n, cycles int, seed uint64) (Fig5Result, error) {
	return DefaultEngine().Figure5(context.Background(), ExperimentRequest{Width: n, Cycles: cycles, Seed: seed})
}

// ---------------------------------------------------------------------------
// E3/E4 — Tables 1 and 2: multiplier architecture and delay-imbalance
// comparison.

// fixedCircuit rejects a Circuit override on experiment drivers whose
// circuit set is fixed by the paper, so a caller's reference is never
// silently ignored. Only the retiming power sweeps (Table3, Figure10)
// take a subject override.
func fixedCircuit(name string, req ExperimentRequest) error {
	if !req.Circuit.IsZero() {
		return fmt.Errorf("glitchsim: %s measures a fixed circuit set and takes no Circuit", name)
	}
	return nil
}

// MultRow is one column of the paper's Tables 1 and 2.
type MultRow struct {
	Arch  string // "array" or "wallace"
	Width int
	// DSum and DCarry are the full-adder cell delays used.
	DSum, DCarry int
	Activity
}

// Table1 reproduces Table 1: transition activity of array and
// Wallace-tree multipliers (8×8 and 16×16) over req.Cycles random inputs
// (default 500, the paper's run length) with unit delays. The four rows
// are measured in parallel on the engine's worker pool.
func (e *Engine) Table1(ctx context.Context, req ExperimentRequest) ([]MultRow, error) {
	if err := fixedCircuit("Table1", req); err != nil {
		return nil, err
	}
	return e.measureMultipliers(ctx, table1Specs(), req, nil)
}

// table1Specs returns the Table 1 measurement plan, shared by the Engine
// and Session drivers so both measure the same rows.
func table1Specs() []multSpec {
	return []multSpec{
		{"array", 8, 1, 1}, {"array", 16, 1, 1},
		{"wallace", 8, 1, 1}, {"wallace", 16, 1, 1},
	}
}

// Table1 is the package-level form of Engine.Table1.
//
// Deprecated: use DefaultEngine().Table1 with a context.
func Table1(cycles int, seed uint64) ([]MultRow, error) {
	return DefaultEngine().Table1(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// Table2 reproduces Table 2: the 8×8 multipliers with dsum = dcarry
// versus the more realistic dsum = 2·dcarry, measured in parallel on the
// engine's worker pool.
func (e *Engine) Table2(ctx context.Context, req ExperimentRequest) ([]MultRow, error) {
	if err := fixedCircuit("Table2", req); err != nil {
		return nil, err
	}
	return e.measureMultipliers(ctx, table2Specs(), req, nil)
}

// table2Specs returns the Table 2 measurement plan, shared by the Engine
// and Session drivers so both measure the same rows.
func table2Specs() []multSpec {
	return []multSpec{
		{"array", 8, 1, 1}, {"array", 8, 2, 1},
		{"wallace", 8, 1, 1}, {"wallace", 8, 2, 1},
	}
}

// Table2 is the package-level form of Engine.Table2.
//
// Deprecated: use DefaultEngine().Table2 with a context.
func Table2(cycles int, seed uint64) ([]MultRow, error) {
	return DefaultEngine().Table2(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// multSpec names one multiplier measurement of Tables 1 and 2.
type multSpec struct {
	arch         string
	width        int
	dsum, dcarry int
}

func (sp multSpec) build() (*netlist.Netlist, delay.Model) {
	nl := circuits.NewArrayMultiplier(sp.width, circuits.Cells)
	if sp.arch == "wallace" {
		nl = circuits.NewWallaceMultiplier(sp.width, circuits.Cells)
	}
	var dm delay.Model = delay.Unit()
	if sp.dsum != sp.dcarry {
		dm = delay.FullAdderRatio(sp.dsum, sp.dcarry)
	}
	return nl, dm
}

// measureMultipliers measures the given multiplier specs concurrently
// and returns one row per spec, in spec order. emit, when non-nil,
// receives each finished row (concurrently, in completion order).
func (e *Engine) measureMultipliers(ctx context.Context, specs []multSpec, req ExperimentRequest, emit func(int, *MultRow)) ([]MultRow, error) {
	jobs := make([]MeasureJob, len(specs))
	for i, sp := range specs {
		nl, dm := sp.build()
		jobs[i] = MeasureJob{Netlist: nl, Config: Config{Cycles: req.Cycles, Seed: req.Seed, Delay: dm}}
	}
	rows := make([]MultRow, len(specs))
	var rowEmit func(int, *MeasureResult)
	if emit != nil {
		rowEmit = func(i int, r *MeasureResult) {
			if r.Err != nil {
				return
			}
			sp := specs[i]
			rows[i] = MultRow{Arch: sp.arch, Width: sp.width, DSum: sp.dsum, DCarry: sp.dcarry, Activity: r.Activity}
			emit(i, &rows[i])
		}
	}
	res, err := e.measureMany(ctx, jobs, 0, rowEmit)
	if err != nil {
		return nil, err
	}
	for i, sp := range specs {
		if res[i].Err != nil {
			return nil, res[i].Err
		}
		rows[i] = MultRow{Arch: sp.arch, Width: sp.width, DSum: sp.dsum, DCarry: sp.dcarry, Activity: res[i].Activity}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E5 — §4.2: the direction detector transition-activity study.

// DirDetResult is the §4.2 measurement.
type DirDetResult struct {
	Activity
	// BalanceLimit is 1 + L/F: the activity reduction achievable by
	// perfect delay balancing (the paper reports 4.8).
	BalanceLimit float64
}

// DirectionDetector42 reproduces §4.2: the unregistered direction
// detector simulated with unit delays under req.Cycles random inputs
// (default 4320, the paper's run length).
func (e *Engine) DirectionDetector42(ctx context.Context, req ExperimentRequest) (DirDetResult, error) {
	if err := fixedCircuit("DirectionDetector42", req); err != nil {
		return DirDetResult{}, err
	}
	cycles := req.Cycles
	if cycles == 0 {
		cycles = 4320
	}
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	act, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: Config{Cycles: cycles, Seed: req.Seed}})
	if err != nil {
		return DirDetResult{}, err
	}
	return DirDetResult{Activity: act, BalanceLimit: act.BalanceLimitFactor()}, nil
}

// DirectionDetector42 is the package-level form of
// Engine.DirectionDetector42.
//
// Deprecated: use DefaultEngine().DirectionDetector42 with a context.
func DirectionDetector42(cycles int, seed uint64) (DirDetResult, error) {
	return DefaultEngine().DirectionDetector42(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// ---------------------------------------------------------------------------
// E6/E7 — Table 3 and Figure 10: power versus flipflop count across
// retimed direction detector variants.

// Table3Row is one circuit column of Table 3.
type Table3Row struct {
	Circuit      int
	TargetPeriod int
	Period       int
	Latency      int
	FFs          int
	AreaMM2      float64
	ClockCapPF   float64
	LogicMW      float64
	FlipflopMW   float64
	ClockMW      float64
	TotalMW      float64
	LOverF       float64
}

// sweepPlan is a prepared retime-and-measure sweep: the base circuit,
// its delay model, the retiming period targets and the latency budget.
type sweepPlan struct {
	base       *netlist.Netlist
	dm         delay.Model
	targets    []int
	maxLatency int
}

// table3Targets prepares the Table 3 sweep: the input-registered
// direction detector retimed for four successively higher clock
// frequencies (chosen like the paper's four layouts: the optimum lies
// strictly inside the sweep).
func (e *Engine) table3Targets(req ExperimentRequest) (sweepPlan, error) {
	base, err := e.sweepSubject(req)
	if err != nil {
		return sweepPlan{}, err
	}
	dm := delay.Unit()
	cp := retime.FromNetlist(base, dm, 0).ClockPeriod(nil)
	return sweepPlan{
		base: base, dm: dm,
		targets:    []int{cp, cp * 3 / 7, cp / 3, cp * 3 / 14},
		maxLatency: 4 * cp,
	}, nil
}

// sweepSubject resolves the circuit a retiming power sweep operates on:
// the request's Circuit reference, defaulting to the paper's
// input-registered direction detector.
func (e *Engine) sweepSubject(req ExperimentRequest) (*netlist.Netlist, error) {
	if !req.Circuit.IsZero() {
		return e.Resolve(req.Circuit)
	}
	return circuits.NewDirectionDetector(circuits.DirDetConfig{
		Width: 8, Style: circuits.Cells, RegisterInputs: true,
	}), nil
}

// figure10Targets prepares the Figure 10 sweep: Table 3 extended to
// arbitrary retiming targets (req.Targets; nil selects the default
// eight-point sweep).
func (e *Engine) figure10Targets(req ExperimentRequest) (sweepPlan, error) {
	base, err := e.sweepSubject(req)
	if err != nil {
		return sweepPlan{}, err
	}
	dm := delay.Unit()
	cp := retime.FromNetlist(base, dm, 0).ClockPeriod(nil)
	targets := req.Targets
	if targets == nil {
		targets = []int{cp, cp / 2, cp / 3, cp / 4, cp / 5, cp / 7, cp / 9, cp / 12}
	}
	return sweepPlan{base: base, dm: dm, targets: targets, maxLatency: 8 * cp}, nil
}

// Table3 reproduces Table 3: the input-registered direction detector is
// retimed for four successively higher clock frequencies (shorter
// retiming periods), and each variant's power is split into logic,
// flipflop and clock components. The first variant is the original
// circuit (registers at the inputs, the paper's 48 flipflops).
func (e *Engine) Table3(ctx context.Context, req ExperimentRequest) ([]Table3Row, error) {
	plan, err := e.table3Targets(req)
	if err != nil {
		return nil, err
	}
	return e.powerSweep(ctx, plan.base, plan.dm, plan.targets, plan.maxLatency, req, nil)
}

// Table3 is the package-level form of Engine.Table3.
//
// Deprecated: use DefaultEngine().Table3 with a context.
func Table3(cycles int, seed uint64) ([]Table3Row, error) {
	return DefaultEngine().Table3(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// Fig10Result is the Figure 10 experiment outcome: the subject circuit
// measured as-is (Before — the actual sequential netlist, registers and
// all, simulated without any retiming) and the retimed sweep (Points,
// one row per target period). Comparing Before against the sweep gives
// the paper's claim its honest baseline: the power cost or saving of
// retiming is read off the same circuit, not reconstructed from
// combinational slices.
type Fig10Result struct {
	// Subject names the swept circuit.
	Subject string
	// Before is the unretimed subject: Circuit 0, TargetPeriod 0,
	// Latency 0, Period the subject's own critical path.
	Before Table3Row
	// Points is the retimed sweep, one row per target period.
	Points []Table3Row
}

// measureUnretimed measures the sweep subject exactly as handed in — the
// real sequential circuit before retiming — and shapes the result as the
// sweep's row 0. The default (sequential-aware) warm-up applies, so deep
// pipelines are flushed before counting.
func (e *Engine) measureUnretimed(ctx context.Context, base *netlist.Netlist, dm delay.Model, req ExperimentRequest) (Table3Row, error) {
	bd, act, err := e.MeasurePower(ctx, MeasureRequest{
		Netlist: base,
		Config:  Config{Cycles: req.Cycles, Seed: req.Seed},
	})
	if err != nil {
		return Table3Row{}, err
	}
	return Table3Row{
		Circuit:      0,
		TargetPeriod: 0,
		Period:       retime.FromNetlist(base, dm, 0).ClockPeriod(nil),
		Latency:      0,
		FFs:          bd.NumFFs,
		AreaMM2:      bd.AreaMM2,
		ClockCapPF:   bd.ClockCapF * 1e12,
		LogicMW:      bd.LogicW * 1e3,
		FlipflopMW:   bd.FlipflopW * 1e3,
		ClockMW:      bd.ClockW * 1e3,
		TotalMW:      bd.TotalW() * 1e3,
		LOverF:       act.LOverF(),
	}, nil
}

// Figure10 measures the sweep subject before retiming and then runs the
// Table 3 sweep extended to arbitrary retiming targets (req.Targets; nil
// selects the default eight-point sweep), producing the
// power-versus-flipflops curves of Figure 10 anchored to the unretimed
// circuit. Points are ordered by increasing flipflop count.
func (e *Engine) Figure10(ctx context.Context, req ExperimentRequest) (Fig10Result, error) {
	plan, err := e.figure10Targets(req)
	if err != nil {
		return Fig10Result{}, err
	}
	before, err := e.measureUnretimed(ctx, plan.base, plan.dm, req)
	if err != nil {
		return Fig10Result{}, err
	}
	points, err := e.powerSweep(ctx, plan.base, plan.dm, plan.targets, plan.maxLatency, req, nil)
	if err != nil {
		return Fig10Result{}, err
	}
	return Fig10Result{Subject: plan.base.Name, Before: before, Points: points}, nil
}

// Figure10 is the package-level form of Engine.Figure10, returning only
// the sweep points (the historical shape; the before-retiming row is
// available from the Engine form's Fig10Result).
//
// Deprecated: use DefaultEngine().Figure10 with a context.
func Figure10(targets []int, cycles int, seed uint64) ([]Table3Row, error) {
	res, err := DefaultEngine().Figure10(context.Background(), ExperimentRequest{Targets: targets, Cycles: cycles, Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Points, nil
}

// powerSweep retimes base for each target period and measures each
// variant's power breakdown: the shared driver behind Table3 and
// Figure10. Each variant retimes and measures independently, one worker
// per sweep point on the engine's pool. emit, when non-nil, receives
// each finished row (concurrently, in completion order).
func (e *Engine) powerSweep(ctx context.Context, base *netlist.Netlist, dm delay.Model, targets []int, maxLatency int, req ExperimentRequest, emit func(int, *Table3Row)) ([]Table3Row, error) {
	rows := make([]Table3Row, len(targets))
	err := parallelEachCtx(ctx, len(targets), e.workerCount(0), func(i int) error {
		tgt := targets[i]
		if tgt < 1 {
			tgt = 1
		}
		res, err := retime.ForPeriod(base, dm, tgt, maxLatency)
		if err != nil {
			return fmt.Errorf("glitchsim: retiming target %d: %w", tgt, err)
		}
		bd, act, err := e.MeasurePower(ctx, MeasureRequest{
			Netlist: res.Netlist,
			Config:  Config{Cycles: req.Cycles, Seed: req.Seed, Warmup: res.Latency + 16},
		})
		if err != nil {
			return err
		}
		rows[i] = Table3Row{
			Circuit:      i + 1,
			TargetPeriod: tgt,
			Period:       res.Period,
			Latency:      res.Latency,
			FFs:          bd.NumFFs,
			AreaMM2:      bd.AreaMM2,
			ClockCapPF:   bd.ClockCapF * 1e12,
			LogicMW:      bd.LogicW * 1e3,
			FlipflopMW:   bd.FlipflopW * 1e3,
			ClockMW:      bd.ClockW * 1e3,
			TotalMW:      bd.TotalW() * 1e3,
			LOverF:       act.LOverF(),
		}
		if emit != nil {
			emit(i, &rows[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper.

// AblationResult pairs two activity measurements for comparison.
type AblationResult struct {
	Name string
	A, B Activity
}

// AblationInertial compares transport and inertial delay handling on the
// direction detector under the heterogeneous Typical delay model:
// inertial gates swallow pulses narrower than their own delay, so
// useless activity drops. (Under pure unit delay the two modes coincide:
// no pulse is ever narrower than a gate delay.)
func (e *Engine) AblationInertial(ctx context.Context, req ExperimentRequest) (AblationResult, error) {
	if err := fixedCircuit("AblationInertial", req); err != nil {
		return AblationResult{}, err
	}
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	a, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: Config{Cycles: req.Cycles, Seed: req.Seed, Delay: delay.Typical()}})
	if err != nil {
		return AblationResult{}, err
	}
	b, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: Config{Cycles: req.Cycles, Seed: req.Seed, Delay: delay.Typical(), Inertial: true}})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "transport-vs-inertial", A: a, B: b}, nil
}

// AblationInertial is the package-level form of Engine.AblationInertial.
//
// Deprecated: use DefaultEngine().AblationInertial with a context.
func AblationInertial(cycles int, seed uint64) (AblationResult, error) {
	return DefaultEngine().AblationInertial(context.Background(), ExperimentRequest{Cycles: cycles, Seed: seed})
}

// AblationGranularity compares the compound-FA-cell and gate-level
// decompositions of the same RCA (req.Width bits, default 8): finer granularity
// exposes more internal nodes and therefore more (and different)
// glitching.
func (e *Engine) AblationGranularity(ctx context.Context, req ExperimentRequest) (AblationResult, error) {
	if err := fixedCircuit("AblationGranularity", req); err != nil {
		return AblationResult{}, err
	}
	w := req.Width
	if w == 0 {
		w = 8
	}
	a, err := e.Measure(ctx, MeasureRequest{
		Netlist: circuits.NewRCA(w, circuits.Cells),
		Config:  Config{Cycles: req.Cycles, Seed: req.Seed},
	})
	if err != nil {
		return AblationResult{}, err
	}
	b, err := e.Measure(ctx, MeasureRequest{
		Netlist: circuits.NewRCA(w, circuits.Gates),
		Config:  Config{Cycles: req.Cycles, Seed: req.Seed},
	})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "cells-vs-gates", A: a, B: b}, nil
}

// AblationGranularity is the package-level form of
// Engine.AblationGranularity.
//
// Deprecated: use DefaultEngine().AblationGranularity with a context.
func AblationGranularity(width, cycles int, seed uint64) (AblationResult, error) {
	return DefaultEngine().AblationGranularity(context.Background(), ExperimentRequest{Width: width, Cycles: cycles, Seed: seed})
}

// ZeroDelayComparison quantifies how much a glitch-blind probabilistic
// estimator (zero-delay transition probabilities) underestimates the
// true event-driven activity of a circuit.
type ZeroDelayComparison struct {
	Circuit string
	// EstimatedPerCycle is the zero-delay expected transitions/cycle.
	EstimatedPerCycle float64
	// MeasuredPerCycle is the event-driven transitions/cycle.
	MeasuredPerCycle float64
	// UsefulPerCycle is the measured useful transitions/cycle, which the
	// zero-delay estimate should approximate.
	UsefulPerCycle float64
}

// Underestimate returns measured/estimated: the factor a glitch-blind
// power estimator is off by.
func (z ZeroDelayComparison) Underestimate() float64 {
	if z.EstimatedPerCycle == 0 {
		return 0
	}
	return z.MeasuredPerCycle / z.EstimatedPerCycle
}

// AblationZeroDelay runs the comparison on an N-bit RCA (req.Width,
// default 16).
func (e *Engine) AblationZeroDelay(ctx context.Context, req ExperimentRequest) (ZeroDelayComparison, error) {
	if err := fixedCircuit("AblationZeroDelay", req); err != nil {
		return ZeroDelayComparison{}, err
	}
	w := req.Width
	if w == 0 {
		w = 16
	}
	nl := circuits.NewRCA(w, circuits.Cells)
	est := analytic.ZeroDelayActivityTotal(nl)
	act, err := e.Measure(ctx, MeasureRequest{Netlist: nl, Config: Config{Cycles: req.Cycles, Seed: req.Seed}})
	if err != nil {
		return ZeroDelayComparison{}, err
	}
	return ZeroDelayComparison{
		Circuit:           nl.Name,
		EstimatedPerCycle: est,
		MeasuredPerCycle:  float64(act.Transitions) / float64(act.Cycles),
		UsefulPerCycle:    float64(act.Useful) / float64(act.Cycles),
	}, nil
}

// AblationZeroDelay is the package-level form of Engine.AblationZeroDelay.
//
// Deprecated: use DefaultEngine().AblationZeroDelay with a context.
func AblationZeroDelay(width, cycles int, seed uint64) (ZeroDelayComparison, error) {
	return DefaultEngine().AblationZeroDelay(context.Background(), ExperimentRequest{Width: width, Cycles: cycles, Seed: seed})
}

// SeedSweep re-runs the Table 1 array-vs-wallace comparison (8×8) for
// several seeds, returning one pair of activities per seed — the
// seed-sensitivity ablation: L/F must be stable across streams. All
// 2·len(seeds) measurements run in parallel on the engine's pool,
// sharing one compiled form per architecture.
func (e *Engine) SeedSweep(ctx context.Context, req ExperimentRequest) ([]AblationResult, error) {
	if err := fixedCircuit("SeedSweep", req); err != nil {
		return nil, err
	}
	seeds := req.Seeds
	array := circuits.NewArrayMultiplier(8, circuits.Cells)
	wallace := circuits.NewWallaceMultiplier(8, circuits.Cells)
	jobs := make([]MeasureJob, 0, 2*len(seeds))
	for _, seed := range seeds {
		jobs = append(jobs,
			MeasureJob{Netlist: array, Config: Config{Cycles: req.Cycles, Seed: seed}},
			MeasureJob{Netlist: wallace, Config: Config{Cycles: req.Cycles, Seed: seed}},
		)
	}
	res, err := e.measureMany(ctx, jobs, 0, nil)
	if err != nil {
		return nil, err
	}
	out := make([]AblationResult, len(seeds))
	for i, seed := range seeds {
		a, b := res[2*i], res[2*i+1]
		if a.Err != nil {
			return nil, a.Err
		}
		if b.Err != nil {
			return nil, b.Err
		}
		out[i] = AblationResult{
			Name: fmt.Sprintf("seed-%d", seed), A: a.Activity, B: b.Activity,
		}
	}
	return out, nil
}

// SeedSweep is the package-level form of Engine.SeedSweep.
//
// Deprecated: use DefaultEngine().SeedSweep with a context.
func SeedSweep(cycles int, seeds []uint64) ([]AblationResult, error) {
	return DefaultEngine().SeedSweep(context.Background(), ExperimentRequest{Cycles: cycles, Seeds: seeds})
}

// GraySweep compares random against Gray-code (single-bit-change) and
// correlated video-like stimulus on the direction detector, probing the
// paper's claim that input correlation is destroyed by the abs-diff
// stage.
func (e *Engine) GraySweep(ctx context.Context, req ExperimentRequest) ([]Activity, error) {
	if err := fixedCircuit("GraySweep", req); err != nil {
		return nil, err
	}
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	w := nl.InputWidth()
	sources := []struct {
		name string
		src  stimulus.Source
	}{
		{"random", stimulus.NewRandom(w, 1)},
		{"gray", stimulus.NewGray(w)},
		{"video", stimulus.NewConcat(
			stimulus.NewCorrelated(6, 8, 3, 7),
			stimulus.NewConstant(logic.VectorFromUint(16, 8)),
		)},
	}
	jobs := make([]MeasureJob, len(sources))
	for i, s := range sources {
		jobs[i] = MeasureJob{Netlist: nl, Config: Config{Cycles: req.Cycles, Source: s.src}}
	}
	res, err := e.measureMany(ctx, jobs, 0, nil)
	if err != nil {
		return nil, err
	}
	out := make([]Activity, len(sources))
	for i, s := range sources {
		if res[i].Err != nil {
			return nil, res[i].Err
		}
		out[i] = res[i].Activity
		out[i].Circuit = nl.Name + "/" + s.name
	}
	return out, nil
}

// GraySweep is the package-level form of Engine.GraySweep.
//
// Deprecated: use DefaultEngine().GraySweep with a context.
func GraySweep(cycles int) ([]Activity, error) {
	return DefaultEngine().GraySweep(context.Background(), ExperimentRequest{Cycles: cycles})
}
