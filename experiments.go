package glitchsim

import (
	"fmt"

	"glitchsim/internal/analytic"
	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/netlist"
	"glitchsim/internal/power"
	"glitchsim/internal/retime"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// ---------------------------------------------------------------------------
// E1 — §3.1 / Figure 3: worst-case transition count of a ripple-carry adder.

// WorstCaseResult describes the §3.1 worst case for an N-bit RCA.
type WorstCaseResult struct {
	N int
	// Probability that random operands trigger the worst case: 3·(1/8)^N.
	Probability float64
	// PrevA/PrevB and NewA/NewB are operands constructed to trigger it.
	PrevA, PrevB, NewA, NewB uint64
	// TimelineSumTransitions and TimelineCarryTransitions are the counts
	// on S_{N-1} and C_N from the analytic unit-delay timeline model.
	TimelineSumTransitions, TimelineCarryTransitions int
	// SimSumTransitions and SimCarryTransitions are the same counts
	// measured by the event-driven simulator. All four must equal N.
	SimSumTransitions, SimCarryTransitions int
}

// WorstCase constructs the §3.1 worst-case stimulus for an N-bit RCA
// (alternating carries from A=B=0101…, then a kill at stage 0 with all
// higher stages propagating), and measures S_{N-1} and C_N transitions
// both analytically and with the event-driven simulator.
func WorstCase(n int) (WorstCaseResult, error) {
	if n < 2 || n > 16 {
		return WorstCaseResult{}, fmt.Errorf("glitchsim: worst case supports 2..16 bits, got %d", n)
	}
	mask := uint64(1)<<uint(n) - 1
	res := WorstCaseResult{
		N:           n,
		Probability: analytic.WorstCaseProbability(n),
		PrevA:       0x5555555555555555 & mask,
		PrevB:       0x5555555555555555 & mask,
		NewA:        (mask &^ 1),
		NewB:        0,
	}
	sums, carries := analytic.RCATimeline(n, res.PrevA, res.PrevB, res.NewA, res.NewB)
	res.TimelineSumTransitions = sums[n-1]
	res.TimelineCarryTransitions = carries[n-1]

	nl := circuits.NewRCA(n, circuits.Cells)
	sumNet := nl.Bus("sum")[n-1]
	carryNet := nl.Bus("carry")[n-1]
	s := sim.New(nl, sim.Options{Delay: delay.Unit()})
	pi := make(logic.Vector, nl.InputWidth())
	apply := func(a, b uint64) error {
		copy(pi[:n], logic.VectorFromUint(a, n))
		copy(pi[n:], logic.VectorFromUint(b, n))
		return s.Step(pi)
	}
	if err := apply(res.PrevA, res.PrevB); err != nil {
		return WorstCaseResult{}, err
	}
	counter := core.NewCounterFor(nl, []netlist.NetID{sumNet, carryNet})
	s.AttachMonitor(counter)
	if err := apply(res.NewA, res.NewB); err != nil {
		return WorstCaseResult{}, err
	}
	res.SimSumTransitions = int(counter.Stats(sumNet).Transitions)
	res.SimCarryTransitions = int(counter.Stats(carryNet).Transitions)
	return res, nil
}

// ---------------------------------------------------------------------------
// E2 — Figure 5 / §3.2–3.3: per-bit useful and useless transitions of a
// 16-bit RCA under random inputs, analytic vs. simulated.

// Fig5Bit is one bar group of Figure 5.
type Fig5Bit struct {
	Bit  int
	Kind string // "sum" or "carry" (carry i is C_{i+1})
	// Analytic expected counts (equations 2–7 × cycles).
	AnalyticUseful, AnalyticUseless float64
	// Simulated counts from the event-driven run.
	SimUseful, SimUseless uint64
}

// Fig5Result holds the full Figure 5 reproduction.
type Fig5Result struct {
	N, Cycles int
	Bits      []Fig5Bit
	// Analytic totals with the paper's per-bit rounding: for N=16 and
	// 4000 cycles these are exactly 119002/63334/55668.
	AnalyticTotal, AnalyticUseful, AnalyticUseless int64
	// Simulated totals.
	Sim Activity
}

// Figure5 reproduces Figure 5: an N-bit RCA driven with `cycles` random
// vectors, classified per sum and carry bit, next to the closed-form
// prediction.
func Figure5(n, cycles int, seed uint64) (Fig5Result, error) {
	pred := analytic.PredictRCA(n, cycles)
	nl := circuits.NewRCA(n, circuits.Cells)
	counter, err := MeasureDetailed(nl, Config{Cycles: cycles, Seed: seed})
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{N: n, Cycles: cycles, Sim: summarize(nl.Name, counter)}
	res.AnalyticTotal, res.AnalyticUseful, res.AnalyticUseless = pred.RoundedTotals()
	sumBits := counter.BusBitStats("sum")
	carryBits := counter.BusBitStats("carry")
	for i := 0; i < n; i++ {
		res.Bits = append(res.Bits, Fig5Bit{
			Bit: i, Kind: "sum",
			AnalyticUseful:  pred.SumUseful[i],
			AnalyticUseless: pred.SumUseless[i],
			SimUseful:       sumBits[i].Useful,
			SimUseless:      sumBits[i].Useless,
		})
	}
	for i := 0; i < n; i++ {
		res.Bits = append(res.Bits, Fig5Bit{
			Bit: i, Kind: "carry",
			AnalyticUseful:  pred.CarryUseful[i],
			AnalyticUseless: pred.CarryUseless[i],
			SimUseful:       carryBits[i].Useful,
			SimUseless:      carryBits[i].Useless,
		})
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// E3/E4 — Tables 1 and 2: multiplier architecture and delay-imbalance
// comparison.

// MultRow is one column of the paper's Tables 1 and 2.
type MultRow struct {
	Arch  string // "array" or "wallace"
	Width int
	// DSum and DCarry are the full-adder cell delays used.
	DSum, DCarry int
	Activity
}

// Table1 reproduces Table 1: transition activity of array and
// Wallace-tree multipliers (8×8 and 16×16) over `cycles` random inputs
// with unit delays. The four rows are measured in parallel on the batch
// layer.
func Table1(cycles int, seed uint64) ([]MultRow, error) {
	return measureMultipliers([]multSpec{
		{"array", 8, 1, 1}, {"array", 16, 1, 1},
		{"wallace", 8, 1, 1}, {"wallace", 16, 1, 1},
	}, cycles, seed)
}

// Table2 reproduces Table 2: the 8×8 multipliers with dsum = dcarry
// versus the more realistic dsum = 2·dcarry, measured in parallel on the
// batch layer.
func Table2(cycles int, seed uint64) ([]MultRow, error) {
	return measureMultipliers([]multSpec{
		{"array", 8, 1, 1}, {"array", 8, 2, 1},
		{"wallace", 8, 1, 1}, {"wallace", 8, 2, 1},
	}, cycles, seed)
}

// multSpec names one multiplier measurement of Tables 1 and 2.
type multSpec struct {
	arch         string
	width        int
	dsum, dcarry int
}

func (sp multSpec) build() (*netlist.Netlist, delay.Model) {
	nl := circuits.NewArrayMultiplier(sp.width, circuits.Cells)
	if sp.arch == "wallace" {
		nl = circuits.NewWallaceMultiplier(sp.width, circuits.Cells)
	}
	var dm delay.Model = delay.Unit()
	if sp.dsum != sp.dcarry {
		dm = delay.FullAdderRatio(sp.dsum, sp.dcarry)
	}
	return nl, dm
}

// measureMultipliers measures the given multiplier specs concurrently
// and returns one row per spec, in spec order.
func measureMultipliers(specs []multSpec, cycles int, seed uint64) ([]MultRow, error) {
	jobs := make([]MeasureJob, len(specs))
	for i, sp := range specs {
		nl, dm := sp.build()
		jobs[i] = MeasureJob{Netlist: nl, Config: Config{Cycles: cycles, Seed: seed, Delay: dm}}
	}
	res := MeasureMany(jobs, 0)
	rows := make([]MultRow, len(specs))
	for i, sp := range specs {
		if res[i].Err != nil {
			return nil, res[i].Err
		}
		rows[i] = MultRow{Arch: sp.arch, Width: sp.width, DSum: sp.dsum, DCarry: sp.dcarry, Activity: res[i].Activity}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// E5 — §4.2: the direction detector transition-activity study.

// DirDetResult is the §4.2 measurement.
type DirDetResult struct {
	Activity
	// BalanceLimit is 1 + L/F: the activity reduction achievable by
	// perfect delay balancing (the paper reports 4.8).
	BalanceLimit float64
}

// DirectionDetector42 reproduces §4.2: the unregistered direction
// detector simulated with unit delays under `cycles` random inputs
// (the paper uses 4320).
func DirectionDetector42(cycles int, seed uint64) (DirDetResult, error) {
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	act, err := Measure(nl, Config{Cycles: cycles, Seed: seed})
	if err != nil {
		return DirDetResult{}, err
	}
	return DirDetResult{Activity: act, BalanceLimit: act.BalanceLimitFactor()}, nil
}

// ---------------------------------------------------------------------------
// E6/E7 — Table 3 and Figure 10: power versus flipflop count across
// retimed direction detector variants.

// Table3Row is one circuit column of Table 3.
type Table3Row struct {
	Circuit      int
	TargetPeriod int
	Period       int
	Latency      int
	FFs          int
	AreaMM2      float64
	ClockCapPF   float64
	LogicMW      float64
	FlipflopMW   float64
	ClockMW      float64
	TotalMW      float64
	LOverF       float64
}

// Table3 reproduces Table 3: the input-registered direction detector is
// retimed for four successively higher clock frequencies (shorter
// retiming periods), and each variant's power is split into logic,
// flipflop and clock components. The first variant is the original
// circuit (registers at the inputs, the paper's 48 flipflops).
func Table3(cycles int, seed uint64) ([]Table3Row, error) {
	base := circuits.NewDirectionDetector(circuits.DirDetConfig{
		Width: 8, Style: circuits.Cells, RegisterInputs: true,
	})
	dm := delay.Unit()
	cp := retime.FromNetlist(base, dm, 0).ClockPeriod(nil)
	// Four retiming frequencies: the original period plus three
	// successively faster targets (chosen like the paper's four layouts:
	// the optimum lies strictly inside the sweep).
	targets := []int{cp, cp * 3 / 7, cp / 3, cp * 3 / 14}
	tech := power.Default08um()

	// Each variant retimes and measures independently: one worker per
	// sweep point on the batch layer's pool.
	rows := make([]Table3Row, len(targets))
	err := parallelEach(len(targets), 0, func(i int) error {
		tgt := targets[i]
		if tgt < 1 {
			tgt = 1
		}
		res, err := retime.ForPeriod(base, dm, tgt, 4*cp)
		if err != nil {
			return fmt.Errorf("glitchsim: table 3 target %d: %w", tgt, err)
		}
		bd, act, err := MeasurePower(res.Netlist, Config{
			Cycles: cycles, Seed: seed, Warmup: res.Latency + 16,
		}, tech)
		if err != nil {
			return err
		}
		rows[i] = Table3Row{
			Circuit:      i + 1,
			TargetPeriod: tgt,
			Period:       res.Period,
			Latency:      res.Latency,
			FFs:          bd.NumFFs,
			AreaMM2:      bd.AreaMM2,
			ClockCapPF:   bd.ClockCapF * 1e12,
			LogicMW:      bd.LogicW * 1e3,
			FlipflopMW:   bd.FlipflopW * 1e3,
			ClockMW:      bd.ClockW * 1e3,
			TotalMW:      bd.TotalW() * 1e3,
			LOverF:       act.LOverF(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure10 returns the Table 3 sweep extended to arbitrary retiming
// targets, producing the power-versus-flipflops curves of Figure 10.
// Points are ordered by increasing flipflop count.
func Figure10(targets []int, cycles int, seed uint64) ([]Table3Row, error) {
	base := circuits.NewDirectionDetector(circuits.DirDetConfig{
		Width: 8, Style: circuits.Cells, RegisterInputs: true,
	})
	dm := delay.Unit()
	cp := retime.FromNetlist(base, dm, 0).ClockPeriod(nil)
	if targets == nil {
		targets = []int{cp, cp / 2, cp / 3, cp / 4, cp / 5, cp / 7, cp / 9, cp / 12}
	}
	tech := power.Default08um()
	rows := make([]Table3Row, len(targets))
	err := parallelEach(len(targets), 0, func(i int) error {
		tgt := targets[i]
		if tgt < 1 {
			tgt = 1
		}
		res, err := retime.ForPeriod(base, dm, tgt, 8*cp)
		if err != nil {
			return err
		}
		bd, act, err := MeasurePower(res.Netlist, Config{
			Cycles: cycles, Seed: seed, Warmup: res.Latency + 16,
		}, tech)
		if err != nil {
			return err
		}
		rows[i] = Table3Row{
			Circuit: i + 1, TargetPeriod: tgt, Period: res.Period,
			Latency: res.Latency, FFs: bd.NumFFs,
			AreaMM2: bd.AreaMM2, ClockCapPF: bd.ClockCapF * 1e12,
			LogicMW: bd.LogicW * 1e3, FlipflopMW: bd.FlipflopW * 1e3,
			ClockMW: bd.ClockW * 1e3, TotalMW: bd.TotalW() * 1e3,
			LOverF: act.LOverF(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper.

// AblationResult pairs two activity measurements for comparison.
type AblationResult struct {
	Name string
	A, B Activity
}

// AblationInertial compares transport and inertial delay handling on the
// direction detector under the heterogeneous Typical delay model:
// inertial gates swallow pulses narrower than their own delay, so
// useless activity drops. (Under pure unit delay the two modes coincide:
// no pulse is ever narrower than a gate delay.)
func AblationInertial(cycles int, seed uint64) (AblationResult, error) {
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	a, err := Measure(nl, Config{Cycles: cycles, Seed: seed, Delay: delay.Typical()})
	if err != nil {
		return AblationResult{}, err
	}
	b, err := Measure(nl, Config{Cycles: cycles, Seed: seed, Delay: delay.Typical(), Inertial: true})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "transport-vs-inertial", A: a, B: b}, nil
}

// AblationGranularity compares the compound-FA-cell and gate-level
// decompositions of the same RCA: finer granularity exposes more
// internal nodes and therefore more (and different) glitching.
func AblationGranularity(width, cycles int, seed uint64) (AblationResult, error) {
	a, err := Measure(circuits.NewRCA(width, circuits.Cells), Config{Cycles: cycles, Seed: seed})
	if err != nil {
		return AblationResult{}, err
	}
	b, err := Measure(circuits.NewRCA(width, circuits.Gates), Config{Cycles: cycles, Seed: seed})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "cells-vs-gates", A: a, B: b}, nil
}

// ZeroDelayComparison quantifies how much a glitch-blind probabilistic
// estimator (zero-delay transition probabilities) underestimates the
// true event-driven activity of a circuit.
type ZeroDelayComparison struct {
	Circuit string
	// EstimatedPerCycle is the zero-delay expected transitions/cycle.
	EstimatedPerCycle float64
	// MeasuredPerCycle is the event-driven transitions/cycle.
	MeasuredPerCycle float64
	// UsefulPerCycle is the measured useful transitions/cycle, which the
	// zero-delay estimate should approximate.
	UsefulPerCycle float64
}

// Underestimate returns measured/estimated: the factor a glitch-blind
// power estimator is off by.
func (z ZeroDelayComparison) Underestimate() float64 {
	if z.EstimatedPerCycle == 0 {
		return 0
	}
	return z.MeasuredPerCycle / z.EstimatedPerCycle
}

// AblationZeroDelay runs the comparison on an N-bit RCA.
func AblationZeroDelay(width, cycles int, seed uint64) (ZeroDelayComparison, error) {
	nl := circuits.NewRCA(width, circuits.Cells)
	est := analytic.ZeroDelayActivityTotal(nl)
	act, err := Measure(nl, Config{Cycles: cycles, Seed: seed})
	if err != nil {
		return ZeroDelayComparison{}, err
	}
	return ZeroDelayComparison{
		Circuit:           nl.Name,
		EstimatedPerCycle: est,
		MeasuredPerCycle:  float64(act.Transitions) / float64(act.Cycles),
		UsefulPerCycle:    float64(act.Useful) / float64(act.Cycles),
	}, nil
}

// SeedSweep re-runs the Table 1 array-vs-wallace comparison (8×8) for
// several seeds, returning one pair of activities per seed — the
// seed-sensitivity ablation: L/F must be stable across streams. All
// 2·len(seeds) measurements run in parallel on the batch layer, sharing
// one compiled form per architecture.
func SeedSweep(cycles int, seeds []uint64) ([]AblationResult, error) {
	array := circuits.NewArrayMultiplier(8, circuits.Cells)
	wallace := circuits.NewWallaceMultiplier(8, circuits.Cells)
	jobs := make([]MeasureJob, 0, 2*len(seeds))
	for _, seed := range seeds {
		jobs = append(jobs,
			MeasureJob{Netlist: array, Config: Config{Cycles: cycles, Seed: seed}},
			MeasureJob{Netlist: wallace, Config: Config{Cycles: cycles, Seed: seed}},
		)
	}
	res := MeasureMany(jobs, 0)
	out := make([]AblationResult, len(seeds))
	for i, seed := range seeds {
		a, b := res[2*i], res[2*i+1]
		if a.Err != nil {
			return nil, a.Err
		}
		if b.Err != nil {
			return nil, b.Err
		}
		out[i] = AblationResult{
			Name: fmt.Sprintf("seed-%d", seed), A: a.Activity, B: b.Activity,
		}
	}
	return out, nil
}

// GraySweep compares random against Gray-code (single-bit-change) and
// correlated video-like stimulus on the direction detector, probing the
// paper's claim that input correlation is destroyed by the abs-diff
// stage.
func GraySweep(cycles int) ([]Activity, error) {
	nl := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	w := nl.InputWidth()
	sources := []struct {
		name string
		src  stimulus.Source
	}{
		{"random", stimulus.NewRandom(w, 1)},
		{"gray", stimulus.NewGray(w)},
		{"video", stimulus.NewConcat(
			stimulus.NewCorrelated(6, 8, 3, 7),
			stimulus.NewConstant(logic.VectorFromUint(16, 8)),
		)},
	}
	jobs := make([]MeasureJob, len(sources))
	for i, s := range sources {
		jobs[i] = MeasureJob{Netlist: nl, Config: Config{Cycles: cycles, Source: s.src}}
	}
	res := MeasureMany(jobs, 0)
	out := make([]Activity, len(sources))
	for i, s := range sources {
		if res[i].Err != nil {
			return nil, res[i].Err
		}
		out[i] = res[i].Activity
		out[i].Circuit = nl.Name + "/" + s.name
	}
	return out, nil
}
