package glitchsim

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/power"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// Engine is the execution core of the package: it owns a worker pool
// configuration, an engine-wide simulation concurrency bound
// (WithMaxConcurrency), default delay/technology models, and a cache of
// compiled netlists keyed by structural identity, so repeated
// measurements of the same circuit — across calls, goroutines and
// service requests — pay for compilation once. All measurement entry
// points take a context.Context and honour cancellation promptly, with
// periodic checks inside the simulator's event loop.
//
// An Engine is safe for concurrent use by any number of goroutines; a
// long-running service shares one Engine across all requests. The
// package-level functions (Measure, Table1, …) are thin wrappers over a
// shared DefaultEngine and remain bit-identical to their historical
// behaviour.
type Engine struct {
	workers   int
	lanes     int // word-parallel stimulus lanes per measurement; 0 tracks DefaultLanes
	delay     delay.Model
	tech      power.Tech
	cacheSize int
	maxConc   int
	sem       chan struct{}   // engine-wide simulation slots, cap = maxConc
	sources   []CircuitSource // name-resolution chain ahead of the registry

	mu        sync.Mutex
	lru       *list.List // of *cacheEntry; front = most recently used
	entries   map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheEntry is one compiled netlist in the Engine's cache. Compilation
// happens inside the entry's once, outside the cache lock, so concurrent
// first requests for the same circuit do not serialize the whole engine
// and do not compile twice.
type cacheEntry struct {
	key  string
	once sync.Once
	c    *sim.Compiled
}

// DefaultCacheSize is the number of distinct compiled netlists an Engine
// retains when WithCacheSize is not given.
const DefaultCacheSize = 128

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithWorkers fixes the engine's worker-pool size for batch and sweep
// measurements. n <= 0 (the default) tracks the process-wide
// DefaultWorkers value, which the -workers CLI flag sets.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.workers = n
	}
}

// WithDelayModel sets the delay model measurements fall back to when
// their Config.Delay is nil. The default is unit delay, matching the
// paper's experiments.
func WithDelayModel(m delay.Model) EngineOption {
	return func(e *Engine) { e.delay = m }
}

// WithTech sets the technology constants MeasurePower and the power
// experiments use when the request does not carry its own. The default
// is the calibrated 0.8 µm model of DefaultTech.
func WithTech(t power.Tech) EngineOption {
	return func(e *Engine) { e.tech = t }
}

// WithMaxConcurrency bounds the number of simulations the engine runs
// simultaneously across ALL its calls and sessions, so a service facing
// many concurrent requests cannot oversubscribe the machine: each
// request still fans out onto its own workers, but at most n of them
// simulate at any instant (the rest wait, honouring cancellation). n <=
// 0 (the default) selects GOMAXPROCS. Per-request worker counts larger
// than n are not an error — they just contend for the n slots.
func WithMaxConcurrency(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.maxConc = n
	}
}

// WithCacheSize bounds the compiled-netlist cache to n distinct
// circuits (LRU eviction). n <= 0 disables caching entirely: every
// measurement compiles its netlist, as the pre-Engine API did.
func WithCacheSize(n int) EngineOption {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.cacheSize = n
	}
}

// NewEngine returns an Engine with the given options applied over the
// defaults: workers tracking DefaultWorkers, unit fallback delay,
// DefaultTech technology, DefaultCacheSize cache entries.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{
		tech:      power.Default08um(),
		cacheSize: DefaultCacheSize,
		lru:       list.New(),
		entries:   make(map[string]*list.Element),
	}
	for _, o := range opts {
		o(e)
	}
	if e.maxConc <= 0 {
		e.maxConc = runtime.GOMAXPROCS(0)
	}
	e.sem = make(chan struct{}, e.maxConc)
	return e
}

// ErrEngineBusy marks a measurement that gave up waiting for an engine
// simulation slot: its context ended while every WithMaxConcurrency
// slot was held by other work. The returned error also wraps the
// context's own error (context.Canceled or context.DeadlineExceeded),
// so existing errors.Is checks keep working. Async callers use the mark
// to classify the failure as transient — the engine was loaded, not
// broken — and retry with backoff.
var ErrEngineBusy = errors.New("glitchsim: engine at concurrency limit")

// acquire claims one of the engine's simulation slots, blocking until a
// slot frees up or ctx is cancelled.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", ErrEngineBusy, ctx.Err())
	}
}

func (e *Engine) release() { <-e.sem }

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the process-wide Engine behind the package-level
// measurement functions. It is created on first use with all defaults;
// its worker count follows SetDefaultWorkers.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// Tech returns the engine's default technology constants.
func (e *Engine) Tech() power.Tech { return e.tech }

// Workers returns the engine's effective worker-pool size.
func (e *Engine) Workers() int { return e.workerCount(0) }

// workerCount resolves the effective pool size: an explicit per-request
// count wins, then the engine option, then the process default.
func (e *Engine) workerCount(request int) int {
	if request > 0 {
		return request
	}
	if e.workers > 0 {
		return e.workers
	}
	return DefaultWorkers()
}

// fillDefaults applies the engine-level fallbacks a request config did
// not specify. Only the delay model is engine-scoped; everything else is
// handled by Config.withDefaults at measurement time.
func (e *Engine) fillDefaults(cfg Config) Config {
	if cfg.Delay == nil && e.delay != nil {
		cfg.Delay = e.delay
	}
	return cfg
}

// CacheStats reports the compiled-netlist cache counters since the
// engine was created.
type CacheStats struct {
	// Size is the number of compiled netlists currently retained;
	// Capacity the configured bound (0 = caching disabled).
	Size, Capacity int
	// Hits and Misses count cache lookups; Evictions counts entries
	// dropped by the LRU bound.
	Hits, Misses, Evictions uint64
}

// CacheStats returns a snapshot of the cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{
		Size:      e.lru.Len(),
		Capacity:  e.cacheSize,
		Hits:      e.hits,
		Misses:    e.misses,
		Evictions: e.evictions,
	}
}

// compiled returns the compiled form of n, from cache when possible.
// The cache key is the netlist's structural fingerprint, so separately
// built instances of the same circuit share one compilation. Compile
// panics on invalid netlists (matching the historical Measure
// behaviour); a panicked compilation never poisons the cache.
func (e *Engine) compiled(n *netlist.Netlist) *sim.Compiled {
	if e.cacheSize <= 0 {
		return sim.Compile(n)
	}
	key := n.Fingerprint()

	e.mu.Lock()
	if el, ok := e.entries[key]; ok {
		e.lru.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		e.hits++
		e.mu.Unlock()
		ent.once.Do(func() { ent.c = sim.Compile(n) })
		if c := ent.c; c != nil {
			return c
		}
		// The goroutine that owned the once panicked in Compile (invalid
		// netlist). Drop the poisoned entry and report on this caller too.
		e.dropEntry(key)
		return sim.Compile(n)
	}
	ent := &cacheEntry{key: key}
	e.entries[key] = e.lru.PushFront(ent)
	e.misses++
	if e.lru.Len() > e.cacheSize {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.entries, oldest.Value.(*cacheEntry).key)
		e.evictions++
	}
	e.mu.Unlock()

	defer func() {
		if ent.c == nil {
			e.dropEntry(key) // Compile panicked: do not cache the failure
		}
	}()
	ent.once.Do(func() { ent.c = sim.Compile(n) })
	return ent.c
}

func (e *Engine) dropEntry(key string) {
	e.mu.Lock()
	if el, ok := e.entries[key]; ok {
		e.lru.Remove(el)
		delete(e.entries, key)
	}
	e.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Request structs.

// MeasureRequest asks for one measurement of one circuit.
type MeasureRequest struct {
	// Circuit references the circuit to measure: a registry name, a
	// Builder-built netlist, Verilog source or the JSON wire format
	// (see CircuitNamed and friends).
	Circuit Circuit
	// Netlist is the circuit to measure as a raw netlist.
	//
	// Deprecated: set Circuit (CircuitFromNetlist wraps an existing
	// netlist). When both are set, Netlist wins, keeping pre-Circuit
	// callers bit-identical.
	Netlist *netlist.Netlist
	// Config controls the run; zero-value fields select the documented
	// defaults (and the engine's delay model, if one was configured).
	Config Config
	// Tech overrides the engine's technology constants for MeasurePower.
	// Nil selects the engine default.
	Tech *power.Tech
}

// BatchRequest asks for a set of independent measurements.
type BatchRequest struct {
	Jobs []MeasureJob
	// Workers overrides the engine's pool size for this batch; 0 keeps
	// the engine default.
	Workers int
}

// SeedSweepRequest asks for the same circuit measured under several
// stimulus seeds, merged into one aggregate counter.
type SeedSweepRequest struct {
	// Circuit references the circuit to sweep (see MeasureRequest).
	Circuit Circuit
	// Netlist is the circuit as a raw netlist.
	//
	// Deprecated: set Circuit. When both are set, Netlist wins.
	Netlist *netlist.Netlist
	Config  Config
	Seeds   []uint64
	// Workers overrides the engine's pool size for this sweep; 0 keeps
	// the engine default.
	Workers int
}

// ExperimentRequest parameterizes the paper's experiment drivers.
// Zero-value fields select each experiment's documented defaults.
type ExperimentRequest struct {
	// Cycles is the number of measured cycles per point (0 = the
	// experiment's default run length).
	Cycles int
	// Seed selects the stimulus stream (0 = 1).
	Seed uint64
	// Width parameterizes width-dependent studies (Figure5, WorstCase,
	// AdderStudy, MultiplierStudy).
	Width int
	// Targets overrides the Figure10 retiming-period sweep; nil selects
	// the default eight-point sweep.
	Targets []int
	// Seeds parameterizes multi-seed studies (SeedSweep).
	Seeds []uint64
	// Circuit overrides the subject circuit of the retiming power
	// sweeps (Table3, Figure10): the sweep retimes and measures this
	// circuit instead of the paper's input-registered direction
	// detector. Experiments with a fixed circuit set (Table1, Table2,
	// …) reject a non-zero Circuit.
	Circuit Circuit
}

// ---------------------------------------------------------------------------
// Core measurement entry points.

// measureNetlist is the single-measurement core: admit (the memory
// budget is checked against the cost estimate before anything is
// compiled), compile (cached), claim an engine slot, simulate.
func (e *Engine) measureNetlist(ctx context.Context, nl *netlist.Netlist, cfg Config) (*core.Counter, error) {
	cfg = e.fillDefaults(cfg)
	if err := e.admitMemory(nl, cfg); err != nil {
		return nil, err
	}
	c := e.compiled(nl)
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	return measureCompiled(ctx, c, cfg, e.laneCount(cfg))
}

// MeasureDetailed simulates the request and returns the attached
// activity counter with per-net statistics. Cancellation of ctx aborts
// the simulation promptly, returning ctx's error. On a budget trip
// (errors.Is(err, ErrBudgetExceeded)) the partial counter is returned
// WITH the error: its statistics are well defined through the cycle
// boundary recorded in the *BudgetError.
func (e *Engine) MeasureDetailed(ctx context.Context, req MeasureRequest) (*core.Counter, error) {
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return nil, err
	}
	return e.measureNetlist(ctx, nl, req.Config)
}

// Measure runs MeasureDetailed and summarizes the totals. On a budget
// trip (errors.Is(err, ErrBudgetExceeded)) the returned Activity holds
// the partial statistics through the last completed cycle boundary,
// alongside the error.
func (e *Engine) Measure(ctx context.Context, req MeasureRequest) (Activity, error) {
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return Activity{}, err
	}
	counter, err := e.measureNetlist(ctx, nl, req.Config)
	if err != nil {
		if counter != nil {
			return summarize(nl.Name, counter), err
		}
		return Activity{}, err
	}
	return summarize(nl.Name, counter), nil
}

// MeasurePower measures activity and evaluates the paper's
// three-component power model on it, using the request's technology
// constants or the engine default.
func (e *Engine) MeasurePower(ctx context.Context, req MeasureRequest) (power.Breakdown, Activity, error) {
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return power.Breakdown{}, Activity{}, err
	}
	counter, err := e.measureNetlist(ctx, nl, req.Config)
	if err != nil {
		return power.Breakdown{}, Activity{}, err
	}
	tech := e.tech
	if req.Tech != nil {
		tech = *req.Tech
	}
	return power.FromActivity(counter, tech), summarize(nl.Name, counter), nil
}

// MeasureMany measures every job of the batch on the engine's worker
// pool and returns one result per job, in job order. Per-job failures
// land in the corresponding MeasureResult and never abort the batch; the
// returned error is non-nil only when ctx is cancelled, in which case
// jobs that never ran carry the context's error in their result.
func (e *Engine) MeasureMany(ctx context.Context, req BatchRequest) ([]MeasureResult, error) {
	return e.measureMany(ctx, req.Jobs, req.Workers, nil)
}

// measureMany is the fan-out core behind MeasureMany, MeasureSeeds and
// the experiment drivers. emit, when non-nil, is called once per
// completed job from the worker goroutines (concurrently, in completion
// order) — the Session layer streams progress through it.
func (e *Engine) measureMany(ctx context.Context, jobs []MeasureJob, workers int, emit func(int, *MeasureResult)) ([]MeasureResult, error) {
	results := make([]MeasureResult, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	// Materialize Circuit references (on a copy: the caller's slice is
	// theirs) so the fan-out below only ever sees raw netlists. A job
	// that fails to resolve carries the error in its result, like any
	// other per-job failure.
	jobs = append([]MeasureJob(nil), jobs...)
	for i := range jobs {
		if jobs[i].Netlist != nil || jobs[i].Circuit.IsZero() {
			continue
		}
		nl, err := e.Resolve(jobs[i].Circuit)
		if err != nil {
			results[i].Err = fmt.Errorf("glitchsim: job %d: %w", i, err)
			continue
		}
		jobs[i].Netlist = nl
	}

	// Resolve each distinct netlist once, up front and serially: Compile
	// panics on invalid netlists (as Measure does) and the panic should
	// surface on the caller's goroutine. The cache makes this a lookup
	// for circuits the engine has seen before. Memory-budget admission
	// happens here too, before the job's netlist is ever compiled.
	compiled := make(map[*netlist.Netlist]*sim.Compiled, len(jobs))
	for i := range jobs {
		nl := jobs[i].Netlist
		if nl == nil || results[i].Err != nil {
			continue
		}
		if err := e.admitMemory(nl, e.fillDefaults(jobs[i].Config)); err != nil {
			results[i].Err = err
			continue
		}
		if compiled[nl] == nil {
			compiled[nl] = e.compiled(nl)
		}
	}

	err := parallelEachCtx(ctx, len(jobs), e.workerCount(workers), func(i int) error {
		job := &jobs[i]
		if results[i].Err != nil {
			// Circuit resolution already failed above.
		} else if job.Netlist == nil {
			results[i].Err = fmt.Errorf("glitchsim: job %d names no circuit", i)
		} else if err := e.acquire(ctx); err != nil {
			results[i].Err = err
		} else {
			cfg := e.fillDefaults(job.Config)
			counter, err := measureCompiled(ctx, compiled[job.Netlist], cfg, e.laneCount(cfg))
			e.release()
			if err != nil {
				results[i].Err = err
			} else {
				results[i].Counter = counter
				results[i].Activity = summarize(job.Netlist.Name, counter)
			}
		}
		if emit != nil {
			emit(i, &results[i])
		}
		return nil // per-job errors live in results, never abort the batch
	})
	if err != nil {
		// Mark jobs the cancelled pool never ran, so callers inspecting
		// results see why they are empty.
		for i := range results {
			if results[i].Err == nil && results[i].Counter == nil {
				results[i].Err = err
			}
		}
		return results, err
	}
	return results, nil
}

// MeasureSeeds measures the request's circuit under each seed in
// parallel and merges the per-seed counters into one aggregate, which
// reads like a single measurement of len(Seeds)*Cycles cycles. Any
// Source in the config is ignored (each seed gets its own stream). The
// merge order is fixed (seed order), so the aggregate is deterministic.
func (e *Engine) MeasureSeeds(ctx context.Context, req SeedSweepRequest) (*core.Counter, error) {
	counter, _, err := e.measureSeeds(ctx, req, nil)
	return counter, err
}

// measureSeeds also returns the resolved circuit name, so the Session
// layer can label its final event without resolving the reference a
// second time.
func (e *Engine) measureSeeds(ctx context.Context, req SeedSweepRequest, emit func(int, *MeasureResult)) (*core.Counter, string, error) {
	if len(req.Seeds) == 0 {
		return nil, "", fmt.Errorf("glitchsim: MeasureSeeds needs at least one seed")
	}
	nl, err := e.requestNetlist(req.Netlist, req.Circuit)
	if err != nil {
		return nil, "", err
	}
	jobs := make([]MeasureJob, len(req.Seeds))
	for i, seed := range req.Seeds {
		c := req.Config
		c.Seed = seed
		c.Source = nil
		jobs[i] = MeasureJob{Netlist: nl, Config: c}
	}
	res, err := e.measureMany(ctx, jobs, req.Workers, emit)
	if err != nil {
		return nil, "", err
	}
	agg := res[0].Counter
	for i, r := range res {
		if r.Err != nil {
			return nil, "", fmt.Errorf("glitchsim: seed %d: %w", req.Seeds[i], r.Err)
		}
		if i == 0 {
			continue
		}
		if err := agg.Merge(r.Counter); err != nil {
			return nil, "", err
		}
	}
	return agg, nl.Name, nil
}
