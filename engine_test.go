package glitchsim_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"glitchsim"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
)

// TestEngineCacheReusesCompilation: separately built instances of the
// same circuit must hit the compiled-netlist cache (fingerprint
// identity), and the LRU bound must hold.
func TestEngineCacheReusesCompilation(t *testing.T) {
	e := glitchsim.NewEngine()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		// A fresh netlist value every time: pointer identity can't help.
		if _, err := e.Measure(ctx, glitchsim.MeasureRequest{
			Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 20},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cs := e.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("3 measurements of one circuit compiled %d times, want 1", cs.Misses)
	}
	if cs.Hits != 2 {
		t.Errorf("hits = %d, want 2", cs.Hits)
	}
	if cs.Size != 1 {
		t.Errorf("cache size = %d, want 1", cs.Size)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	e := glitchsim.NewEngine(glitchsim.WithCacheSize(1))
	ctx := context.Background()
	circuits := []int{4, 8, 4}
	for _, w := range circuits {
		if _, err := e.Measure(ctx, glitchsim.MeasureRequest{
			Netlist: glitchsim.NewRCA(w), Config: glitchsim.Config{Cycles: 10},
		}); err != nil {
			t.Fatal(err)
		}
	}
	cs := e.CacheStats()
	if cs.Size != 1 {
		t.Errorf("cache size = %d, want 1 (capacity 1)", cs.Size)
	}
	if cs.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", cs.Evictions)
	}
	// rca4 was evicted by rca8 and recompiled: 3 misses, 0 hits.
	if cs.Misses != 3 {
		t.Errorf("misses = %d, want 3", cs.Misses)
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	e := glitchsim.NewEngine(glitchsim.WithCacheSize(0))
	ctx := context.Background()
	if _, err := e.Measure(ctx, glitchsim.MeasureRequest{
		Netlist: glitchsim.NewRCA(4), Config: glitchsim.Config{Cycles: 10},
	}); err != nil {
		t.Fatal(err)
	}
	if cs := e.CacheStats(); cs.Size != 0 || cs.Hits != 0 || cs.Misses != 0 {
		t.Errorf("disabled cache has activity: %+v", cs)
	}
}

// TestEngineDelayModelOption: a WithDelayModel engine fills requests
// whose config carries no delay, and an explicit config delay wins.
func TestEngineDelayModelOption(t *testing.T) {
	ctx := context.Background()
	typ := glitchsim.NewEngine(glitchsim.WithDelayModel(delay.Typical()))
	nl := glitchsim.NewDirectionDetector(8, false)

	fromOption, err := typ.Measure(ctx, glitchsim.MeasureRequest{Netlist: nl, Config: glitchsim.Config{Cycles: 100}})
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	explicit, err := glitchsim.Measure(nl, glitchsim.Config{Cycles: 100, Delay: delay.Typical()})
	if err != nil {
		t.Fatal(err)
	}
	if fromOption != explicit {
		t.Errorf("engine delay option diverges from explicit config: %+v vs %+v", fromOption, explicit)
	}

	unit, err := typ.Measure(ctx, glitchsim.MeasureRequest{
		Netlist: nl, Config: glitchsim.Config{Cycles: 100, Delay: delay.Unit()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if unit == fromOption {
		t.Error("explicit config delay did not override the engine option")
	}
}

// TestEngineGoldenEquivalence: the deprecated package-level wrappers
// must match direct Engine calls bit-for-bit — same Activity structs,
// same experiment rows.
func TestEngineGoldenEquivalence(t *testing.T) {
	ctx := context.Background()
	e := glitchsim.NewEngine()

	// Measure.
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	wrapped, err := glitchsim.Measure(glitchsim.NewRCA(8), glitchsim.Config{Cycles: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Measure(ctx, glitchsim.MeasureRequest{
		Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 80, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != direct {
		t.Errorf("Measure wrapper %+v != Engine.Measure %+v", wrapped, direct)
	}

	// MeasureSeeds.
	seeds := []uint64{1, 2, 3}
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	aggWrapped, err := glitchsim.MeasureSeeds(glitchsim.NewArrayMultiplier(4), glitchsim.Config{Cycles: 30}, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	aggDirect, err := e.MeasureSeeds(ctx, glitchsim.SeedSweepRequest{
		Netlist: glitchsim.NewArrayMultiplier(4), Config: glitchsim.Config{Cycles: 30}, Seeds: seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aggWrapped.Totals() != aggDirect.Totals() || aggWrapped.Cycles() != aggDirect.Cycles() {
		t.Errorf("MeasureSeeds wrapper %+v != engine %+v", aggWrapped.Totals(), aggDirect.Totals())
	}

	// Table1 experiment rows.
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	rowsWrapped, err := glitchsim.Table1(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	rowsDirect, err := e.Table1(ctx, glitchsim.ExperimentRequest{Cycles: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsWrapped) != len(rowsDirect) {
		t.Fatalf("row count mismatch: %d vs %d", len(rowsWrapped), len(rowsDirect))
	}
	for i := range rowsWrapped {
		if rowsWrapped[i] != rowsDirect[i] {
			t.Errorf("Table1 row %d: wrapper %+v != engine %+v", i, rowsWrapped[i], rowsDirect[i])
		}
	}

	// MeasurePower with an explicit tech.
	tech := glitchsim.DefaultTech()
	//lint:ignore SA1019 deprecated wrappers keep golden coverage
	bdW, actW, err := glitchsim.MeasurePower(glitchsim.NewDirectionDetector(8, true), glitchsim.Config{Cycles: 50}, tech)
	if err != nil {
		t.Fatal(err)
	}
	bdD, actD, err := e.MeasurePower(ctx, glitchsim.MeasureRequest{
		Netlist: glitchsim.NewDirectionDetector(8, true),
		Config:  glitchsim.Config{Cycles: 50},
		Tech:    &tech,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bdW != bdD || actW != actD {
		t.Errorf("MeasurePower wrapper (%+v, %+v) != engine (%+v, %+v)", bdW, actW, bdD, actD)
	}
}

// cancelPromptness bounds how long a cancelled call may keep running:
// generous against CI scheduling noise, far below the full workload's
// runtime.
const cancelPromptness = 5 * time.Second

// TestEngineMeasureCancellation: cancelling mid-measurement returns
// context.Canceled promptly, long before the requested workload could
// finish. Runs under -race in CI.
func TestEngineMeasureCancellation(t *testing.T) {
	e := glitchsim.NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A workload that would take far longer than the promptness bound.
	_, err := e.Measure(ctx, glitchsim.MeasureRequest{
		Netlist: glitchsim.NewArrayMultiplier(16),
		Config:  glitchsim.Config{Cycles: 2_000_000},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Measure returned %v, want context.Canceled", err)
	}
	if elapsed > cancelPromptness {
		t.Errorf("cancellation took %v, want < %v", elapsed, cancelPromptness)
	}
}

// TestEngineMeasureSeedsCancellation: a mid-sweep cancel aborts the
// whole worker pool promptly with context.Canceled. Runs under -race in
// CI.
func TestEngineMeasureSeedsCancellation(t *testing.T) {
	e := glitchsim.NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	seeds := make([]uint64, 64)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.MeasureSeeds(ctx, glitchsim.SeedSweepRequest{
		Netlist: glitchsim.NewArrayMultiplier(16),
		Config:  glitchsim.Config{Cycles: 100_000},
		Seeds:   seeds,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MeasureSeeds returned %v, want context.Canceled", err)
	}
	if elapsed > cancelPromptness {
		t.Errorf("cancellation took %v, want < %v", elapsed, cancelPromptness)
	}
}

// TestEngineMeasureManyCancelMarksSkipped: jobs the cancelled pool never
// ran carry the context error in their results.
func TestEngineMeasureManyCancelMarksSkipped(t *testing.T) {
	e := glitchsim.NewEngine(glitchsim.WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	jobs := []glitchsim.MeasureJob{
		{Netlist: glitchsim.NewRCA(4), Config: glitchsim.Config{Cycles: 10}},
		{Netlist: glitchsim.NewRCA(4), Config: glitchsim.Config{Cycles: 10}},
	}
	results, err := e.MeasureMany(ctx, glitchsim.BatchRequest{Jobs: jobs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestEngineMaxConcurrency: the engine-wide simulation bound changes
// neither results (determinism) nor cancellation promptness — a batch
// wider than the slot count must still produce results bit-identical to
// an unbounded engine, and a cancel while jobs wait on a slot must
// surface context.Canceled.
func TestEngineMaxConcurrency(t *testing.T) {
	jobs := make([]glitchsim.MeasureJob, 6)
	for i := range jobs {
		jobs[i] = glitchsim.MeasureJob{
			Netlist: glitchsim.NewRCA(8),
			Config:  glitchsim.Config{Cycles: 40, Seed: uint64(i + 1)},
		}
	}
	bounded := glitchsim.NewEngine(glitchsim.WithWorkers(4), glitchsim.WithMaxConcurrency(1))
	wide := glitchsim.NewEngine(glitchsim.WithWorkers(4))
	ctx := context.Background()
	got, err := bounded.MeasureMany(ctx, glitchsim.BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	want, err := wide.MeasureMany(ctx, glitchsim.BatchRequest{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if got[i].Activity != want[i].Activity {
			t.Errorf("job %d: bounded %+v != unbounded %+v", i, got[i].Activity, want[i].Activity)
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bounded.MeasureMany(cancelled, glitchsim.BatchRequest{Jobs: jobs}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// blockingSource is a stimulus source that parks the measurement on its
// first vector until released — it holds the engine's concurrency slot
// deterministically, so tests can observe a genuinely busy engine.
type blockingSource struct {
	width   int
	started chan struct{}
	release chan struct{}
	once    sync.Once
	buf     logic.Vector
}

func (s *blockingSource) Next() logic.Vector {
	s.once.Do(func() { close(s.started) })
	<-s.release
	if s.buf == nil {
		s.buf = make(logic.Vector, s.width)
	}
	return s.buf
}

func (s *blockingSource) Width() int { return s.width }

// TestEngineBusyClassification: a measurement whose context expires
// while every WithMaxConcurrency slot is held reports ErrEngineBusy
// (wrapped around the context error), the mark the async job layer
// retries on.
func TestEngineBusyClassification(t *testing.T) {
	e := glitchsim.NewEngine(glitchsim.WithMaxConcurrency(1))
	nl := glitchsim.NewRCA(8)
	src := &blockingSource{width: nl.InputWidth(), started: make(chan struct{}), release: make(chan struct{})}

	holderDone := make(chan error, 1)
	go func() {
		_, err := e.Measure(context.Background(), glitchsim.MeasureRequest{
			Netlist: nl, Config: glitchsim.Config{Cycles: 1, Source: src},
		})
		holderDone <- err
	}()
	<-src.started // the slot is now provably held

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := e.Measure(ctx, glitchsim.MeasureRequest{
		Netlist: glitchsim.NewRCA(8), Config: glitchsim.Config{Cycles: 20},
	})
	if !errors.Is(err, glitchsim.ErrEngineBusy) {
		t.Fatalf("slot-starved Measure err = %v, want ErrEngineBusy", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("busy error %v does not wrap the context error", err)
	}

	close(src.release)
	if err := <-holderDone; err != nil {
		t.Fatalf("slot-holding measurement failed: %v", err)
	}
}
