package registry

import (
	"sort"
	"strings"
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// TestBuildAllCircuitsValid: every registered circuit must build into a
// valid netlist with at least one primary input (the simulator's
// stimulus contract) and carry the registry name's rough shape.
func TestBuildAllCircuitsValid(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, name := range names {
		nl, err := Build(name)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if nl == nil {
			t.Fatalf("Build(%q): nil netlist", name)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("Build(%q): invalid netlist: %v", name, err)
		}
		if nl.InputWidth() == 0 {
			t.Errorf("Build(%q): no primary inputs", name)
		}
		if nl.NumCells() == 0 {
			t.Errorf("Build(%q): no cells", name)
		}
	}
}

// TestBuildReturnsFreshInstances: builders must return a new netlist per
// call (the engine's fingerprint cache, not pointer identity, dedups
// compilation), and repeated builds must be structurally identical.
func TestBuildReturnsFreshInstances(t *testing.T) {
	a, err := Build("wallace8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("wallace8")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Build returned a shared *Netlist")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("two builds of wallace8 differ structurally")
	}
}

func TestBuildUnknownCircuit(t *testing.T) {
	_, err := Build("nonesuch")
	if err == nil {
		t.Fatal("unknown circuit built")
	}
	// The error must teach the caller the valid names (it is surfaced
	// verbatim by the CLI and the HTTP 400 reply).
	if !strings.Contains(err.Error(), "rca8") || !strings.Contains(err.Error(), "nonesuch") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	if len(names) != len(builders) {
		t.Errorf("Names lists %d of %d builders", len(names), len(builders))
	}
	list := NameList()
	for _, n := range names {
		if !strings.Contains(list, n) {
			t.Errorf("NameList misses %q", n)
		}
	}
}

// TestDelayModelResolution: the shared CLI/service delay-flag mapping.
func TestDelayModelResolution(t *testing.T) {
	fa := &netlist.Cell{Type: netlist.FA, Out: []netlist.NetID{0, 1}}
	inv := &netlist.Cell{Type: netlist.Not, Out: []netlist.NetID{0}}

	if m := DelayModel(1, 1, false); m.Name() != delay.Unit().Name() {
		t.Errorf("(1,1,false) resolved to %s, want unit", m.Name())
	}
	if m := DelayModel(3, 3, false); m.Delay(inv, 0) != 3 {
		t.Errorf("(3,3) not uniform(3): %d", m.Delay(inv, 0))
	}
	m := DelayModel(2, 1, false)
	if m.Delay(fa, netlist.PinSum) != 2 || m.Delay(fa, netlist.PinCarry) != 1 {
		t.Errorf("(2,1) FA delays = (%d,%d), want (2,1)", m.Delay(fa, netlist.PinSum), m.Delay(fa, netlist.PinCarry))
	}
	if m.Delay(inv, 0) != 1 {
		t.Errorf("(2,1) non-adder delay = %d, want 1", m.Delay(inv, 0))
	}
	if m := DelayModel(2, 1, true); m.Name() != delay.Typical().Name() {
		t.Errorf("typical flag ignored: %s", m.Name())
	}
}

// TestHazardDemonstrator: the hand-rolled hazard circuit keeps its
// defining property — a single AND of a signal with its own inverse.
func TestHazardDemonstrator(t *testing.T) {
	nl, err := Build("hazard")
	if err != nil {
		t.Fatal(err)
	}
	if nl.InputWidth() != 1 || nl.OutputWidth() != 1 {
		t.Fatalf("hazard is %d-in/%d-out, want 1/1", nl.InputWidth(), nl.OutputWidth())
	}
	counts := nl.CellCounts()
	if counts[netlist.And] != 1 || counts[netlist.Not] != 1 {
		t.Errorf("hazard cells = %v, want one and + one not", counts)
	}
}
