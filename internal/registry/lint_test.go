package registry_test

import (
	"testing"

	"glitchsim/internal/registry"
	"glitchsim/netlist"
)

// TestLintRegistryClean holds every built-in circuit to zero lint
// warnings: the catalogue is the reference corpus, so a floating
// input, dead cone or undriven net in a built-in is a bug in its
// generator. Info findings (fanout profile, legal DFF feedback as in
// the accumulators) are expected and allowed.
func TestLintRegistryClean(t *testing.T) {
	for _, name := range registry.Names() {
		t.Run(name, func(t *testing.T) {
			n, err := registry.Build(name)
			if err != nil {
				t.Fatalf("building %s: %v", name, err)
			}
			fs := n.Lint()
			if netlist.HasWarnings(fs) {
				for _, f := range fs {
					if f.Severity == netlist.SeverityWarning {
						t.Errorf("%s: %v", name, f)
					}
				}
			}
		})
	}
}
