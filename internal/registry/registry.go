// Package registry names the built-in benchmark circuits, so the CLI
// and the HTTP service resolve the same circuit identifiers to the same
// generators. Builders return a fresh netlist per call; the Engine's
// fingerprint-keyed cache makes repeated builds of the same circuit
// share one compiled form.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// builders maps circuit names to generators.
var builders = map[string]func() *netlist.Netlist{
	"rca4":      func() *netlist.Netlist { return circuits.NewRCA(4, circuits.Cells) },
	"rca8":      func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) },
	"rca16":     func() *netlist.Netlist { return circuits.NewRCA(16, circuits.Cells) },
	"rca16g":    func() *netlist.Netlist { return circuits.NewRCA(16, circuits.Gates) },
	"array8":    func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) },
	"array16":   func() *netlist.Netlist { return circuits.NewArrayMultiplier(16, circuits.Cells) },
	"wallace8":  func() *netlist.Netlist { return circuits.NewWallaceMultiplier(8, circuits.Cells) },
	"wallace16": func() *netlist.Netlist { return circuits.NewWallaceMultiplier(16, circuits.Cells) },
	"dirdet8": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	},
	"dirdet8r": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells, RegisterInputs: true})
	},
	"dirdet8g": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Gates})
	},
	"booth8":  func() *netlist.Netlist { return circuits.NewBoothMultiplier(8, circuits.Cells) },
	"booth16": func() *netlist.Netlist { return circuits.NewBoothMultiplier(16, circuits.Cells) },
	"cskip16": func() *netlist.Netlist { return circuits.NewCarrySkip(16, 4, circuits.Gates) },
	"cla16":   func() *netlist.Netlist { return circuits.NewCLA(16) },
	"csel16":  func() *netlist.Netlist { return circuits.NewCarrySelect(16, 4, circuits.Gates) },
	"hazard":  buildHazard,

	// Sequential subjects: a pipelined 8×8 array multiplier (register
	// bank every two adder rows), a 16-bit accumulator and its
	// clock-gated variant.
	"pipemult8": func() *netlist.Netlist { return circuits.NewPipelinedMultiplier(8, 2, circuits.Cells) },
	"accum16":   func() *netlist.Netlist { return circuits.NewAccumulator(16, false) },
	"accum16cg": func() *netlist.Netlist { return circuits.NewAccumulator(16, true) },
}

// buildHazard is the two-gate static-hazard demonstrator (a AND NOT a),
// the classic single-glitch circuit for waveform dumps.
func buildHazard() *netlist.Netlist {
	b := netlist.NewBuilder("hazard")
	a := b.Input("a")
	out := b.And(a, b.Not(a))
	b.Output("out", out)
	return b.MustBuild()
}

// Names returns the sorted circuit names.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NameList returns the circuit names as one comma-separated string, for
// flag help text and error messages.
func NameList() string { return strings.Join(Names(), ", ") }

// Build returns a fresh netlist for the named circuit.
func Build(name string) (*netlist.Netlist, error) {
	f, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("unknown circuit %q (available: %s)", name, NameList())
	}
	return f(), nil
}

// DelayModel resolves the (dsum, dcarry, typical) delay parameters the
// CLI flags and service requests share: the heterogeneous typical model,
// a full-adder sum/carry ratio, a uniform delay, or unit delay.
func DelayModel(dsum, dcarry int, typical bool) delay.Model {
	if typical {
		return delay.Typical()
	}
	if dsum != dcarry {
		return delay.FullAdderRatio(dsum, dcarry)
	}
	if dsum != 1 {
		return delay.Uniform(dsum)
	}
	return delay.Unit()
}
