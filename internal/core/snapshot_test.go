package core

import (
	"encoding/json"
	"errors"
	"testing"

	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// snapNetlist builds a small circuit with two internal nets to monitor.
func snapNetlist(t *testing.T) (*netlist.Netlist, netlist.NetID, netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("snapshot-test")
	x := b.Input("x")
	y := b.Not(x)
	z := b.Not(y)
	b.Output("z", z)
	return b.MustBuild(), y, z
}

// TestCheckpointRoundTrip pins the serialization contract of counter
// checkpointing: a snapshot marshalled through JSON and restored into a
// fresh counter reproduces every statistic exactly, and a counter that
// keeps counting after the restore stays bit-identical to the original
// counting straight through.
func TestCheckpointRoundTrip(t *testing.T) {
	nl, y, z := snapNetlist(t)
	orig := NewCounter(nl)
	feed(orig, y, []int{3, 2, 0, 7})
	feed(orig, z, []int{1, 4})

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded CounterSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored := NewCounter(nl)
	if err := restored.Restore(&decoded); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Cycles() != orig.Cycles() {
		t.Fatalf("restored cycles = %d, want %d", restored.Cycles(), orig.Cycles())
	}
	for net := 0; net < nl.NumNets(); net++ {
		id := netlist.NetID(net)
		if got, want := restored.Stats(id), orig.Stats(id); got != want {
			t.Fatalf("restored stats[%d] = %+v, want %+v", net, got, want)
		}
	}

	// Counting on after the restore must equal counting straight through.
	feed(orig, y, []int{2, 5})
	feed(restored, y, []int{2, 5})
	if restored.Totals() != orig.Totals() {
		t.Fatalf("post-restore totals = %+v, want %+v", restored.Totals(), orig.Totals())
	}
	if restored.Cycles() != orig.Cycles() {
		t.Fatalf("post-restore cycles = %d, want %d", restored.Cycles(), orig.Cycles())
	}
}

// TestCheckpointRoundTripWide covers the WideCounter flavour: snapshot
// at a cycle boundary, restore into a fresh wide counter, identical fold.
func TestCheckpointRoundTripWide(t *testing.T) {
	nl, net := twoNetNetlist(t)
	orig := NewWideCounter(nl)
	orig.SetLaneMask(0b0111)
	for cy := 0; cy < 3; cy++ {
		for i := 0; i < 2+cy; i++ {
			orig.OnWideChanges(cy, i, []sim.WideChange{change(net, 0b1111, i%2 == 0)})
		}
		orig.OnCycleEnd(cy)
	}

	snap, err := orig.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded CounterSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored := NewWideCounter(nl)
	restored.SetLaneMask(0b0111)
	if err := restored.Restore(&decoded); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	// Continue both and compare the folds.
	for _, c := range []*WideCounter{orig, restored} {
		c.OnWideChanges(3, 0, []sim.WideChange{change(net, 0b0101, true)})
		c.OnCycleEnd(3)
	}
	of, rf := orig.Counter(), restored.Counter()
	if of.Totals() != rf.Totals() || of.Cycles() != rf.Cycles() {
		t.Fatalf("restored wide fold = %+v (%d cycles), want %+v (%d cycles)",
			rf.Totals(), rf.Cycles(), of.Totals(), of.Cycles())
	}
}

// TestSnapshotRejectsCorruption: every way a snapshot can lie —
// version skew, wrong circuit, impossible statistics, out-of-range
// nets — must be rejected with ErrBadSnapshot and leave the counter
// untouched.
func TestSnapshotRejectsCorruption(t *testing.T) {
	nl, y, _ := snapNetlist(t)
	base := func() *CounterSnapshot {
		c := NewCounter(nl)
		feed(c, y, []int{3, 2})
		s, err := c.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return s
	}
	cases := []struct {
		name    string
		corrupt func(s *CounterSnapshot)
	}{
		{"version skew", func(s *CounterSnapshot) { s.Version = SnapshotVersion + 1 }},
		{"wrong fingerprint", func(s *CounterSnapshot) { s.Fingerprint = "deadbeef" }},
		{"negative cycles", func(s *CounterSnapshot) { s.Cycles = -1 }},
		{"monitored out of range", func(s *CounterSnapshot) { s.Monitored = append(s.Monitored, nl.NumNets()) }},
		{"net out of range", func(s *CounterSnapshot) { s.Stats[0].Net = -3 }},
		{"sum rule broken", func(s *CounterSnapshot) { s.Stats[0].Transitions++ }},
		{"odd useless", func(s *CounterSnapshot) { s.Stats[0].Useless++; s.Stats[0].Useful-- }},
		{"glitch parity broken", func(s *CounterSnapshot) { s.Stats[0].Glitches++ }},
		{"rising over transitions", func(s *CounterSnapshot) { s.Stats[0].Rising = s.Stats[0].Transitions + 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base()
			tc.corrupt(s)
			target := NewCounter(nl)
			feed(target, y, []int{1})
			before, beforeCycles := target.Totals(), target.Cycles()
			err := target.Restore(s)
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("Restore(%s) = %v, want ErrBadSnapshot", tc.name, err)
			}
			if target.Totals() != before || target.Cycles() != beforeCycles {
				t.Fatalf("failed restore mutated the counter: %+v/%d, want %+v/%d",
					target.Totals(), target.Cycles(), before, beforeCycles)
			}
		})
	}
}

// TestSnapshotRefusesMidCycle: a checkpoint only exists at cycle
// boundaries; partial per-cycle parity state cannot be serialized.
func TestSnapshotRefusesMidCycle(t *testing.T) {
	nl, y, _ := snapNetlist(t)
	c := NewCounter(nl)
	feed(c, y, []int{2})
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatalf("boundary Snapshot: %v", err)
	}
	c.OnChange(y, 1, 1, logic.L0, logic.L1) // mid-cycle: no OnCycleEnd yet
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("mid-cycle Snapshot succeeded, want refusal")
	}
	if err := c.Restore(snap); err == nil {
		t.Fatal("mid-cycle Restore succeeded, want refusal")
	}

	w := NewWideCounter(nl)
	wsnap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("wide boundary Snapshot: %v", err)
	}
	w.OnWideChanges(0, 0, []sim.WideChange{change(y, 1, true)})
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("mid-cycle wide Snapshot succeeded, want refusal")
	}
	if err := w.Restore(wsnap); err == nil {
		t.Fatal("mid-cycle wide Restore succeeded, want refusal")
	}
}
