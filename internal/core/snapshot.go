package core

// Counter snapshot/restore: the serialization layer of measurement
// checkpointing. A snapshot captures the accumulated classified
// statistics at a cycle boundary — never mid-cycle, where per-cycle
// parity state would make the numbers meaningless — tagged with a
// format version and the netlist fingerprint so a restore onto the
// wrong circuit (or a torn/corrupt payload) is rejected instead of
// silently producing garbage statistics.
//
// Restore re-derives nothing: the parity rule's per-cycle state is
// empty at a boundary, so the accumulated NetStats plus the cycle
// count ARE the counter. That is what makes interrupted+resumed runs
// bit-identical to uninterrupted ones.

import (
	"errors"
	"fmt"
)

// SnapshotVersion is the counter snapshot format version. Restore
// rejects snapshots written by any other version.
const SnapshotVersion = 1

// ErrBadSnapshot is wrapped by every snapshot validation failure:
// version skew, fingerprint mismatch, out-of-range nets, or statistics
// that violate the parity-rule invariants (a corruption tell).
var ErrBadSnapshot = errors.New("core: invalid counter snapshot")

// NetStatsEntry is one net's accumulated statistics in snapshot form.
// Only nets with activity are recorded; the short JSON keys keep large
// circuits' checkpoint payloads compact.
type NetStatsEntry struct {
	Net         int    `json:"net"`
	Transitions uint64 `json:"t"`
	Useful      uint64 `json:"f"`
	Useless     uint64 `json:"l"`
	Glitches    uint64 `json:"g"`
	Rising      uint64 `json:"r"`
	MaxPerCycle uint32 `json:"m"`
}

// CounterSnapshot is the versioned, fingerprint-tagged serialization of
// a Counter or WideCounter at a cycle boundary. It is plain data —
// encoding/json round-trips it exactly (all fields are integers or
// strings, so no float precision is involved).
type CounterSnapshot struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Cycles is the classified cycle count (lane-cycles for a
	// WideCounter, matching Counter.Cycles after the fold).
	Cycles int `json:"cycles"`
	// Monitored lists the monitored net IDs, ascending.
	Monitored []int `json:"monitored"`
	// Stats holds the per-net statistics of every net with activity,
	// ascending by net.
	Stats []NetStatsEntry `json:"stats"`
}

// snapshotOf builds the snapshot shared by both counter flavours.
func snapshotOf(fp string, cycles int, include []bool, stats []NetStats) *CounterSnapshot {
	s := &CounterSnapshot{Version: SnapshotVersion, Fingerprint: fp, Cycles: cycles}
	for i, in := range include {
		if in {
			s.Monitored = append(s.Monitored, i)
		}
	}
	for i := range stats {
		st := &stats[i]
		if *st == (NetStats{}) {
			continue
		}
		s.Stats = append(s.Stats, NetStatsEntry{
			Net:         i,
			Transitions: st.Transitions,
			Useful:      st.Useful,
			Useless:     st.Useless,
			Glitches:    st.Glitches,
			Rising:      st.Rising,
			MaxPerCycle: st.MaxPerCycle,
		})
	}
	return s
}

// validate checks a snapshot against the restoring counter's netlist
// (fingerprint and net count) and the parity-rule invariants every
// honestly accumulated counter satisfies: Useful+Useless == Transitions,
// Useless is even (each cycle contributes an even useless count), and
// Glitches == Useless/2. A snapshot failing any of these was corrupted
// or hand-forged, not written by Snapshot.
func (s *CounterSnapshot) validate(fp string, numNets int) error {
	if s == nil {
		return fmt.Errorf("%w: nil snapshot", ErrBadSnapshot)
	}
	if s.Version != SnapshotVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadSnapshot, s.Version, SnapshotVersion)
	}
	if s.Fingerprint != fp {
		return fmt.Errorf("%w: fingerprint %s does not match netlist %s", ErrBadSnapshot, s.Fingerprint, fp)
	}
	if s.Cycles < 0 {
		return fmt.Errorf("%w: negative cycle count %d", ErrBadSnapshot, s.Cycles)
	}
	for _, id := range s.Monitored {
		if id < 0 || id >= numNets {
			return fmt.Errorf("%w: monitored net %d outside [0, %d)", ErrBadSnapshot, id, numNets)
		}
	}
	for i := range s.Stats {
		e := &s.Stats[i]
		if e.Net < 0 || e.Net >= numNets {
			return fmt.Errorf("%w: net %d outside [0, %d)", ErrBadSnapshot, e.Net, numNets)
		}
		if e.Useful+e.Useless != e.Transitions {
			return fmt.Errorf("%w: net %d has useful %d + useless %d != transitions %d",
				ErrBadSnapshot, e.Net, e.Useful, e.Useless, e.Transitions)
		}
		if e.Useless%2 != 0 {
			return fmt.Errorf("%w: net %d has odd useless count %d", ErrBadSnapshot, e.Net, e.Useless)
		}
		if e.Glitches != e.Useless/2 {
			return fmt.Errorf("%w: net %d has %d glitches, parity rule requires %d",
				ErrBadSnapshot, e.Net, e.Glitches, e.Useless/2)
		}
		if e.Rising > e.Transitions {
			return fmt.Errorf("%w: net %d has %d rising > %d transitions",
				ErrBadSnapshot, e.Net, e.Rising, e.Transitions)
		}
	}
	return nil
}

// restoreInto writes a validated snapshot's contents into a counter's
// include/stats arrays (pre-zeroed by the caller's constructor).
func (s *CounterSnapshot) restoreInto(include []bool, stats []NetStats) {
	for i := range include {
		include[i] = false
	}
	for _, id := range s.Monitored {
		include[id] = true
	}
	for i := range stats {
		stats[i] = NetStats{}
	}
	for i := range s.Stats {
		e := &s.Stats[i]
		stats[e.Net] = NetStats{
			Transitions: e.Transitions,
			Useful:      e.Useful,
			Useless:     e.Useless,
			Glitches:    e.Glitches,
			Rising:      e.Rising,
			MaxPerCycle: e.MaxPerCycle,
		}
	}
}

// Snapshot serializes the counter's accumulated statistics. It fails if
// the counter is mid-cycle (transitions recorded since the last
// OnCycleEnd): a consistent checkpoint exists only at cycle boundaries.
func (c *Counter) Snapshot() (*CounterSnapshot, error) {
	if len(c.dirty) > 0 {
		return nil, fmt.Errorf("core: cannot snapshot a counter mid-cycle (%d nets with partial counts)", len(c.dirty))
	}
	return snapshotOf(c.n.Fingerprint(), c.cycles, c.include, c.stats), nil
}

// Restore overwrites the counter's accumulated statistics and monitored
// set with a snapshot's, after validating it against the counter's
// netlist. On error the counter is left unchanged.
func (c *Counter) Restore(s *CounterSnapshot) error {
	if err := s.validate(c.n.Fingerprint(), c.n.NumNets()); err != nil {
		return err
	}
	if len(c.dirty) > 0 {
		return fmt.Errorf("core: cannot restore into a counter mid-cycle (%d nets with partial counts)", len(c.dirty))
	}
	s.restoreInto(c.include, c.stats)
	c.cycles = s.Cycles
	return nil
}

// Snapshot serializes the wide counter's accumulated lane-summed
// statistics, exactly as Counter.Snapshot would serialize the folded
// Counter. It fails mid-cycle.
func (c *WideCounter) Snapshot() (*CounterSnapshot, error) {
	if len(c.dirty) > 0 {
		return nil, fmt.Errorf("core: cannot snapshot a wide counter mid-cycle (%d nets with partial counts)", len(c.dirty))
	}
	return snapshotOf(c.n.Fingerprint(), c.cycles, c.include, c.stats), nil
}

// Restore overwrites the wide counter's accumulated statistics and
// monitored set with a snapshot's, after validating it against the
// counter's netlist. The lane mask is untouched. On error the counter
// is left unchanged.
func (c *WideCounter) Restore(s *CounterSnapshot) error {
	if err := s.validate(c.n.Fingerprint(), c.n.NumNets()); err != nil {
		return err
	}
	if len(c.dirty) > 0 {
		return fmt.Errorf("core: cannot restore into a wide counter mid-cycle (%d nets with partial counts)", len(c.dirty))
	}
	s.restoreInto(c.include, c.stats)
	c.cycles = s.Cycles
	return nil
}
