package core

import (
	"testing"

	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// twoNetNetlist builds a minimal circuit (in -> not -> out) so the
// counter has an internal net (id of the not output) to monitor.
func twoNetNetlist(t *testing.T) (*netlist.Netlist, netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("wide-counter-test")
	in := b.Input("a")
	out := b.Not(in)
	b.Output("out", out)
	nl := b.MustBuild()
	return nl, out
}

// change builds a WideChange flipping `net` between 0 and 1 on the given
// lanes (rising when rise is true), with all other lanes steady at 0.
func change(net netlist.NetID, lanes uint64, rise bool) sim.WideChange {
	allZero := logic.SplatW(logic.L0)
	lanesOne := logic.W{Zero: ^lanes, One: lanes}
	if rise {
		return sim.WideChange{Net: net, Old: allZero, New: lanesOne}
	}
	return sim.WideChange{Net: net, Old: lanesOne, New: allZero}
}

// TestWideCounterPlaneGrowth: more transitions per lane per cycle than
// the initial bit-plane stack can count must grow the stack, keep exact
// totals, and report the right MaxPerCycle.
func TestWideCounterPlaneGrowth(t *testing.T) {
	nl, net := twoNetNetlist(t)
	c := NewWideCounter(nl)
	const flips = 37 // > 2^initialPlanes - 1
	for i := 0; i < flips; i++ {
		c.OnWideChanges(0, i, []sim.WideChange{change(net, 1|1<<7, i%2 == 0)})
	}
	c.OnCycleEnd(0)
	st := c.Stats(net)
	if st.Transitions != 2*flips {
		t.Errorf("transitions = %d, want %d", st.Transitions, 2*flips)
	}
	// 37 flips per lane: odd count, so one useful per lane.
	if st.Useful != 2 || st.Useless != 2*(flips-1) {
		t.Errorf("useful/useless = %d/%d, want 2/%d", st.Useful, st.Useless, 2*(flips-1))
	}
	if st.Glitches != 2*(flips/2) {
		t.Errorf("glitches = %d, want %d", st.Glitches, 2*(flips/2))
	}
	if st.MaxPerCycle != flips {
		t.Errorf("MaxPerCycle = %d, want %d", st.MaxPerCycle, flips)
	}
	// 19 of the 37 flips were rising (i even).
	if st.Rising != 2*19 {
		t.Errorf("rising = %d, want 38", st.Rising)
	}
}

// TestWideCounterLaneMask: masked-out lanes contribute nothing — not to
// totals, not to MaxPerCycle, not to the cycle tally.
func TestWideCounterLaneMask(t *testing.T) {
	nl, net := twoNetNetlist(t)
	c := NewWideCounter(nl)
	c.SetLaneMask(0b0011)
	// Lanes 0-3 transition; only 0 and 1 are active.
	c.OnWideChanges(0, 0, []sim.WideChange{change(net, 0b1111, true)})
	c.OnCycleEnd(0)
	st := c.Stats(net)
	if st.Transitions != 2 || st.Rising != 2 || st.Useful != 2 || st.MaxPerCycle != 1 {
		t.Errorf("masked stats = %+v, want 2 transitions/rising/useful", st)
	}
	if c.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2 (active lanes)", c.Cycles())
	}
	// Transitions entirely outside the mask leave the counter untouched.
	c.OnWideChanges(1, 0, []sim.WideChange{change(net, 0b1100, false)})
	c.OnCycleEnd(1)
	if got := c.Stats(net); got.Transitions != 2 {
		t.Errorf("masked-out lanes counted: %+v", got)
	}
}

// TestWideCounterXTransitionsIgnored: changes from or to X are not
// counted, matching the scalar Counter.
func TestWideCounterXTransitionsIgnored(t *testing.T) {
	nl, net := twoNetNetlist(t)
	c := NewWideCounter(nl)
	c.OnWideChanges(0, 0, []sim.WideChange{{
		Net: net,
		Old: logic.SplatW(logic.X),
		New: logic.SplatW(logic.L1),
	}})
	c.OnCycleEnd(0)
	if st := c.Stats(net); st.Transitions != 0 {
		t.Errorf("X->1 counted: %+v", st)
	}
}

// TestWideCounterResetAndFold: Reset clears mid-cycle state and
// statistics; Counter() folds into an ordinary Counter with matching
// totals and cycle count, and the fold is a copy.
func TestWideCounterResetAndFold(t *testing.T) {
	nl, net := twoNetNetlist(t)
	c := NewWideCounter(nl)
	c.OnWideChanges(0, 0, []sim.WideChange{change(net, ^uint64(0), true)})
	c.Reset() // mid-cycle: pending per-cycle state must vanish
	c.OnWideChanges(0, 0, []sim.WideChange{change(net, 1, true)})
	c.OnCycleEnd(0)
	folded := c.Counter()
	if folded.Cycles() != 64 || folded.Stats(net).Transitions != 1 {
		t.Errorf("folded: cycles=%d stats=%+v", folded.Cycles(), folded.Stats(net))
	}
	if folded.Totals() != c.stats[net] {
		// Only `net` is monitored and active, so totals equal its stats.
		t.Errorf("fold totals %+v != wide stats %+v", folded.Totals(), c.stats[net])
	}
	c.OnWideChanges(1, 0, []sim.WideChange{change(net, 1, false)})
	c.OnCycleEnd(1)
	if folded.Stats(net).Transitions != 1 {
		t.Error("fold aliases the live WideCounter")
	}
}
