package core

import (
	"strings"
	"testing"
	"testing/quick"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// feed drives the counter directly with a synthetic per-cycle transition
// pattern on one net, alternating values starting from 0.
func feed(c *Counter, net netlist.NetID, perCycle []int) {
	for cy, n := range perCycle {
		v := logic.L0
		for i := 0; i < n; i++ {
			old := v
			if v == logic.L0 {
				v = logic.L1
			} else {
				v = logic.L0
			}
			c.OnChange(net, cy, i+1, old, v)
		}
		c.OnCycleEnd(cy)
	}
}

func oneNetCounter(t *testing.T) (*Counter, netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("n")
	x := b.Input("x")
	y := b.Not(x)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return NewCounter(n), y
}

func TestParityClassification(t *testing.T) {
	cases := []struct {
		perCycle              []int
		useful, useless, glit uint64
	}{
		{[]int{1}, 1, 0, 0},       // single useful transition
		{[]int{2}, 0, 2, 1},       // one glitch
		{[]int{3}, 1, 2, 1},       // useful + glitch (paper Fig 4, signal 3)
		{[]int{4}, 0, 4, 2},       // two glitches
		{[]int{0, 5}, 1, 4, 2},    // idle cycle then 5 transitions
		{[]int{1, 1, 1}, 3, 0, 0}, // steady useful activity
		{[]int{2, 2}, 0, 4, 2},    // pure glitching
		{[]int{7, 2, 1}, 2, 8, 4}, // mixed
	}
	for _, tc := range cases {
		c, net := oneNetCounter(t)
		feed(c, net, tc.perCycle)
		st := c.Stats(net)
		if st.Useful != tc.useful || st.Useless != tc.useless || st.Glitches != tc.glit {
			t.Errorf("pattern %v: got F=%d L=%d G=%d, want F=%d L=%d G=%d",
				tc.perCycle, st.Useful, st.Useless, st.Glitches, tc.useful, tc.useless, tc.glit)
		}
	}
}

func TestParityRuleProperty(t *testing.T) {
	// For any per-cycle counts: F+L = total, F = number of odd cycles,
	// G = sum of floor(n/2).
	f := func(raw []uint8) bool {
		perCycle := make([]int, len(raw))
		var wantF, wantL, wantG, wantT uint64
		for i, r := range raw {
			n := int(r % 10)
			perCycle[i] = n
			wantT += uint64(n)
			if n%2 == 1 {
				wantF++
				wantL += uint64(n - 1)
			} else {
				wantL += uint64(n)
			}
			wantG += uint64(n / 2)
		}
		b := netlist.NewBuilder("p")
		x := b.Input("x")
		y := b.Not(x)
		b.Output("y", y)
		n, err := b.Build()
		if err != nil {
			return false
		}
		c := NewCounter(n)
		feed(c, y, perCycle)
		st := c.Stats(y)
		return st.Transitions == wantT && st.Useful == wantF &&
			st.Useless == wantL && st.Glitches == wantG &&
			st.Useful+st.Useless == st.Transitions
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRisingCounts(t *testing.T) {
	c, net := oneNetCounter(t)
	// 0->1->0->1: 2 rising of 3 transitions.
	feed(c, net, []int{3})
	st := c.Stats(net)
	if st.Rising != 2 {
		t.Errorf("rising = %d, want 2", st.Rising)
	}
	if st.Transitions != 3 {
		t.Errorf("transitions = %d, want 3", st.Transitions)
	}
}

func TestXTransitionsIgnored(t *testing.T) {
	c, net := oneNetCounter(t)
	c.OnChange(net, 0, 1, logic.X, logic.L1)
	c.OnCycleEnd(0)
	if st := c.Stats(net); st.Transitions != 0 {
		t.Errorf("X transition counted: %+v", st)
	}
}

func TestPrimaryInputsExcluded(t *testing.T) {
	b := netlist.NewBuilder("pi")
	x := b.Input("x")
	y := b.Buf(x)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(n)
	c.OnChange(x, 0, 0, logic.L0, logic.L1) // PI change must be ignored
	c.OnChange(y, 0, 1, logic.L0, logic.L1)
	c.OnCycleEnd(0)
	if tot := c.Totals(); tot.Transitions != 1 {
		t.Errorf("total = %d, want 1 (PI excluded)", tot.Transitions)
	}
}

func TestResetAndCycles(t *testing.T) {
	c, net := oneNetCounter(t)
	feed(c, net, []int{3, 2})
	if c.Cycles() != 2 {
		t.Fatalf("cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 || c.Totals().Transitions != 0 {
		t.Error("reset did not clear")
	}
	// Mid-cycle reset discards partial counts.
	c.OnChange(net, 0, 1, logic.L0, logic.L1)
	c.Reset()
	c.OnCycleEnd(0)
	if c.Totals().Transitions != 0 {
		t.Error("mid-cycle reset leaked counts")
	}
}

func TestMaxPerCycle(t *testing.T) {
	c, net := oneNetCounter(t)
	feed(c, net, []int{1, 4, 2})
	if st := c.Stats(net); st.MaxPerCycle != 4 {
		t.Errorf("MaxPerCycle = %d, want 4", st.MaxPerCycle)
	}
}

func TestUselessOverUseful(t *testing.T) {
	s := NetStats{Useful: 4, Useless: 6}
	if got := s.UselessOverUseful(); got != 1.5 {
		t.Errorf("L/F = %v, want 1.5", got)
	}
	if (NetStats{}).UselessOverUseful() != 0 {
		t.Error("empty stats should give 0")
	}
}

func TestReportAndBalanceLimit(t *testing.T) {
	c, net := oneNetCounter(t)
	feed(c, net, []int{5, 1}) // F=2, L=4
	r := c.Report()
	if r.Cycles != 2 || r.Total.Useful != 2 || r.Total.Useless != 4 {
		t.Fatalf("report totals wrong: %+v", r.Total)
	}
	if got := r.BalanceLimitFactor(); got != 3 {
		t.Errorf("balance limit = %v, want 1+4/2 = 3", got)
	}
	if len(r.PerNet) != 1 || r.PerNet[0].Net != "n0" {
		t.Errorf("per-net report wrong: %+v", r.PerNet)
	}
	if !strings.Contains(r.String(), "L/F=2.00") {
		t.Errorf("String() = %q", r.String())
	}
	empty := Report{}
	if empty.BalanceLimitFactor() != 1 {
		t.Error("empty report balance limit should be 1")
	}
}

func TestEndToEndWithSimulator(t *testing.T) {
	// The hazard circuit AND(a, NOT a): every rising edge of a produces
	// exactly one glitch (2 useless transitions) on the output and one
	// useful+0 useless on the inverter output.
	b := netlist.NewBuilder("hazard")
	a := b.Input("a")
	na := b.Not(a)
	out := b.And(a, na)
	b.Output("out", out)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(n, sim.Options{Delay: delay.Unit()})
	c := NewCounter(n)
	s.AttachMonitor(c)

	// 10 rising edges (a: 0,1,0,1,...) over 20 cycles.
	for i := 0; i < 20; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// First cycle is X->0 settling; 10 rising edges a=1 at odd cycles.
	outStats := c.Stats(out)
	if outStats.Useful != 0 {
		t.Errorf("hazard out useful = %d, want 0", outStats.Useful)
	}
	if outStats.Glitches != 10 {
		t.Errorf("hazard out glitches = %d, want 10", outStats.Glitches)
	}
	naStats := c.Stats(na)
	if naStats.Useless != 0 || naStats.Useful < 19 {
		t.Errorf("inverter stats wrong: %+v", naStats)
	}
	if tot := c.Totals(); tot.Transitions != outStats.Transitions+naStats.Transitions {
		t.Error("totals do not add up")
	}
}

func TestInvariantUsefulPlusUselessEqualsTotal(t *testing.T) {
	// Random simulation of a small adder: invariant must hold per net.
	b := netlist.NewBuilder("rca4")
	av := b.InputBus("a", 4)
	bv := b.InputBus("b", 4)
	carry := b.Const(0)
	var sums []netlist.NetID
	for i := 0; i < 4; i++ {
		var s netlist.NetID
		s, carry = b.FullAdder(av[i], bv[i], carry)
		sums = append(sums, s)
	}
	b.OutputBus("s", sums)
	b.Output("cout", carry)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(n, sim.Options{})
	c := NewCounter(n)
	s.AttachMonitor(c)
	src := stimulus.NewRandom(8, 42)
	for i := 0; i < 500; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range n.InternalNets() {
		st := c.Stats(id)
		if st.Useful+st.Useless != st.Transitions {
			t.Fatalf("net %s: F+L=%d+%d != T=%d", n.Net(id).Name, st.Useful, st.Useless, st.Transitions)
		}
		if st.Useful > uint64(c.Cycles()) {
			t.Fatalf("net %s: useful %d exceeds cycle count %d", n.Net(id).Name, st.Useful, c.Cycles())
		}
		if st.Rising > st.Transitions {
			t.Fatalf("net %s: rising exceeds total", n.Net(id).Name)
		}
	}
}

func TestBusTotalsAndBitStats(t *testing.T) {
	b := netlist.NewBuilder("bus")
	x := b.InputBus("x", 2)
	o := []netlist.NetID{b.Not(x[0]), b.Not(x[1])}
	b.OutputBus("o", o)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(n, sim.Options{})
	c := NewCounter(n)
	s.AttachMonitor(c)
	for i := 0; i < 8; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i)), logic.FromBit(uint64(i / 2))}); err != nil {
			t.Fatal(err)
		}
	}
	bits := c.BusBitStats("o")
	if len(bits) != 2 {
		t.Fatal("bit stats length")
	}
	if bits[0].Transitions <= bits[1].Transitions {
		t.Errorf("bit0 toggles every cycle, bit1 every other: %d vs %d",
			bits[0].Transitions, bits[1].Transitions)
	}
	bt := c.BusTotals("o")
	if bt.Transitions != bits[0].Transitions+bits[1].Transitions {
		t.Error("bus totals mismatch")
	}
	if c.BusTotals("nope").Transitions != 0 {
		t.Error("unknown bus should be zero")
	}
}
