package core

// WideCounter: transition counting with parity evaluation for the
// word-parallel kernel. Where Counter tallies one lane, WideCounter
// classifies all 64 lanes of a sim.WideSimulator at once and produces
// statistics bit-identical to 64 scalar Counters merged in lane order.
//
// Per wavefront, the lanes that made a counted (known→known) transition
// on a net form one 64-bit mask: XOR of the packed old/new values ANDed
// with both known masks. Totals come from math/bits.OnesCount64 on that
// mask; per-lane per-cycle transition counts — the input to the paper's
// parity rule — are maintained as a small binary counter per net whose
// digits are 64-bit planes (plane p holds bit p of every lane's count),
// incremented by one ripple-carry step per mask. At cycle end the parity
// rule reads off the planes directly:
//
//   - lanes with an odd count = the set bits of plane 0, so the cycle's
//     useful total is one popcount;
//   - useless = transitions − useful, and glitches = useless/2, both
//     exact lane sums because Σ⌊n_l/2⌋ = (Σn_l − Σ(n_l mod 2))/2;
//   - the per-lane maximum (MaxPerCycle) falls out of a high-to-low
//     plane scan.
//
// A lane mask restricts counting to active lanes, letting a measurement
// retire lanes that have completed their cycle quota while the remaining
// lanes keep running.

import (
	"math/bits"

	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// initialPlanes is the number of count bit-planes allocated up front:
// enough for 2^4−1 transitions per net per lane per cycle; busier nets
// grow the plane stack on demand.
const initialPlanes = 4

// WideCounter is a sim.WideMonitor performing transition counting and
// parity evaluation over a chosen set of nets, for all lanes at once.
type WideCounter struct {
	n        *netlist.Netlist
	include  []bool
	stats    []NetStats
	laneMask uint64

	// Per-net activity within the current cycle: total and rising
	// transition counts summed over active lanes, plus the per-lane
	// binary counter in bit-plane form (planes[p][net] holds bit p of
	// every lane's count).
	curT    []uint32
	curRise []uint32
	planes  [][]uint64
	dirty   []netlist.NetID

	cycles int // classified lane-cycles (lanes × cycles, like merged Counters)
}

// NewWideCounter returns a WideCounter monitoring every internal net of
// the netlist, with all lanes active — the wide image of NewCounter.
func NewWideCounter(n *netlist.Netlist) *WideCounter {
	return NewWideCounterFor(n, n.InternalNets())
}

// NewWideCounterFor returns a WideCounter monitoring exactly the given
// nets.
func NewWideCounterFor(n *netlist.Netlist, nets []netlist.NetID) *WideCounter {
	c := &WideCounter{
		n:        n,
		include:  make([]bool, n.NumNets()),
		stats:    make([]NetStats, n.NumNets()),
		laneMask: ^uint64(0),
		curT:     make([]uint32, n.NumNets()),
		curRise:  make([]uint32, n.NumNets()),
		planes:   make([][]uint64, initialPlanes),
	}
	for p := range c.planes {
		c.planes[p] = make([]uint64, n.NumNets())
	}
	for _, id := range nets {
		c.include[id] = true
	}
	return c
}

// SetLaneMask restricts counting to the lanes whose bit is set. It may
// only change between cycles (after OnCycleEnd, before the next
// wavefront); transitions in masked-out lanes are ignored entirely.
func (c *WideCounter) SetLaneMask(mask uint64) { c.laneMask = mask }

// LaneMask returns the active-lane mask.
func (c *WideCounter) LaneMask() uint64 { return c.laneMask }

// OnWideChanges implements sim.WideMonitor: one call per wavefront, one
// ripple-carry increment per changed net. Transitions from or to X are
// not counted, matching the scalar Counter.
func (c *WideCounter) OnWideChanges(_, _ int, changes []sim.WideChange) {
	for i := range changes {
		ch := &changes[i]
		if !c.include[ch.Net] {
			continue
		}
		m := (ch.Old.Zero | ch.Old.One) & (ch.New.Zero | ch.New.One) &
			(ch.Old.One ^ ch.New.One) & c.laneMask
		if m == 0 {
			continue
		}
		net := ch.Net
		if c.curT[net] == 0 {
			c.dirty = append(c.dirty, net)
		}
		c.curT[net] += uint32(bits.OnesCount64(m))
		c.curRise[net] += uint32(bits.OnesCount64(m & ch.New.One))
		carry := m
		for p := 0; p < len(c.planes); p++ {
			row := c.planes[p]
			old := row[net]
			row[net] = old ^ carry
			carry &= old
			if carry == 0 {
				break
			}
		}
		if carry != 0 {
			// Some lane's count outgrew the plane stack: add a plane.
			c.planes = append(c.planes, make([]uint64, len(c.curT)))
			c.planes[len(c.planes)-1][net] = carry
		}
	}
}

// OnCycleEnd implements sim.WideMonitor: it classifies every dirty net's
// per-lane transition counts by the parity rule and clears the per-cycle
// state. The cycle tally advances by the number of active lanes, so
// Cycles reads like the sum of the per-lane runs.
func (c *WideCounter) OnCycleEnd(int) {
	for _, net := range c.dirty {
		t := uint64(c.curT[net])
		useful := uint64(bits.OnesCount64(c.planes[0][net]))
		st := &c.stats[net]
		st.Transitions += t
		st.Rising += uint64(c.curRise[net])
		st.Useful += useful
		st.Useless += t - useful
		st.Glitches += (t - useful) / 2
		if max := c.laneMaxCount(net); max > st.MaxPerCycle {
			st.MaxPerCycle = max
		}
		c.curT[net], c.curRise[net] = 0, 0
		for p := range c.planes {
			c.planes[p][net] = 0
		}
	}
	c.dirty = c.dirty[:0]
	c.cycles += bits.OnesCount64(c.laneMask)
}

// laneMaxCount returns the largest per-lane transition count of the
// current cycle for one net, read off the bit planes high to low: at
// each plane the candidate set narrows to the lanes that have that bit
// set, if any do.
func (c *WideCounter) laneMaxCount(net netlist.NetID) uint32 {
	cand := ^uint64(0)
	var max uint32
	for p := len(c.planes) - 1; p >= 0; p-- {
		if t := cand & c.planes[p][net]; t != 0 {
			cand = t
			max |= 1 << uint(p)
		}
	}
	return max
}

// Reset clears all accumulated statistics and any partial-cycle state
// (typically called after warm-up cycles).
func (c *WideCounter) Reset() {
	for i := range c.stats {
		c.stats[i] = NetStats{}
	}
	for _, net := range c.dirty {
		c.curT[net], c.curRise[net] = 0, 0
		for p := range c.planes {
			c.planes[p][net] = 0
		}
	}
	c.dirty = c.dirty[:0]
	c.cycles = 0
}

// Cycles returns the number of classified lane-cycles.
func (c *WideCounter) Cycles() int { return c.cycles }

// Netlist returns the netlist the counter was built for.
func (c *WideCounter) Netlist() *netlist.Netlist { return c.n }

// Stats returns the accumulated lane-summed statistics of one net.
func (c *WideCounter) Stats(net netlist.NetID) NetStats { return c.stats[net] }

// Counter converts the accumulated wide statistics into an ordinary
// Counter, indistinguishable from the merge of the per-lane scalar
// counters: per-net stats are the lane sums (MaxPerCycle the lane max)
// and Cycles is the lane-cycle total. The WideCounter remains usable;
// the returned Counter owns copies of the statistics.
func (c *WideCounter) Counter() *Counter {
	out := &Counter{
		n:       c.n,
		include: append([]bool(nil), c.include...),
		stats:   append([]NetStats(nil), c.stats...),
		cur:     make([]cycleCount, len(c.stats)),
		cycles:  c.cycles,
	}
	return out
}
