// Package core implements the paper's primary contribution: transition
// counting with parity evaluation, classifying every signal transition in
// a synchronous network as useful or useless and quantifying glitches.
//
// # Classification rule (paper §3.3)
//
// Within one clock cycle a signal's final value either differs from its
// previous settled value (it made one functionally required change) or it
// does not. Hence:
//
//  1. If a signal makes an odd number of transitions in a cycle, exactly
//     one of them is useful; the remaining n−1 are useless.
//  2. If it makes an even number of transitions, all n are useless.
//
// Two consecutive useless transitions constitute a glitch, so a signal
// making n transitions in a cycle contributes ⌊n/2⌋ glitches.
//
// The Counter below implements this rule as a sim.Monitor: it tallies
// per-net transitions during each cycle and classifies them when the
// cycle ends. Rising (0→1) transitions are tracked separately because
// only those draw charge from the supply (paper §2).
package core

import (
	"fmt"
	"sort"

	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

// NetStats accumulates classified activity for one net across all
// observed cycles.
type NetStats struct {
	// Transitions is the total number of 0↔1 changes.
	Transitions uint64
	// Useful is the number of functionally required transitions (at most
	// one per cycle, by the parity rule).
	Useful uint64
	// Useless is the number of glitching transitions
	// (Transitions = Useful + Useless).
	Useless uint64
	// Glitches counts pairs of consecutive useless transitions.
	Glitches uint64
	// Rising counts power-consuming (0→1) transitions.
	Rising uint64
	// MaxPerCycle is the largest transition count observed in any single
	// cycle (the paper's worst case analysis tracks this for S_{N-1}).
	MaxPerCycle uint32
}

func (s *NetStats) add(o NetStats) {
	s.Transitions += o.Transitions
	s.Useful += o.Useful
	s.Useless += o.Useless
	s.Glitches += o.Glitches
	s.Rising += o.Rising
	if o.MaxPerCycle > s.MaxPerCycle {
		s.MaxPerCycle = o.MaxPerCycle
	}
}

// UselessOverUseful returns the paper's L/F ratio for this net; it is 0
// when no useful transitions were observed.
func (s NetStats) UselessOverUseful() float64 {
	if s.Useful == 0 {
		return 0
	}
	return float64(s.Useless) / float64(s.Useful)
}

// Counter is a sim.Monitor that performs transition counting and parity
// evaluation over a chosen set of nets.
type Counter struct {
	n       *netlist.Netlist
	include []bool
	stats   []NetStats
	cur     []cycleCount // per-net activity so far this cycle
	dirty   []netlist.NetID
	cycles  int
}

// cycleCount is one net's activity within the current cycle; keeping the
// transition and rising counts adjacent halves the cache traffic of the
// per-transition hot path.
type cycleCount struct {
	n, rise uint32
}

// NewCounter returns a Counter monitoring every internal net of the
// netlist — "all internal signal nodes are monitored" (paper §4) —
// excluding primary inputs, whose single change per cycle is stimulus,
// not circuit activity.
func NewCounter(n *netlist.Netlist) *Counter {
	return NewCounterFor(n, n.InternalNets())
}

// NewCounterFor returns a Counter monitoring exactly the given nets.
func NewCounterFor(n *netlist.Netlist, nets []netlist.NetID) *Counter {
	c := &Counter{
		n:       n,
		include: make([]bool, n.NumNets()),
		stats:   make([]NetStats, n.NumNets()),
		cur:     make([]cycleCount, n.NumNets()),
	}
	for _, id := range nets {
		c.include[id] = true
	}
	return c
}

// OnChange implements sim.Monitor. Transitions from X (start-up) are not
// counted.
func (c *Counter) OnChange(net netlist.NetID, _, _ int, old, new logic.V) {
	if !c.include[net] || !old.Known() || !new.Known() {
		return
	}
	p := &c.cur[net]
	if p.n == 0 {
		c.dirty = append(c.dirty, net)
	}
	p.n++
	if new == logic.L1 {
		p.rise++
	}
}

// OnChangeBatch implements sim.BatchMonitor: one dispatch per time
// instant instead of one per transition.
func (c *Counter) OnChangeBatch(_, _ int, changes []sim.Change) {
	for i := range changes {
		ch := &changes[i]
		if !c.include[ch.Net] || !ch.Old.Known() || !ch.New.Known() {
			continue
		}
		p := &c.cur[ch.Net]
		if p.n == 0 {
			c.dirty = append(c.dirty, ch.Net)
		}
		p.n++
		if ch.New == logic.L1 {
			p.rise++
		}
	}
}

// OnCycleEnd implements sim.Monitor: it classifies the cycle's transition
// counts by the parity rule and clears the per-cycle state.
func (c *Counter) OnCycleEnd(int) {
	for _, net := range c.dirty {
		p := &c.cur[net]
		n := uint64(p.n)
		st := &c.stats[net]
		st.Transitions += n
		st.Rising += uint64(p.rise)
		if n%2 == 1 {
			st.Useful++
			st.Useless += n - 1
		} else {
			st.Useless += n
		}
		st.Glitches += n / 2
		if uint32(n) > st.MaxPerCycle {
			st.MaxPerCycle = uint32(n)
		}
		*p = cycleCount{}
	}
	c.dirty = c.dirty[:0]
	c.cycles++
}

// Merge folds the accumulated statistics of another counter into c:
// per-net statistics add (MaxPerCycle takes the maximum) and the cycle
// counts sum, so the aggregate reads like one long measurement. Both
// counters must be built over netlists with the same net count —
// typically the very same netlist, measured under different seeds or
// stimulus streams by the parallel batch layer. Merging a counter whose
// monitored net set differs is allowed; Totals keeps using c's own set.
// The other counter must be mid-cycle idle (no partial cycle state).
func (c *Counter) Merge(o *Counter) error {
	if len(c.stats) != len(o.stats) {
		return fmt.Errorf("core: cannot merge counters over %d and %d nets", len(c.stats), len(o.stats))
	}
	for i := range c.stats {
		c.stats[i].add(o.stats[i])
	}
	c.cycles += o.cycles
	return nil
}

// Reset clears all accumulated statistics (typically called after warm-up
// cycles so start-up activity does not pollute the measurement).
func (c *Counter) Reset() {
	for i := range c.stats {
		c.stats[i] = NetStats{}
	}
	for _, net := range c.dirty {
		c.cur[net] = cycleCount{}
	}
	c.dirty = c.dirty[:0]
	c.cycles = 0
}

// Cycles returns the number of classified cycles.
func (c *Counter) Cycles() int { return c.cycles }

// Netlist returns the netlist the counter was built for.
func (c *Counter) Netlist() *netlist.Netlist { return c.n }

// Stats returns the accumulated statistics of one net.
func (c *Counter) Stats(net netlist.NetID) NetStats { return c.stats[net] }

// Totals returns statistics summed over all monitored nets: the numbers
// the paper's Tables 1 and 2 report per circuit.
func (c *Counter) Totals() NetStats {
	var t NetStats
	for i := range c.stats {
		if c.include[i] {
			t.add(c.stats[i])
		}
	}
	return t
}

// BusTotals sums statistics over the nets of a named bus. It returns the
// zero value for unknown buses.
func (c *Counter) BusTotals(bus string) NetStats {
	var t NetStats
	for _, id := range c.n.Bus(bus) {
		if c.include[id] {
			t.add(c.stats[id])
		}
	}
	return t
}

// BusBitStats returns per-bit statistics of a named bus (LSB first),
// the shape of the paper's Figure 5.
func (c *Counter) BusBitStats(bus string) []NetStats {
	ids := c.n.Bus(bus)
	out := make([]NetStats, len(ids))
	for i, id := range ids {
		out[i] = c.stats[id]
	}
	return out
}

// Report is a self-contained summary of one activity measurement.
type Report struct {
	Circuit string
	Cycles  int
	Total   NetStats
	// PerNet lists per-net statistics for monitored nets that saw any
	// activity, sorted by descending useless count.
	PerNet []NetReport
}

// NetReport pairs a net name with its statistics.
type NetReport struct {
	Net   string
	Stats NetStats
}

// Report builds a Report snapshot.
func (c *Counter) Report() Report {
	r := Report{Circuit: c.n.Name, Cycles: c.cycles, Total: c.Totals()}
	for i := range c.stats {
		if c.include[i] && c.stats[i].Transitions > 0 {
			r.PerNet = append(r.PerNet, NetReport{Net: c.n.Nets[i].Name, Stats: c.stats[i]})
		}
	}
	sort.Slice(r.PerNet, func(a, b int) bool {
		if r.PerNet[a].Stats.Useless != r.PerNet[b].Stats.Useless {
			return r.PerNet[a].Stats.Useless > r.PerNet[b].Stats.Useless
		}
		return r.PerNet[a].Net < r.PerNet[b].Net
	})
	return r
}

// BalanceLimitFactor returns the paper's bound on achievable activity
// reduction: if all delay paths were perfectly balanced every useless
// transition would disappear, reducing combinational activity by
// (F+L)/F = 1 + L/F (the paper's §4.2 computes 1 + 3.8 = 4.8 for the
// direction detector).
func (r Report) BalanceLimitFactor() float64 {
	if r.Total.Useful == 0 {
		return 1
	}
	return 1 + r.Total.UselessOverUseful()
}

// String renders a compact single-circuit summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: %d cycles, %d transitions (%d useful, %d useless, L/F=%.2f, %d glitches, %d rising)",
		r.Circuit, r.Cycles, r.Total.Transitions, r.Total.Useful, r.Total.Useless,
		r.Total.UselessOverUseful(), r.Total.Glitches, r.Total.Rising)
}
