// Package testutil provides deterministic random netlist generation for
// property-based tests: the simulator, balancer, retimer and Verilog
// round-trip tests all exercise the same structurally random circuits.
package testutil

import (
	"fmt"

	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// RandConfig controls random netlist generation.
type RandConfig struct {
	// Inputs is the number of primary inputs (≥1).
	Inputs int
	// Gates is the number of cells to generate.
	Gates int
	// Outputs is the number of primary outputs to mark (drawn from the
	// last generated nets; capped at the available net count).
	Outputs int
	// WithDFFs mixes D flipflops into the cell selection (feedforward
	// pipelines only — no feedback loops are created).
	WithDFFs bool
	// WithCompound mixes FA/HA compound cells into the selection.
	WithCompound bool
	// ZeroPreservingOnly restricts the cell mix to cells that map
	// all-zero inputs to zero outputs (AND/OR/XOR/BUF/FA/HA), which
	// keeps retiming exactly equivalent from reset.
	ZeroPreservingOnly bool
}

// RandomNetlist builds a deterministic random feedforward netlist from
// the given PRNG. Every generated circuit is valid by construction.
func RandomNetlist(rng *stimulus.PRNG, cfg RandConfig) *netlist.Netlist {
	if cfg.Inputs < 1 {
		cfg.Inputs = 1
	}
	if cfg.Gates < 1 {
		cfg.Gates = 1
	}
	if cfg.Outputs < 1 {
		cfg.Outputs = 1
	}
	b := netlist.NewBuilder(fmt.Sprintf("rand%d", rng.Uintn(1<<30)))
	var nets []netlist.NetID
	for i := 0; i < cfg.Inputs; i++ {
		nets = append(nets, b.Input(fmt.Sprintf("in%d", i)))
	}

	types := []netlist.CellType{netlist.And, netlist.Or, netlist.Xor, netlist.Buf}
	if !cfg.ZeroPreservingOnly {
		types = append(types, netlist.Not, netlist.Nand, netlist.Nor,
			netlist.Xnor, netlist.Mux2, netlist.Maj3)
	}
	if cfg.WithCompound {
		types = append(types, netlist.FA, netlist.HA)
	}
	if cfg.WithDFFs {
		types = append(types, netlist.DFF, netlist.DFF) // double weight
	}

	pick := func() netlist.NetID { return nets[rng.Uintn(uint64(len(nets)))] }
	for i := 0; i < cfg.Gates; i++ {
		t := types[rng.Uintn(uint64(len(types)))]
		min, max := t.InputRange()
		arity := min
		if max < 0 {
			arity = min + int(rng.Uintn(3)) // variadic gates: 2..4 inputs
		}
		ins := make([]netlist.NetID, arity)
		for j := range ins {
			ins[j] = pick()
		}
		outs := b.AddCell(t, "", ins...)
		nets = append(nets, outs...)
	}

	// Mark outputs from the most recently created nets (deep cone).
	count := cfg.Outputs
	if count > len(nets) {
		count = len(nets)
	}
	for i := 0; i < count; i++ {
		b.Output(fmt.Sprintf("out%d", i), nets[len(nets)-1-i])
	}
	return b.MustBuild()
}

// RandomVector returns a fully known random input vector for the
// netlist.
func RandomVector(rng *stimulus.PRNG, n *netlist.Netlist) []uint64 {
	v := make([]uint64, n.InputWidth())
	for i := range v {
		v[i] = rng.Uint64() & 1
	}
	return v
}
