// Package testutil holds small cross-suite test helpers. It is only
// imported from _test files.
package testutil

import (
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count when called and registers
// a cleanup that fails the test if the count has not returned to the
// baseline by the end of it (after a grace period — goroutines wind
// down asynchronously). Call it FIRST in the test, before starting
// servers or managers, so its cleanup runs after theirs (cleanups run
// LIFO) and sees the torn-down state.
//
// Hand-rolled on purpose: the repo takes no test dependencies. The
// check is count-based with a stack dump on failure, which is enough to
// catch the classes of leak the chaos suite hunts (wedged workers,
// abandoned session drains, unclosed subscribers).
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			// Idle HTTP keep-alive connections hold goroutines that are
			// pool state, not leaks; release them before counting.
			http.DefaultClient.CloseIdleConnections()
			if runtime.NumGoroutine() <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at baseline, %d after cleanup; stacks:\n%s",
			base, runtime.NumGoroutine(), summarizeStacks(string(buf[:n])))
	})
}

// summarizeStacks trims a full runtime.Stack dump to the goroutine
// headers plus their top frames, keeping the failure message readable.
func summarizeStacks(dump string) string {
	var sb strings.Builder
	for _, g := range strings.Split(dump, "\n\n") {
		lines := strings.Split(g, "\n")
		n := len(lines)
		if n > 5 {
			n = 5
		}
		sb.WriteString(strings.Join(lines[:n], "\n"))
		sb.WriteString("\n\n")
	}
	return sb.String()
}
