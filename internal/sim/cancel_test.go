package sim

import (
	"errors"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/stimulus"
)

// TestCancelAbortsStep: once the Cancel hook reports an error, Step must
// return it (after enough events have accrued to trigger a poll) and
// leave the simulator consistent enough for further Steps.
func TestCancelAbortsStep(t *testing.T) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	cancelErr := errors.New("cancelled")
	var cancelled bool
	s := New(nl, Options{Cancel: func() error {
		if cancelled {
			return cancelErr
		}
		return nil
	}})
	src := stimulus.NewRandom(nl.InputWidth(), 1)

	// Run until the kernel has polled Cancel at least once, proving the
	// hook is on the event path.
	for s.Events() < 2*cancelCheckInterval {
		if err := s.Step(src.Next()); err != nil {
			t.Fatalf("unexpected error before cancellation: %v", err)
		}
	}

	cancelled = true
	var err error
	for i := 0; i < 1000; i++ {
		if err = s.Step(src.Next()); err != nil {
			break
		}
	}
	if !errors.Is(err, cancelErr) {
		t.Fatalf("cancelled simulation returned %v, want %v", err, cancelErr)
	}

	// After the abort the queue must be empty and the simulator reusable.
	cancelled = false
	if err := s.Step(src.Next()); err != nil {
		t.Fatalf("Step after cancellation failed: %v", err)
	}
}

// TestCancelHookDoesNotPerturbResults: attaching a never-firing Cancel
// hook must leave the simulation bit-identical.
func TestCancelHookDoesNotPerturbResults(t *testing.T) {
	nl := circuits.NewWallaceMultiplier(8, circuits.Cells)
	run := func(opts Options) []uint64 {
		s := New(nl, opts)
		src := stimulus.NewRandom(nl.InputWidth(), 3)
		var settles []uint64
		for i := 0; i < 50; i++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
			settles = append(settles, uint64(s.SettleTime()))
		}
		settles = append(settles, s.Events())
		return settles
	}
	plain := run(Options{})
	hooked := run(Options{Cancel: func() error { return nil }})
	if len(plain) != len(hooked) {
		t.Fatal("length mismatch")
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, plain[i], hooked[i])
		}
	}
}
