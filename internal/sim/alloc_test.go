package sim_test

// Steady-state allocation regression tests: once the event queues,
// change buffers and counter scratch have grown to the workload's
// working-set size, a simulation cycle must not allocate — on either
// kernel. A reintroduced per-cycle allocation (e.g. a batch slice that
// stops being reused) fails these tests long before it shows up in a
// benchmark graph.

import (
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// allocTolerance is the average allocations per Step the tests accept:
// nonzero only to absorb a rare late slice growth on a workload whose
// wave sizes fluctuate.
const allocTolerance = 0.1

func TestStepAllocFree(t *testing.T) {
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	comp := sim.Compile(nl)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"wave-unit", sim.Options{Delay: delay.Unit()}},
		{"calendar-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
		{"heap-unit", sim.Options{Delay: delay.Unit(), Scheduler: sim.SchedulerHeap}},
	} {
		s := sim.NewFromCompiled(comp, tc.opts)
		counter := core.NewCounter(nl)
		s.AttachMonitor(counter)
		src := stimulus.NewRandom(nl.InputWidth(), 1)
		for i := 0; i < 200; i++ { // grow all scratch to steady state
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		})
		if avg > allocTolerance {
			t.Errorf("%s: %.2f allocs per warmed-up Step, want 0", tc.name, avg)
		}
	}
}

func TestWideStepAllocFree(t *testing.T) {
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	ws, err := sim.NewWide(sim.Compile(nl), sim.Options{Delay: delay.Unit()})
	if err != nil {
		t.Fatal(err)
	}
	counter := core.NewWideCounter(nl)
	ws.AttachWideMonitor(counter)
	seeds := make([]uint64, sim.MaxLanes)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
	buf := make([]logic.W, nl.InputWidth())
	for i := 0; i < 100; i++ {
		if err := ws.Step(src.NextWide(buf)); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := ws.Step(src.NextWide(buf)); err != nil {
			t.Fatal(err)
		}
	})
	if avg > allocTolerance {
		t.Errorf("wide kernel: %.2f allocs per warmed-up Step, want 0", avg)
	}
}

// TestWideEventStepAllocFree: the event-driven word-parallel kernel must
// also run steady-state alloc-free, on both its queues, with zero-delay
// coalescing, and with the inertial in-flight bookkeeping active.
func TestWideEventStepAllocFree(t *testing.T) {
	nl := circuits.NewArrayMultiplier(8, circuits.Cells)
	comp := sim.Compile(nl)
	zeroish := delay.PerType(map[netlist.CellType]int{netlist.Not: 0, netlist.Nand: 0}, 2)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"calendar-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
		{"calendar-typical", sim.Options{Delay: delay.Typical()}},
		{"calendar-zeroish", sim.Options{Delay: zeroish}},
		{"heap-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1), Scheduler: sim.SchedulerHeap}},
		{"inertial-typical", sim.Options{Delay: delay.Typical(), Mode: sim.Inertial}},
	} {
		ws := sim.NewWideEvent(comp, tc.opts)
		counter := core.NewWideCounter(nl)
		ws.AttachWideMonitor(counter)
		seeds := make([]uint64, sim.MaxLanes)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
		buf := make([]logic.W, nl.InputWidth())
		for i := 0; i < 100; i++ {
			if err := ws.Step(src.NextWide(buf)); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := ws.Step(src.NextWide(buf)); err != nil {
				t.Fatal(err)
			}
		})
		if avg > allocTolerance {
			t.Errorf("%s: %.2f allocs per warmed-up Step, want 0", tc.name, avg)
		}
	}
}
