package sim

// Table-driven three-valued cell evaluation for the event loop. The
// general netlist.Eval is a readable switch over variadic logic ops; the
// hot path replaces it with small lookup tables built from that same
// reference implementation at init, so the two can never drift apart.
// logic.V values are 0 (X), 1 (L0) and 2 (L1), so a k-input table is
// indexed in base 3.

import (
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

var (
	notT [3]logic.V
	andT [9]logic.V
	orT  [9]logic.V
	xorT [9]logic.V
	haST [9]logic.V // half-adder sum
	haCT [9]logic.V // half-adder carry
	faST [27]logic.V
	faCT [27]logic.V
	majT [27]logic.V
	muxT [27]logic.V
)

func init() {
	vals := [3]logic.V{logic.X, logic.L0, logic.L1}
	for i, a := range vals {
		notT[i] = logic.Not(a)
		for j, b := range vals {
			andT[i*3+j] = logic.And(a, b)
			orT[i*3+j] = logic.Or(a, b)
			xorT[i*3+j] = logic.Xor(a, b)
			haST[i*3+j], haCT[i*3+j] = logic.HalfAdd(a, b)
			for k, c := range vals {
				faST[i*9+j*3+k], faCT[i*9+j*3+k] = logic.FullAdd(a, b, c)
				majT[i*9+j*3+k] = logic.Maj3(a, b, c)
				muxT[i*9+j*3+k] = logic.Mux(c, a, b) // in order [a, b, sel]
			}
		}
	}
}

// evalCell computes a cell's outputs from the current net values,
// returning the second output only for two-output (HA/FA) cells.
//
//glitchsim:hotpath
func (s *Simulator) evalCell(cid netlist.CellID) (o0, o1 logic.V, twoOut bool) {
	c := s.c
	v := s.values
	in := c.inNets[c.inStart[cid]:c.inStart[cid+1]]
	switch c.cellType[cid] {
	case netlist.FA:
		idx := int(v[in[0]])*9 + int(v[in[1]])*3 + int(v[in[2]])
		return faST[idx], faCT[idx], true
	case netlist.HA:
		idx := int(v[in[0]])*3 + int(v[in[1]])
		return haST[idx], haCT[idx], true
	case netlist.And:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = andT[int(r)*3+int(v[id])]
		}
		return r, 0, false
	case netlist.Nand:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = andT[int(r)*3+int(v[id])]
		}
		return notT[r], 0, false
	case netlist.Or:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = orT[int(r)*3+int(v[id])]
		}
		return r, 0, false
	case netlist.Nor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = orT[int(r)*3+int(v[id])]
		}
		return notT[r], 0, false
	case netlist.Xor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = xorT[int(r)*3+int(v[id])]
		}
		return r, 0, false
	case netlist.Xnor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = xorT[int(r)*3+int(v[id])]
		}
		return notT[r], 0, false
	case netlist.Not:
		return notT[v[in[0]]], 0, false
	case netlist.Buf:
		return v[in[0]], 0, false
	case netlist.Mux2:
		return muxT[int(v[in[0]])*9+int(v[in[1]])*3+int(v[in[2]])], 0, false
	case netlist.Maj3:
		return majT[int(v[in[0]])*9+int(v[in[1]])*3+int(v[in[2]])], 0, false
	case netlist.Const0:
		return logic.L0, 0, false
	case netlist.Const1:
		return logic.L1, 0, false
	default:
		// Reference fallback for any future cell type.
		ins := s.evalIn[:0]
		for _, id := range in {
			ins = append(ins, v[id])
		}
		outs := s.evalOut[:c.outLen[cid]]
		netlist.Eval(c.cellType[cid], ins, outs)
		if c.outLen[cid] == 2 {
			return outs[0], outs[1], true
		}
		return outs[0], 0, false
	}
}
