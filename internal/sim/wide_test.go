package sim_test

// Wide-kernel equivalence: the 64-lane word-parallel kernel must be
// bit-identical to 64 independent scalar runs — per-lane settled values
// and, after folding the WideCounter, every per-net activity statistic
// of the merged scalar counters. This is the test that licenses the
// parallel-pattern kernel to replace 64 scalar simulations.

import (
	"errors"
	"fmt"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/registry"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
	"glitchsim/netlist"
)

// mergedScalarRuns simulates one scalar run per seed and merges the
// counters in seed order, returning the aggregate plus per-seed final
// net values.
func mergedScalarRuns(t *testing.T, c *sim.Compiled, dm delay.Model, seeds []uint64, cycles int) (*core.Counter, [][]logic.V) {
	t.Helper()
	nl := c.Netlist()
	var agg *core.Counter
	finals := make([][]logic.V, len(seeds))
	for i, seed := range seeds {
		s := sim.NewFromCompiled(c, sim.Options{Delay: dm})
		counter := core.NewCounter(nl)
		s.AttachMonitor(counter)
		src := stimulus.NewRandom(nl.InputWidth(), seed)
		for cy := 0; cy < cycles; cy++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		finals[i] = make([]logic.V, nl.NumNets())
		for n := range finals[i] {
			finals[i][n] = s.Value(netlist.NetID(n))
		}
		if agg == nil {
			agg = counter
		} else if err := agg.Merge(counter); err != nil {
			t.Fatal(err)
		}
	}
	return agg, finals
}

// wideRun simulates all seeds at once on the wide kernel and returns the
// folded counter plus the packed final net values.
func wideRun(t *testing.T, c *sim.Compiled, dm delay.Model, seeds []uint64, cycles int) (*core.Counter, []logic.W) {
	t.Helper()
	nl := c.Netlist()
	ws, err := sim.NewWide(c, sim.Options{Delay: dm})
	if err != nil {
		t.Fatal(err)
	}
	counter := core.NewWideCounter(nl)
	if len(seeds) < sim.MaxLanes {
		counter.SetLaneMask(uint64(1)<<uint(len(seeds)) - 1)
	}
	ws.AttachWideMonitor(counter)
	src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
	buf := make([]logic.W, nl.InputWidth())
	for cy := 0; cy < cycles; cy++ {
		if err := ws.Step(src.NextWide(buf)); err != nil {
			t.Fatal(err)
		}
	}
	finals := make([]logic.W, nl.NumNets())
	for n := range finals {
		finals[n] = ws.Value(netlist.NetID(n))
	}
	return counter.Counter(), finals
}

// compareWideToScalar asserts bit-identical per-net stats, cycles, and
// per-lane settled values between the wide kernel and the merged scalar
// reference runs.
func compareWideToScalar(t *testing.T, name string, nl *netlist.Netlist,
	wide *core.Counter, wideVals []logic.W, ref *core.Counter, refVals [][]logic.V, seeds []uint64) {
	t.Helper()
	if wide.Cycles() != ref.Cycles() {
		t.Fatalf("%s: wide cycles %d, merged scalar %d", name, wide.Cycles(), ref.Cycles())
	}
	for i := 0; i < nl.NumNets(); i++ {
		id := netlist.NetID(i)
		if got, want := wide.Stats(id), ref.Stats(id); got != want {
			t.Fatalf("%s: net %s stats differ\nwide:   %+v\nscalar: %+v", name, nl.Nets[i].Name, got, want)
		}
		for l := range seeds {
			if got, want := wideVals[i].Lane(l), refVals[l][i]; got != want {
				t.Fatalf("%s: net %s lane %d settled at %v, scalar run %v", name, nl.Nets[i].Name, l, got, want)
			}
		}
	}
}

// TestWideKernelEquivalence: for every built-in circuit and three
// 64-seed blocks, the lane-summed WideCounter statistics of one 64-lane
// wide run must be bit-identical to 64 scalar runs merged in seed order,
// under unit delay. Enforced in CI alongside TestKernelEquivalence.
func TestWideKernelEquivalence(t *testing.T) {
	blocks := [][]uint64{seedBlock(1), seedBlock(1000), seedBlock(0xDEAD)}
	for _, circuit := range registry.Names() {
		nl, err := registry.Build(circuit)
		if err != nil {
			t.Fatal(err)
		}
		c := sim.Compile(nl)
		cycles := 20
		if nl.NumCells() > 2000 {
			cycles = 8 // the 16x16 multipliers: keep the 3x64 scalar reference affordable
		}
		for bi, seeds := range blocks {
			name := fmt.Sprintf("%s/block%d", circuit, bi)
			ref, refVals := mergedScalarRuns(t, c, delay.Unit(), seeds, cycles)
			wide, wideVals := wideRun(t, c, delay.Unit(), seeds, cycles)
			compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
		}
	}
}

// seedBlock returns 64 distinct seeds starting at base.
func seedBlock(base uint64) []uint64 {
	seeds := make([]uint64, sim.MaxLanes)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

// TestWideKernelUniformDelays: the wide kernel must also match under
// non-unit uniform delays, and with fewer active lanes than the word
// holds (the tail chunk of a seed sweep).
func TestWideKernelUniformDelays(t *testing.T) {
	nl, err := registry.Build("dirdet8r")
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Compile(nl)
	for _, tc := range []struct {
		name  string
		dm    delay.Model
		seeds []uint64
	}{
		{"uniform3-full", delay.Uniform(3), seedBlock(7)},
		{"unit-partial", delay.Unit(), seedBlock(3)[:11]},
		{"uniform2-single", delay.Uniform(2), []uint64{42}},
	} {
		ref, refVals := mergedScalarRuns(t, c, tc.dm, tc.seeds, 25)
		wide, wideVals := wideRun(t, c, tc.dm, tc.seeds, 25)
		compareWideToScalar(t, tc.name, nl, wide, wideVals, ref, refVals, tc.seeds)
	}
}

// TestWidePropertyRandomNetlists: the equivalence must hold on random
// netlists too — DFF-free and sequential, with and without compound
// cells — not just the hand-built benchmark circuits.
func TestWidePropertyRandomNetlists(t *testing.T) {
	rng := stimulus.NewPRNG(424242)
	for trial := 0; trial < 12; trial++ {
		nl := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(6)),
			Gates:        10 + int(rng.Uintn(50)),
			Outputs:      2,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 != 2,
		})
		c := sim.Compile(nl)
		seeds := make([]uint64, 1+int(rng.Uintn(sim.MaxLanes)))
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}
		name := fmt.Sprintf("trial%d(lanes=%d)", trial, len(seeds))
		ref, refVals := mergedScalarRuns(t, c, delay.Unit(), seeds, 15)
		wide, wideVals := wideRun(t, c, delay.Unit(), seeds, 15)
		compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
	}
}

// TestUniformDelayDetection: eligibility is decided by evaluating the
// model on the circuit, not by its type — a FullAdderRatio over a
// multiplier is non-uniform, but the same model over an adder-free
// circuit collapses to unit delay.
func TestUniformDelayDetection(t *testing.T) {
	mult := sim.Compile(mustBuild(t, "array8"))
	if d, ok := sim.UniformDelay(mult, delay.Unit()); !ok || d != 1 {
		t.Errorf("unit on array8: (%d,%v), want (1,true)", d, ok)
	}
	if d, ok := sim.UniformDelay(mult, delay.Uniform(4)); !ok || d != 4 {
		t.Errorf("uniform(4) on array8: (%d,%v), want (4,true)", d, ok)
	}
	if _, ok := sim.UniformDelay(mult, delay.FullAdderRatio(2, 1)); ok {
		t.Error("fa-ratio on array8 reported uniform")
	}
	if d, ok := sim.UniformDelay(mult, delay.Zero()); !ok || d != 0 {
		t.Errorf("zero on array8: (%d,%v), want (0,true)", d, ok)
	}
	// No FA/HA cells: the ratio model degenerates to its unit base.
	gates := sim.Compile(mustBuild(t, "rca16g"))
	if d, ok := sim.UniformDelay(gates, delay.FullAdderRatio(2, 1)); !ok || d != 1 {
		t.Errorf("fa-ratio on rca16g: (%d,%v), want (1,true)", d, ok)
	}
}

func mustBuild(t *testing.T, name string) *netlist.Netlist {
	t.Helper()
	nl, err := registry.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestNewWideRejectsNonUniform: the constructor refuses delay models the
// wavefront cannot represent, including uniform zero delay.
func TestNewWideRejectsNonUniform(t *testing.T) {
	c := sim.Compile(mustBuild(t, "array8"))
	if _, err := sim.NewWide(c, sim.Options{Delay: delay.FullAdderRatio(2, 1)}); !errors.Is(err, sim.ErrNonUniformDelay) {
		t.Errorf("fa-ratio: err = %v, want ErrNonUniformDelay", err)
	}
	if _, err := sim.NewWide(c, sim.Options{Delay: delay.Zero()}); !errors.Is(err, sim.ErrNonUniformDelay) {
		t.Errorf("zero delay: err = %v, want ErrNonUniformDelay", err)
	}
	if _, err := sim.NewWide(c, sim.Options{}); err != nil {
		t.Errorf("default unit delay rejected: %v", err)
	}
}
