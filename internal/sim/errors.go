package sim

// Typed kernel failures and the shared in-loop poll behind them. Every
// way a Step can fail for resource reasons — cancellation, budget
// exhaustion, a settle-guard trip — funnels through the machinery in
// this file, so all three kernels (scalar, wide-lockstep, wide-event)
// fail with the same error types and the layers above can route on
// errors.Is/errors.As instead of string matching.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"glitchsim/netlist"
)

// Budget resource names, used in BudgetError.Resource and mirrored in
// service error details.
const (
	BudgetEvents    = "events"
	BudgetWallClock = "wall_clock"
	BudgetMemory    = "memory"
)

// Budget bounds a simulator's resource consumption; the zero value is
// unlimited. Budgets are checked on the same every-cancelCheckInterval
// poll as Options.Cancel, so enforcement can overshoot by up to one
// poll interval of events — deterministically so for a given netlist
// and stimulus (the poll schedule depends only on the event stream),
// which keeps event-budget trips reproducible.
type Budget struct {
	// Events bounds the simulator's lifetime event count (Events()).
	// Word-parallel kernels count word events: one event covers up to 64
	// lanes, so the same budget buys ~64× the simulated work there.
	Events uint64
	// Deadline is the wall-clock instant past which Step fails.
	Deadline time.Time
}

// ErrBudgetExceeded is the sentinel wrapped by every BudgetError;
// errors.Is(err, ErrBudgetExceeded) detects budget trips regardless of
// which resource ran out.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// BudgetError reports a simulation aborted by a resource budget. The
// aborted Step discards its in-flight events, so every statistic
// accumulated for earlier cycles remains well defined: monitors saw
// OnCycleEnd exactly Cycle times and no partial-cycle state leaks into
// their counts.
type BudgetError struct {
	// Resource is the exhausted dimension: BudgetEvents, BudgetWallClock
	// or BudgetMemory.
	Resource string
	// Limit and Used are the configured bound and the consumption seen
	// at the failing check, in the resource's unit (events, bytes). Both
	// are zero for wall-clock trips, where the deadline is the bound.
	// For admission-time memory failures Used is the cost estimate.
	Limit, Used uint64
	// Cycle is the number of fully completed Steps (warm-up included) at
	// the abort.
	Cycle int
}

func (e *BudgetError) Error() string {
	if e.Limit == 0 && e.Used == 0 {
		return fmt.Sprintf("sim: %s budget exceeded after %d completed cycles", e.Resource, e.Cycle)
	}
	return fmt.Sprintf("sim: %s budget exceeded (%d > limit %d) after %d completed cycles",
		e.Resource, e.Used, e.Limit, e.Cycle)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// ErrOscillation is the sentinel wrapped by every OscillationError.
var ErrOscillation = errors.New("network did not settle (oscillation or guard too low)")

// OscillationError reports a cycle that failed to settle within the
// MaxTimePerCycle guard: either the network genuinely oscillates
// (combinational feedback) or the guard is too low for the delay model
// and logic depth. In-flight events are discarded before the error is
// returned, exactly like a budget abort.
type OscillationError struct {
	// Circuit is the netlist name.
	Circuit string
	// Cycle is the kernel cycle (warm-up included) that failed to settle.
	Cycle int
	// Guard is the MaxTimePerCycle bound that was exceeded.
	Guard int
	// Nets and Names identify up to maxHotNets nets that still had
	// events in flight when the guard tripped — the nets to inspect
	// first when hunting the feedback loop. Names is aligned with Nets.
	Nets  []netlist.NetID
	Names []string
}

func (e *OscillationError) Error() string {
	msg := fmt.Sprintf("sim: cycle %d of %q did not settle by time %d (oscillation or guard too low)",
		e.Cycle, e.Circuit, e.Guard)
	if len(e.Names) > 0 {
		msg += "; hot nets: " + strings.Join(e.Names, ", ")
	}
	return msg
}

func (e *OscillationError) Unwrap() error { return ErrOscillation }

// maxHotNets caps the oscillating nets an OscillationError reports.
const maxHotNets = 8

// newOscillationError builds the typed settle-guard failure shared by
// all three kernels; nets are the caller's hot nets, capped here so
// kernels can pass whatever they collected cheaply.
func newOscillationError(n *netlist.Netlist, cycle, guard int, nets []netlist.NetID) error {
	if len(nets) > maxHotNets {
		nets = nets[:maxHotNets]
	}
	names := make([]string, len(nets))
	for i, id := range nets {
		names[i] = n.Nets[id].Name
	}
	return &OscillationError{Circuit: n.Name, Cycle: cycle, Guard: guard, Nets: nets, Names: names}
}

// pollState is the periodic in-loop check shared by all three kernels:
// cancellation and resource budgets ride one every-cancelCheckInterval
// poll, so adding budgets cost no extra branch on the hot path.
type pollState struct {
	cancel   func() error
	budget   Budget
	deadline bool   // budget.Deadline is set
	nextAt   uint64 // event count at which to poll next
	active   bool   // anything to check at all
}

func (p *pollState) init(opts Options) {
	p.cancel = opts.Cancel
	p.budget = opts.Budget
	p.deadline = !opts.Budget.Deadline.IsZero()
	p.nextAt = cancelCheckInterval
	p.active = p.cancel != nil || p.budget.Events > 0 || p.deadline
	p.clampToBudget(0)
}

// clampToBudget pulls the next poll forward so an event budget is
// checked as soon as it is reached instead of at the next full interval:
// overshoot then stays below one event batch rather than one interval.
//
//glitchsim:hotpath
func (p *pollState) clampToBudget(events uint64) {
	if b := p.budget.Events; b > 0 && b > events && b < p.nextAt {
		p.nextAt = b
	}
}

// due reports whether the poll should run at the given lifetime event
// count. Kept separate from poll so the hot loop pays one compare.
//
//glitchsim:hotpath
func (p *pollState) due(events uint64) bool { return p.active && events >= p.nextAt }

// poll runs the cancellation and budget checks; cycle is the kernel's
// completed-cycle count, recorded in BudgetError so callers know through
// which cycle boundary the statistics are valid. The caller discards
// in-flight events on a non-nil return.
func (p *pollState) poll(events uint64, cycle int) error {
	p.nextAt = events + cancelCheckInterval
	p.clampToBudget(events)
	if p.cancel != nil {
		if err := p.cancel(); err != nil {
			return err
		}
	}
	if lim := p.budget.Events; lim > 0 && events >= lim {
		// An exhausted budget stays exhausted for the simulator's
		// lifetime: keep the poll permanently due so later Steps fail
		// immediately instead of running one interval for free.
		p.nextAt = 0
		return &BudgetError{Resource: BudgetEvents, Limit: lim, Used: events, Cycle: cycle}
	}
	if p.deadline && time.Now().After(p.budget.Deadline) {
		p.nextAt = 0
		return &BudgetError{Resource: BudgetWallClock, Cycle: cycle}
	}
	return nil
}
