package sim_test

// Wide-event-kernel equivalence: the masked word-parallel event kernel
// must be bit-identical to 64 independent scalar runs under EVERY delay
// model — the non-uniform ones (full-adder ratios, per-type, randomized
// per-pin) are exactly the configurations the lockstep kernel cannot
// run. This is the test that licenses deleting the measurement layer's
// scalar lane-by-lane fallback.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/registry"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
	"glitchsim/netlist"
)

// nonUniformModels returns the delay-model families of the paper's
// realistic-delay experiments plus a deterministic pseudo-random per-pin
// model: the configurations the wide-event kernel exists for. (On
// circuits without FA/HA cells the ratio model degenerates to unit
// delay — NewWideKernel would pick the lockstep kernel there, so these
// tests construct the event kernel explicitly.)
func nonUniformModels() []delay.Model {
	return []delay.Model{
		delay.FullAdderRatio(2, 1),
		delay.FullAdderRatio(3, 1),
		delay.Typical(),
		delay.PerType(map[netlist.CellType]int{
			netlist.Xor: 4, netlist.Xnor: 4, netlist.FA: 5, netlist.HA: 3, netlist.Not: 1,
		}, 2),
		randomDelay(1234, 6),
		delay.Zero(),
	}
}

// randomDelay returns a deterministic pseudo-random per-cell/per-pin
// model with delays in [0, spread]: the adversarial case where every pin
// differs and zero-delay coalescing interleaves with nonzero delays.
func randomDelay(seed uint64, spread int) delay.Model {
	return delay.Func{
		F: func(c *netlist.Cell, pin int) int {
			h := fnv.New64a()
			fmt.Fprintf(h, "%d|%s|%d", seed, c.Name, pin)
			return int(h.Sum64() % uint64(spread+1))
		},
		N: fmt.Sprintf("random(%d,%d)", seed, spread),
	}
}

// wideEventRun simulates all seeds at once on the wide-event kernel and
// returns the folded counter plus the packed final net values.
func wideEventRun(t *testing.T, c *sim.Compiled, opts sim.Options, seeds []uint64, cycles int) (*core.Counter, []logic.W) {
	t.Helper()
	nl := c.Netlist()
	ws := sim.NewWideEvent(c, opts)
	counter := core.NewWideCounter(nl)
	if len(seeds) < sim.MaxLanes {
		counter.SetLaneMask(uint64(1)<<uint(len(seeds)) - 1)
	}
	ws.AttachWideMonitor(counter)
	src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
	buf := make([]logic.W, nl.InputWidth())
	for cy := 0; cy < cycles; cy++ {
		if err := ws.Step(src.NextWide(buf)); err != nil {
			t.Fatal(err)
		}
	}
	finals := make([]logic.W, nl.NumNets())
	for n := range finals {
		finals[n] = ws.Value(netlist.NetID(n))
	}
	return counter.Counter(), finals
}

// mergedScalarModeRuns is mergedScalarRuns with an explicit delay mode.
func mergedScalarModeRuns(t *testing.T, c *sim.Compiled, opts sim.Options, seeds []uint64, cycles int) (*core.Counter, [][]logic.V) {
	t.Helper()
	nl := c.Netlist()
	var agg *core.Counter
	finals := make([][]logic.V, len(seeds))
	for i, seed := range seeds {
		s := sim.NewFromCompiled(c, opts)
		counter := core.NewCounter(nl)
		s.AttachMonitor(counter)
		src := stimulus.NewRandom(nl.InputWidth(), seed)
		for cy := 0; cy < cycles; cy++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		finals[i] = make([]logic.V, nl.NumNets())
		for n := range finals[i] {
			finals[i][n] = s.Value(netlist.NetID(n))
		}
		if agg == nil {
			agg = counter
		} else if err := agg.Merge(counter); err != nil {
			t.Fatal(err)
		}
	}
	return agg, finals
}

// TestWideEventKernelEquivalence: for every built-in circuit and every
// non-uniform delay model family, one 64-lane wide-event run must be
// bit-identical to 64 scalar runs merged in seed order. Enforced in CI
// under -race alongside the lockstep equivalence test.
func TestWideEventKernelEquivalence(t *testing.T) {
	seeds := seedBlock(77)
	for _, circuit := range registry.Names() {
		nl, err := registry.Build(circuit)
		if err != nil {
			t.Fatal(err)
		}
		c := sim.Compile(nl)
		cycles := 12
		if nl.NumCells() > 2000 {
			cycles = 4 // the 16x16 multipliers: keep the 64x scalar reference affordable
		}
		for _, dm := range nonUniformModels() {
			name := fmt.Sprintf("%s/%s", circuit, dm.Name())
			opts := sim.Options{Delay: dm}
			ref, refVals := mergedScalarModeRuns(t, c, opts, seeds, cycles)
			wide, wideVals := wideEventRun(t, c, opts, seeds, cycles)
			compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
		}
	}
}

// TestWideEventKernelInertial: the lane image of the scalar kernel's
// inertial cancellation — only the newest claim per lane survives — must
// hold under unequal delays, where inertial and transport genuinely
// diverge.
func TestWideEventKernelInertial(t *testing.T) {
	for _, circuit := range []string{"array8", "wallace8", "dirdet8r", "cla16", "hazard"} {
		nl, err := registry.Build(circuit)
		if err != nil {
			t.Fatal(err)
		}
		c := sim.Compile(nl)
		for _, dm := range []delay.Model{delay.FullAdderRatio(2, 1), delay.Typical(), randomDelay(99, 5)} {
			name := fmt.Sprintf("%s/%s/inertial", circuit, dm.Name())
			opts := sim.Options{Delay: dm, Mode: sim.Inertial}
			seeds := seedBlock(5)
			ref, refVals := mergedScalarModeRuns(t, c, opts, seeds, 15)
			wide, wideVals := wideEventRun(t, c, opts, seeds, 15)
			compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
		}
	}
}

// TestWideEventKernelPartialLanes: fewer active lanes than the word
// holds, plus the single-lane degenerate case, on both queue kernels.
func TestWideEventKernelPartialLanes(t *testing.T) {
	nl, err := registry.Build("dirdet8r")
	if err != nil {
		t.Fatal(err)
	}
	c := sim.Compile(nl)
	dm := delay.Typical()
	for _, tc := range []struct {
		name  string
		opts  sim.Options
		seeds []uint64
	}{
		{"typical-partial", sim.Options{Delay: dm}, seedBlock(3)[:11]},
		{"typical-single", sim.Options{Delay: dm}, []uint64{42}},
		{"typical-heap", sim.Options{Delay: dm, Scheduler: sim.SchedulerHeap}, seedBlock(9)[:23]},
	} {
		ref, refVals := mergedScalarModeRuns(t, c, tc.opts, tc.seeds, 25)
		wide, wideVals := wideEventRun(t, c, tc.opts, tc.seeds, 25)
		compareWideToScalar(t, tc.name, nl, wide, wideVals, ref, refVals, tc.seeds)
	}
}

// TestWideEventPropertyRandomNetlists: the equivalence must hold on
// random netlists under randomized per-pin delay models too — DFF-free
// and sequential, with and without compound cells, transport and
// inertial.
func TestWideEventPropertyRandomNetlists(t *testing.T) {
	rng := stimulus.NewPRNG(777777)
	for trial := 0; trial < 12; trial++ {
		nl := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(6)),
			Gates:        10 + int(rng.Uintn(50)),
			Outputs:      2,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 != 2,
		})
		c := sim.Compile(nl)
		seeds := make([]uint64, 1+int(rng.Uintn(sim.MaxLanes)))
		for i := range seeds {
			seeds[i] = rng.Uint64()
		}
		opts := sim.Options{Delay: randomDelay(rng.Uint64(), 4)}
		if trial%4 == 3 {
			opts.Mode = sim.Inertial
		}
		name := fmt.Sprintf("trial%d(lanes=%d,mode=%v)", trial, len(seeds), opts.Mode)
		ref, refVals := mergedScalarModeRuns(t, c, opts, seeds, 15)
		wide, wideVals := wideEventRun(t, c, opts, seeds, 15)
		compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
	}
}

// TestNewWideKernelSelection: the auto constructor picks the lockstep
// kernel exactly when the model is uniform with delay >= 1, the event
// kernel otherwise (non-uniform, zero-delay, or any inertial run where
// the two modes can diverge is still fine — uniform inertial equals
// transport, so lockstep remains legal there).
func TestNewWideKernelSelection(t *testing.T) {
	c := sim.Compile(mustBuild(t, "array8"))
	for _, tc := range []struct {
		name string
		opts sim.Options
		want string
	}{
		{"unit", sim.Options{}, "wide-lockstep"},
		{"uniform3", sim.Options{Delay: delay.Uniform(3)}, "wide-lockstep"},
		{"uniform-inertial", sim.Options{Mode: sim.Inertial}, "wide-lockstep"},
		{"faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}, "wide-event"},
		{"typical", sim.Options{Delay: delay.Typical()}, "wide-event"},
		{"zero", sim.Options{Delay: delay.Zero()}, "wide-event"},
	} {
		if got := sim.NewWideKernel(c, tc.opts).KernelName(); got != tc.want {
			t.Errorf("%s: kernel %q, want %q", tc.name, got, tc.want)
		}
	}
}
