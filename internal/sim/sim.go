// Package sim implements an event-driven gate-level simulator for
// synchronous netlists, the measurement instrument behind all of the
// paper's experiments.
//
// # Cycle semantics
//
// Each call to Step simulates one clock cycle:
//
//  1. Every DFF samples its D input from the settled state of the
//     previous cycle.
//  2. At time 0 of the new cycle, all primary inputs change to the new
//     stimulus vector and all DFF outputs change to their sampled values
//     ("new input bits always arrive at the beginning of a clock cycle").
//  3. The combinational network settles by discrete-event propagation
//     under the configured delay model.
//
// # Transition semantics
//
// A net transition is a change of the net's settled value between two
// consecutive time instants: all writes to a net within one instant are
// coalesced and a single OnChange is reported with the value before and
// after the instant. Zero-width pulses therefore do not count, and
// zero-delay simulation reports at most one transition per net per cycle
// (the glitch-free functional baseline).
package sim

import (
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/netlist"
)

// Mode selects how a cell output reacts to input changes arriving while a
// previous output change is still in flight.
type Mode uint8

const (
	// Transport delay propagates every pulse, however narrow. This is
	// the model behind the paper's unit-delay glitch counts.
	Transport Mode = iota
	// Inertial delay swallows pulses narrower than the cell delay, as a
	// real gate's output capacitance would.
	Inertial
)

// String names the mode.
func (m Mode) String() string {
	if m == Inertial {
		return "inertial"
	}
	return "transport"
}

// Options configures a Simulator.
type Options struct {
	// Delay is the propagation-delay model. Nil means unit delay.
	Delay delay.Model
	// Mode selects transport (default) or inertial delay handling.
	Mode Mode
	// MaxTimePerCycle guards against runaway event cascades; Step fails
	// if the network has not settled by this time. 0 means 1<<16.
	MaxTimePerCycle int
}

// Monitor observes net value changes. Implementations include the
// activity counter (package core) and the VCD writer (package vcd).
type Monitor interface {
	// OnChange reports that net settled from old to new at time t of the
	// given cycle. old may be logic.X during start-up.
	OnChange(net netlist.NetID, cycle, t int, old, new logic.V)
	// OnCycleEnd reports that the network has settled for the cycle.
	OnCycleEnd(cycle int)
}

type event struct {
	time   int
	serial uint64
	net    netlist.NetID
	val    logic.V
	key    int32 // cell-output key for inertial cancellation; -1 for injections
}

// Simulator drives one netlist. It is not safe for concurrent use.
type Simulator struct {
	n     *netlist.Netlist
	dm    delay.Model
	mode  Mode
	guard int

	values []logic.V
	ffQ    []logic.V // sampled Q per cell ID (only DFF entries used)

	queue      eventHeap
	serial     uint64
	pending    []int32  // in-flight events per net
	lastSerial []uint64 // per cell-output key, for inertial cancellation

	changedInit []logic.V
	changedMark []bool
	changedList []netlist.NetID

	touchEpoch []int
	epoch      int
	touched    []netlist.CellID

	monitors []Monitor
	cycle    int
	settle   int // settle time of the most recent cycle

	evalIn  []logic.V
	evalOut [2]logic.V
}

// New returns a Simulator for the netlist. The netlist must be valid (see
// netlist.Validate); New panics otherwise, since simulating an invalid
// netlist produces meaningless activity numbers.
func New(n *netlist.Netlist, opts Options) *Simulator {
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid netlist: %v", err))
	}
	dm := opts.Delay
	if dm == nil {
		dm = delay.Unit()
	}
	guard := opts.MaxTimePerCycle
	if guard == 0 {
		guard = 1 << 16
	}
	s := &Simulator{
		n:           n,
		dm:          dm,
		mode:        opts.Mode,
		guard:       guard,
		values:      make([]logic.V, n.NumNets()),
		ffQ:         make([]logic.V, n.NumCells()),
		pending:     make([]int32, n.NumNets()),
		lastSerial:  make([]uint64, 2*n.NumCells()),
		changedInit: make([]logic.V, n.NumNets()),
		changedMark: make([]bool, n.NumNets()),
		touchEpoch:  make([]int, n.NumCells()),
		evalIn:      make([]logic.V, 0, 8),
	}
	// DFFs reset to 0. The initial net state is the three-valued steady
	// state with primary inputs unknown: constants (and anything
	// computable from constants and DFF reset values alone) settle here,
	// since such nets never receive events during simulation.
	for i := range n.Cells {
		if n.Cells[i].Type == netlist.DFF {
			s.ffQ[i] = logic.L0
			s.values[n.Cells[i].Out[0]] = logic.L0
		}
	}
	n.EvalOutputs(s.values)
	return s
}

// AttachMonitor registers a monitor for subsequent cycles.
func (s *Simulator) AttachMonitor(m Monitor) { s.monitors = append(s.monitors, m) }

// DetachMonitors removes all monitors.
func (s *Simulator) DetachMonitors() { s.monitors = nil }

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.n }

// Cycle returns the number of completed cycles.
func (s *Simulator) Cycle() int { return s.cycle }

// SettleTime returns the time at which the most recent cycle settled.
func (s *Simulator) SettleTime() int { return s.settle }

// Value returns the settled value of a net.
func (s *Simulator) Value(id netlist.NetID) logic.V { return s.values[id] }

// BusValue returns the settled values of a bus (LSB first).
func (s *Simulator) BusValue(bus []netlist.NetID) logic.Vector {
	v := make(logic.Vector, len(bus))
	for i, id := range bus {
		v[i] = s.values[id]
	}
	return v
}

// Outputs returns the settled primary-output vector.
func (s *Simulator) Outputs() logic.Vector { return s.BusValue(s.n.POs) }

// Step simulates one clock cycle with the given primary-input vector
// (aligned with the netlist's PIs). It returns an error if the network
// fails to settle within the configured guard time.
func (s *Simulator) Step(pi logic.Vector) error {
	if len(pi) != len(s.n.PIs) {
		panic(fmt.Sprintf("sim: stimulus width %d, netlist has %d inputs", len(pi), len(s.n.PIs)))
	}

	// 1. Sample DFF D inputs from the previous cycle's settled state. An
	// unknown D holds the flipflop's current (reset) state, so circuits
	// always leave X within a few cycles.
	for i := range s.n.Cells {
		c := &s.n.Cells[i]
		if c.Type != netlist.DFF {
			continue
		}
		if d := s.values[c.In[0]]; d.Known() {
			s.ffQ[i] = d
		}
	}

	// 2. Inject PI changes and DFF Q updates at t=0.
	for i, id := range s.n.PIs {
		s.schedule(0, id, pi[i], -1)
	}
	for i := range s.n.Cells {
		c := &s.n.Cells[i]
		if c.Type == netlist.DFF {
			s.schedule(0, c.Out[0], s.ffQ[i], -1)
		}
	}

	// 3. Propagate.
	if err := s.run(); err != nil {
		return err
	}
	for _, m := range s.monitors {
		m.OnCycleEnd(s.cycle)
	}
	s.cycle++
	return nil
}

func (s *Simulator) schedule(t int, net netlist.NetID, v logic.V, key int32) {
	// Skip no-ops: the value already holds and nothing is in flight.
	if v == s.values[net] && s.pending[net] == 0 {
		if key >= 0 {
			s.lastSerial[key] = 0 // cancel any stale inertial claim
		}
		return
	}
	s.serial++
	if key >= 0 && s.mode == Inertial {
		s.lastSerial[key] = s.serial
	}
	s.pending[net]++
	s.queue.push(event{time: t, serial: s.serial, net: net, val: v, key: key})
}

func (s *Simulator) run() error {
	flushAt := -1
	for len(s.queue) > 0 {
		t := s.queue[0].time
		if t > s.guard {
			return fmt.Errorf("sim: cycle %d did not settle by time %d (oscillation or guard too low)", s.cycle, s.guard)
		}
		if flushAt >= 0 && t > flushAt {
			s.flush(flushAt)
		}
		flushAt = t
		s.applyBatch(t)
		s.evalTouched(t)
	}
	if flushAt >= 0 {
		s.flush(flushAt)
		s.settle = flushAt
	} else {
		s.settle = 0
	}
	return nil
}

// applyBatch pops and applies every event at time t, recording per-net
// initial values and marking affected combinational cells.
func (s *Simulator) applyBatch(t int) {
	s.epoch++
	for len(s.queue) > 0 && s.queue[0].time == t {
		e := s.queue.pop()
		s.pending[e.net]--
		if e.key >= 0 && s.mode == Inertial && s.lastSerial[e.key] != e.serial {
			continue // cancelled by a later evaluation of the same output
		}
		if s.values[e.net] == e.val {
			continue
		}
		if !s.changedMark[e.net] {
			s.changedMark[e.net] = true
			s.changedInit[e.net] = s.values[e.net]
			s.changedList = append(s.changedList, e.net)
		}
		s.values[e.net] = e.val
		for _, sink := range s.n.Nets[e.net].Sinks {
			c := &s.n.Cells[sink.Cell]
			if c.Type == netlist.DFF {
				continue // DFFs react only at the clock edge
			}
			if s.touchEpoch[sink.Cell] != s.epoch {
				s.touchEpoch[sink.Cell] = s.epoch
				s.touched = append(s.touched, sink.Cell)
			}
		}
	}
}

// evalTouched re-evaluates every cell whose inputs changed at time t and
// schedules the resulting output changes.
func (s *Simulator) evalTouched(t int) {
	for _, cid := range s.touched {
		c := &s.n.Cells[cid]
		s.evalIn = s.evalIn[:0]
		for _, in := range c.In {
			s.evalIn = append(s.evalIn, s.values[in])
		}
		outs := s.evalOut[:len(c.Out)]
		netlist.Eval(c.Type, s.evalIn, outs)
		for pin, o := range c.Out {
			if o == netlist.NoNet {
				continue
			}
			key := int32(cid)*2 + int32(pin)
			s.schedule(t+s.dm.Delay(c, pin), o, outs[pin], key)
		}
	}
	s.touched = s.touched[:0]
}

// flush reports coalesced per-instant transitions to the monitors.
func (s *Simulator) flush(t int) {
	for _, net := range s.changedList {
		init := s.changedInit[net]
		final := s.values[net]
		s.changedMark[net] = false
		if init == final {
			continue // zero-width excursion within one instant
		}
		for _, m := range s.monitors {
			m.OnChange(net, s.cycle, t, init, final)
		}
	}
	s.changedList = s.changedList[:0]
}

// eventHeap is a binary min-heap ordered by (time, serial).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].serial < h[j].serial
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h).less(p, i) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h).less(l, small) {
			small = l
		}
		if r < last && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
