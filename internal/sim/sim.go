// Package sim implements an event-driven gate-level simulator for
// synchronous netlists, the measurement instrument behind all of the
// paper's experiments.
//
// # Cycle semantics
//
// Each call to Step simulates one clock cycle:
//
//  1. Every DFF samples its D input from the settled state of the
//     previous cycle.
//  2. At time 0 of the new cycle, all primary inputs change to the new
//     stimulus vector and all DFF outputs change to their sampled values
//     ("new input bits always arrive at the beginning of a clock cycle").
//  3. The combinational network settles by discrete-event propagation
//     under the configured delay model.
//
// # Transition semantics
//
// A net transition is a change of the net's settled value between two
// consecutive time instants: all writes to a net within one instant are
// coalesced and a single OnChange is reported with the value before and
// after the instant. Zero-width pulses therefore do not count, and
// zero-delay simulation reports at most one transition per net per cycle
// (the glitch-free functional baseline).
//
// # Scheduler and determinism
//
// Pending events are ordered by (time, serial): time is the simulated
// instant, serial a per-simulator counter incremented on every schedule.
// Two interchangeable schedulers realize this order:
//
//   - The calendar queue (default) keeps a power-of-two ring of FIFO
//     buckets indexed by t mod window. Because every per-hop cell delay
//     is smaller than the window, all in-flight events span fewer than
//     window time slots, each bucket holds events of a single absolute
//     time, and FIFO order within a bucket equals serial order. Push and
//     pop are O(1), versus O(log n) for a heap.
//   - The binary heap handles delay models whose per-hop delays exceed
//     the calendar window cap (4096 time units).
//
// Both produce the identical event order, so simulation results — every
// per-net transition, its time, and therefore every activity statistic —
// are bit-identical across schedulers and across runs. Options.Scheduler
// can force a particular kernel; the cross-kernel equivalence test keeps
// the two honest against each other.
//
// # Hot-path layout
//
// New first compiles the netlist into a Compiled: flat CSR-style arrays
// of cell types, input/output net IDs and deduplicated per-net fanout
// lists. The event loop touches only these contiguous arrays, never the
// pointer-rich netlist structures. A Compiled is immutable and can be
// shared by many Simulators concurrently — the batch measurement layer
// compiles each circuit once per process, not once per goroutine. When
// no Monitor is attached, the per-instant change-coalescing bookkeeping
// is skipped entirely.
package sim

import (
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// Mode selects how a cell output reacts to input changes arriving while a
// previous output change is still in flight.
type Mode uint8

const (
	// Transport delay propagates every pulse, however narrow. This is
	// the model behind the paper's unit-delay glitch counts.
	Transport Mode = iota
	// Inertial delay swallows pulses narrower than the cell delay, as a
	// real gate's output capacitance would.
	Inertial
)

// String names the mode.
func (m Mode) String() string {
	if m == Inertial {
		return "inertial"
	}
	return "transport"
}

// Scheduler selects the pending-event queue implementation.
type Scheduler uint8

const (
	// SchedulerAuto picks the calendar queue when the delay model's
	// per-hop delays fit its window cap, the heap otherwise.
	SchedulerAuto Scheduler = iota
	// SchedulerCalendar forces the O(1) calendar queue (the window grows
	// to cover the delay model's largest per-hop delay).
	SchedulerCalendar
	// SchedulerHeap forces the O(log n) binary-heap queue.
	SchedulerHeap
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedulerCalendar:
		return "calendar"
	case SchedulerHeap:
		return "heap"
	default:
		return "auto"
	}
}

// maxCalendarWindow caps the calendar ring size SchedulerAuto is willing
// to allocate; delay models with larger per-hop delays fall back to the
// heap.
const maxCalendarWindow = 1 << 12

// Options configures a Simulator.
type Options struct {
	// Delay is the propagation-delay model. Nil means unit delay.
	Delay delay.Model
	// Delays, when non-nil, is the precompiled form of Delay for the
	// simulator's Compiled netlist (see NewDelayTable) and must have been
	// built from the same Compiled and an equivalent model. It lets a
	// measurement resolve a delay model once and share the table across
	// every kernel it constructs; when nil, constructors build their own.
	Delays *DelayTable
	// Mode selects transport (default) or inertial delay handling.
	Mode Mode
	// MaxTimePerCycle guards against runaway event cascades; Step fails
	// if the network has not settled by this time. 0 means 1<<16.
	MaxTimePerCycle int
	// Scheduler selects the event-queue kernel (default SchedulerAuto).
	// All schedulers produce bit-identical simulation results.
	Scheduler Scheduler
	// Cancel, when non-nil, is polled from the event loop roughly every
	// cancelCheckInterval events (the poll counter persists across Steps,
	// so even circuits with few events per cycle are checked regularly).
	// A non-nil return aborts the current Step with that error after
	// discarding all in-flight events — this is how context cancellation
	// reaches a running simulation. It must be cheap and side-effect
	// free; the measurement layer passes ctx.Err.
	Cancel func() error
	// Budget bounds the simulator's resource consumption; the zero value
	// is unlimited. Budgets ride the same periodic poll as Cancel and
	// abort Step with a *BudgetError (see Budget for the overshoot
	// semantics).
	Budget Budget
}

// cancelCheckInterval is the number of processed events between two
// Cancel polls: frequent enough that cancellation lands within
// microseconds of simulated work, rare enough to stay invisible on the
// hot path.
const cancelCheckInterval = 4096

// Monitor observes net value changes. Implementations include the
// activity counter (package core) and the VCD writer (package vcd).
type Monitor interface {
	// OnChange reports that net settled from old to new at time t of the
	// given cycle. old may be logic.X during start-up.
	OnChange(net netlist.NetID, cycle, t int, old, new logic.V)
	// OnCycleEnd reports that the network has settled for the cycle.
	OnCycleEnd(cycle int)
}

// Change is one coalesced per-instant net transition, as delivered to
// BatchMonitors.
type Change struct {
	Net      netlist.NetID
	Old, New logic.V
}

// BatchMonitor is an optional extension a Monitor can implement to
// receive all transitions of one time instant in a single call instead
// of one OnChange call each — one dynamic dispatch per instant rather
// than per transition on the simulation hot path. The changes slice is
// reused across calls and must not be retained. OnChange is not called
// for monitors implementing BatchMonitor; OnCycleEnd still is.
type BatchMonitor interface {
	Monitor
	OnChangeBatch(cycle, t int, changes []Change)
}

// Simulator drives one netlist. It is not safe for concurrent use, but
// any number of Simulators may share one Compiled netlist.
type Simulator struct {
	c     *Compiled
	dm    delay.Model
	mode  Mode
	guard int

	values []logic.V
	ffQ    []logic.V // sampled Q, indexed like Compiled.dffCells
	delays []int32   // per cell-output key, precomputed from the model

	wq         *waveQueue            // uniform-delay scheduler; nil unless active
	cal        *calendarQueue[event] // O(1) scheduler; nil unless active
	hq         *heapQueue            // fallback scheduler; nil unless active
	serial     uint64
	pending    []int32  // in-flight events per net
	lastSerial []uint64 // per cell-output key, for inertial cancellation

	coalesce    bool          // multi-batch instants possible (some delay is 0)
	changed     []changeState // per net: flush epoch + pre-instant value
	flushEpoch  int32
	changedList []netlist.NetID
	changeBuf   []Change

	touchEpoch []int32
	epoch      int32
	touched    []netlist.CellID

	monitors  []Monitor      // monitors without batch support
	batchMons []BatchMonitor // monitors taking per-instant batches
	cycle     int
	settle    int    // settle time of the most recent cycle
	events    uint64 // total events processed

	poll pollState // periodic cancellation + budget check

	evalIn  []logic.V
	evalOut [outputsPerCell]logic.V
}

// New returns a Simulator for the netlist. The netlist must be valid (see
// netlist.Validate); New panics otherwise, since simulating an invalid
// netlist produces meaningless activity numbers.
func New(n *netlist.Netlist, opts Options) *Simulator {
	return NewFromCompiled(Compile(n), opts)
}

// NewFromCompiled returns a Simulator running on a previously compiled
// netlist, skipping validation and compilation. This is the constructor
// the batch layer uses: one Compile, many concurrent simulators.
func NewFromCompiled(c *Compiled, opts Options) *Simulator {
	dm := opts.Delay
	if dm == nil {
		dm = delay.Unit()
	}
	guard := opts.MaxTimePerCycle
	if guard == 0 {
		guard = 1 << 16
	}
	// Delay models are deterministic, so per-output delays are resolved
	// once, into the table shared with the word-parallel kernels, and the
	// event loop never makes an interface call.
	dt := opts.Delays
	if dt == nil {
		dt = NewDelayTable(c, dm)
	}
	n := c.n
	nc, nn := n.NumCells(), n.NumNets()
	s := &Simulator{
		c:          c,
		dm:         dm,
		mode:       opts.Mode,
		guard:      guard,
		values:     make([]logic.V, nn),
		ffQ:        make([]logic.V, len(c.dffCells)),
		delays:     dt.delays,
		pending:    make([]int32, nn),
		lastSerial: make([]uint64, outputsPerCell*nc),
		changed:    make([]changeState, nn),
		flushEpoch: 1,
		touchEpoch: make([]int32, nc),
		evalIn:     make([]logic.V, c.maxIn),
	}
	s.poll.init(opts)
	copy(s.values, c.initVals)
	for i := range s.ffQ {
		s.ffQ[i] = logic.L0
	}

	// With every delay >= 1, an instant consists of exactly one event
	// batch and each net (single driver pin, fixed per-pin delay) changes
	// at most once per instant, so transitions can be recorded directly
	// as they commit. Zero-delay pins re-schedule within the instant and
	// need the full per-instant coalescing machinery.
	s.coalesce = dt.Min() == 0

	switch opts.Scheduler {
	case SchedulerHeap:
		s.hq = newHeapQueue()
	case SchedulerCalendar:
		s.cal = newCalendarQueue[event](dt.Max())
	default:
		switch {
		case dt.Min() == dt.Max():
			// Uniform delay model (the paper's unit-delay experiments):
			// all in-flight events share one time, no ring needed.
			s.wq = newWaveQueue()
		case dt.Max()+2 <= maxCalendarWindow:
			s.cal = newCalendarQueue[event](dt.Max())
		default:
			s.hq = newHeapQueue()
		}
	}
	return s
}

// KernelName names the scheduler kernel this simulator runs on, for
// diagnostics and the measurement layer's kernel reporting.
func (s *Simulator) KernelName() string {
	switch {
	case s.wq != nil:
		return "wave"
	case s.cal != nil:
		return "calendar"
	default:
		return "heap"
	}
}

// AttachMonitor registers a monitor for subsequent cycles.
func (s *Simulator) AttachMonitor(m Monitor) {
	if bm, ok := m.(BatchMonitor); ok {
		s.batchMons = append(s.batchMons, bm)
		return
	}
	s.monitors = append(s.monitors, m)
}

// DetachMonitors removes all monitors.
func (s *Simulator) DetachMonitors() { s.monitors, s.batchMons = nil, nil }

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.c.n }

// Cycle returns the number of completed cycles.
func (s *Simulator) Cycle() int { return s.cycle }

// SettleTime returns the time at which the most recent cycle settled.
func (s *Simulator) SettleTime() int { return s.settle }

// Events returns the total number of scheduler events processed since
// construction, the raw workload measure behind events/sec throughput.
func (s *Simulator) Events() uint64 { return s.events }

// Value returns the settled value of a net.
func (s *Simulator) Value(id netlist.NetID) logic.V { return s.values[id] }

// BusValue returns the settled values of a bus (LSB first).
func (s *Simulator) BusValue(bus []netlist.NetID) logic.Vector {
	v := make(logic.Vector, len(bus))
	for i, id := range bus {
		v[i] = s.values[id]
	}
	return v
}

// Outputs returns the settled primary-output vector.
func (s *Simulator) Outputs() logic.Vector { return s.BusValue(s.c.n.POs) }

// Step simulates one clock cycle with the given primary-input vector
// (aligned with the netlist's PIs). It returns an error if the network
// fails to settle within the configured guard time; the simulator
// discards all in-flight events before reporting it.
//
//glitchsim:hotpath
func (s *Simulator) Step(pi logic.Vector) error {
	if len(pi) != len(s.c.n.PIs) {
		panic(fmt.Sprintf("sim: stimulus width %d, netlist has %d inputs", len(pi), len(s.c.n.PIs)))
	}

	// 1. Sample DFF D inputs from the previous cycle's settled state. An
	// unknown D holds the flipflop's current (reset) state, so circuits
	// always leave X within a few cycles.
	for i, d := range s.c.dffD {
		if v := s.values[d]; v.Known() {
			s.ffQ[i] = v
		}
	}

	// 2. Inject PI changes and DFF Q updates at t=0.
	if s.cal != nil {
		s.cal.reset()
	}
	for i, id := range s.c.n.PIs {
		s.schedule(0, id, pi[i], -1)
	}
	for i, q := range s.c.dffQ {
		s.schedule(0, q, s.ffQ[i], -1)
	}

	// 3. Propagate.
	if s.flushEpoch >= 1<<31-1 {
		// Same wrap guard as applyBatch, for the per-net change stamps.
		for i := range s.changed {
			s.changed[i].epoch = 0
		}
		s.flushEpoch = 1
	}
	if err := s.run(); err != nil {
		return err
	}
	for _, m := range s.batchMons {
		m.OnCycleEnd(s.cycle)
	}
	for _, m := range s.monitors {
		m.OnCycleEnd(s.cycle)
	}
	s.cycle++
	return nil
}

//glitchsim:hotpath
func (s *Simulator) schedule(t int, net netlist.NetID, v logic.V, key int32) {
	// Skip no-ops: the value already holds and nothing is in flight.
	if v == s.values[net] && s.pending[net] == 0 {
		if key >= 0 {
			s.lastSerial[key] = 0 // cancel any stale inertial claim
		}
		return
	}
	s.serial++
	if key >= 0 && s.mode == Inertial {
		s.lastSerial[key] = s.serial
	}
	s.pending[net]++
	e := event{time: int32(t), serial: s.serial, net: net, val: v, key: key}
	switch {
	case s.wq != nil:
		s.wq.push(e)
	case s.cal != nil:
		s.cal.push(t, e)
	default:
		s.hq.push(e)
	}
}

//glitchsim:hotpath
func (s *Simulator) run() error {
	flushAt := -1
	for !s.queueEmpty() {
		t := s.queueNextTime()
		if t > s.guard {
			nets := s.hotNets()
			s.discardInFlight()
			return newOscillationError(s.c.n, s.cycle, s.guard, nets)
		}
		if flushAt >= 0 && t > flushAt {
			s.flush(flushAt)
		}
		flushAt = t
		s.applyBatch(t)
		s.evalTouched(t)
		if s.poll.due(s.events) {
			if err := s.poll.poll(s.events, s.cycle); err != nil {
				s.discardInFlight()
				return err
			}
		}
	}
	if flushAt >= 0 {
		s.flush(flushAt)
		s.settle = flushAt
	} else {
		s.settle = 0
	}
	return nil
}

// hotNets collects up to maxHotNets nets with events still in flight —
// the nets feeding the unsettled cascade a guard trip reports.
func (s *Simulator) hotNets() []netlist.NetID {
	var nets []netlist.NetID
	for net, n := range s.pending {
		if n > 0 {
			nets = append(nets, netlist.NetID(net))
			if len(nets) == maxHotNets {
				break
			}
		}
	}
	return nets
}

// discardInFlight clears all pending events and per-cycle bookkeeping so
// a Step after a guard error starts from a consistent (if functionally
// stale) state instead of corrupting the queue.
func (s *Simulator) discardInFlight() {
	switch {
	case s.wq != nil:
		s.wq.clear()
	case s.cal != nil:
		s.cal.clear()
	default:
		s.hq.clear()
	}
	for i := range s.pending {
		s.pending[i] = 0
	}
	s.flushEpoch++
	s.changedList = s.changedList[:0]
	s.changeBuf = s.changeBuf[:0]
	s.touched = s.touched[:0]
}

// changeState tracks one net's membership in the current instant's
// changed set: epoch matches flushEpoch while the net is in changedList,
// and init holds its value from before the instant.
type changeState struct {
	epoch int32
	init  logic.V
}

// applyBatch pops and applies every event at time t, recording per-net
// initial values (when a monitor is attached) and marking affected
// combinational cells.
//
//glitchsim:hotpath
func (s *Simulator) applyBatch(t int) {
	if s.epoch == 1<<31-1 {
		// The 32-bit epoch stamp is about to wrap: invalidate all stale
		// stamps so old epochs can never alias new ones. Amortized cost
		// is one clear per ~2^31 instants.
		clear(s.touchEpoch)
		s.epoch = 0
	}
	s.epoch++
	epoch := s.epoch
	var batch []event
	switch {
	case s.wq != nil:
		batch = s.wq.popBatch(t)
	case s.cal != nil:
		batch = s.cal.popBatch(t)
	default:
		batch = s.hq.popBatch(t)
	}
	s.events += uint64(len(batch))
	monitored := len(s.monitors) > 0 || len(s.batchMons) > 0
	inertial := s.mode == Inertial
	fanStart, fanCells := s.c.fanStart, s.c.fanCells
	values, pending, touchEpoch := s.values, s.pending, s.touchEpoch
	flushEpoch := s.flushEpoch
	for i := range batch {
		e := &batch[i]
		pending[e.net]--
		if e.key >= 0 && inertial && s.lastSerial[e.key] != e.serial {
			continue // cancelled by a later evaluation of the same output
		}
		if values[e.net] == e.val {
			continue
		}
		if monitored {
			if !s.coalesce {
				s.changeBuf = append(s.changeBuf, Change{Net: e.net, Old: values[e.net], New: e.val})
			} else if s.changed[e.net].epoch != flushEpoch {
				s.changed[e.net] = changeState{epoch: flushEpoch, init: values[e.net]}
				s.changedList = append(s.changedList, e.net)
			}
		}
		values[e.net] = e.val
		for _, cid := range fanCells[fanStart[e.net]:fanStart[e.net+1]] {
			if touchEpoch[cid] != epoch {
				touchEpoch[cid] = epoch
				s.touched = append(s.touched, cid)
			}
		}
	}
}

// evalTouched re-evaluates every cell whose inputs changed at time t and
// schedules the resulting output changes.
//
//glitchsim:hotpath
func (s *Simulator) evalTouched(t int) {
	c := s.c
	values, pending := s.values, s.pending
	transport := s.mode != Inertial
	for _, cid := range s.touched {
		o0, o1, twoOut := s.evalCell(cid)
		base := outputsPerCell * int(cid)
		// The no-op elision check from schedule is inlined here for
		// transport mode, where the common already-settled case needs no
		// inertial-claim bookkeeping.
		if o := c.outNets[base]; o != netlist.NoNet {
			if !transport || o0 != values[o] || pending[o] != 0 {
				s.schedule(t+int(s.delays[base]), o, o0, int32(base))
			}
		}
		if twoOut {
			if o := c.outNets[base+1]; o != netlist.NoNet {
				if !transport || o1 != values[o] || pending[o] != 0 {
					s.schedule(t+int(s.delays[base+1]), o, o1, int32(base+1))
				}
			}
		}
	}
	s.touched = s.touched[:0]
}

//glitchsim:hotpath
func (s *Simulator) queueEmpty() bool {
	switch {
	case s.wq != nil:
		return s.wq.empty()
	case s.cal != nil:
		return s.cal.empty()
	default:
		return s.hq.empty()
	}
}

//glitchsim:hotpath
func (s *Simulator) queueNextTime() int {
	switch {
	case s.wq != nil:
		return s.wq.nextTime()
	case s.cal != nil:
		return s.cal.nextTime()
	default:
		return s.hq.nextTime()
	}
}

// flush reports the instant's transitions to the monitors. On the
// coalescing path the per-net change records are first folded into the
// change buffer, dropping zero-width excursions; on the direct path the
// buffer was already filled as values committed.
//
//glitchsim:hotpath
func (s *Simulator) flush(t int) {
	if s.coalesce {
		buf := s.changeBuf[:0]
		for _, net := range s.changedList {
			init := s.changed[net].init
			final := s.values[net]
			if init == final {
				continue // zero-width excursion within one instant
			}
			buf = append(buf, Change{Net: net, Old: init, New: final})
		}
		s.changeBuf = buf
		s.flushEpoch++
		s.changedList = s.changedList[:0]
	}
	if len(s.changeBuf) > 0 {
		for _, m := range s.batchMons {
			m.OnChangeBatch(s.cycle, t, s.changeBuf)
		}
		for _, m := range s.monitors {
			for i := range s.changeBuf {
				ch := &s.changeBuf[i]
				m.OnChange(ch.Net, s.cycle, t, ch.Old, ch.New)
			}
		}
	}
	s.changeBuf = s.changeBuf[:0]
}
