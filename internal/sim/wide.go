package sim

// The word-parallel (parallel-pattern) kernel: one simulation advancing
// logic.Lanes (64) independent stimulus lanes at once. Every net holds a
// packed logic.W — one three-valued level per lane — and cell evaluation
// is the branch-free bitwise form from internal/logic, cross-checked at
// init against the scalar truth tables.
//
// The kernel requires a uniform delay model (every combinational output
// has one common delay d >= 1, e.g. the paper's unit delay): then every
// lane's event at a given net occurs at the same instant, all in-flight
// events share one absolute time, and the whole simulation advances in
// lockstep wavefronts t, t+d, t+2d, … exactly like the scalar wave
// scheduler. Because d >= 1 each instant consists of a single wave and
// each net changes at most once per instant, so no per-instant
// coalescing is needed: a popped event is always a real change in at
// least one lane.
//
// Lane l of a wide simulation is bit-identical to a scalar simulation
// driven with lane l's stimulus: per-lane evaluation is identical by the
// init-time cross-check, and the wavefront order is the scalar wave
// scheduler's order. TestWideKernelEquivalence enforces this against 64
// merged scalar runs for every built-in circuit.

import (
	"errors"
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// MaxLanes is the number of stimulus lanes one WideSimulator advances
// per step: the machine word width.
const MaxLanes = logic.Lanes

// ErrNonUniformDelay reports that a delay model is outside the lockstep
// wide kernel's reach: it needs one common per-output delay >= 1. The
// event-driven WideEventSimulator handles every delay model, so callers
// seeing this error switch kernels, not word widths (NewWideKernel does
// the switch for them).
var ErrNonUniformDelay = errors.New("sim: lockstep wide kernel requires a uniform delay model with delay >= 1")

// UniformDelay reports whether the delay model assigns one common delay
// to every connected output pin of every combinational cell of the
// compiled netlist, and returns that delay. A netlist with no
// combinational outputs is trivially uniform with delay 1. This is the
// eligibility check for the lockstep word-parallel kernel (which
// additionally requires the delay to be >= 1, so that instants never
// merge). It folds the model through the same delay.VisitOutputs walk
// as table construction — without building a table, so pure kernel
// prediction (Engine.SelectedKernel) stays allocation-free — and thus
// can never disagree with the kernels about which pins a model is asked
// about.
func UniformDelay(c *Compiled, dm delay.Model) (int, bool) {
	if dm == nil {
		dm = delay.Unit()
	}
	min, max := delay.Bounds(c.n, dm)
	if min != max {
		return 0, false
	}
	return min, true
}

// WideChange is one net transition of one wavefront, carrying the packed
// before/after values of all lanes.
type WideChange struct {
	Net      netlist.NetID
	Old, New logic.W
}

// WideMonitor observes wide net changes. The canonical implementation is
// core.WideCounter, which classifies per-lane transitions with popcount
// arithmetic. The changes slice passed to OnWideChanges is reused across
// wavefronts and must not be retained.
type WideMonitor interface {
	OnWideChanges(cycle, t int, changes []WideChange)
	OnCycleEnd(cycle int)
}

// WideKernel is the common face of the two word-parallel kernels: the
// lockstep WideSimulator (uniform delay models) and the event-driven
// WideEventSimulator (everything else). The measurement layer drives
// whichever NewWideKernel hands it through this interface.
type WideKernel interface {
	// Step simulates one clock cycle for all lanes (see the concrete
	// kernels' Step docs).
	Step(pi []logic.W) error
	// AttachWideMonitor registers a monitor for subsequent cycles.
	AttachWideMonitor(m WideMonitor)
	// DetachWideMonitors removes all monitors.
	DetachWideMonitors()
	// Events returns the number of word events processed (each spans all
	// lanes of one net).
	Events() uint64
	// Cycle returns the number of completed cycles.
	Cycle() int
	// KernelName names the kernel ("wide-lockstep" or "wide-event").
	KernelName() string
	// ExportState appends the kernel's packed net values to dst and
	// returns it. Valid only at a cycle boundary (between Step calls),
	// where the net values are the kernel's entire dynamic state: all
	// event queues are empty and flip-flop sampling state is derivable
	// from the Q nets. The measurement checkpoint layer serializes this.
	ExportState(dst []logic.W) []logic.W
	// ImportState overwrites the kernel's net values with vals (length
	// NumNets) and sets the completed-cycle count, re-deriving all
	// internal caches. The next Step continues exactly as if the kernel
	// had simulated to that boundary itself.
	ImportState(vals []logic.W, cycle int)
}

// NewWideKernel returns the fastest word-parallel kernel for the
// options' delay model: the lockstep wavefront kernel when the model is
// uniform with delay >= 1, the event-driven masked kernel for every
// other model (unequal per-cell delays, zero delays, inertial mode).
// Every delay model is word-parallel simulatable, so unlike NewWide this
// cannot fail.
func NewWideKernel(c *Compiled, opts Options) WideKernel {
	if opts.Delays == nil {
		opts.Delays = NewDelayTable(c, opts.Delay)
	}
	if ws, err := NewWide(c, opts); err == nil {
		return ws
	}
	return NewWideEvent(c, opts)
}

// wideEvent is one scheduled net update: all lanes of net take val at
// the wavefront the event was scheduled for.
type wideEvent struct {
	net netlist.NetID
	val logic.W
}

// WideSimulator drives one netlist for MaxLanes independent stimulus
// lanes at once. Like Simulator it is not safe for concurrent use, but
// any number may share one Compiled netlist.
type WideSimulator struct {
	c     *Compiled
	d     int // the uniform per-output delay, >= 1
	guard int

	values []logic.W
	ffQ    []logic.W // sampled Q, indexed like Compiled.dffCells

	wave, next []wideEvent
	changes    []WideChange

	touchEpoch []int32
	epoch      int32
	touched    []netlist.CellID

	monitors []WideMonitor
	cycle    int
	settle   int
	events   uint64 // word events processed (each spans all lanes)

	poll pollState // periodic cancellation + budget check

	evalIn  logic.Vector // per-lane scratch for the reference fallback
	evalOut [outputsPerCell]logic.V
}

// NewWide returns a word-parallel simulator for a compiled netlist. It
// fails with ErrNonUniformDelay when the options' delay model is not
// uniform with delay >= 1 — callers fall back to the scalar kernel.
// Transport and inertial modes coincide under a uniform delay (no pulse
// is ever narrower than a cell delay), so Options.Mode is accepted but
// has no effect; Options.Scheduler is ignored (the wavefront is the
// schedule).
func NewWide(c *Compiled, opts Options) (*WideSimulator, error) {
	dm := opts.Delay
	if dm == nil {
		dm = delay.Unit()
	}
	dt := opts.Delays
	if dt == nil {
		dt = NewDelayTable(c, dm)
	}
	d, ok := dt.Uniform()
	if !ok || d < 1 {
		return nil, fmt.Errorf("%w (model %s)", ErrNonUniformDelay, dm.Name())
	}
	guard := opts.MaxTimePerCycle
	if guard == 0 {
		guard = 1 << 16
	}
	nc, nn := c.n.NumCells(), c.n.NumNets()
	s := &WideSimulator{
		c:          c,
		d:          d,
		guard:      guard,
		values:     make([]logic.W, nn),
		ffQ:        make([]logic.W, len(c.dffCells)),
		touchEpoch: make([]int32, nc),
		evalIn:     make(logic.Vector, c.maxIn),
	}
	s.poll.init(opts)
	for i, v := range c.initVals {
		s.values[i] = logic.SplatW(v)
	}
	for i := range s.ffQ {
		s.ffQ[i] = logic.SplatW(logic.L0)
	}
	return s, nil
}

// AttachWideMonitor registers a monitor for subsequent cycles.
func (s *WideSimulator) AttachWideMonitor(m WideMonitor) { s.monitors = append(s.monitors, m) }

// DetachWideMonitors removes all monitors.
func (s *WideSimulator) DetachWideMonitors() { s.monitors = nil }

// Netlist returns the simulated netlist.
func (s *WideSimulator) Netlist() *netlist.Netlist { return s.c.n }

// Cycle returns the number of completed cycles.
func (s *WideSimulator) Cycle() int { return s.cycle }

// SettleTime returns the time of the last wavefront of the most recent
// cycle.
func (s *WideSimulator) SettleTime() int { return s.settle }

// Events returns the total number of word events processed; each word
// event updates all lanes of one net at one instant.
func (s *WideSimulator) Events() uint64 { return s.events }

// Delay returns the uniform per-output delay the kernel advances by.
func (s *WideSimulator) Delay() int { return s.d }

// KernelName implements WideKernel.
func (s *WideSimulator) KernelName() string { return "wide-lockstep" }

// Value returns the packed settled value of a net.
func (s *WideSimulator) Value(id netlist.NetID) logic.W { return s.values[id] }

// Step simulates one clock cycle for all lanes: pi holds, per primary
// input, the packed per-lane stimulus bits (aligned with the netlist's
// PIs). It returns an error if the network fails to settle within the
// guard time in any lane; all in-flight events are discarded first.
//
//glitchsim:hotpath
func (s *WideSimulator) Step(pi []logic.W) error {
	if len(pi) != len(s.c.n.PIs) {
		panic(fmt.Sprintf("sim: stimulus width %d, netlist has %d inputs", len(pi), len(s.c.n.PIs)))
	}

	// 1. Sample DFF D inputs lane-wise: lanes with a known D take it,
	// lanes still at X hold the flipflop's current state — the per-lane
	// image of the scalar rule.
	for i, d := range s.c.dffD {
		v := s.values[d]
		k := v.Zero | v.One
		q := &s.ffQ[i]
		q.Zero = (v.Zero & k) | (q.Zero &^ k)
		q.One = (v.One & k) | (q.One &^ k)
	}

	// 2. Inject PI changes and DFF Q updates at t=0.
	for i, id := range s.c.n.PIs {
		s.push(id, pi[i])
	}
	for i, q := range s.c.dffQ {
		s.push(q, s.ffQ[i])
	}

	// 3. Advance wavefronts t = 0, d, 2d, … until no lane changes.
	t, settle := 0, 0
	for len(s.next) > 0 {
		if t > s.guard {
			nets := make([]netlist.NetID, 0, maxHotNets)
			for i := range s.next {
				// A net appears at most once per wave (single driver), so
				// the pending wave needs no dedup.
				if nets = append(nets, s.next[i].net); len(nets) == maxHotNets {
					break
				}
			}
			s.discardInFlight()
			return newOscillationError(s.c.n, s.cycle, s.guard, nets)
		}
		s.wave, s.next = s.next, s.wave[:0]
		s.applyWave(t)
		s.evalTouched()
		settle = t
		t += s.d
		if s.poll.due(s.events) {
			if err := s.poll.poll(s.events, s.cycle); err != nil {
				s.discardInFlight()
				return err
			}
		}
	}
	s.settle = settle
	for _, m := range s.monitors {
		m.OnCycleEnd(s.cycle)
	}
	s.cycle++
	return nil
}

// push schedules a net update for the next wavefront unless no lane
// would change. A net's value cannot change between push and pop (its
// single driver evaluates at most once per wave), so every queued event
// is a real change when it applies.
//
//glitchsim:hotpath
func (s *WideSimulator) push(net netlist.NetID, v logic.W) {
	if v == s.values[net] {
		return
	}
	s.next = append(s.next, wideEvent{net: net, val: v})
}

// applyWave commits every event of the current wavefront, reports the
// changes, and marks the fanout cells for re-evaluation.
//
//glitchsim:hotpath
func (s *WideSimulator) applyWave(t int) {
	if s.epoch == 1<<31-1 {
		clear(s.touchEpoch)
		s.epoch = 0
	}
	s.epoch++
	epoch := s.epoch
	s.events += uint64(len(s.wave))
	monitored := len(s.monitors) > 0
	fanStart, fanCells := s.c.fanStart, s.c.fanCells
	values, touchEpoch := s.values, s.touchEpoch
	for i := range s.wave {
		e := &s.wave[i]
		if monitored {
			s.changes = append(s.changes, WideChange{Net: e.net, Old: values[e.net], New: e.val})
		}
		values[e.net] = e.val
		for _, cid := range fanCells[fanStart[e.net]:fanStart[e.net+1]] {
			if touchEpoch[cid] != epoch {
				touchEpoch[cid] = epoch
				s.touched = append(s.touched, cid)
			}
		}
	}
	if len(s.changes) > 0 {
		for _, m := range s.monitors {
			m.OnWideChanges(s.cycle, t, s.changes)
		}
		s.changes = s.changes[:0]
	}
}

// evalTouched re-evaluates every cell with a changed input and schedules
// the outputs that differ in at least one lane.
//
//glitchsim:hotpath
func (s *WideSimulator) evalTouched() {
	c := s.c
	for _, cid := range s.touched {
		o0, o1, twoOut := evalCellWide(c, s.values, &s.evalIn, &s.evalOut, cid)
		base := outputsPerCell * int(cid)
		if o := c.outNets[base]; o != netlist.NoNet {
			s.push(o, o0)
		}
		if twoOut {
			if o := c.outNets[base+1]; o != netlist.NoNet {
				s.push(o, o1)
			}
		}
	}
	s.touched = s.touched[:0]
}

// ExportState implements WideKernel: at a cycle boundary the settled
// net values are the lockstep kernel's entire dynamic state (wave/next
// are empty after Step returns, and ffQ was pushed onto the Q nets —
// which each flip-flop drives alone — so ffQ[i] == values[dffQ[i]]).
func (s *WideSimulator) ExportState(dst []logic.W) []logic.W {
	return append(dst, s.values...)
}

// ImportState implements WideKernel: it restores the settled net values
// captured by ExportState, re-derives the flip-flop sample registers
// from their Q nets, and resets per-cycle bookkeeping.
func (s *WideSimulator) ImportState(vals []logic.W, cycle int) {
	if len(vals) != len(s.values) {
		panic(fmt.Sprintf("sim: imported state has %d nets, netlist has %d", len(vals), len(s.values)))
	}
	copy(s.values, vals)
	for i, q := range s.c.dffQ {
		s.ffQ[i] = s.values[q]
	}
	s.discardInFlight()
	s.cycle = cycle
}

// discardInFlight clears all pending events and per-cycle bookkeeping so
// a Step after a guard or cancellation error starts from a consistent
// (if functionally stale) state.
func (s *WideSimulator) discardInFlight() {
	s.wave = s.wave[:0]
	s.next = s.next[:0]
	s.changes = s.changes[:0]
	s.touched = s.touched[:0]
}

// evalCellWide computes a cell's packed outputs from the current net
// values: the word-parallel image of the scalar evalCell, built from the
// init-cross-checked wide ops in internal/logic. It is the shared eval
// core of both wide kernels (lockstep and event-driven); evalIn/evalOut
// are the caller's scratch for the reference fallback.
//
//glitchsim:hotpath
func evalCellWide(c *Compiled, v []logic.W, evalIn *logic.Vector, evalOut *[outputsPerCell]logic.V, cid netlist.CellID) (o0, o1 logic.W, twoOut bool) {
	in := c.inNets[c.inStart[cid]:c.inStart[cid+1]]
	switch c.cellType[cid] {
	case netlist.FA:
		sum, cout := logic.FullAddW(v[in[0]], v[in[1]], v[in[2]])
		return sum, cout, true
	case netlist.HA:
		sum, cout := logic.HalfAddW(v[in[0]], v[in[1]])
		return sum, cout, true
	case netlist.And:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.AndW(r, v[id])
		}
		return r, logic.W{}, false
	case netlist.Nand:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.AndW(r, v[id])
		}
		return logic.NotW(r), logic.W{}, false
	case netlist.Or:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.OrW(r, v[id])
		}
		return r, logic.W{}, false
	case netlist.Nor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.OrW(r, v[id])
		}
		return logic.NotW(r), logic.W{}, false
	case netlist.Xor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.XorW(r, v[id])
		}
		return r, logic.W{}, false
	case netlist.Xnor:
		r := v[in[0]]
		for _, id := range in[1:] {
			r = logic.XorW(r, v[id])
		}
		return logic.NotW(r), logic.W{}, false
	case netlist.Not:
		return logic.NotW(v[in[0]]), logic.W{}, false
	case netlist.Buf:
		return v[in[0]], logic.W{}, false
	case netlist.Mux2:
		return logic.MuxW(v[in[2]], v[in[0]], v[in[1]]), logic.W{}, false
	case netlist.Maj3:
		return logic.Maj3W(v[in[0]], v[in[1]], v[in[2]]), logic.W{}, false
	case netlist.Const0:
		return logic.SplatW(logic.L0), logic.W{}, false
	case netlist.Const1:
		return logic.SplatW(logic.L1), logic.W{}, false
	default:
		// Reference fallback for any future cell type: evaluate each lane
		// with the scalar reference implementation.
		outs := evalOut[:c.outLen[cid]]
		for l := 0; l < MaxLanes; l++ {
			ins := (*evalIn)[:0]
			for _, id := range in {
				ins = append(ins, v[id].Lane(l))
			}
			netlist.Eval(c.cellType[cid], ins, outs)
			o0.SetLane(l, outs[0])
			if c.outLen[cid] == 2 {
				o1.SetLane(l, outs[1])
			}
		}
		return o0, o1, c.outLen[cid] == 2
	}
}
