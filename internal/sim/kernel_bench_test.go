package sim_test

import (
	"fmt"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// BenchmarkKernel compares the three event schedulers on the 16x16
// array multiplier with the activity counter attached — the same
// workload as the root package's BenchmarkSimulatorThroughput, but
// compiled once and broken out per kernel. events/s counts scheduler
// events actually processed (Simulator.Events).
func BenchmarkKernel(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	comp := sim.Compile(nl)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"wave-unit", sim.Options{Delay: delay.Unit()}},
		{"calendar-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
		{"calendar-unit", sim.Options{Delay: delay.Unit(), Scheduler: sim.SchedulerCalendar}},
		{"heap-unit", sim.Options{Delay: delay.Unit(), Scheduler: sim.SchedulerHeap}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := sim.NewFromCompiled(comp, tc.opts)
			counter := core.NewCounter(nl)
			s.AttachMonitor(counter)
			src := stimulus.NewRandom(nl.InputWidth(), 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(src.Next()); err != nil {
					b.Fatal(err)
				}
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(s.Events())/secs, "events/s")
			b.ReportMetric(secs*1e9/float64(b.N), "ns/cycle")
		})
	}
}

// BenchmarkWideEventKernel runs the 16x16 array-multiplier workload on
// the lane-masked event-driven word-parallel kernel, per delay-model
// family — the non-uniform models are the configurations only this
// kernel can run word-parallel (compare BenchmarkKernel/calendar-faratio
// for the scalar cost of the same model, and BenchmarkWideKernel for the
// lockstep kernel's uniform-delay ceiling). One iteration is one wide
// Step = 64 simulated cycles.
func BenchmarkWideEventKernel(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	comp := sim.Compile(nl)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
		{"typical", sim.Options{Delay: delay.Typical()}},
		{"unit", sim.Options{}}, // event kernel on a uniform model, for the lockstep comparison
		{"faratio-inertial", sim.Options{Delay: delay.FullAdderRatio(2, 1), Mode: sim.Inertial}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ws := sim.NewWideEvent(comp, tc.opts)
			counter := core.NewWideCounter(nl)
			ws.AttachWideMonitor(counter)
			seeds := make([]uint64, sim.MaxLanes)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
			buf := make([]logic.W, nl.InputWidth())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ws.Step(src.NextWide(buf)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			folded := counter.Counter()
			b.ReportMetric(float64(b.N*sim.MaxLanes)/secs, "lane-cycles/s")
			b.ReportMetric(float64(folded.Totals().Transitions)/secs, "lane-events/s")
			b.ReportMetric(secs*1e9/float64(b.N), "ns/wide-cycle")
		})
	}
}

// BenchmarkWideKernel runs the same 16x16 array-multiplier workload on
// the 64-lane word-parallel kernel with the wide activity counter
// attached. One iteration is one wide Step = 64 simulated cycles;
// lane-cycles/s is directly comparable to BenchmarkKernel's implicit
// cycles/s, and lane-events/s (classified per-lane transitions) to its
// events/s.
func BenchmarkWideKernel(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	comp := sim.Compile(nl)
	for _, lanes := range []int{64, 16} {
		b.Run(fmt.Sprintf("unit-%dlanes", lanes), func(b *testing.B) {
			ws, err := sim.NewWide(comp, sim.Options{Delay: delay.Unit()})
			if err != nil {
				b.Fatal(err)
			}
			counter := core.NewWideCounter(nl)
			if lanes < sim.MaxLanes {
				counter.SetLaneMask(uint64(1)<<uint(lanes) - 1)
			}
			ws.AttachWideMonitor(counter)
			seeds := make([]uint64, lanes)
			for i := range seeds {
				seeds[i] = uint64(i + 1)
			}
			src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
			buf := make([]logic.W, nl.InputWidth())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ws.Step(src.NextWide(buf)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			folded := counter.Counter()
			b.ReportMetric(float64(b.N*lanes)/secs, "lane-cycles/s")
			b.ReportMetric(float64(folded.Totals().Transitions)/secs, "lane-events/s")
			b.ReportMetric(secs*1e9/float64(b.N), "ns/wide-cycle")
		})
	}
}
