package sim_test

import (
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// BenchmarkKernel compares the three event schedulers on the 16x16
// array multiplier with the activity counter attached — the same
// workload as the root package's BenchmarkSimulatorThroughput, but
// compiled once and broken out per kernel. events/s counts scheduler
// events actually processed (Simulator.Events).
func BenchmarkKernel(b *testing.B) {
	nl := circuits.NewArrayMultiplier(16, circuits.Cells)
	comp := sim.Compile(nl)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"wave-unit", sim.Options{Delay: delay.Unit()}},
		{"calendar-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
		{"calendar-unit", sim.Options{Delay: delay.Unit(), Scheduler: sim.SchedulerCalendar}},
		{"heap-unit", sim.Options{Delay: delay.Unit(), Scheduler: sim.SchedulerHeap}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := sim.NewFromCompiled(comp, tc.opts)
			counter := core.NewCounter(nl)
			s.AttachMonitor(counter)
			src := stimulus.NewRandom(nl.InputWidth(), 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(src.Next()); err != nil {
					b.Fatal(err)
				}
			}
			secs := b.Elapsed().Seconds()
			b.ReportMetric(float64(s.Events())/secs, "events/s")
			b.ReportMetric(secs*1e9/float64(b.N), "ns/cycle")
		})
	}
}
