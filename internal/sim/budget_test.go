package sim

// Budget-enforcement and typed-failure tests shared by all three
// kernels: a tripped budget returns *BudgetError with the completed
// cycle count, a tripped settle guard returns *OscillationError naming
// the hot nets, and both leave the simulator consistent enough that a
// subsequent Step works.

import (
	"errors"
	"testing"
	"time"

	"glitchsim/internal/logic"
	"glitchsim/internal/stimulus"
)

// stepper erases the scalar/wide Step signature difference: it advances
// one cycle with a fresh random vector and reports events and completed
// cycles.
type stepper interface {
	step() error
	events() uint64
	cycles() int
}

type scalarStepper struct {
	s   *Simulator
	src stimulus.Source
}

func (st *scalarStepper) step() error    { return st.s.Step(st.src.Next()) }
func (st *scalarStepper) events() uint64 { return st.s.Events() }
func (st *scalarStepper) cycles() int    { return st.s.Cycle() }

type wideStepper struct {
	s   WideKernel
	src stimulus.Source
	pi  []logic.W
}

func (st *wideStepper) step() error {
	v := st.src.Next()
	for i := range st.pi {
		st.pi[i] = logic.SplatW(v[i])
	}
	return st.s.Step(st.pi)
}
func (st *wideStepper) events() uint64 { return st.s.Events() }
func (st *wideStepper) cycles() int    { return st.s.Cycle() }

// buildSteppers constructs the three kernels over the same 8-bit RCA
// with the given options, each with its own equal stimulus stream.
func buildSteppers(t *testing.T, opts Options) map[string]stepper {
	t.Helper()
	n, _ := buildRCA(t, 8)
	c := Compile(n)
	width := n.InputWidth()
	scalar := NewFromCompiled(c, opts)
	lockstep, err := NewWide(c, opts)
	if err != nil {
		t.Fatalf("NewWide: %v", err)
	}
	event := NewWideEvent(c, opts)
	return map[string]stepper{
		"scalar":        &scalarStepper{s: scalar, src: stimulus.NewRandom(width, 7)},
		"wide-lockstep": &wideStepper{s: lockstep, src: stimulus.NewRandom(width, 7), pi: make([]logic.W, width)},
		"wide-event":    &wideStepper{s: event, src: stimulus.NewRandom(width, 7), pi: make([]logic.W, width)},
	}
}

func TestBudgetEventsTripsEveryKernel(t *testing.T) {
	const limit = 300
	for name, st := range buildSteppers(t, Options{Budget: Budget{Events: limit}}) {
		var err error
		steps := 0
		for ; steps < 10000 && err == nil; steps++ {
			err = st.step()
		}
		if err == nil {
			t.Fatalf("%s: budget of %d events never tripped after %d steps", name, limit, steps)
		}
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: error %v is not ErrBudgetExceeded", name, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: error %T is not *BudgetError", name, err)
		}
		if be.Resource != BudgetEvents {
			t.Errorf("%s: resource %q, want %q", name, be.Resource, BudgetEvents)
		}
		if be.Limit != limit || be.Used < limit {
			t.Errorf("%s: limit %d used %d, want limit %d and used >= limit", name, be.Limit, be.Used, limit)
		}
		if be.Used != st.events() {
			t.Errorf("%s: used %d != kernel events %d", name, be.Used, st.events())
		}
		// The failing Step never completed: completed cycles == successful
		// steps == the cycle recorded in the error.
		if be.Cycle != steps-1 || st.cycles() != steps-1 {
			t.Errorf("%s: error cycle %d, kernel cycles %d, successful steps %d", name, be.Cycle, st.cycles(), steps-1)
		}
	}
}

func TestBudgetDeadlineTripsEveryKernel(t *testing.T) {
	// A deadline in the past trips at the first poll. The poll is
	// event-scheduled, so it takes a few cycles of an 8-bit RCA to reach
	// the first interval boundary.
	deadline := time.Now().Add(-time.Second)
	for name, st := range buildSteppers(t, Options{Budget: Budget{Deadline: deadline}}) {
		var err error
		for steps := 0; steps < 10000 && err == nil; steps++ {
			err = st.step()
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: expected *BudgetError, got %v", name, err)
		}
		if be.Resource != BudgetWallClock {
			t.Errorf("%s: resource %q, want %q", name, be.Resource, BudgetWallClock)
		}
	}
}

func TestBudgetErrorLeavesKernelSteppable(t *testing.T) {
	for name, st := range buildSteppers(t, Options{Budget: Budget{Events: 100}}) {
		var err error
		for steps := 0; steps < 10000 && err == nil; steps++ {
			err = st.step()
		}
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("%s: expected budget trip, got %v", name, err)
		}
		// The budget stays exhausted, so the next step must fail again
		// with the same typed error — not panic or wedge.
		if err := st.step(); !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("%s: step after trip: %v, want ErrBudgetExceeded", name, err)
		}
	}
}

func TestOscillationErrorTypedEveryKernel(t *testing.T) {
	// An 8-bit RCA under unit delay needs up to 8 time units to ripple;
	// a guard of 2 trips mid-carry-chain on a full ripple.
	for name, st := range buildSteppers(t, Options{MaxTimePerCycle: 2}) {
		var err error
		for steps := 0; steps < 100 && err == nil; steps++ {
			err = st.step()
		}
		if err == nil {
			t.Fatalf("%s: guard of 2 never tripped", name)
		}
		if !errors.Is(err, ErrOscillation) {
			t.Fatalf("%s: error %v is not ErrOscillation", name, err)
		}
		var oe *OscillationError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error %T is not *OscillationError", name, err)
		}
		if oe.Guard != 2 {
			t.Errorf("%s: guard %d, want 2", name, oe.Guard)
		}
		if oe.Circuit != "rca" {
			t.Errorf("%s: circuit %q, want rca", name, oe.Circuit)
		}
		if len(oe.Nets) == 0 || len(oe.Nets) != len(oe.Names) {
			t.Errorf("%s: hot nets %v names %v: want non-empty and aligned", name, oe.Nets, oe.Names)
		}
		for i, nm := range oe.Names {
			if nm == "" {
				t.Errorf("%s: hot net %d has empty name", name, oe.Nets[i])
			}
		}
		if len(oe.Nets) > maxHotNets {
			t.Errorf("%s: %d hot nets exceeds cap %d", name, len(oe.Nets), maxHotNets)
		}
	}
}
