package sim_test

// Sequential-circuit kernel equivalence and steady-state allocation: the
// registry's sequential subjects (pipelined multiplier, accumulators with
// feedback) must satisfy the same word-parallel contract as the
// combinational circuits — lane-summed statistics and per-lane packed
// register state bit-identical to the merged scalar runs — on the
// lockstep kernel under uniform delays and on the wide-event kernel
// under every non-uniform model, and the clocked step path must not
// allocate once warm. Selected in CI's -race step via TestSequential.

import (
	"fmt"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
)

// sequentialCircuits are the registry's DFF-bearing subjects.
var sequentialCircuits = []string{"pipemult8", "accum16", "accum16cg"}

// TestSequentialKernelEquivalence: sequential circuits × delay models ×
// seed blocks. Uniform models run the lockstep wavefront kernel,
// non-uniform ones the lane-masked wide-event kernel; both must be
// bit-identical to running the lanes one at a time on the scalar kernel
// — including the per-lane register state carried across cycles.
func TestSequentialKernelEquivalence(t *testing.T) {
	blocks := [][]uint64{seedBlock(11), seedBlock(0xBEEF), seedBlock(77)[:13]}
	for _, circuit := range sequentialCircuits {
		nl := mustBuild(t, circuit)
		if nl.NumDFFs() == 0 {
			t.Fatalf("%s: expected a sequential circuit", circuit)
		}
		c := sim.Compile(nl)
		for bi, seeds := range blocks {
			for di, dm := range []delay.Model{delay.Unit(), delay.Uniform(2)} {
				name := fmt.Sprintf("%s/block%d/uniform%d", circuit, bi, di)
				ref, refVals := mergedScalarRuns(t, c, dm, seeds, 24)
				wide, wideVals := wideRun(t, c, dm, seeds, 24)
				compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
			}
			for mi, dm := range nonUniformModels() {
				opts := sim.Options{Delay: dm}
				name := fmt.Sprintf("%s/block%d/nonuniform%d", circuit, bi, mi)
				ref, refVals := mergedScalarModeRuns(t, c, opts, seeds, 12)
				wide, wideVals := wideEventRun(t, c, opts, seeds, 12)
				compareWideToScalar(t, name, nl, wide, wideVals, ref, refVals, seeds)
			}
		}
	}
	// Inertial mode exercises the pulse-swallowing bookkeeping together
	// with the clock-edge state capture.
	nl := mustBuild(t, "pipemult8")
	c := sim.Compile(nl)
	opts := sim.Options{Delay: delay.Typical(), Mode: sim.Inertial}
	seeds := seedBlock(5)
	ref, refVals := mergedScalarModeRuns(t, c, opts, seeds, 12)
	wide, wideVals := wideEventRun(t, c, opts, seeds, 12)
	compareWideToScalar(t, "pipemult8/inertial", nl, wide, wideVals, ref, refVals, seeds)
}

// TestSequentialStepAllocFree: the clocked step path — DFF sampling and
// t=0 Q injection included — must be alloc-free once warm on all three
// kernels.
func TestSequentialStepAllocFree(t *testing.T) {
	nl := mustBuild(t, "pipemult8")
	comp := sim.Compile(nl)

	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"scalar-wave-unit", sim.Options{Delay: delay.Unit()}},
		{"scalar-calendar-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
	} {
		s := sim.NewFromCompiled(comp, tc.opts)
		counter := core.NewCounter(nl)
		s.AttachMonitor(counter)
		src := stimulus.NewRandom(nl.InputWidth(), 1)
		for i := 0; i < 200; i++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		})
		if avg > allocTolerance {
			t.Errorf("%s: %.2f allocs per warmed-up Step, want 0", tc.name, avg)
		}
	}

	seeds := seedBlock(1)
	for _, tc := range []struct {
		name string
		opts sim.Options
	}{
		{"wide-lockstep-unit", sim.Options{Delay: delay.Unit()}},
		{"wide-event-faratio", sim.Options{Delay: delay.FullAdderRatio(2, 1)}},
	} {
		ws := sim.NewWideKernel(comp, tc.opts)
		counter := core.NewWideCounter(nl)
		ws.AttachWideMonitor(counter)
		src := stimulus.NewWideRandom(nl.InputWidth(), seeds)
		buf := make([]logic.W, nl.InputWidth())
		for i := 0; i < 100; i++ {
			if err := ws.Step(src.NextWide(buf)); err != nil {
				t.Fatal(err)
			}
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := ws.Step(src.NextWide(buf)); err != nil {
				t.Fatal(err)
			}
		})
		if avg > allocTolerance {
			t.Errorf("%s: %.2f allocs per warmed-up Step, want 0", tc.name, avg)
		}
	}
}
