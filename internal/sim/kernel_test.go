package sim_test

// Cross-kernel equivalence: the calendar/wave schedulers must produce
// bit-identical simulation results to the reference binary heap — same
// per-net activity statistics (transition, useful/useless, glitch and
// rising counts), same settled values, same settle times — on every
// built-in circuit, under transport and inertial modes, several delay
// models and several stimulus seeds. This is the test that licenses the
// O(1) schedulers to replace the heap on the hot path.

import (
	"fmt"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// kernelRun simulates cycles of random stimulus and returns the counter
// plus the final settled net values and last settle time.
func kernelRun(t *testing.T, n *netlist.Netlist, opts sim.Options, seed uint64, cycles int) (*core.Counter, []int, int) {
	t.Helper()
	s := sim.New(n, opts)
	counter := core.NewCounter(n)
	s.AttachMonitor(counter)
	src := stimulus.NewRandom(n.InputWidth(), seed)
	for i := 0; i < cycles; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	vals := make([]int, n.NumNets())
	for i := range vals {
		vals[i] = int(s.Value(netlist.NetID(i)))
	}
	return counter, vals, s.SettleTime()
}

func TestKernelEquivalence(t *testing.T) {
	builds := []struct {
		name  string
		build func() *netlist.Netlist
	}{
		{"rca8-cells", func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) }},
		{"rca8-gates", func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Gates) }},
		{"array8", func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) }},
		{"wallace8", func() *netlist.Netlist { return circuits.NewWallaceMultiplier(8, circuits.Cells) }},
		{"dirdet8", func() *netlist.Netlist {
			return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
		}},
		{"dirdet8-reg", func() *netlist.Netlist {
			return circuits.NewDirectionDetector(circuits.DirDetConfig{
				Width: 8, Style: circuits.Cells, RegisterInputs: true,
			})
		}},
	}
	models := []delay.Model{
		delay.Unit(),               // uniform: wave kernel under SchedulerAuto
		delay.Zero(),               // uniform zero delay: wave kernel, coalescing path
		delay.Uniform(3),           // uniform: wave kernel
		delay.FullAdderRatio(2, 1), // mixed: calendar kernel
		delay.Typical(),            // heterogeneous incl. 0-delay constants: calendar, coalescing
	}
	modes := []sim.Mode{sim.Transport, sim.Inertial}
	seeds := []uint64{1, 2, 99}

	const cycles = 40
	for _, b := range builds {
		nl := b.build()
		for _, dm := range models {
			for _, mode := range modes {
				for _, seed := range seeds {
					name := fmt.Sprintf("%s/%s/%v/seed%d", b.name, dm.Name(), mode, seed)
					ref, refVals, refSettle := kernelRun(t, nl,
						sim.Options{Delay: dm, Mode: mode, Scheduler: sim.SchedulerHeap}, seed, cycles)
					fast, fastVals, fastSettle := kernelRun(t, nl,
						sim.Options{Delay: dm, Mode: mode}, seed, cycles)
					cal, calVals, calSettle := kernelRun(t, nl,
						sim.Options{Delay: dm, Mode: mode, Scheduler: sim.SchedulerCalendar}, seed, cycles)

					if fastSettle != refSettle || calSettle != refSettle {
						t.Fatalf("%s: settle times heap=%d auto=%d calendar=%d",
							name, refSettle, fastSettle, calSettle)
					}
					for i := range refVals {
						if fastVals[i] != refVals[i] || calVals[i] != refVals[i] {
							t.Fatalf("%s: net %s values heap=%d auto=%d calendar=%d",
								name, nl.Nets[i].Name, refVals[i], fastVals[i], calVals[i])
						}
					}
					for i := 0; i < nl.NumNets(); i++ {
						id := netlist.NetID(i)
						want := ref.Stats(id)
						if got := fast.Stats(id); got != want {
							t.Fatalf("%s: net %s stats differ (auto scheduler)\nheap: %+v\nauto: %+v",
								name, nl.Nets[i].Name, want, got)
						}
						if got := cal.Stats(id); got != want {
							t.Fatalf("%s: net %s stats differ (calendar scheduler)\nheap: %+v\ncal:  %+v",
								name, nl.Nets[i].Name, want, got)
						}
					}
				}
			}
		}
	}
}

// TestKernelEquivalenceHugeDelays forces the auto scheduler onto its
// heap fallback (per-hop delay beyond the calendar window cap) and
// checks the explicitly grown calendar still matches.
func TestKernelEquivalenceHugeDelays(t *testing.T) {
	nl := circuits.NewRCA(6, circuits.Cells)
	dm := delay.Func{F: func(c *netlist.Cell, pin int) int {
		if c.Type == netlist.FA && pin == netlist.PinSum {
			return 6000 // beyond the auto calendar window cap
		}
		return 7
	}, N: "huge"}
	opts := func(sched sim.Scheduler) sim.Options {
		return sim.Options{Delay: dm, Scheduler: sched, MaxTimePerCycle: 1 << 20}
	}
	ref, refVals, _ := kernelRun(t, nl, opts(sim.SchedulerHeap), 5, 25)
	auto, autoVals, _ := kernelRun(t, nl, opts(sim.SchedulerAuto), 5, 25)
	cal, calVals, _ := kernelRun(t, nl, opts(sim.SchedulerCalendar), 5, 25)
	for i := range refVals {
		if autoVals[i] != refVals[i] || calVals[i] != refVals[i] {
			t.Fatalf("net %d: values heap=%d auto=%d calendar=%d",
				i, refVals[i], autoVals[i], calVals[i])
		}
	}
	for i := 0; i < nl.NumNets(); i++ {
		id := netlist.NetID(i)
		if auto.Stats(id) != ref.Stats(id) || cal.Stats(id) != ref.Stats(id) {
			t.Fatalf("net %d: stats differ across kernels", i)
		}
	}
}
