package sim

import (
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// The simulator's pending-event queue. Three implementations coexist
// behind a common method set (push / empty / nextTime / popBatch /
// reset / clear), selected at construction and dispatched through nil
// checks on the concrete types so the O(1) operations inline into the
// event loop:
//
//   - waveQueue: for uniform delay models, where all in-flight events
//     share one absolute time. Push is a bare append, pop a slice swap.
//   - calendarQueue: a ring of per-time-slot FIFO buckets indexed by
//     t mod window. Cell delays are small bounded integers, so push and
//     pop are O(1); within one time slot events pop in push (= serial)
//     order, which is exactly the (time, serial) order the heap produces.
//   - heapQueue: the classic binary min-heap ordered by (time, serial),
//     kept as the fallback for delay models whose per-hop delays exceed
//     the calendar window.
//
// All implementations deliver events in identical order, so the choice
// of scheduler never changes observable simulation results (the
// cross-kernel equivalence test in kernel_test.go enforces this).

type event struct {
	serial uint64
	time   int32
	net    netlist.NetID
	key    int32 // cell-output key for inertial cancellation; -1 for injections
	val    logic.V
}

// The queue contract shared by both implementations:
//
//   - push enqueues an event; its time must be >= the time of the last
//     batch popped since the last reset (events never travel backwards).
//   - nextTime returns the earliest pending event time and must only be
//     called when the queue is non-empty.
//   - popBatch removes and returns every event queued at time t (the
//     value nextTime just returned), in serial order; the returned slice
//     is only valid until the next popBatch call.
//   - reset rewinds the time origin to 0 and is only legal when empty;
//     clear additionally discards all pending events.

// calendarQueue is the O(1) scheduler: a power-of-two ring of event
// buckets where an event at absolute time t lives in bucket t&mask. It
// is generic over the element type: the scalar kernel stores events
// directly, the word-parallel event kernel stores arena indices (its
// events are wide and live in a per-cycle arena).
//
// Invariant: all in-flight event times span less than window time units
// (guaranteed by construction: the window exceeds the largest per-hop
// delay of the simulator's delay model, and events are only pushed at or
// after the time of the batch being processed). Each bucket therefore
// holds events of a single absolute time, and a forward scan from cur
// finds the earliest one.
type calendarQueue[E any] struct {
	buckets [][]E
	mask    int
	cur     int // absolute time the next-bucket scan starts from
	size    int
	spare   []E // previous popBatch result, recycled as a fresh bucket
}

// newCalendarQueue returns a calendar queue whose window is the smallest
// power of two that can hold per-hop delays up to maxDelay.
func newCalendarQueue[E any](maxDelay int) *calendarQueue[E] {
	w := 4
	for w < maxDelay+2 {
		w <<= 1
	}
	return &calendarQueue[E]{buckets: make([][]E, w), mask: w - 1}
}

func (q *calendarQueue[E]) push(t int, e E) {
	i := t & q.mask
	q.buckets[i] = append(q.buckets[i], e)
	q.size++
}

func (q *calendarQueue[E]) empty() bool { return q.size == 0 }

func (q *calendarQueue[E]) nextTime() int {
	for len(q.buckets[q.cur&q.mask]) == 0 {
		q.cur++
	}
	return q.cur
}

func (q *calendarQueue[E]) popBatch(t int) []E {
	i := t & q.mask
	b := q.buckets[i]
	q.buckets[i] = q.spare[:0]
	q.spare = b
	q.size -= len(b)
	return b
}

func (q *calendarQueue[E]) reset() { q.cur = 0 }

func (q *calendarQueue[E]) clear() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.cur = 0
	q.size = 0
}

// waveQueue is the degenerate calendar for uniform delay models (every
// combinational output has the same delay d, e.g. the paper's unit-delay
// experiments): all events in flight share one absolute time, so the
// queue is a single FIFO wave at time t and the next wave at t+d. Push
// is a bare append, pop swaps two slices.
//
// The uniform-delay invariant makes this exact: every push between two
// popBatch calls carries the same time (t+d during evaluation at t, or 0
// for the cycle-start injections into an empty queue).
type waveQueue struct {
	t     int // time of the pending wave (valid when non-empty)
	wave  []event
	spare []event // previous popBatch result, recycled as the next wave
}

func newWaveQueue() *waveQueue { return &waveQueue{} }

func (q *waveQueue) push(e event) {
	if len(q.wave) == 0 {
		q.t = int(e.time)
	}
	q.wave = append(q.wave, e)
}

func (q *waveQueue) empty() bool   { return len(q.wave) == 0 }
func (q *waveQueue) nextTime() int { return q.t }

func (q *waveQueue) popBatch(int) []event {
	b := q.wave
	q.wave = q.spare[:0]
	q.spare = b
	return b
}

func (q *waveQueue) reset() {}

func (q *waveQueue) clear() { q.wave = q.wave[:0] }

// heapQueue is the fallback scheduler: a binary min-heap ordered by
// (time, serial), with no bound on per-hop delays.
type heapQueue struct {
	h     eventHeap
	batch []event
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) push(e event)  { q.h.push(e) }
func (q *heapQueue) empty() bool   { return len(q.h) == 0 }
func (q *heapQueue) nextTime() int { return int(q.h[0].time) }
func (q *heapQueue) reset()        {}
func (q *heapQueue) clear()        { q.h = q.h[:0] }

func (q *heapQueue) popBatch(t int) []event {
	q.batch = q.batch[:0]
	for len(q.h) > 0 && int(q.h[0].time) == t {
		q.batch = append(q.batch, q.h.pop())
	}
	return q.batch
}

// eventHeap is a binary min-heap ordered by (time, serial).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].serial < h[j].serial
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h).less(p, i) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h).less(l, small) {
			small = l
		}
		if r < last && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
