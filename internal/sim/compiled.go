package sim

import (
	"fmt"
	"math"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// Compiled is an immutable, cache-friendly compilation of a netlist for
// the simulation hot path: cell types, input/output net IDs and per-net
// fanout lists live in contiguous CSR-style arrays instead of the
// pointer-rich netlist.Cell/netlist.Net structures, so the event loop
// never chases *Netlist pointers.
//
// A Compiled is read-only after Compile returns and may be shared by any
// number of Simulators concurrently (the batch measurement layer compiles
// each circuit once and hands the result to a pool of per-goroutine
// simulators). The source netlist must not be mutated while a Compiled
// built from it is in use.
type Compiled struct {
	n *netlist.Netlist

	// Per-cell arrays, indexed by CellID.
	cellType []netlist.CellType
	inStart  []int32         // len NumCells+1; offsets into inNets
	inNets   []netlist.NetID // concatenated input nets of all cells
	outNets  []netlist.NetID // 2 per cell (outputsPerCell); NoNet when unused
	outLen   []uint8         // number of declared output pins per cell

	// Per-net fanout in CSR form: the combinational cells reading each
	// net, deduplicated. DFF sinks are excluded — flipflops react only at
	// the clock edge, never during intra-cycle propagation.
	fanStart []int32
	fanCells []netlist.CellID

	// Flipflop shortcut lists so Step never scans the full cell array.
	dffCells []netlist.CellID
	dffD     []netlist.NetID // D input net per entry of dffCells
	dffQ     []netlist.NetID // Q output net per entry of dffCells

	// initVals is the reset-state settled value of every net: DFF outputs
	// at 0, primary inputs unknown, everything else the three-valued
	// steady state. Simulators start from a copy of this.
	initVals []logic.V

	maxIn int // widest cell input count, sizes the eval scratch buffer
}

// outputsPerCell is the per-cell stride of the outNets array (the widest
// cell types, HA and FA, have two output pins).
const outputsPerCell = 2

// Compile flattens a netlist into the simulator's hot-path form. The
// netlist must be valid (see netlist.Validate); Compile panics otherwise,
// since simulating an invalid netlist produces meaningless activity
// numbers.
func Compile(n *netlist.Netlist) *Compiled {
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid netlist: %v", err))
	}
	nc, nn := n.NumCells(), n.NumNets()
	c := &Compiled{
		n:        n,
		cellType: make([]netlist.CellType, nc),
		inStart:  make([]int32, nc+1),
		outNets:  make([]netlist.NetID, outputsPerCell*nc),
		outLen:   make([]uint8, nc),
		fanStart: make([]int32, nn+1),
	}

	totalIn := 0
	for i := range n.Cells {
		totalIn += len(n.Cells[i].In)
	}
	c.inNets = make([]netlist.NetID, 0, totalIn)
	for i := range n.Cells {
		cell := &n.Cells[i]
		c.cellType[i] = cell.Type
		c.inStart[i] = int32(len(c.inNets))
		c.inNets = append(c.inNets, cell.In...)
		if len(cell.In) > c.maxIn {
			c.maxIn = len(cell.In)
		}
		if len(cell.Out) > outputsPerCell {
			panic(fmt.Sprintf("sim: cell %s has %d output pins, kernel supports at most %d",
				cell.Name, len(cell.Out), outputsPerCell))
		}
		c.outLen[i] = uint8(len(cell.Out))
		for pin := 0; pin < outputsPerCell; pin++ {
			o := netlist.NoNet
			if pin < len(cell.Out) {
				o = cell.Out[pin]
			}
			c.outNets[outputsPerCell*i+pin] = o
		}
		if cell.Type == netlist.DFF {
			c.dffCells = append(c.dffCells, netlist.CellID(i))
			c.dffD = append(c.dffD, cell.In[0])
			c.dffQ = append(c.dffQ, cell.Out[0])
		}
	}
	c.inStart[nc] = int32(len(c.inNets))

	// Fanout CSR, deduplicating cells that read the same net on several
	// pins (the epoch check in applyBatch would skip the repeat anyway,
	// but not walking it at all is cheaper).
	seen := make([]int32, nc)
	for i := range seen {
		seen[i] = -1
	}
	count := 0
	for netID := range n.Nets {
		for _, s := range n.Nets[netID].Sinks {
			if n.Cells[s.Cell].Type == netlist.DFF || seen[s.Cell] == int32(netID) {
				continue
			}
			seen[s.Cell] = int32(netID)
			count++
		}
	}
	c.fanCells = make([]netlist.CellID, 0, count)
	for i := range seen {
		seen[i] = -1
	}
	for netID := range n.Nets {
		c.fanStart[netID] = int32(len(c.fanCells))
		for _, s := range n.Nets[netID].Sinks {
			if n.Cells[s.Cell].Type == netlist.DFF || seen[s.Cell] == int32(netID) {
				continue
			}
			seen[s.Cell] = int32(netID)
			c.fanCells = append(c.fanCells, s.Cell)
		}
	}
	c.fanStart[nn] = int32(len(c.fanCells))

	// Reset-state settled values: DFFs reset to 0, primary inputs stay
	// unknown, and everything computable from constants and DFF reset
	// values settles by topological evaluation.
	c.initVals = make([]logic.V, nn)
	for _, q := range c.dffQ {
		c.initVals[q] = logic.L0
	}
	n.EvalOutputs(c.initVals)
	return c
}

// Netlist returns the netlist this compilation was built from.
func (c *Compiled) Netlist() *netlist.Netlist { return c.n }

// visitDelays resolves the delay model on every connected output pin of
// every combinational cell, in cell/pin order, calling f with the
// cell-output key (outputsPerCell*cell + pin) and the validated delay.
// It panics on delays outside [0, MaxInt32]. Every kernel resolves delay
// models exclusively through this walk (via NewDelayTable), so they can
// never disagree about which pins a model is asked about or which
// delays are legal. The pin enumeration itself is delay.VisitOutputs,
// shared with every other table-extraction consumer.
func (c *Compiled) visitDelays(dm delay.Model, f func(key, d int)) {
	n := c.n
	delay.VisitOutputs(n, dm, func(cid, pin, d int) {
		if d < 0 || d > math.MaxInt32 {
			panic(fmt.Sprintf("sim: delay %d for cell %s pin %d outside [0, MaxInt32]", d, n.Cells[cid].Name, pin))
		}
		f(outputsPerCell*cid+pin, d)
	})
}

// DelayTable is a delay model compiled against one netlist: the
// per-cell-output delays in a flat array indexed by cell-output key,
// plus the min/max bounds the kernels select their schedulers by. Both
// the scalar and the word-parallel kernels consume the same table, built
// once at construction (or earlier, via Options.Delays, when a
// measurement wants to share one table across several kernels), so no
// hot loop ever calls delay.Model.Delay.
//
// A DelayTable is immutable after NewDelayTable returns and may be
// shared by any number of simulators, like the Compiled it was built
// from.
type DelayTable struct {
	c      *Compiled
	delays []int32 // per cell-output key (outputsPerCell*cell + pin)
	min    int32   // smallest per-output delay; 1 when no combinational outputs
	max    int32   // largest per-output delay; 1 when no combinational outputs
}

// NewDelayTable resolves the delay model on every combinational output
// of the compiled netlist. A nil model means unit delay. Like simulator
// construction it panics on out-of-range delays.
func NewDelayTable(c *Compiled, dm delay.Model) *DelayTable {
	if dm == nil {
		dm = delay.Unit()
	}
	t := &DelayTable{
		c:      c,
		delays: make([]int32, outputsPerCell*c.n.NumCells()),
		min:    -1,
	}
	c.visitDelays(dm, func(key, d int) {
		t.delays[key] = int32(d)
		if t.min < 0 || int32(d) < t.min {
			t.min = int32(d)
		}
		if int32(d) > t.max {
			t.max = int32(d)
		}
	})
	if t.min < 0 {
		// No combinational outputs: trivially uniform unit delay.
		t.min, t.max = 1, 1
	}
	return t
}

// Compiled returns the compiled netlist the table was built for.
func (t *DelayTable) Compiled() *Compiled { return t.c }

// At returns the delay of one cell-output key.
func (t *DelayTable) At(key int) int { return int(t.delays[key]) }

// Min returns the smallest per-output delay.
func (t *DelayTable) Min() int { return int(t.min) }

// Max returns the largest per-output delay.
func (t *DelayTable) Max() int { return int(t.max) }

// Digest returns an FNV-1a hash over the table's per-output delays, in
// key order. Two tables digest equal exactly when they assign the same
// delay to every cell-output key, so a measurement checkpoint can
// record the digest and refuse to resume under a different delay model
// (which would make the resumed half statistically incomparable).
func (t *DelayTable) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, d := range t.delays {
		u := uint32(d)
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(u >> shift))
			h *= prime64
		}
	}
	return h
}

// Uniform reports whether every combinational output shares one delay,
// and returns it. This is the eligibility test of the lockstep
// word-parallel kernel (which additionally requires the delay >= 1).
func (t *DelayTable) Uniform() (int, bool) {
	if t.min != t.max {
		return 0, false
	}
	return int(t.min), true
}
