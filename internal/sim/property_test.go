package sim

import (
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
	"glitchsim/netlist"
)

// TestPropertySettledStateMatchesReference: for random netlists, random
// stimulus and every delay model, the event-driven settled state must
// equal the topological zero-delay evaluation. This is the master
// correctness property of the simulator.
func TestPropertySettledStateMatchesReference(t *testing.T) {
	rng := stimulus.NewPRNG(12345)
	models := []delay.Model{delay.Unit(), delay.Zero(), delay.Typical(), delay.FullAdderRatio(3, 1)}
	for trial := 0; trial < 30; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(6)),
			Gates:        10 + int(rng.Uintn(60)),
			Outputs:      2,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 == 0,
		})
		dm := models[trial%len(models)]
		s := New(n, Options{Delay: dm, Mode: Mode(trial % 2)})
		ref := make([]logic.V, n.NumNets())
		refQ := make([]logic.V, n.NumCells())
		// Replicate the simulator's reset state: DFFs at 0, then a
		// three-valued settle with unknown primary inputs.
		for i := range n.Cells {
			if c := &n.Cells[i]; c.Type == netlist.DFF {
				refQ[i] = logic.L0
				ref[c.Out[0]] = logic.L0
			}
		}
		n.EvalOutputs(ref)
		pi := make(logic.Vector, n.InputWidth())
		for cycle := 0; cycle < 20; cycle++ {
			// Reference: all DFFs sample their D from the previous
			// settled reference state simultaneously, then drive their
			// outputs — two passes so chained DFFs don't see each
			// other's new values.
			for i := range n.Cells {
				c := &n.Cells[i]
				if c.Type != netlist.DFF {
					continue
				}
				if d := ref[c.In[0]]; d.Known() {
					refQ[i] = d
				}
			}
			for i := range n.Cells {
				if c := &n.Cells[i]; c.Type == netlist.DFF {
					ref[c.Out[0]] = refQ[i]
				}
			}
			for i := range pi {
				pi[i] = logic.FromBit(rng.Uint64())
			}
			if err := s.Step(pi); err != nil {
				t.Fatal(err)
			}
			for i, id := range n.PIs {
				ref[id] = pi[i]
			}
			n.EvalOutputs(ref)
			for i := range n.Nets {
				if s.Value(netlist.NetID(i)) != ref[i] {
					t.Fatalf("trial %d (%s, %v) cycle %d: net %s = %v, ref %v",
						trial, dm.Name(), Mode(trial%2), cycle,
						n.Nets[i].Name, s.Value(netlist.NetID(i)), ref[i])
				}
			}
		}
	}
}

// TestPropertyInertialNeverExceedsTransport: pulse swallowing can only
// reduce activity, never add it, on any circuit.
func TestPropertyInertialNeverExceedsTransport(t *testing.T) {
	rng := stimulus.NewPRNG(777)
	for trial := 0; trial < 15; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs: 4, Gates: 40, Outputs: 2, WithCompound: true,
		})
		seed := rng.Uint64()
		count := func(mode Mode) int {
			s := New(n, Options{Delay: delay.Typical(), Mode: mode})
			rec := &recorder{}
			s.AttachMonitor(rec)
			src := stimulus.NewRandom(n.InputWidth(), seed)
			for i := 0; i < 30; i++ {
				if err := s.Step(src.Next()); err != nil {
					t.Fatal(err)
				}
			}
			known := 0
			for _, c := range rec.changes {
				if c.old.Known() {
					known++
				}
			}
			return known
		}
		tr, in := count(Transport), count(Inertial)
		if in > tr {
			t.Fatalf("trial %d: inertial %d transitions > transport %d", trial, in, tr)
		}
	}
}

// TestPropertyMonotoneDelayScaling: multiplying every delay by a
// constant must not change which transitions occur under transport
// delay (time stretches, activity is identical).
func TestPropertyMonotoneDelayScaling(t *testing.T) {
	rng := stimulus.NewPRNG(31337)
	for trial := 0; trial < 10; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs: 4, Gates: 30, Outputs: 2,
		})
		seed := rng.Uint64()
		counts := func(dm delay.Model) []int {
			s := New(n, Options{Delay: dm})
			rec := &recorder{}
			s.AttachMonitor(rec)
			src := stimulus.NewRandom(n.InputWidth(), seed)
			for i := 0; i < 25; i++ {
				if err := s.Step(src.Next()); err != nil {
					t.Fatal(err)
				}
			}
			perNet := make([]int, n.NumNets())
			for _, c := range rec.changes {
				if c.old.Known() {
					perNet[c.net]++
				}
			}
			return perNet
		}
		a := counts(delay.Unit())
		b := counts(delay.Uniform(3))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: net %d activity %d (unit) vs %d (3x)", trial, i, a[i], b[i])
			}
		}
	}
}
