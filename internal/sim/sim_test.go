package sim

import (
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// recorder is a test Monitor capturing every transition.
type recorder struct {
	changes []change
	cycles  int
}

type change struct {
	net      netlist.NetID
	cycle, t int
	old, new logic.V
}

func (r *recorder) OnChange(net netlist.NetID, cycle, t int, old, new logic.V) {
	r.changes = append(r.changes, change{net, cycle, t, old, new})
}

func (r *recorder) OnCycleEnd(cycle int) { r.cycles++ }

func (r *recorder) countFor(net netlist.NetID, cycle int) int {
	n := 0
	for _, c := range r.changes {
		if c.net == net && c.cycle == cycle && c.old.Known() {
			n++
		}
	}
	return n
}

// buildRCA builds an n-bit ripple-carry adder from compound FA cells.
func buildRCA(t *testing.T, width int) (*netlist.Netlist, []netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("rca")
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	carry := b.Const(0)
	sum := make([]netlist.NetID, width)
	for i := 0; i < width; i++ {
		sum[i], carry = b.FullAdder(a[i], bb[i], carry)
	}
	b.OutputBus("s", sum)
	b.Output("cout", carry)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, append(sum, carry)
}

func TestRCAFunctional(t *testing.T) {
	const width = 8
	n, _ := buildRCA(t, width)
	s := New(n, Options{})
	rng := stimulus.NewPRNG(1)
	pi := make(logic.Vector, 2*width)
	for cycle := 0; cycle < 200; cycle++ {
		av := rng.Uintn(1 << width)
		bv := rng.Uintn(1 << width)
		copy(pi[:width], logic.VectorFromUint(av, width))
		copy(pi[width:], logic.VectorFromUint(bv, width))
		if err := s.Step(pi); err != nil {
			t.Fatal(err)
		}
		got := s.Outputs().Uint()
		if got != av+bv {
			t.Fatalf("cycle %d: %d+%d = %d, got %d", cycle, av, bv, av+bv, got)
		}
	}
}

func TestAgainstZeroDelayReference(t *testing.T) {
	// The settled state of the event-driven simulator must equal the
	// topological zero-delay evaluation for any delay model.
	const width = 6
	n, _ := buildRCA(t, width)
	for _, dm := range []delay.Model{delay.Unit(), delay.Zero(), delay.FullAdderRatio(2, 1), delay.Typical()} {
		s := New(n, Options{Delay: dm})
		ref := make([]logic.V, n.NumNets())
		rng := stimulus.NewPRNG(7)
		pi := make(logic.Vector, 2*width)
		for cycle := 0; cycle < 100; cycle++ {
			for i := range pi {
				pi[i] = logic.FromBit(rng.Uint64())
			}
			if err := s.Step(pi); err != nil {
				t.Fatal(err)
			}
			for i, id := range n.PIs {
				ref[id] = pi[i]
			}
			n.EvalOutputs(ref)
			for i := range n.Nets {
				if s.Value(netlist.NetID(i)) != ref[i] {
					t.Fatalf("model %s cycle %d: net %s = %v, ref %v",
						dm.Name(), cycle, n.Nets[i].Name, s.Value(netlist.NetID(i)), ref[i])
				}
			}
		}
	}
}

func TestWorstCaseRippleTransitions(t *testing.T) {
	// Paper Figure 3: with inputs chosen so the carry ripples through all
	// stages from an alternating carry state, S(N-1) makes N transitions.
	const width = 4
	n, outs := buildRCA(t, width)
	s := New(n, Options{Delay: delay.Unit()})
	rec := &recorder{}
	s.AttachMonitor(rec)

	// Figure 3 preconditions (§3.1): after the previous addition the
	// carries alternate, (C4,C3,C2,C1) = (0,1,0,1) — achieved by
	// A=B=0101 — and the new inputs kill the stage-0 carry while every
	// higher stage propagates: A=1110, B=0000. The carry flip then
	// ripples one stage per unit delay, toggling S3 and C4 at t=1,2,3,4.
	pi := make(logic.Vector, 2*width)
	step := func(av, bv uint64) {
		copy(pi[:width], logic.VectorFromUint(av, width))
		copy(pi[width:], logic.VectorFromUint(bv, width))
		if err := s.Step(pi); err != nil {
			t.Fatal(err)
		}
	}
	step(0b0101, 0b0101)
	step(0b1110, 0b0000)

	sN1 := outs[width-1] // S3
	if got := rec.countFor(sN1, 1); got != width {
		t.Errorf("S%d made %d transitions, want %d (worst-case ripple)", width-1, got, width)
	}
	coutN := outs[width] // C4
	if got := rec.countFor(coutN, 1); got != width {
		t.Errorf("C%d made %d transitions, want %d (worst-case ripple)", width, got, width)
	}
}

func TestGlitchOnImbalancedPaths(t *testing.T) {
	// out = AND(a, NOT a) is statically 0 but glitches 0->1->0 when a
	// rises, because the inverted path lags by one gate delay.
	b := netlist.NewBuilder("hazard")
	a := b.Input("a")
	na := b.Not(a)
	out := b.And(a, na)
	b.Output("out", out)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(n, Options{Delay: delay.Unit()})
	rec := &recorder{}
	s.AttachMonitor(rec)

	if err := s.Step(logic.Vector{logic.L0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(logic.Vector{logic.L1}); err != nil {
		t.Fatal(err)
	}
	if got := rec.countFor(out, 1); got != 2 {
		t.Errorf("hazard output made %d transitions, want 2 (a glitch)", got)
	}
	if s.Value(out) != logic.L0 {
		t.Errorf("settled value %v, want 0", s.Value(out))
	}
	// Falling edge of a: no glitch (AND output stays 0: a falls first).
	if err := s.Step(logic.Vector{logic.L0}); err != nil {
		t.Fatal(err)
	}
	if got := rec.countFor(out, 2); got != 0 {
		t.Errorf("falling edge made %d transitions, want 0", got)
	}
}

func TestInertialSwallowsNarrowPulse(t *testing.T) {
	// Pulse generator AND(a, NOT a) produces a width-1 pulse feeding a
	// buffer of delay 3: transport passes it (2 transitions), inertial
	// swallows it (0 transitions).
	build := func() (*netlist.Netlist, netlist.NetID) {
		b := netlist.NewBuilder("pulse")
		a := b.Input("a")
		p := b.And(a, b.Not(a))
		out := b.Buf(p)
		b.Output("out", out)
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return n, out
	}
	dm := delay.Func{F: func(c *netlist.Cell, _ int) int {
		if c.Type == netlist.Buf {
			return 3
		}
		return 1
	}, N: "buf3"}

	for _, tc := range []struct {
		mode Mode
		want int
	}{{Transport, 2}, {Inertial, 0}} {
		n, out := build()
		s := New(n, Options{Delay: dm, Mode: tc.mode})
		rec := &recorder{}
		s.AttachMonitor(rec)
		if err := s.Step(logic.Vector{logic.L0}); err != nil {
			t.Fatal(err)
		}
		if err := s.Step(logic.Vector{logic.L1}); err != nil {
			t.Fatal(err)
		}
		if got := rec.countFor(out, 1); got != tc.want {
			t.Errorf("%v: buffered pulse made %d transitions, want %d", tc.mode, got, tc.want)
		}
	}
}

func TestZeroDelayNeverGlitches(t *testing.T) {
	const width = 8
	n, _ := buildRCA(t, width)
	s := New(n, Options{Delay: delay.Zero()})
	rec := &recorder{}
	s.AttachMonitor(rec)
	rng := stimulus.NewPRNG(3)
	pi := make(logic.Vector, 2*width)
	for cycle := 0; cycle < 50; cycle++ {
		for i := range pi {
			pi[i] = logic.FromBit(rng.Uint64())
		}
		if err := s.Step(pi); err != nil {
			t.Fatal(err)
		}
	}
	perCycle := map[[2]int]int{}
	for _, c := range rec.changes {
		perCycle[[2]int{int(c.net), c.cycle}]++
	}
	for k, v := range perCycle {
		if v > 1 {
			t.Fatalf("net %d cycle %d transitioned %d times under zero delay", k[0], k[1], v)
		}
	}
}

func TestDFFPipelineLatency(t *testing.T) {
	b := netlist.NewBuilder("pipe2")
	x := b.Input("x")
	q := b.DFFChain(x, 2)
	b.Output("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(n, Options{})
	seq := []uint64{1, 0, 1, 1, 0, 0, 1, 0}
	var got []uint64
	for _, bit := range seq {
		if err := s.Step(logic.Vector{logic.FromBit(bit)}); err != nil {
			t.Fatal(err)
		}
		got = append(got, s.Value(q).Bit())
	}
	// Latency 2, DFFs reset to 0.
	want := []uint64{0, 0, 1, 0, 1, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: q = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestToggleFlipflop(t *testing.T) {
	// q = DFF(not q): a divide-by-two counter; legal sequential loop.
	b := netlist.NewBuilder("toggle")
	seed := b.Input("seed")
	inv := b.AddCell(netlist.Not, "inv", seed)
	q := b.DFF(inv[0])
	b.Rewire(0, 0, q) // the inverter now reads q: a sequential loop
	b.Output("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := New(n, Options{})
	var bits []uint64
	for i := 0; i < 6; i++ {
		if err := s.Step(logic.Vector{logic.L0}); err != nil {
			t.Fatal(err)
		}
		bits = append(bits, s.Value(q).Bit())
	}
	// During reset Q=0 and the inverter settles to D=1, so the first
	// clock edge loads 1 and the output toggles from there.
	want := []uint64{1, 0, 1, 0, 1, 0}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", bits, want)
		}
	}
}

func TestStimulusWidthPanic(t *testing.T) {
	n, _ := buildRCA(t, 2)
	s := New(n, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	_ = s.Step(logic.Vector{logic.L0})
}

func TestInvalidNetlistPanics(t *testing.T) {
	n := &netlist.Netlist{Name: "bad"}
	n.Nets = append(n.Nets, netlist.Net{ID: 0, Name: "floating", Driver: netlist.NoCell})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid netlist")
		}
	}()
	New(n, Options{})
}

func TestSettleTimeTracksCriticalPath(t *testing.T) {
	const width = 8
	n, _ := buildRCA(t, width)
	s := New(n, Options{Delay: delay.Unit()})
	pi := make(logic.Vector, 2*width)
	// Force a full ripple: A=0xFF, B=0 then B=1.
	copy(pi[:width], logic.VectorFromUint(0xFF, width))
	copy(pi[width:], logic.VectorFromUint(0, width))
	if err := s.Step(pi); err != nil {
		t.Fatal(err)
	}
	copy(pi[width:], logic.VectorFromUint(1, width))
	if err := s.Step(pi); err != nil {
		t.Fatal(err)
	}
	if s.SettleTime() != width {
		t.Errorf("settle time %d, want %d (full carry ripple)", s.SettleTime(), width)
	}
	if s.SettleTime() > n.CriticalPathLength(delay.AsDelayFunc(delay.Unit())) {
		t.Error("settled later than the static critical path")
	}
}

func TestGuardTripsOnSlowSettle(t *testing.T) {
	// An 8-bit RCA needs up to 8 time units to settle; a guard of 3 must
	// abort the cycle with a descriptive error instead of hanging.
	n, _ := buildRCA(t, 8)
	s := New(n, Options{MaxTimePerCycle: 3})
	pi := make(logic.Vector, 16)
	copy(pi[:8], logic.VectorFromUint(0xFF, 8))
	if err := s.Step(pi); err != nil {
		t.Fatalf("first step should settle within guard: %v", err)
	}
	copy(pi[8:], logic.VectorFromUint(1, 8)) // full carry ripple
	err := s.Step(pi)
	if err == nil {
		t.Fatal("expected guard error")
	}
	if want := "did not settle"; err != nil && !containsStr(err.Error(), want) {
		t.Errorf("error %q missing %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMonitorCycleEnds(t *testing.T) {
	n, _ := buildRCA(t, 2)
	s := New(n, Options{})
	rec := &recorder{}
	s.AttachMonitor(rec)
	for i := 0; i < 5; i++ {
		if err := s.Step(make(logic.Vector, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if rec.cycles != 5 {
		t.Errorf("OnCycleEnd called %d times, want 5", rec.cycles)
	}
	s.DetachMonitors()
	if err := s.Step(make(logic.Vector, 4)); err != nil {
		t.Fatal(err)
	}
	if rec.cycles != 5 {
		t.Error("detached monitor still called")
	}
}
