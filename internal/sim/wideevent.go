package sim

// The word-parallel EVENT-DRIVEN kernel: 64 independent stimulus lanes
// advanced by one event-driven simulation under an arbitrary
// non-negative integer delay model — the kernel behind the paper's
// realistic-delay experiments (full-adder sum/carry ratios, per-type
// delays), where the lockstep wavefront kernel does not apply because
// different cells finish at different times.
//
// # Lane-masked events
//
// Nets stay packed (one logic.W per net) and cell evaluation stays the
// branch-free bitwise evalCellWide, but the schedule is the scalar
// kernel's calendar/heap event queue with one twist: a scheduled event
// is (net, t, mask, val), where mask selects the lanes whose value
// changes at time t. Delays are per cell output, not per lane, so when a
// cell is re-evaluated at time t every lane's new output value lands at
// the same instant t+d — one word event carries all lanes that actually
// change there, however few.
//
// # Per-lane equivalence
//
// Lane l of a wide-event simulation is bit-identical to a scalar
// simulation driven with lane l's stimulus:
//
//   - A cell's packed output equals the per-lane scalar eval by the
//     init-time cross-check in internal/logic.
//   - In transport mode an output event's mask is the set of lanes where
//     the new value differs from the net's projected value (its value
//     once all in-flight events have applied). A lane whose inputs did
//     not change evaluates to its projected value and drops out of the
//     mask, so it sees exactly the transitions its scalar run would: the
//     projection replays the scalar kernel's pending/no-op elision lane
//     by lane, and events on one net apply in schedule order (a net has
//     one driver pin with one fixed delay, so arrival order is schedule
//     order).
//   - In inertial mode a re-evaluated lane's claim cancels that lane
//     from the net's in-flight events before the replacement is
//     scheduled — the lane image of the scalar kernel's lastSerial
//     cancellation. Only lanes in which some input actually changed
//     re-evaluate (the per-cell changed-lane mask), so lanes idle in
//     their scalar run never cancel or reschedule anything.
//   - Zero-delay pins re-schedule within the instant, exactly like the
//     scalar kernel: an instant then spans several event batches and the
//     per-instant coalescing machinery reports one change per net with
//     the instant's initial and final packed values, dropping per-lane
//     zero-width excursions.
//
// TestWideEventKernelEquivalence enforces the equivalence against 64
// merged scalar runs for every built-in circuit under every non-uniform
// delay model family.

import (
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// maskedEvent is one scheduled net update in the wide-event kernel: the
// lanes selected by mask take val's levels at the time the queues carry
// the event for (the calendar bucket / heap entry holds the time, so
// the arena entry does not repeat it). Events live in a per-cycle
// arena; the queues carry arena indices, so inertial cancellation can
// shrink an in-flight event's mask in place.
type maskedEvent struct {
	val  logic.W
	mask uint64
	net  netlist.NetID
}

// wideChangeState tracks one net's membership in the current instant's
// changed set on the zero-delay coalescing path: epoch matches
// flushEpoch while the net is in changedList, and init holds its packed
// value from before the instant.
type wideChangeState struct {
	epoch int32
	init  logic.W
}

// WideEventSimulator drives one netlist for MaxLanes independent
// stimulus lanes at once under an arbitrary non-negative integer delay
// model. Like the other kernels it is not safe for concurrent use, but
// any number may share one Compiled netlist (and one DelayTable).
type WideEventSimulator struct {
	c     *Compiled
	dt    *DelayTable
	mode  Mode
	guard int

	values []logic.W
	sched  []logic.W // per net: projected value after all in-flight events
	ffQ    []logic.W // sampled Q, indexed like Compiled.dffCells

	arena []maskedEvent // per-cycle event storage, indexed by the queues
	cal   *calendarQueue[int32]
	hq    *wideEventHeap

	// Inertial-only state: the live in-flight events per net (for claim
	// cancellation) and the lanes in which each touched cell's inputs
	// changed this batch (only those lanes re-evaluate, scalar-wise).
	inertial  bool
	inflight  [][]int32 // per net: arena indices of live events
	cellLanes []uint64  // per cell: changed-lane mask of the current batch

	coalesce    bool // multi-batch instants possible (some delay is 0)
	changed     []wideChangeState
	flushEpoch  int32
	changedList []netlist.NetID
	changes     []WideChange

	touchEpoch []int32
	epoch      int32
	touched    []netlist.CellID

	monitors []WideMonitor
	cycle    int
	settle   int
	events   uint64 // word events processed (each spans all lanes)

	poll pollState // periodic cancellation + budget check

	evalIn  logic.Vector // per-lane scratch for the reference fallback
	evalOut [outputsPerCell]logic.V
}

// NewWideEvent returns a word-parallel event-driven simulator. It
// accepts every delay model the scalar kernel accepts — unequal
// per-cell delays, zero delays, transport and inertial modes — so it
// never fails; use NewWideKernel to get the faster lockstep kernel when
// the model happens to be uniform. Options.Scheduler selects the event
// queue as for the scalar kernel (the wave queue does not apply).
func NewWideEvent(c *Compiled, opts Options) *WideEventSimulator {
	dm := opts.Delay
	if dm == nil {
		dm = delay.Unit()
	}
	dt := opts.Delays
	if dt == nil {
		dt = NewDelayTable(c, dm)
	}
	guard := opts.MaxTimePerCycle
	if guard == 0 {
		guard = 1 << 16
	}
	nc, nn := c.n.NumCells(), c.n.NumNets()
	s := &WideEventSimulator{
		c:          c,
		dt:         dt,
		mode:       opts.Mode,
		guard:      guard,
		values:     make([]logic.W, nn),
		sched:      make([]logic.W, nn),
		ffQ:        make([]logic.W, len(c.dffCells)),
		inertial:   opts.Mode == Inertial,
		coalesce:   dt.Min() == 0,
		flushEpoch: 1,
		changed:    make([]wideChangeState, nn),
		touchEpoch: make([]int32, nc),
		evalIn:     make(logic.Vector, c.maxIn),
	}
	s.poll.init(opts)
	for i, v := range c.initVals {
		s.values[i] = logic.SplatW(v)
	}
	copy(s.sched, s.values)
	for i := range s.ffQ {
		s.ffQ[i] = logic.SplatW(logic.L0)
	}
	if s.inertial {
		s.inflight = make([][]int32, nn)
		s.cellLanes = make([]uint64, nc)
	}
	switch {
	case opts.Scheduler == SchedulerHeap:
		s.hq = newWideEventHeap()
	case opts.Scheduler == SchedulerCalendar || dt.Max()+2 <= maxCalendarWindow:
		s.cal = newCalendarQueue[int32](dt.Max())
	default:
		s.hq = newWideEventHeap()
	}
	return s
}

// AttachWideMonitor registers a monitor for subsequent cycles.
func (s *WideEventSimulator) AttachWideMonitor(m WideMonitor) { s.monitors = append(s.monitors, m) }

// DetachWideMonitors removes all monitors.
func (s *WideEventSimulator) DetachWideMonitors() { s.monitors = nil }

// Netlist returns the simulated netlist.
func (s *WideEventSimulator) Netlist() *netlist.Netlist { return s.c.n }

// Cycle returns the number of completed cycles.
func (s *WideEventSimulator) Cycle() int { return s.cycle }

// SettleTime returns the time of the last instant of the most recent
// cycle.
func (s *WideEventSimulator) SettleTime() int { return s.settle }

// Events returns the total number of word events processed; each word
// event updates the masked lanes of one net at one instant.
func (s *WideEventSimulator) Events() uint64 { return s.events }

// KernelName implements WideKernel.
func (s *WideEventSimulator) KernelName() string { return "wide-event" }

// Value returns the packed settled value of a net.
func (s *WideEventSimulator) Value(id netlist.NetID) logic.W { return s.values[id] }

// Step simulates one clock cycle for all lanes: pi holds, per primary
// input, the packed per-lane stimulus bits (aligned with the netlist's
// PIs). It returns an error if the network fails to settle within the
// guard time in any lane; all in-flight events are discarded first.
//
//glitchsim:hotpath
func (s *WideEventSimulator) Step(pi []logic.W) error {
	if len(pi) != len(s.c.n.PIs) {
		panic(fmt.Sprintf("sim: stimulus width %d, netlist has %d inputs", len(pi), len(s.c.n.PIs)))
	}

	// 1. Sample DFF D inputs lane-wise: lanes with a known D take it,
	// lanes still at X hold the flipflop's current state.
	for i, d := range s.c.dffD {
		v := s.values[d]
		k := v.Zero | v.One
		q := &s.ffQ[i]
		q.Zero = (v.Zero & k) | (q.Zero &^ k)
		q.One = (v.One & k) | (q.One &^ k)
	}

	// 2. Inject PI changes and DFF Q updates at t=0. The queue is empty
	// here, so projections equal settled values and the diff against the
	// projection is the scalar kernel's v==values no-op elision lane by
	// lane. Injection nets (PIs, DFF Qs) have no combinational driver,
	// so they never interact with inertial claims.
	s.arena = s.arena[:0]
	if s.cal != nil {
		s.cal.reset()
	}
	for i, id := range s.c.n.PIs {
		s.schedule(0, id, pi[i], logic.DiffMask(pi[i], s.sched[id]))
	}
	for i, q := range s.c.dffQ {
		s.schedule(0, q, s.ffQ[i], logic.DiffMask(s.ffQ[i], s.sched[q]))
	}

	// 3. Propagate.
	if s.flushEpoch >= 1<<31-1 {
		for i := range s.changed {
			s.changed[i].epoch = 0
		}
		s.flushEpoch = 1
	}
	if err := s.run(); err != nil {
		return err
	}
	for _, m := range s.monitors {
		m.OnCycleEnd(s.cycle)
	}
	s.cycle++
	return nil
}

// schedule appends an event updating the masked lanes of net to val at
// time t and advances the net's projection. mask must be the lanes that
// differ from the projection (transport) or the re-evaluated lanes to
// claim (inertial); a zero mask is a no-op.
//
//glitchsim:hotpath
func (s *WideEventSimulator) schedule(t int, net netlist.NetID, v logic.W, mask uint64) {
	if mask == 0 {
		return
	}
	s.sched[net] = s.sched[net].Merge(v, mask)
	idx := int32(len(s.arena))
	s.arena = append(s.arena, maskedEvent{val: v, mask: mask, net: net})
	if s.cal != nil {
		s.cal.push(t, idx)
	} else {
		s.hq.push(t, idx)
	}
}

//glitchsim:hotpath
func (s *WideEventSimulator) run() error {
	flushAt := -1
	for !s.queueEmpty() {
		t := s.queueNextTime()
		if t > s.guard {
			// The batch past the guard holds the nets still toggling; pop
			// it for the report — everything is discarded right after.
			var batch []int32
			if s.cal != nil {
				batch = s.cal.popBatch(t)
			} else {
				batch = s.hq.popBatch(t)
			}
			nets := make([]netlist.NetID, 0, maxHotNets)
		collect:
			for _, idx := range batch {
				net := s.arena[idx].net
				for _, seen := range nets {
					if seen == net {
						continue collect
					}
				}
				if nets = append(nets, net); len(nets) == maxHotNets {
					break
				}
			}
			s.discardInFlight()
			return newOscillationError(s.c.n, s.cycle, s.guard, nets)
		}
		if flushAt >= 0 && t > flushAt {
			s.flush(flushAt)
		}
		flushAt = t
		s.applyBatch(t)
		s.evalTouched(t)
		if s.poll.due(s.events) {
			if err := s.poll.poll(s.events, s.cycle); err != nil {
				s.discardInFlight()
				return err
			}
		}
	}
	if flushAt >= 0 {
		s.flush(flushAt)
		s.settle = flushAt
	} else {
		s.settle = 0
	}
	return nil
}

//glitchsim:hotpath
func (s *WideEventSimulator) queueEmpty() bool {
	if s.cal != nil {
		return s.cal.empty()
	}
	return s.hq.empty()
}

//glitchsim:hotpath
func (s *WideEventSimulator) queueNextTime() int {
	if s.cal != nil {
		return s.cal.nextTime()
	}
	return s.hq.nextTime()
}

// applyBatch pops and commits every event at time t: masked lanes merge
// into the packed net values, changes are recorded (directly, or into
// the per-instant coalescing state when zero delays can split an
// instant into several batches), and fanout cells are marked.
//
//glitchsim:hotpath
func (s *WideEventSimulator) applyBatch(t int) {
	if s.epoch == 1<<31-1 {
		clear(s.touchEpoch)
		s.epoch = 0
	}
	s.epoch++
	epoch := s.epoch
	var batch []int32
	if s.cal != nil {
		batch = s.cal.popBatch(t)
	} else {
		batch = s.hq.popBatch(t)
	}
	s.events += uint64(len(batch))
	monitored := len(s.monitors) > 0
	fanStart, fanCells := s.c.fanStart, s.c.fanCells
	values, touchEpoch := s.values, s.touchEpoch
	flushEpoch := s.flushEpoch
	for _, idx := range batch {
		e := &s.arena[idx]
		if s.inertial {
			s.unlist(e.net, idx)
		}
		old := values[e.net]
		// Inertial cancellation can empty a lane's claim after a revert,
		// leaving an event lane equal to the committed value; like the
		// scalar kernel's values==val check, such lanes commit nothing
		// and touch no fanout.
		cm := e.mask & logic.DiffMask(e.val, old)
		if cm == 0 {
			continue
		}
		if monitored {
			if !s.coalesce {
				s.changes = append(s.changes, WideChange{Net: e.net, Old: old, New: old.Merge(e.val, cm)})
			} else if s.changed[e.net].epoch != flushEpoch {
				s.changed[e.net] = wideChangeState{epoch: flushEpoch, init: old}
				s.changedList = append(s.changedList, e.net)
			}
		}
		values[e.net] = old.Merge(e.val, cm)
		for _, cid := range fanCells[fanStart[e.net]:fanStart[e.net+1]] {
			if touchEpoch[cid] != epoch {
				touchEpoch[cid] = epoch
				s.touched = append(s.touched, cid)
			}
			if s.inertial {
				s.cellLanes[cid] |= cm
			}
		}
	}
}

// evalTouched re-evaluates every cell with a changed input and schedules
// the lanes whose outputs will change.
//
//glitchsim:hotpath
func (s *WideEventSimulator) evalTouched(t int) {
	c := s.c
	delays := s.dt.delays
	for _, cid := range s.touched {
		o0, o1, twoOut := evalCellWide(c, s.values, &s.evalIn, &s.evalOut, cid)
		base := outputsPerCell * int(cid)
		var em uint64
		if s.inertial {
			em = s.cellLanes[cid]
			s.cellLanes[cid] = 0
		}
		if o := c.outNets[base]; o != netlist.NoNet {
			s.scheduleOutput(t+int(delays[base]), o, o0, em)
		}
		if twoOut {
			if o := c.outNets[base+1]; o != netlist.NoNet {
				s.scheduleOutput(t+int(delays[base+1]), o, o1, em)
			}
		}
	}
	s.touched = s.touched[:0]
}

// scheduleOutput schedules a re-evaluated cell output. In transport mode
// the mask is the diff against the net's projection (the lane image of
// the scalar kernel's no-op elision — lanes already heading to this
// value schedule nothing). In inertial mode only the lanes in em (those
// whose inputs changed) participate: each claims its net, cancelling the
// lane from any in-flight event, unless it is already settled at the new
// value with nothing in flight.
//
//glitchsim:hotpath
func (s *WideEventSimulator) scheduleOutput(t int, net netlist.NetID, v logic.W, em uint64) {
	if !s.inertial {
		s.schedule(t, net, v, logic.DiffMask(v, s.sched[net]))
		return
	}
	list := s.inflight[net]
	var pend uint64
	for _, idx := range list {
		pend |= s.arena[idx].mask
	}
	m := em & (logic.DiffMask(v, s.values[net]) | pend)
	if m == 0 {
		return
	}
	if m&pend != 0 {
		// The claimed lanes cancel out of every in-flight event (the
		// wide image of lastSerial: per lane, only the newest scheduled
		// value survives).
		kept := list[:0]
		for _, idx := range list {
			if s.arena[idx].mask &= ^m; s.arena[idx].mask != 0 {
				kept = append(kept, idx)
			}
		}
		list = kept
	}
	idx := int32(len(s.arena))
	s.arena = append(s.arena, maskedEvent{val: v, mask: m, net: net})
	s.inflight[net] = append(list, idx)
	if s.cal != nil {
		s.cal.push(t, idx)
	} else {
		s.hq.push(t, idx)
	}
}

// unlist removes a popped event from its net's in-flight list (inertial
// mode only; fully cancelled events are removed at cancellation time, so
// the list is usually one entry).
//
//glitchsim:hotpath
func (s *WideEventSimulator) unlist(net netlist.NetID, idx int32) {
	list := s.inflight[net]
	for i, v := range list {
		if v == idx {
			s.inflight[net] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// flush reports the instant's transitions to the monitors, folding the
// coalescing state (zero-delay models) into per-net initial/final
// changes and dropping lanes that excursed back to their initial value
// within the instant.
//
//glitchsim:hotpath
func (s *WideEventSimulator) flush(t int) {
	if s.coalesce {
		buf := s.changes[:0]
		for _, net := range s.changedList {
			init := s.changed[net].init
			final := s.values[net]
			if init == final {
				continue
			}
			buf = append(buf, WideChange{Net: net, Old: init, New: final})
		}
		s.changes = buf
		s.flushEpoch++
		s.changedList = s.changedList[:0]
	}
	if len(s.changes) > 0 {
		for _, m := range s.monitors {
			m.OnWideChanges(s.cycle, t, s.changes)
		}
	}
	s.changes = s.changes[:0]
}

// ExportState implements WideKernel: at a cycle boundary the settled
// net values are the event kernel's entire dynamic state (the queues
// drained before Step returned, so the projections equal the settled
// values and ffQ[i] == values[dffQ[i]] via the Q-net push at injection).
func (s *WideEventSimulator) ExportState(dst []logic.W) []logic.W {
	return append(dst, s.values...)
}

// ImportState implements WideKernel: it restores the settled net values
// captured by ExportState, resyncs the projections, re-derives the
// flip-flop sample registers from their Q nets, and resets per-cycle
// bookkeeping.
func (s *WideEventSimulator) ImportState(vals []logic.W, cycle int) {
	if len(vals) != len(s.values) {
		panic(fmt.Sprintf("sim: imported state has %d nets, netlist has %d", len(vals), len(s.values)))
	}
	copy(s.values, vals)
	for i, q := range s.c.dffQ {
		s.ffQ[i] = s.values[q]
	}
	s.discardInFlight()
	s.cycle = cycle
}

// discardInFlight clears all pending events and per-cycle bookkeeping so
// a Step after a guard or cancellation error starts from a consistent
// (if functionally stale) state.
func (s *WideEventSimulator) discardInFlight() {
	if s.cal != nil {
		s.cal.clear()
	} else {
		s.hq.clear()
	}
	s.arena = s.arena[:0]
	copy(s.sched, s.values)
	if s.inertial {
		for i := range s.inflight {
			s.inflight[i] = s.inflight[i][:0]
		}
		clear(s.cellLanes)
	}
	s.flushEpoch++
	s.changedList = s.changedList[:0]
	s.changes = s.changes[:0]
	s.touched = s.touched[:0]
}

// wideEventHeap is the fallback scheduler of the wide-event kernel for
// delay models whose per-hop delays exceed the calendar window: a binary
// min-heap of (time, arena index) pairs. Arena indices increase in
// schedule order, so the ordering is exactly the scalar heap's
// (time, serial).
type wideEventHeap struct {
	h     []heapEntry
	batch []int32
}

type heapEntry struct {
	time int32
	idx  int32
}

func newWideEventHeap() *wideEventHeap { return &wideEventHeap{} }

func (q *wideEventHeap) empty() bool   { return len(q.h) == 0 }
func (q *wideEventHeap) nextTime() int { return int(q.h[0].time) }
func (q *wideEventHeap) clear()        { q.h = q.h[:0] }

func (q *wideEventHeap) less(i, j int) bool {
	if q.h[i].time != q.h[j].time {
		return q.h[i].time < q.h[j].time
	}
	return q.h[i].idx < q.h[j].idx
}

func (q *wideEventHeap) push(t int, idx int32) {
	q.h = append(q.h, heapEntry{time: int32(t), idx: idx})
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.less(p, i) {
			break
		}
		q.h[p], q.h[i] = q.h[i], q.h[p]
		i = p
	}
}

func (q *wideEventHeap) pop() int32 {
	top := q.h[0].idx
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.less(l, small) {
			small = l
		}
		if r < last && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return top
}

func (q *wideEventHeap) popBatch(t int) []int32 {
	q.batch = q.batch[:0]
	for len(q.h) > 0 && int(q.h[0].time) == t {
		q.batch = append(q.batch, q.pop())
	}
	return q.batch
}
