package jobs

import (
	"sync"
	"time"
)

// FaultInjector intercepts every job attempt before the Executor runs.
// It exists for fault-injection testing: an injector can return an
// error (transient, to exercise the retry path, or terminal), panic (to
// exercise worker panic containment), or sleep (to exercise deadlines
// and drain grace periods). Production managers leave Options.Injector
// nil — there is no non-test wiring to set one.
//
// BeforeAttempt is called from worker goroutines; implementations must
// be safe for concurrent use.
type FaultInjector interface {
	BeforeAttempt(rec Record, attempt int) error
}

// InjectorFunc adapts a function to FaultInjector.
type InjectorFunc func(rec Record, attempt int) error

// BeforeAttempt implements FaultInjector.
func (f InjectorFunc) BeforeAttempt(rec Record, attempt int) error { return f(rec, attempt) }

// ScriptedFaults is a FaultInjector replaying a fixed per-attempt
// script: attempt n runs Steps[n-1] (attempts past the script's end run
// clean). Each step may return an error, panic, or just delay — or any
// combination. It counts invocations, so tests can assert exactly how
// many attempts ran.
type ScriptedFaults struct {
	// Steps[i] applies to attempt i+1.
	Steps []FaultStep

	mu    sync.Mutex
	calls int
}

// FaultStep is one scripted attempt outcome.
type FaultStep struct {
	// Delay is slept before anything else (latency injection).
	Delay time.Duration
	// Panic, when non-nil, is panicked with.
	Panic any
	// Err, when non-nil, fails the attempt (wrap with Transient to get
	// a retry).
	Err error
}

// BeforeAttempt implements FaultInjector.
func (s *ScriptedFaults) BeforeAttempt(_ Record, attempt int) error {
	s.mu.Lock()
	s.calls++
	var step FaultStep
	if attempt-1 < len(s.Steps) {
		step = s.Steps[attempt-1]
	}
	s.mu.Unlock()
	if step.Delay > 0 {
		time.Sleep(step.Delay)
	}
	if step.Panic != nil {
		panic(step.Panic)
	}
	return step.Err
}

// Calls returns how many attempts the injector has intercepted.
func (s *ScriptedFaults) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}
