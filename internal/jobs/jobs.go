// Package jobs is the durable asynchronous job subsystem behind the
// measurement service: a bounded submission queue feeding a worker
// pool, with classified outcomes, capped-exponential-backoff retries
// for transient failures, per-job deadlines, panic containment, and a
// pluggable Store so queued work and finished results survive a
// process restart.
//
// The package is deliberately ignorant of what a job *does*: execution
// is an injected Executor, so the HTTP layer (internal/service) can run
// measurement and experiment requests through the shared
// glitchsim.Engine while this package owns only the lifecycle:
//
//	queued ──▶ running ──▶ succeeded
//	   │          ├──────▶ failed      (exhausted retries, or panic)
//	   │          ├──────▶ timed_out   (per-job deadline expired)
//	   │          ├──────▶ canceled    (DELETE, or shutdown cancel)
//	   └──────────┴──────▶ queued      (drain checkpoint: re-run later)
//
// Admission is strictly bounded: Submit never buffers beyond the
// configured queue depth, returning ErrQueueFull for the caller to map
// to 429 + Retry-After. Drain stops intake, waits out the grace period
// for running jobs, and checkpoints whatever is still running back to
// queued in the Store, so a restarted manager re-runs exactly the work
// that did not finish.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: admitted, waiting for a worker (also the checkpoint
	// state a drained-but-unfinished job is restored to).
	StateQueued State = "queued"
	// StateRunning: a worker is executing an attempt.
	StateRunning State = "running"
	// StateSucceeded: terminal; the result payload is available.
	StateSucceeded State = "succeeded"
	// StateFailed: terminal; Error (and Stack, for a recovered panic)
	// describe the failure.
	StateFailed State = "failed"
	// StateCanceled: terminal; canceled by the client or at shutdown.
	StateCanceled State = "canceled"
	// StateTimedOut: terminal; the per-job deadline expired.
	StateTimedOut State = "timed_out"
)

// Terminal reports whether the state is final: no worker will touch the
// job again and its record is immutable from here on.
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCanceled, StateTimedOut:
		return true
	}
	return false
}

// Event is one progress update recorded against a job: the lifecycle
// transitions the manager emits (kind "state", with State set) and the
// per-seed/per-row completions the Executor reports while running. The
// events endpoint streams these as NDJSON.
type Event struct {
	// Kind classifies the event: "state" for lifecycle transitions,
	// "retry" for a scheduled backoff, or the executor's own kinds
	// ("seed", "row", "result" from the measurement session).
	Kind string `json:"kind"`
	// Index/Total position a progress event within its request.
	Index int `json:"index,omitempty"`
	Total int `json:"total,omitempty"`
	// State is set on "state" events.
	State State `json:"state,omitempty"`
	// Attempt is the 1-based attempt number, set on "retry" events.
	Attempt int `json:"attempt,omitempty"`
	// Error carries a failure message ("retry" and failing "state"
	// events, or a failed row the executor reported).
	Error string `json:"error,omitempty"`
	// Time stamps the event.
	Time time.Time `json:"time,omitzero"`
}

// Progress summarizes how far a running job has come, counted from the
// executor's progress events.
type Progress struct {
	// Done counts completed work items (seeds, rows); Total the number
	// expected, 0 while unknown.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Record is the persistent state of one job: everything the Store
// snapshots and the status endpoint serves. The Request payload is
// opaque to this package — it is whatever the Executor needs to re-run
// the job after a restart.
type Record struct {
	// ID is the job's handle, assigned at submission.
	ID string `json:"id"`
	// State is the lifecycle state; see the package comment's diagram.
	State State `json:"state"`
	// Kind names the type of work ("measure", "table1", …); the
	// Executor dispatches on it.
	Kind string `json:"kind"`
	// RequestID is the X-Request-Id of the submitting HTTP request,
	// tying the job record back to the access log.
	RequestID string `json:"request_id,omitempty"`
	// Fingerprint is the structural identity (netlist.Fingerprint) of
	// the job's subject circuit, when it has one.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Request is the submitted payload, re-executed verbatim after a
	// restart.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the success payload (StateSucceeded only).
	Result json.RawMessage `json:"result,omitempty"`
	// Error describes the terminal failure (failed/canceled/timed_out).
	Error string `json:"error,omitempty"`
	// Stack is the recovered goroutine stack when a panic failed the
	// job.
	Stack string `json:"stack,omitempty"`
	// Attempts counts execution attempts so far (1-based once running).
	Attempts int `json:"attempts"`
	// Timeout is the per-job deadline across all attempts (0 = none);
	// persisted so a recovered job re-runs under the same budget.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Progress is the executor-reported completion count.
	Progress Progress `json:"progress"`
	// Checkpoint is the executor's latest resumable snapshot, opaque to
	// this package (the service stores a glitchsim.MeasureCheckpoint).
	// It is persisted through the Store at every Hooks.Checkpoint call,
	// survives drain/crash/restart, and is handed back to the Executor
	// in the Record so the next attempt resumes instead of restarting.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// CheckpointCycle is the measurement cycle Checkpoint was taken at.
	CheckpointCycle int `json:"checkpoint_cycle,omitempty"`
	// ResumedFromCycle reports the cycle the job's current (or last)
	// attempt resumed from: 0 for a fresh start, the checkpoint cycle
	// after a drain/crash/retry picked up persisted work.
	ResumedFromCycle int `json:"resumed_from_cycle,omitempty"`
	// Events is the bounded tail of the job's event history (the live
	// stream additionally reaches subscribers as it happens).
	Events []Event `json:"events,omitempty"`

	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

// Clone returns a deep copy of the record, so callers can hold it
// without racing the manager's mutations.
func (r Record) Clone() Record {
	c := r
	c.Request = append(json.RawMessage(nil), r.Request...)
	c.Result = append(json.RawMessage(nil), r.Result...)
	c.Checkpoint = append(json.RawMessage(nil), r.Checkpoint...)
	c.Events = append([]Event(nil), r.Events...)
	return c
}

// Submission is the caller-provided part of a new job.
type Submission struct {
	// Kind dispatches execution; must be non-empty.
	Kind string
	// Request is the opaque payload handed back to the Executor.
	Request json.RawMessage
	// RequestID/Fingerprint annotate the record (optional).
	RequestID   string
	Fingerprint string
	// Timeout overrides the manager's per-job deadline for this job
	// when positive and shorter than the configured Timeout.
	Timeout time.Duration
}

// Hooks is the manager-provided side channel of one execution attempt:
// progress events, checkpoint persistence and the drain signal. All
// fields are non-nil/usable for every attempt.
type Hooks struct {
	// Emit publishes a progress event into the job's record and live
	// stream. Safe for concurrent use — batch executors report from
	// many goroutines.
	Emit func(Event)
	// Checkpoint persists a resumable snapshot against the job record
	// (Record.Checkpoint/CheckpointCycle) through the Store — the
	// durability point of checkpointed execution. Safe for concurrent
	// use; each call supersedes the previous snapshot.
	Checkpoint func(snapshot json.RawMessage, cycle int)
	// Draining is closed when the manager begins a graceful drain.
	// Checkpoint-aware executors stop at their next chunk boundary —
	// persisting via Checkpoint and returning ErrCheckpointed — which
	// bounds drain latency to one chunk instead of the full job.
	Draining <-chan struct{}
}

// Executor runs one job attempt. The context carries the job's
// deadline and is canceled by DELETE and at shutdown; implementations
// must honour it promptly. h carries the attempt's progress/checkpoint
// hooks (see Hooks). The returned payload becomes the job's Result.
//
// A Record with a non-empty Checkpoint is a resume request: the
// executor should continue from that snapshot rather than from zero.
// Returning ErrCheckpointed (optionally wrapped) parks the job back in
// the queue with its persisted checkpoint — used for voluntary stops
// at drain. An error wrapped with Transient is retried under the
// manager's backoff policy; any other error (or a panic, which the
// manager recovers and records with its stack) fails the job.
type Executor interface {
	Execute(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
	return f(ctx, rec, h)
}

// Sentinel errors of the admission and lifecycle surface.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity. The service maps it to 429 with Retry-After.
	ErrQueueFull = errors.New("jobs: submission queue full")
	// ErrDraining rejects submissions after Drain has begun.
	ErrDraining = errors.New("jobs: manager draining")
	// ErrUnknownJob reports an ID no record exists for.
	ErrUnknownJob = errors.New("jobs: unknown job")
	// ErrFinished reports an operation (cancel) on a terminal job.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrCheckpointed, returned by an Executor, reports a voluntary stop
	// at a persisted checkpoint (typically on the Hooks.Draining
	// signal): the job is parked back in the queue — not failed — and
	// the interrupted attempt does not count against the retry budget.
	ErrCheckpointed = errors.New("jobs: execution stopped at a checkpoint")

	// errTimeout/errCanceled/errCheckpoint are the context causes the
	// manager distinguishes terminal states by.
	errTimeout    = errors.New("jobs: job deadline exceeded")
	errCanceled   = errors.New("jobs: job canceled")
	errCheckpoint = errors.New("jobs: checkpointed at shutdown")
)

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return fmt.Sprintf("transient: %v", t.err) }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so the manager retries the attempt under the
// backoff policy instead of failing the job. Executors classify their
// own failures: a busy engine slot or an injected fault is transient, a
// malformed request is not. Wrapping nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// newID returns a fresh job handle: 16 hex digits, filesystem- and
// URL-safe (it is the Store key and the REST path element).
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; satisfy the
		// linter without inventing a weaker fallback.
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}
