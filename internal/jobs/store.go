package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
)

// Store persists job records across manager restarts. The manager
// writes a record on every lifecycle transition (queued, running,
// terminal, checkpoint), so at any instant the store holds a
// recoverable snapshot: terminal records keep serving their results
// after a restart, queued/running records are re-enqueued.
//
// Implementations must be safe for concurrent use. Store failures are
// logged by the manager but never fail the job itself — an unwritable
// disk degrades durability, not availability.
type Store interface {
	// Put writes (or overwrites) the record keyed by its ID.
	Put(rec Record) error
	// Get reads one record; the boolean reports whether it exists.
	Get(id string) (Record, bool, error)
	// List returns every stored record, in no particular order.
	List() ([]Record, error)
	// Delete removes a record (missing IDs are not an error).
	Delete(id string) error
}

// MemStore is the in-memory Store: durable across manager drains within
// one process, gone with it. The zero value is not usable; call
// NewMemStore.
type MemStore struct {
	mu   sync.Mutex
	recs map[string]Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{recs: make(map[string]Record)} }

// Put implements Store.
func (s *MemStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.ID] = rec.Clone()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id string) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[id]
	if !ok {
		return Record{}, false, nil
	}
	return rec.Clone(), true, nil
}

// List implements Store.
func (s *MemStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		out = append(out, rec.Clone())
	}
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.recs, id)
	return nil
}

// FileStore persists each record as one pretty-printed JSON document,
// <dir>/<id>.json, written atomically (temp file + rename) so a crash
// mid-write never leaves a truncated record. Job IDs are 16 hex digits
// (see newID), so the ID is used as the file name verbatim; defensive
// validation rejects anything else to keep the store inside its
// directory.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileStore opens (creating if needed) the store directory and
// sweeps temp files left by writes a crash interrupted: a dot-prefixed
// ".<id>.tmp-*" file is a Put whose rename never happened, so its
// content was never promised to a reader — deleting it is the correct
// recovery (the previous complete version of the record, if any, is
// still in place).
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store directory: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: scanning store directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\.") {
		return "", fmt.Errorf("jobs: invalid job id %q", id)
	}
	return filepath.Join(s.dir, id+".json"), nil
}

// Put implements Store.
func (s *FileStore) Put(rec Record) error {
	path, err := s.path(rec.ID)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("jobs: encoding record %s: %w", rec.ID, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+rec.ID+".tmp-")
	if err != nil {
		return fmt.Errorf("jobs: writing record %s: %w", rec.ID, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: writing record %s: %w", rec.ID, err)
	}
	// fsync before the rename and fsync the directory after it: the
	// rename must never become visible ahead of the bytes it points to,
	// and the new directory entry itself must reach the disk — otherwise
	// a power cut can roll a checkpointed record back to an older (or
	// missing) version after the manager already promised durability.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: syncing record %s: %w", rec.ID, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: writing record %s: %w", rec.ID, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("jobs: writing record %s: %w", rec.ID, err)
	}
	return syncDir(s.dir, rec.ID)
}

// syncDir fsyncs the store directory so a just-renamed record's
// directory entry is durable. Filesystems that refuse to sync a
// directory handle (some CI sandboxes and network mounts) degrade
// durability, not availability: the rename already happened, so the
// record is visible to every reader.
func syncDir(dir, id string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("jobs: opening store directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("jobs: syncing store directory for record %s: %w", id, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id string) (Record, bool, error) {
	path, err := s.path(id)
	if err != nil {
		return Record{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Record{}, false, nil
	}
	if err != nil {
		return Record{}, false, fmt.Errorf("jobs: reading record %s: %w", id, err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, false, fmt.Errorf("jobs: decoding record %s: %w", id, err)
	}
	return rec, true, nil
}

// List implements Store. A record that fails to decode (e.g. a file
// damaged outside the store's control) is skipped rather than poisoning
// recovery of the rest; the first such error is reported alongside the
// readable records.
func (s *FileStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: listing store: %w", err)
	}
	var out []Record
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: reading %s: %w", name, err)
			}
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: decoding %s: %w", name, err)
			}
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out, firstErr
}

// Delete implements Store.
func (s *FileStore) Delete(id string) error {
	path, err := s.path(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: deleting record %s: %w", id, err)
	}
	return nil
}
