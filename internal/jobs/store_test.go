package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestJobsFileStoreRoundTrip pins the on-disk format: one JSON document
// per job, atomic writes, lossless Put/Get/List/Delete.
func TestJobsFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		ID:          "deadbeef01234567",
		State:       StateSucceeded,
		Kind:        "measure",
		RequestID:   "req-9",
		Fingerprint: "fp-9",
		Request:     json.RawMessage(`{"circuit":"rca16"}`),
		Result:      json.RawMessage(`{"activity":{}}`),
		Attempts:    2,
		Timeout:     time.Minute,
		Progress:    Progress{Done: 3, Total: 3},
		Events:      []Event{{Kind: "state", State: StateQueued, Time: time.Now().UTC().Truncate(time.Second)}},
		CreatedAt:   time.Now().UTC().Truncate(time.Second),
		FinishedAt:  time.Now().UTC().Truncate(time.Second),
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, rec.ID+".json")); err != nil {
		t.Fatalf("record file missing: %v", err)
	}
	got, ok, err := st.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	a, _ := json.Marshal(rec)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip mismatch:\nput: %s\ngot: %s", a, b)
	}
	recs, err := st.List()
	if err != nil || len(recs) != 1 {
		t.Fatalf("List = %d records, err %v; want 1", len(recs), err)
	}
	if err := st.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(rec.ID); ok {
		t.Fatal("record survived Delete")
	}
	if err := st.Delete(rec.ID); err != nil {
		t.Fatalf("Delete of a missing record errored: %v", err)
	}
}

// TestJobsFileStoreRejectsTraversal pins that IDs cannot escape the
// store directory.
func TestJobsFileStoreRejectsTraversal(t *testing.T) {
	st, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "a/b", `a\b`, "x.json"} {
		if err := st.Put(Record{ID: id}); err == nil {
			t.Errorf("Put(%q) accepted an unsafe id", id)
		}
	}
}

// TestJobsFileStoreSkipsCorrupt pins recovery resilience: a damaged
// record file is skipped (and reported) without hiding the healthy
// ones.
func TestJobsFileStoreSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Record{ID: "aaaaaaaaaaaaaaaa", State: StateQueued, Kind: "measure", CreatedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bbbbbbbbbbbbbbbb.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := st.List()
	if err == nil {
		t.Error("List over a corrupt record reported no error")
	}
	if len(recs) != 1 || recs[0].ID != "aaaaaaaaaaaaaaaa" {
		t.Fatalf("List = %+v, want just the healthy record", recs)
	}
}

// TestRecoverStaleTempFiles: temp files left by a Put a crash
// interrupted (the rename never happened) are swept when the store
// reopens, and the previous complete version of the record still
// serves. This is the crash-mid-write half of the atomic-rename
// contract.
func TestRecoverStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "cccccccccccccccc", State: StateQueued, Kind: "measure", CreatedAt: time.Now().UTC()}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-overwrite: a partially written temp file for
	// the same record, plus one for a record that never completed at all.
	for _, name := range []string{".cccccccccccccccc.tmp-123456", ".dddddddddddddddd.tmp-987654"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(`{"id": "torn`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if bytes.Contains([]byte(e.Name()), []byte(".tmp-")) {
			t.Errorf("stale temp file %s survived reopen", e.Name())
		}
	}
	got, ok, err := st2.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get after sweep: ok=%v err=%v", ok, err)
	}
	if got.ID != rec.ID || got.State != rec.State {
		t.Errorf("record after sweep = %+v, want %+v", got, rec)
	}
	recs, err := st2.List()
	if err != nil {
		t.Fatalf("List after sweep: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("List after sweep = %d records, want 1", len(recs))
	}
}

// TestRecoverTruncatedRecord: a record file truncated mid-JSON (damage
// outside the store's atomic-write control) is skipped by List with an
// error, reported missing by Get, and does not block recovery of the
// healthy records — and the manager side of recovery (NewManager over
// the store) still starts.
func TestRecoverTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	healthy := Record{ID: "aaaaaaaaaaaaaaaa", State: StateSucceeded, Kind: "measure",
		Result: json.RawMessage(`{"ok":true}`), CreatedAt: time.Now().UTC()}
	if err := st.Put(healthy); err != nil {
		t.Fatal(err)
	}
	torn := Record{ID: "bbbbbbbbbbbbbbbb", State: StateQueued, Kind: "measure", CreatedAt: time.Now().UTC()}
	if err := st.Put(torn); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, torn.ID+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Get(torn.ID); err == nil {
		t.Error("Get on a truncated record reported no error")
	}
	recs, err := st2.List()
	if err == nil {
		t.Error("List over a truncated record reported no error")
	}
	if len(recs) != 1 || recs[0].ID != healthy.ID {
		t.Fatalf("List = %+v, want just the healthy record", recs)
	}

	// Manager recovery over the damaged store: starts, serves the
	// healthy terminal record.
	mgr, err := NewManager(ExecutorFunc(func(context.Context, Record, Hooks) (json.RawMessage, error) {
		return json.RawMessage(`{}`), nil
	}), Options{BaseContext: context.Background(), Store: st2})
	if err != nil {
		t.Fatalf("NewManager over damaged store: %v", err)
	}
	defer mgr.Drain(context.Background())
	if rec, err := mgr.Get(healthy.ID); err != nil || rec.State != StateSucceeded {
		t.Errorf("recovered record = %+v err=%v, want succeeded", rec, err)
	}
}

// TestDrainCheckpointAndRestartRecovery is the full durability
// scenario of the acceptance criteria: with jobs queued AND running, a
// drain whose grace period expires checkpoints the running job back to
// queued; a fresh manager over the same on-disk store still serves the
// completed result and re-runs both the queued and the checkpointed
// job.
func TestDrainCheckpointAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: one job completes, one wedges mid-run, one stays queued.
	// The executor dispatches on the payload: {"fast":true} succeeds
	// immediately, anything else wedges until its context is canceled.
	started := make(chan string, 2)
	release := make(chan struct{})
	defer close(release)
	exec := ExecutorFunc(func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
		var p struct {
			Fast bool `json:"fast"`
		}
		if err := json.Unmarshal(rec.Request, &p); err == nil && p.Fast {
			return json.RawMessage(`{"ok":true}`), nil
		}
		started <- rec.ID
		select {
		case <-release:
			return json.RawMessage(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	m1, err := NewManager(exec, Options{BaseContext: context.Background(), Workers: 1, QueueDepth: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	done, _ := m1.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{"fast":true}`)})
	waitState(t, m1, done.ID, StateSucceeded)

	running, _ := m1.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{"n":2}`)})
	<-started
	queued, _ := m1.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{"n":3}`)})

	// Drain with a grace period the wedged job cannot meet.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := m1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cancel()

	for _, tc := range []struct {
		id   string
		want State
	}{{done.ID, StateSucceeded}, {running.ID, StateQueued}, {queued.ID, StateQueued}} {
		rec, ok, err := st.Get(tc.id)
		if err != nil || !ok {
			t.Fatalf("store.Get(%s): ok=%v err=%v", tc.id, ok, err)
		}
		if rec.State != tc.want {
			t.Fatalf("after drain, store has %s in state %q, want %q", tc.id, rec.State, tc.want)
		}
	}

	// Phase 2: a fresh manager over the same directory.
	m2, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 2, QueueDepth: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m2)

	// The completed result survived the restart...
	got, err := m2.Get(done.ID)
	if err != nil {
		t.Fatalf("restarted Get(%s): %v", done.ID, err)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, got.Result); err != nil {
		t.Fatalf("recovered result is not JSON: %v", err)
	}
	if got.State != StateSucceeded || compacted.String() != `{"ok":true}` {
		t.Fatalf("recovered completed job = %+v, want succeeded with its result", got)
	}
	// ...and the unfinished jobs re-ran to completion.
	waitState(t, m2, running.ID, StateSucceeded)
	waitState(t, m2, queued.ID, StateSucceeded)
}

// TestRecoverRunningAsQueued pins that a record persisted as "running"
// (a crash, not a graceful drain) is recovered as queued and re-run —
// and that the attempt count survives the restart: a crash must not
// refill the retry budget, or a job that crashes the worker could loop
// forever.
func TestRecoverRunningAsQueued(t *testing.T) {
	st := NewMemStore()
	if err := st.Put(Record{
		ID: "cccccccccccccccc", State: StateRunning, Kind: "measure",
		Attempts: 2, Progress: Progress{Done: 1, Total: 4},
		CreatedAt: time.Now(), StartedAt: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 1, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)
	got := waitState(t, m, "cccccccccccccccc", StateSucceeded)
	if got.Attempts != 3 {
		t.Errorf("recovered job attempts = %d, want 3 (2 persisted + the re-run)", got.Attempts)
	}
	if got.ResumedFromCycle != 0 {
		t.Errorf("recovered job without a checkpoint reports resumed_from_cycle = %d, want 0", got.ResumedFromCycle)
	}
}

// TestRecoverOverflowingQueue pins that recovery admits every stored
// pending job even when there are more than the configured queue depth.
func TestRecoverOverflowingQueue(t *testing.T) {
	st := NewMemStore()
	base := time.Now()
	for i := 0; i < 5; i++ {
		id := string(rune('a'+i)) + "aaaaaaaaaaaaaaa"
		if err := st.Put(Record{ID: id, State: StateQueued, Kind: "measure", CreatedAt: base.Add(time.Duration(i))}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 2, QueueDepth: 2, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)
	for i := 0; i < 5; i++ {
		waitState(t, m, string(rune('a'+i))+"aaaaaaaaaaaaaaa", StateSucceeded)
	}
}
