package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// RetryPolicy caps how transient failures are retried: capped
// exponential backoff with jitter, up to a retry budget.
type RetryPolicy struct {
	// MaxAttempts bounds total execution attempts per job (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 100ms); each retry
	// doubles it up to MaxDelay (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff returns the delay before retrying after the given (1-based)
// failed attempt: BaseDelay·2^(attempt-1) capped at MaxDelay, with the
// upper half jittered so a burst of failures does not retry in
// lockstep.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	if half > 0 {
		d = half + time.Duration(rand.Int64N(int64(half)+1))
	}
	return d
}

// Options configures a Manager.
type Options struct {
	// BaseContext is the root context every job attempt derives from;
	// canceling it cancels all running jobs. It is required — pass
	// context.Background() (or a signal-bound context) from the process
	// entry point. The manager never mints its own root, so the
	// caller's cancellation stays plumbed end to end (the ctxbg
	// analyzer in internal/analysis enforces this repo-wide).
	BaseContext context.Context
	// Workers is the number of concurrent job executors (default 2).
	// Each worker runs one job at a time; within a job, the Executor
	// may fan out further (the Engine's own pool and concurrency bound
	// govern that).
	Workers int
	// QueueDepth bounds the submission queue (default 64). Admission
	// beyond it fails with ErrQueueFull — the manager never buffers
	// unboundedly.
	QueueDepth int
	// Timeout is the per-job deadline across all attempts (default 10
	// minutes; negative disables). A Submission.Timeout shortens it per
	// job.
	Timeout time.Duration
	// Retry governs transient-failure retries.
	Retry RetryPolicy
	// Store persists records across restarts (default NewMemStore()).
	Store Store
	// Injector, when non-nil, intercepts every attempt — test-only
	// fault injection (see FaultInjector).
	Injector FaultInjector
	// Logf receives operational log lines (store failures, recovered
	// panics). Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Minute
	}
	o.Retry = o.Retry.withDefaults()
	if o.Store == nil {
		o.Store = NewMemStore()
	}
	return o
}

// maxRecordedEvents bounds the per-job event tail kept in the record
// (live subscribers additionally receive every event as it happens).
const maxRecordedEvents = 256

// subBuffer is each subscriber channel's capacity; a subscriber that
// falls further behind than this loses events rather than blocking the
// measurement (the record's tail is the catch-up path).
const subBuffer = 128

// job is the manager's live handle on one record: the Record plus the
// running attempt's cancel function and the event subscribers. All
// fields are guarded by the manager's mutex.
type job struct {
	rec    Record
	cancel context.CancelCauseFunc // non-nil while an attempt is running
	subs   []chan Event
}

// Manager owns the job lifecycle: a bounded submission queue feeding a
// fixed worker pool, with retries, deadlines, panic containment,
// persistence and graceful drain. Create one with NewManager; all
// methods are safe for concurrent use.
type Manager struct {
	exec Executor
	opts Options

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool
}

// NewManager starts a manager executing jobs through exec. Records
// found in the configured Store are recovered first: terminal records
// keep serving their results, queued/running records are reset to
// queued and re-enqueued (in creation order) ahead of new submissions.
func NewManager(exec Executor, opts Options) (*Manager, error) {
	if exec == nil {
		return nil, errors.New("jobs: NewManager needs an executor")
	}
	if opts.BaseContext == nil {
		return nil, errors.New("jobs: Options.BaseContext is required (pass context.Background() from the entry point)")
	}
	opts = opts.withDefaults()
	m := &Manager{
		exec: exec,
		opts: opts,
		stop: make(chan struct{}),
		jobs: make(map[string]*job),
	}

	recs, err := opts.Store.List()
	if err != nil {
		if recs == nil {
			return nil, err
		}
		m.logf("jobs: partial store recovery: %v", err)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].CreatedAt.Before(recs[j].CreatedAt) })
	var pending []*job
	for _, rec := range recs {
		j := &job{rec: rec.Clone()}
		if !rec.State.Terminal() {
			// Attempts, Progress and the checkpoint payload survive the
			// restart: a recovered job resumes from its last persisted
			// checkpoint instead of re-running from cycle zero, and its
			// history stays honest.
			j.rec.State = StateQueued
			j.rec.StartedAt = time.Time{}
			j.rec.Events = appendEvent(j.rec.Events, Event{Kind: "state", State: StateQueued, Time: time.Now()})
			pending = append(pending, j)
		}
		m.jobs[j.rec.ID] = j
	}
	// The queue must hold every recovered job even when the store
	// outgrew the configured depth between runs.
	depth := opts.QueueDepth
	if len(pending) > depth {
		depth = len(pending)
	}
	m.queue = make(chan *job, depth)
	for _, j := range pending {
		m.persist(j.rec.Clone())
		m.queue <- j
	}

	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// persist writes a record snapshot to the store. Store failures degrade
// durability, never availability: they are logged and the job carries
// on.
func (m *Manager) persist(rec Record) {
	if err := m.opts.Store.Put(rec); err != nil {
		m.logf("jobs: persisting %s: %v", rec.ID, err)
	}
}

// Submit admits a new job, returning its queued record, or ErrQueueFull
// when the bounded queue is at capacity (the caller maps that to 429 +
// Retry-After) / ErrDraining during shutdown.
func (m *Manager) Submit(sub Submission) (Record, error) {
	if sub.Kind == "" {
		return Record{}, errors.New("jobs: submission needs a kind")
	}
	timeout := m.opts.Timeout
	if sub.Timeout > 0 && (timeout <= 0 || sub.Timeout < timeout) {
		timeout = sub.Timeout
	}
	j := &job{rec: Record{
		ID:          newID(),
		State:       StateQueued,
		Kind:        sub.Kind,
		RequestID:   sub.RequestID,
		Fingerprint: sub.Fingerprint,
		Request:     append(json.RawMessage(nil), sub.Request...),
		Timeout:     timeout,
		CreatedAt:   time.Now(),
	}}
	j.rec.Events = appendEvent(nil, Event{Kind: "state", State: StateQueued, Time: j.rec.CreatedAt})

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Record{}, ErrDraining
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return Record{}, ErrQueueFull
	}
	m.jobs[j.rec.ID] = j
	rec := j.rec.Clone()
	m.mu.Unlock()

	m.persist(rec)
	return rec, nil
}

// Get returns a snapshot of the record for id.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Record{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.rec.Clone(), nil
}

// List returns snapshots of every known record, newest first.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.rec.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.After(out[j].CreatedAt) })
	return out
}

// Stats is a point-in-time view of the manager's load, for health
// endpoints and Retry-After estimates.
type Stats struct {
	// Queued and Running count non-terminal jobs; QueueCap is the
	// admission bound; Workers the pool size.
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	QueueCap int  `json:"queue_cap"`
	Workers  int  `json:"workers"`
	Draining bool `json:"draining,omitempty"`
}

// Stats returns the current load counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{QueueCap: m.opts.QueueDepth, Workers: m.opts.Workers, Draining: m.draining}
	for _, j := range m.jobs {
		switch j.rec.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	return st
}

// Cancel cancels the job: a queued job transitions to canceled
// immediately, a running one has its context canceled (the worker
// records the terminal state). The returned snapshot reflects the state
// at return, which for a running job is still "running" until the
// executor unwinds. ErrFinished reports a job already terminal.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Record{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.rec.State.Terminal() {
		rec := j.rec.Clone()
		m.mu.Unlock()
		return rec, ErrFinished
	}
	if j.rec.State == StateQueued {
		rec := m.finishLocked(j, StateCanceled, nil, errCanceled, "")
		m.mu.Unlock()
		m.persist(rec)
		return rec, nil
	}
	cancel := j.cancel
	rec := j.rec.Clone()
	m.mu.Unlock()
	if cancel != nil {
		cancel(errCanceled)
	}
	return rec, nil
}

// Subscribe returns the job's recorded event tail and, for a job that
// is not yet terminal, a live channel of subsequent events; the channel
// is closed when the job reaches a terminal state. stop unregisters the
// subscription (safe to call at any time, including after the close).
func (m *Manager) Subscribe(id string) (past []Event, live <-chan Event, stop func(), err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	past = append([]Event(nil), j.rec.Events...)
	if j.rec.State.Terminal() {
		return past, nil, func() {}, nil
	}
	ch := make(chan Event, subBuffer)
	j.subs = append(j.subs, ch)
	stop = func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, s := range j.subs {
			if s == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return past, ch, stop, nil
}

// Drain gracefully shuts the manager down: intake stops (Submit answers
// ErrDraining), queued jobs stay queued in the store for the next run,
// and running jobs get until ctx's deadline to finish. Jobs still
// running when the grace period expires are canceled and checkpointed
// back to queued in the store, so a restarted manager re-runs them.
// Drain returns once all workers have exited; calling it twice is safe.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.stop)
	}

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.cancel != nil {
				j.cancel(errCheckpoint)
			}
		}
		m.mu.Unlock()
		<-done
	}
	return nil
}

// worker pulls queued jobs and runs them until the manager drains.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		select {
		case <-m.stop:
			return
		case j := <-m.queue:
			// A drain that raced the receive: leave the job queued (its
			// record is already persisted as such) for the next run.
			select {
			case <-m.stop:
				return
			default:
			}
			m.run(j)
		}
	}
}

// run executes one job to a terminal state (or a drain checkpoint).
func (m *Manager) run(j *job) {
	m.mu.Lock()
	if j.rec.State != StateQueued { // canceled while waiting
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancelCause(m.opts.BaseContext)
	stopTimer := func() {}
	if j.rec.Timeout > 0 {
		var tctx context.Context
		tctx, stopTimer = context.WithTimeoutCause(ctx, j.rec.Timeout, errTimeout)
		ctx = tctx
	}
	j.cancel = cancel
	j.rec.State = StateRunning
	j.rec.StartedAt = time.Now()
	rec := j.rec.Clone()
	m.emitLocked(j, Event{Kind: "state", State: StateRunning})
	m.mu.Unlock()
	m.persist(rec)
	defer func() {
		stopTimer()
		cancel(nil)
	}()

	for {
		m.mu.Lock()
		j.rec.Attempts++
		// A resuming attempt (persisted checkpoint on record) keeps its
		// progress counters; only a from-scratch attempt starts clean.
		if len(j.rec.Checkpoint) == 0 {
			j.rec.Progress = Progress{}
		}
		j.rec.ResumedFromCycle = j.rec.CheckpointCycle
		attempt := j.rec.Attempts
		snapshot := j.rec.Clone()
		m.mu.Unlock()

		result, err := m.attempt(ctx, j, snapshot, attempt)
		if err == nil {
			m.finish(j, StateSucceeded, result, nil, "")
			return
		}
		if errors.Is(err, ErrCheckpointed) {
			// A voluntary stop at a persisted checkpoint (drain): park the
			// job back in the queue; the next run resumes it.
			m.checkpoint(j)
			return
		}
		if ctx.Err() != nil {
			m.finishFromContext(ctx, j, attempt, err)
			return
		}
		var pe *panicError
		if errors.As(err, &pe) {
			m.logf("jobs: job %s attempt %d panicked: %v", j.rec.ID, attempt, pe.val)
			m.finish(j, StateFailed, nil, fmt.Errorf("attempt %d panicked: %v", attempt, pe.val), pe.stack)
			return
		}
		if !IsTransient(err) || attempt >= m.opts.Retry.MaxAttempts {
			m.finish(j, StateFailed, nil, fmt.Errorf("attempt %d: %w", attempt, err), "")
			return
		}
		delay := m.opts.Retry.backoff(attempt)
		m.emit(j, Event{Kind: "retry", Attempt: attempt, Error: err.Error()})
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			m.finishFromContext(ctx, j, attempt, err)
			return
		}
	}
}

// finishFromContext maps the canceled job context's cause onto the
// terminal state: deadline → timed_out, drain checkpoint → back to
// queued, anything else → canceled.
func (m *Manager) finishFromContext(ctx context.Context, j *job, attempt int, err error) {
	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, errTimeout):
		m.finish(j, StateTimedOut, nil, fmt.Errorf("deadline exceeded on attempt %d: %w", attempt, err), "")
	case errors.Is(cause, errCheckpoint):
		m.checkpoint(j)
	default:
		m.finish(j, StateCanceled, nil, fmt.Errorf("canceled on attempt %d", attempt), "")
	}
}

// attempt runs one execution attempt, converting a panic anywhere below
// (executor, injector) into a *panicError so the worker — and the
// daemon — survive it.
func (m *Manager) attempt(ctx context.Context, j *job, rec Record, attempt int) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: string(debug.Stack())}
		}
	}()
	if inj := m.opts.Injector; inj != nil {
		if ferr := inj.BeforeAttempt(rec, attempt); ferr != nil {
			return nil, ferr
		}
	}
	return m.exec.Execute(ctx, rec, Hooks{
		Emit:       func(ev Event) { m.progress(j, ev) },
		Checkpoint: func(snapshot json.RawMessage, cycle int) { m.storeCheckpoint(j, snapshot, cycle) },
		Draining:   m.stop,
	})
}

// storeCheckpoint records and persists an executor checkpoint: the
// durability point of resumable execution. The snapshot supersedes any
// previous one; the "checkpoint" event carries the cycle as Index so
// the live stream shows checkpoints as they land.
func (m *Manager) storeCheckpoint(j *job, snapshot json.RawMessage, cycle int) {
	m.mu.Lock()
	j.rec.Checkpoint = append(json.RawMessage(nil), snapshot...)
	j.rec.CheckpointCycle = cycle
	m.emitLocked(j, Event{Kind: "checkpoint", Index: cycle})
	rec := j.rec.Clone()
	m.mu.Unlock()
	m.persist(rec)
}

// panicError carries a recovered panic value and its stack through the
// error return of attempt.
type panicError struct {
	val   any
	stack string
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// progress records an executor progress event and updates the job's
// completion counters.
func (m *Manager) progress(j *job, ev Event) {
	m.mu.Lock()
	switch ev.Kind {
	case "seed", "row":
		j.rec.Progress.Done++
		if ev.Total > j.rec.Progress.Total {
			j.rec.Progress.Total = ev.Total
		}
	case "result":
		if j.rec.Progress.Total == 0 {
			j.rec.Progress.Total = 1
		}
		j.rec.Progress.Done = j.rec.Progress.Total
	}
	m.emitLocked(j, ev)
	m.mu.Unlock()
}

// emit records an event against the job and fans it out to live
// subscribers.
func (m *Manager) emit(j *job, ev Event) {
	m.mu.Lock()
	m.emitLocked(j, ev)
	m.mu.Unlock()
}

func (m *Manager) emitLocked(j *job, ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	j.rec.Events = appendEvent(j.rec.Events, ev)
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default: // a stalled subscriber loses events, never blocks the job
		}
	}
}

// appendEvent appends to the bounded event tail, dropping the oldest
// entries past maxRecordedEvents.
func appendEvent(events []Event, ev Event) []Event {
	events = append(events, ev)
	if n := len(events); n > maxRecordedEvents {
		events = append(events[:0], events[n-maxRecordedEvents:]...)
	}
	return events
}

// finish moves the job to a terminal state, emits the final event,
// closes subscribers and persists the record.
func (m *Manager) finish(j *job, state State, result json.RawMessage, err error, stack string) {
	m.mu.Lock()
	rec := m.finishLocked(j, state, result, err, stack)
	m.mu.Unlock()
	m.persist(rec)
}

func (m *Manager) finishLocked(j *job, state State, result json.RawMessage, err error, stack string) Record {
	j.rec.State = state
	j.rec.FinishedAt = time.Now()
	j.rec.Result = result
	j.rec.Stack = stack
	// Terminal records drop their (potentially large) checkpoint payload:
	// no worker will resume them. ResumedFromCycle stays, recording how
	// the final attempt started.
	j.rec.Checkpoint = nil
	j.rec.CheckpointCycle = 0
	j.cancel = nil
	if err != nil {
		j.rec.Error = err.Error()
	}
	if state == StateSucceeded {
		j.rec.Error = ""
	}
	ev := Event{Kind: "state", State: state}
	if j.rec.Error != "" {
		ev.Error = j.rec.Error
	}
	m.emitLocked(j, ev)
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	return j.rec.Clone()
}

// checkpoint parks a drained-but-unfinished job back to queued in the
// store. Attempts, Progress and the persisted checkpoint payload are
// kept — the next manager run resumes from the last completed chunk,
// not from scratch — except that the interrupted attempt is uncounted:
// a drain is not a failure and must not consume the retry budget.
func (m *Manager) checkpoint(j *job) {
	m.mu.Lock()
	j.rec.State = StateQueued
	j.rec.StartedAt = time.Time{}
	j.rec.FinishedAt = time.Time{}
	if j.rec.Attempts > 0 {
		j.rec.Attempts--
	}
	j.cancel = nil
	m.emitLocked(j, Event{Kind: "state", State: StateQueued, Error: errCheckpoint.Error()})
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	rec := j.rec.Clone()
	m.mu.Unlock()
	m.persist(rec)
}
