package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"glitchsim/internal/testutil"
)

// waitState polls until the job reaches state (or the deadline).
func waitState(t *testing.T, m *Manager, id string, state State) Record {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if rec.State == state {
			return rec
		}
		if rec.State.Terminal() {
			t.Fatalf("job %s reached terminal state %q, want %q (error: %s)", id, rec.State, state, rec.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %q", id, state)
	return Record{}
}

// okExec is an executor that immediately succeeds with a fixed payload.
func okExec() Executor {
	return ExecutorFunc(func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
		h.Emit(Event{Kind: "result", Total: 1})
		return json.RawMessage(`{"ok":true}`), nil
	})
}

// gateExec blocks every execution until release is closed (or the job
// context ends, which it surfaces as the context error).
func gateExec(started chan<- string, release <-chan struct{}) Executor {
	return ExecutorFunc(func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
		if started != nil {
			started <- rec.ID
		}
		select {
		case <-release:
			return json.RawMessage(`{"ok":true}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
}

func drainNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestJobsSucceed covers the happy path: submit, run, result payload,
// progress accounting and the recorded event tail.
func TestJobsSucceed(t *testing.T) {
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, err := m.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{"x":1}`), RequestID: "req-1", Fingerprint: "fp-1"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rec.State != StateQueued || rec.ID == "" {
		t.Fatalf("submitted record = %+v, want queued with an ID", rec)
	}
	got := waitState(t, m, rec.ID, StateSucceeded)
	if string(got.Result) != `{"ok":true}` {
		t.Errorf("result = %s, want {\"ok\":true}", got.Result)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", got.Attempts)
	}
	if got.Progress != (Progress{Done: 1, Total: 1}) {
		t.Errorf("progress = %+v, want 1/1", got.Progress)
	}
	if got.RequestID != "req-1" || got.Fingerprint != "fp-1" {
		t.Errorf("annotations not threaded: %+v", got)
	}
	var kinds []string
	for _, ev := range got.Events {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"state", "state", "result", "state"} // queued, running, result, succeeded
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("event kinds = %v, want %v", kinds, want)
	}
}

// TestJobsQueueFull pins bounded admission: with one worker wedged and
// the queue at capacity, the next submission is rejected with
// ErrQueueFull instead of buffering without bound.
func TestJobsQueueFull(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, err := NewManager(gateExec(started, release), Options{BaseContext: context.Background(), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); drainNow(t, m) }()

	// First job occupies the worker; two more fill the queue.
	if _, err := m.Submit(Submission{Kind: "measure"}); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	<-started
	for i := 2; i <= 3; i++ {
		if _, err := m.Submit(Submission{Kind: "measure"}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := m.Submit(Submission{Kind: "measure"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over capacity: err = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.Queued != 2 || st.Running != 1 || st.QueueCap != 2 {
		t.Errorf("stats = %+v, want 2 queued / 1 running / cap 2", st)
	}
}

// TestJobsRetryThenSucceed pins the backoff-retry path: two injected
// transient faults, then success on the third attempt, within the
// default budget of 3.
func TestJobsRetryThenSucceed(t *testing.T) {
	faults := &ScriptedFaults{Steps: []FaultStep{
		{Err: Transient(errors.New("engine busy"))},
		{Err: Transient(errors.New("engine busy"))},
	}}
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(),
		Workers:  1,
		Injector: faults,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, err := m.Submit(Submission{Kind: "measure"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, rec.ID, StateSucceeded)
	if got.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", got.Attempts)
	}
	if faults.Calls() != 3 {
		t.Errorf("injector calls = %d, want 3", faults.Calls())
	}
	retries := 0
	for _, ev := range got.Events {
		if ev.Kind == "retry" {
			retries++
			if !strings.Contains(ev.Error, "engine busy") {
				t.Errorf("retry event error = %q, want the transient cause", ev.Error)
			}
		}
	}
	if retries != 2 {
		t.Errorf("retry events = %d, want 2", retries)
	}
}

// TestJobsRetryBudgetExhausted pins that a persistently transient fault
// fails the job once the attempt budget is spent.
func TestJobsRetryBudgetExhausted(t *testing.T) {
	boom := Transient(errors.New("still busy"))
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(),
		Workers:  1,
		Injector: InjectorFunc(func(Record, int) error { return boom }),
		Retry:    RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	got := waitState(t, m, rec.ID, StateFailed)
	if got.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", got.Attempts)
	}
	if !strings.Contains(got.Error, "still busy") {
		t.Errorf("error = %q, want the transient cause", got.Error)
	}
}

// TestJobsNonTransientFailsImmediately pins that an unclassified error
// is not retried.
func TestJobsNonTransientFailsImmediately(t *testing.T) {
	m, err := NewManager(ExecutorFunc(func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
		return nil, errors.New("bad request payload")
	}), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	got := waitState(t, m, rec.ID, StateFailed)
	if got.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry for non-transient errors)", got.Attempts)
	}
}

// TestJobsDeadlineTimesOut pins the per-job deadline: a wedged executor
// is classified timed_out, not failed or canceled.
func TestJobsDeadlineTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m, err := NewManager(gateExec(nil, release), Options{BaseContext: context.Background(), Workers: 1, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	got := waitState(t, m, rec.ID, StateTimedOut)
	if !strings.Contains(got.Error, "deadline exceeded") {
		t.Errorf("error = %q, want a deadline message", got.Error)
	}
	if got.FinishedAt.IsZero() {
		t.Error("timed-out job has no FinishedAt")
	}
}

// TestJobsPerJobTimeoutShortensDefault pins the Submission.Timeout
// override.
func TestJobsPerJobTimeoutShortensDefault(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	m, err := NewManager(gateExec(nil, release), Options{BaseContext: context.Background(), Workers: 1, Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure", Timeout: 30 * time.Millisecond})
	if rec.Timeout != 30*time.Millisecond {
		t.Fatalf("recorded timeout = %v, want 30ms", rec.Timeout)
	}
	waitState(t, m, rec.ID, StateTimedOut)
}

// TestRecoverWorkerPanic pins panic containment: an injected panic
// becomes a failed record carrying the goroutine stack, and the worker
// pool keeps serving subsequent jobs.
func TestRecoverWorkerPanic(t *testing.T) {
	var fired atomic.Bool
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(),
		Workers: 1,
		Injector: InjectorFunc(func(rec Record, attempt int) error {
			if fired.CompareAndSwap(false, true) {
				panic("injected kaboom")
			}
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	got := waitState(t, m, rec.ID, StateFailed)
	if !strings.Contains(got.Error, "injected kaboom") {
		t.Errorf("error = %q, want the panic value", got.Error)
	}
	if !strings.Contains(got.Stack, "goroutine") || !strings.Contains(got.Stack, "BeforeAttempt") {
		t.Errorf("stack not captured:\n%s", got.Stack)
	}

	// The daemon keeps serving: the same worker runs the next job.
	rec2, err := m.Submit(Submission{Kind: "measure"})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitState(t, m, rec2.ID, StateSucceeded)
}

// TestJobsCancelMidRun pins DELETE semantics on a running job: the
// executor's context is canceled and the record lands in canceled.
func TestJobsCancelMidRun(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m, err := NewManager(gateExec(started, release), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	<-started
	if _, err := m.Cancel(rec.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	got := waitState(t, m, rec.ID, StateCanceled)
	if got.FinishedAt.IsZero() {
		t.Error("canceled job has no FinishedAt")
	}
	if _, err := m.Cancel(rec.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second Cancel err = %v, want ErrFinished", err)
	}
}

// TestJobsCancelQueued pins cancellation before a worker ever starts
// the job.
func TestJobsCancelQueued(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, err := NewManager(gateExec(started, release), Options{BaseContext: context.Background(), Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(release); drainNow(t, m) }()

	if _, err := m.Submit(Submission{Kind: "measure"}); err != nil { // wedges the worker
		t.Fatal(err)
	}
	<-started
	queued, _ := m.Submit(Submission{Kind: "measure"})
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state = %q, want canceled immediately", got.State)
	}
}

// TestJobsUnknownID pins the not-found surface.
func TestJobsUnknownID(t *testing.T) {
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)
	if _, err := m.Get("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Get err = %v, want ErrUnknownJob", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Cancel err = %v, want ErrUnknownJob", err)
	}
	if _, _, _, err := m.Subscribe("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Subscribe err = %v, want ErrUnknownJob", err)
	}
}

// TestJobsSubscribe pins the event tail contract: a subscriber sees the
// recorded past plus the live remainder, and the live channel closes at
// the terminal state.
func TestJobsSubscribe(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m, err := NewManager(gateExec(started, release), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)

	rec, _ := m.Submit(Submission{Kind: "measure"})
	<-started
	past, live, stop, err := m.Subscribe(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if len(past) < 2 { // queued + running
		t.Fatalf("past events = %d, want at least queued+running", len(past))
	}
	close(release)
	var final []Event
	for ev := range live {
		final = append(final, ev)
	}
	if len(final) == 0 || final[len(final)-1].State != StateSucceeded {
		t.Fatalf("live events = %+v, want a trailing succeeded state event", final)
	}

	// Subscribing to a terminal job returns the tail and no channel.
	past, live, stop, err = m.Subscribe(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if live != nil {
		t.Error("terminal subscribe returned a live channel")
	}
	if past[len(past)-1].State != StateSucceeded {
		t.Errorf("terminal tail ends with %+v, want succeeded", past[len(past)-1])
	}
}

// TestDrainRejectsNewWork pins that Submit answers ErrDraining once a
// drain has begun.
func TestDrainRejectsNewWork(t *testing.T) {
	m, err := NewManager(okExec(), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	drainNow(t, m)
	if _, err := m.Submit(Submission{Kind: "measure"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain err = %v, want ErrDraining", err)
	}
}

// TestDrainWaitsForRunning pins the graceful path: a running job that
// finishes within the grace period completes normally — and the drained
// manager leaves no goroutines behind.
func TestDrainWaitsForRunning(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	started := make(chan string, 1)
	release := make(chan struct{})
	m, err := NewManager(gateExec(started, release), Options{BaseContext: context.Background(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := m.Submit(Submission{Kind: "measure"})
	<-started

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	got, err := m.Get(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateSucceeded {
		t.Fatalf("state after graceful drain = %q, want succeeded", got.State)
	}
}

// TestJobsBackoff pins the policy arithmetic: doubling from BaseDelay,
// capped at MaxDelay, never more than the cap nor less than half the
// uncapped step (the jitter floor).
func TestJobsBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 1; attempt <= 8; attempt++ {
		uncapped := p.BaseDelay << (attempt - 1)
		want := min(uncapped, p.MaxDelay)
		for trial := 0; trial < 20; trial++ {
			d := p.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
