package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// chunkTotal is the synthetic measurement length of the resumable test
// executor, in chunks.
const chunkTotal = 8

// resumableExec simulates a checkpoint-aware measurement executor: it
// works in chunks, persists a checkpoint through h.Checkpoint after
// each one, resumes from rec.Checkpoint, and stops with ErrCheckpointed
// when the drain signal fires. holdAt (when >= 0) parks the executor at
// that chunk boundary until release is closed or a drain begins, so
// tests can interrupt deterministically. checkpointed (when non-nil)
// receives each persisted chunk number.
func resumableExec(holdAt int, release <-chan struct{}, checkpointed chan<- int) Executor {
	return ExecutorFunc(func(ctx context.Context, rec Record, h Hooks) (json.RawMessage, error) {
		start := 0
		if len(rec.Checkpoint) > 0 {
			var cp struct {
				Cycle int `json:"cycle"`
			}
			if err := json.Unmarshal(rec.Checkpoint, &cp); err != nil {
				return nil, fmt.Errorf("decoding checkpoint: %w", err)
			}
			start = cp.Cycle
		}
		for cycle := start; cycle < chunkTotal; cycle++ {
			if cycle == holdAt {
				select {
				case <-release:
				case <-h.Draining:
					return nil, ErrCheckpointed
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			done := cycle + 1
			data, err := json.Marshal(map[string]int{"cycle": done})
			if err != nil {
				return nil, err
			}
			h.Checkpoint(data, done)
			if checkpointed != nil {
				checkpointed <- done
			}
			select {
			case <-h.Draining:
				return nil, ErrCheckpointed
			default:
			}
		}
		return json.RawMessage(fmt.Sprintf(`{"resumed_from":%d}`, start)), nil
	})
}

// TestCheckpointDrainResume is the full resumable-job lifecycle: a
// running job persists checkpoints, a graceful drain parks it back to
// queued at its last chunk boundary without consuming the retry budget,
// and a fresh manager over the same on-disk store resumes it from the
// recorded cycle — the executor proves the resume by baking its start
// cycle into the result.
func TestCheckpointDrainResume(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	checkpointed := make(chan int, chunkTotal)
	m1, err := NewManager(resumableExec(3, nil, checkpointed), Options{
		BaseContext: context.Background(), Workers: 1, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m1.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	// The executor checkpoints chunks 1..3 and then parks at the chunk-4
	// boundary until the drain begins.
	for want := 1; want <= 3; want++ {
		select {
		case got := <-checkpointed:
			if got != want {
				t.Fatalf("checkpoint sequence: got chunk %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for checkpoint %d", want)
		}
	}
	drainNow(t, m1)

	parked, ok, err := st.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("store.Get after drain: ok=%v err=%v", ok, err)
	}
	if parked.State != StateQueued {
		t.Fatalf("drained job state = %q, want queued", parked.State)
	}
	if parked.CheckpointCycle != 3 || len(parked.Checkpoint) == 0 {
		t.Fatalf("drained job checkpoint = cycle %d (%d bytes), want cycle 3 with a payload",
			parked.CheckpointCycle, len(parked.Checkpoint))
	}
	if parked.Attempts != 0 {
		t.Fatalf("drained job attempts = %d, want 0 (a drain must not consume the retry budget)", parked.Attempts)
	}

	// A fresh manager resumes the parked job from chunk 3.
	m2, err := NewManager(resumableExec(-1, nil, nil), Options{
		BaseContext: context.Background(), Workers: 1, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m2)
	got := waitState(t, m2, rec.ID, StateSucceeded)
	if string(got.Result) != `{"resumed_from":3}` {
		t.Fatalf("resumed result = %s, want {\"resumed_from\":3}", got.Result)
	}
	if got.ResumedFromCycle != 3 {
		t.Fatalf("resumed_from_cycle = %d, want 3", got.ResumedFromCycle)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts after resume = %d, want 1", got.Attempts)
	}
	if len(got.Checkpoint) != 0 || got.CheckpointCycle != 0 {
		t.Fatalf("terminal record kept checkpoint payload: cycle %d, %d bytes", got.CheckpointCycle, len(got.Checkpoint))
	}
	sawCheckpoint := false
	for _, ev := range got.Events {
		if ev.Kind == "checkpoint" {
			sawCheckpoint = true
			break
		}
	}
	if !sawCheckpoint {
		t.Fatal("event tail records no checkpoint events")
	}
}

// TestCheckpointUninterruptedRunsClean: a checkpoointing job that is
// never interrupted completes normally, reports a zero resume cycle and
// sheds its checkpoint payload at the terminal transition.
func TestCheckpointUninterruptedRunsClean(t *testing.T) {
	m, err := NewManager(resumableExec(-1, nil, nil), Options{
		BaseContext: context.Background(), Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)
	rec, err := m.Submit(Submission{Kind: "measure", Request: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, rec.ID, StateSucceeded)
	if string(got.Result) != `{"resumed_from":0}` {
		t.Fatalf("result = %s, want a fresh run", got.Result)
	}
	if got.ResumedFromCycle != 0 || got.CheckpointCycle != 0 || len(got.Checkpoint) != 0 {
		t.Fatalf("clean run kept resume state: %+v", got)
	}
}

// TestFileStoreTornCheckpointWrite: a checkpoint overwrite that tears
// mid-write (temp file present, rename never happened) must roll back
// to the previous durable checkpoint, not corrupt the record — the
// fsync-before-rename contract from the reader's side.
func TestFileStoreTornCheckpointWrite(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		ID: "eeeeeeeeeeeeeeee", State: StateQueued, Kind: "measure",
		Checkpoint: json.RawMessage(`{"cycle":3}`), CheckpointCycle: 3,
		CreatedAt: time.Now().UTC(),
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	// A later Put (checkpoint cycle 4) tears before its rename: only the
	// temp file exists, holding a prefix of the new encoding.
	torn := filepath.Join(dir, "."+rec.ID+".tmp-42")
	if err := os.WriteFile(torn, []byte(`{"id":"eeeeeeeeeeeeeeee","checkpoint":{"cy`), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := st2.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get after torn write: ok=%v err=%v", ok, err)
	}
	var cp struct {
		Cycle int `json:"cycle"`
	}
	if err := json.Unmarshal(got.Checkpoint, &cp); err != nil {
		t.Fatalf("recovered checkpoint does not decode: %v", err)
	}
	if got.CheckpointCycle != 3 || cp.Cycle != 3 {
		t.Fatalf("recovered checkpoint = record cycle %d, payload cycle %d; want the previous durable cycle 3",
			got.CheckpointCycle, cp.Cycle)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn temp file survived reopen: %v", err)
	}
	// The recovered record must still round-trip through a manager.
	m, err := NewManager(resumableExec(-1, nil, nil), Options{BaseContext: context.Background(), Workers: 1, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer drainNow(t, m)
	final := waitState(t, m, rec.ID, StateSucceeded)
	if string(final.Result) != `{"resumed_from":3}` {
		t.Fatalf("resumed result = %s, want resume from the durable checkpoint", final.Result)
	}
}
