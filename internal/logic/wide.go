package logic

// 64-lane word-parallel three-valued logic: the data plane of the
// parallel-pattern simulation kernel. A W packs one logic level for each
// of 64 independent simulation lanes into a dual-rail (uint64, uint64)
// pair, and the *W functions below evaluate a gate for all 64 lanes with
// a handful of branch-free bitwise instructions.
//
// Encoding (dual rail): bit l of Zero set means lane l holds 0, bit l of
// One set means lane l holds 1, neither set means lane l is X. Both set
// is invalid and never produced by the operations here.
//
// Every operation is the lane-wise image of the corresponding scalar
// function in logic.go (Kleene three-valued semantics). That claim is
// not taken on faith: init below replays every input combination of
// every wide operation against the scalar reference, so the two
// implementations cannot drift apart — a mismatch panics at program
// start, before any simulation runs.

import "fmt"

// Lanes is the number of independent simulation lanes a W packs: the
// word width of the bit-parallel kernel.
const Lanes = 64

// W holds one three-valued logic level per lane, dual-rail encoded.
type W struct {
	Zero, One uint64
}

// AllX is the W with every lane unknown.
var AllX = W{}

// SplatW returns the W holding v in every lane.
//
//glitchsim:hotpath
func SplatW(v V) W {
	switch v {
	case L0:
		return W{Zero: ^uint64(0)}
	case L1:
		return W{One: ^uint64(0)}
	default:
		return W{}
	}
}

// Lane extracts the value of one lane.
//
//glitchsim:hotpath
func (w W) Lane(l int) V {
	bit := uint64(1) << uint(l)
	switch {
	case w.Zero&bit != 0:
		return L0
	case w.One&bit != 0:
		return L1
	default:
		return X
	}
}

// SetLane stores v into one lane.
//
//glitchsim:hotpath
func (w *W) SetLane(l int, v V) {
	bit := uint64(1) << uint(l)
	w.Zero &^= bit
	w.One &^= bit
	switch v {
	case L0:
		w.Zero |= bit
	case L1:
		w.One |= bit
	}
}

// KnownMask returns the lanes holding a strong (binary) level.
//
//glitchsim:hotpath
func (w W) KnownMask() uint64 { return w.Zero | w.One }

// DiffMask returns the mask of lanes whose level differs between a and
// b. Valid words never set both rails of one lane, so a lane's level
// differs exactly when either of its rail bits does — including
// transitions from or to X.
//
//glitchsim:hotpath
func DiffMask(a, b W) uint64 { return (a.Zero ^ b.Zero) | (a.One ^ b.One) }

// Merge returns w with the lanes selected by mask replaced by v's: the
// masked-update primitive of the word-parallel event kernel, where a
// scheduled event commits only the lanes its mask covers.
//
//glitchsim:hotpath
func (w W) Merge(v W, mask uint64) W {
	return W{
		Zero: (w.Zero &^ mask) | (v.Zero & mask),
		One:  (w.One &^ mask) | (v.One & mask),
	}
}

// String renders the word lane 63 first, e.g. "xx…0101", for debugging.
func (w W) String() string {
	buf := make([]byte, Lanes)
	for l := 0; l < Lanes; l++ {
		buf[Lanes-1-l] = w.Lane(l).String()[0]
	}
	return string(buf)
}

// NotW is the lane-wise Not: the rails swap.
//
//glitchsim:hotpath
func NotW(a W) W { return W{Zero: a.One, One: a.Zero} }

// AndW is the lane-wise And: any 0 forces 0, both 1 gives 1, X otherwise.
//
//glitchsim:hotpath
func AndW(a, b W) W {
	return W{Zero: a.Zero | b.Zero, One: a.One & b.One}
}

// NandW is the lane-wise Nand.
//
//glitchsim:hotpath
func NandW(a, b W) W {
	return W{Zero: a.One & b.One, One: a.Zero | b.Zero}
}

// OrW is the lane-wise Or: any 1 forces 1, both 0 gives 0, X otherwise.
//
//glitchsim:hotpath
func OrW(a, b W) W {
	return W{Zero: a.Zero & b.Zero, One: a.One | b.One}
}

// NorW is the lane-wise Nor.
//
//glitchsim:hotpath
func NorW(a, b W) W {
	return W{Zero: a.One | b.One, One: a.Zero & b.Zero}
}

// XorW is the lane-wise Xor: X if either input is X.
//
//glitchsim:hotpath
func XorW(a, b W) W {
	k := (a.Zero | a.One) & (b.Zero | b.One)
	v := a.One ^ b.One
	return W{Zero: k &^ v, One: k & v}
}

// XnorW is the lane-wise Xnor.
//
//glitchsim:hotpath
func XnorW(a, b W) W {
	k := (a.Zero | a.One) & (b.Zero | b.One)
	v := a.One ^ b.One
	return W{Zero: k & v, One: k &^ v}
}

// MuxW is the lane-wise Mux(sel, a, b): a when sel=0, b when sel=1, and
// for X selects the agreeing strong level of a and b if any.
//
//glitchsim:hotpath
func MuxW(sel, a, b W) W {
	return W{
		Zero: (sel.Zero & a.Zero) | (sel.One & b.Zero) | (a.Zero & b.Zero),
		One:  (sel.Zero & a.One) | (sel.One & b.One) | (a.One & b.One),
	}
}

// Maj3W is the lane-wise three-input majority (the carry function); the
// majority identity holds rail-wise under Kleene semantics.
//
//glitchsim:hotpath
func Maj3W(a, b, c W) W {
	return W{
		Zero: (a.Zero & b.Zero) | (a.Zero & c.Zero) | (b.Zero & c.Zero),
		One:  (a.One & b.One) | (a.One & c.One) | (b.One & c.One),
	}
}

// HalfAddW is the lane-wise half adder.
//
//glitchsim:hotpath
func HalfAddW(a, b W) (sum, carry W) {
	return XorW(a, b), AndW(a, b)
}

// FullAddW is the lane-wise full adder: three-input parity for the sum
// (X if any input is X) and majority for the carry.
//
//glitchsim:hotpath
func FullAddW(a, b, cin W) (sum, cout W) {
	k := (a.Zero | a.One) & (b.Zero | b.One) & (cin.Zero | cin.One)
	v := a.One ^ b.One ^ cin.One
	return W{Zero: k &^ v, One: k & v}, Maj3W(a, b, cin)
}

// init cross-checks every wide operation against the scalar reference
// implementation for every combination of three-valued inputs: all 27
// (a, b, c) triples are packed one per lane and evaluated once per
// operation, then compared lane by lane. The wide kernel therefore can
// never silently diverge from the truth tables the scalar kernel (and
// netlist.Eval) are built on.
func init() {
	vals := [3]V{X, L0, L1}
	var wa, wb, wc W
	type triple struct{ a, b, c V }
	var triples [27]triple
	lane := 0
	for _, a := range vals {
		for _, b := range vals {
			for _, c := range vals {
				triples[lane] = triple{a, b, c}
				wa.SetLane(lane, a)
				wb.SetLane(lane, b)
				wc.SetLane(lane, c)
				lane++
			}
		}
	}
	check := func(name string, got W, want func(t triple) V) {
		for l, t := range triples {
			if g, w := got.Lane(l), want(t); g != w {
				panic(fmt.Sprintf("logic: wide %s diverges from scalar reference on (%v,%v,%v): got %v, want %v",
					name, t.a, t.b, t.c, g, w))
			}
		}
		if got.Zero&got.One != 0 {
			panic(fmt.Sprintf("logic: wide %s produced both rails set", name))
		}
	}
	check("not", NotW(wa), func(t triple) V { return Not(t.a) })
	check("and", AndW(wa, wb), func(t triple) V { return And(t.a, t.b) })
	check("nand", NandW(wa, wb), func(t triple) V { return Not(And(t.a, t.b)) })
	check("or", OrW(wa, wb), func(t triple) V { return Or(t.a, t.b) })
	check("nor", NorW(wa, wb), func(t triple) V { return Not(Or(t.a, t.b)) })
	check("xor", XorW(wa, wb), func(t triple) V { return Xor(t.a, t.b) })
	check("xnor", XnorW(wa, wb), func(t triple) V { return Not(Xor(t.a, t.b)) })
	check("mux", MuxW(wc, wa, wb), func(t triple) V { return Mux(t.c, t.a, t.b) })
	check("maj3", Maj3W(wa, wb, wc), func(t triple) V { return Maj3(t.a, t.b, t.c) })
	haS, haC := HalfAddW(wa, wb)
	check("ha-sum", haS, func(t triple) V { s, _ := HalfAdd(t.a, t.b); return s })
	check("ha-carry", haC, func(t triple) V { _, c := HalfAdd(t.a, t.b); return c })
	faS, faC := FullAddW(wa, wb, wc)
	check("fa-sum", faS, func(t triple) V { s, _ := FullAdd(t.a, t.b, t.c); return s })
	check("fa-carry", faC, func(t triple) V { _, c := FullAdd(t.a, t.b, t.c); return c })
}
