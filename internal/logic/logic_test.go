package logic

import (
	"testing"
	"testing/quick"
)

func TestStringAndKnown(t *testing.T) {
	cases := []struct {
		v     V
		s     string
		known bool
	}{
		{L0, "0", true},
		{L1, "1", true},
		{X, "x", false},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.s {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.s)
		}
		if got := c.v.Known(); got != c.known {
			t.Errorf("%v.Known() = %v, want %v", c.v, got, c.known)
		}
	}
	if s := V(9).String(); s != "V(9)" {
		t.Errorf("invalid value String() = %q", s)
	}
}

func TestBoolConversions(t *testing.T) {
	if FromBool(true) != L1 || FromBool(false) != L0 {
		t.Fatal("FromBool wrong")
	}
	if !L1.Bool() || L0.Bool() {
		t.Fatal("Bool wrong")
	}
	if FromBit(3) != L1 || FromBit(2) != L0 {
		t.Fatal("FromBit wrong")
	}
	if L1.Bit() != 1 || L0.Bit() != 0 {
		t.Fatal("Bit wrong")
	}
}

func TestBoolPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = X.Bool()
}

func TestBitPanicsOnX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = X.Bit()
}

func TestNot(t *testing.T) {
	if Not(L0) != L1 || Not(L1) != L0 || Not(X) != X {
		t.Fatal("Not wrong")
	}
}

func TestAndTruthTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L0}, {L1, L0, L0}, {L1, L1, L1},
		{X, L0, L0}, {L0, X, L0}, {X, L1, X}, {L1, X, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := And(c.a, c.b); got != c.want {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrTruthTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L1}, {L1, L0, L1}, {L1, L1, L1},
		{X, L1, L1}, {L1, X, L1}, {X, L0, X}, {L0, X, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := Or(c.a, c.b); got != c.want {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestXorTruthTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{L0, L0, L0}, {L0, L1, L1}, {L1, L0, L1}, {L1, L1, L0},
		{X, L0, X}, {L1, X, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := Xor(c.a, c.b); got != c.want {
			t.Errorf("Xor(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestVariadicGates(t *testing.T) {
	if And(L1, L1, L1, L0) != L0 {
		t.Error("4-input And")
	}
	if Or(L0, L0, L0, L1) != L1 {
		t.Error("4-input Or")
	}
	if Xor(L1, L1, L1) != L1 {
		t.Error("3-input Xor parity")
	}
	if And() != L1 || Or() != L0 || Xor() != L0 {
		t.Error("empty gate identities")
	}
}

func TestMux(t *testing.T) {
	cases := []struct{ sel, a, b, want V }{
		{L0, L1, L0, L1},
		{L1, L1, L0, L0},
		{X, L1, L1, L1},
		{X, L0, L0, L0},
		{X, L0, L1, X},
		{X, X, X, X},
	}
	for _, c := range cases {
		if got := Mux(c.sel, c.a, c.b); got != c.want {
			t.Errorf("Mux(%v,%v,%v) = %v, want %v", c.sel, c.a, c.b, got, c.want)
		}
	}
}

func TestMaj3(t *testing.T) {
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				want := FromBool(a+b+c >= 2)
				got := Maj3(FromBit(uint64(a)), FromBit(uint64(b)), FromBit(uint64(c)))
				if got != want {
					t.Errorf("Maj3(%d,%d,%d) = %v, want %v", a, b, c, got, want)
				}
			}
		}
	}
	if Maj3(L0, L0, X) != L0 || Maj3(L1, L1, X) != L1 || Maj3(L0, L1, X) != X {
		t.Error("Maj3 X dominance wrong")
	}
}

func TestFullAndHalfAdd(t *testing.T) {
	for a := uint64(0); a < 2; a++ {
		for b := uint64(0); b < 2; b++ {
			for c := uint64(0); c < 2; c++ {
				s, co := FullAdd(FromBit(a), FromBit(b), FromBit(c))
				total := a + b + c
				if s.Bit() != total&1 || co.Bit() != total>>1 {
					t.Errorf("FullAdd(%d,%d,%d) = %v,%v", a, b, c, s, co)
				}
			}
			s, co := HalfAdd(FromBit(a), FromBit(b))
			if s.Bit() != (a+b)&1 || co.Bit() != (a+b)>>1 {
				t.Errorf("HalfAdd(%d,%d) = %v,%v", a, b, s, co)
			}
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	f := func(u uint64) bool {
		v := VectorFromUint(u, 64)
		return v.Uint() == u && v.Known()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorTruncation(t *testing.T) {
	v := VectorFromUint(0xFF, 4)
	if v.Uint() != 0xF {
		t.Errorf("got %d, want 15", v.Uint())
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{L1, L0, X, L1} // LSB first
	if v.String() != "1x01" {
		t.Errorf("got %q, want %q", v.String(), "1x01")
	}
}

func TestVectorKnown(t *testing.T) {
	if (Vector{L0, X}).Known() {
		t.Error("vector with X reported Known")
	}
	if !NewVector(0).Known() {
		t.Error("empty vector should be Known")
	}
	if NewVector(3).Known() {
		t.Error("fresh vector should be unknown")
	}
}

func TestVectorUintPanicsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64-bit vector")
		}
	}()
	_ = NewVector(65).Uint()
}

// Property: De Morgan duality holds in three-valued logic.
func TestDeMorganProperty(t *testing.T) {
	vals := []V{L0, L1, X}
	for _, a := range vals {
		for _, b := range vals {
			if Not(And(a, b)) != Or(Not(a), Not(b)) {
				t.Errorf("De Morgan AND failed for %v,%v", a, b)
			}
			if Not(Or(a, b)) != And(Not(a), Not(b)) {
				t.Errorf("De Morgan OR failed for %v,%v", a, b)
			}
		}
	}
}

// Property: Xor is associative and commutative over strong values.
func TestXorAlgebraProperty(t *testing.T) {
	f := func(a, b, c bool) bool {
		va, vb, vc := FromBool(a), FromBool(b), FromBool(c)
		return Xor(Xor(va, vb), vc) == Xor(va, Xor(vb, vc)) &&
			Xor(va, vb) == Xor(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
