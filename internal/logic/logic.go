// Package logic provides the three-valued logic system used throughout
// glitchsim: the strong levels 0 and 1 plus the unknown value X used for
// uninitialized nets. Gate evaluation follows standard pessimistic
// (Kleene) three-valued semantics: a gate output is X only when the known
// inputs do not determine it.
package logic

import "fmt"

// V is a three-valued logic level.
type V uint8

// The three logic values. X is the zero value so that freshly allocated
// net state starts out unknown.
const (
	X  V = iota // unknown / uninitialized
	L0          // logic low
	L1          // logic high
)

// String returns "x", "0" or "1".
func (v V) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	case X:
		return "x"
	default:
		return fmt.Sprintf("V(%d)", uint8(v))
	}
}

// Known reports whether v is a strong (binary) level.
func (v V) Known() bool { return v == L0 || v == L1 }

// Bool converts a strong level to a bool. It panics on X; callers must
// check Known first when X is possible.
func (v V) Bool() bool {
	switch v {
	case L0:
		return false
	case L1:
		return true
	}
	panic("logic: Bool of unknown value")
}

// FromBool converts a bool to a strong level.
func FromBool(b bool) V {
	if b {
		return L1
	}
	return L0
}

// FromBit converts the low bit of an integer to a strong level.
func FromBit(b uint64) V { return FromBool(b&1 == 1) }

// Bit returns 0 or 1 for strong levels and panics on X.
func (v V) Bit() uint64 {
	if v == L1 {
		return 1
	}
	if v == L0 {
		return 0
	}
	panic("logic: Bit of unknown value")
}

// Not returns the three-valued complement of v.
func Not(v V) V {
	switch v {
	case L0:
		return L1
	case L1:
		return L0
	default:
		return X
	}
}

// And returns the three-valued conjunction of vs. An AND with any 0 input
// is 0 even if other inputs are X.
func And(vs ...V) V {
	out := L1
	for _, v := range vs {
		switch v {
		case L0:
			return L0
		case X:
			out = X
		}
	}
	return out
}

// Or returns the three-valued disjunction of vs. An OR with any 1 input
// is 1 even if other inputs are X.
func Or(vs ...V) V {
	out := L0
	for _, v := range vs {
		switch v {
		case L1:
			return L1
		case X:
			out = X
		}
	}
	return out
}

// Xor returns the three-valued parity of vs: X if any input is X.
func Xor(vs ...V) V {
	parity := false
	for _, v := range vs {
		if !v.Known() {
			return X
		}
		parity = parity != v.Bool()
	}
	return FromBool(parity)
}

// Mux returns a when sel=0 and b when sel=1. When sel is X the output is
// X unless both data inputs agree on a strong level.
func Mux(sel, a, b V) V {
	switch sel {
	case L0:
		return a
	case L1:
		return b
	default:
		if a == b && a.Known() {
			return a
		}
		return X
	}
}

// Maj3 returns the three-valued majority of three inputs (the carry
// function of a full adder).
func Maj3(a, b, c V) V {
	return Or(And(a, b), And(a, c), And(b, c))
}

// FullAdd returns the sum and carry-out of a full adder.
func FullAdd(a, b, cin V) (sum, cout V) {
	return Xor(a, b, cin), Maj3(a, b, cin)
}

// HalfAdd returns the sum and carry-out of a half adder.
func HalfAdd(a, b V) (sum, cout V) {
	return Xor(a, b), And(a, b)
}

// Vector is a bus of logic values, index 0 = least significant bit.
type Vector []V

// NewVector returns a Vector of n X values.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorFromUint encodes the low n bits of u, LSB first.
func VectorFromUint(u uint64, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = FromBit(u >> uint(i))
	}
	return v
}

// Uint decodes a fully known vector into an unsigned integer (LSB first).
// It panics if any bit is X or if the vector is wider than 64 bits.
func (vec Vector) Uint() uint64 {
	if len(vec) > 64 {
		panic("logic: vector wider than 64 bits")
	}
	var u uint64
	for i, v := range vec {
		u |= v.Bit() << uint(i)
	}
	return u
}

// Known reports whether every bit of the vector is a strong level.
func (vec Vector) Known() bool {
	for _, v := range vec {
		if !v.Known() {
			return false
		}
	}
	return true
}

// String renders the vector MSB first, e.g. "0101" or "0x1x".
func (vec Vector) String() string {
	buf := make([]byte, len(vec))
	for i, v := range vec {
		buf[len(vec)-1-i] = v.String()[0]
	}
	return string(buf)
}
