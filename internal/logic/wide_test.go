package logic

import (
	"fmt"
	"testing"
)

// TestWideOpsMatchScalarExhaustive re-runs the init-time cross-check as
// a visible test, and additionally exercises lane packing: every 3^3
// input combination is evaluated in a randomly chosen lane with the
// other lanes holding unrelated values, so lane isolation is verified
// too (a lane leaking into a neighbour would corrupt the off-lane
// values).
func TestWideOpsMatchScalarExhaustive(t *testing.T) {
	vals := [3]V{X, L0, L1}
	ops := []struct {
		name   string
		arity  int
		scalar func(a, b, c V) V
		wide   func(a, b, c W) W
	}{
		{"not", 1, func(a, _, _ V) V { return Not(a) }, func(a, _, _ W) W { return NotW(a) }},
		{"and", 2, func(a, b, _ V) V { return And(a, b) }, func(a, b, _ W) W { return AndW(a, b) }},
		{"nand", 2, func(a, b, _ V) V { return Not(And(a, b)) }, func(a, b, _ W) W { return NandW(a, b) }},
		{"or", 2, func(a, b, _ V) V { return Or(a, b) }, func(a, b, _ W) W { return OrW(a, b) }},
		{"nor", 2, func(a, b, _ V) V { return Not(Or(a, b)) }, func(a, b, _ W) W { return NorW(a, b) }},
		{"xor", 2, func(a, b, _ V) V { return Xor(a, b) }, func(a, b, _ W) W { return XorW(a, b) }},
		{"xnor", 2, func(a, b, _ V) V { return Not(Xor(a, b)) }, func(a, b, _ W) W { return XnorW(a, b) }},
		{"mux", 3, func(a, b, c V) V { return Mux(c, a, b) }, func(a, b, c W) W { return MuxW(c, a, b) }},
		{"maj3", 3, Maj3, Maj3W},
		{"fa-sum", 3, func(a, b, c V) V { s, _ := FullAdd(a, b, c); return s },
			func(a, b, c W) W { s, _ := FullAddW(a, b, c); return s }},
		{"fa-carry", 3, func(a, b, c V) V { _, co := FullAdd(a, b, c); return co },
			func(a, b, c W) W { _, co := FullAddW(a, b, c); return co }},
		{"ha-sum", 2, func(a, b, _ V) V { s, _ := HalfAdd(a, b); return s },
			func(a, b, _ W) W { s, _ := HalfAddW(a, b); return s }},
		{"ha-carry", 2, func(a, b, _ V) V { _, co := HalfAdd(a, b); return co },
			func(a, b, _ W) W { _, co := HalfAddW(a, b); return co }},
	}
	for _, op := range ops {
		lane := 0
		for _, a := range vals {
			for _, b := range vals {
				for _, c := range vals {
					// Background pattern differing per lane.
					wa, wb, wc := SplatW(L1), SplatW(L0), SplatW(X)
					l := (lane*29 + 7) % Lanes
					lane++
					wa.SetLane(l, a)
					wb.SetLane(l, b)
					wc.SetLane(l, c)
					got := op.wide(wa, wb, wc)
					if got.Zero&got.One != 0 {
						t.Fatalf("%s(%v,%v,%v): both rails set: %v", op.name, a, b, c, got)
					}
					if g, w := got.Lane(l), op.scalar(a, b, c); g != w {
						t.Errorf("%s(%v,%v,%v) lane %d = %v, scalar %v", op.name, a, b, c, l, g, w)
					}
					// The background lanes must see the background inputs.
					bg := op.scalar(L1, L0, X)
					for k := 0; k < Lanes; k++ {
						if k == l {
							continue
						}
						if g := got.Lane(k); g != bg {
							t.Fatalf("%s lane %d polluted by lane %d: %v, want %v", op.name, k, l, g, bg)
						}
					}
				}
			}
		}
	}
}

func TestWideLaneRoundTrip(t *testing.T) {
	var w W
	vals := [3]V{X, L0, L1}
	for l := 0; l < Lanes; l++ {
		w.SetLane(l, vals[l%3])
	}
	for l := 0; l < Lanes; l++ {
		if got := w.Lane(l); got != vals[l%3] {
			t.Fatalf("lane %d = %v, want %v", l, got, vals[l%3])
		}
	}
	// Overwrites must clear the previous rails.
	w.SetLane(5, L1)
	w.SetLane(5, L0)
	if w.Lane(5) != L0 || w.Zero&w.One != 0 {
		t.Fatal("SetLane overwrite left stale rails")
	}
}

func TestWideSplatAndKnownMask(t *testing.T) {
	if SplatW(L0).KnownMask() != ^uint64(0) || SplatW(L1).KnownMask() != ^uint64(0) {
		t.Error("splat of strong levels must be fully known")
	}
	if SplatW(X).KnownMask() != 0 || AllX.KnownMask() != 0 {
		t.Error("splat of X must be fully unknown")
	}
	var w W
	w.SetLane(0, L0)
	w.SetLane(63, L1)
	if w.KnownMask() != 1|1<<63 {
		t.Errorf("known mask = %b", w.KnownMask())
	}
	if s := w.String(); len(s) != Lanes || s[0] != '1' || s[Lanes-1] != '0' {
		t.Errorf("String = %q", fmt.Sprintf("%.8s…", s))
	}
}

// TestWideDiffMaskMerge: the masked-event primitives — DiffMask flags
// exactly the lanes whose three-valued level differs (X included), and
// Merge replaces exactly the masked lanes.
func TestWideDiffMaskMerge(t *testing.T) {
	vals := [3]V{X, L0, L1}
	var a, b W
	for l := 0; l < Lanes; l++ {
		a.SetLane(l, vals[l%3])
		b.SetLane(l, vals[(l/3)%3])
	}
	diff := DiffMask(a, b)
	for l := 0; l < Lanes; l++ {
		want := a.Lane(l) != b.Lane(l)
		if got := diff&(1<<uint(l)) != 0; got != want {
			t.Fatalf("DiffMask lane %d = %v, want %v (a=%v b=%v)", l, got, want, a.Lane(l), b.Lane(l))
		}
	}
	for _, mask := range []uint64{0, ^uint64(0), 0xF0F0F0F0F0F0F0F0, 1, 1 << 63} {
		m := a.Merge(b, mask)
		if m.Zero&m.One != 0 {
			t.Fatalf("Merge(mask=%x) produced both rails set", mask)
		}
		for l := 0; l < Lanes; l++ {
			want := a.Lane(l)
			if mask&(1<<uint(l)) != 0 {
				want = b.Lane(l)
			}
			if got := m.Lane(l); got != want {
				t.Fatalf("Merge(mask=%x) lane %d = %v, want %v", mask, l, got, want)
			}
		}
	}
	if got := DiffMask(a, a); got != 0 {
		t.Errorf("DiffMask(a, a) = %x, want 0", got)
	}
}
