package service

import (
	"context"
	"errors"
	"net/http"

	"glitchsim"
)

// The service's failure taxonomy: every non-2xx reply carries a stable
// machine-readable `code` alongside the human-readable `error` message,
// so clients branch on the code and never parse messages. The enum is
// documented in the README's "Resource limits & failure modes" section;
// codes are append-only — a code, once shipped, never changes meaning.
const (
	// CodeBadRequest: the request is malformed (bad JSON, bad query
	// parameter, missing required field). HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeMethodNotAllowed: the endpoint exists but not for this HTTP
	// method. HTTP 405.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodePayloadTooLarge: the request body exceeded the endpoint's size
	// bound. HTTP 413.
	CodePayloadTooLarge = "payload_too_large"
	// CodeUnknownCircuit: the circuit reference resolves to nothing —
	// not a registry name, not an uploaded fingerprint or module name.
	// The message lists the resolvable identifiers. HTTP 404.
	CodeUnknownCircuit = "unknown_circuit"
	// CodeUnknownJob: no job record with that ID. HTTP 404.
	CodeUnknownJob = "unknown_job"
	// CodeNotFound: the URL names no endpoint. HTTP 404.
	CodeNotFound = "not_found"
	// CodeBudgetExceeded: the measurement tripped its resource budget
	// (events, wall-clock or estimated memory); detail carries the
	// exhausted resource, the limit, the usage and the completed-cycle
	// boundary. HTTP 422.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeOscillation: a simulated cycle failed to settle within the
	// guard time; detail names the nets still toggling. HTTP 422.
	CodeOscillation = "oscillation"
	// CodeCostExceeded: admission control rejected the request because
	// its estimated cost exceeds the server's configured Limits — before
	// anything was compiled or simulated. HTTP 422.
	CodeCostExceeded = "cost_exceeded"
	// CodeOverloaded: the engine is saturated and the request was shed
	// (or a measurement gave up waiting for an engine slot). Retry after
	// the Retry-After header. HTTP 429.
	CodeOverloaded = "overloaded"
	// CodeQueueFull: the async job queue is at capacity. HTTP 429.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down and takes no new work.
	// HTTP 503.
	CodeDraining = "draining"
	// CodeUploadsDisabled: circuit uploads are configured off. HTTP 503.
	CodeUploadsDisabled = "uploads_disabled"
	// CodeJobsDisabled: the job subsystem failed to start or is
	// configured off. HTTP 503.
	CodeJobsDisabled = "jobs_disabled"
	// CodeJobFailed: the job ran and failed; the message carries the
	// recorded failure. HTTP 500 (on /result).
	CodeJobFailed = "job_failed"
	// CodeJobTimedOut: the job exhausted its deadline. HTTP 504.
	CodeJobTimedOut = "job_timed_out"
	// CodeJobCanceled: the job was canceled before finishing. HTTP 409.
	CodeJobCanceled = "job_canceled"
	// CodeJobNotFinished: the result was requested while the job is
	// still queued or running; retry after Retry-After. HTTP 409.
	CodeJobNotFinished = "job_not_finished"
	// CodeJobFinished: a cancel arrived after the job already reached a
	// terminal state. HTTP 409.
	CodeJobFinished = "job_finished"
	// CodeInternal: an unclassified server-side failure. HTTP 500.
	CodeInternal = "internal"
)

func (s *Server) writeError(w http.ResponseWriter, status int, code string, err error) {
	s.writeErrorDetail(w, status, code, err, nil)
}

// writeErrorDetail writes the error envelope with optional structured
// detail (the typed-failure payloads: budget trip accounting,
// oscillation hot nets, cost estimates).
func (s *Server) writeErrorDetail(w http.ResponseWriter, status int, code string, err error, detail map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, ErrorResponse{
		Code:      code,
		Error:     err.Error(),
		Detail:    detail,
		RequestID: requestIDHeader(w),
	})
}

// writeBodyError maps a request-body read/decode failure onto the
// taxonomy: "too large" is 413 payload_too_large (the client must
// shrink the body), anything else 400 bad_request.
func (s *Server) writeBodyError(w http.ResponseWriter, err error) {
	status := statusForBodyError(err)
	code := CodeBadRequest
	if status == http.StatusRequestEntityTooLarge {
		code = CodePayloadTooLarge
	}
	s.writeError(w, status, code, err)
}

// writeResolveError maps circuit-resolution failures onto status codes:
// an unknown circuit reference is the client naming something that is
// not there (404, with the resolvable identifiers in the message);
// anything else is a bad request.
func (s *Server) writeResolveError(w http.ResponseWriter, err error) {
	var unknown *unknownCircuitError
	if errors.As(err, &unknown) {
		s.writeError(w, http.StatusNotFound, CodeUnknownCircuit, err)
		return
	}
	s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
}

// writeEngineError maps engine failures onto the taxonomy. A cancelled
// request context means the client went away: there is no one to
// answer, so nothing is written.
func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) && r.Context().Err() != nil {
		return
	}
	var be *glitchsim.BudgetError
	if errors.As(err, &be) {
		s.writeErrorDetail(w, http.StatusUnprocessableEntity, CodeBudgetExceeded, err, map[string]any{
			"resource":         be.Resource,
			"limit":            be.Limit,
			"used":             be.Used,
			"cycles_completed": be.Cycle,
		})
		return
	}
	var oe *glitchsim.OscillationError
	if errors.As(err, &oe) {
		s.writeErrorDetail(w, http.StatusUnprocessableEntity, CodeOscillation, err, map[string]any{
			"circuit": oe.Circuit,
			"cycle":   oe.Cycle,
			"guard":   oe.Guard,
			"nets":    oe.Names,
		})
		return
	}
	if errors.Is(err, glitchsim.ErrEngineBusy) {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, CodeOverloaded, err)
		return
	}
	s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
}
