package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"glitchsim"
)

// corruptTruncated truncates a persisted upload document mid-JSON.
func corruptTruncated(t *testing.T, dir, fp string) {
	t.Helper()
	path := filepath.Join(dir, fp+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

func postMeasure(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBudgetExceeded422: a measurement that trips its event budget
// answers 422 with code "budget_exceeded" and the trip accounting in
// detail.
func TestBudgetExceeded422(t *testing.T) {
	ts := newTestServer(t)
	resp := postMeasure(t, ts, `{"circuit":"array16","cycles":500,"budget_events":512}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if e.Code != CodeBudgetExceeded {
		t.Fatalf("code %q, want %q (error: %s)", e.Code, CodeBudgetExceeded, e.Error)
	}
	if e.Detail["resource"] != "events" {
		t.Errorf("detail resource = %v, want events", e.Detail["resource"])
	}
	for _, k := range []string{"limit", "used", "cycles_completed"} {
		if _, ok := e.Detail[k]; !ok {
			t.Errorf("detail missing %q: %v", k, e.Detail)
		}
	}
}

// TestBudgetWireParams: budgets arrive via query strings too, and a
// wall-clock budget trips with resource "wall_clock".
func TestBudgetWireParams(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/measure?circuit=array16&cycles=500&budget_events=512")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("query budget: status %d, want 422", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != CodeBudgetExceeded {
		t.Fatalf("query budget: code %q", e.Code)
	}
}

// TestOscillation422: a delay model whose single hop exceeds the settle
// guard answers 422 "oscillation" naming the hot nets.
func TestOscillation422(t *testing.T) {
	ts := newTestServer(t)
	resp := postMeasure(t, ts, `{"circuit":"rca8","cycles":4,"dsum":70000,"dcarry":70000}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if e.Code != CodeOscillation {
		t.Fatalf("code %q, want %q (error: %s)", e.Code, CodeOscillation, e.Error)
	}
	nets, ok := e.Detail["nets"].([]any)
	if !ok || len(nets) == 0 {
		t.Errorf("detail nets = %v, want non-empty list", e.Detail["nets"])
	}
	if _, ok := e.Detail["guard"]; !ok {
		t.Errorf("detail missing guard: %v", e.Detail)
	}
}

// TestDefaultBudget: WithDefaultBudget backstops requests that carry no
// budget; a request budget replaces the default.
func TestDefaultBudget(t *testing.T) {
	ts := httptest.NewServer(New(glitchsim.NewEngine(),
		WithDefaultBudget(glitchsim.Budget{Events: 512})))
	t.Cleanup(ts.Close)

	resp := postMeasure(t, ts, `{"circuit":"array16","cycles":500}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("default budget: status %d, want 422", resp.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != CodeBudgetExceeded {
		t.Fatalf("default budget: code %q", e.Code)
	}

	resp = postMeasure(t, ts, `{"circuit":"array16","cycles":500,"budget_events":100000000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request budget override: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestCostExceeded422: admission control rejects a request whose
// estimated cost exceeds the configured ceiling, before simulating
// anything; cheaper requests on the same server pass.
func TestCostExceeded422(t *testing.T) {
	ts := httptest.NewServer(New(glitchsim.NewEngine(),
		WithLimits(Limits{MaxEstimatedEvents: 50_000})))
	t.Cleanup(ts.Close)

	resp := postMeasure(t, ts, `{"circuit":"array16","cycles":100000}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if e.Code != CodeCostExceeded {
		t.Fatalf("code %q, want %q (error: %s)", e.Code, CodeCostExceeded, e.Error)
	}
	if _, ok := e.Detail["estimated_events"]; !ok {
		t.Errorf("detail missing estimated_events: %v", e.Detail)
	}

	resp = postMeasure(t, ts, `{"circuit":"rca8","cycles":50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cheap request: status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestOverloadShed429: with every engine slot busy, requests above the
// shed threshold answer 429 "overloaded" instead of queueing; once the
// engine frees up the same request runs.
func TestOverloadShed429(t *testing.T) {
	engine := glitchsim.NewEngine(glitchsim.WithMaxConcurrency(1))
	ts := httptest.NewServer(New(engine,
		WithLimits(Limits{ShedEstimatedEvents: 10_000})))
	t.Cleanup(ts.Close)

	// Saturate the single engine slot with a long-running measurement,
	// cancelled when the test is done.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/measure",
			strings.NewReader(`{"circuit":"array16","cycles":50000000}`))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	t.Cleanup(func() { cancel(); <-done })

	deadline := time.Now().Add(10 * time.Second)
	for {
		var h healthzResponse
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		h = decodeBody[healthzResponse](t, resp)
		if h.Engine.Capacity != 1 {
			t.Fatalf("engine capacity %d, want 1", h.Engine.Capacity)
		}
		if h.Engine.Active == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never saturated")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp := postMeasure(t, ts, `{"circuit":"array16","cycles":100000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("saturated: missing Retry-After")
	}
	if e := decodeBody[ErrorResponse](t, resp); e.Code != CodeOverloaded {
		t.Fatalf("saturated: code %q, want %q", e.Code, CodeOverloaded)
	}

	cancel()
	<-done
	// The slot frees asynchronously with the cancelled request; the same
	// expensive request must eventually be admitted again.
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp := postMeasure(t, ts, `{"circuit":"array16","cycles":100000,"budget_wall_ms":30000}`)
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("engine never freed (last status %d)", resp.StatusCode)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDurableUploadsSurviveRestart: an upload persisted with
// WithUploadDir resolves — by fingerprint, by name, and in the
// catalogue — on a fresh server over the same directory.
func TestDurableUploadsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	src, nl := verilogSource(t, "rca8")
	fp := nl.Fingerprint()

	ts1 := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadDir(dir)))
	resp := uploadEnvelope(t, ts1, "verilog", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	info := decodeBody[CircuitInfo](t, resp)
	if info.Fingerprint != fp {
		t.Fatalf("upload fingerprint %s, want %s", info.Fingerprint, fp)
	}
	ts1.Close()

	// "Restart": a brand-new server (fresh engine, empty LRU) over the
	// same directory.
	ts2 := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadDir(dir)))
	t.Cleanup(ts2.Close)

	var listed CircuitsResponse
	{
		resp, err := http.Get(ts2.URL + "/v1/circuits")
		if err != nil {
			t.Fatal(err)
		}
		listed = decodeBody[CircuitsResponse](t, resp)
	}
	found := false
	for _, u := range listed.Uploads {
		if u.Fingerprint == fp {
			found = true
		}
	}
	if !found {
		t.Fatalf("restarted catalogue lacks persisted upload %s: %+v", fp, listed.Uploads)
	}

	for _, ref := range []string{fp, "rca8"} {
		resp := postMeasure(t, ts2, fmt.Sprintf(`{"circuit":%q,"cycles":50,"seed":3}`, ref))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("measure by %q after restart: status %d", ref, resp.StatusCode)
		}
		got := decodeBody[MeasureResponse](t, resp)
		if got.Activity.Transitions == 0 {
			t.Errorf("measure by %q after restart: zero transitions", ref)
		}
	}
}

// TestDurableUploadsSkipCorrupt: torn and tampered documents in the
// upload directory are skipped at scan or dropped at load — never
// served.
func TestDurableUploadsSkipCorrupt(t *testing.T) {
	dir := t.TempDir()
	src, nl := verilogSource(t, "rca4")
	fp := nl.Fingerprint()

	ts1 := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadDir(dir)))
	resp := uploadEnvelope(t, ts1, "verilog", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	resp.Body.Close()
	ts1.Close()

	// Truncate the document mid-JSON, as a crash mid-write (without the
	// atomic rename) would have.
	corruptTruncated(t, dir, fp)

	ts2 := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadDir(dir)))
	t.Cleanup(ts2.Close)
	r := postMeasure(t, ts2, fmt.Sprintf(`{"circuit":%q,"cycles":10}`, fp))
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt upload resolved: status %d, want 404", r.StatusCode)
	}
	if e := decodeBody[ErrorResponse](t, r); e.Code != CodeUnknownCircuit {
		t.Fatalf("corrupt upload: code %q, want %q", e.Code, CodeUnknownCircuit)
	}
}

// TestErrorCodes: the stable code field on the pre-existing failure
// paths.
func TestErrorCodes(t *testing.T) {
	ts := newTestServer(t)
	check := func(resp *http.Response, status int, code string) {
		t.Helper()
		if resp.StatusCode != status {
			t.Fatalf("status %d, want %d", resp.StatusCode, status)
		}
		if e := decodeBody[ErrorResponse](t, resp); e.Code != code {
			t.Errorf("code %q, want %q (error: %s)", e.Code, code, e.Error)
		}
	}

	check(postMeasure(t, ts, `{"circuit":"nonesuch"}`), http.StatusNotFound, CodeUnknownCircuit)
	check(postMeasure(t, ts, `{"circuit":`), http.StatusBadRequest, CodeBadRequest)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/measure", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusMethodNotAllowed, CodeMethodNotAllowed)

	resp, err = http.Get(ts.URL + "/v1/jobs/nonesuch")
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusNotFound, CodeUnknownJob)

	// An upload past the 4 MiB bound is 413 payload_too_large.
	big := strings.Repeat("x", maxUploadBytes+1)
	resp, err = http.Post(ts.URL+"/v1/circuits?format=json", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	check(resp, http.StatusRequestEntityTooLarge, CodePayloadTooLarge)
}
