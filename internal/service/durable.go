package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"glitchsim/netlist"
)

// Durable uploads: with WithUploadDir, every accepted circuit upload is
// also written to disk as a <fingerprint>.json document, and uploads
// survive a server restart — a measurement referencing a fingerprint
// from before the restart resolves by lazily reloading the netlist from
// disk into the in-memory LRU. The on-disk discipline mirrors
// jobs.FileStore: writes go to a dot-prefixed temp file in the same
// directory and are renamed into place, so a crash mid-write leaves a
// stale temp (swept at startup) and never a torn document. Corrupt or
// tampered documents (unparseable, or whose netlist no longer hashes to
// the fingerprint in their name) are skipped with a log line, never
// served.

// WithUploadDir persists circuit uploads under dir (created if
// missing), so they survive server restarts. The in-memory LRU
// (WithUploadCapacity) remains the cache in front: eviction drops a
// circuit from memory but not from disk, and the store is not bounded —
// the operator owns the directory. An unusable directory logs and
// disables durability; uploads still work in memory only.
func WithUploadDir(dir string) Option {
	return func(s *Server) { s.uploadDir = dir }
}

// initUploadDisk attaches the durable store once options are applied
// (so it sees the final logf).
func (s *Server) initUploadDisk() {
	if s.uploadDir == "" {
		return
	}
	disk, err := openCircuitDisk(s.uploadDir, s.logf)
	if err != nil {
		s.logf("service: durable uploads disabled: %v", err)
		return
	}
	s.uploads.disk = disk
}

// circuitDoc is the on-disk document: the handle for listings plus the
// netlist itself in its canonical JSON form (which round-trips the
// fingerprint exactly — net order is preserved).
type circuitDoc struct {
	Fingerprint string          `json:"fingerprint"`
	Info        CircuitInfo     `json:"info"`
	Netlist     json.RawMessage `json:"netlist"`
}

// circuitDisk is the durable side of the upload store. Safe for
// concurrent use; the uploadStore calls it outside its own lock.
type circuitDisk struct {
	dir  string
	logf func(format string, args ...any)

	mu    sync.Mutex
	infos map[string]CircuitInfo // fingerprint -> handle, from scan + puts
}

// openCircuitDisk opens (creating if needed) the durable directory,
// sweeps stale temp files from crashed writes, and indexes the handles
// of every readable document. Netlists are not parsed here — deep
// verification happens on load, keeping startup proportional to the
// catalogue size, not the circuit sizes.
func openCircuitDisk(dir string, logf func(format string, args ...any)) (*circuitDisk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("creating upload dir: %w", err)
	}
	d := &circuitDisk{dir: dir, logf: logf, infos: map[string]CircuitInfo{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scanning upload dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".") {
			// A dot-prefixed file is an interrupted write's temp file:
			// its rename never happened, so its content was never
			// promised to anyone. Sweep it.
			if strings.Contains(name, ".tmp-") {
				_ = os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		fp, ok := strings.CutSuffix(name, ".json")
		if !ok {
			continue
		}
		doc, err := d.readDoc(fp)
		if err != nil {
			logf("service: skipping corrupt upload %s: %v", name, err)
			continue
		}
		d.infos[fp] = doc.Info
	}
	return d, nil
}

// readDoc reads and structurally validates one document (fingerprint
// fields consistent with the file name); the netlist payload is not yet
// parsed.
func (d *circuitDisk) readDoc(fp string) (*circuitDoc, error) {
	raw, err := os.ReadFile(filepath.Join(d.dir, fp+".json"))
	if err != nil {
		return nil, err
	}
	var doc circuitDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	if doc.Fingerprint != fp || doc.Info.Fingerprint != fp {
		return nil, fmt.Errorf("fingerprint mismatch (doc says %q)", doc.Fingerprint)
	}
	if len(doc.Netlist) == 0 {
		return nil, fmt.Errorf("document has no netlist")
	}
	return &doc, nil
}

// save persists one upload: temp file in the same directory, fsync-free
// write, atomic rename. Failures are logged and non-fatal — the upload
// still lives in the in-memory LRU.
func (d *circuitDisk) save(n *netlist.Netlist, info CircuitInfo) {
	var nlbuf bytes.Buffer
	if err := n.WriteJSON(&nlbuf); err != nil {
		d.logf("service: persisting upload %s: %v", info.Fingerprint, err)
		return
	}
	raw, err := json.MarshalIndent(circuitDoc{
		Fingerprint: info.Fingerprint,
		Info:        info,
		Netlist:     json.RawMessage(bytes.TrimSpace(nlbuf.Bytes())),
	}, "", "  ")
	if err != nil {
		d.logf("service: persisting upload %s: %v", info.Fingerprint, err)
		return
	}
	f, err := os.CreateTemp(d.dir, "."+info.Fingerprint+".tmp-")
	if err != nil {
		d.logf("service: persisting upload %s: %v", info.Fingerprint, err)
		return
	}
	tmp := f.Name()
	_, werr := f.Write(raw)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(d.dir, info.Fingerprint+".json"))
	}
	if werr != nil {
		_ = os.Remove(tmp)
		d.logf("service: persisting upload %s: %v", info.Fingerprint, werr)
		return
	}
	d.mu.Lock()
	d.infos[info.Fingerprint] = info
	d.mu.Unlock()
}

// load reads, parses and verifies one persisted circuit. A document
// whose netlist fails to parse or no longer hashes to its fingerprint
// is dropped from the index and never served.
func (d *circuitDisk) load(fp string) (*netlist.Netlist, bool) {
	d.mu.Lock()
	_, known := d.infos[fp]
	d.mu.Unlock()
	if !known {
		return nil, false
	}
	doc, err := d.readDoc(fp)
	if err == nil {
		var n *netlist.Netlist
		n, err = netlist.ReadJSON(bytes.NewReader(doc.Netlist))
		if err == nil && n.Fingerprint() != fp {
			err = fmt.Errorf("netlist hashes to %s", n.Fingerprint())
		}
		if err == nil {
			return n, true
		}
	}
	d.logf("service: dropping corrupt upload %s: %v", fp, err)
	d.mu.Lock()
	delete(d.infos, fp)
	d.mu.Unlock()
	return nil, false
}

// fingerprintByName returns the fingerprint of a persisted circuit with
// the given module name (smallest fingerprint wins a collision, for
// determinism).
func (d *circuitDisk) fingerprintByName(name string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	best := ""
	for fp, info := range d.infos {
		if info.Name == name && (best == "" || fp < best) {
			best = fp
		}
	}
	return best, best != ""
}

// snapshot returns the handles of every persisted circuit.
func (d *circuitDisk) snapshot() []CircuitInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]CircuitInfo, 0, len(d.infos))
	for _, info := range d.infos {
		out = append(out, info)
	}
	return out
}
