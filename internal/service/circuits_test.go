package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"glitchsim"
	"glitchsim/internal/registry"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

// verilogSource renders a registry circuit as Verilog for upload tests.
func verilogSource(t *testing.T, name string) (string, *netlist.Netlist) {
	t.Helper()
	n, err := registry.Build(name)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := verilog.Write(&sb, n); err != nil {
		t.Fatal(err)
	}
	return sb.String(), n
}

func uploadEnvelope(t *testing.T, ts *httptest.Server, format, source string) *http.Response {
	t.Helper()
	body, err := json.Marshal(UploadRequest{Format: format, Source: source})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/circuits", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServiceCircuitUpload: a Verilog upload returns a fingerprint-
// addressed handle with circuit statistics, and measuring by that
// fingerprint is bit-identical to measuring the built-in by name —
// through the same compiled-netlist cache entry.
func TestServiceCircuitUpload(t *testing.T) {
	engine := glitchsim.NewEngine()
	ts := httptest.NewServer(New(engine))
	t.Cleanup(ts.Close)

	src, nl := verilogSource(t, "rca8")
	resp := uploadEnvelope(t, ts, "verilog", src)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	info := decodeBody[CircuitInfo](t, resp)
	if info.Fingerprint != nl.Fingerprint() {
		t.Fatalf("upload fingerprint %s, want %s (metadata round trip broken?)", info.Fingerprint, nl.Fingerprint())
	}
	if info.Name != "rca8" || info.Cells != nl.NumCells() || info.Nets != nl.NumNets() ||
		info.Inputs != nl.InputWidth() || info.Outputs != nl.OutputWidth() || info.Depth <= 0 {
		t.Errorf("upload stats %+v do not match circuit", info)
	}

	measure := func(circuit string) ActivityDTO {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
			strings.NewReader(fmt.Sprintf(`{"circuit":%q,"cycles":50,"seed":3}`, circuit)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("measure %s: status %d", circuit, resp.StatusCode)
		}
		return decodeBody[MeasureResponse](t, resp).Activity
	}
	byFP := measure(info.Fingerprint)
	byName := measure("rca8")
	if byFP != byName {
		t.Errorf("uploaded measurement %+v differs from built-in %+v", byFP, byName)
	}

	// Both measurements share one fingerprint, so the second one must
	// have hit the engine's compiled-netlist cache.
	cs := engine.CacheStats()
	if cs.Misses != 1 || cs.Hits < 1 {
		t.Errorf("cache stats %+v: want exactly 1 miss and >=1 hit for the shared circuit", cs)
	}
}

// TestServiceCircuitUploadJSONRaw: the raw-body upload shape with
// ?format=json, and fingerprint preservation through the JSON codec.
func TestServiceCircuitUploadJSONRaw(t *testing.T) {
	ts := newTestServer(t)
	n, err := registry.Build("hazard")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/circuits?format=json", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	info := decodeBody[CircuitInfo](t, resp)
	if info.Fingerprint != n.Fingerprint() {
		t.Errorf("JSON upload fingerprint %s, want %s", info.Fingerprint, n.Fingerprint())
	}

	list, err := http.Get(ts.URL + "/v1/circuits")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[CircuitsResponse](t, list)
	if len(cat.Uploads) != 1 || cat.Uploads[0].Fingerprint != info.Fingerprint {
		t.Errorf("catalogue uploads %+v missing the upload", cat.Uploads)
	}
	foundBuiltin := false
	for _, b := range cat.Builtin {
		if b == "rca8" {
			foundBuiltin = true
		}
	}
	if !foundBuiltin {
		t.Errorf("catalogue builtins %v missing rca8", cat.Builtin)
	}
}

// TestServiceUploadLintWarnings: uploading a circuit with a floating
// primary input succeeds (stored, measurable) but the reply carries the
// netlist lint warning naming the net; a clean upload has no warnings
// field at all.
func TestServiceUploadLintWarnings(t *testing.T) {
	ts := newTestServer(t)

	b := netlist.NewBuilder("floaty")
	a := b.Input("a")
	b.Input("loose")
	b.Output("o", b.Not(a))
	var sb strings.Builder
	if err := b.MustBuild().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	resp := uploadEnvelope(t, ts, "json", sb.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload with floating input rejected: status %d", resp.StatusCode)
	}
	up := decodeBody[UploadResponse](t, resp)
	if len(up.Warnings) != 1 {
		t.Fatalf("want one lint warning, got %+v", up.Warnings)
	}
	w := up.Warnings[0]
	if w.Kind != netlist.KindUnusedInput || w.Severity != netlist.SeverityWarning {
		t.Errorf("warning %+v, want an unused-input warning", w)
	}
	if len(w.Nets) != 1 || w.Nets[0] != "loose" {
		t.Errorf("warning %+v does not name the floating input", w)
	}
	// The stored circuit is still measurable by its fingerprint.
	mresp, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(fmt.Sprintf(`{"circuit":%q,"cycles":10,"seed":1}`, up.Fingerprint)))
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("measuring warned upload: status %d", mresp.StatusCode)
	}
	mresp.Body.Close()

	src, _ := verilogSource(t, "rca8")
	clean := decodeBody[UploadResponse](t, uploadEnvelope(t, ts, "verilog", src))
	if len(clean.Warnings) != 0 {
		t.Errorf("clean upload carries warnings: %+v", clean.Warnings)
	}
}

// TestServiceUploadErrors: malformed sources answer 400 with the
// parser's line-numbered message; bad formats answer 400; unknown
// fingerprints answer 404 listing the resolvable identifiers.
func TestServiceUploadErrors(t *testing.T) {
	ts := newTestServer(t)

	resp := uploadEnvelope(t, ts, "verilog", "module broken(a; input a; endmodule")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed verilog: status %d, want 400", resp.StatusCode)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if !strings.Contains(e.Error, "line ") {
		t.Errorf("malformed verilog error %q carries no line number", e.Error)
	}

	resp = uploadEnvelope(t, ts, "vhdl", "entity nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	src, _ := verilogSource(t, "hazard")
	resp = uploadEnvelope(t, ts, "verilog", src)
	info := decodeBody[CircuitInfo](t, resp)

	r, err := http.Get(ts.URL + "/v1/measure?circuit=" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", r.StatusCode)
	}
	e = decodeBody[ErrorResponse](t, r)
	if !strings.Contains(e.Error, "rca8") || !strings.Contains(e.Error, info.Fingerprint) {
		t.Errorf("404 message %q does not list available circuits", e.Error)
	}
}

// TestServiceUploadLRUBound: the upload store is a bounded LRU — old
// uploads age out and their fingerprints stop resolving.
func TestServiceUploadLRUBound(t *testing.T) {
	ts := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadCapacity(2)))
	t.Cleanup(ts.Close)

	var fps []string
	for _, name := range []string{"hazard", "rca4", "rca8"} {
		src, _ := verilogSource(t, name)
		resp := uploadEnvelope(t, ts, "verilog", src)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %s: status %d", name, resp.StatusCode)
		}
		fps = append(fps, decodeBody[CircuitInfo](t, resp).Fingerprint)
	}

	list, err := http.Get(ts.URL + "/v1/circuits")
	if err != nil {
		t.Fatal(err)
	}
	cat := decodeBody[CircuitsResponse](t, list)
	if len(cat.Uploads) != 2 {
		t.Fatalf("%d uploads retained, want 2 (LRU bound)", len(cat.Uploads))
	}
	if cat.Uploads[0].Fingerprint != fps[2] || cat.Uploads[1].Fingerprint != fps[1] {
		t.Errorf("unexpected retention order: %+v", cat.Uploads)
	}
	r, err := http.Get(ts.URL + "/v1/measure?circuit=" + fps[0] + "&cycles=2")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("evicted fingerprint: status %d, want 404", r.StatusCode)
	}
}

// TestServiceUploadsDisabled: capacity 0 turns the endpoint off.
func TestServiceUploadsDisabled(t *testing.T) {
	ts := httptest.NewServer(New(glitchsim.NewEngine(), WithUploadCapacity(0)))
	t.Cleanup(ts.Close)
	resp := uploadEnvelope(t, ts, "verilog", "module m(a); input a; endmodule")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
}

// TestServiceExperimentCircuitParam: the retiming sweeps accept a
// circuit override; the fixed-set experiments reject one.
func TestServiceExperimentCircuitParam(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/experiments/table1", "application/json",
		strings.NewReader(`{"cycles":5,"circuit":"rca4"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("table1 with circuit: status %d, want 400", resp.StatusCode)
	}

	resp2, err := http.Post(ts.URL+"/v1/experiments/table3", "application/json",
		strings.NewReader(`{"cycles":5,"circuit":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("table3 with unknown circuit: status %d, want 404", resp2.StatusCode)
	}

	resp3, err := http.Post(ts.URL+"/v1/experiments/table3", "application/json",
		strings.NewReader(`{"cycles":5,"circuit":"dirdet8r"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("table3 with explicit subject: status %d", resp3.StatusCode)
	}
	rows := decodeBody[Table3Response](t, resp3)
	if len(rows.Rows) != 4 {
		t.Errorf("table3 rows %d, want 4", len(rows.Rows))
	}
}
