package service

import (
	"fmt"
	"net/http"

	"glitchsim"
	"glitchsim/netlist"
)

// Admission control: before compiling or simulating anything, the
// server predicts each measurement's cost from netlist statistics
// (glitchsim.EstimateCost) and compares it against the operator's
// Limits. Requests that cannot possibly be served answer 422
// "cost_exceeded" immediately; requests that are merely expensive are
// shed with 429 "overloaded" while the engine is saturated, so cheap
// requests keep flowing under load.

// Limits is the server's admission policy, configured with WithLimits.
// The zero value admits everything.
type Limits struct {
	// MaxEstimatedEvents rejects (422 "cost_exceeded") any measurement
	// whose estimated kernel event count exceeds it, regardless of load.
	MaxEstimatedEvents uint64
	// MaxEstimatedMemoryBytes rejects measurements whose estimated
	// compiled-netlist-plus-kernel footprint exceeds it.
	MaxEstimatedMemoryBytes uint64
	// ShedEstimatedEvents sheds (429 "overloaded", with Retry-After)
	// measurements above it while every engine slot is busy. Cheaper
	// requests still queue for a slot as usual.
	ShedEstimatedEvents uint64
}

// IsZero reports whether the limits admit everything.
func (l Limits) IsZero() bool { return l == Limits{} }

// WithLimits sets the server's admission policy for measurement
// requests (synchronous and async submissions alike).
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l }
}

// WithDefaultBudget bounds every measurement whose request carries no
// budget of its own. Clients can tighten the budget per request but a
// request budget replaces (never extends) the default, so an operator
// default is only a backstop against runaway requests if clients
// cannot be trusted — pair it with Limits for a hard ceiling.
func WithDefaultBudget(b glitchsim.Budget) Option {
	return func(s *Server) { s.defaultBudget = b }
}

// admitMeasure applies the admission policy to one measurement: false
// means the response was already written (422 cost_exceeded or 429
// overloaded). cfg is the request's config as handed to measure —
// engine defaults are applied by EstimateCost itself.
func (s *Server) admitMeasure(w http.ResponseWriter, nl *netlist.Netlist, cfg glitchsim.Config) bool {
	if s.limits.IsZero() {
		return true
	}
	est, err := s.engine.EstimateCost(glitchsim.MeasureRequest{Netlist: nl, Config: cfg})
	if err != nil {
		// Estimation never fails for an already-resolved netlist; fail
		// open rather than reject on an internal inconsistency.
		return true
	}
	detail := map[string]any{
		"estimated_events":       est.Events,
		"estimated_memory_bytes": est.MemoryBytes,
		"steps":                  est.Steps,
		"lanes":                  est.Lanes,
	}
	if lim := s.limits.MaxEstimatedEvents; lim > 0 && est.Events > lim {
		detail["limit_events"] = lim
		s.writeErrorDetail(w, http.StatusUnprocessableEntity, CodeCostExceeded,
			fmt.Errorf("estimated cost %d events exceeds the server limit of %d", est.Events, lim), detail)
		return false
	}
	if lim := s.limits.MaxEstimatedMemoryBytes; lim > 0 && est.MemoryBytes > lim {
		detail["limit_memory_bytes"] = lim
		s.writeErrorDetail(w, http.StatusUnprocessableEntity, CodeCostExceeded,
			fmt.Errorf("estimated footprint %d bytes exceeds the server limit of %d", est.MemoryBytes, lim), detail)
		return false
	}
	if lim := s.limits.ShedEstimatedEvents; lim > 0 && est.Events > lim {
		if active, capacity := s.engine.Load(); capacity > 0 && active >= capacity {
			detail["limit_events"] = lim
			w.Header().Set("Retry-After", "1")
			s.writeErrorDetail(w, http.StatusTooManyRequests, CodeOverloaded,
				fmt.Errorf("engine saturated (%d/%d slots); request estimated at %d events exceeds the shed threshold of %d",
					active, capacity, est.Events, lim), detail)
			return false
		}
	}
	return true
}
