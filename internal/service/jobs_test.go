package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"glitchsim"
	"glitchsim/internal/jobs"
	"glitchsim/internal/logic"
	"glitchsim/internal/testutil"
	"glitchsim/netlist"
)

// fastRetry keeps retry-path tests quick.
var fastRetry = jobs.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func newJobServer(t *testing.T, e *glitchsim.Engine, opts jobs.Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(e, WithJobOptions(opts), WithBaseContext(context.Background()))
	if s.Jobs() == nil {
		t.Fatal("job subsystem failed to start")
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

// submitJob POSTs a job and returns the decoded 202 body.
func submitJob(t *testing.T, ts *httptest.Server, body string) JobDTO {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit status %d: %s", resp.StatusCode, e.Error)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	return decodeBody[JobDTO](t, resp)
}

// pollJob polls the status endpoint until the job reaches a terminal
// state, returning the final DTO.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobDTO {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status endpoint answered %d", resp.StatusCode)
		}
		dto := decodeBody[JobDTO](t, resp)
		if jobs.State(dto.State).Terminal() {
			return dto
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, dto.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsServiceLifecycle: submit → poll → result → events, end to
// end over HTTP, with the async result matching the synchronous
// endpoint byte for byte.
func TestJobsServiceLifecycle(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newJobServer(t, glitchsim.NewEngine(), jobs.Options{})

	body := `{"kind":"measure","measure":{"circuit":"rca8","cycles":100,"seeds":[1,2,3]}}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "lifecycle-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "lifecycle-test-1" {
		t.Errorf("X-Request-Id = %q, want echo of the client's", got)
	}
	sub := decodeBody[JobDTO](t, resp)
	if sub.ID == "" || sub.Kind != "measure" {
		t.Fatalf("submit reply %+v", sub)
	}
	if sub.RequestID != "lifecycle-test-1" {
		t.Errorf("job request_id = %q, want the submitting request's", sub.RequestID)
	}
	if sub.Fingerprint == "" {
		t.Error("job carries no circuit fingerprint")
	}

	final := pollJob(t, ts, sub.ID)
	if final.State != string(jobs.StateSucceeded) || !final.ResultReady {
		t.Fatalf("final state %q (result_ready=%v), error %q", final.State, final.ResultReady, final.Error)
	}
	if final.Progress.Done != 3 || final.Progress.Total != 3 {
		t.Errorf("progress %+v, want 3/3", final.Progress)
	}

	// The job result must be the same body the synchronous endpoint sends.
	jr, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if jr.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", jr.StatusCode)
	}
	async := decodeBody[MeasureResponse](t, jr)
	sr, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(`{"circuit":"rca8","cycles":100,"seeds":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	sync := decodeBody[MeasureResponse](t, sr)
	if async.Activity != sync.Activity || async.Seeds != sync.Seeds || async.Kernel != sync.Kernel {
		t.Errorf("async result %+v != sync result %+v", async, sync)
	}

	// The events tail: lifecycle transitions plus per-seed progress,
	// ending in the terminal state.
	er, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var evs []jobs.Event
	dec := json.NewDecoder(er.Body)
	for dec.More() {
		var ev jobs.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("decoding event stream: %v", err)
		}
		evs = append(evs, ev)
	}
	seeds := 0
	for _, ev := range evs {
		if ev.Kind == "seed" {
			seeds++
		}
	}
	if seeds != 3 {
		t.Errorf("event stream has %d seed events, want 3", seeds)
	}
	if last := evs[len(evs)-1]; last.Kind != "state" || last.State != jobs.StateSucceeded {
		t.Errorf("stream ends with %+v, want terminal state event", last)
	}

	// And the collection endpoint knows the job.
	lr, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[JobsResponse](t, lr)
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == sub.ID
	}
	if !found {
		t.Errorf("GET /v1/jobs does not list job %s", sub.ID)
	}
}

// TestJobsServiceQueueFull: with one worker wedged and a depth-1 queue
// occupied, the next submission answers 429 with a Retry-After hint —
// the service never buffers beyond the configured bound.
func TestJobsServiceQueueFull(t *testing.T) {
	release := make(chan struct{})
	s, ts := newJobServer(t, glitchsim.NewEngine(), jobs.Options{
		Workers:    1,
		QueueDepth: 1,
		Injector: jobs.InjectorFunc(func(jobs.Record, int) error {
			<-release // park the worker until the test is done asserting
			return nil
		}),
	})
	defer close(release)

	const body = `{"kind":"measure","measure":{"circuit":"rca8","cycles":10}}`
	running := submitJob(t, ts, body)
	// Wait for the worker to actually pick the first job up, so the
	// second one definitely lands in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.Jobs().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", running.ID)
		}
		time.Sleep(time.Millisecond)
	}
	submitJob(t, ts, body) // fills the queue

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit answered %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	e := decodeBody[ErrorResponse](t, resp)
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("429 body %q does not name the queue", e.Error)
	}
}

// TestJobsServiceRetryThenSucceed: an injected transient fault on the
// first attempt is retried under backoff and the job still succeeds,
// with the retry visible in the event tail.
func TestJobsServiceRetryThenSucceed(t *testing.T) {
	faults := &jobs.ScriptedFaults{Steps: []jobs.FaultStep{
		{Err: jobs.Transient(fmt.Errorf("injected transient fault"))},
	}}
	_, ts := newJobServer(t, glitchsim.NewEngine(), jobs.Options{Retry: fastRetry, Injector: faults})

	sub := submitJob(t, ts, `{"kind":"measure","measure":{"circuit":"rca8","cycles":10}}`)
	final := pollJob(t, ts, sub.ID)
	if final.State != string(jobs.StateSucceeded) {
		t.Fatalf("state %q, error %q", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one fault, one success)", final.Attempts)
	}
	if got := faults.Calls(); got != 2 {
		t.Errorf("injector intercepted %d attempts, want 2", got)
	}

	er, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(er.Body)
	er.Body.Close()
	if !strings.Contains(buf.String(), `"kind": "retry"`) && !strings.Contains(buf.String(), `"kind":"retry"`) {
		t.Errorf("event tail records no retry:\n%s", buf.String())
	}
}

// panickySource resolves one name normally on its first call (job
// admission) and panics on every later resolve (job execution) — the
// fault-injecting CircuitSource of the acceptance tests.
type panickySource struct {
	name  string
	nl    *netlist.Netlist
	calls atomic.Int32
}

func (p *panickySource) Resolve(name string) (*netlist.Netlist, bool, error) {
	if name != p.name {
		return nil, false, nil
	}
	if p.calls.Add(1) > 1 {
		panic("injected circuit source panic")
	}
	return p.nl, true, nil
}

func (p *panickySource) Names() []string { return []string{p.name} }

// TestRecoverServicePanic: a panic deep in job execution (here: a
// CircuitSource blowing up during resolution) fails that job with the
// recovered stack on record — and the daemon keeps serving: healthz
// still answers and the next job runs to success.
func TestRecoverServicePanic(t *testing.T) {
	src := &panickySource{name: "boomer", nl: glitchsim.NewRCA(8)}
	e := glitchsim.NewEngine(glitchsim.WithCircuitSource(src))
	_, ts := newJobServer(t, e, jobs.Options{Retry: fastRetry})

	sub := submitJob(t, ts, `{"kind":"measure","measure":{"circuit":"boomer","cycles":10}}`)
	final := pollJob(t, ts, sub.ID)
	if final.State != string(jobs.StateFailed) {
		t.Fatalf("state %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "panicked") {
		t.Errorf("error %q does not mention the panic", final.Error)
	}
	if !strings.Contains(final.Stack, "goroutine") || !strings.Contains(final.Stack, "Resolve") {
		t.Errorf("recorded stack does not look like the panicking goroutine:\n%s", final.Stack)
	}

	// The result endpoint reports the failure, not a payload.
	rr, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	if rr.StatusCode != http.StatusInternalServerError {
		t.Errorf("failed job's result endpoint answered %d, want 500", rr.StatusCode)
	}
	rr.Body.Close()

	// The daemon survived: liveness and fresh work both still fine.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after worker panic answered %d", hr.StatusCode)
	}
	hr.Body.Close()
	next := submitJob(t, ts, `{"kind":"measure","measure":{"circuit":"rca8","cycles":10}}`)
	if got := pollJob(t, ts, next.ID); got.State != string(jobs.StateSucceeded) {
		t.Errorf("job after panic ended %q, error %q", got.State, got.Error)
	}
}

// wedgeSource parks a measurement on its first stimulus vector until
// released, deterministically occupying an engine concurrency slot.
type wedgeSource struct {
	width   int
	started chan struct{}
	release chan struct{}
	once    sync.Once
	buf     logic.Vector
}

func (s *wedgeSource) Next() logic.Vector {
	s.once.Do(func() { close(s.started) })
	<-s.release
	if s.buf == nil {
		s.buf = make(logic.Vector, s.width)
	}
	return s.buf
}

func (s *wedgeSource) Width() int { return s.width }

// holdEngineSlot occupies the single concurrency slot of e until the
// returned release func runs.
func holdEngineSlot(t *testing.T, e *glitchsim.Engine) (release func()) {
	t.Helper()
	nl := glitchsim.NewRCA(8)
	src := &wedgeSource{width: nl.InputWidth(), started: make(chan struct{}), release: make(chan struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = e.Measure(context.Background(), glitchsim.MeasureRequest{
			Netlist: nl, Config: glitchsim.Config{Cycles: 1, Source: src},
		})
	}()
	<-src.started
	var once sync.Once
	return func() {
		once.Do(func() { close(src.release) })
		<-done
	}
}

// TestJobsServiceCancelMidRun: DELETE on a running job (blocked waiting
// for an engine slot) cancels it promptly and the record lands in
// state canceled.
func TestJobsServiceCancelMidRun(t *testing.T) {
	e := glitchsim.NewEngine(glitchsim.WithMaxConcurrency(1))
	s, ts := newJobServer(t, e, jobs.Options{Workers: 1})
	release := holdEngineSlot(t, e)
	defer release()

	sub := submitJob(t, ts, `{"kind":"measure","measure":{"circuit":"rca8","cycles":10}}`)
	deadline := time.Now().Add(5 * time.Second)
	for s.Jobs().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE answered %d", resp.StatusCode)
	}
	resp.Body.Close()

	final := pollJob(t, ts, sub.ID)
	if final.State != string(jobs.StateCanceled) {
		t.Fatalf("state after DELETE = %q, want canceled", final.State)
	}

	// Cancelling again reports the conflict.
	again, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp2, err := http.DefaultClient.Do(again)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE answered %d, want 409", resp2.StatusCode)
	}
	resp2.Body.Close()
}

// TestDrainServiceCheckpointRestart: the full restart story over HTTP.
// A server with an on-disk store is shut down while one job is running
// (wedged on a busy engine) and another is queued; the drain
// checkpoints both as queued in the store. A second server over the
// same directory re-runs them to completion and serves their results.
func TestDrainServiceCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := jobs.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := glitchsim.NewEngine(glitchsim.WithMaxConcurrency(1))
	s1 := New(e1, WithJobOptions(jobs.Options{Workers: 1, Store: store1}), WithBaseContext(context.Background()))
	ts1 := httptest.NewServer(s1)
	release := holdEngineSlot(t, e1)

	const body = `{"kind":"measure","measure":{"circuit":"rca8","cycles":50,"seed":7}}`
	runningJob := submitJob(t, ts1, body)
	deadline := time.Now().Add(5 * time.Second)
	for s1.Jobs().Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queuedJob := submitJob(t, ts1, body)

	// Drain with a grace period the wedged job cannot meet: it must be
	// checkpointed back to queued, not lost and not waited on forever.
	dctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err = s1.Drain(dctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	release()

	// The store now holds both jobs as queued work.
	recs, err := store1.List()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]jobs.State{}
	for _, r := range recs {
		states[r.ID] = r.State
	}
	if states[runningJob.ID] != jobs.StateQueued || states[queuedJob.ID] != jobs.StateQueued {
		t.Fatalf("store after drain = %v, want both queued", states)
	}

	// "Restart": a fresh engine and server over the same directory.
	store2, err := jobs.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(glitchsim.NewEngine(), WithJobOptions(jobs.Options{Workers: 2, Store: store2}), WithBaseContext(context.Background()))
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s2.Drain(ctx)
	}()

	for _, id := range []string{runningJob.ID, queuedJob.ID} {
		final := pollJob(t, ts2, id)
		if final.State != string(jobs.StateSucceeded) {
			t.Fatalf("recovered job %s ended %q, error %q", id, final.State, final.Error)
		}
		rr, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		if rr.StatusCode != http.StatusOK {
			t.Fatalf("recovered job %s result answered %d", id, rr.StatusCode)
		}
		got := decodeBody[MeasureResponse](t, rr)
		if got.Activity.Circuit != "rca8" {
			t.Errorf("recovered result %+v", got.Activity)
		}
	}
}

// TestJobsServiceValidation: admission rejects what it can see is
// broken — unknown kinds, missing circuits, unknown circuit names —
// without burning a queue slot.
func TestJobsServiceValidation(t *testing.T) {
	_, ts := newJobServer(t, glitchsim.NewEngine(), jobs.Options{})
	cases := []struct {
		body string
		want int
	}{
		{`{"kind":"bake"}`, http.StatusBadRequest},
		{`{"kind":"measure"}`, http.StatusBadRequest},
		{`{"kind":"measure","measure":{"circuit":"no-such-circuit"}}`, http.StatusNotFound},
		{`{"kind":"table1","experiment":{"circuit":"rca8"}}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != c.want {
			t.Errorf("submit %q answered %d, want %d", c.body, resp.StatusCode, c.want)
		}
		resp.Body.Close()
	}

	// Unknown job IDs 404 on every per-job endpoint.
	for _, path := range []string{"/v1/jobs/feedbeef00000000", "/v1/jobs/feedbeef00000000/result", "/v1/jobs/feedbeef00000000/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s answered %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestJobsServiceExperiment: the experiment kinds run through the job
// path too, with row progress counted.
func TestJobsServiceExperiment(t *testing.T) {
	_, ts := newJobServer(t, glitchsim.NewEngine(), jobs.Options{})
	sub := submitJob(t, ts, `{"kind":"table1","experiment":{"cycles":20}}`)
	final := pollJob(t, ts, sub.ID)
	if final.State != string(jobs.StateSucceeded) {
		t.Fatalf("state %q, error %q", final.State, final.Error)
	}
	rr, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[RowsResponse](t, rr)
	if len(got.Rows) != 4 {
		t.Errorf("table1 job returned %d rows, want 4", len(got.Rows))
	}
}
