package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"glitchsim"
)

// TestServiceBodyLimits: the request-size bound answers 413 (the body
// must shrink), while merely malformed JSON answers 400 with a message
// naming the problem.
func TestServiceBodyLimits(t *testing.T) {
	ts := newTestServer(t)

	huge := `{"circuit":"rca8","seeds":[` + strings.Repeat("1,", 1<<20) + `1]}`
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body answered %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(`{"circuit":`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body answered %d, want 400", resp.StatusCode)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if !strings.Contains(e.Error, "invalid JSON body") {
		t.Errorf("400 body %q does not explain the parse failure", e.Error)
	}
}

// TestServiceUnknownCircuitStream: an unknown circuit reference on the
// streaming path still fails fast with a plain 404 (resolution happens
// before the NDJSON switch, so the client gets a status, not a
// half-open stream).
func TestServiceUnknownCircuitStream(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/measure?circuit=0123456789abcdef&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint on stream path answered %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 Content-Type = %q, want plain JSON error", ct)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if !strings.Contains(e.Error, "0123456789abcdef") {
		t.Errorf("404 body %q does not name the missing circuit", e.Error)
	}
}

// TestServiceRequestID: every response carries X-Request-Id — a valid
// client-provided one is echoed, anything else is replaced with a
// generated one — and error envelopes include the same ID.
func TestServiceRequestID(t *testing.T) {
	ts := newTestServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "my-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "my-trace-42" {
		t.Errorf("valid client ID not echoed: got %q", got)
	}
	resp.Body.Close()

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id\twith spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(got, " ") {
		t.Errorf("invalid client ID not replaced: got %q", got)
	}
	resp.Body.Close()

	// An error response carries the ID in its envelope too.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/measure", strings.NewReader(`{`))
	req.Header.Set("X-Request-Id", "err-trace-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	e := decodeBody[ErrorResponse](t, resp)
	if e.RequestID != "err-trace-7" {
		t.Errorf("error envelope request_id = %q, want the request's", e.RequestID)
	}
}

// TestServicePanicRecovery: a handler panic is contained by the
// middleware — the client gets a 500 JSON envelope, and the server
// keeps answering.
func TestServicePanicRecovery(t *testing.T) {
	s := New(glitchsim.NewEngine())
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("500 from panic lacks X-Request-Id")
	}
	e := decodeBody[ErrorResponse](t, resp)
	if e.Error == "" {
		t.Error("500 from panic has empty error envelope")
	}

	// The daemon survived the panic.
	after, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if after.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic answered %d", after.StatusCode)
	}
	after.Body.Close()
}
