// Package service exposes a glitchsim.Engine over HTTP/JSON: the
// measurement and experiment drivers as request/response endpoints with
// optional NDJSON progress streaming, sharing one Engine (one compiled-
// netlist cache, one worker-pool configuration) across all concurrent
// requests. Request contexts are plumbed into the Engine, so a client
// disconnect cancels its simulation work promptly.
//
// Endpoints:
//
//	GET  /healthz                     liveness + engine cache statistics
//	GET  /v1/circuits                 list built-in and uploaded circuits
//	POST /v1/circuits                 upload a Verilog or JSON circuit
//	POST /v1/measure                  measure one circuit (multi-seed optional)
//	POST /v1/experiments/table1       Table 1: array vs wallace multipliers
//	POST /v1/experiments/table2       Table 2: sum/carry delay imbalance
//	POST /v1/experiments/table3       Table 3: retimed variant power breakdown
//	POST /v1/experiments/figure10     Figure 10: power vs flipflop sweep
//
// Every measurement endpoint's `circuit` parameter accepts a built-in
// registry name or the fingerprint handle POST /v1/circuits returned,
// so uploaded circuits measure exactly like built-ins (and share the
// Engine's fingerprint-keyed compiled cache). Unknown circuit
// references answer 404 with the resolvable identifiers; malformed
// uploads answer 400 with the parser's line-numbered message.
//
// Every /v1 endpoint except the upload also accepts GET with the same
// parameters as query strings, and `"stream": true` (or ?stream=1)
// switches the reply to newline-delimited JSON progress events
// terminated by a "done" event.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"time"

	"glitchsim"
	"glitchsim/internal/core"
	"glitchsim/internal/jobs"
	"glitchsim/internal/power"
	"glitchsim/internal/registry"
	"glitchsim/netlist"
)

// Server serves the glitchsim HTTP API from one shared Engine. It
// implements http.Handler.
type Server struct {
	engine        *glitchsim.Engine
	mux           *http.ServeMux
	start         time.Time
	baseCtx       context.Context
	uploads       *uploadStore
	uploadDir     string
	logf          func(format string, args ...any)
	jobOpts       *jobs.Options
	jobs          *jobs.Manager
	jobsErr       error
	defaultBudget glitchsim.Budget
	limits        Limits
}

// WithLogf routes the server's operational log lines (access log, job
// lifecycle, recovered panics) to the given printf-style function. The
// default discards them.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(s *Server) { s.logf = logf }
}

// WithBaseContext sets the root context for background work the server
// owns — async job attempts derive from it, so canceling it cancels
// every running job. The process entry point supplies it (typically its
// signal-bound context, or context.Background()); without it the job
// subsystem stays disabled and the /v1/jobs endpoints answer 503. The
// server deliberately never mints its own root context (the ctxbg
// analyzer enforces this), so cancellation stays the caller's decision.
func WithBaseContext(ctx context.Context) Option {
	return func(s *Server) { s.baseCtx = ctx }
}

// New returns a Server sharing the given Engine across all requests.
func New(e *glitchsim.Engine, opts ...Option) *Server {
	s := &Server{
		engine:  e,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		uploads: newUploadStore(DefaultUploadCapacity),
		logf:    func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	s.initUploadDisk()
	s.initJobs()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/circuits", s.handleCircuits)
	s.mux.HandleFunc("/v1/measure", s.handleMeasure)
	s.mux.HandleFunc("/v1/experiments/table1", s.experimentHandler("table1"))
	s.mux.HandleFunc("/v1/experiments/table2", s.experimentHandler("table2"))
	s.mux.HandleFunc("/v1/experiments/table3", s.experimentHandler("table3"))
	s.mux.HandleFunc("/v1/experiments/figure10", s.experimentHandler("figure10"))
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJob)
	return s
}

// ServeHTTP dispatches to the registered endpoints through the request
// middleware (request-ID, panic containment, access log).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.withMiddleware(s.mux.ServeHTTP)(w, r)
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status        string `json:"status"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	Goroutines    int    `json:"goroutines"`
	Workers       int    `json:"workers"`
	Cache         struct {
		Size      int    `json:"size"`
		Capacity  int    `json:"capacity"`
		Hits      uint64 `json:"hits"`
		Misses    uint64 `json:"misses"`
		Evictions uint64 `json:"evictions"`
	} `json:"cache"`
	// Engine reports simulation-slot occupancy: active == capacity means
	// the engine is saturated and expensive requests may be shed (429).
	Engine struct {
		Active   int `json:"active"`
		Capacity int `json:"capacity"`
	} `json:"engine"`
	Jobs *healthzJobs `json:"jobs,omitempty"`
}

// healthzJobs summarizes the job subsystem's load in /healthz.
type healthzJobs struct {
	Queued        int  `json:"queued"`
	Running       int  `json:"running"`
	QueueCapacity int  `json:"queue_capacity"`
	Workers       int  `json:"workers"`
	Draining      bool `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	var resp healthzResponse
	resp.Status = "ok"
	resp.UptimeSeconds = int64(time.Since(s.start).Seconds())
	resp.Goroutines = runtime.NumGoroutine()
	resp.Workers = s.engine.Workers()
	cs := s.engine.CacheStats()
	resp.Cache.Size = cs.Size
	resp.Cache.Capacity = cs.Capacity
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Evictions = cs.Evictions
	resp.Engine.Active, resp.Engine.Capacity = s.engine.Load()
	if s.jobs != nil {
		st := s.jobs.Stats()
		resp.Jobs = &healthzJobs{
			Queued:        st.Queued,
			Running:       st.Running,
			QueueCapacity: st.QueueCap,
			Workers:       st.Workers,
			Draining:      st.Draining,
		}
	}
	s.writeOK(w, resp)
}

// MeasureParams is the /v1/measure request body (or query string).
type MeasureParams struct {
	// Circuit references the circuit to measure: a registry name (see
	// registry.Names) or the fingerprint of an uploaded circuit (POST
	// /v1/circuits).
	Circuit string `json:"circuit"`
	// Cycles: omitted = 500, explicit 0 = measure nothing.
	Cycles *int `json:"cycles,omitempty"`
	// Warmup: omitted = 8, explicit 0 = measure from reset.
	Warmup *int `json:"warmup,omitempty"`
	// Seed selects the stimulus stream (omitted = 1). Ignored when
	// Seeds is set.
	Seed uint64 `json:"seed,omitempty"`
	// Seeds, when non-empty, runs one measurement per seed in parallel
	// and merges the counters (the reply reads like one long run).
	Seeds []uint64 `json:"seeds,omitempty"`
	// DSum/DCarry/Typical select the delay model, as the CLI flags do.
	DSum    int  `json:"dsum,omitempty"`
	DCarry  int  `json:"dcarry,omitempty"`
	Typical bool `json:"typical,omitempty"`
	// Inertial selects inertial instead of transport delay handling.
	Inertial bool `json:"inertial,omitempty"`
	// Lanes bounds the word-parallel stimulus lanes per measurement:
	// 1 forces the historical single-stream simulation, 0 keeps the
	// server's default (normally 64). Capped at glitchsim.MaxLanes.
	Lanes int `json:"lanes,omitempty"`
	// Power adds the three-component power breakdown to the reply.
	Power bool `json:"power,omitempty"`
	// Stream switches the reply to NDJSON progress events.
	Stream bool `json:"stream,omitempty"`
	// BudgetEvents bounds the measurement's kernel event count; a trip
	// answers 422 code "budget_exceeded". 0 keeps the server's default
	// budget (WithDefaultBudget), which may itself be unlimited.
	BudgetEvents uint64 `json:"budget_events,omitempty"`
	// BudgetMemoryBytes bounds the estimated memory footprint, enforced
	// at admission before compilation.
	BudgetMemoryBytes uint64 `json:"budget_memory_bytes,omitempty"`
	// BudgetWallMS bounds the measurement's wall-clock milliseconds.
	BudgetWallMS int `json:"budget_wall_ms,omitempty"`
	// CheckpointEvery, for async measure jobs, snapshots a resumable
	// checkpoint every that-many measured cycles: the job survives
	// drain/crash/restart from the last boundary, and a graceful drain
	// waits at most one chunk. 0 (or a Seeds sweep) disables
	// checkpointing; synchronous requests ignore it.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// budget resolves the request's wire budget fields.
func (p *MeasureParams) budget() glitchsim.Budget {
	return glitchsim.Budget{
		Events:      p.BudgetEvents,
		MemoryBytes: p.BudgetMemoryBytes,
		WallClock:   time.Duration(p.BudgetWallMS) * time.Millisecond,
	}
}

func (p *MeasureParams) config() glitchsim.Config {
	cfg := glitchsim.Config{Seed: p.Seed, Inertial: p.Inertial, Lanes: p.Lanes, CheckpointEvery: p.CheckpointEvery}
	if p.DSum != 0 || p.DCarry != 0 || p.Typical {
		dsum, dcarry := p.DSum, p.DCarry
		if dsum == 0 {
			dsum = 1
		}
		if dcarry == 0 {
			dcarry = 1
		}
		cfg.Delay = registry.DelayModel(dsum, dcarry, p.Typical)
	}
	cfg.Cycles = explicitZero(p.Cycles)
	cfg.Warmup = explicitZero(p.Warmup)
	cfg.Budget = p.budget()
	return cfg
}

// explicitZero maps the wire's pointer convention onto the Config
// sentinel: absent = default, explicit 0 = really zero.
func explicitZero(v *int) int {
	switch {
	case v == nil:
		return 0
	case *v == 0:
		return glitchsim.ExplicitZero
	default:
		return *v
	}
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var p MeasureParams
	if !s.decodeParams(w, r, &p) {
		return
	}
	if p.Circuit == "" {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("missing circuit (available: %s)", registry.NameList()))
		return
	}
	nl, err := s.resolveCircuit(p.Circuit)
	if err != nil {
		s.writeResolveError(w, err)
		return
	}
	ctx := r.Context()
	cfg := p.config()
	cfg.CheckpointEvery = 0 // a synchronous reply has nowhere to resume from; jobs own checkpointing
	if !s.admitMeasure(w, nl, cfg) {
		return
	}

	if p.Stream {
		s.streamResponse(w, r, func(sess *glitchsim.Session) (any, error) {
			return s.measure(sess.Context(), sess, nl, cfg, &p)
		})
		return
	}
	resp, err := s.measure(ctx, nil, nl, cfg, &p)
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	s.writeOK(w, resp)
}

// measure runs the measurement described by p, through the session when
// streaming (sess non-nil, emitting per-seed progress) or directly on
// the engine.
func (s *Server) measure(ctx context.Context, sess *glitchsim.Session, nl *netlist.Netlist, cfg glitchsim.Config, p *MeasureParams) (*MeasureResponse, error) {
	if cfg.Budget.IsZero() {
		cfg.Budget = s.defaultBudget
	}
	// Kernel selection is deterministic per (circuit, config, engine
	// defaults), so the reply can name the kernel without threading it
	// out of the measurement itself. Seed sweeps run every seed on the
	// same kernel (the seed never influences selection).
	kernel, err := s.engine.SelectedKernel(glitchsim.MeasureRequest{Netlist: nl, Config: cfg})
	if err != nil {
		return nil, err
	}
	if len(p.Seeds) > 0 {
		req := glitchsim.SeedSweepRequest{Netlist: nl, Config: cfg, Seeds: p.Seeds}
		var counter *core.Counter
		var err error
		if sess != nil {
			counter, err = sess.MeasureSeeds(req)
		} else {
			counter, err = s.engine.MeasureSeeds(ctx, req)
		}
		if err != nil {
			return nil, err
		}
		resp := &MeasureResponse{
			Activity: ActivityFrom(glitchsim.ActivityFromCounter(nl.Name, counter)),
			Seeds:    len(p.Seeds),
			Kernel:   string(kernel),
		}
		if p.Power {
			bd := power.FromActivity(counter, s.engine.Tech())
			pw := PowerFrom(bd)
			resp.Power = &pw
		}
		return resp, nil
	}

	req := glitchsim.MeasureRequest{Netlist: nl, Config: cfg}
	if p.Power {
		var bd power.Breakdown
		var act glitchsim.Activity
		var err error
		if sess != nil {
			bd, act, err = sess.MeasurePower(req)
		} else {
			bd, act, err = s.engine.MeasurePower(ctx, req)
		}
		if err != nil {
			return nil, err
		}
		pw := PowerFrom(bd)
		return &MeasureResponse{Activity: ActivityFrom(act), Power: &pw, Kernel: string(kernel)}, nil
	}
	var act glitchsim.Activity
	if sess != nil {
		act, err = sess.Measure(req)
	} else {
		act, err = s.engine.Measure(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	return &MeasureResponse{Activity: ActivityFrom(act), Kernel: string(kernel)}, nil
}

// ExperimentParams is the request body (or query string) of the
// /v1/experiments endpoints.
type ExperimentParams struct {
	// Cycles per measured point (omitted = the experiment's default).
	Cycles int `json:"cycles,omitempty"`
	// Seed selects the stimulus stream (omitted = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Targets overrides the Figure 10 retiming sweep.
	Targets []int `json:"targets,omitempty"`
	// Circuit overrides the subject of the retiming power sweeps
	// (table3, figure10) with a registry name or uploaded-circuit
	// fingerprint. The fixed-set experiments (table1, table2) reject it.
	Circuit string `json:"circuit,omitempty"`
	// Stream switches the reply to NDJSON progress events.
	Stream bool `json:"stream,omitempty"`
}

// experimentHandler builds the handler for one experiment endpoint.
func (s *Server) experimentHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var p ExperimentParams
		if !s.decodeParams(w, r, &p) {
			return
		}
		req := glitchsim.ExperimentRequest{Cycles: p.Cycles, Seed: p.Seed, Targets: p.Targets}
		if p.Circuit != "" {
			if name == "table1" || name == "table2" {
				s.writeError(w, http.StatusBadRequest, CodeBadRequest,
					fmt.Errorf("experiment %s measures a fixed circuit set and takes no circuit", name))
				return
			}
			nl, err := s.resolveCircuit(p.Circuit)
			if err != nil {
				s.writeResolveError(w, err)
				return
			}
			req.Circuit = glitchsim.CircuitFromNetlist(nl)
		}

		if p.Stream {
			s.streamResponse(w, r, func(sess *glitchsim.Session) (any, error) {
				return s.experiment(nil, sess, name, req)
			})
			return
		}
		resp, err := s.experiment(r.Context(), nil, name, req)
		if err != nil {
			s.writeEngineError(w, r, err)
			return
		}
		s.writeOK(w, resp)
	}
}

// experiment dispatches one experiment by name, through the session when
// streaming (sess non-nil, emitting per-row progress).
func (s *Server) experiment(ctx context.Context, sess *glitchsim.Session, name string, req glitchsim.ExperimentRequest) (any, error) {
	if sess != nil {
		ctx = sess.Context()
	}
	switch name {
	case "table1":
		rows, err := s.runMult(ctx, sess, req, (*glitchsim.Engine).Table1, (*glitchsim.Session).Table1)
		if err != nil {
			return nil, err
		}
		return RowsResponse{Rows: MultRowsFrom(rows)}, nil
	case "table2":
		rows, err := s.runMult(ctx, sess, req, (*glitchsim.Engine).Table2, (*glitchsim.Session).Table2)
		if err != nil {
			return nil, err
		}
		return RowsResponse{Rows: MultRowsFrom(rows)}, nil
	case "table3":
		rows, err := s.runTable3(ctx, sess, req, (*glitchsim.Engine).Table3, (*glitchsim.Session).Table3)
		if err != nil {
			return nil, err
		}
		return Table3Response{Rows: Table3RowsFrom(rows)}, nil
	case "figure10":
		var res glitchsim.Fig10Result
		var err error
		if sess != nil {
			res, err = sess.Figure10(req)
		} else {
			res, err = s.engine.Figure10(ctx, req)
		}
		if err != nil {
			return nil, err
		}
		return Fig10From(res), nil
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}

func (s *Server) runMult(ctx context.Context, sess *glitchsim.Session, req glitchsim.ExperimentRequest,
	engineFn func(*glitchsim.Engine, context.Context, glitchsim.ExperimentRequest) ([]glitchsim.MultRow, error),
	sessFn func(*glitchsim.Session, glitchsim.ExperimentRequest) ([]glitchsim.MultRow, error)) ([]glitchsim.MultRow, error) {
	if sess != nil {
		return sessFn(sess, req)
	}
	return engineFn(s.engine, ctx, req)
}

func (s *Server) runTable3(ctx context.Context, sess *glitchsim.Session, req glitchsim.ExperimentRequest,
	engineFn func(*glitchsim.Engine, context.Context, glitchsim.ExperimentRequest) ([]glitchsim.Table3Row, error),
	sessFn func(*glitchsim.Session, glitchsim.ExperimentRequest) ([]glitchsim.Table3Row, error)) ([]glitchsim.Table3Row, error) {
	if sess != nil {
		return sessFn(sess, req)
	}
	return engineFn(s.engine, ctx, req)
}

// streamResponse runs fn in a Session bound to the request context and
// streams its progress events as NDJSON lines, terminated by a "done"
// event carrying the final payload (or an "error" event).
func (s *Server) streamResponse(w http.ResponseWriter, r *http.Request, fn func(*glitchsim.Session) (any, error)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	// Streams pace themselves by the work, not the network: clear the
	// per-request write deadline so the server-wide WriteTimeout (sized
	// for buffered replies) cannot cut a long NDJSON tail mid-line.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	sess := s.engine.NewSession(r.Context())
	type outcome struct {
		payload any
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		payload, err := fn(sess)
		done <- outcome{payload, err}
		sess.Close()
	}()
	for ev := range sess.Events() {
		if err := enc.Encode(EventFrom(ev)); err != nil {
			return // client gone; session context is cancelled with it
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	out := <-done
	if out.err != nil {
		if errors.Is(out.err, context.Canceled) && r.Context().Err() != nil {
			return
		}
		_ = enc.Encode(EventDTO{Kind: "error", Error: out.err.Error()})
		return
	}
	final := struct {
		Kind   string `json:"kind"`
		Result any    `json:"result"`
	}{Kind: "done", Result: out.payload}
	_ = enc.Encode(final)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) decodeParams(w http.ResponseWriter, r *http.Request, v any) bool {
	switch r.Method {
	case http.MethodGet:
		if err := paramsFromQuery(r.URL.Query(), v); err != nil {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
			return false
		}
		return true
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			s.writeBodyError(w, fmt.Errorf("invalid JSON body: %w", err))
			return false
		}
		return true
	default:
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return false
	}
}

// statusForBodyError distinguishes "the body is too large" (413, the
// client must shrink it) from "the body is malformed" (400).
func statusForBodyError(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = WriteJSON(w, v)
}

// paramsFromQuery fills the params struct from URL query values using
// the same names as the JSON body.
func paramsFromQuery(q url.Values, v any) error {
	switch p := v.(type) {
	case *MeasureParams:
		p.Circuit = q.Get("circuit")
		var err error
		if p.Cycles, err = optInt(q, "cycles"); err != nil {
			return err
		}
		if p.Warmup, err = optInt(q, "warmup"); err != nil {
			return err
		}
		if p.Seed, err = parseUint(q, "seed"); err != nil {
			return err
		}
		if raw := q.Get("seeds"); raw != "" {
			for _, part := range strings.Split(raw, ",") {
				n, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return fmt.Errorf("invalid seeds entry %q", part)
				}
				p.Seeds = append(p.Seeds, n)
			}
		}
		if n, err := optInt(q, "dsum"); err != nil {
			return err
		} else if n != nil {
			p.DSum = *n
		}
		if n, err := optInt(q, "dcarry"); err != nil {
			return err
		} else if n != nil {
			p.DCarry = *n
		}
		if n, err := optInt(q, "lanes"); err != nil {
			return err
		} else if n != nil {
			p.Lanes = *n
		}
		if p.BudgetEvents, err = parseUint(q, "budget_events"); err != nil {
			return err
		}
		if p.BudgetMemoryBytes, err = parseUint(q, "budget_memory_bytes"); err != nil {
			return err
		}
		if n, err := optInt(q, "budget_wall_ms"); err != nil {
			return err
		} else if n != nil {
			p.BudgetWallMS = *n
		}
		if n, err := optInt(q, "checkpoint_every"); err != nil {
			return err
		} else if n != nil {
			p.CheckpointEvery = *n
		}
		p.Typical = boolParam(q, "typical")
		p.Inertial = boolParam(q, "inertial")
		p.Power = boolParam(q, "power")
		p.Stream = boolParam(q, "stream")
		return nil
	case *ExperimentParams:
		var err error
		p.Circuit = q.Get("circuit")
		if n, err := optInt(q, "cycles"); err != nil {
			return err
		} else if n != nil {
			p.Cycles = *n
		}
		if p.Seed, err = parseUint(q, "seed"); err != nil {
			return err
		}
		if raw := q.Get("targets"); raw != "" {
			for _, part := range strings.Split(raw, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return fmt.Errorf("invalid targets entry %q", part)
				}
				p.Targets = append(p.Targets, n)
			}
		}
		p.Stream = boolParam(q, "stream")
		return nil
	}
	return fmt.Errorf("unsupported params type %T", v)
}

func optInt(q url.Values, key string) (*int, error) {
	raw := q.Get(key)
	if raw == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return nil, fmt.Errorf("invalid %s %q", key, raw)
	}
	return &n, nil
}

func parseUint(q url.Values, key string) (uint64, error) {
	raw := q.Get(key)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", key, raw)
	}
	return n, nil
}

func boolParam(q url.Values, key string) bool {
	switch strings.ToLower(q.Get(key)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
