package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"runtime/debug"
	"time"
)

// Request middleware, applied to every endpoint by ServeHTTP:
//
//   - Request identity: every response carries X-Request-Id (the
//     client's own header echoed back, or a generated one), the same ID
//     lands in error envelopes and in job records, and the access log
//     keys on it — one identifier to grep a request across client,
//     server log, and job store.
//   - Panic containment: a panicking handler answers 500 with a JSON
//     error envelope (when nothing was written yet) and logs the stack;
//     the daemon keeps serving. http.ErrAbortHandler re-panics, keeping
//     net/http's deliberate connection-abort idiom intact.
//   - Access log: one line per request through the server's logf.

// requestIDKey is the context key under which the request's ID travels
// to handlers (and from there into job records).
type requestIDKey struct{}

// requestIDFrom returns the request ID the middleware attached, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// requestIDHeader reads the ID already stamped on the in-flight
// response, for inclusion in error envelopes.
func requestIDHeader(w http.ResponseWriter) string {
	return w.Header().Get("X-Request-Id")
}

// newRequestID returns 16 hex characters of crypto/rand entropy.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID bounds what we echo back from the client: short,
// printable, header-safe.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// statusWriter records the response status and byte count for the
// access log and lets the recovery layer know whether anything was
// written. Flush passes through so NDJSON streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMiddleware wraps a handler in the request-ID, panic-recovery and
// access-log layers.
func (s *Server) withMiddleware(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		sw := &statusWriter{ResponseWriter: w}
		began := time.Now()
		defer func() {
			if v := recover(); v != nil {
				if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
					panic(v)
				}
				s.logf("service: panic serving %s %s rid=%s: %v\n%s",
					r.Method, r.URL.Path, id, v, debug.Stack())
				if sw.status == 0 {
					s.writeError(sw, http.StatusInternalServerError, CodeInternal,
						errors.New("internal error (see server log)"))
				}
			}
			s.logf("service: %s %s rid=%s status=%d bytes=%d dur=%s",
				r.Method, r.URL.Path, id, sw.status, sw.bytes, time.Since(began).Round(time.Microsecond))
		}()
		next(sw, r)
	}
}
