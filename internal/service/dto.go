package service

import (
	"encoding/json"
	"io"
	"time"

	"glitchsim"
	"glitchsim/internal/jobs"
	"glitchsim/internal/power"
	"glitchsim/netlist"
)

// The service's wire types: stable snake_case JSON shapes for the domain
// results. The cmd/glitchsim -format json mode reuses these encodings,
// so scripted pipelines see one schema whether they shell out to the CLI
// or call the HTTP service.

// ActivityDTO is the wire form of glitchsim.Activity.
type ActivityDTO struct {
	Circuit      string  `json:"circuit"`
	Cycles       int     `json:"cycles"`
	Transitions  uint64  `json:"transitions"`
	Useful       uint64  `json:"useful"`
	Useless      uint64  `json:"useless"`
	Glitches     uint64  `json:"glitches"`
	Rising       uint64  `json:"rising"`
	LOverF       float64 `json:"l_over_f"`
	BalanceLimit float64 `json:"balance_limit"`
}

// ActivityFrom converts a domain activity to its wire form.
func ActivityFrom(a glitchsim.Activity) ActivityDTO {
	return ActivityDTO{
		Circuit:      a.Circuit,
		Cycles:       a.Cycles,
		Transitions:  a.Transitions,
		Useful:       a.Useful,
		Useless:      a.Useless,
		Glitches:     a.Glitches,
		Rising:       a.Rising,
		LOverF:       a.LOverF(),
		BalanceLimit: a.BalanceLimitFactor(),
	}
}

// PowerDTO is the wire form of power.Breakdown, in the milliwatt/
// picofarad units of the paper's Table 3.
type PowerDTO struct {
	FFs        int     `json:"ffs"`
	AreaMM2    float64 `json:"area_mm2"`
	ClockCapPF float64 `json:"clock_cap_pf"`
	LogicMW    float64 `json:"logic_mw"`
	FlipflopMW float64 `json:"flipflop_mw"`
	ClockMW    float64 `json:"clock_mw"`
	TotalMW    float64 `json:"total_mw"`
}

// PowerFrom converts a power breakdown to its wire form.
func PowerFrom(b power.Breakdown) PowerDTO {
	return PowerDTO{
		FFs:        b.NumFFs,
		AreaMM2:    b.AreaMM2,
		ClockCapPF: b.ClockCapF * 1e12,
		LogicMW:    b.LogicW * 1e3,
		FlipflopMW: b.FlipflopW * 1e3,
		ClockMW:    b.ClockW * 1e3,
		TotalMW:    b.TotalW() * 1e3,
	}
}

// MultRowDTO is the wire form of one Table 1/2 row.
type MultRowDTO struct {
	Arch     string      `json:"arch"`
	Width    int         `json:"width"`
	DSum     int         `json:"dsum"`
	DCarry   int         `json:"dcarry"`
	Activity ActivityDTO `json:"activity"`
}

// MultRowsFrom converts Table 1/2 rows to their wire form.
func MultRowsFrom(rows []glitchsim.MultRow) []MultRowDTO {
	out := make([]MultRowDTO, len(rows))
	for i, r := range rows {
		out[i] = MultRowDTO{Arch: r.Arch, Width: r.Width, DSum: r.DSum, DCarry: r.DCarry, Activity: ActivityFrom(r.Activity)}
	}
	return out
}

// Table3RowDTO is the wire form of one Table 3 / Figure 10 row.
type Table3RowDTO struct {
	Circuit      int     `json:"circuit"`
	TargetPeriod int     `json:"target_period"`
	Period       int     `json:"period"`
	Latency      int     `json:"latency"`
	FFs          int     `json:"ffs"`
	AreaMM2      float64 `json:"area_mm2"`
	ClockCapPF   float64 `json:"clock_cap_pf"`
	LogicMW      float64 `json:"logic_mw"`
	FlipflopMW   float64 `json:"flipflop_mw"`
	ClockMW      float64 `json:"clock_mw"`
	TotalMW      float64 `json:"total_mw"`
	LOverF       float64 `json:"l_over_f"`
}

// Table3RowsFrom converts Table 3 / Figure 10 rows to their wire form.
func Table3RowsFrom(rows []glitchsim.Table3Row) []Table3RowDTO {
	out := make([]Table3RowDTO, len(rows))
	for i, r := range rows {
		out[i] = Table3RowDTO{
			Circuit:      r.Circuit,
			TargetPeriod: r.TargetPeriod,
			Period:       r.Period,
			Latency:      r.Latency,
			FFs:          r.FFs,
			AreaMM2:      r.AreaMM2,
			ClockCapPF:   r.ClockCapPF,
			LogicMW:      r.LogicMW,
			FlipflopMW:   r.FlipflopMW,
			ClockMW:      r.ClockMW,
			TotalMW:      r.TotalMW,
			LOverF:       r.LOverF,
		}
	}
	return out
}

// EventDTO is the wire form of one streamed progress event (one NDJSON
// line). Kind "done" terminates a stream and carries the final payload.
type EventDTO struct {
	Kind     string        `json:"kind"`
	Index    int           `json:"index"`
	Total    int           `json:"total"`
	Activity *ActivityDTO  `json:"activity,omitempty"`
	Mult     *MultRowDTO   `json:"mult,omitempty"`
	Row      *Table3RowDTO `json:"row,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// EventFrom converts a session progress event to its wire form.
func EventFrom(ev glitchsim.Event) EventDTO {
	dto := EventDTO{Kind: string(ev.Kind), Index: ev.Index, Total: ev.Total}
	if ev.Activity != nil {
		a := ActivityFrom(*ev.Activity)
		dto.Activity = &a
	}
	if ev.Mult != nil {
		m := MultRowsFrom([]glitchsim.MultRow{*ev.Mult})[0]
		dto.Mult = &m
	}
	if ev.Row != nil {
		r := Table3RowsFrom([]glitchsim.Table3Row{*ev.Row})[0]
		dto.Row = &r
	}
	if ev.Err != nil {
		dto.Error = ev.Err.Error()
	}
	return dto
}

// MeasureResponse is the /v1/measure reply.
type MeasureResponse struct {
	Activity ActivityDTO `json:"activity"`
	Power    *PowerDTO   `json:"power,omitempty"`
	// Seeds is the number of merged stimulus streams (0 for a plain
	// single-seed measurement).
	Seeds int `json:"seeds,omitempty"`
	// Kernel names the simulation kernel the measurement ran on
	// ("scalar", "wide-lockstep" or "wide-event"), so callers can
	// confirm the word-parallel fast path engaged.
	Kernel string `json:"kernel,omitempty"`
}

// RowsResponse is the reply of the Table 1/2 experiment endpoints.
type RowsResponse struct {
	Rows []MultRowDTO `json:"rows"`
}

// Table3Response is the reply of the Table 3 endpoint.
type Table3Response struct {
	Rows []Table3RowDTO `json:"rows"`
}

// Fig10Response is the reply of the Figure 10 endpoint: the subject
// measured before retiming plus the retimed sweep. (The endpoint
// previously answered the Table3Response shape; `rows` is unchanged,
// `subject` and `before` are new.)
type Fig10Response struct {
	Subject string         `json:"subject"`
	Before  Table3RowDTO   `json:"before"`
	Rows    []Table3RowDTO `json:"rows"`
}

// Fig10From converts a Figure 10 result to its wire form.
func Fig10From(res glitchsim.Fig10Result) Fig10Response {
	return Fig10Response{
		Subject: res.Subject,
		Before:  Table3RowsFrom([]glitchsim.Table3Row{res.Before})[0],
		Rows:    Table3RowsFrom(res.Points),
	}
}

// CircuitInfo is the fingerprint-addressed handle of one circuit: the
// reply of POST /v1/circuits and the upload entries of GET /v1/circuits.
type CircuitInfo struct {
	// Fingerprint is the structural identity (netlist.Fingerprint), the
	// handle measurement requests reference the circuit by.
	Fingerprint string `json:"fingerprint"`
	// Name is the circuit's module name.
	Name string `json:"name"`
	// Structure statistics.
	Cells   int `json:"cells"`
	Nets    int `json:"nets"`
	Inputs  int `json:"inputs"`
	Outputs int `json:"outputs"`
	FFs     int `json:"ffs"`
	// Depth is the unit-delay combinational depth (longest PI/DFF-to-
	// net path in cells).
	Depth int `json:"depth"`
}

// CircuitInfoFrom computes the handle of a netlist.
func CircuitInfoFrom(n *netlist.Netlist) CircuitInfo {
	return CircuitInfo{
		Fingerprint: n.Fingerprint(),
		Name:        n.Name,
		Cells:       n.NumCells(),
		Nets:        n.NumNets(),
		Inputs:      n.InputWidth(),
		Outputs:     n.OutputWidth(),
		FFs:         n.NumDFFs(),
		Depth:       n.LogicDepth(),
	}
}

// UploadResponse is the POST /v1/circuits reply: the stored circuit's
// handle plus any lint findings of warning severity (floating inputs,
// undriven nets, dead cells, combinational loops). Warnings do not
// reject the upload — the circuit is stored and measurable — but they
// usually mean the source does not describe what its author intended.
type UploadResponse struct {
	CircuitInfo
	// Warnings holds the warning-severity netlist.Lint findings, if any.
	Warnings []netlist.Finding `json:"warnings,omitempty"`
}

// CircuitsResponse is the GET /v1/circuits reply.
type CircuitsResponse struct {
	// Builtin lists the registry circuit names.
	Builtin []string `json:"builtin"`
	// Uploads lists the uploaded circuits, most recently used first.
	Uploads []CircuitInfo `json:"uploads"`
}

// UploadRequest is the POST /v1/circuits JSON envelope. (Raw bodies
// with a ?format= query parameter are the alternative shape.)
type UploadRequest struct {
	// Format is "verilog" or "json".
	Format string `json:"format"`
	// Source is the circuit description in that format.
	Source string `json:"source"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	// Code is the stable machine-readable failure class (the Code*
	// constants: "budget_exceeded", "oscillation", "queue_full",
	// "unknown_circuit", ...). Clients branch on Code; Error is for
	// humans and its wording is not part of the API.
	Code  string `json:"code"`
	Error string `json:"error"`
	// Detail carries the failure class's structured payload, when it has
	// one: budget trips report resource/limit/used/cycles_completed,
	// oscillation reports cycle/guard/nets, cost rejections report the
	// estimate that tripped.
	Detail map[string]any `json:"detail,omitempty"`
	// RequestID echoes the X-Request-Id of the failed request when the
	// error was produced by the panic-recovery middleware, so a client
	// report can be matched to the server's log line.
	RequestID string `json:"request_id,omitempty"`
}

// JobSubmitParams is the POST /v1/jobs request body. Exactly the
// parameter struct of the matching synchronous endpoint rides along
// under `measure` or `experiment`, so a caller converts a synchronous
// request to an async job by wrapping, not rewriting, it.
type JobSubmitParams struct {
	// Kind selects the work: "measure" (requires Measure) or one of
	// the experiment names "table1", "table2", "table3", "figure10"
	// (Experiment optional).
	Kind string `json:"kind"`
	// Measure is the /v1/measure parameter set for kind "measure".
	// Its Stream flag is ignored: job progress streams from
	// GET /v1/jobs/{id}/events instead.
	Measure *MeasureParams `json:"measure,omitempty"`
	// Experiment is the experiment parameter set for the table/figure
	// kinds. Its Stream flag is likewise ignored.
	Experiment *ExperimentParams `json:"experiment,omitempty"`
	// TimeoutSeconds shortens the server's per-job deadline for this
	// job (0 keeps the server default).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// JobProgressDTO is the wire form of a job's completion counters.
type JobProgressDTO struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobDTO is the wire form of one job record: the POST /v1/jobs reply
// and the GET /v1/jobs/{id} status body. The success payload is not
// inlined — GET /v1/jobs/{id}/result serves it once ResultReady.
type JobDTO struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Kind  string `json:"kind"`
	// RequestID is the X-Request-Id of the submitting request.
	RequestID string `json:"request_id,omitempty"`
	// Fingerprint identifies the subject circuit when the job has one.
	Fingerprint string         `json:"fingerprint,omitempty"`
	Attempts    int            `json:"attempts"`
	Progress    JobProgressDTO `json:"progress"`
	// CheckpointCycle is the measured cycle of the job's latest
	// persisted checkpoint (0 when none); ResumedFromCycle the cycle the
	// current/last attempt resumed from — non-zero proves a drain,
	// crash or retry continued persisted work instead of restarting.
	CheckpointCycle  int `json:"checkpoint_cycle,omitempty"`
	ResumedFromCycle int `json:"resumed_from_cycle,omitempty"`
	// Error/Stack describe a terminal failure (Stack only for a
	// recovered worker panic).
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// TimeoutSeconds is the job's deadline budget across all attempts.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// ResultReady reports that GET /v1/jobs/{id}/result will answer 200.
	ResultReady bool      `json:"result_ready"`
	CreatedAt   time.Time `json:"created_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
}

// JobFrom converts a job record to its wire form.
func JobFrom(rec jobs.Record) JobDTO {
	return JobDTO{
		ID:               rec.ID,
		State:            string(rec.State),
		Kind:             rec.Kind,
		RequestID:        rec.RequestID,
		Fingerprint:      rec.Fingerprint,
		Attempts:         rec.Attempts,
		Progress:         JobProgressDTO{Done: rec.Progress.Done, Total: rec.Progress.Total},
		CheckpointCycle:  rec.CheckpointCycle,
		ResumedFromCycle: rec.ResumedFromCycle,
		Error:            rec.Error,
		Stack:            rec.Stack,
		TimeoutSeconds:   rec.Timeout.Seconds(),
		ResultReady:      rec.State == jobs.StateSucceeded,
		CreatedAt:        rec.CreatedAt,
		StartedAt:        rec.StartedAt,
		FinishedAt:       rec.FinishedAt,
	}
}

// JobsResponse is the GET /v1/jobs reply (newest first).
type JobsResponse struct {
	Jobs []JobDTO `json:"jobs"`
}

// WriteJSON encodes v to w with the service's canonical settings
// (two-space indentation, no HTML escaping) — the encoder the CLI's
// -format json mode shares.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
