package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"glitchsim"
	"glitchsim/internal/jobs"
	"glitchsim/netlist"
)

// The async job layer: long measurements and experiments submitted to
// POST /v1/jobs run on the jobs.Manager's bounded worker pool instead
// of holding the HTTP connection open for their whole runtime.
//
//	POST   /v1/jobs              submit (202; 429 + Retry-After when full)
//	GET    /v1/jobs              list known jobs, newest first
//	GET    /v1/jobs/{id}         status + progress
//	GET    /v1/jobs/{id}/result  the success payload (the same body the
//	                             synchronous endpoint would have sent)
//	GET    /v1/jobs/{id}/events  NDJSON event tail: recorded history,
//	                             then live follow until terminal
//	DELETE /v1/jobs/{id}         cancel (queued or running)
//
// Failures during execution are classified by the manager (failed /
// timed_out / canceled); a busy engine (glitchsim.ErrEngineBusy) is
// marked transient and retried with capped exponential backoff.

// DefaultJobOptions returns the manager configuration a Server uses
// when WithJobOptions is not given: a small worker pool over the shared
// Engine, a bounded queue, 10-minute job deadlines, 3-attempt retry
// budget, in-memory store.
func DefaultJobOptions() jobs.Options { return jobs.Options{} } // jobs applies its own defaults

// WithJobOptions configures the Server's job manager (queue depth,
// workers, deadlines, retry policy, persistent store, fault injector).
func WithJobOptions(opts jobs.Options) Option {
	return func(s *Server) { s.jobOpts = &opts }
}

// initJobs builds the job manager once the options are applied. A
// manager that cannot start (an unreadable store, typically) disables
// the job endpoints (503) instead of failing the whole service.
func (s *Server) initJobs() {
	opts := jobs.Options{}
	if s.jobOpts != nil {
		opts = *s.jobOpts
	}
	if opts.Logf == nil {
		opts.Logf = s.logf
	}
	if opts.BaseContext == nil {
		opts.BaseContext = s.baseCtx // nil without WithBaseContext: manager refuses, jobs 503
	}
	mgr, err := jobs.NewManager(jobs.ExecutorFunc(s.executeJob), opts)
	if err != nil {
		s.jobsErr = err
		s.logf("service: job subsystem disabled: %v", err)
		return
	}
	s.jobs = mgr
}

// Jobs returns the server's job manager (nil when disabled).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Drain gracefully shuts down the job subsystem: intake stops, running
// jobs get until ctx's deadline, stragglers are checkpointed back to
// queued in the store. The daemon calls this between http.Server
// shutdown and exit.
func (s *Server) Drain(ctx context.Context) error {
	if s.jobs == nil {
		return nil
	}
	return s.jobs.Drain(ctx)
}

// executeJob is the jobs.Executor: it re-parses the submitted payload
// and runs it through the shared Engine under the job's context, with
// session progress events tapped into the job record. Measure jobs
// with checkpoint_every set run chunked: every chunk boundary persists
// a resumable snapshot through h.Checkpoint, and the drain signal
// (h.Draining) stops the run at the next boundary so a restarted
// manager resumes from the recorded cycle instead of from zero.
func (s *Server) executeJob(ctx context.Context, rec jobs.Record, h jobs.Hooks) (json.RawMessage, error) {
	var p JobSubmitParams
	if err := json.Unmarshal(rec.Request, &p); err != nil {
		return nil, fmt.Errorf("decoding stored job request: %w", err)
	}
	sess := s.engine.NewSessionFunc(ctx, func(ev glitchsim.Event) { h.Emit(jobEventFrom(ev)) })
	defer sess.Close()

	var payload any
	switch rec.Kind {
	case "measure":
		if p.Measure == nil || p.Measure.Circuit == "" {
			return nil, errors.New("stored measure job names no circuit")
		}
		nl, err := s.resolveJobCircuit(p.Measure.Circuit)
		if err != nil {
			return nil, classifyJobError(err)
		}
		cfg := p.Measure.config()
		resumable := cfg.CheckpointEvery > 0 && len(p.Measure.Seeds) == 0
		if resumable {
			cfg.CheckpointSink = func(cp *glitchsim.MeasureCheckpoint) error {
				data, err := json.Marshal(cp)
				if err != nil {
					return fmt.Errorf("encoding checkpoint: %w", err)
				}
				h.Checkpoint(data, cp.Cycle)
				select {
				case <-h.Draining:
					return glitchsim.ErrStopAtCheckpoint
				default:
					return nil
				}
			}
			if len(rec.Checkpoint) > 0 {
				cp := new(glitchsim.MeasureCheckpoint)
				if err := json.Unmarshal(rec.Checkpoint, cp); err != nil {
					// A snapshot that no longer decodes is dropped, not
					// fatal: the attempt restarts from zero.
					h.Emit(jobs.Event{Kind: "resume-discarded", Error: err.Error()})
				} else {
					cfg.Resume = cp
				}
			}
		} else {
			// Seeds sweeps run each seed as its own stream; per-seed
			// snapshots are not resumable, so checkpointing is off.
			cfg.CheckpointEvery = 0
		}
		payload, err = s.measure(ctx, sess, nl, cfg, p.Measure)
		if err != nil && cfg.Resume != nil && errors.Is(err, glitchsim.ErrCheckpointMismatch) {
			// The persisted snapshot disagrees with the request (a code
			// or registry change between runs): discard it and rerun the
			// attempt from zero rather than failing the job.
			h.Emit(jobs.Event{Kind: "resume-discarded", Error: err.Error()})
			cfg.Resume = nil
			payload, err = s.measure(ctx, sess, nl, cfg, p.Measure)
		}
		if err != nil {
			if errors.Is(err, glitchsim.ErrCheckpointed) {
				return nil, jobs.ErrCheckpointed
			}
			return nil, classifyJobError(err)
		}
	default:
		req := glitchsim.ExperimentRequest{}
		if e := p.Experiment; e != nil {
			req.Cycles, req.Seed, req.Targets = e.Cycles, e.Seed, e.Targets
			if e.Circuit != "" {
				nl, err := s.resolveJobCircuit(e.Circuit)
				if err != nil {
					return nil, classifyJobError(err)
				}
				req.Circuit = glitchsim.CircuitFromNetlist(nl)
			}
		}
		var err error
		payload, err = s.experiment(ctx, sess, rec.Kind, req)
		if err != nil {
			return nil, classifyJobError(err)
		}
	}
	return json.Marshal(payload)
}

// classifyJobError marks retryable failures: a measurement that gave up
// waiting for an engine slot (the engine was loaded, not broken) is
// transient; everything else fails the job as-is.
func classifyJobError(err error) error {
	if errors.Is(err, glitchsim.ErrEngineBusy) {
		return jobs.Transient(err)
	}
	return err
}

// resolveJobCircuit resolves a job's circuit reference with a wider
// chain than the synchronous endpoints: upload fingerprints, then the
// Engine's source chain (custom CircuitSources, then the registry),
// then uploaded module names. Running through the Engine chain lets a
// test inject a faulty CircuitSource whose errors surface inside job
// execution — the fault-injection seam of the acceptance tests.
func (s *Server) resolveJobCircuit(name string) (*netlist.Netlist, error) {
	if n, ok := s.uploads.byFingerprint(name); ok {
		return n, nil
	}
	n, err := s.engine.Resolve(glitchsim.CircuitNamed(name))
	if err == nil {
		return n, nil
	}
	if !errors.Is(err, glitchsim.ErrUnknownCircuit) {
		return nil, err // a source knew the name but failed: propagate the fault
	}
	if n, ok := s.uploads.byName(name); ok {
		return n, nil
	}
	return nil, &unknownCircuitError{name: name, available: s.availableCircuits()}
}

// jobEventFrom converts a session progress event into the job layer's
// recordable form.
func jobEventFrom(ev glitchsim.Event) jobs.Event {
	out := jobs.Event{Kind: string(ev.Kind), Index: ev.Index, Total: ev.Total}
	if ev.Err != nil {
		out.Error = ev.Err.Error()
	}
	return out
}

// jobKinds is the accepted JobSubmitParams.Kind set.
var jobKinds = map[string]bool{
	"measure": true, "table1": true, "table2": true, "table3": true, "figure10": true,
}

// requireJobs answers 503 when the job subsystem is disabled.
func (s *Server) requireJobs(w http.ResponseWriter) bool {
	if s.jobs != nil {
		return true
	}
	err := errors.New("job subsystem unavailable")
	if s.jobsErr != nil {
		err = fmt.Errorf("job subsystem unavailable: %w", s.jobsErr)
	}
	s.writeError(w, http.StatusServiceUnavailable, CodeJobsDisabled, err)
	return false
}

// handleJobs serves the collection endpoint: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		recs := s.jobs.List()
		out := JobsResponse{Jobs: make([]JobDTO, len(recs))}
		for i, rec := range recs {
			out.Jobs[i] = JobFrom(rec)
		}
		s.writeOK(w, out)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var p JobSubmitParams
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		s.writeBodyError(w, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if !jobKinds[p.Kind] {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Errorf("unknown job kind %q (one of: measure, table1, table2, table3, figure10)", p.Kind))
		return
	}

	// Validate what can be validated cheaply at admission, so obviously
	// broken submissions fail now (400/404) instead of as failed jobs.
	// Resolution errors that are not "unknown name" are deferred to
	// execution — they may be transient, and the retry policy owns them.
	fingerprint := ""
	resolveAhead := func(name string) bool {
		nl, err := s.resolveJobCircuit(name)
		switch {
		case err == nil:
			fingerprint = nl.Fingerprint()
		case isUnknownCircuit(err):
			s.writeResolveError(w, err)
			return false
		}
		return true
	}
	switch p.Kind {
	case "measure":
		if p.Measure == nil || p.Measure.Circuit == "" {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf(`kind "measure" needs measure.circuit`))
			return
		}
		p.Measure.Stream = false
		if !resolveAhead(p.Measure.Circuit) {
			return
		}
	case "table1", "table2":
		if p.Experiment != nil && p.Experiment.Circuit != "" {
			s.writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("experiment %s measures a fixed circuit set and takes no circuit", p.Kind))
			return
		}
	default: // table3, figure10
		if p.Experiment != nil {
			p.Experiment.Stream = false
			if p.Experiment.Circuit != "" && !resolveAhead(p.Experiment.Circuit) {
				return
			}
		}
	}

	payload, err := json.Marshal(&p)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	rec, err := s.jobs.Submit(jobs.Submission{
		Kind:        p.Kind,
		Request:     payload,
		RequestID:   requestIDFrom(r.Context()),
		Fingerprint: fingerprint,
		Timeout:     time.Duration(p.TimeoutSeconds * float64(time.Second)),
	})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", s.retryAfter())
		s.writeError(w, http.StatusTooManyRequests, CodeQueueFull, fmt.Errorf("job queue full: %w", err))
		return
	case errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", "5")
		s.writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+rec.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = WriteJSON(w, JobFrom(rec))
}

// retryAfter estimates (in whole seconds, conservatively) when a
// rejected submission is worth retrying: proportional to the queue
// backlog per worker, at least one second.
func (s *Server) retryAfter() string {
	st := s.jobs.Stats()
	per := st.Queued / max(st.Workers, 1)
	return strconv.Itoa(max(1, per))
}

func isUnknownCircuit(err error) bool {
	var unknown *unknownCircuitError
	return errors.As(err, &unknown) || errors.Is(err, glitchsim.ErrUnknownCircuit)
}

// handleJob dispatches the per-job endpoints: /v1/jobs/{id},
// /v1/jobs/{id}/result and /v1/jobs/{id}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if !s.requireJobs(w) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		s.writeError(w, http.StatusNotFound, CodeUnknownJob, fmt.Errorf("missing job id"))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		s.handleJobStatus(w, id)
	case sub == "" && r.Method == http.MethodDelete:
		s.handleJobCancel(w, id)
	case sub == "":
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET or DELETE"))
	case sub == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, id)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, id)
	case sub == "result" || sub == "events":
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET"))
	default:
		s.writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("unknown job endpoint %q", sub))
	}
}

// writeJobError maps manager lookup failures onto status codes.
func (s *Server) writeJobError(w http.ResponseWriter, err error) {
	if errors.Is(err, jobs.ErrUnknownJob) {
		s.writeError(w, http.StatusNotFound, CodeUnknownJob, err)
		return
	}
	s.writeError(w, http.StatusInternalServerError, CodeInternal, err)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, id string) {
	rec, err := s.jobs.Get(id)
	if err != nil {
		s.writeJobError(w, err)
		return
	}
	s.writeOK(w, JobFrom(rec))
}

// handleJobResult serves the success payload verbatim — the same JSON
// body the synchronous endpoint would have answered — or maps the
// job's non-success state onto a status code: still pending → 409 with
// Retry-After, failed → 500, timed out → 504, canceled → 409.
func (s *Server) handleJobResult(w http.ResponseWriter, id string) {
	rec, err := s.jobs.Get(id)
	if err != nil {
		s.writeJobError(w, err)
		return
	}
	switch rec.State {
	case jobs.StateSucceeded:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(rec.Result, '\n'))
	case jobs.StateFailed:
		s.writeError(w, http.StatusInternalServerError, CodeJobFailed, fmt.Errorf("job failed: %s", rec.Error))
	case jobs.StateTimedOut:
		s.writeError(w, http.StatusGatewayTimeout, CodeJobTimedOut, fmt.Errorf("job timed out: %s", rec.Error))
	case jobs.StateCanceled:
		s.writeError(w, http.StatusConflict, CodeJobCanceled, fmt.Errorf("job was canceled"))
	default:
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusConflict, CodeJobNotFinished, fmt.Errorf("job not finished (state %q)", rec.State))
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, id string) {
	rec, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrFinished):
		s.writeError(w, http.StatusConflict, CodeJobFinished, fmt.Errorf("job already finished (state %q)", rec.State))
	case err != nil:
		s.writeJobError(w, err)
	default:
		s.writeOK(w, JobFrom(rec))
	}
}

// handleJobEvents streams the job's event tail as NDJSON: the recorded
// history first, then (for a job still in flight) live events until the
// job reaches a terminal state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	past, live, stop, err := s.jobs.Subscribe(id)
	if err != nil {
		s.writeJobError(w, err)
		return
	}
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	// A live follow legitimately outlives the server-wide WriteTimeout
	// (it tails the job until terminal); clear the write deadline for
	// this response only so the kernel doesn't kill the stream mid-tail.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeEv := func(ev jobs.Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range past {
		if !writeEv(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !writeEv(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
