package service

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"glitchsim/internal/registry"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

// The circuit-upload layer: POST /v1/circuits parses a Verilog or JSON
// circuit description and stores the netlist in a bounded LRU keyed by
// its structural fingerprint. Measurement requests then reference the
// upload as `circuit: <fingerprint>` (or by its module name); because
// the fingerprint is also the Engine's compiled-netlist cache key,
// repeated measurements of an upload compile once, exactly like the
// built-ins.

// DefaultUploadCapacity is the number of uploaded circuits a Server
// retains when WithUploadCapacity is not given. It bounds upload memory
// alongside the Engine's compiled-netlist cache: evicting an upload
// also makes its (fingerprint-keyed) compiled form unreachable, so the
// two caches age out together.
const DefaultUploadCapacity = 64

// Option configures a Server at construction.
type Option func(*Server)

// WithUploadCapacity bounds the circuit-upload store to n entries (LRU
// eviction; n <= 0 disables uploads entirely: POST /v1/circuits returns
// 503).
func WithUploadCapacity(n int) Option {
	return func(s *Server) {
		if n < 0 {
			n = 0
		}
		s.uploads.cap = n
	}
}

// upload is one stored circuit.
type upload struct {
	n    *netlist.Netlist
	info CircuitInfo
}

// uploadStore is the bounded fingerprint-keyed LRU of uploaded
// circuits, optionally backed by a durable on-disk store (disk non-nil,
// see WithUploadDir): puts write through to disk, misses fall back to
// it, and LRU eviction only drops the in-memory copy. Safe for
// concurrent use; disk calls happen outside the store's own lock.
type uploadStore struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List // of *upload; front = most recently used
	byFP map[string]*list.Element
	disk *circuitDisk
}

func newUploadStore(capacity int) *uploadStore {
	return &uploadStore{cap: capacity, lru: list.New(), byFP: map[string]*list.Element{}}
}

// put stores (or refreshes) a circuit, writes it through to the durable
// store, and returns its handle. The least recently used upload is
// evicted past the capacity bound (from memory only — never from disk).
func (u *uploadStore) put(n *netlist.Netlist) CircuitInfo {
	info := u.putMem(n)
	if u.disk != nil {
		u.disk.save(n, info)
	}
	return info
}

// putMem is the memory-only half of put: the durable store's lazy
// reloads use it to avoid rewriting what was just read from disk.
func (u *uploadStore) putMem(n *netlist.Netlist) CircuitInfo {
	info := CircuitInfoFrom(n)
	u.mu.Lock()
	defer u.mu.Unlock()
	if el, ok := u.byFP[info.Fingerprint]; ok {
		u.lru.MoveToFront(el)
		return el.Value.(*upload).info
	}
	u.byFP[info.Fingerprint] = u.lru.PushFront(&upload{n: n, info: info})
	if u.lru.Len() > u.cap {
		oldest := u.lru.Back()
		u.lru.Remove(oldest)
		delete(u.byFP, oldest.Value.(*upload).info.Fingerprint)
	}
	return info
}

// byFingerprint returns the upload with the given fingerprint,
// refreshing its recency. A memory miss falls back to the durable
// store, reloading the circuit into the LRU — this is how uploads from
// before a restart (or evicted under memory pressure) resolve.
func (u *uploadStore) byFingerprint(fp string) (*netlist.Netlist, bool) {
	u.mu.Lock()
	if el, ok := u.byFP[fp]; ok {
		u.lru.MoveToFront(el)
		n := el.Value.(*upload).n
		u.mu.Unlock()
		return n, true
	}
	u.mu.Unlock()
	if u.disk != nil {
		if n, ok := u.disk.load(fp); ok {
			u.putMem(n)
			return n, true
		}
	}
	return nil, false
}

// byName returns the most recently used upload whose module name
// matches, falling back to the durable store.
func (u *uploadStore) byName(name string) (*netlist.Netlist, bool) {
	u.mu.Lock()
	for el := u.lru.Front(); el != nil; el = el.Next() {
		if up := el.Value.(*upload); up.info.Name == name {
			u.lru.MoveToFront(el)
			n := up.n
			u.mu.Unlock()
			return n, true
		}
	}
	u.mu.Unlock()
	if u.disk != nil {
		if fp, ok := u.disk.fingerprintByName(name); ok {
			return u.byFingerprint(fp)
		}
	}
	return nil, false
}

// snapshot returns the upload handles: in-memory entries most recently
// used first, then durable-only entries (persisted but not currently
// resident).
func (u *uploadStore) snapshot() []CircuitInfo {
	u.mu.Lock()
	out := make([]CircuitInfo, 0, u.lru.Len())
	seen := make(map[string]bool, u.lru.Len())
	for el := u.lru.Front(); el != nil; el = el.Next() {
		info := el.Value.(*upload).info
		out = append(out, info)
		seen[info.Fingerprint] = true
	}
	u.mu.Unlock()
	if u.disk != nil {
		for _, info := range u.disk.snapshot() {
			if !seen[info.Fingerprint] {
				out = append(out, info)
			}
		}
	}
	return out
}

// unknownCircuitError reports a circuit reference no source (uploads or
// registry) could resolve. The service maps it to 404 with the list of
// resolvable identifiers in the message.
type unknownCircuitError struct {
	name      string
	available []string
}

func (e *unknownCircuitError) Error() string {
	return fmt.Sprintf("unknown circuit %q (available: %s)", e.name, strings.Join(e.available, ", "))
}

// resolveCircuit maps a request's circuit identifier to a netlist:
// upload fingerprints first (they are self-certifying 64-hex handles),
// then built-in registry names, then uploaded module names (most recent
// upload wins a name collision).
//
// The upload store is deliberately NOT registered as a
// glitchsim.CircuitSource on the Engine: the Engine is constructed by
// the caller (and may be shared with non-HTTP users), while uploads are
// request-surface state owned by this Server — mutating a caller's
// engine would leak them across surfaces.
func (s *Server) resolveCircuit(name string) (*netlist.Netlist, error) {
	if n, ok := s.uploads.byFingerprint(name); ok {
		return n, nil
	}
	if n, err := registry.Build(name); err == nil {
		return n, nil
	}
	if n, ok := s.uploads.byName(name); ok {
		return n, nil
	}
	return nil, &unknownCircuitError{name: name, available: s.availableCircuits()}
}

// availableCircuits lists every identifier resolveCircuit accepts:
// registry names plus the fingerprints (and distinct module names) of
// current uploads.
func (s *Server) availableCircuits() []string {
	names := registry.Names()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, info := range s.uploads.snapshot() {
		names = append(names, info.Fingerprint)
		if !seen[info.Name] {
			seen[info.Name] = true
			names = append(names, info.Name)
		}
	}
	return names
}

// handleCircuits serves GET /v1/circuits (catalogue listing) and POST
// /v1/circuits (upload).
func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.writeOK(w, CircuitsResponse{
			Builtin: registry.Names(),
			Uploads: s.uploads.snapshot(),
		})
	case http.MethodPost:
		s.handleUpload(w, r)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

// maxUploadBytes bounds a single circuit upload.
const maxUploadBytes = 4 << 20

// handleUpload parses an uploaded circuit description and stores it.
// Two request shapes are accepted: a JSON envelope {"format": "verilog"
// |"json", "source": "..."} or, with ?format=verilog|json, the raw
// source as the body (curl -T friendly). Malformed sources answer 400
// with the parser's message — line-numbered for Verilog.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.uploads.cap <= 0 {
		s.writeError(w, http.StatusServiceUnavailable, CodeUploadsDisabled, fmt.Errorf("circuit uploads are disabled"))
		return
	}
	format := r.URL.Query().Get("format")
	var src []byte
	if format != "" {
		body, err := readBody(w, r)
		if err != nil {
			s.writeBodyError(w, err)
			return
		}
		src = body
	} else {
		// Decode the JSON envelope under the same size bound as the raw
		// shape (the generic decodeParams limit is tighter).
		var req UploadRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeBodyError(w, fmt.Errorf("invalid JSON body: %w", err))
			return
		}
		format = req.Format
		src = []byte(req.Source)
	}
	var n *netlist.Netlist
	var err error
	switch format {
	case "verilog":
		n, err = verilog.Parse(bytes.NewReader(src))
	case "json":
		n, err = netlist.ReadJSON(bytes.NewReader(src))
	default:
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("format must be \"verilog\" or \"json\", got %q", format))
		return
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	// Lint before storing: warning-severity findings (floating inputs,
	// dead cones, undriven nets) ride along in the reply so the client
	// learns immediately that the netlist is probably not what its
	// source meant, without the upload being rejected.
	var warnings []netlist.Finding
	for _, f := range n.Lint() {
		if f.Severity == netlist.SeverityWarning {
			warnings = append(warnings, f)
		}
	}
	s.writeOK(w, UploadResponse{CircuitInfo: s.uploads.put(n), Warnings: warnings})
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		return nil, fmt.Errorf("reading upload body: %w", err)
	}
	return body, nil
}
