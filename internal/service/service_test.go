package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"glitchsim"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(glitchsim.NewEngine(), WithBaseContext(context.Background())))
	t.Cleanup(ts.Close)
	return ts
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	return v
}

// TestServiceMeasureSmoke: one POST /v1/measure against a shared engine
// returns the same numbers as the library API.
func TestServiceMeasureSmoke(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(`{"circuit":"rca8","cycles":100,"seed":7}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got := decodeBody[MeasureResponse](t, resp)

	want, err := glitchsim.DefaultEngine().Measure(context.Background(), glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(glitchsim.NewRCA(8)),
		Config:  glitchsim.Config{Cycles: 100, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Activity.Transitions != want.Transitions || got.Activity.Useful != want.Useful ||
		got.Activity.Useless != want.Useless || got.Activity.Circuit != "rca8" {
		t.Errorf("service activity %+v, library %+v", got.Activity, want)
	}
	if got.Kernel != string(glitchsim.KernelWideLockstep) {
		t.Errorf("kernel = %q, want %q", got.Kernel, glitchsim.KernelWideLockstep)
	}
}

// TestServiceMeasureKernelField: the reply names the kernel the
// measurement ran on, per delay model and lane count.
func TestServiceMeasureKernelField(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		body string
		want glitchsim.Kernel
	}{
		{`{"circuit":"array8","cycles":40}`, glitchsim.KernelWideLockstep},
		{`{"circuit":"array8","cycles":40,"dsum":2,"dcarry":1}`, glitchsim.KernelWideEvent},
		{`{"circuit":"array8","cycles":40,"typical":true}`, glitchsim.KernelWideEvent},
		{`{"circuit":"array8","cycles":40,"lanes":1}`, glitchsim.KernelScalar},
		{`{"circuit":"dirdet8r","cycles":30,"seeds":[1,2],"typical":true}`, glitchsim.KernelWideEvent},
	} {
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.body, resp.StatusCode)
		}
		got := decodeBody[MeasureResponse](t, resp)
		if got.Kernel != string(tc.want) {
			t.Errorf("%s: kernel = %q, want %q", tc.body, got.Kernel, tc.want)
		}
	}
}

// TestServiceMeasureConcurrent: many concurrent /v1/measure requests
// against one shared Engine must all succeed and agree per circuit.
// This test runs under -race in CI.
func TestServiceMeasureConcurrent(t *testing.T) {
	ts := newTestServer(t)
	circuits := []string{"rca8", "wallace8", "array8", "dirdet8"}
	const perCircuit = 4

	results := make(map[string][]MeasureResponse)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, len(circuits)*perCircuit)
	for _, c := range circuits {
		for i := 0; i < perCircuit; i++ {
			wg.Add(1)
			go func(circuit string) {
				defer wg.Done()
				body := fmt.Sprintf(`{"circuit":%q,"cycles":60,"seed":3}`, circuit)
				resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", circuit, resp.StatusCode)
					return
				}
				var mr MeasureResponse
				if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				results[circuit] = append(results[circuit], mr)
				mu.Unlock()
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for circuit, rs := range results {
		if len(rs) != perCircuit {
			t.Fatalf("%s: %d results", circuit, len(rs))
		}
		for _, r := range rs[1:] {
			if r.Activity != rs[0].Activity {
				t.Errorf("%s: concurrent requests disagree: %+v vs %+v", circuit, r.Activity, rs[0].Activity)
			}
		}
	}
}

// TestServiceSeedsAndPower: the multi-seed merge plus power breakdown
// path works end to end and reports the merged cycle count.
func TestServiceSeedsAndPower(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(`{"circuit":"dirdet8r","cycles":40,"seeds":[1,2,3],"power":true}`))
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[MeasureResponse](t, resp)
	if got.Seeds != 3 {
		t.Errorf("seeds = %d, want 3", got.Seeds)
	}
	if got.Activity.Cycles != 120 {
		t.Errorf("merged cycles = %d, want 120", got.Activity.Cycles)
	}
	if got.Power == nil || got.Power.FFs != 48 || got.Power.TotalMW <= 0 {
		t.Errorf("power breakdown missing or implausible: %+v", got.Power)
	}
}

// TestServiceMeasureStream: stream=1 yields one NDJSON seed event per
// seed plus a final done event.
func TestServiceMeasureStream(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/measure?circuit=rca8&cycles=30&seeds=1,2,3,4&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	seeds := 0
	for _, k := range kinds {
		if k == "seed" {
			seeds++
		}
	}
	if seeds != 4 {
		t.Errorf("saw %d seed events, want 4 (kinds: %v)", seeds, kinds)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "done" {
		t.Errorf("stream did not end with done: %v", kinds)
	}
}

// TestServiceExperimentTable1: the experiment endpoint returns the four
// Table 1 rows.
func TestServiceExperimentTable1(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/experiments/table1", "application/json",
		strings.NewReader(`{"cycles":20}`))
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[RowsResponse](t, resp)
	if len(got.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(got.Rows))
	}
	if got.Rows[0].Arch != "array" || got.Rows[2].Arch != "wallace" {
		t.Errorf("unexpected row order: %+v", got.Rows)
	}
}

// TestServiceFigure10: the figure10 endpoint answers the sequential
// before/after shape — the unretimed subject as "before" plus one sweep
// row per requested target.
func TestServiceFigure10(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/experiments/figure10", "application/json",
		strings.NewReader(`{"cycles":40,"targets":[72,24]}`))
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[Fig10Response](t, resp)
	if got.Subject != "dirdet8r" {
		t.Errorf("subject %q, want dirdet8r", got.Subject)
	}
	b := got.Before
	if b.Circuit != 0 || b.TargetPeriod != 0 || b.Latency != 0 || b.FFs != 48 {
		t.Errorf("before row not the unretimed subject: %+v", b)
	}
	if b.TotalMW <= 0 || b.Period <= 0 {
		t.Errorf("before row missing measurement: %+v", b)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("%d sweep rows, want 2", len(got.Rows))
	}
	for i, r := range got.Rows {
		if r.Circuit != i+1 {
			t.Errorf("sweep row %d numbered circuit %d", i, r.Circuit)
		}
	}
}

// TestServiceHealthz: /healthz reports ok and live cache statistics.
func TestServiceHealthz(t *testing.T) {
	ts := newTestServer(t)
	// Prime the cache with one measurement.
	if _, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(`{"circuit":"rca4","cycles":10}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
		Cache  struct {
			Size   int    `json:"size"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" {
		t.Errorf("status %q", hz.Status)
	}
	if hz.Cache.Size == 0 || hz.Cache.Misses == 0 {
		t.Errorf("cache stats not live: %+v", hz.Cache)
	}
}

// TestServiceErrors: bad requests are 4xx with a JSON error body.
func TestServiceErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name, method, path, body string
		wantStatus               int
	}{
		{"unknown circuit", http.MethodPost, "/v1/measure", `{"circuit":"nope"}`, http.StatusNotFound},
		{"missing circuit", http.MethodPost, "/v1/measure", `{}`, http.StatusBadRequest},
		{"bad json", http.MethodPost, "/v1/measure", `{`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/measure", `{"circuit":"rca4","bogus":1}`, http.StatusBadRequest},
		{"bad method", http.MethodDelete, "/v1/experiments/table1", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: missing JSON error body (err=%v)", tc.name, err)
		}
		resp.Body.Close()
	}
}

// TestServiceExplicitZeroCycles: the wire's pointer convention reaches
// the Config sentinel — an explicit 0 measures nothing.
func TestServiceExplicitZeroCycles(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/measure", "application/json",
		strings.NewReader(`{"circuit":"rca4","cycles":0}`))
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[MeasureResponse](t, resp)
	if got.Activity.Cycles != 0 || got.Activity.Transitions != 0 {
		t.Errorf("explicit zero cycles measured activity: %+v", got.Activity)
	}
}

// TestServiceLanesParam: the lanes knob reaches the measurement config —
// lanes=1 selects the historical single-stream numbers, the default (and
// any explicit wide lane count) the lane-decomposed ones, both matching
// the library API exactly.
func TestServiceLanesParam(t *testing.T) {
	ts := newTestServer(t)
	measure := func(body string) MeasureResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/measure", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return decodeBody[MeasureResponse](t, resp)
	}
	scalar := measure(`{"circuit":"rca8","cycles":100,"seed":7,"lanes":1}`)
	wide := measure(`{"circuit":"rca8","cycles":100,"seed":7}`)

	want, err := glitchsim.DefaultEngine().Measure(context.Background(), glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(glitchsim.NewRCA(8)),
		Config:  glitchsim.Config{Cycles: 100, Seed: 7, Lanes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Activity.Transitions != want.Transitions || scalar.Activity.Useful != want.Useful {
		t.Errorf("lanes=1 activity %+v, library %+v", scalar.Activity, want)
	}
	if wide.Activity.Cycles != 100 || scalar.Activity.Cycles != 100 {
		t.Errorf("cycles: wide %d scalar %d, want 100", wide.Activity.Cycles, scalar.Activity.Cycles)
	}
	if wide.Activity.Transitions == scalar.Activity.Transitions {
		t.Error("lane-decomposed and single-stream measurements coincide (lanes knob ignored?)")
	}
}
