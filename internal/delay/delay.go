// Package delay defines propagation-delay models for gate-level timing
// simulation. Delays are integers in abstract gate-delay units, as in the
// paper's "unit delay" simulations; a model maps each cell output pin to
// its delay.
//
// The paper's two multiplier timing experiments correspond to:
//
//	delay.Unit()               // Table 1: every cell delay 1
//	delay.FullAdderRatio(2, 1) // Table 2: dsum = 2·dcarry in FA/HA cells
package delay

import (
	"fmt"

	"glitchsim/netlist"
)

// Model maps a cell output pin to a propagation delay in integer units.
type Model interface {
	// Delay returns the propagation delay from any input of c to output
	// pin outPin. It must be non-negative and deterministic.
	Delay(c *netlist.Cell, outPin int) int
	// Name identifies the model in reports.
	Name() string
}

// Func adapts a function to a Model.
type Func struct {
	F func(c *netlist.Cell, outPin int) int
	N string
}

// Delay implements Model.
func (f Func) Delay(c *netlist.Cell, outPin int) int { return f.F(c, outPin) }

// Name implements Model.
func (f Func) Name() string { return f.N }

type unit struct{ d int }

func (u unit) Delay(*netlist.Cell, int) int { return u.d }
func (u unit) Name() string {
	if u.d == 1 {
		return "unit"
	}
	return fmt.Sprintf("uniform(%d)", u.d)
}

// Unit returns the unit-delay model: every cell output has delay 1. This
// is the model used for the paper's Table 1 and §4.2 simulations.
func Unit() Model { return unit{d: 1} }

// Uniform returns a model where every output has the same delay d.
func Uniform(d int) Model {
	if d < 0 {
		panic("delay: negative delay")
	}
	return unit{d: d}
}

// Zero returns the zero-delay model: the circuit settles instantly, so no
// glitches can occur. It is the glitch-blind baseline the ablation
// benchmarks compare against.
func Zero() Model { return Func{F: func(*netlist.Cell, int) int { return 0 }, N: "zero"} }

type faRatio struct {
	dsum, dcarry int
	base         Model
}

func (m faRatio) Name() string {
	return fmt.Sprintf("fa(dsum=%d,dcarry=%d)/%s", m.dsum, m.dcarry, m.base.Name())
}

func (m faRatio) Delay(c *netlist.Cell, outPin int) int {
	if c.Type == netlist.FA || c.Type == netlist.HA {
		if outPin == netlist.PinSum {
			return m.dsum
		}
		return m.dcarry
	}
	return m.base.Delay(c, outPin)
}

// FullAdderRatio returns a model giving compound FA and HA cells a sum
// delay of dsum and a carry delay of dcarry; all other cells are unit
// delay. The paper's more realistic Table 2 model is FullAdderRatio(2, 1):
// "the delay of the sum calculation in a full adder is about twice as
// large as the delay of the carry calculation".
func FullAdderRatio(dsum, dcarry int) Model {
	return FullAdderRatioOver(dsum, dcarry, Unit())
}

// FullAdderRatioOver is FullAdderRatio with an explicit base model for
// non-adder cells.
func FullAdderRatioOver(dsum, dcarry int, base Model) Model {
	if dsum < 0 || dcarry < 0 {
		panic("delay: negative delay")
	}
	return faRatio{dsum: dsum, dcarry: dcarry, base: base}
}

// PerType returns a model with an explicit delay per cell type; types not
// in the map fall back to def.
func PerType(m map[netlist.CellType]int, def int) Model {
	cp := make(map[netlist.CellType]int, len(m))
	for k, v := range m {
		if v < 0 {
			panic("delay: negative delay")
		}
		cp[k] = v
	}
	return Func{
		F: func(c *netlist.Cell, _ int) int {
			if d, ok := cp[c.Type]; ok {
				return d
			}
			return def
		},
		N: "per-type",
	}
}

// Typical returns a per-type model loosely reflecting relative static-CMOS
// gate delays (inverters fastest, XOR/mux slowest). Used by the ablation
// benchmarks as a more heterogeneous alternative to unit delay.
func Typical() Model {
	m := map[netlist.CellType]int{
		netlist.Const0: 0, netlist.Const1: 0,
		netlist.Buf: 1, netlist.Not: 1,
		netlist.Nand: 1, netlist.Nor: 1,
		netlist.And: 2, netlist.Or: 2,
		netlist.Xor: 3, netlist.Xnor: 3,
		netlist.Mux2: 2, netlist.Maj3: 2,
		netlist.HA: 2, netlist.FA: 3,
	}
	base := PerType(m, 1)
	return Func{
		F: func(c *netlist.Cell, pin int) int {
			if c.Type == netlist.FA && pin == netlist.PinCarry {
				return 2 // carry faster than sum
			}
			if c.Type == netlist.HA && pin == netlist.PinCarry {
				return 1
			}
			return base.Delay(c, pin)
		},
		N: "typical",
	}
}

// AsDelayFunc converts a Model to the netlist.DelayFunc used by static
// timing helpers.
func AsDelayFunc(m Model) netlist.DelayFunc {
	return func(c *netlist.Cell, pin int) int { return m.Delay(c, pin) }
}

// VisitOutputs is the table-extraction walk: it resolves the model on
// every connected output pin of every combinational (non-DFF) cell of
// the netlist, in cell/pin order, calling f with the cell index, the
// output pin and the model's delay. Unconnected (NoNet) pins are
// skipped — a model is never asked about a pin that drives nothing.
// Every consumer that precompiles a delay model into a lookup table —
// the simulator kernels resolve models exactly once, at construction,
// and never call Model.Delay from a hot loop — goes through this walk,
// so all of them agree on which pins a model is asked about and in
// which order.
func VisitOutputs(n *netlist.Netlist, m Model, f func(cell, pin, d int)) {
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Type == netlist.DFF {
			continue
		}
		for pin := range c.Out {
			if c.Out[pin] == netlist.NoNet {
				continue
			}
			f(ci, pin, m.Delay(c, pin))
		}
	}
}

// Bounds returns the smallest and largest delay the model assigns to any
// combinational output of the netlist. A netlist without combinational
// outputs reports (1, 1), the trivially uniform unit delay. Like the
// rest of the package it panics on a negative delay, so callers that
// only fold the bounds (kernel-eligibility checks) reject invalid models
// as loudly as table construction does.
func Bounds(n *netlist.Netlist, m Model) (min, max int) {
	min, max = -1, 0
	VisitOutputs(n, m, func(cell, pin, d int) {
		if d < 0 {
			panic(fmt.Sprintf("delay: model %s returned %d for cell %s pin %d", m.Name(), d, n.Cells[cell].Name, pin))
		}
		if min < 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	})
	if min < 0 {
		return 1, 1
	}
	return min, max
}
