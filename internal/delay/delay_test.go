package delay

import (
	"strings"
	"testing"

	"glitchsim/netlist"
)

func cells(t *testing.T) (fa, ha, xor, inv *netlist.Cell) {
	t.Helper()
	b := netlist.NewBuilder("c")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	b.FullAdder(x, y, z)
	b.HalfAdder(x, y)
	b.Xor(x, y)
	b.Not(x)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n.Cell(0), n.Cell(1), n.Cell(2), n.Cell(3)
}

func TestUnit(t *testing.T) {
	fa, _, xor, inv := cells(t)
	m := Unit()
	if m.Delay(fa, 0) != 1 || m.Delay(fa, 1) != 1 || m.Delay(xor, 0) != 1 || m.Delay(inv, 0) != 1 {
		t.Error("unit delays must all be 1")
	}
	if m.Name() != "unit" {
		t.Error("name")
	}
}

func TestUniformAndZero(t *testing.T) {
	fa, _, _, _ := cells(t)
	if Uniform(3).Delay(fa, 0) != 3 {
		t.Error("uniform")
	}
	if Zero().Delay(fa, 1) != 0 {
		t.Error("zero")
	}
	if !strings.Contains(Uniform(3).Name(), "3") || Zero().Name() != "zero" {
		t.Error("names")
	}
}

func TestUniformPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uniform(-1)
}

func TestFullAdderRatio(t *testing.T) {
	fa, ha, xor, _ := cells(t)
	m := FullAdderRatio(2, 1)
	if m.Delay(fa, netlist.PinSum) != 2 {
		t.Error("FA sum delay")
	}
	if m.Delay(fa, netlist.PinCarry) != 1 {
		t.Error("FA carry delay")
	}
	if m.Delay(ha, netlist.PinSum) != 2 || m.Delay(ha, netlist.PinCarry) != 1 {
		t.Error("HA delays")
	}
	if m.Delay(xor, 0) != 1 {
		t.Error("non-adder falls back to unit")
	}
	if !strings.Contains(m.Name(), "dsum=2") {
		t.Error("name")
	}
}

func TestFullAdderRatioOver(t *testing.T) {
	_, _, xor, _ := cells(t)
	m := FullAdderRatioOver(2, 1, Uniform(5))
	if m.Delay(xor, 0) != 5 {
		t.Error("base model not used")
	}
}

func TestPerType(t *testing.T) {
	fa, _, xor, inv := cells(t)
	m := PerType(map[netlist.CellType]int{netlist.Xor: 3}, 7)
	if m.Delay(xor, 0) != 3 {
		t.Error("mapped type")
	}
	if m.Delay(inv, 0) != 7 || m.Delay(fa, 0) != 7 {
		t.Error("default")
	}
}

func TestTypical(t *testing.T) {
	fa, ha, xor, inv := cells(t)
	m := Typical()
	if m.Delay(inv, 0) != 1 {
		t.Error("inverter should be fastest")
	}
	if m.Delay(xor, 0) != 3 {
		t.Error("xor should be 3")
	}
	if m.Delay(fa, netlist.PinSum) != 3 || m.Delay(fa, netlist.PinCarry) != 2 {
		t.Error("FA sum should be slower than carry")
	}
	if m.Delay(ha, netlist.PinCarry) != 1 {
		t.Error("HA carry")
	}
}

func TestFuncAdapter(t *testing.T) {
	fa, _, _, _ := cells(t)
	m := Func{F: func(c *netlist.Cell, pin int) int { return pin + 1 }, N: "pin"}
	if m.Delay(fa, 1) != 2 || m.Name() != "pin" {
		t.Error("func adapter")
	}
	df := AsDelayFunc(m)
	if df(fa, 0) != 1 {
		t.Error("AsDelayFunc")
	}
}
