package delay

import (
	"fmt"
	"strings"
	"testing"

	"glitchsim/netlist"
)

func cells(t *testing.T) (fa, ha, xor, inv *netlist.Cell) {
	t.Helper()
	b := netlist.NewBuilder("c")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	b.FullAdder(x, y, z)
	b.HalfAdder(x, y)
	b.Xor(x, y)
	b.Not(x)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n.Cell(0), n.Cell(1), n.Cell(2), n.Cell(3)
}

func TestUnit(t *testing.T) {
	fa, _, xor, inv := cells(t)
	m := Unit()
	if m.Delay(fa, 0) != 1 || m.Delay(fa, 1) != 1 || m.Delay(xor, 0) != 1 || m.Delay(inv, 0) != 1 {
		t.Error("unit delays must all be 1")
	}
	if m.Name() != "unit" {
		t.Error("name")
	}
}

func TestUniformAndZero(t *testing.T) {
	fa, _, _, _ := cells(t)
	if Uniform(3).Delay(fa, 0) != 3 {
		t.Error("uniform")
	}
	if Zero().Delay(fa, 1) != 0 {
		t.Error("zero")
	}
	if !strings.Contains(Uniform(3).Name(), "3") || Zero().Name() != "zero" {
		t.Error("names")
	}
}

func TestUniformPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Uniform(-1)
}

func TestFullAdderRatio(t *testing.T) {
	fa, ha, xor, _ := cells(t)
	m := FullAdderRatio(2, 1)
	if m.Delay(fa, netlist.PinSum) != 2 {
		t.Error("FA sum delay")
	}
	if m.Delay(fa, netlist.PinCarry) != 1 {
		t.Error("FA carry delay")
	}
	if m.Delay(ha, netlist.PinSum) != 2 || m.Delay(ha, netlist.PinCarry) != 1 {
		t.Error("HA delays")
	}
	if m.Delay(xor, 0) != 1 {
		t.Error("non-adder falls back to unit")
	}
	if !strings.Contains(m.Name(), "dsum=2") {
		t.Error("name")
	}
}

func TestFullAdderRatioOver(t *testing.T) {
	_, _, xor, _ := cells(t)
	m := FullAdderRatioOver(2, 1, Uniform(5))
	if m.Delay(xor, 0) != 5 {
		t.Error("base model not used")
	}
}

func TestPerType(t *testing.T) {
	fa, _, xor, inv := cells(t)
	m := PerType(map[netlist.CellType]int{netlist.Xor: 3}, 7)
	if m.Delay(xor, 0) != 3 {
		t.Error("mapped type")
	}
	if m.Delay(inv, 0) != 7 || m.Delay(fa, 0) != 7 {
		t.Error("default")
	}
}

func TestTypical(t *testing.T) {
	fa, ha, xor, inv := cells(t)
	m := Typical()
	if m.Delay(inv, 0) != 1 {
		t.Error("inverter should be fastest")
	}
	if m.Delay(xor, 0) != 3 {
		t.Error("xor should be 3")
	}
	if m.Delay(fa, netlist.PinSum) != 3 || m.Delay(fa, netlist.PinCarry) != 2 {
		t.Error("FA sum should be slower than carry")
	}
	if m.Delay(ha, netlist.PinCarry) != 1 {
		t.Error("HA carry")
	}
}

func TestFuncAdapter(t *testing.T) {
	fa, _, _, _ := cells(t)
	m := Func{F: func(c *netlist.Cell, pin int) int { return pin + 1 }, N: "pin"}
	if m.Delay(fa, 1) != 2 || m.Name() != "pin" {
		t.Error("func adapter")
	}
	df := AsDelayFunc(m)
	if df(fa, 0) != 1 {
		t.Error("AsDelayFunc")
	}
}

// TestVisitOutputs: the table-extraction walk hits every output pin of
// every combinational cell exactly once, in cell/pin order, skipping
// flipflops, and Bounds folds the visited delays (with the (1, 1)
// convention for purely sequential netlists).
func TestVisitOutputs(t *testing.T) {
	b := netlist.NewBuilder("v")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	sum, carry := b.FullAdder(x, y, z)
	q := b.DFF(sum)
	b.Output("s", q)
	b.Output("c", b.Not(carry))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := FullAdderRatio(2, 1)
	type visit struct{ cell, pin, d int }
	var got []visit
	VisitOutputs(n, m, func(cell, pin, d int) { got = append(got, visit{cell, pin, d}) })
	// Cell 0 is the FA (pins sum=2, carry=1), cell 1 the DFF (skipped),
	// cell 2 the inverter (unit base).
	want := []visit{{0, 0, 2}, {0, 1, 1}, {2, 0, 1}}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if min, max := Bounds(n, m); min != 1 || max != 2 {
		t.Errorf("Bounds = (%d, %d), want (1, 2)", min, max)
	}

	// Unconnected (NoNet) output pins are never visited — a model must
	// not be asked about a pin that drives nothing.
	n.Cells[0].Out = []netlist.NetID{n.Cells[0].Out[0], netlist.NoNet}
	probing := Func{
		F: func(c *netlist.Cell, pin int) int {
			if c.Out[pin] == netlist.NoNet {
				t.Fatalf("model asked about unconnected pin %d of %s", pin, c.Name)
			}
			return 1
		},
		N: "probing",
	}
	got = got[:0]
	VisitOutputs(n, probing, func(cell, pin, d int) { got = append(got, visit{cell, pin, d}) })
	want = []visit{{0, 0, 1}, {2, 0, 1}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("with NoNet carry pin: visited %v, want %v", got, want)
	}

	// A netlist with no combinational outputs is trivially unit-delay.
	b2 := netlist.NewBuilder("seq")
	b2.Output("q", b2.DFF(b2.Input("d")))
	seq, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if min, max := Bounds(seq, m); min != 1 || max != 1 {
		t.Errorf("sequential Bounds = (%d, %d), want (1, 1)", min, max)
	}
}

// TestBoundsPanicsNegative: kernel-eligibility folds must reject invalid
// models as loudly as table construction, never report them uniform.
func TestBoundsPanicsNegative(t *testing.T) {
	b := netlist.NewBuilder("neg")
	b.Output("o", b.Not(b.Input("x")))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Bounds accepted a negative delay")
		} else if !strings.Contains(fmt.Sprint(r), "-3") {
			t.Fatalf("panic %v does not name the offending delay", r)
		}
	}()
	Bounds(n, Func{F: func(*netlist.Cell, int) int { return -3 }, N: "neg"})
}
