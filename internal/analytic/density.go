package analytic

import "glitchsim/netlist"

// TransitionDensities propagates transition densities through the
// netlist: D(y) = Σ_i P(∂y/∂x_i)·D(x_i), where ∂y/∂x_i is the Boolean
// difference of output y with respect to input x_i, and probabilities
// are computed by SignalProbabilities under the usual independence
// assumptions. Primary inputs toggle with density 1/2 per cycle (random
// inputs); DFF outputs toggle with density 2p(1−p) (temporally
// independent samples).
//
// Density propagation is the classic *upper-leaning* switching estimate:
// unlike the zero-delay model (which counts only functional changes and
// therefore equals useful activity), density propagation counts every
// input change as a potential output change, so it partially accounts
// for glitching without simulating timing. On the RCA it sits between
// the useful ratio and the true transition ratio — the three-way
// comparison is an ablation benchmark.
func TransitionDensities(n *netlist.Netlist) []float64 {
	p := SignalProbabilities(n)
	d := make([]float64, n.NumNets())
	for _, pi := range n.PIs {
		d[pi] = 0.5
	}
	for _, cid := range n.TopoOrder() {
		c := &n.Cells[cid]
		if c.Type == netlist.DFF {
			pd := p[c.In[0]]
			d[c.Out[0]] = 2 * pd * (1 - pd)
			continue
		}
		in := func(i int) float64 { return p[c.In[i]] }
		din := func(i int) float64 { return d[c.In[i]] }
		var out float64
		switch c.Type {
		case netlist.Const0, netlist.Const1:
			out = 0
		case netlist.Buf, netlist.Not:
			out = din(0)
		case netlist.And, netlist.Nand:
			for i := range c.In {
				sens := 1.0
				for j := range c.In {
					if j != i {
						sens *= in(j)
					}
				}
				out += sens * din(i)
			}
		case netlist.Or, netlist.Nor:
			for i := range c.In {
				sens := 1.0
				for j := range c.In {
					if j != i {
						sens *= 1 - in(j)
					}
				}
				out += sens * din(i)
			}
		case netlist.Xor, netlist.Xnor:
			for i := range c.In {
				out += din(i)
			}
		case netlist.Mux2:
			a, bb, s := in(0), in(1), in(2)
			_ = a
			out = (1-s)*din(0) + s*din(1) +
				(a*(1-bb)+bb*(1-a))*din(2)
		case netlist.Maj3:
			out = xorProb(in(1), in(2))*din(0) +
				xorProb(in(0), in(2))*din(1) +
				xorProb(in(0), in(1))*din(2)
		case netlist.HA:
			d[c.Out[netlist.PinSum]] = din(0) + din(1)
			d[c.Out[netlist.PinCarry]] = in(1)*din(0) + in(0)*din(1)
			continue
		case netlist.FA:
			d[c.Out[netlist.PinSum]] = din(0) + din(1) + din(2)
			d[c.Out[netlist.PinCarry]] = xorProb(in(1), in(2))*din(0) +
				xorProb(in(0), in(2))*din(1) +
				xorProb(in(0), in(1))*din(2)
			continue
		}
		for _, o := range c.Out {
			if o != netlist.NoNet {
				d[o] = out
			}
		}
	}
	return d
}

// xorProb returns P(a ⊕ b) for independent inputs.
func xorProb(a, b float64) float64 { return a*(1-b) + b*(1-a) }

// DensityActivityTotal sums the transition densities over all internal
// nets: the density-propagation estimate of transitions per cycle.
func DensityActivityTotal(n *netlist.Netlist) float64 {
	d := TransitionDensities(n)
	total := 0.0
	for _, id := range n.InternalNets() {
		total += d[id]
	}
	return total
}
