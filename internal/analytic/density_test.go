package analytic

import (
	"testing"

	"glitchsim/netlist"
)

func TestDensityBasicGates(t *testing.T) {
	b := netlist.NewBuilder("g")
	x := b.Input("x")
	y := b.Input("y")
	and := b.And(x, y)
	or := b.Or(x, y)
	xor := b.Xor(x, y)
	not := b.Not(x)
	b.Output("o", b.Or(and, or, xor, not))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := TransitionDensities(n)
	// Inputs at density 1/2 and probability 1/2:
	// AND: 0.5*0.5 + 0.5*0.5 = 0.5; OR same; XOR: 0.5+0.5 = 1; NOT: 0.5.
	if !close(d[and], 0.5, eps) || !close(d[or], 0.5, eps) {
		t.Errorf("and/or densities %v %v, want 0.5", d[and], d[or])
	}
	if !close(d[xor], 1.0, eps) {
		t.Errorf("xor density %v, want 1", d[xor])
	}
	if !close(d[not], 0.5, eps) {
		t.Errorf("not density %v, want 0.5", d[not])
	}
}

func TestDensityCompound(t *testing.T) {
	b := netlist.NewBuilder("c")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	s, co := b.FullAdder(x, y, z)
	m := b.Mux(x, y, z)
	b.Output("s", s)
	b.Output("co", co)
	b.Output("m", m)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := TransitionDensities(n)
	// FA sum is a 3-XOR: density 1.5. Carry: 3 * (0.5 boolean-diff * 0.5) = 0.75.
	if !close(d[s], 1.5, eps) {
		t.Errorf("FA sum density %v, want 1.5", d[s])
	}
	if !close(d[co], 0.75, eps) {
		t.Errorf("FA carry density %v, want 0.75", d[co])
	}
	// MUX: (1-ps)Da + ps Db + P(a xor b) Ds = 0.25 + 0.25 + 0.25 = 0.75.
	if !close(d[m], 0.75, eps) {
		t.Errorf("mux density %v, want 0.75", d[m])
	}
}

func TestDensityThroughDFF(t *testing.T) {
	b := netlist.NewBuilder("d")
	x := b.Input("x")
	q := b.DFF(b.Const(0)) // constant d input -> p=0 -> density 0
	q2 := b.DFF(x)
	b.Output("q", q)
	b.Output("q2", q2)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := TransitionDensities(n)
	if d[q] != 0 {
		t.Errorf("constant-fed DFF density %v, want 0", d[q])
	}
	if !close(d[q2], 0.5, eps) {
		t.Errorf("random-fed DFF density %v, want 0.5", d[q2])
	}
}

func TestDensityBracketsRCAActivity(t *testing.T) {
	// On the RCA the density estimate must sit at or above the useful
	// activity (zero-delay estimate) on every net, because the Boolean
	// differences count each input change separately.
	b := netlist.NewBuilder("rca")
	a := b.InputBus("a", 12)
	bb := b.InputBus("b", 12)
	carry := b.Const(0)
	sums := make([]netlist.NetID, 12)
	for i := 0; i < 12; i++ {
		sums[i], carry = b.FullAdder(a[i], bb[i], carry)
	}
	b.OutputBus("s", sums)
	b.Output("cout", carry)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dens := TransitionDensities(n)
	zero := ZeroDelayTransitionProbs(n)
	for _, id := range n.InternalNets() {
		if dens[id]+1e-12 < zero[id] {
			t.Fatalf("net %s: density %v below zero-delay %v", n.Net(id).Name, dens[id], zero[id])
		}
	}
	// Per sum bit, the density estimate 1 + D(C_i) exceeds the paper's
	// true transition ratio TR(S_i) = 5/4 − 3/4(1/2)^i for i ≥ 1.
	for i := 1; i < 12; i++ {
		if dens[sums[i]] < TRSum(i) {
			t.Errorf("S%d: density %v below true TR %v", i, dens[sums[i]], TRSum(i))
		}
	}
	// Totals ordering: useful (=zero-delay) < density.
	if DensityActivityTotal(n) <= ZeroDelayActivityTotal(n) {
		t.Error("density total should exceed the glitch-blind total")
	}
}
