package analytic

import (
	"math"
	"testing"
)

const eps = 1e-12

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestClosedFormsAgainstExhaustive(t *testing.T) {
	// Equations 2-7 must match exact enumeration of all 2^{4N} operand
	// pairs of the paper's unit-delay RCA model.
	for _, n := range []int{2, 3, 4} {
		e := ExhaustiveRCA(n)
		for i := 0; i < n; i++ {
			if !close(e.SumTR[i], TRSum(i), eps) {
				t.Errorf("N=%d: TR(S%d) exact %v, eq %v", n, i, e.SumTR[i], TRSum(i))
			}
			if !close(e.SumUFTR[i], UFTRSum(i), eps) {
				t.Errorf("N=%d: UFTR(S%d) exact %v, eq %v", n, i, e.SumUFTR[i], UFTRSum(i))
			}
			if !close(e.CarryTR[i], TRCarry(i), eps) {
				t.Errorf("N=%d: TR(C%d) exact %v, eq %v", n, i+1, e.CarryTR[i], TRCarry(i))
			}
			if !close(e.CarryUFTR[i], UFTRCarry(i), eps) {
				t.Errorf("N=%d: UFTR(C%d) exact %v, eq %v", n, i+1, e.CarryUFTR[i], UFTRCarry(i))
			}
		}
		if !close(e.WorstCaseProb, WorstCaseProbability(n), eps) {
			t.Errorf("N=%d: worst-case exact %v, formula %v", n, e.WorstCaseProb, WorstCaseProbability(n))
		}
	}
}

func TestUselessIsTotalMinusUseful(t *testing.T) {
	for i := 0; i < 20; i++ {
		if !close(ULTRSum(i), TRSum(i)-UFTRSum(i), eps) {
			t.Errorf("ULTR(S%d) inconsistent", i)
		}
		if !close(ULTRCarry(i), TRCarry(i)-UFTRCarry(i), eps) {
			t.Errorf("ULTR(C%d) inconsistent", i+1)
		}
	}
}

func TestKnownRatioValues(t *testing.T) {
	// Spot values derivable by hand.
	cases := []struct {
		got, want float64
		name      string
	}{
		{TRSum(0), 0.5, "TR(S0)"},
		{TRSum(1), 0.875, "TR(S1)"},
		{TRCarry(0), 0.375, "TR(C1)"},
		{TRCarry(1), 0.5625, "TR(C2)"},
		{UFTRCarry(0), 0.375, "UFTR(C1)"},
		{UFTRCarry(1), 0.46875, "UFTR(C2)"},
		{ULTRSum(0), 0, "ULTR(S0)"},
	}
	for _, c := range cases {
		if !close(c.got, c.want, eps) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestRatiosMonotoneAndBounded(t *testing.T) {
	// TR grows with bit position and approaches 5/4 (sums) and 3/4
	// (carries); useful ratios approach 1/2.
	for i := 0; i < 30; i++ {
		if TRSum(i+1) <= TRSum(i) || TRSum(i) >= 1.25 {
			t.Errorf("TRSum not increasing toward 5/4 at %d", i)
		}
		if TRCarry(i+1) <= TRCarry(i) || TRCarry(i) >= 0.75 {
			t.Errorf("TRCarry not increasing toward 3/4 at %d", i)
		}
		if UFTRCarry(i) > 0.5 || ULTRSum(i) < 0 || ULTRCarry(i) < 0 {
			t.Errorf("ratio bounds violated at %d", i)
		}
	}
	if !close(TRSum(60), 1.25, 1e-9) || !close(TRCarry(60), 0.75, 1e-9) {
		t.Error("asymptotes wrong")
	}
}

func TestFigure5PaperTotals(t *testing.T) {
	// Paper §3.3: 16-bit RCA, 4000 random inputs → 119002 total
	// transitions, 63334 useful, 55668 useless, L/F = 0.88. The paper
	// tabulates per-bit counts rounded to integers, so RoundedTotals
	// matches exactly; the un-rounded expectation is within 2 counts.
	p := PredictRCA(16, 4000)
	total, useful, useless := p.RoundedTotals()
	if total != 119002 {
		t.Errorf("total = %v, paper reports 119002", total)
	}
	if useful != 63334 {
		t.Errorf("useful = %v, paper reports 63334", useful)
	}
	if useless != 55668 {
		t.Errorf("useless = %v, paper reports 55668", useless)
	}
	if lf := p.UselessOverUseful(); !close(lf, 0.88, 0.005) {
		t.Errorf("L/F = %v, paper reports 0.88", lf)
	}
	et, ef, el := p.Totals()
	if math.Abs(et-float64(total)) > 2 || math.Abs(ef-float64(useful)) > 1 || math.Abs(el-float64(useless)) > 2 {
		t.Errorf("exact totals (%v, %v, %v) too far from rounded (%d, %d, %d)",
			et, ef, el, total, useful, useless)
	}
}

func TestPredictRCAShape(t *testing.T) {
	p := PredictRCA(8, 100)
	if len(p.SumTotal) != 8 || len(p.CarryUseless) != 8 {
		t.Fatal("wrong slice lengths")
	}
	for i := 0; i < 8; i++ {
		if !close(p.SumTotal[i], p.SumUseful[i]+p.SumUseless[i], 1e-9) {
			t.Errorf("sum bit %d: total != useful+useless", i)
		}
		if !close(p.CarryTotal[i], p.CarryUseful[i]+p.CarryUseless[i], 1e-9) {
			t.Errorf("carry bit %d: total != useful+useless", i)
		}
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestWorstCaseProbabilityValues(t *testing.T) {
	if !close(WorstCaseProbability(2), 3.0/64, eps) {
		t.Error("N=2 worst case")
	}
	if !close(WorstCaseProbability(4), 3.0/4096, eps) {
		t.Error("N=4 worst case")
	}
	// Negligible already for small words, as the paper argues.
	if WorstCaseProbability(16) > 1e-13 {
		t.Error("should be negligible for N=16")
	}
}

func TestWorstCasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstCaseProbability(0)
}

func TestRCATimelineWorstCase(t *testing.T) {
	// The §3.1 construction: prev A=B=0101 gives alternating carries;
	// new A=1110, B=0 kills stage 0 and propagates everywhere → S3 and
	// C4 each make 4 transitions.
	sums, carries := RCATimeline(4, 0b0101, 0b0101, 0b1110, 0b0000)
	if sums[3] != 4 {
		t.Errorf("S3 transitions = %d, want 4", sums[3])
	}
	if carries[3] != 4 {
		t.Errorf("C4 transitions = %d, want 4", carries[3])
	}
}

func TestRCATimelineNoChange(t *testing.T) {
	sums, carries := RCATimeline(4, 5, 9, 5, 9)
	for i := range sums {
		if sums[i] != 0 || carries[i] != 0 {
			t.Fatal("identical operands must cause no transitions")
		}
	}
}

func TestRCATimelineSingleRipple(t *testing.T) {
	// 1111 + 0: flipping B0 to 1 ripples the carry through all stages;
	// every signal transitions at least once, C4 exactly once.
	sums, carries := RCATimeline(4, 0b1111, 0, 0b1111, 1)
	if carries[3] != 1 {
		t.Errorf("C4 = %d transitions, want 1", carries[3])
	}
	for i, s := range sums {
		if s == 0 {
			t.Errorf("S%d never transitioned during full ripple", i)
		}
	}
}

func TestRCATimelinePanics(t *testing.T) {
	for _, n := range []int{0, 17} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("n=%d: expected panic", n)
				}
			}()
			RCATimeline(n, 0, 0, 0, 0)
		}()
	}
}

func TestExhaustivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExhaustiveRCA(7)
}
