package analytic

import (
	"math"
	"testing"

	"glitchsim/netlist"
)

func TestSignalProbabilitiesBasicGates(t *testing.T) {
	b := netlist.NewBuilder("gates")
	x := b.Input("x")
	y := b.Input("y")
	and := b.And(x, y)
	or := b.Or(x, y)
	xor := b.Xor(x, y)
	not := b.Not(x)
	nand := b.Nand(x, y)
	nor := b.Nor(x, y)
	xnor := b.Xnor(x, y)
	c0 := b.Const(0)
	c1 := b.Const(1)
	buf := b.Buf(x)
	mux := b.Mux(x, y, c1) // sel const 1 -> picks y
	maj := b.Maj(x, y, c0) // maj(x,y,0) = and
	b.Output("o", b.Or(and, or, xor, not, nand, nor, xnor, buf, mux, maj))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := SignalProbabilities(n)
	want := map[netlist.NetID]float64{
		and: 0.25, or: 0.75, xor: 0.5, not: 0.5, nand: 0.75,
		nor: 0.25, xnor: 0.5, c0: 0, c1: 1, buf: 0.5, mux: 0.5, maj: 0.25,
	}
	for id, w := range want {
		if !close(p[id], w, eps) {
			t.Errorf("net %s: p = %v, want %v", n.Net(id).Name, p[id], w)
		}
	}
}

func buildFARCA(t *testing.T, width int) (*netlist.Netlist, []netlist.NetID, []netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("rca")
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	carry := b.Const(0)
	sums := make([]netlist.NetID, width)
	carries := make([]netlist.NetID, width)
	for i := 0; i < width; i++ {
		sums[i], carry = b.FullAdder(a[i], bb[i], carry)
		carries[i] = carry
	}
	b.OutputBus("s", sums)
	b.Output("cout", carry)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, sums, carries
}

func TestZeroDelayMatchesUsefulRatios(t *testing.T) {
	// On an RCA the independence assumptions of the zero-delay estimator
	// hold exactly (A_i, B_i independent of C_i), so the estimated
	// per-net transition probabilities must equal the paper's useful
	// ratios (eqs. 4 and 6) exactly: zero delay sees only useful
	// transitions.
	const width = 8
	n, sums, carries := buildFARCA(t, width)
	probs := ZeroDelayTransitionProbs(n)
	for i := 0; i < width; i++ {
		if !close(probs[sums[i]], UFTRSum(i), 1e-9) {
			t.Errorf("S%d: zero-delay %v, UFTR %v", i, probs[sums[i]], UFTRSum(i))
		}
		if !close(probs[carries[i]], UFTRCarry(i), 1e-9) {
			t.Errorf("C%d: zero-delay %v, UFTR %v", i+1, probs[carries[i]], UFTRCarry(i))
		}
	}
}

func TestZeroDelayUnderestimatesTotalActivity(t *testing.T) {
	// The glitch-blind estimate must be strictly below the full
	// transition ratio sum for the RCA (which includes useless activity).
	const width = 16
	n, _, _ := buildFARCA(t, width)
	est := ZeroDelayActivityTotal(n)
	pred := PredictRCA(width, 1)
	total, useful, _ := pred.Totals()
	if est >= total {
		t.Errorf("zero-delay estimate %v not below true total %v", est, total)
	}
	if !close(est, useful, 1e-6) {
		t.Errorf("zero-delay estimate %v should equal useful activity %v", est, useful)
	}
}

func TestRisingProbs(t *testing.T) {
	b := netlist.NewBuilder("r")
	x := b.Input("x")
	y := b.Input("y")
	and := b.And(x, y)
	b.Output("o", and)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rp := ZeroDelayRisingProbs(n)
	if !close(rp[and], 0.25*0.75, eps) {
		t.Errorf("rising prob = %v, want %v", rp[and], 0.1875)
	}
	tp := ZeroDelayTransitionProbs(n)
	if !close(tp[and], 2*rp[and], eps) {
		t.Error("transitions must be twice rising under p-symmetry")
	}
}

func TestSignalProbabilitiesSequentialFixpoint(t *testing.T) {
	// q = DFF(xor(q, x)): steady-state q probability is 1/2 regardless.
	b := netlist.NewBuilder("seq")
	x := b.Input("x")
	g := b.AddCell(netlist.Xor, "g", x, x) // placeholder second input
	q := b.DFF(g[0])
	b.Rewire(0, 1, q)
	b.Output("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := SignalProbabilities(n)
	if math.Abs(p[q]-0.5) > 1e-6 {
		t.Errorf("sequential fixpoint p(q) = %v, want 0.5", p[q])
	}
}

func TestProbabilitiesWithinUnitInterval(t *testing.T) {
	n, _, _ := buildFARCA(t, 12)
	for i, v := range SignalProbabilities(n) {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("net %d probability %v out of range", i, v)
		}
	}
}
