package analytic

import (
	"math"

	"glitchsim/netlist"
)

// SignalProbabilities propagates static signal probabilities
// P(net = 1) through the netlist under the standard spatial-independence
// assumption, with primary inputs at probability 1/2 (random inputs).
// Sequential feedback is resolved by fixpoint iteration: a DFF output's
// probability is its input's steady-state probability.
//
// This is the machinery behind glitch-blind probabilistic power
// estimators (the related work the paper improves upon); glitchsim uses
// it as the zero-delay baseline in the ablation benchmarks.
func SignalProbabilities(n *netlist.Netlist) []float64 {
	p := make([]float64, n.NumNets())
	for i := range p {
		p[i] = 0.5
	}
	order := n.TopoOrder()
	const maxIters = 64
	for iter := 0; iter < maxIters; iter++ {
		delta := 0.0
		for _, cid := range order {
			c := &n.Cells[cid]
			if c.Type == netlist.DFF {
				continue // handled after the combinational sweep
			}
			update := func(net netlist.NetID, v float64) {
				if net == netlist.NoNet {
					return
				}
				delta += math.Abs(p[net] - v)
				p[net] = v
			}
			in := func(i int) float64 { return p[c.In[i]] }
			switch c.Type {
			case netlist.Const0:
				update(c.Out[0], 0)
			case netlist.Const1:
				update(c.Out[0], 1)
			case netlist.Buf:
				update(c.Out[0], in(0))
			case netlist.Not:
				update(c.Out[0], 1-in(0))
			case netlist.And, netlist.Nand:
				v := 1.0
				for i := range c.In {
					v *= in(i)
				}
				if c.Type == netlist.Nand {
					v = 1 - v
				}
				update(c.Out[0], v)
			case netlist.Or, netlist.Nor:
				v := 1.0
				for i := range c.In {
					v *= 1 - in(i)
				}
				if c.Type == netlist.Or {
					v = 1 - v
				}
				update(c.Out[0], v)
			case netlist.Xor, netlist.Xnor:
				v := 0.0
				for i := range c.In {
					v = v*(1-in(i)) + (1-v)*in(i)
				}
				if c.Type == netlist.Xnor {
					v = 1 - v
				}
				update(c.Out[0], v)
			case netlist.Mux2:
				a, b, s := in(0), in(1), in(2)
				update(c.Out[0], (1-s)*a+s*b)
			case netlist.Maj3:
				update(c.Out[0], maj3Prob(in(0), in(1), in(2)))
			case netlist.HA:
				a, b := in(0), in(1)
				update(c.Out[netlist.PinSum], a*(1-b)+b*(1-a))
				update(c.Out[netlist.PinCarry], a*b)
			case netlist.FA:
				a, b, ci := in(0), in(1), in(2)
				x := a*(1-b) + b*(1-a)
				update(c.Out[netlist.PinSum], x*(1-ci)+(1-x)*ci)
				update(c.Out[netlist.PinCarry], maj3Prob(a, b, ci))
			}
		}
		// Sequential sweep: DFF q takes d's probability.
		for i := range n.Cells {
			c := &n.Cells[i]
			if c.Type != netlist.DFF {
				continue
			}
			v := p[c.In[0]]
			delta += math.Abs(p[c.Out[0]] - v)
			p[c.Out[0]] = v
		}
		if delta < 1e-12 {
			break
		}
	}
	return p
}

// maj3Prob returns P(majority of three independent 1-bits).
func maj3Prob(a, b, c float64) float64 {
	return a*b*(1-c) + a*c*(1-b) + b*c*(1-a) + a*b*c
}

// ZeroDelayTransitionProbs returns, per net, the probability of a
// (single) transition per clock cycle under zero-delay semantics and
// temporally independent cycles: 2p(1−p). Since a zero-delay circuit is
// glitch-free, this estimates only useful activity: the amount by which
// it undershoots the event-driven measurement is exactly the paper's
// useless-transition contribution.
func ZeroDelayTransitionProbs(n *netlist.Netlist) []float64 {
	p := SignalProbabilities(n)
	out := make([]float64, len(p))
	for i, pi := range p {
		out[i] = 2 * pi * (1 - pi)
	}
	return out
}

// ZeroDelayActivityTotal sums the zero-delay transition probabilities
// over all internal nets: expected transitions per cycle for the whole
// circuit, the glitch-blind baseline figure.
func ZeroDelayActivityTotal(n *netlist.Netlist) float64 {
	probs := ZeroDelayTransitionProbs(n)
	total := 0.0
	for _, id := range n.InternalNets() {
		total += probs[id]
	}
	return total
}

// ZeroDelayRisingProbs returns per-net probabilities of a power-consuming
// (0→1) transition per cycle: p(1−p) under temporal independence.
func ZeroDelayRisingProbs(n *netlist.Netlist) []float64 {
	p := SignalProbabilities(n)
	out := make([]float64, len(p))
	for i, pi := range p {
		out[i] = pi * (1 - pi)
	}
	return out
}
