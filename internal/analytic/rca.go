// Package analytic provides closed-form probability models of transition
// activity, reproducing the paper's §3 analysis of the ripple-carry adder
// (equations 2–7 and the worst-case probability of §3.1), an exact
// exhaustive evaluator of the same timing model, and a glitch-blind
// zero-delay activity estimator used as an ablation baseline.
//
// Indexing convention: functions take the full-adder stage index i
// (0-based). Sum functions refer to S_i; carry functions refer to the
// stage's carry output C_{i+1}, exactly as in the paper.
package analytic

import (
	"fmt"
	"math"
)

// TRSum returns the average transition ratio TR(S_i) of sum bit i under
// random inputs (paper eq. 3): 5/4 − 3/4·(1/2)^i.
func TRSum(i int) float64 {
	return 1.25 - 0.75*math.Pow(0.5, float64(i))
}

// TRCarry returns the average transition ratio TR(C_{i+1}) of the carry
// out of stage i under random inputs (paper eq. 2): 3/4 − 3/4·(1/2)^{i+1}.
func TRCarry(i int) float64 {
	return 0.75 - 0.75*math.Pow(0.5, float64(i+1))
}

// UFTRSum returns the average useful transition ratio UFTR(S_i)
// (paper eq. 4): exactly 1/2 for every sum bit.
func UFTRSum(int) float64 { return 0.5 }

// ULTRSum returns the average useless transition ratio ULTR(S_i)
// (paper eq. 5): 3/4 − 3/4·(1/2)^i.
func ULTRSum(i int) float64 {
	return 0.75 - 0.75*math.Pow(0.5, float64(i))
}

// UFTRCarry returns the average useful transition ratio UFTR(C_{i+1})
// (paper eq. 6): 1/2 − 1/2·(1/4)^{i+1}.
func UFTRCarry(i int) float64 {
	return 0.5 - 0.5*math.Pow(0.25, float64(i+1))
}

// ULTRCarry returns the average useless transition ratio ULTR(C_{i+1})
// (paper eq. 7): with x = (1/2)^{i+1}, 1/2·(x − 1/2)·(x − 1), which
// equals TRCarry − UFTRCarry.
func ULTRCarry(i int) float64 {
	x := math.Pow(0.5, float64(i+1))
	return 0.5 * (x - 0.5) * (x - 1)
}

// WorstCaseProbability returns the probability, for uniform random
// previous and new operands, that the worst case of §3.1 occurs — the
// carry alternation pattern is present after the previous addition and
// the new inputs ripple the carry through all N stages, making S_{N-1}
// and C_N transition N times: 3·(1/8)^N.
//
// The constant is validated against exhaustive enumeration of all
// 2^{4N} operand pairs in the package tests.
func WorstCaseProbability(n int) float64 {
	if n < 1 {
		panic("analytic: adder width must be positive")
	}
	return 3 * math.Pow(0.125, float64(n))
}

// RCAPrediction holds expected per-bit activity of an N-bit ripple-carry
// adder over a number of random-input cycles: the data behind the paper's
// Figure 5.
type RCAPrediction struct {
	N      int
	Cycles int
	// Per sum bit i (expected counts over all cycles).
	SumTotal, SumUseful, SumUseless []float64
	// Per carry C_{i+1} of stage i.
	CarryTotal, CarryUseful, CarryUseless []float64
}

// PredictRCA evaluates equations 2–7 for an n-bit adder over the given
// number of cycles.
func PredictRCA(n, cycles int) RCAPrediction {
	p := RCAPrediction{
		N: n, Cycles: cycles,
		SumTotal: make([]float64, n), SumUseful: make([]float64, n), SumUseless: make([]float64, n),
		CarryTotal: make([]float64, n), CarryUseful: make([]float64, n), CarryUseless: make([]float64, n),
	}
	k := float64(cycles)
	for i := 0; i < n; i++ {
		p.SumTotal[i] = k * TRSum(i)
		p.SumUseful[i] = k * UFTRSum(i)
		p.SumUseless[i] = k * ULTRSum(i)
		p.CarryTotal[i] = k * TRCarry(i)
		p.CarryUseful[i] = k * UFTRCarry(i)
		p.CarryUseless[i] = k * ULTRCarry(i)
	}
	return p
}

// Totals returns the exact expected total, useful and useless transition
// counts summed over all sum and carry bits.
func (p RCAPrediction) Totals() (total, useful, useless float64) {
	for i := 0; i < p.N; i++ {
		total += p.SumTotal[i] + p.CarryTotal[i]
		useful += p.SumUseful[i] + p.CarryUseful[i]
		useless += p.SumUseless[i] + p.CarryUseless[i]
	}
	return
}

// RoundedTotals rounds every per-bit expected count to the nearest
// integer before summing, which is how the paper tabulates Figure 5. For
// N=16, cycles=4000 this reproduces the paper's §3.3 numbers exactly:
// 63334 useful and 55668 useless transitions, 119002 in total.
func (p RCAPrediction) RoundedTotals() (total, useful, useless int64) {
	for i := 0; i < p.N; i++ {
		uf := int64(math.Round(p.SumUseful[i])) + int64(math.Round(p.CarryUseful[i]))
		ul := int64(math.Round(p.SumUseless[i])) + int64(math.Round(p.CarryUseless[i]))
		useful += uf
		useless += ul
	}
	total = useful + useless
	return
}

// UselessOverUseful returns the predicted L/F ratio.
func (p RCAPrediction) UselessOverUseful() float64 {
	_, f, l := p.Totals()
	if f == 0 {
		return 0
	}
	return l / f
}

// String summarizes the prediction.
func (p RCAPrediction) String() string {
	t, f, l := p.Totals()
	return fmt.Sprintf("rca%d over %d cycles: total %.0f, useful %.0f, useless %.0f (L/F=%.2f)",
		p.N, p.Cycles, t, f, l, l/f)
}

// RCATimeline computes the per-signal transition counts of the paper's
// unit-delay full-adder-cell model of an N-bit RCA for a single input
// change: operands (aPrev, bPrev) have settled, then (aNew, bNew) arrive
// at the start of the cycle. It returns transition counts for sums
// S_0..S_{N-1} and carries C_1..C_N (carry index shifted: carry[i] is
// C_{i+1}).
//
// This discrete timeline is the reference model for both the closed-form
// equations and the event-driven simulator.
func RCATimeline(n int, aPrev, bPrev, aNew, bNew uint64) (sums, carries []int) {
	if n < 1 || n > 16 {
		panic("analytic: RCATimeline supports 1..16 bits")
	}
	steady := func(a, b uint64) (c []uint64, s []uint64) {
		c = make([]uint64, n+1)
		s = make([]uint64, n)
		for i := 0; i < n; i++ {
			ai, bi := a>>uint(i)&1, b>>uint(i)&1
			s[i] = (ai ^ bi ^ c[i]) & 1
			c[i+1] = (ai&bi | ai&c[i] | bi&c[i]) & 1
		}
		return
	}
	c, s := steady(aPrev, bPrev)
	sums = make([]int, n)
	carries = make([]int, n)
	// Synchronous unit-delay sweep: every FA recomputes from the previous
	// instant's carries until the network is stable.
	for t := 1; t <= n+2; t++ {
		nc := make([]uint64, n+1)
		ns := make([]uint64, n)
		changed := false
		for i := 0; i < n; i++ {
			ai, bi := aNew>>uint(i)&1, bNew>>uint(i)&1
			ns[i] = (ai ^ bi ^ c[i]) & 1
			nc[i+1] = (ai&bi | ai&c[i] | bi&c[i]) & 1
		}
		for i := 0; i < n; i++ {
			if ns[i] != s[i] {
				sums[i]++
				changed = true
			}
			if nc[i+1] != c[i+1] {
				carries[i]++
				changed = true
			}
		}
		c, s = nc, ns
		if !changed {
			break
		}
	}
	return sums, carries
}

// RCAExact holds exact average transition ratios obtained by exhaustive
// enumeration of all 2^{4N} (previous, new) operand pairs.
type RCAExact struct {
	N int
	// Average ratios per signal and their useful components.
	SumTR, SumUFTR     []float64
	CarryTR, CarryUFTR []float64
	// WorstCaseProb is the exact probability that C_N makes N
	// transitions (the §3.1 worst case).
	WorstCaseProb float64
}

// ExhaustiveRCA enumerates every operand pair of an n-bit RCA (n ≤ 5 is
// practical: 2^{4n} cases) and returns exact average ratios. It validates
// equations 2–7 and WorstCaseProbability.
func ExhaustiveRCA(n int) RCAExact {
	if n < 1 || n > 6 {
		panic("analytic: ExhaustiveRCA supports 1..6 bits")
	}
	e := RCAExact{
		N:     n,
		SumTR: make([]float64, n), SumUFTR: make([]float64, n),
		CarryTR: make([]float64, n), CarryUFTR: make([]float64, n),
	}
	lim := uint64(1) << uint(n)
	worst := 0
	for ap := uint64(0); ap < lim; ap++ {
		for bp := uint64(0); bp < lim; bp++ {
			for an := uint64(0); an < lim; an++ {
				for bn := uint64(0); bn < lim; bn++ {
					sums, carries := RCATimeline(n, ap, bp, an, bn)
					for i := 0; i < n; i++ {
						e.SumTR[i] += float64(sums[i])
						if sums[i]%2 == 1 {
							e.SumUFTR[i]++
						}
						e.CarryTR[i] += float64(carries[i])
						if carries[i]%2 == 1 {
							e.CarryUFTR[i]++
						}
					}
					if carries[n-1] == n {
						worst++
					}
				}
			}
		}
	}
	total := float64(lim * lim * lim * lim)
	for i := 0; i < n; i++ {
		e.SumTR[i] /= total
		e.SumUFTR[i] /= total
		e.CarryTR[i] /= total
		e.CarryUFTR[i] /= total
	}
	e.WorstCaseProb = float64(worst) / total
	return e
}
