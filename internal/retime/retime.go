package retime

import (
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// Result describes a retimed circuit.
type Result struct {
	// Netlist is the rebuilt circuit.
	Netlist *netlist.Netlist
	// Period is the achieved minimum clock period under the delay model.
	Period int
	// Latency is the added pipeline depth: outputs lag the original
	// circuit by this many cycles.
	Latency int
	// Registers is the flipflop count of the rebuilt netlist.
	Registers int
}

// Options configures Retime.
type Options struct {
	// TargetPeriod is the desired clock period; 0 minimizes the period.
	TargetPeriod int
	// ExtraLatency adds pipeline stages on every input before retiming
	// (0 = pure retiming, I/O timing preserved).
	ExtraLatency int
	// Name names the resulting netlist; empty derives "<orig>_rt".
	Name string
}

// Retime re-registers a netlist under a delay model. With ExtraLatency=0
// it is a pure retiming (Leiserson–Saxe); with ExtraLatency=k it
// pipelines the circuit k levels deeper and then balances the registers
// for the target (or minimum) period — the paper's §5 transformation.
func Retime(n *netlist.Netlist, dm delay.Model, opts Options) (Result, error) {
	if dm == nil {
		dm = delay.Unit()
	}
	g := FromNetlist(n, dm, opts.ExtraLatency)
	var (
		c int
		r []int
	)
	if opts.TargetPeriod == 0 {
		c, r = g.MinPeriod()
	} else {
		var ok bool
		c = opts.TargetPeriod
		r, ok = g.Feasible(c)
		if !ok {
			return Result{}, fmt.Errorf("retime: period %d infeasible for %s with latency %d (min gate delay bound or insufficient registers)",
				c, n.Name, opts.ExtraLatency)
		}
	}
	out := g.Apply(r, opts.Name)
	return Result{
		Netlist:   out,
		Period:    g.ClockPeriod(r),
		Latency:   opts.ExtraLatency,
		Registers: out.NumDFFs(),
	}, nil
}

// Pipeline adds `stages` pipeline levels and retimes for the minimum
// achievable period: the paper's "introducing flipflops using retiming
// and pipelining". stages=0 is pure min-period retiming.
func Pipeline(n *netlist.Netlist, dm delay.Model, stages int) (Result, error) {
	return Retime(n, dm, Options{ExtraLatency: stages,
		Name: fmt.Sprintf("%s_p%d", n.Name, stages)})
}

// ForPeriod finds the smallest pipeline depth at which the target period
// becomes feasible and returns that retiming: "retimed for a different
// clock frequency" (paper §5). maxStages bounds the search.
func ForPeriod(n *netlist.Netlist, dm delay.Model, period, maxStages int) (Result, error) {
	if dm == nil {
		dm = delay.Unit()
	}
	for k := 0; k <= maxStages; k++ {
		g := FromNetlist(n, dm, k)
		if r, ok := g.Feasible(period); ok {
			out := g.Apply(r, fmt.Sprintf("%s_t%d", n.Name, period))
			return Result{Netlist: out, Period: g.ClockPeriod(r), Latency: k, Registers: out.NumDFFs()}, nil
		}
	}
	return Result{}, fmt.Errorf("retime: period %d not reachable for %s within %d pipeline stages",
		period, n.Name, maxStages)
}

// MinPeriodOf returns the minimum feasible clock period of the netlist
// under pure retiming (no added latency).
func MinPeriodOf(n *netlist.Netlist, dm delay.Model) int {
	if dm == nil {
		dm = delay.Unit()
	}
	c, _ := FromNetlist(n, dm, 0).MinPeriod()
	return c
}
