// Package retime implements Leiserson–Saxe retiming on gate-level
// netlists: extraction of the retiming graph (flipflop chains collapse to
// edge weights), minimum clock period search with the FEAS algorithm,
// explicit pipelining (added input latency), and reconstruction of a
// retimed netlist with register sharing across fanout.
//
// This is the paper's glitch-reduction mechanism: "flipflops can be
// introduced in the circuit by using retiming" [7][8]. Inserted flipflops
// cut unbalanced delay paths, so signals reconverge aligned and glitches
// disappear.
package retime

import (
	"fmt"

	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// Graph is a retiming graph: one vertex per combinational cell plus a
// host vertex modelling the environment; edges carry register counts.
//
// The host follows the Leiserson–Saxe formulation (retimings are
// normalized to r(host) = 0, so I/O latency is preserved and pipelining
// happens only through FromNetlist's explicit latency parameter) with one
// refinement: during path-delay computation the host does not propagate
// delay from its inputs to its outputs, because the environment latches
// primary outputs at the end of the cycle. This keeps combinational
// PI→PO paths from forming spurious zero-register cycles through the
// environment.
type Graph struct {
	n  *netlist.Netlist
	dm delay.Model

	// V is the number of vertices; vertex Host is the last.
	V    int
	Host int
	// d is the per-vertex propagation delay (max over output pins).
	d []int
	// Edges, one per netlist connection (driver pin → sink port).
	Edges []Edge

	// vertexOf maps a combinational CellID to its vertex index.
	vertexOf []int
	// cellOf maps vertex index back to the cell (NoCell for host).
	cellOf []netlist.CellID

	// latency is the explicit pipeline depth added on host→input edges.
	latency int

	out []([]int) // adjacency: edge indices leaving each vertex
}

// Edge is a weighted connection in the retiming graph.
type Edge struct {
	From, To int
	// FromPin is the output pin on the driving vertex; for the host it
	// is the primary-input index.
	FromPin int
	// W is the register count on the connection (existing DFFs plus
	// added pipeline latency for host edges).
	W int

	// Sink identification for netlist reconstruction: either a cell
	// input port (ToCell ≥ 0) or a primary output index (ToPO ≥ 0).
	ToCell netlist.CellID
	ToPort int
	ToPO   int
}

// root identifies where a net's value originates once DFF chains are
// collapsed: an output pin of a combinational vertex (or the host) plus
// the number of registers in between.
type root struct {
	vertex, pin, w int
}

// FromNetlist extracts the retiming graph of a netlist under a delay
// model, adding `latency` extra registers on every host→input edge
// (explicit pipelining; 0 preserves I/O timing exactly).
func FromNetlist(n *netlist.Netlist, dm delay.Model, latency int) *Graph {
	if latency < 0 {
		panic("retime: negative latency")
	}
	g := &Graph{n: n, dm: dm, latency: latency}

	g.vertexOf = make([]int, n.NumCells())
	for i := range g.vertexOf {
		g.vertexOf[i] = -1
	}
	for i := range n.Cells {
		if n.Cells[i].Type != netlist.DFF {
			g.vertexOf[i] = len(g.cellOf)
			g.cellOf = append(g.cellOf, netlist.CellID(i))
		}
	}
	g.Host = len(g.cellOf)
	g.V = g.Host + 1
	g.cellOf = append(g.cellOf, netlist.NoCell)

	g.d = make([]int, g.V)
	for v, cid := range g.cellOf {
		if cid == netlist.NoCell {
			continue
		}
		c := n.Cell(cid)
		if c.Type == netlist.Const0 || c.Type == netlist.Const1 {
			continue // constants settle once at start-up, delay 0
		}
		worst := 0
		for pin := range c.Out {
			if dd := dm.Delay(c, pin); dd > worst {
				worst = dd
			}
		}
		g.d[v] = worst
	}

	// Memoized root tracing through DFF chains.
	roots := make([]root, n.NumNets())
	for i := range roots {
		roots[i].vertex = -2 // unresolved
	}
	piIndex := make(map[netlist.NetID]int, len(n.PIs))
	for i, id := range n.PIs {
		piIndex[id] = i
	}
	var trace func(id netlist.NetID) root
	trace = func(id netlist.NetID) root {
		if roots[id].vertex != -2 {
			return roots[id]
		}
		net := n.Net(id)
		var r root
		switch {
		case net.IsPrimaryInput():
			r = root{vertex: g.Host, pin: piIndex[id], w: latency}
		case n.Cell(net.Driver).Type == netlist.DFF:
			r = trace(n.Cell(net.Driver).In[0])
			r.w++
		default:
			r = root{vertex: g.vertexOf[net.Driver], pin: net.DriverPin}
		}
		roots[id] = r
		return r
	}

	for i := range n.Cells {
		c := &n.Cells[i]
		if c.Type == netlist.DFF {
			continue
		}
		v := g.vertexOf[i]
		for port, in := range c.In {
			r := trace(in)
			g.Edges = append(g.Edges, Edge{
				From: r.vertex, FromPin: r.pin, To: v, W: r.w,
				ToCell: netlist.CellID(i), ToPort: port, ToPO: -1,
			})
		}
	}
	for j, po := range n.POs {
		r := trace(po)
		g.Edges = append(g.Edges, Edge{
			From: r.vertex, FromPin: r.pin, To: g.Host, W: r.w,
			ToCell: netlist.NoCell, ToPort: -1, ToPO: j,
		})
	}

	g.out = make([][]int, g.V)
	for i, e := range g.Edges {
		g.out[e.From] = append(g.out[e.From], i)
	}
	return g
}

// Latency returns the explicit pipeline depth the graph was built with.
func (g *Graph) Latency() int { return g.latency }

// Registers returns the total register count of the graph under a
// retiming (nil means the identity), accounting for fanout sharing: a
// driver pin whose edges need depths w1..wk contributes max(wi) registers
// (a shared chain), matching what Apply materializes.
func (g *Graph) Registers(r []int) int {
	type key struct{ v, pin int }
	maxDepth := map[key]int{}
	for _, e := range g.Edges {
		w := e.W
		if r != nil {
			w += r[e.To] - r[e.From]
		}
		if w < 0 {
			panic(fmt.Sprintf("retime: negative edge weight %d after retiming", w))
		}
		k := key{e.From, e.FromPin}
		if w > maxDepth[k] {
			maxDepth[k] = w
		}
	}
	total := 0
	for _, d := range maxDepth {
		total += d
	}
	return total
}
