package retime

import (
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
)

// TestPropertyPipelineEquivalence: pipelining any random feedforward
// netlist by k stages yields a circuit equivalent modulo k cycles of
// latency, with period no larger than the original.
func TestPropertyPipelineEquivalence(t *testing.T) {
	rng := stimulus.NewPRNG(4242)
	for trial := 0; trial < 20; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(4)),
			Gates:        10 + int(rng.Uintn(40)),
			Outputs:      3,
			WithCompound: trial%2 == 0,
			WithDFFs:     trial%3 == 0,
		})
		stages := 1 + int(rng.Uintn(3))
		res, err := Pipeline(n, delay.Unit(), stages)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := FromNetlist(n, delay.Unit(), 0)
		if res.Period > g.ClockPeriod(nil) {
			t.Fatalf("trial %d: pipelined period %d exceeds original %d",
				trial, res.Period, g.ClockPeriod(nil))
		}

		so := sim.New(n, sim.Options{})
		sr := sim.New(res.Netlist, sim.Options{})
		seed := rng.Uint64()
		srcO := stimulus.NewRandom(n.InputWidth(), seed)
		srcR := stimulus.NewRandom(n.InputWidth(), seed)
		var history []logic.Vector
		warm := stages + n.LogicDepth() + 2
		for cycle := 0; cycle < 50; cycle++ {
			if err := so.Step(srcO.Next()); err != nil {
				t.Fatal(err)
			}
			history = append(history, append(logic.Vector(nil), so.Outputs()...))
			if err := sr.Step(srcR.Next()); err != nil {
				t.Fatal(err)
			}
			if cycle < warm {
				continue
			}
			want := history[cycle-stages]
			got := sr.Outputs()
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("trial %d (stages %d) cycle %d: output %d = %v, want %v",
						trial, stages, cycle, j, got[j], want[j])
				}
			}
		}
	}
}

// TestPropertyRegisterCountsConsistent: the graph's register prediction
// equals the rebuilt netlist's DFF count for random circuits and random
// feasible periods.
func TestPropertyRegisterCountsConsistent(t *testing.T) {
	rng := stimulus.NewPRNG(31415)
	for trial := 0; trial < 15; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs: 4, Gates: 25, Outputs: 2, WithDFFs: true,
		})
		stages := int(rng.Uintn(3))
		g := FromNetlist(n, delay.Unit(), stages)
		c, r := g.MinPeriod()
		out := g.Apply(r, "")
		if predicted := g.Registers(r); predicted != out.NumDFFs() {
			t.Fatalf("trial %d: predicted %d registers, netlist has %d", trial, predicted, out.NumDFFs())
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d: rebuilt netlist invalid: %v", trial, err)
		}
		if got := out.CriticalPathLength(delay.AsDelayFunc(delay.Unit())); got > c+1 {
			// The netlist CP counts const cells as delay-1; allow +1.
			t.Fatalf("trial %d: netlist CP %d far above promised period %d", trial, got, c)
		}
	}
}

// TestPropertyFeasibilityMonotone: if period c is feasible then c+1 is,
// and deeper pipelines never need longer periods.
func TestPropertyFeasibilityMonotone(t *testing.T) {
	rng := stimulus.NewPRNG(888)
	for trial := 0; trial < 10; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs: 4, Gates: 30, Outputs: 2,
		})
		g0 := FromNetlist(n, delay.Unit(), 0)
		cp := g0.ClockPeriod(nil)
		prevMin := cp + 1
		for stages := 0; stages <= 3; stages++ {
			g := FromNetlist(n, delay.Unit(), stages)
			c, _ := g.MinPeriod()
			if c > prevMin {
				t.Fatalf("trial %d: min period grew from %d to %d at %d stages",
					trial, prevMin, c, stages)
			}
			prevMin = c
			// Feasibility monotone in c.
			feasibleAt := func(cc int) bool { _, ok := g.Feasible(cc); return ok }
			if !feasibleAt(c) {
				t.Fatalf("trial %d: min period %d reported infeasible", trial, c)
			}
			if c > 1 && feasibleAt(c-1) {
				t.Fatalf("trial %d: c-1=%d feasible but MinPeriod said %d", trial, c-1, c)
			}
			if !feasibleAt(c + 1) {
				t.Fatalf("trial %d: c+1 infeasible", trial)
			}
		}
	}
}
