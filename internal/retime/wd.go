package retime

import "math"

// WD holds the Leiserson–Saxe W and D matrices: for every ordered vertex
// pair (u,v) connected by a path, W[u][v] is the minimum register count
// over all u→v paths and D[u][v] the maximum total vertex delay among
// the minimum-register paths. Unreachable pairs hold W = +inf.
//
// The matrices are the classic O(V³) formulation of retiming
// feasibility (Theorem 7 of Leiserson–Saxe): a retiming with period ≤ c
// exists iff the difference-constraint system
//
//	r(u) − r(v) ≤ w(e)          for every edge u→v
//	r(u) − r(v) ≤ W[u][v] − 1   whenever D[u][v] > c
//
// is satisfiable. This package's production path uses FEAS (algo.go);
// WD exists as an independently derived oracle the property tests check
// FEAS against.
type WD struct {
	W, D [][]int
}

const inf = math.MaxInt32 / 4

// ComputeWD builds the matrices by Floyd–Warshall over lexicographic
// (registers, −delay) path costs. Paths may not pass *through* the host
// (the environment does not propagate combinational delay), matching the
// semantics of deltas. O(V³): intended for moderate graphs.
func (g *Graph) ComputeWD() *WD {
	v := g.V
	w := make([][]int, v)
	neg := make([][]int, v) // accumulated −d(u) along the path
	for i := range w {
		w[i] = make([]int, v)
		neg[i] = make([]int, v)
		for j := range w[i] {
			w[i][j] = inf
		}
	}
	better := func(w1, n1, w2, n2 int) bool {
		if w1 != w2 {
			return w1 < w2
		}
		return n1 < n2
	}
	for _, e := range g.Edges {
		cost := e.W
		nd := -g.d[e.From]
		if better(cost, nd, w[e.From][e.To], neg[e.From][e.To]) {
			w[e.From][e.To] = cost
			neg[e.From][e.To] = nd
		}
	}
	for k := 0; k < v; k++ {
		if k == g.Host {
			continue // no combinational paths through the environment
		}
		for i := 0; i < v; i++ {
			if w[i][k] >= inf {
				continue
			}
			for j := 0; j < v; j++ {
				if w[k][j] >= inf {
					continue
				}
				nw, nn := w[i][k]+w[k][j], neg[i][k]+neg[k][j]
				if better(nw, nn, w[i][j], neg[i][j]) {
					w[i][j] = nw
					neg[i][j] = nn
				}
			}
		}
	}
	d := make([][]int, v)
	for i := range d {
		d[i] = make([]int, v)
		for j := range d[i] {
			if w[i][j] >= inf {
				d[i][j] = -1
				continue
			}
			d[i][j] = g.d[j] - neg[i][j]
		}
		// The empty path: W(u,u)=0, D(u,u)=d(u). A cycle may offer a
		// lower-cost non-empty path only with w ≥ 1 (legal circuits),
		// which never beats (0, d(u)) lexicographically... unless a
		// zero-weight cycle exists, which Feasible rejects anyway.
		if w[i][i] > 0 || w[i][i] >= inf {
			w[i][i] = 0
			d[i][i] = g.d[i]
		}
	}
	return &WD{W: w, D: d}
}

// FeasibleWD decides period feasibility from the matrices by solving the
// difference-constraint system with Bellman–Ford. It returns a legal
// retiming normalized to r[Host] = 0, or ok = false.
func (g *Graph) FeasibleWD(wd *WD, c int) (r []int, ok bool) {
	type cEdge struct{ from, to, w int }
	var ces []cEdge
	// r(u) − r(v) ≤ w  ⇔  edge v→u with weight w.
	for _, e := range g.Edges {
		ces = append(ces, cEdge{from: e.To, to: e.From, w: e.W})
	}
	for u := 0; u < g.V; u++ {
		for v := 0; v < g.V; v++ {
			if wd.W[u][v] >= inf || wd.D[u][v] < 0 {
				continue
			}
			if wd.D[u][v] > c {
				if u == v {
					return nil, false // a single vertex/cycle exceeds c
				}
				ces = append(ces, cEdge{from: v, to: u, w: wd.W[u][v] - 1})
			}
		}
	}
	dist := make([]int, g.V) // virtual source at distance 0 to all
	for iter := 0; iter < g.V; iter++ {
		changed := false
		for _, e := range ces {
			if dist[e.from]+e.w < dist[e.to] {
				dist[e.to] = dist[e.from] + e.w
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == g.V-1 {
			return nil, false // negative cycle: infeasible
		}
	}
	h := dist[g.Host]
	for v := range dist {
		dist[v] -= h
	}
	return dist, true
}

// MinPeriodWD binary-searches the minimum period using the W/D oracle
// over the distinct D values (the classic OPT1 algorithm).
func (g *Graph) MinPeriodWD() (int, []int) {
	wd := g.ComputeWD()
	// Candidate periods are the distinct finite D entries.
	seen := map[int]bool{}
	var cands []int
	for i := range wd.D {
		for j := range wd.D[i] {
			if d := wd.D[i][j]; d >= 0 && !seen[d] {
				seen[d] = true
				cands = append(cands, d)
			}
		}
	}
	sortInts(cands)
	lo, hi := 0, len(cands)-1
	bestC, bestR := -1, []int(nil)
	for lo <= hi {
		mid := (lo + hi) / 2
		if r, ok := g.FeasibleWD(wd, cands[mid]); ok {
			bestC, bestR = cands[mid], r
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestR == nil {
		// Degenerate graphs (no candidates): identity.
		return g.ClockPeriod(nil), make([]int, g.V)
	}
	return bestC, bestR
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
