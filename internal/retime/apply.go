package retime

import (
	"sort"

	"glitchsim/netlist"
)

// Apply materializes the retimed netlist: combinational cells are copied,
// every connection receives w + r(to) − r(from) registers, and registers
// on the same driver pin are shared as a single DFF chain tapped at the
// required depths. Primary inputs/outputs and their bus names are
// preserved; internal bus names are dropped (their nets have no unique
// position after retiming).
func (g *Graph) Apply(r []int, name string) *netlist.Netlist {
	if r == nil {
		r = make([]int, g.V)
	}
	if len(r) != g.V {
		panic("retime: retiming vector has wrong length")
	}
	if r[g.Host] != 0 {
		panic("retime: retiming must be normalized to r[host] = 0")
	}
	if name == "" {
		name = g.n.Name + "_rt"
	}
	b := netlist.NewBuilder(name)

	// Primary inputs, preserving names and buses.
	newPI := make([]netlist.NetID, len(g.n.PIs))
	for i, id := range g.n.PIs {
		newPI[i] = b.Input(g.n.Net(id).Name)
	}
	piBus := map[netlist.NetID]int{}
	for i, id := range g.n.PIs {
		piBus[id] = i
	}
	for busName, ids := range g.n.Buses {
		allPI := len(ids) > 0
		bus := make([]netlist.NetID, len(ids))
		for i, id := range ids {
			idx, ok := piBus[id]
			if !ok {
				allPI = false
				break
			}
			bus[i] = newPI[idx]
		}
		if allPI {
			b.NameBus(busName, bus)
		}
	}

	// Clone combinational cells with placeholder inputs (rewired below
	// once every driver net exists); this tolerates arbitrary sequential
	// cycles.
	placeholder := b.Const(0)
	newOut := make([][]netlist.NetID, g.V) // vertex -> new output nets
	newCellID := make([]netlist.CellID, g.V)
	for v, cid := range g.cellOf {
		if cid == netlist.NoCell {
			continue
		}
		c := g.n.Cell(cid)
		ins := make([]netlist.NetID, len(c.In))
		for i := range ins {
			ins[i] = placeholder
		}
		newCellID[v] = netlist.CellID(b.NumCells())
		newOut[v] = b.AddCell(c.Type, c.Name, ins...)
	}

	// Register chains per driver pin, built lazily to the maximum depth
	// any sink requires. taps[k] is the signal delayed by k registers.
	type key struct{ v, pin int }
	chains := map[key][]netlist.NetID{}
	tap := func(v, pin, depth int) netlist.NetID {
		k := key{v, pin}
		chain, ok := chains[k]
		if !ok {
			var src netlist.NetID
			if v == g.Host {
				src = newPI[pin]
			} else {
				src = newOut[v][pin]
			}
			chain = []netlist.NetID{src}
		}
		for len(chain) <= depth {
			chain = append(chain, b.DFF(chain[len(chain)-1]))
		}
		chains[k] = chain
		return chain[depth]
	}

	// Wire every edge.
	newPO := make([]netlist.NetID, len(g.n.POs))
	for j := range newPO {
		newPO[j] = netlist.NoNet
	}
	for _, e := range g.Edges {
		w := g.wr(e, r)
		src := tap(e.From, e.FromPin, w)
		if e.ToPO >= 0 {
			newPO[e.ToPO] = src
			continue
		}
		b.Rewire(newCellID[g.vertexOf[e.ToCell]], e.ToPort, src)
	}

	// Primary outputs, in the exact original order so simulation vectors
	// stay comparable.
	for j, id := range newPO {
		if id == netlist.NoNet {
			panic("retime: primary output " + g.n.Net(g.n.POs[j]).Name + " was never wired")
		}
		b.Output("", id)
	}

	// Recreate output bus names: a bus whose nets are all primary
	// outputs maps to the corresponding retimed output nets.
	poIndex := map[netlist.NetID][]int{}
	for j, id := range g.n.POs {
		poIndex[id] = append(poIndex[id], j)
	}
	busNames := make([]string, 0, len(g.n.Buses))
	for busName := range g.n.Buses {
		busNames = append(busNames, busName)
	}
	sort.Strings(busNames)
	for _, busName := range busNames {
		ids := g.n.Buses[busName]
		ok := len(ids) > 0
		bus := make([]netlist.NetID, 0, len(ids))
		used := map[netlist.NetID]int{}
		for _, id := range ids {
			list := poIndex[id]
			if used[id] >= len(list) {
				ok = false
				break
			}
			bus = append(bus, newPO[list[used[id]]])
			used[id]++
		}
		if ok {
			b.NameBus(busName, bus)
		}
	}

	return b.MustBuild()
}
