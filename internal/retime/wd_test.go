package retime

import (
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
)

func TestWDMatricesRCA(t *testing.T) {
	// 4-bit FA-cell RCA, unit delay, pipelined by 1: check a few matrix
	// entries by hand. Vertices: const0, FA0..FA3, host.
	n := circuits.NewRCA(4, circuits.Cells)
	g := FromNetlist(n, delay.Unit(), 1)
	wd := g.ComputeWD()
	// Find the FA vertices by their cell delays (consts have d=0).
	var fas []int
	for v := 0; v < g.V; v++ {
		if g.d[v] == 1 {
			fas = append(fas, v)
		}
	}
	if len(fas) != 4 {
		t.Fatalf("expected 4 FA vertices, got %d", len(fas))
	}
	// Carry chain FA0 -> FA3: zero registers, delay 4.
	if wd.W[fas[0]][fas[3]] != 0 {
		t.Errorf("W(FA0,FA3) = %d, want 0", wd.W[fas[0]][fas[3]])
	}
	if wd.D[fas[0]][fas[3]] != 4 {
		t.Errorf("D(FA0,FA3) = %d, want 4", wd.D[fas[0]][fas[3]])
	}
	// Host -> FA0 carries the pipeline register.
	if wd.W[g.Host][fas[0]] != 1 {
		t.Errorf("W(host,FA0) = %d, want 1", wd.W[g.Host][fas[0]])
	}
	// Diagonal: empty path.
	if wd.W[fas[2]][fas[2]] != 0 || wd.D[fas[2]][fas[2]] != 1 {
		t.Errorf("diagonal entry wrong: W=%d D=%d", wd.W[fas[2]][fas[2]], wd.D[fas[2]][fas[2]])
	}
}

// TestPropertyFEASMatchesWDOracle: the production FEAS algorithm and the
// independently derived W/D + Bellman-Ford oracle must agree on
// feasibility for every period, and find the same minimum period, on
// random circuits.
func TestPropertyFEASMatchesWDOracle(t *testing.T) {
	rng := stimulus.NewPRNG(123)
	for trial := 0; trial < 20; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(3)),
			Gates:        8 + int(rng.Uintn(25)),
			Outputs:      2,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 == 0,
		})
		stages := int(rng.Uintn(3))
		g := FromNetlist(n, delay.Unit(), stages)
		wd := g.ComputeWD()
		cp := g.ClockPeriod(nil)
		for c := 0; c <= cp+1; c++ {
			_, okFEAS := g.Feasible(c)
			rWD, okWD := g.FeasibleWD(wd, c)
			if okFEAS != okWD {
				t.Fatalf("trial %d stages %d period %d: FEAS says %v, WD oracle says %v",
					trial, stages, c, okFEAS, okWD)
			}
			if !okWD {
				continue
			}
			// The oracle's retiming must itself be legal and meet c.
			for _, e := range g.Edges {
				if g.wr(e, rWD) < 0 {
					t.Fatalf("trial %d period %d: WD retiming has negative edge weight", trial, c)
				}
			}
			if got := g.ClockPeriod(rWD); got > c {
				t.Fatalf("trial %d: WD retiming achieves period %d > %d", trial, got, c)
			}
			if rWD[g.Host] != 0 {
				t.Fatalf("trial %d: WD retiming not normalized", trial)
			}
		}
		cFEAS, _ := g.MinPeriod()
		cWD, rWD := g.MinPeriodWD()
		if cFEAS != cWD {
			t.Fatalf("trial %d: min period FEAS %d vs WD %d", trial, cFEAS, cWD)
		}
		if got := g.ClockPeriod(rWD); got > cWD {
			t.Fatalf("trial %d: WD min-period retiming does not achieve its period", trial)
		}
	}
}

func TestMinPeriodWDOnCombinational(t *testing.T) {
	n := circuits.NewRCA(8, circuits.Cells)
	g := FromNetlist(n, delay.Unit(), 0)
	c, r := g.MinPeriodWD()
	if c != 8 {
		t.Errorf("combinational RCA min period %d, want 8", c)
	}
	for v, rv := range r {
		_ = v
		if rv != 0 {
			// Any legal retiming of an unregistered feedforward circuit
			// keeps all weights 0 only if r is constant; normalized to
			// host=0 that means all-zero.
			t.Errorf("nontrivial retiming %v of combinational circuit", r)
			break
		}
	}
}
