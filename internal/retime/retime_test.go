package retime

import (
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// equivalent simulates both netlists on the same random stimulus and
// checks that the retimed outputs equal the original outputs delayed by
// `latency` cycles. Warm-up cycles (X or pipeline fill) are skipped.
func equivalent(t *testing.T, orig, rt *netlist.Netlist, latency, cycles int, seed uint64) {
	t.Helper()
	if orig.InputWidth() != rt.InputWidth() || orig.OutputWidth() != rt.OutputWidth() {
		t.Fatalf("interface mismatch: %d/%d vs %d/%d",
			orig.InputWidth(), orig.OutputWidth(), rt.InputWidth(), rt.OutputWidth())
	}
	so := sim.New(orig, sim.Options{})
	sr := sim.New(rt, sim.Options{})
	srcO := stimulus.NewRandom(orig.InputWidth(), seed)
	srcR := stimulus.NewRandom(orig.InputWidth(), seed)
	var history []logic.Vector
	warm := latency + orig.LogicDepth() + 2
	for i := 0; i < cycles; i++ {
		if err := so.Step(srcO.Next()); err != nil {
			t.Fatal(err)
		}
		history = append(history, append(logic.Vector(nil), so.Outputs()...))
		if err := sr.Step(srcR.Next()); err != nil {
			t.Fatal(err)
		}
		if i < warm || i-latency < 0 {
			continue
		}
		want := history[i-latency]
		got := sr.Outputs()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("cycle %d output %d (%s): got %v, want %v",
					i, j, rt.Net(rt.POs[j]).Name, got[j], want[j])
			}
		}
	}
}

func TestPureRetimingPreservesRCA(t *testing.T) {
	n := circuits.NewRCA(8, circuits.Cells)
	res, err := Retime(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A combinational circuit cannot be sped up by pure retiming: the
	// period stays at the 8-FA carry chain (constants settle at start-up
	// and contribute no delay).
	if res.Period != 8 {
		t.Errorf("pure retiming changed period to %d, want 8", res.Period)
	}
	if res.Registers != 0 {
		t.Errorf("pure retiming of combinational circuit created %d registers", res.Registers)
	}
	equivalent(t, n, res.Netlist, 0, 100, 1)
}

func TestPipelineRCAHalvesPeriod(t *testing.T) {
	n := circuits.NewRCA(8, circuits.Cells)
	cp := n.CriticalPathLength(delay.AsDelayFunc(delay.Unit()))
	res, err := Pipeline(n, delay.Unit(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period > (cp+1)/2+1 {
		t.Errorf("1-stage pipeline period %d, expected about half of %d", res.Period, cp)
	}
	if res.Registers == 0 {
		t.Error("pipelining created no registers")
	}
	equivalent(t, n, res.Netlist, 1, 150, 2)
}

func TestDeepPipelineReachesUnitPeriod(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	cp := n.CriticalPathLength(delay.AsDelayFunc(delay.Unit()))
	res, err := ForPeriod(n, delay.Unit(), 1, cp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 1 {
		t.Errorf("period %d, want 1", res.Period)
	}
	equivalent(t, n, res.Netlist, res.Latency, 120, 3)
}

func TestForPeriodInfeasible(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	// Period 0 can never be met (unit-delay cells).
	if _, err := ForPeriod(n, delay.Unit(), 0, 8); err == nil {
		t.Fatal("expected infeasibility error")
	}
	if _, err := Retime(n, delay.Unit(), Options{TargetPeriod: 1}); err == nil {
		t.Fatal("expected error: period 1 without extra latency")
	}
}

func TestPipelineMultiplier(t *testing.T) {
	n := circuits.NewWallaceMultiplier(4, circuits.Cells)
	res, err := Pipeline(n, delay.Unit(), 2)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, n, res.Netlist, 2, 150, 4)
}

func TestPipelineGateLevelDirectionDetector(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 4, Style: circuits.Gates})
	res, err := Pipeline(n, delay.Unit(), 1)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, n, res.Netlist, 1, 120, 5)
}

func TestRetimeSequentialCircuit(t *testing.T) {
	// An accumulator-style circuit with an existing register: retiming
	// must preserve behaviour including the feedback loop.
	b := netlist.NewBuilder("acc")
	x := b.InputBus("x", 4)
	seed := b.Const(0)
	// sum = DFF(sum + x): build adder reading a placeholder, then rewire.
	placeholder := []netlist.NetID{seed, seed, seed, seed}
	sum, _ := circuits.RippleAdd(b, circuits.Cells, x, placeholder, b.Const(0))
	reg := b.RegisterBus(sum)
	for i, fa := range []int{0, 1, 2, 3} {
		// FA cells are cells 2..5 (after two consts); rewire port 1.
		_ = fa
		b.Rewire(netlist.CellID(2+i), 1, reg[i])
	}
	b.OutputBus("acc", reg)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retime(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, n, res.Netlist, 0, 100, 6)
}

func TestRegistersMatchNetlistCount(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 4, Style: circuits.Cells})
	for stages := 0; stages <= 3; stages++ {
		g := FromNetlist(n, delay.Unit(), stages)
		c, r := g.MinPeriod()
		out := g.Apply(r, "")
		if got := g.Registers(r); got != out.NumDFFs() {
			t.Errorf("stages %d: graph predicts %d registers, netlist has %d", stages, got, out.NumDFFs())
		}
		if got := out.CriticalPathLength(delay.AsDelayFunc(delay.Unit())); got > c {
			t.Errorf("stages %d: netlist critical path %d exceeds promised period %d", stages, got, c)
		}
	}
}

func TestMoreStagesShorterPeriod(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 6, Style: circuits.Cells})
	prevPeriod := 1 << 30
	prevRegs := -1
	for stages := 0; stages <= 4; stages++ {
		res, err := Pipeline(n, delay.Unit(), stages)
		if err != nil {
			t.Fatal(err)
		}
		if res.Period > prevPeriod {
			t.Errorf("stages %d: period %d grew from %d", stages, res.Period, prevPeriod)
		}
		if stages > 0 && res.Registers <= prevRegs {
			t.Errorf("stages %d: registers %d did not grow from %d", stages, res.Registers, prevRegs)
		}
		prevPeriod, prevRegs = res.Period, res.Registers
	}
}

func TestPipeliningKillsGlitchesAtCut(t *testing.T) {
	// The §5 claim (Figure 9): flipflops at the inputs of an operation
	// align its operand arrival times, so glitches vanish downstream.
	// Build xor(x, buf(buf(x))): the skewed reconvergence glitches every
	// time x toggles; a 1-deep pipeline re-aligns it.
	build := func() *netlist.Netlist {
		b := netlist.NewBuilder("skew")
		x := b.Input("x")
		slow := b.Buf(b.Buf(x))
		y := b.Xor(x, slow)
		b.Output("y", y)
		return b.MustBuild()
	}
	count := func(n *netlist.Netlist) (useless uint64) {
		s := sim.New(n, sim.Options{})
		mon := &uselessCounter{n: n}
		s.AttachMonitor(mon)
		for i := 0; i < 40; i++ {
			if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return mon.useless
	}
	orig := build()
	if u := count(orig); u == 0 {
		t.Fatal("expected glitches in the skewed circuit")
	}
	res, err := Pipeline(build(), delay.Unit(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != 1 {
		t.Fatalf("period %d, want fully pipelined 1", res.Period)
	}
	if u := count(res.Netlist); u != 0 {
		t.Errorf("fully pipelined circuit still has %d useless transitions", u)
	}
}

// uselessCounter tallies useless transitions by the parity rule without
// importing package core (which would create an import cycle in tests).
type uselessCounter struct {
	n       *netlist.Netlist
	cur     map[netlist.NetID]int
	useless uint64
}

func (u *uselessCounter) OnChange(net netlist.NetID, _, _ int, old, _ logic.V) {
	if !old.Known() || u.n.Net(net).IsPrimaryInput() {
		return
	}
	if u.cur == nil {
		u.cur = map[netlist.NetID]int{}
	}
	u.cur[net]++
}

func (u *uselessCounter) OnCycleEnd(int) {
	for net, n := range u.cur {
		if n%2 == 1 {
			u.useless += uint64(n - 1)
		} else {
			u.useless += uint64(n)
		}
		delete(u.cur, net)
	}
}

func TestApplyPanicsOnBadRetiming(t *testing.T) {
	n := circuits.NewRCA(2, circuits.Cells)
	g := FromNetlist(n, delay.Unit(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := make([]int, g.V)
	bad[g.Host] = 1 // not normalized
	g.Apply(bad, "")
}

func TestFromNetlistNegativeLatencyPanics(t *testing.T) {
	n := circuits.NewRCA(2, circuits.Cells)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromNetlist(n, delay.Unit(), -1)
}

func TestBusNamesSurviveRetiming(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	res, err := Pipeline(n, delay.Unit(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := res.Netlist
	if len(rt.Bus("a")) != 4 || len(rt.Bus("b")) != 4 {
		t.Error("input buses lost")
	}
	if len(rt.Bus("s")) != 4 {
		t.Error("output bus lost")
	}
	if len(rt.Bus("cout")) != 1 {
		t.Error("single-bit output bus lost")
	}
}

func TestMinPeriodOf(t *testing.T) {
	n := circuits.NewRCA(8, circuits.Cells)
	if got := MinPeriodOf(n, delay.Unit()); got != 8 {
		t.Errorf("min period %d, want 8 (combinational RCA cannot be retimed faster)", got)
	}
}
