package retime

// deltas computes the Leiserson–Saxe Δ values on the retimed graph: for
// every vertex, the longest zero-register path delay ending at (and
// including) that vertex. The host is treated as non-propagating — the
// environment latches outputs at the cycle boundary, so a primary-output
// arrival never extends a primary-input path — which breaks the spurious
// zero-register cycle a combinational PI→PO path would otherwise form
// through the environment. Δ(host) still accumulates the worst output
// arrival time so output settling constrains the period.
//
// It returns ok=false when the zero-weight subgraph (host excluded) is
// cyclic, i.e. the retiming would create a combinational loop.
func (g *Graph) deltas(r []int) (delta []int, ok bool) {
	indeg := make([]int, g.V)
	for _, e := range g.Edges {
		if e.To != g.Host && g.wr(e, r) == 0 {
			indeg[e.To]++
		}
	}
	delta = make([]int, g.V)
	queue := make([]int, 0, g.V)
	for v := 0; v < g.V; v++ {
		delta[v] = g.d[v]
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, ei := range g.out[u] {
			e := g.Edges[ei]
			if g.wr(e, r) != 0 {
				continue
			}
			if delta[u]+g.d[e.To] > delta[e.To] {
				delta[e.To] = delta[u] + g.d[e.To]
			}
			if e.To == g.Host {
				continue // absorb: do not gate or re-enqueue the host
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return delta, seen == g.V
}

func (g *Graph) wr(e Edge, r []int) int {
	if r == nil {
		return e.W
	}
	return e.W + r[e.To] - r[e.From]
}

// ClockPeriod returns the minimum clock period of the graph under a
// retiming (nil = identity): the longest zero-register path delay,
// including output settling. It panics if the retimed graph has a
// combinational cycle, which cannot happen for retimings produced by
// this package.
func (g *Graph) ClockPeriod(r []int) int {
	delta, ok := g.deltas(r)
	if !ok {
		panic("retime: combinational cycle in retimed graph")
	}
	return maxInt(delta)
}

// Feasible runs the FEAS algorithm: it returns a legal retiming
// achieving clock period ≤ c, or ok=false if none exists. The returned
// retiming is normalized so r[Host] = 0: I/O latency is preserved, and
// pipelining is only introduced through FromNetlist's latency parameter.
func (g *Graph) Feasible(c int) (r []int, ok bool) {
	for _, d := range g.d {
		if d > c {
			return nil, false // a single cell already exceeds the period
		}
	}
	r = make([]int, g.V)
	for iter := 0; iter < g.V-1; iter++ {
		delta, acyclic := g.deltas(r)
		if !acyclic {
			return nil, false
		}
		changed := false
		for v := 0; v < g.V; v++ {
			if delta[v] > c {
				r[v]++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if delta, acyclic := g.deltas(r); !acyclic || maxInt(delta) > c {
		return nil, false
	}
	// Legality: every retimed edge weight must be non-negative. Weights
	// are invariant under the uniform shift below, so checking before
	// normalization suffices.
	for _, e := range g.Edges {
		if g.wr(e, r) < 0 {
			return nil, false
		}
	}
	h := r[g.Host]
	for v := range r {
		r[v] -= h
	}
	return r, true
}

// MinPeriod binary-searches the smallest feasible clock period and
// returns it with a retiming that achieves it.
func (g *Graph) MinPeriod() (c int, r []int) {
	lo := 0
	for _, d := range g.d {
		if d > lo {
			lo = d
		}
	}
	hi := g.ClockPeriod(nil) // identity retiming is always legal
	if hi < lo {
		hi = lo
	}
	best, bestR := hi, []int(nil)
	for lo <= hi {
		mid := (lo + hi) / 2
		if rr, ok := g.Feasible(mid); ok {
			best, bestR = mid, rr
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestR == nil {
		bestR = make([]int, g.V)
	}
	return best, bestR
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
