package stimulus

import (
	"testing"

	"glitchsim/internal/logic"
)

// TestWideRandomMatchesRandomLanes: lane l of the packed stream must
// replay Random(width, seeds[l]) bit-exactly, cycle after cycle — the
// property that makes a wide-kernel lane identical to a scalar run.
// Widths straddle the 64-bit transpose chunk boundary on purpose.
func TestWideRandomMatchesRandomLanes(t *testing.T) {
	for _, tc := range []struct {
		width, lanes int
	}{
		{1, 64}, {16, 64}, {63, 7}, {64, 64}, {65, 3}, {130, 64}, {32, 1},
	} {
		seeds := make([]uint64, tc.lanes)
		scalars := make([]*Random, tc.lanes)
		for l := range seeds {
			seeds[l] = uint64(l)*0x9E3779B9 + 12345
			scalars[l] = NewRandom(tc.width, seeds[l])
		}
		wide := NewWideRandom(tc.width, seeds)
		if wide.Width() != tc.width || wide.Lanes() != tc.lanes {
			t.Fatalf("width/lanes = %d/%d", wide.Width(), wide.Lanes())
		}
		buf := make([]logic.W, tc.width)
		for cycle := 0; cycle < 20; cycle++ {
			wide.NextWide(buf)
			for l, s := range scalars {
				want := s.Next()
				for j := 0; j < tc.width; j++ {
					if got := buf[j].Lane(l); got != want[j] {
						t.Fatalf("width=%d lanes=%d cycle=%d lane=%d bit=%d: wide %v, scalar %v",
							tc.width, tc.lanes, cycle, l, j, got, want[j])
					}
				}
			}
			// Unseeded lanes hold constant 0.
			for l := tc.lanes; l < logic.Lanes; l++ {
				for j := 0; j < tc.width; j++ {
					if buf[j].Lane(l) != logic.L0 {
						t.Fatalf("unseeded lane %d bit %d = %v, want 0", l, j, buf[j].Lane(l))
					}
				}
			}
		}
	}
}

func TestWideRandomPanicsOnTooManySeeds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 seeds accepted")
		}
	}()
	NewWideRandom(4, make([]uint64, logic.Lanes+1))
}
