package stimulus

import (
	"testing"
	"testing/quick"

	"glitchsim/internal/logic"
)

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestPRNGKnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the original
	// public-domain C implementation by Sebastiano Vigna).
	p := NewPRNG(0)
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	for i, w := range want {
		if got := p.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestPRNGSeedsDiffer(t *testing.T) {
	a, b := NewPRNG(1), NewPRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical words", same)
	}
}

func TestUintnRange(t *testing.T) {
	p := NewPRNG(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		n = n%1000 + 1
		v := p.Uintn(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPRNG(1).Uintn(0)
}

func TestUintnUniformity(t *testing.T) {
	p := NewPRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[p.Uintn(n)]++
	}
	for i, c := range counts {
		if c < trials/n*8/10 || c > trials/n*12/10 {
			t.Errorf("bucket %d count %d far from %d", i, c, trials/n)
		}
	}
}

func TestBitsWidthAndBalance(t *testing.T) {
	p := NewPRNG(5)
	ones := 0
	const width, cycles = 130, 200
	for i := 0; i < cycles; i++ {
		v := p.Bits(width)
		if len(v) != width {
			t.Fatalf("width %d, want %d", len(v), width)
		}
		for _, b := range v {
			if !b.Known() {
				t.Fatal("unknown bit from PRNG")
			}
			if b == logic.L1 {
				ones++
			}
		}
	}
	total := width * cycles
	if ones < total*45/100 || ones > total*55/100 {
		t.Errorf("ones fraction %d/%d far from 1/2", ones, total)
	}
}

func TestFloat64Range(t *testing.T) {
	p := NewPRNG(11)
	for i := 0; i < 1000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandomSource(t *testing.T) {
	s := NewRandom(17, 3)
	if s.Width() != 17 {
		t.Fatalf("width %d", s.Width())
	}
	v := s.Next()
	if len(v) != 17 || !v.Known() {
		t.Fatal("bad vector")
	}
	// Determinism across instances.
	s2 := NewRandom(17, 3)
	for i := 0; i < 50; i++ {
		a := append(logic.Vector(nil), s.Next()...)
		b := s2.Next()
		_ = a
		_ = b
	}
	s3, s4 := NewRandom(8, 9), NewRandom(8, 9)
	for i := 0; i < 50; i++ {
		a, b := s3.Next(), s4.Next()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("same-seed sources diverged cycle %d bit %d", i, j)
			}
		}
	}
}

func TestConstantSource(t *testing.T) {
	v := logic.VectorFromUint(0b1010, 4)
	s := NewConstant(v)
	if s.Width() != 4 {
		t.Fatal("width")
	}
	for i := 0; i < 3; i++ {
		got := s.Next()
		if got.Uint() != 0b1010 {
			t.Fatalf("cycle %d: got %v", i, got)
		}
	}
}

func TestSequenceSource(t *testing.T) {
	a := logic.VectorFromUint(1, 3)
	b := logic.VectorFromUint(6, 3)
	s := NewSequence(a, b)
	want := []uint64{1, 6, 1, 6, 1}
	for i, w := range want {
		if got := s.Next().Uint(); got != w {
			t.Fatalf("cycle %d: got %d, want %d", i, got, w)
		}
	}
}

func TestSequencePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":  func() { NewSequence() },
		"ragged": func() { NewSequence(logic.NewVector(2), logic.NewVector(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGraySingleToggle(t *testing.T) {
	g := NewGray(8)
	prev := append(logic.Vector(nil), g.Next()...)
	for i := 0; i < 300; i++ {
		cur := g.Next()
		diff := 0
		for j := range cur {
			if cur[j] != prev[j] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("cycle %d: %d bits toggled, want 1", i, diff)
		}
		copy(prev, cur)
	}
}

func TestGrayTooWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGray(65)
}

func TestCorrelatedBounds(t *testing.T) {
	c := NewCorrelated(3, 8, 4, 77)
	if c.Width() != 24 {
		t.Fatalf("width %d", c.Width())
	}
	prev := make([]uint64, 3)
	for i := range prev {
		prev[i] = 1 << 63 // sentinel: no previous value
	}
	for i := 0; i < 500; i++ {
		v := c.Next()
		for s := 0; s < 3; s++ {
			word := v[s*8 : (s+1)*8].Uint()
			if word > 255 {
				t.Fatalf("sample out of 8-bit range: %d", word)
			}
			if prev[s] != 1<<63 {
				d := int64(word) - int64(prev[s])
				if d < -4 || d > 4 {
					t.Fatalf("step %d exceeds bound 4", d)
				}
			}
			prev[s] = word
		}
	}
}

func TestConcat(t *testing.T) {
	s := NewConcat(NewConstant(logic.VectorFromUint(0b11, 2)), NewConstant(logic.VectorFromUint(0b0, 1)))
	if s.Width() != 3 {
		t.Fatalf("width %d", s.Width())
	}
	v := s.Next()
	if v[0] != logic.L1 || v[1] != logic.L1 || v[2] != logic.L0 {
		t.Fatalf("got %v", v)
	}
}
