package stimulus

// Word-parallel stimulus for the bit-parallel simulation kernel: one
// independent random vector stream per lane, packed so that lane l of
// word j is bit j of the vector Random(width, seeds[l]) would produce on
// the same cycle. The per-lane bit assignment replays Random.Next
// exactly (same splitmix64 word consumption), which is what makes a
// wide-kernel lane bit-identical to a scalar run with that seed.

import (
	"fmt"

	"glitchsim/internal/logic"
)

// WideRandom generates logic.Lanes-wide packed random stimulus, one
// seeded stream per lane. Lanes beyond the seed list hold constant 0, so
// unused lanes settle after the first cycle and add no simulation work.
type WideRandom struct {
	rngs  []PRNG
	width int
}

// NewWideRandom returns a WideRandom of the given vector width with one
// stream per seed. It panics when more than logic.Lanes seeds are given.
func NewWideRandom(width int, seeds []uint64) *WideRandom {
	if len(seeds) > logic.Lanes {
		panic(fmt.Sprintf("stimulus: %d seeds exceed the %d-lane word", len(seeds), logic.Lanes))
	}
	r := &WideRandom{rngs: make([]PRNG, len(seeds)), width: width}
	for l, seed := range seeds {
		r.rngs[l] = PRNG{state: seed}
	}
	return r
}

// Width returns the per-lane vector width.
func (r *WideRandom) Width() int { return r.width }

// Lanes returns the number of seeded lanes.
func (r *WideRandom) Lanes() int { return len(r.rngs) }

// Skip advances every seeded lane past the given number of cycles in
// O(lanes): NextWide consumes exactly one splitmix64 draw per seeded
// lane per 64-bit chunk of the vector width, so the per-lane skip
// distance is cycles·ceil(width/64) draws. After Skip(n) the generator
// produces the same stream a fresh WideRandom would after n NextWide
// calls — the property measurement resume relies on.
func (r *WideRandom) Skip(cycles int) {
	if cycles <= 0 {
		return
	}
	chunks := uint64((r.width + 63) / 64)
	for l := range r.rngs {
		r.rngs[l].Skip(uint64(cycles) * chunks)
	}
}

// NextWide fills dst (length Width) with the next cycle's packed
// vectors and returns it. Bit j of lane l equals Random(width,
// seeds[l]).Next()[j] for the same cycle; unseeded lanes read 0.
//
// The lanes-to-words reshuffle is a bit-matrix transpose: each 64-bit
// chunk of the per-lane vectors forms a 64×64 bit matrix (row = lane)
// that transposes in 6·64 word operations instead of a branchy
// bit-by-bit loop. Every lane is a strong level, so the zero rail is
// just the complement of the one rail.
func (r *WideRandom) NextWide(dst []logic.W) []logic.W {
	if len(dst) != r.width {
		panic(fmt.Sprintf("stimulus: destination width %d, want %d", len(dst), r.width))
	}
	var m [64]uint64
	for i := 0; i < r.width; i += 64 {
		chunk := r.width - i
		if chunk > 64 {
			chunk = 64
		}
		// Row l of the matrix is lane l's next 64 stimulus bits; unseeded
		// rows stay zero. transpose64 works MSB-first, so rows and
		// columns load and read out reversed.
		for l := range m {
			m[l] = 0
		}
		for l := range r.rngs {
			m[63-l] = r.rngs[l].Uint64()
		}
		transpose64(&m)
		for j := 0; j < chunk; j++ {
			one := m[63-j]
			dst[i+j] = logic.W{Zero: ^one, One: one}
		}
	}
	return dst
}

// transpose64 transposes a 64×64 bit matrix in place (word k = row k,
// bit b = column 63-b): the classic recursive block-swap (Hacker's
// Delight transpose32, widened to 64 bits).
func transpose64(a *[64]uint64) {
	for j, m := 32, uint64(0x00000000FFFFFFFF); j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k] ^ (a[k+j] >> uint(j))) & m
			a[k] ^= t
			a[k+j] ^= t << uint(j)
		}
		j >>= 1
		m ^= m << uint(j)
	}
}
