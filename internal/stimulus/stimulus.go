// Package stimulus generates deterministic input vector streams for
// transition-activity simulation. All generators are seeded and
// reproducible across platforms: they are built on a splitmix64 PRNG
// rather than math/rand so that the experiment tables in EXPERIMENTS.md
// regenerate bit-identically.
package stimulus

import (
	"fmt"

	"glitchsim/internal/logic"
)

// PRNG is a splitmix64 pseudo-random number generator. The zero value is
// a valid generator with seed 0.
type PRNG struct {
	state uint64
}

// NewPRNG returns a PRNG with the given seed.
func NewPRNG(seed uint64) *PRNG { return &PRNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (p *PRNG) Uint64() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Skip advances the generator past n draws in O(1). The splitmix64
// state walks a fixed-stride arithmetic sequence (Uint64 adds the golden
// gamma before mixing), so skipping n outputs is one multiply-add. This
// is what lets a resumed measurement rejoin its stimulus stream at an
// arbitrary cycle without replaying the prefix.
func (p *PRNG) Skip(n uint64) {
	p.state += n * 0x9E3779B97F4A7C15
}

// Uintn returns a uniform value in [0, n). It panics when n == 0.
func (p *PRNG) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("stimulus: Uintn(0)")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := p.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Bits returns n pseudo-random bits as a logic.Vector (LSB first).
func (p *PRNG) Bits(n int) logic.Vector {
	v := make(logic.Vector, n)
	for i := 0; i < n; i += 64 {
		w := p.Uint64()
		for j := i; j < n && j < i+64; j++ {
			v[j] = logic.FromBit(w >> uint(j-i))
		}
	}
	return v
}

// Float64 returns a uniform value in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Source produces one input vector per clock cycle for a circuit with a
// fixed total input width.
type Source interface {
	// Next returns the primary-input values for the next clock cycle.
	// The returned slice may be reused by the generator; callers must
	// not retain it across calls.
	Next() logic.Vector
	// Width returns the length of vectors produced by Next.
	Width() int
}

// Random is a Source of independent uniform random bits, the input model
// the paper uses for all experiments ("random inputs are a good choice
// ... signal statistics and correlations are lost").
type Random struct {
	rng *PRNG
	buf logic.Vector
}

// NewRandom returns a Random source of the given width and seed.
func NewRandom(width int, seed uint64) *Random {
	return &Random{rng: NewPRNG(seed), buf: make(logic.Vector, width)}
}

// Width implements Source.
func (r *Random) Width() int { return len(r.buf) }

// Next implements Source.
func (r *Random) Next() logic.Vector {
	for i := 0; i < len(r.buf); i += 64 {
		w := r.rng.Uint64()
		for j := i; j < len(r.buf) && j < i+64; j++ {
			r.buf[j] = logic.FromBit(w >> uint(j-i))
		}
	}
	return r.buf
}

// Constant is a Source that repeats one fixed vector, useful for settling
// and for directed tests.
type Constant struct {
	v logic.Vector
}

// NewConstant returns a source that always produces v.
func NewConstant(v logic.Vector) *Constant { return &Constant{v: v} }

// Width implements Source.
func (c *Constant) Width() int { return len(c.v) }

// Next implements Source.
func (c *Constant) Next() logic.Vector { return c.v }

// Sequence replays a fixed list of vectors, then wraps around. It is the
// stimulus used by directed (non-random) tests.
type Sequence struct {
	vs  []logic.Vector
	pos int
}

// NewSequence returns a source replaying vs cyclically. All vectors must
// share one width; it panics on an empty or ragged list.
func NewSequence(vs ...logic.Vector) *Sequence {
	if len(vs) == 0 {
		panic("stimulus: empty sequence")
	}
	w := len(vs[0])
	for i, v := range vs {
		if len(v) != w {
			panic(fmt.Sprintf("stimulus: vector %d has width %d, want %d", i, len(v), w))
		}
	}
	return &Sequence{vs: vs}
}

// Width implements Source.
func (s *Sequence) Width() int { return len(s.vs[0]) }

// Next implements Source.
func (s *Sequence) Next() logic.Vector {
	v := s.vs[s.pos]
	s.pos = (s.pos + 1) % len(s.vs)
	return v
}

// Gray is a Source that walks a Gray-code counter: exactly one input bit
// toggles per cycle. It models maximally correlated, low-activity inputs
// and is used by the ablation benchmarks as the opposite extreme of
// Random.
type Gray struct {
	count uint64
	width int
	buf   logic.Vector
}

// NewGray returns a Gray-code source of the given width (≤64 bits).
func NewGray(width int) *Gray {
	if width > 64 {
		panic("stimulus: gray source wider than 64 bits")
	}
	return &Gray{width: width, buf: make(logic.Vector, width)}
}

// Width implements Source.
func (g *Gray) Width() int { return g.width }

// Next implements Source.
func (g *Gray) Next() logic.Vector {
	code := g.count ^ (g.count >> 1)
	g.count++
	if g.width < 64 {
		// Wrap so exactly one in-range bit toggles per step even at the
		// rollover from all-ones.
		g.count &= (1 << uint(g.width)) - 1
	}
	for i := 0; i < g.width; i++ {
		g.buf[i] = logic.FromBit(code >> uint(i))
	}
	return g.buf
}

// Correlated is a Source modelling smooth video-like samples: each output
// sample performs a bounded random walk, so neighbouring cycles are
// strongly correlated. The paper argues such correlation disappears after
// the first abs-diff stage; this source lets that claim be tested.
type Correlated struct {
	rng     *PRNG
	samples []uint64
	bits    int
	step    uint64
	buf     logic.Vector
}

// NewCorrelated returns a source of nSamples concatenated words of the
// given bit width each, random-walking with the given maximum step per
// cycle.
func NewCorrelated(nSamples, bits int, step uint64, seed uint64) *Correlated {
	c := &Correlated{
		rng:     NewPRNG(seed),
		samples: make([]uint64, nSamples),
		bits:    bits,
		step:    step,
		buf:     make(logic.Vector, nSamples*bits),
	}
	for i := range c.samples {
		c.samples[i] = c.rng.Uintn(1 << uint(bits))
	}
	return c
}

// Width implements Source.
func (c *Correlated) Width() int { return len(c.buf) }

// Next implements Source.
func (c *Correlated) Next() logic.Vector {
	limit := uint64(1) << uint(c.bits)
	for i, s := range c.samples {
		delta := c.rng.Uintn(2*c.step + 1)
		ns := s + delta
		if ns < c.step {
			ns = 0
		} else {
			ns -= c.step
		}
		if ns >= limit {
			ns = limit - 1
		}
		c.samples[i] = ns
		for b := 0; b < c.bits; b++ {
			c.buf[i*c.bits+b] = logic.FromBit(ns >> uint(b))
		}
	}
	return c.buf
}

// Concat glues several sources into one wider source; vector bits are
// ordered source-by-source. It is used to drive circuits whose input
// buses need different statistics (e.g. random data plus a constant
// threshold).
type Concat struct {
	srcs []Source
	buf  logic.Vector
}

// NewConcat returns the concatenation of srcs.
func NewConcat(srcs ...Source) *Concat {
	w := 0
	for _, s := range srcs {
		w += s.Width()
	}
	return &Concat{srcs: srcs, buf: make(logic.Vector, w)}
}

// Width implements Source.
func (c *Concat) Width() int { return len(c.buf) }

// Next implements Source.
func (c *Concat) Next() logic.Vector {
	off := 0
	for _, s := range c.srcs {
		v := s.Next()
		copy(c.buf[off:off+len(v)], v)
		off += len(v)
	}
	return c.buf
}
