package power

import (
	"math"
	"strings"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/retime"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

func approx(a, b, rel float64) bool {
	if b == 0 {
		return math.Abs(a) < 1e-18
	}
	return math.Abs(a-b)/math.Abs(b) <= rel
}

func TestNodeCaps(t *testing.T) {
	b := netlist.NewBuilder("caps")
	x := b.Input("x")
	inv := b.Not(x)
	b.And(inv, x)
	b.Or(inv, x)
	b.Output("o", inv)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tech := Default08um()
	caps := NodeCaps(n, tech)
	// x drives not, and, or -> 3 sinks; inv drives and, or -> 2 sinks.
	if !approx(caps[x], tech.WireCapF+3*tech.InputCapF, 1e-12) {
		t.Errorf("cap(x) = %v", caps[x])
	}
	if !approx(caps[inv], tech.WireCapF+2*tech.InputCapF, 1e-12) {
		t.Errorf("cap(inv) = %v", caps[inv])
	}
}

func TestClockCapAndAreaScaleWithFFs(t *testing.T) {
	tech := Default08um()
	mk := func(ffs int) *netlist.Netlist {
		b := netlist.NewBuilder("ffs")
		x := b.Input("x")
		q := b.DFFChain(x, ffs)
		b.Output("q", q)
		return b.MustBuild()
	}
	n48, n350 := mk(48), mk(350)
	// Paper Table 3: 48 FFs -> 3.2 pF, 350 FFs -> 19.9 pF.
	if got := ClockCap(n48, tech); !approx(got, 3.2e-12, 0.05) {
		t.Errorf("48-FF clock cap = %v pF, paper 3.2", got*1e12)
	}
	if got := ClockCap(n350, tech); !approx(got, 19.9e-12, 0.05) {
		t.Errorf("350-FF clock cap = %v pF, paper 19.9", got*1e12)
	}
	// Area difference: paper 1.23-0.73 = 0.50 mm² for 302 extra FFs.
	if diff := Area(n350, tech) - Area(n48, tech); !approx(diff, 0.50, 0.02) {
		t.Errorf("area delta = %v mm², paper 0.50", diff)
	}
}

func TestFlipflopPowerMatchesPaperCalibration(t *testing.T) {
	// Paper: 48 flipflops dissipate 0.9 mW at 5 MHz.
	tech := Default08um()
	b := netlist.NewBuilder("ff48")
	x := b.Input("x")
	var outs []netlist.NetID
	for i := 0; i < 48; i++ {
		outs = append(outs, b.DFF(x))
	}
	b.OutputBus("q", outs)
	n := b.MustBuild()
	s := sim.New(n, sim.Options{})
	c := core.NewCounter(n)
	s.AttachMonitor(c)
	for i := 0; i < 10; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	bd := FromActivity(c, tech)
	if !approx(bd.FlipflopW, 0.9e-3, 0.01) {
		t.Errorf("48-FF power = %v mW, paper 0.9", bd.FlipflopW*1e3)
	}
	if bd.LogicW != 0 {
		t.Errorf("pure-FF circuit has logic power %v", bd.LogicW)
	}
	if bd.NumFFs != 48 {
		t.Errorf("NumFFs = %d", bd.NumFFs)
	}
}

func TestLogicPowerFormula(t *testing.T) {
	// One inverter toggling every cycle: rising every other cycle.
	tech := Default08um()
	b := netlist.NewBuilder("inv")
	x := b.Input("x")
	y := b.Not(x)
	b.Output("y", y)
	n := b.MustBuild()
	s := sim.New(n, sim.Options{})
	c := core.NewCounter(n)
	s.AttachMonitor(c)
	const cycles = 1000
	for i := 0; i < cycles; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	bd := FromActivity(c, tech)
	// y has no sinks beyond the PO: cap = wire only. Rising rate ~0.5.
	want := 0.5 * tech.WireCapF * tech.Vdd * tech.Vdd * tech.ClockFreq
	if !approx(bd.LogicW, want, 0.01) {
		t.Errorf("logic power = %v, want %v", bd.LogicW, want)
	}
	if bd.FlipflopW != 0 || bd.ClockCapF != tech.ClockBaseCapF {
		t.Error("no-FF circuit has FF/clock contributions beyond base")
	}
	if !strings.Contains(bd.String(), "total=") {
		t.Error("String format")
	}
	if !approx(bd.TotalW(), bd.LogicW+bd.FlipflopW+bd.ClockW, 1e-12) {
		t.Error("total mismatch")
	}
}

func TestTopConsumers(t *testing.T) {
	// A hazard net glitching every other cycle plus a quiet inverter:
	// the hazard output must rank first.
	b := netlist.NewBuilder("rank")
	x := b.Input("x")
	na := b.Not(x)
	hz := b.And(x, na)
	one := b.Const(1)
	quiet := b.And(one, one) // constant: never switches
	b.Output("hz", hz)
	b.Output("q", quiet)
	n := b.MustBuild()
	s := sim.New(n, sim.Options{})
	c := core.NewCounter(n)
	s.AttachMonitor(c)
	for i := 0; i < 100; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tech := Default08um()
	top := TopConsumers(c, tech, 10)
	if len(top) == 0 {
		t.Fatal("no consumers found")
	}
	// All entries sorted by power.
	for i := 1; i < len(top); i++ {
		if top[i].PowerW > top[i-1].PowerW {
			t.Error("not sorted")
		}
	}
	// Truncation.
	if got := TopConsumers(c, tech, 1); len(got) != 1 {
		t.Errorf("k=1 returned %d entries", len(got))
	}
	// Empty counter.
	if TopConsumers(core.NewCounter(n), tech, 5) != nil {
		t.Error("expected nil for cycle-less counter")
	}
	// The glitching AND output is ranked; the constant net is absent.
	names := map[string]float64{}
	for _, np := range top {
		names[np.Net] = np.PowerW
	}
	if _, ok := names[n.Net(hz).Name]; !ok {
		t.Error("hazard net missing from ranking")
	}
	if _, ok := names[n.Net(quiet).Name]; ok {
		t.Error("constant net must not appear in the ranking")
	}
}

func TestPanicsWithoutCycles(t *testing.T) {
	n := circuits.NewRCA(2, circuits.Cells)
	c := core.NewCounter(n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromActivity(c, Default08um())
}

// TestPipeliningTradeoffShape reproduces the qualitative shape of
// Figure 10 on a small direction detector: logic power falls with deeper
// pipelining while flipflop and clock power rise.
func TestPipeliningTradeoffShape(t *testing.T) {
	base := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 6, Style: circuits.Cells})
	tech := Default08um()
	measure := func(n *netlist.Netlist) Breakdown {
		s := sim.New(n, sim.Options{Delay: delay.Unit()})
		c := core.NewCounter(n)
		s.AttachMonitor(c)
		src := stimulus.NewRandom(n.InputWidth(), 99)
		for i := 0; i < 30; i++ { // warm up
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		c.Reset()
		for i := 0; i < 300; i++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		return FromActivity(c, tech)
	}

	var prev Breakdown
	for stages := 0; stages <= 3; stages++ {
		res, err := retime.Pipeline(base, delay.Unit(), stages)
		if err != nil {
			t.Fatal(err)
		}
		bd := measure(res.Netlist)
		if stages > 0 {
			if bd.FlipflopW <= prev.FlipflopW {
				t.Errorf("stages %d: FF power did not rise (%v -> %v)", stages, prev.FlipflopW, bd.FlipflopW)
			}
			if bd.ClockW <= prev.ClockW {
				t.Errorf("stages %d: clock power did not rise", stages)
			}
		}
		prev = bd
	}
	// Logic power at depth 3 must be well below the unpipelined value.
	res0, _ := retime.Pipeline(base, delay.Unit(), 0)
	res3, _ := retime.Pipeline(base, delay.Unit(), 3)
	l0, l3 := measure(res0.Netlist).LogicW, measure(res3.Netlist).LogicW
	if l3 >= l0 {
		t.Errorf("deep pipelining did not reduce logic power: %v -> %v", l0, l3)
	}
}
