// Package power implements the paper's §5 dynamic power model for
// synchronous static-CMOS netlists, split into the three components of
// Table 3:
//
//  1. combinational logic power — from measured power-consuming (0→1)
//     transition counts and a per-net load capacitance model,
//  2. flipflop power — the average dissipation of one flipflop at 50%
//     input transition activity times the flipflop count,
//  3. clock line power — the clock capacitance (which grows with the
//     flipflop count) switched every cycle.
//
// The paper obtained these numbers from circuit-level simulation of
// extracted 0.8 µm / 5 V layouts; here the same quantities are computed
// from gate-level activity measurements and technology constants fitted
// to the paper's reported values (see Default08um).
package power

import (
	"fmt"
	"sort"

	"glitchsim/internal/core"
	"glitchsim/netlist"
)

// Tech holds the technology and operating-point constants of the model.
type Tech struct {
	// Vdd is the supply voltage in volts.
	Vdd float64
	// ClockFreq is the clock frequency in Hz.
	ClockFreq float64

	// WireCapF is the intrinsic output/wire capacitance of a driven net
	// in farads.
	WireCapF float64
	// InputCapF is the capacitance added to a net per cell input pin it
	// drives.
	InputCapF float64

	// FFEnergyJ is the energy one flipflop dissipates per clock cycle at
	// 50% input transition activity (the paper's footnote 1 method).
	FFEnergyJ float64
	// FFClockCapF is the clock-line capacitance added per flipflop
	// (flipflop clock pins plus the wiring to reach them).
	FFClockCapF float64
	// ClockBaseCapF is the clock-line capacitance of an empty circuit.
	ClockBaseCapF float64

	// Cell areas in µm², by type; DFF area covers the flipflop plus its
	// share of clock routing.
	CellAreaUM2 map[netlist.CellType]float64
}

// Default08um returns constants representing the paper's 0.8 µm, 5 V
// technology at the 5 MHz equivalent clock of Table 3. The flipflop
// energy, per-flipflop clock capacitance and areas are fitted to the
// paper's reported values (0.9 mW for 48 flipflops; 3.2→19.9 pF of clock
// capacitance and 0.73→1.23 mm² of area between 48 and 350 flipflops);
// the wire/input capacitances are typical for the process and set the
// absolute scale of the logic component.
func Default08um() Tech {
	return Tech{
		Vdd:       5.0,
		ClockFreq: 5e6,
		// Extracted-layout node capacitances including routing; fitted
		// so the input-registered direction detector's combinational
		// component lands in the ~20 mW region the paper reports for
		// circuit 1.
		WireCapF:      170e-15,
		InputCapF:     55e-15,
		FFEnergyJ:     3.75e-12, // 0.9 mW / 48 FFs / 5 MHz
		FFClockCapF:   55e-15,   // (19.9-3.2) pF / (350-48) FFs
		ClockBaseCapF: 0.56e-12,
		// Cell areas include each cell's share of routing; fitted so the
		// direction detector's combinational area lands near the paper's
		// 0.65 mm² (0.73 mm² circuit minus its 48 flipflops).
		CellAreaUM2: map[netlist.CellType]float64{
			netlist.Const0: 0, netlist.Const1: 0,
			netlist.Buf: 920, netlist.Not: 680,
			netlist.And: 1130, netlist.Nand: 920,
			netlist.Or: 1130, netlist.Nor: 920,
			netlist.Xor: 1670, netlist.Xnor: 1670,
			netlist.Mux2: 1510, netlist.Maj3: 1730,
			netlist.HA: 2430, netlist.FA: 4720,
			netlist.DFF: 1655, // (1.23-0.73) mm² / (350-48) FFs
		},
	}
}

// NodeCaps returns the load capacitance of every net: wire capacitance
// plus input capacitance per driven cell pin. Primary-input nets are
// included (they are driven by the environment, not the circuit, and the
// logic power computation excludes them).
func NodeCaps(n *netlist.Netlist, t Tech) []float64 {
	caps := make([]float64, n.NumNets())
	for i := range n.Nets {
		caps[i] = t.WireCapF + float64(len(n.Nets[i].Sinks))*t.InputCapF
	}
	return caps
}

// Area returns the cell area of the netlist in mm².
func Area(n *netlist.Netlist, t Tech) float64 {
	um2 := 0.0
	for i := range n.Cells {
		um2 += t.CellAreaUM2[n.Cells[i].Type]
	}
	return um2 * 1e-6
}

// ClockCap returns the clock-line capacitance in farads for the
// netlist's flipflop count.
func ClockCap(n *netlist.Netlist, t Tech) float64 {
	return t.ClockBaseCapF + float64(n.NumDFFs())*t.FFClockCapF
}

// Breakdown is the paper's three-component dissipation split, plus the
// circuit metrics Table 3 tabulates alongside it.
type Breakdown struct {
	// LogicW, FlipflopW and ClockW are the three power components in
	// watts.
	LogicW, FlipflopW, ClockW float64
	// NumFFs is the flipflop count of the circuit.
	NumFFs int
	// ClockCapF is the clock-line capacitance in farads.
	ClockCapF float64
	// AreaMM2 is the estimated cell area in mm².
	AreaMM2 float64
	// Cycles is the number of measured cycles behind LogicW.
	Cycles int
}

// TotalW returns the total dynamic power in watts.
func (b Breakdown) TotalW() float64 { return b.LogicW + b.FlipflopW + b.ClockW }

// String formats the breakdown in milliwatts, Table 3 style.
func (b Breakdown) String() string {
	return fmt.Sprintf("ffs=%d area=%.2fmm² cclk=%.1fpF logic=%.1fmW ff=%.1fmW clock=%.1fmW total=%.1fmW",
		b.NumFFs, b.AreaMM2, b.ClockCapF*1e12,
		b.LogicW*1e3, b.FlipflopW*1e3, b.ClockW*1e3, b.TotalW()*1e3)
}

// NetPower is one entry of a per-net power ranking.
type NetPower struct {
	Net string
	// PowerW is the net's switching power contribution in watts.
	PowerW float64
	// Rising is the measured count of power-consuming transitions.
	Rising uint64
	// CapF is the net's load capacitance in farads.
	CapF float64
}

// TopConsumers ranks the k combinational nets dissipating the most
// switching power under the measured activity — the "where do the
// glitches burn power" view a designer needs before retiming.
func TopConsumers(c *core.Counter, t Tech, k int) []NetPower {
	n := c.Netlist()
	if c.Cycles() == 0 {
		return nil
	}
	caps := NodeCaps(n, t)
	vvf := t.Vdd * t.Vdd * t.ClockFreq
	cycles := float64(c.Cycles())
	var all []NetPower
	for _, id := range n.InternalNets() {
		net := n.Net(id)
		if n.Cell(net.Driver).Type == netlist.DFF {
			continue
		}
		st := c.Stats(id)
		if st.Rising == 0 {
			continue
		}
		all = append(all, NetPower{
			Net:    net.Name,
			PowerW: float64(st.Rising) / cycles * caps[id] * vvf,
			Rising: st.Rising,
			CapF:   caps[id],
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].PowerW != all[j].PowerW {
			return all[i].PowerW > all[j].PowerW
		}
		return all[i].Net < all[j].Net
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// FromActivity evaluates the model against a finished activity
// measurement. Logic power uses the measured 0→1 transition counts on
// combinational nets (DFF outputs are covered by the flipflop component,
// exactly as the paper subtracts flipflop power from the main supply
// measurement). It panics if the counter observed no cycles.
func FromActivity(c *core.Counter, t Tech) Breakdown {
	n := c.Netlist()
	if c.Cycles() == 0 {
		panic("power: activity counter has no cycles")
	}
	caps := NodeCaps(n, t)
	vvf := t.Vdd * t.Vdd * t.ClockFreq
	cycles := float64(c.Cycles())

	logic := 0.0
	for _, id := range n.InternalNets() {
		net := n.Net(id)
		if n.Cell(net.Driver).Type == netlist.DFF {
			continue
		}
		risePerCycle := float64(c.Stats(id).Rising) / cycles
		logic += risePerCycle * caps[id] * vvf
	}

	ffs := n.NumDFFs()
	return Breakdown{
		LogicW:    logic,
		FlipflopW: float64(ffs) * t.FFEnergyJ * t.ClockFreq,
		ClockW:    ClockCap(n, t) * vvf,
		NumFFs:    ffs,
		ClockCapF: ClockCap(n, t),
		AreaMM2:   Area(n, t),
		Cycles:    c.Cycles(),
	}
}
