// Package netlist forwards to the public glitchsim/netlist package.
//
// Deprecated: the netlist data model moved out of internal so external
// callers can construct their own circuits; import glitchsim/netlist
// instead. Nothing in-tree imports this path anymore — the shim exists
// so in-flight branches and stacked changes written against the old
// import keep compiling through the transition (the aliases are true
// type aliases, so values are interchangeable with the public types,
// Fingerprint identity included). It only forwards the names such code
// could plausibly reference and will be deleted in a follow-up once the
// migration has settled.
package netlist

import "glitchsim/netlist"

// Aliased identifier types. These are true type aliases: a
// netlist.NetID from this package IS a glitchsim/netlist.NetID.
type (
	// NetID identifies a net within one Netlist.
	NetID = netlist.NetID
	// CellID identifies a cell within one Netlist.
	CellID = netlist.CellID
	// CellType enumerates the supported cell kinds.
	CellType = netlist.CellType
	// Cell is one instance in the netlist.
	Cell = netlist.Cell
	// Pin identifies one input port of a cell.
	Pin = netlist.Pin
	// Net is a single-driver wire.
	Net = netlist.Net
	// Netlist is a flat gate-level circuit.
	Netlist = netlist.Netlist
	// Builder incrementally constructs a Netlist.
	Builder = netlist.Builder
	// DelayFunc maps a cell output pin to its propagation delay.
	DelayFunc = netlist.DelayFunc
)

// Forwarded constants.
const (
	Const0 = netlist.Const0
	Const1 = netlist.Const1
	Buf    = netlist.Buf
	Not    = netlist.Not
	And    = netlist.And
	Nand   = netlist.Nand
	Or     = netlist.Or
	Nor    = netlist.Nor
	Xor    = netlist.Xor
	Xnor   = netlist.Xnor
	Mux2   = netlist.Mux2
	Maj3   = netlist.Maj3
	HA     = netlist.HA
	FA     = netlist.FA
	DFF    = netlist.DFF

	NoCell = netlist.NoCell
	NoNet  = netlist.NoNet

	PinSum   = netlist.PinSum
	PinCarry = netlist.PinCarry
)

// Forwarded constructors and free functions.
var (
	// NewBuilder returns a Builder for a netlist with the given name.
	NewBuilder = netlist.NewBuilder
	// ReadJSON deserializes a netlist written by WriteJSON.
	ReadJSON = netlist.ReadJSON
)
