package verilog

import (
	"fmt"
	"io"
	"strings"

	"glitchsim/internal/netlist"
)

// Parse reads the structural Verilog subset emitted by Write and
// reconstructs a netlist. It parses the first non-helper module in the
// stream; helper module definitions (glitchsim_*) are recognized by name
// and skipped. Supported statements:
//
//	input/output/wire declarations (scalar)
//	gate primitives: buf, not, and, nand, or, nor, xor, xnor
//	helper instances: glitchsim_mux2/maj3/ha/fa/dff
//	assign <net> = 1'b0 | 1'b1 | <net>;
func Parse(r io.Reader) (*netlist.Netlist, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks, err := lex(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parse()
}

// --- lexer ---

type token struct {
	text string
	line int
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case isIdentRune(c) || c == '\'':
			j := i
			for j < len(src) && (isIdentRune(src[j]) || src[j] == '\'') {
				j++
			}
			toks = append(toks, token{text: src[i:j], line: line})
			i = j
		case strings.ContainsRune("(),;=@<>?:&|^~", rune(c)):
			// Two-char operator <= used in helper bodies.
			if c == '<' && i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{text: "<=", line: line})
				i += 2
				continue
			}
			toks = append(toks, token{text: string(c), line: line})
			i++
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	return toks, nil
}

func isIdentRune(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) line() int {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].line
	}
	if len(p.toks) > 0 {
		return p.toks[len(p.toks)-1].line
	}
	return 0
}

func (p *parser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", p.line(), want, got)
	}
	return nil
}

var helperSet = func() map[string]netlist.CellType {
	m := map[string]netlist.CellType{}
	for t, name := range helperModules {
		m[name] = t
	}
	return m
}()

var primitiveSet = func() map[string]netlist.CellType {
	m := map[string]netlist.CellType{}
	for t, name := range primitives {
		m[name] = t
	}
	return m
}()

// pendingCell is an instance awaiting net resolution.
type pendingCell struct {
	typ  netlist.CellType
	name string
	args []string
	line int
}

type alias struct{ dst, src string } // assign dst = src

func (p *parser) parse() (*netlist.Netlist, error) {
	for p.peek() != "" {
		if p.peek() != "module" {
			return nil, fmt.Errorf("verilog: line %d: expected module, got %q", p.line(), p.peek())
		}
		// Look ahead at the module name.
		name := p.toks[p.pos+1].text
		if _, isHelper := helperSet[name]; isHelper {
			p.skipModule()
			continue
		}
		return p.parseModule()
	}
	return nil, fmt.Errorf("verilog: no user module found")
}

func (p *parser) skipModule() {
	for p.peek() != "" && p.next() != "endmodule" {
	}
}

func (p *parser) parseModule() (*netlist.Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	modName := p.next()
	// Port list (names only; directions come from declarations).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek() != ")" && p.peek() != "" {
		p.next() // port name or comma
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs, wires []string
	var cells []pendingCell
	var aliases []alias
	var consts []struct {
		net string
		bit int
	}

	for {
		switch t := p.next(); t {
		case "endmodule":
			return buildNetlist(modName, inputs, outputs, wires, cells, aliases, consts)
		case "":
			return nil, fmt.Errorf("verilog: unexpected end of input in module %s", modName)
		case "input", "output", "wire":
			for {
				name := p.next()
				switch t {
				case "input":
					inputs = append(inputs, name)
				case "output":
					outputs = append(outputs, name)
				default:
					wires = append(wires, name)
				}
				if sep := p.next(); sep == ";" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("verilog: line %d: bad declaration separator %q", p.line(), sep)
				}
			}
		case "assign":
			dst := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next()
			switch rhs {
			case "1'b0":
				consts = append(consts, struct {
					net string
					bit int
				}{dst, 0})
			case "1'b1":
				consts = append(consts, struct {
					net string
					bit int
				}{dst, 1})
			default:
				aliases = append(aliases, alias{dst: dst, src: rhs})
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			typ, okP := primitiveSet[t]
			htyp, okH := helperSet[t]
			if !okP && !okH {
				return nil, fmt.Errorf("verilog: line %d: unsupported statement %q", p.line(), t)
			}
			if okH {
				typ = htyp
			}
			instName := p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var args []string
			for {
				args = append(args, p.next())
				if sep := p.next(); sep == ")" {
					break
				} else if sep != "," {
					return nil, fmt.Errorf("verilog: line %d: bad argument separator %q", p.line(), sep)
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			cells = append(cells, pendingCell{typ: typ, name: instName, args: args, line: p.line()})
		}
	}
}

// buildNetlist assembles the parsed pieces. Output-port nets that are
// pure aliases of internal nets (the writer's po_* pattern) are
// registered as primary outputs of their source nets.
func buildNetlist(name string, inputs, outputs, wires []string, cells []pendingCell,
	aliases []alias, consts []struct {
		net string
		bit int
	}) (*netlist.Netlist, error) {

	b := netlist.NewBuilder(name)
	nets := map[string]netlist.NetID{}

	for _, in := range inputs {
		if in == "clk" {
			continue // implicit clock
		}
		nets[in] = b.Input(in)
	}
	for _, c := range consts {
		if _, dup := nets[c.net]; dup {
			return nil, fmt.Errorf("verilog: net %s driven twice", c.net)
		}
		nets[c.net] = b.Const(c.bit)
	}

	// Instantiate cells; forward references are resolved with a
	// two-pass placeholder scheme.
	placeholder := netlist.NoNet
	type fixup struct {
		cell netlist.CellID
		port int
		net  string
	}
	var fixups []fixup
	for _, c := range cells {
		outs := c.typ.Outputs()
		if len(c.args) < outs {
			return nil, fmt.Errorf("verilog: line %d: instance %s has too few connections", c.line, c.name)
		}
		inArgs := c.args[outs:]
		if c.typ == netlist.DFF {
			// Last connection is clk.
			if len(inArgs) == 0 || inArgs[len(inArgs)-1] != "clk" {
				return nil, fmt.Errorf("verilog: line %d: dff %s must end with clk", c.line, c.name)
			}
			inArgs = inArgs[:len(inArgs)-1]
		}
		ins := make([]netlist.NetID, len(inArgs))
		cid := netlist.CellID(b.NumCells())
		for port, a := range inArgs {
			if id, ok := nets[a]; ok {
				ins[port] = id
				continue
			}
			if placeholder == netlist.NoNet {
				placeholder = b.Const(0)
				cid = netlist.CellID(b.NumCells())
			}
			ins[port] = placeholder
			fixups = append(fixups, fixup{cell: cid, port: port, net: a})
		}
		created := b.AddCell(c.typ, c.name, ins...)
		for pin, o := range created {
			outName := c.args[pin]
			if _, dup := nets[outName]; dup {
				return nil, fmt.Errorf("verilog: line %d: net %s driven twice", c.line, outName)
			}
			nets[outName] = o
		}
	}
	for _, f := range fixups {
		id, ok := nets[f.net]
		if !ok {
			return nil, fmt.Errorf("verilog: undriven net %s", f.net)
		}
		b.Rewire(f.cell, f.port, id)
	}

	// Resolve aliases (assign dst = src) into direct references.
	resolved := map[string]string{}
	var lookup func(string) (netlist.NetID, bool)
	lookup = func(nm string) (netlist.NetID, bool) {
		if id, ok := nets[nm]; ok {
			return id, true
		}
		if src, ok := resolved[nm]; ok {
			return lookup(src)
		}
		return netlist.NoNet, false
	}
	for _, a := range aliases {
		resolved[a.dst] = a.src
	}

	isOutput := map[string]bool{}
	for _, o := range outputs {
		isOutput[o] = true
	}
	for _, o := range outputs {
		id, ok := lookup(o)
		if !ok {
			return nil, fmt.Errorf("verilog: output %s is undriven", o)
		}
		b.Output(strings.TrimPrefix(o, "po_"), id)
	}
	_ = wires
	return b.Build()
}
