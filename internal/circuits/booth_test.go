package circuits

import (
	"testing"

	"glitchsim/internal/stimulus"
)

// signed interprets the low `bits` of u as two's complement.
func signed(u uint64, bits int) int64 {
	u &= (1 << uint(bits)) - 1
	if u&(1<<uint(bits-1)) != 0 {
		return int64(u) - (1 << uint(bits))
	}
	return int64(u)
}

func TestBoothExhaustive4x4(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		n := NewBoothMultiplier(4, style)
		for xv := uint64(0); xv < 16; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
				got := signed(busUint(n, vals, "p"), 8)
				want := signed(xv, 4) * signed(yv, 4)
				if got != want {
					t.Fatalf("%v: %d*%d = %d, got %d", style, signed(xv, 4), signed(yv, 4), want, got)
				}
			}
		}
	}
}

func TestBoothExhaustive6x6(t *testing.T) {
	n := NewBoothMultiplier(6, Cells)
	for xv := uint64(0); xv < 64; xv++ {
		for yv := uint64(0); yv < 64; yv++ {
			vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
			got := signed(busUint(n, vals, "p"), 12)
			want := signed(xv, 6) * signed(yv, 6)
			if got != want {
				t.Fatalf("%d*%d = %d, got %d", signed(xv, 6), signed(yv, 6), want, got)
			}
		}
	}
}

func TestBooth8x8Random(t *testing.T) {
	n := NewBoothMultiplier(8, Cells)
	rng := stimulus.NewPRNG(23)
	for i := 0; i < 500; i++ {
		xv, yv := rng.Uintn(256), rng.Uintn(256)
		vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
		got := signed(busUint(n, vals, "p"), 16)
		want := signed(xv, 8) * signed(yv, 8)
		if got != want {
			t.Fatalf("%d*%d = %d, got %d", signed(xv, 8), signed(yv, 8), want, got)
		}
	}
}

func TestBoothOddWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBoothMultiplier(5, Cells)
}

func TestBoothName(t *testing.T) {
	if NewBoothMultiplier(8, Cells).Name != "boothmul8" {
		t.Error("name")
	}
}
