// Package circuits provides generators for the arithmetic and video
// processing architectures the paper evaluates: ripple-carry adders,
// array and Wallace-tree multipliers, comparators, absolute-difference
// units, and the Phideo direction detector of §4.2.
//
// Every generator is available in two styles: Cells builds arithmetic
// from compound FA/HA netlist cells whose sum and carry delays can be set
// independently (the paper's multiplier experiments), while Gates
// decomposes each adder into 2-input gates (finer retiming granularity
// and a more detailed delay structure).
package circuits

import (
	"fmt"

	"glitchsim/netlist"
)

// Style selects the arithmetic cell granularity.
type Style uint8

const (
	// Cells uses compound FA/HA cells, matching the paper's multiplier
	// cell model with configurable dsum/dcarry.
	Cells Style = iota
	// Gates decomposes adders into XOR/AND/OR gates.
	Gates
)

// String names the style.
func (s Style) String() string {
	if s == Gates {
		return "gates"
	}
	return "cells"
}

// FullAdd instantiates a full adder in the given style and returns
// (sum, carry-out).
func FullAdd(b *netlist.Builder, style Style, x, y, cin netlist.NetID) (sum, cout netlist.NetID) {
	if style == Cells {
		return b.FullAdder(x, y, cin)
	}
	axy := b.Xor(x, y)
	sum = b.Xor(axy, cin)
	cout = b.Or(b.And(x, y), b.And(axy, cin))
	return sum, cout
}

// FullAddSum instantiates only the sum output of a full adder: gate
// style omits the carry cone (two ANDs and an OR) entirely, compound
// style reuses the fa cell and leaves its carry net unread.
func FullAddSum(b *netlist.Builder, style Style, x, y, cin netlist.NetID) netlist.NetID {
	if style == Cells {
		sum, _ := b.FullAdder(x, y, cin)
		return sum
	}
	return b.Xor(b.Xor(x, y), cin)
}

// HalfAdd instantiates a half adder in the given style and returns
// (sum, carry-out).
func HalfAdd(b *netlist.Builder, style Style, x, y netlist.NetID) (sum, cout netlist.NetID) {
	if style == Cells {
		return b.HalfAdder(x, y)
	}
	return b.Xor(x, y), b.And(x, y)
}

// Mux2Bus selects between two equal-width buses: a when sel=0, b when
// sel=1.
func Mux2Bus(b *netlist.Builder, x, y []netlist.NetID, sel netlist.NetID) []netlist.NetID {
	mustSameWidth("Mux2Bus", x, y)
	out := make([]netlist.NetID, len(x))
	for i := range x {
		out[i] = b.Mux(x[i], y[i], sel)
	}
	return out
}

// NotBus inverts every bit of a bus.
func NotBus(b *netlist.Builder, x []netlist.NetID) []netlist.NetID {
	out := make([]netlist.NetID, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

func mustSameWidth(op string, a, b []netlist.NetID) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("circuits: %s operand widths differ: %d vs %d", op, len(a), len(b)))
	}
}
