package circuits

import (
	"fmt"

	"glitchsim/netlist"
)

// DirDetConfig parameterizes the direction detector generator.
type DirDetConfig struct {
	// Width is the pixel sample width in bits (8 for typical video).
	Width int
	// Style selects compound adder cells or gate-level decomposition.
	Style Style
	// RegisterInputs inserts one flipflop on every data input bit. With
	// Width=8 this yields the 6×8 = 48 flipflops of the paper's
	// circuit 1 in Table 3.
	RegisterInputs bool
}

// NewDirectionDetector builds the Phideo progressive-scan direction
// detector of the paper's Figure 8.
//
// The unit receives two rows of three pixels, a[0..2] from the line above
// and b[0..2] from the line below, and decides along which of three
// directions the picture correlates best:
//
//	d0 = |a[0] − b[2]|   (diagonal ↘)
//	d1 = |a[1] − b[1]|   (vertical, the default direction)
//	d2 = |a[2] − b[0]|   (diagonal ↙)
//
// A min/max search over the three differences (three comparators), a
// fourth |a−b| block computing the spread max−min, and a threshold
// comparison decide whether the detected direction is trustworthy: if
// max−min > threshold the direction of the minimum difference is output,
// otherwise the default direction along a[1],b[1] is kept.
//
// Interface:
//
//	inputs:  a0,a1,a2,b0,b1,b2 (Width bits each), thr (Width bits)
//	outputs: dir (2 bits: 00=d0, 01=d1/default, 10=d2),
//	         min, max (Width bits), is_min, is_max (3-bit one-hot)
func NewDirectionDetector(cfg DirDetConfig) *netlist.Netlist {
	if cfg.Width < 2 {
		panic(fmt.Sprintf("circuits: direction detector width %d too small", cfg.Width))
	}
	name := circuitName("dirdet", cfg.Width, cfg.Style)
	if cfg.RegisterInputs {
		name += "r"
	}
	b := netlist.NewBuilder(name)

	a := make([][]netlist.NetID, 3)
	bb := make([][]netlist.NetID, 3)
	for i := 0; i < 3; i++ {
		a[i] = b.InputBus(fmt.Sprintf("a%d", i), cfg.Width)
	}
	for i := 0; i < 3; i++ {
		bb[i] = b.InputBus(fmt.Sprintf("b%d", i), cfg.Width)
	}
	thr := b.InputBus("thr", cfg.Width)

	if cfg.RegisterInputs {
		for i := 0; i < 3; i++ {
			a[i] = b.RegisterBus(a[i])
			bb[i] = b.RegisterBus(bb[i])
		}
	}

	// Three directional absolute differences.
	d0 := AbsDiff(b, cfg.Style, a[0], bb[2])
	d1 := AbsDiff(b, cfg.Style, a[1], bb[1])
	d2 := AbsDiff(b, cfg.Style, a[2], bb[0])
	b.NameBus("d0", d0)
	b.NameBus("d1", d1)
	b.NameBus("d2", d2)

	// Find min/max over {d0,d1,d2}: three comparator/select stages. The
	// second-stage units each need only one half of the min/max pair, so
	// only that select bus is instantiated.
	min01, max01, d0gt1 := MinMax(b, d0, d1)
	min01gt2 := GreaterThan(b, min01, d2)
	minAll := Mux2Bus(b, min01, d2, min01gt2)
	maxStageGt := GreaterThan(b, max01, d2)
	maxAll := Mux2Bus(b, d2, max01, maxStageGt)

	// One-hot is_min flags: min is d2 when min01 > d2; otherwise d1 when
	// d0 > d1, else d0.
	minIsD2 := min01gt2
	minIsD1 := b.And(b.Not(min01gt2), d0gt1)
	minIsD0 := b.Nor(min01gt2, d0gt1)
	// One-hot is_max flags: max01 > d2 means max is max01, which is d0
	// when d0 > d1.
	maxIsD2 := b.Not(maxStageGt)
	maxIsD0 := b.And(maxStageGt, d0gt1)
	maxIsD1 := b.And(maxStageGt, b.Not(d0gt1))

	// Spread = |max − min| via a fourth abs-diff block (max ≥ min, so it
	// equals the subtraction; the block is reused as in the figure).
	spread := AbsDiff(b, cfg.Style, maxAll, minAll)
	b.NameBus("spread", spread)

	// Trust the detected direction only when the spread exceeds the
	// threshold.
	confident := GreaterThan(b, spread, thr)

	// Direction code of the minimum: 00 for d0, 01 for d1, 10 for d2
	// (bit0 set only for d1, bit1 set only for d2).
	detected0 := minIsD1
	detected1 := minIsD2
	// Default direction along a[1],b[1] is code 01.
	dflt0 := b.Const(1)
	dflt1 := b.Const(0)
	dir0 := b.Mux(dflt0, detected0, confident)
	dir1 := b.Mux(dflt1, detected1, confident)

	b.OutputBus("dir", []netlist.NetID{dir0, dir1})
	b.OutputBus("min", minAll)
	b.OutputBus("max", maxAll)
	b.OutputBus("is_min", []netlist.NetID{minIsD0, minIsD1, minIsD2})
	b.OutputBus("is_max", []netlist.NetID{maxIsD0, maxIsD1, maxIsD2})
	return b.MustBuild()
}
