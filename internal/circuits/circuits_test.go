package circuits

import (
	"testing"

	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// evalNet computes the zero-delay settled value of every net for the
// given per-bus primary input assignment.
func evalNet(t *testing.T, n *netlist.Netlist, inputs map[string]uint64) []logic.V {
	t.Helper()
	vals := make([]logic.V, n.NumNets())
	seen := 0
	for bus, v := range inputs {
		ids := n.Bus(bus)
		if ids == nil {
			t.Fatalf("no input bus %q", bus)
		}
		for i, id := range ids {
			vals[id] = logic.FromBit(v >> uint(i))
		}
		seen += len(ids)
	}
	if seen != n.InputWidth() {
		t.Fatalf("assigned %d input bits, netlist has %d", seen, n.InputWidth())
	}
	n.EvalOutputs(vals)
	return vals
}

func busUint(n *netlist.Netlist, vals []logic.V, bus string) uint64 {
	ids := n.Bus(bus)
	var u uint64
	for i, id := range ids {
		u |= vals[id].Bit() << uint(i)
	}
	return u
}

func TestRippleAddExhaustive4(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		n := NewRCA(4, style)
		for a := uint64(0); a < 16; a++ {
			for bb := uint64(0); bb < 16; bb++ {
				vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
				got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<4
				if got != a+bb {
					t.Fatalf("%v: %d+%d = %d, got %d", style, a, bb, a+bb, got)
				}
			}
		}
	}
}

func TestRippleSub(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		b := netlist.NewBuilder("sub")
		x := b.InputBus("x", 6)
		y := b.InputBus("y", 6)
		diff, borrow := RippleSub(b, style, x, y)
		b.OutputBus("d", diff)
		b.Output("borrow", borrow)
		n := b.MustBuild()
		rng := stimulus.NewPRNG(4)
		for i := 0; i < 300; i++ {
			xv, yv := rng.Uintn(64), rng.Uintn(64)
			vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
			got := busUint(n, vals, "d")
			want := (xv - yv) & 63
			if got != want {
				t.Fatalf("%v: %d-%d = %d, got %d", style, xv, yv, want, got)
			}
			wantBorrow := uint64(0)
			if xv < yv {
				wantBorrow = 1
			}
			if vals[borrow].Bit() != wantBorrow {
				t.Fatalf("%v: borrow(%d,%d) = %d, want %d", style, xv, yv, vals[borrow].Bit(), wantBorrow)
			}
		}
	}
}

func TestIncrementer(t *testing.T) {
	b := netlist.NewBuilder("inc")
	x := b.InputBus("x", 5)
	out, cout := Incrementer(b, Gates, x)
	b.OutputBus("o", out)
	b.Output("cout", cout)
	n := b.MustBuild()
	for v := uint64(0); v < 32; v++ {
		vals := evalNet(t, n, map[string]uint64{"x": v})
		got := busUint(n, vals, "o") | vals[cout].Bit()<<5
		if got != v+1 {
			t.Fatalf("%d+1 = %d, got %d", v, v+1, got)
		}
	}
}

func TestCarrySaveAdd(t *testing.T) {
	b := netlist.NewBuilder("csa")
	x := b.InputBus("x", 4)
	y := b.InputBus("y", 4)
	z := b.InputBus("z", 4)
	sum, carry := CarrySaveAdd(b, Cells, x, y, z)
	b.OutputBus("s", sum)
	b.OutputBus("c", carry)
	n := b.MustBuild()
	rng := stimulus.NewPRNG(9)
	for i := 0; i < 200; i++ {
		xv, yv, zv := rng.Uintn(16), rng.Uintn(16), rng.Uintn(16)
		vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv, "z": zv})
		s := busUint(n, vals, "s")
		c := busUint(n, vals, "c")
		if s+2*c != xv+yv+zv {
			t.Fatalf("CSA(%d,%d,%d): s=%d c=%d, s+2c=%d want %d",
				xv, yv, zv, s, c, s+2*c, xv+yv+zv)
		}
	}
}

func TestMultipliersExhaustive4(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		for name, n := range map[string]*netlist.Netlist{
			"array":   NewArrayMultiplier(4, style),
			"wallace": NewWallaceMultiplier(4, style),
		} {
			for x := uint64(0); x < 16; x++ {
				for y := uint64(0); y < 16; y++ {
					vals := evalNet(t, n, map[string]uint64{"x": x, "y": y})
					got := busUint(n, vals, "p")
					if got != x*y {
						t.Fatalf("%s/%v: %d*%d = %d, got %d", name, style, x, y, x*y, got)
					}
				}
			}
		}
	}
}

func TestMultipliers8x8Random(t *testing.T) {
	rng := stimulus.NewPRNG(11)
	for name, n := range map[string]*netlist.Netlist{
		"array":   NewArrayMultiplier(8, Cells),
		"wallace": NewWallaceMultiplier(8, Cells),
	} {
		for i := 0; i < 300; i++ {
			x, y := rng.Uintn(256), rng.Uintn(256)
			vals := evalNet(t, n, map[string]uint64{"x": x, "y": y})
			if got := busUint(n, vals, "p"); got != x*y {
				t.Fatalf("%s: %d*%d = %d, got %d", name, x, y, x*y, got)
			}
		}
	}
}

func TestMultipliers16x16EventSim(t *testing.T) {
	// End-to-end through the event simulator, as the Table 1 experiment
	// runs them.
	for name, n := range map[string]*netlist.Netlist{
		"array":   NewArrayMultiplier(16, Cells),
		"wallace": NewWallaceMultiplier(16, Cells),
	} {
		s := sim.New(n, sim.Options{})
		rng := stimulus.NewPRNG(13)
		pi := make(logic.Vector, 32)
		for i := 0; i < 30; i++ {
			x, y := rng.Uintn(1<<16), rng.Uintn(1<<16)
			copy(pi[:16], logic.VectorFromUint(x, 16))
			copy(pi[16:], logic.VectorFromUint(y, 16))
			if err := s.Step(pi); err != nil {
				t.Fatal(err)
			}
			if got := s.Outputs().Uint(); got != x*y {
				t.Fatalf("%s: %d*%d = %d, got %d", name, x, y, x*y, got)
			}
		}
	}
}

func TestWallaceShallowerThanArray(t *testing.T) {
	// The whole point of Figure 7: the tree is much better balanced.
	arr := NewArrayMultiplier(8, Cells)
	wal := NewWallaceMultiplier(8, Cells)
	if wal.LogicDepth() >= arr.LogicDepth() {
		t.Errorf("wallace depth %d not below array depth %d", wal.LogicDepth(), arr.LogicDepth())
	}
}

func TestGreaterThanAndEqual(t *testing.T) {
	b := netlist.NewBuilder("cmp")
	x := b.InputBus("x", 4)
	y := b.InputBus("y", 4)
	gt := GreaterThan(b, x, y)
	eq := Equal(b, x, y)
	b.Output("gt", gt)
	b.Output("eq", eq)
	n := b.MustBuild()
	for xv := uint64(0); xv < 16; xv++ {
		for yv := uint64(0); yv < 16; yv++ {
			vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
			if (vals[gt] == logic.L1) != (xv > yv) {
				t.Fatalf("gt(%d,%d) = %v", xv, yv, vals[gt])
			}
			if (vals[eq] == logic.L1) != (xv == yv) {
				t.Fatalf("eq(%d,%d) = %v", xv, yv, vals[eq])
			}
		}
	}
}

func TestMinMax(t *testing.T) {
	b := netlist.NewBuilder("mm")
	x := b.InputBus("x", 5)
	y := b.InputBus("y", 5)
	min, max, xg := MinMax(b, x, y)
	b.OutputBus("min", min)
	b.OutputBus("max", max)
	b.Output("xg", xg)
	n := b.MustBuild()
	rng := stimulus.NewPRNG(21)
	for i := 0; i < 400; i++ {
		xv, yv := rng.Uintn(32), rng.Uintn(32)
		vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
		wantMin, wantMax := xv, yv
		if yv < xv {
			wantMin, wantMax = yv, xv
		}
		if busUint(n, vals, "min") != wantMin || busUint(n, vals, "max") != wantMax {
			t.Fatalf("minmax(%d,%d) = (%d,%d)", xv, yv,
				busUint(n, vals, "min"), busUint(n, vals, "max"))
		}
	}
}

func TestAbsDiffExhaustive(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		b := netlist.NewBuilder("ad")
		x := b.InputBus("x", 4)
		y := b.InputBus("y", 4)
		d := AbsDiff(b, style, x, y)
		b.OutputBus("d", d)
		n := b.MustBuild()
		for xv := uint64(0); xv < 16; xv++ {
			for yv := uint64(0); yv < 16; yv++ {
				vals := evalNet(t, n, map[string]uint64{"x": xv, "y": yv})
				want := xv - yv
				if yv > xv {
					want = yv - xv
				}
				if got := busUint(n, vals, "d"); got != want {
					t.Fatalf("%v: |%d-%d| = %d, got %d", style, xv, yv, want, got)
				}
			}
		}
	}
}

// dirdetRef is the reference model of the direction detector.
func dirdetRef(a0, a1, a2, b0, b1, b2, thr uint64) (dir, min, max uint64) {
	abs := func(x, y uint64) uint64 {
		if x > y {
			return x - y
		}
		return y - x
	}
	d := [3]uint64{abs(a0, b2), abs(a1, b1), abs(a2, b0)}
	minIdx, min, max := 0, d[0], d[0]
	for i := 1; i < 3; i++ {
		if d[i] < min {
			min, minIdx = d[i], i
		}
		if d[i] > max {
			max = d[i]
		}
	}
	dir = 1 // default: along a[1],b[1]
	if max-min > thr {
		dir = uint64(minIdx)
	}
	return dir, min, max
}

func TestDirectionDetectorAgainstReference(t *testing.T) {
	const w = 8
	for _, style := range []Style{Cells, Gates} {
		n := NewDirectionDetector(DirDetConfig{Width: w, Style: style})
		rng := stimulus.NewPRNG(31)
		for i := 0; i < 400; i++ {
			in := map[string]uint64{
				"a0": rng.Uintn(256), "a1": rng.Uintn(256), "a2": rng.Uintn(256),
				"b0": rng.Uintn(256), "b1": rng.Uintn(256), "b2": rng.Uintn(256),
				"thr": rng.Uintn(64),
			}
			vals := evalNet(t, n, in)
			wantDir, wantMin, wantMax := dirdetRef(in["a0"], in["a1"], in["a2"], in["b0"], in["b1"], in["b2"], in["thr"])
			if got := busUint(n, vals, "min"); got != wantMin {
				t.Fatalf("%v %v: min = %d, want %d", style, in, got, wantMin)
			}
			if got := busUint(n, vals, "max"); got != wantMax {
				t.Fatalf("%v %v: max = %d, want %d", style, in, got, wantMax)
			}
			if got := busUint(n, vals, "dir"); got != wantDir {
				t.Fatalf("%v %v: dir = %d, want %d", style, in, got, wantDir)
			}
		}
	}
}

func TestDirectionDetectorTieBreaks(t *testing.T) {
	// All differences equal: spread 0, never above threshold → default.
	n := NewDirectionDetector(DirDetConfig{Width: 4, Style: Cells})
	vals := evalNet(t, n, map[string]uint64{
		"a0": 5, "a1": 5, "a2": 5, "b0": 5, "b1": 5, "b2": 5, "thr": 0,
	})
	if got := busUint(n, vals, "dir"); got != 1 {
		t.Fatalf("tie dir = %d, want default 1", got)
	}
	// is_min one-hot must have exactly one bit set.
	if oneHot := busUint(n, vals, "is_min"); oneHot != 1 && oneHot != 2 && oneHot != 4 {
		t.Fatalf("is_min = %03b, want one-hot", oneHot)
	}
}

func TestDirectionDetectorOneHotFlags(t *testing.T) {
	n := NewDirectionDetector(DirDetConfig{Width: 6, Style: Cells})
	rng := stimulus.NewPRNG(77)
	for i := 0; i < 300; i++ {
		in := map[string]uint64{
			"a0": rng.Uintn(64), "a1": rng.Uintn(64), "a2": rng.Uintn(64),
			"b0": rng.Uintn(64), "b1": rng.Uintn(64), "b2": rng.Uintn(64),
			"thr": rng.Uintn(16),
		}
		vals := evalNet(t, n, in)
		for _, bus := range []string{"is_min", "is_max"} {
			v := busUint(n, vals, bus)
			if v != 1 && v != 2 && v != 4 {
				t.Fatalf("%s = %03b, want one-hot (inputs %v)", bus, v, in)
			}
		}
	}
}

func TestDirectionDetectorRegisteredFFCount(t *testing.T) {
	// Paper Table 3, circuit 1: 48 flipflops = 6 input buses × 8 bits.
	n := NewDirectionDetector(DirDetConfig{Width: 8, Style: Cells, RegisterInputs: true})
	if got := n.NumDFFs(); got != 48 {
		t.Errorf("registered dirdet has %d DFFs, want 48", got)
	}
	un := NewDirectionDetector(DirDetConfig{Width: 8, Style: Cells})
	if un.NumDFFs() != 0 {
		t.Error("unregistered dirdet must have no DFFs")
	}
}

func TestDirectionDetectorRegisteredFunctional(t *testing.T) {
	// Registered variant computes the same function one cycle later.
	n := NewDirectionDetector(DirDetConfig{Width: 6, Style: Cells, RegisterInputs: true})
	s := sim.New(n, sim.Options{})
	rng := stimulus.NewPRNG(5)
	type inputs struct{ a0, a1, a2, b0, b1, b2, thr uint64 }
	var prev inputs
	pi := make(logic.Vector, 7*6)
	for i := 0; i < 50; i++ {
		in := inputs{rng.Uintn(64), rng.Uintn(64), rng.Uintn(64), rng.Uintn(64), rng.Uintn(64), rng.Uintn(64), rng.Uintn(16)}
		for j, v := range []uint64{in.a0, in.a1, in.a2, in.b0, in.b1, in.b2, in.thr} {
			copy(pi[j*6:(j+1)*6], logic.VectorFromUint(v, 6))
		}
		if err := s.Step(pi); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			// Threshold is unregistered, so it pairs with current thr.
			wantDir, wantMin, wantMax := dirdetRef(prev.a0, prev.a1, prev.a2, prev.b0, prev.b1, prev.b2, in.thr)
			gotDir := s.BusValue(n.Bus("dir")).Uint()
			gotMin := s.BusValue(n.Bus("min")).Uint()
			gotMax := s.BusValue(n.Bus("max")).Uint()
			if gotDir != wantDir || gotMin != wantMin || gotMax != wantMax {
				t.Fatalf("cycle %d: got (%d,%d,%d), want (%d,%d,%d)",
					i, gotDir, gotMin, gotMax, wantDir, wantMin, wantMax)
			}
		}
		prev = in
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	b := netlist.NewBuilder("w")
	x := b.InputBus("x", 3)
	y := b.InputBus("y", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RippleAdd(b, Cells, x, y, x[0])
}

func TestDirDetWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirectionDetector(DirDetConfig{Width: 1})
}

func TestStyleString(t *testing.T) {
	if Cells.String() != "cells" || Gates.String() != "gates" {
		t.Error("style names")
	}
}

func TestCircuitNames(t *testing.T) {
	if NewRCA(16, Cells).Name != "rca16" {
		t.Error("rca name")
	}
	if NewArrayMultiplier(8, Gates).Name != "arraymul8g" {
		t.Error("array name")
	}
	n := NewDirectionDetector(DirDetConfig{Width: 8, Style: Cells, RegisterInputs: true})
	if n.Name != "dirdet8r" {
		t.Errorf("dirdet name %q", n.Name)
	}
}
