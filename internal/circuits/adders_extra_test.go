package circuits

import (
	"testing"
	"testing/quick"

	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

func TestCLAExhaustive4(t *testing.T) {
	n := NewCLA(4)
	for a := uint64(0); a < 16; a++ {
		for bb := uint64(0); bb < 16; bb++ {
			vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
			got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<4
			if got != a+bb {
				t.Fatalf("%d+%d = %d, got %d", a, bb, a+bb, got)
			}
		}
	}
}

func TestCLA16Property(t *testing.T) {
	n := NewCLA(16)
	f := func(a, bb uint16) bool {
		vals := evalNet(t, n, map[string]uint64{"a": uint64(a), "b": uint64(bb)})
		got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<16
		return got == uint64(a)+uint64(bb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCLAWidthsNotMultipleOf4(t *testing.T) {
	for _, w := range []int{3, 5, 6, 7, 9, 13} {
		n := NewCLA(w)
		rng := stimulus.NewPRNG(uint64(w))
		lim := uint64(1) << uint(w)
		for i := 0; i < 100; i++ {
			a, bb := rng.Uintn(lim), rng.Uintn(lim)
			vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
			got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<uint(w)
			if got != a+bb {
				t.Fatalf("w=%d: %d+%d = %d, got %d", w, a, bb, a+bb, got)
			}
		}
	}
}

func TestCarrySelectExhaustive4(t *testing.T) {
	for _, blockSize := range []int{1, 2, 3, 4} {
		for _, style := range []Style{Cells, Gates} {
			n := NewCarrySelect(4, blockSize, style)
			for a := uint64(0); a < 16; a++ {
				for bb := uint64(0); bb < 16; bb++ {
					vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
					got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<4
					if got != a+bb {
						t.Fatalf("block %d style %v: %d+%d = %d, got %d",
							blockSize, style, a, bb, a+bb, got)
					}
				}
			}
		}
	}
}

func TestCarrySelect16Random(t *testing.T) {
	n := NewCarrySelect(16, 4, Cells)
	rng := stimulus.NewPRNG(17)
	for i := 0; i < 500; i++ {
		a, bb := rng.Uintn(1<<16), rng.Uintn(1<<16)
		vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
		got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<16
		if got != a+bb {
			t.Fatalf("%d+%d = %d, got %d", a, bb, a+bb, got)
		}
	}
}

func TestCarrySkipExhaustive4(t *testing.T) {
	for _, blockSize := range []int{1, 2, 3, 4} {
		n := NewCarrySkip(4, blockSize, Cells)
		for a := uint64(0); a < 16; a++ {
			for bb := uint64(0); bb < 16; bb++ {
				vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
				got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<4
				if got != a+bb {
					t.Fatalf("block %d: %d+%d = %d, got %d", blockSize, a, bb, a+bb, got)
				}
			}
		}
	}
}

func TestCarrySkip16Random(t *testing.T) {
	for _, style := range []Style{Cells, Gates} {
		n := NewCarrySkip(16, 4, style)
		rng := stimulus.NewPRNG(29)
		for i := 0; i < 400; i++ {
			a, bb := rng.Uintn(1<<16), rng.Uintn(1<<16)
			vals := evalNet(t, n, map[string]uint64{"a": a, "b": bb})
			got := busUint(n, vals, "s") | vals[n.Bus("cout")[0]].Bit()<<16
			if got != a+bb {
				t.Fatalf("%v: %d+%d = %d, got %d", style, a, bb, a+bb, got)
			}
		}
	}
}

func TestCarrySkipPanicsOnBadBlock(t *testing.T) {
	b := netlist.NewBuilder("p")
	x := b.InputBus("x", 4)
	y := b.InputBus("y", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CarrySkipAdd(b, Cells, x, y, x[0], 0)
}

func TestCLAShallowerThanRCA(t *testing.T) {
	// The architectural point: the lookahead tree cuts depth, which is
	// what reduces glitching.
	rca := NewRCA(16, Gates)
	cla := NewCLA(16)
	if cla.LogicDepth() >= rca.LogicDepth() {
		t.Errorf("CLA depth %d not below gate-level RCA depth %d", cla.LogicDepth(), rca.LogicDepth())
	}
	csel := NewCarrySelect(16, 4, Gates)
	if csel.LogicDepth() >= rca.LogicDepth() {
		t.Errorf("carry-select depth %d not below RCA depth %d", csel.LogicDepth(), rca.LogicDepth())
	}
}

func TestCarrySelectPanicsOnBadBlock(t *testing.T) {
	b := netlist.NewBuilder("p")
	x := b.InputBus("x", 4)
	y := b.InputBus("y", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CarrySelectAdd(b, Cells, x, y, x[0], 0)
}
