package circuits

import (
	"fmt"

	"glitchsim/netlist"
)

// RippleAdd builds an N-bit ripple-carry adder (the paper's §3 circuit)
// over equal-width operands and returns the sum bits and carry out.
func RippleAdd(b *netlist.Builder, style Style, x, y []netlist.NetID, cin netlist.NetID) (sum []netlist.NetID, cout netlist.NetID) {
	mustSameWidth("RippleAdd", x, y)
	sum = make([]netlist.NetID, len(x))
	carry := cin
	for i := range x {
		sum[i], carry = FullAdd(b, style, x[i], y[i], carry)
	}
	return sum, carry
}

// RippleSub builds a ripple-borrow subtractor computing x − y in two's
// complement (x + ~y + 1). It returns the difference bits and a borrow
// flag that is 1 when x < y (i.e. the complement of the adder carry out).
func RippleSub(b *netlist.Builder, style Style, x, y []netlist.NetID) (diff []netlist.NetID, borrow netlist.NetID) {
	mustSameWidth("RippleSub", x, y)
	ny := NotBus(b, y)
	one := b.Const(1)
	diff, cout := RippleAdd(b, style, x, ny, one)
	return diff, b.Not(cout)
}

// RippleSubDiff builds only the difference bits of x − y for callers
// with no use for the borrow flag: the most significant position
// instantiates just the sum logic, so no dead borrow cone is built.
func RippleSubDiff(b *netlist.Builder, style Style, x, y []netlist.NetID) []netlist.NetID {
	mustSameWidth("RippleSubDiff", x, y)
	ny := NotBus(b, y)
	diff := make([]netlist.NetID, len(x))
	carry := b.Const(1)
	last := len(x) - 1
	for i := 0; i < last; i++ {
		diff[i], carry = FullAdd(b, style, x[i], ny[i], carry)
	}
	diff[last] = FullAddSum(b, style, x[last], ny[last], carry)
	return diff
}

// Incrementer builds x+1 from half adders, returning the incremented bus
// and the overflow carry.
func Incrementer(b *netlist.Builder, style Style, x []netlist.NetID) (out []netlist.NetID, cout netlist.NetID) {
	out = make([]netlist.NetID, len(x))
	carry := b.Const(1)
	for i := range x {
		out[i], carry = HalfAdd(b, style, x[i], carry)
	}
	return out, carry
}

// CarrySaveAdd builds one carry-save adder row: it reduces three
// equal-width operands to a sum vector and a carry vector (carry bits
// have weight 2^{i+1}, returned unshifted). This is the building block of
// the Wallace tree's "10bit CSA / 13bit CSA / ..." stages in Figure 7.
func CarrySaveAdd(b *netlist.Builder, style Style, x, y, z []netlist.NetID) (sum, carry []netlist.NetID) {
	mustSameWidth("CarrySaveAdd", x, y)
	mustSameWidth("CarrySaveAdd", y, z)
	sum = make([]netlist.NetID, len(x))
	carry = make([]netlist.NetID, len(x))
	for i := range x {
		sum[i], carry[i] = FullAdd(b, style, x[i], y[i], z[i])
	}
	return sum, carry
}

// NewRCA returns a complete N-bit ripple-carry adder netlist with input
// buses "a" and "b", output bus "s" and output "cout". Sum and carry
// nets are additionally grouped into buses "sum" and "carry" (carry[i] is
// C_{i+1}) so activity reports can reproduce Figure 5 per-bit data.
func NewRCA(width int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("rca", width, style))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	zero := b.Const(0)
	sum := make([]netlist.NetID, width)
	carries := make([]netlist.NetID, width)
	carry := zero
	for i := 0; i < width; i++ {
		sum[i], carry = FullAdd(b, style, a[i], bb[i], carry)
		carries[i] = carry
	}
	b.OutputBus("s", sum)
	b.Output("cout", carry)
	b.NameBus("sum", sum)
	b.NameBus("carry", carries)
	return b.MustBuild()
}

func circuitName(kind string, width int, style Style) string {
	name := fmt.Sprintf("%s%d", kind, width)
	if style == Gates {
		name += "g"
	}
	return name
}
