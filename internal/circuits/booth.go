package circuits

import "glitchsim/netlist"

// BoothMultiply builds a radix-4 (modified) Booth multiplier for N-bit
// two's-complement operands, N even. The multiplier y is recoded into
// N/2 signed digits in {-2,-1,0,+1,+2}; each digit selects a partial
// product (0, ±x, ±2x) which a carry-save tree accumulates, with the +1
// correction bits for negated rows folded into the array.
//
// Booth recoding halves the partial-product count relative to the array
// multiplier but adds recode/select logic with its own reconvergent
// paths — a third point in the architecture-vs-glitching space between
// the array and the Wallace tree. Returns the 2N-bit product.
func BoothMultiply(b *netlist.Builder, style Style, x, y []netlist.NetID) []netlist.NetID {
	mustSameWidth("BoothMultiply", x, y)
	n := len(x)
	if n%2 != 0 {
		panic("circuits: Booth multiplier needs an even operand width")
	}
	w := 2 * n
	zero := b.Const(0)

	// Sign-extend x to 2N bits once; shifted variant 2x = x << 1.
	xe := make([]netlist.NetID, w)
	x2 := make([]netlist.NetID, w)
	for i := 0; i < w; i++ {
		if i < n {
			xe[i] = x[i]
		} else {
			xe[i] = x[n-1]
		}
		if i == 0 {
			x2[i] = zero
		} else {
			x2[i] = xe[i-1]
		}
	}

	// cols[k] collects the bits of weight 2^k (modulo 2^{2N} arithmetic,
	// so sign extensions simply truncate).
	cols := make([][]netlist.NetID, w)

	yPrev := zero
	for d := 0; d < n/2; d++ {
		y0 := y[2*d]
		var y1 netlist.NetID
		if 2*d+1 < n {
			y1 = y[2*d+1]
		} else {
			y1 = y[n-1]
		}
		// Booth digit from (y1, y0, yPrev):
		//   neg  = y1                        (digit < 0 ... with zero handled by select)
		//   two  = (y1 & y0 & yPrev) | (~y1 & ~(y0|yPrev) & (y0|yPrev))... use standard:
		//   one  = y0 XOR yPrev
		//   two  = (y1 XOR y0=0? ) -> two = (y1 & ~y0 & ~yPrev) | (~y1 & y0 & yPrev)
		one := b.Xor(y0, yPrev)
		two := b.Or(
			b.And(y1, b.Not(y0), b.Not(yPrev)),
			b.And(b.Not(y1), y0, yPrev),
		)
		neg := y1

		// Select |pp| = one?x : two?2x : 0, then conditionally invert.
		shift := 2 * d
		for i := 0; i < w-shift; i++ {
			sel := b.Or(b.And(one, xe[i]), b.And(two, x2[i]))
			bit := b.Xor(sel, neg)
			cols[i+shift] = append(cols[i+shift], bit)
		}
		// +1 correction for the one's-complement negation: −v = ~v + 1
		// holds for every selected value including −0 (the (1,1,1)
		// digit produces an all-ones row, and all-ones + 1 ≡ 0 in
		// mod-2^{2N} arithmetic), so the correction is simply `neg`.
		cols[shift] = append(cols[shift], neg)
		yPrev = y1
	}

	// Wallace-reduce the columns and ripple-merge, as in WallaceMultiply.
	for maxHeight(cols) > 2 {
		next := make([][]netlist.NetID, w)
		for k, col := range cols {
			i := 0
			for ; i+3 <= len(col); i += 3 {
				s, c := FullAdd(b, style, col[i], col[i+1], col[i+2])
				next[k] = append(next[k], s)
				if k+1 < w {
					next[k+1] = append(next[k+1], c)
				}
			}
			if len(col)-i == 2 {
				s, c := HalfAdd(b, style, col[i], col[i+1])
				next[k] = append(next[k], s)
				if k+1 < w {
					next[k+1] = append(next[k+1], c)
				}
			} else if len(col)-i == 1 {
				next[k] = append(next[k], col[i])
			}
		}
		cols = next
	}
	product := make([]netlist.NetID, w)
	carry := zero
	for k := 0; k < w; k++ {
		switch len(cols[k]) {
		case 0:
			product[k] = carry
			carry = zero
		case 1:
			if carry == zero {
				product[k] = cols[k][0]
			} else {
				product[k], carry = HalfAdd(b, style, cols[k][0], carry)
			}
		case 2:
			product[k], carry = FullAdd(b, style, cols[k][0], cols[k][1], carry)
		}
	}
	return product
}

// NewBoothMultiplier returns a complete N×N two's-complement Booth
// multiplier netlist with input buses "x", "y" and output bus "p"
// (2N bits, two's complement).
func NewBoothMultiplier(width int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("boothmul", width, style))
	x := b.InputBus("x", width)
	y := b.InputBus("y", width)
	p := BoothMultiply(b, style, x, y)
	b.OutputBus("p", p)
	return b.MustBuild()
}
