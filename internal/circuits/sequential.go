package circuits

import (
	"fmt"

	"glitchsim/netlist"
)

// PipelinedArrayMultiply builds the ArrayMultiply structure with register
// banks cut in after every rowsPerStage adder rows: the running
// accumulator, its top carry and the not-yet-consumed operand bits all
// pass through a DFF bank at each cut, and every product bit is aligned
// to the final stage with a DFF chain plus one output register, so the
// whole 2N-bit product emerges registered and cycle-aligned. The result
// is the paper's array multiplier as an actual pipelined datapath rather
// than a combinational slice. Returns the 2N-bit product.
func PipelinedArrayMultiply(b *netlist.Builder, style Style, x, y []netlist.NetID, rowsPerStage int) []netlist.NetID {
	mustSameWidth("PipelinedArrayMultiply", x, y)
	if rowsPerStage < 1 {
		panic("circuits: PipelinedArrayMultiply needs rowsPerStage >= 1")
	}
	n := len(x)
	// Operand bits delayed to the current stage. y bits already consumed
	// by earlier rows are never registered again.
	xd := append([]netlist.NetID(nil), x...)
	yd := append([]netlist.NetID(nil), y...)
	product := make([]netlist.NetID, 2*n)
	stageOf := make([]int, 2*n)

	acc := make([]netlist.NetID, n)
	for j := range acc {
		acc[j] = b.And(xd[j], yd[0])
	}
	product[0] = acc[0]
	topCarry := b.Const(0)
	stage, rows := 0, 0
	for i := 1; i < n; i++ {
		if rows == rowsPerStage {
			// acc[0] is a finished product bit, already captured into
			// product[] before the cut and aligned by its own DFF chain;
			// only acc[1:] is read past the register bank.
			copy(acc[1:], b.RegisterBus(acc[1:]))
			topCarry = b.DFF(topCarry)
			xd = b.RegisterBus(xd)
			for k := i; k < n; k++ {
				yd[k] = b.DFF(yd[k])
			}
			stage++
			rows = 0
		}
		// Add pp[i] (weight i+j) to acc shifted down one bit, exactly as
		// in ArrayMultiply, but from the stage-delayed operands.
		ppi := make([]netlist.NetID, n)
		for j := range ppi {
			ppi[j] = b.And(xd[j], yd[i])
		}
		opA := make([]netlist.NetID, n)
		copy(opA, acc[1:])
		opA[n-1] = topCarry
		sum, cout := RippleAdd(b, style, opA, ppi, b.Const(0))
		product[i] = sum[0]
		stageOf[i] = stage
		acc = sum
		topCarry = cout
		rows++
	}
	copy(product[n:2*n-1], acc[1:])
	product[2*n-1] = topCarry
	for k := n; k < 2*n; k++ {
		stageOf[k] = stage
	}
	latency := stage + 1
	for k := range product {
		product[k] = b.DFFChain(product[k], latency-stageOf[k])
	}
	return product
}

// NewPipelinedMultiplier returns a complete N×N unsigned pipelined array
// multiplier netlist with input buses "x", "y" and registered output bus
// "p". Latency is ceil((width−1)/rowsPerStage)+1 cycles.
func NewPipelinedMultiplier(width, rowsPerStage int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("pipemult", width, style))
	x := b.InputBus("x", width)
	y := b.InputBus("y", width)
	p := PipelinedArrayMultiply(b, style, x, y, rowsPerStage)
	b.OutputBus("p", p)
	return b.MustBuild()
}

// NewAccumulator returns a width-bit accumulator computing acc ← acc + x
// on every clock edge, with input bus "x", registered output bus "acc"
// and overflow output "cout". When gated, an extra "en" input holds the
// register contents through a recirculating mux (acc ← en ? acc+x : acc),
// the netlist-level model of a clock-gated register bank: with en low the
// register inputs are quiet and only the adder cone toggles.
func NewAccumulator(width int, gated bool) *netlist.Netlist {
	name := fmt.Sprintf("accum%d", width)
	if gated {
		name += "cg"
	}
	b := netlist.NewBuilder(name)
	x := b.InputBus("x", width)
	var en netlist.NetID
	if gated {
		en = b.Input("en")
	}
	// The register outputs feed back into the adder (and the hold mux),
	// but do not exist yet while those cells are built: read a placeholder
	// constant first and Rewire to the real Q nets afterwards, the same
	// construction retime.Apply uses. The constant doubles as the ripple
	// carry-in, so it stays connected once every placeholder read has
	// been rewired to a Q net.
	placeholder := b.Const(0)
	sum := make([]netlist.NetID, width)
	d := make([]netlist.NetID, width)
	faCells := make([]netlist.CellID, width)
	muxCells := make([]netlist.CellID, width)
	carry := placeholder
	for i := range sum {
		faCells[i] = netlist.CellID(b.NumCells())
		sum[i], carry = b.FullAdder(x[i], placeholder, carry)
		d[i] = sum[i]
	}
	if gated {
		for i := range d {
			muxCells[i] = netlist.CellID(b.NumCells())
			d[i] = b.Mux(placeholder, sum[i], en)
		}
	}
	q := b.RegisterBus(d)
	for i, qi := range q {
		b.Rewire(faCells[i], 1, qi)
		if gated {
			b.Rewire(muxCells[i], 0, qi)
		}
	}
	b.OutputBus("acc", q)
	b.Output("cout", carry)
	b.NameBus("sum", sum)
	return b.MustBuild()
}
