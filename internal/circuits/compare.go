package circuits

import "glitchsim/netlist"

// GreaterThan builds an unsigned magnitude comparator returning a net
// that is 1 when x > y. It ripples from the LSB:
// gt_{i} = x_i·¬y_i + (x_i ⊙ y_i)·gt_{i-1}.
func GreaterThan(b *netlist.Builder, x, y []netlist.NetID) netlist.NetID {
	mustSameWidth("GreaterThan", x, y)
	var gt netlist.NetID = netlist.NoNet
	for i := range x {
		bitGT := b.And(x[i], b.Not(y[i]))
		if gt == netlist.NoNet {
			gt = bitGT
			continue
		}
		eq := b.Xnor(x[i], y[i])
		gt = b.Or(bitGT, b.And(eq, gt))
	}
	return gt
}

// Equal builds an equality comparator over two buses.
func Equal(b *netlist.Builder, x, y []netlist.NetID) netlist.NetID {
	mustSameWidth("Equal", x, y)
	bits := make([]netlist.NetID, len(x))
	for i := range x {
		bits[i] = b.Xnor(x[i], y[i])
	}
	if len(bits) == 1 {
		return bits[0]
	}
	return b.And(bits...)
}

// MinMax builds the "select min/max" unit of Figure 8 for two buses:
// it returns min(x,y), max(x,y) and the comparator output xGreater.
func MinMax(b *netlist.Builder, x, y []netlist.NetID) (min, max []netlist.NetID, xGreater netlist.NetID) {
	xGreater = GreaterThan(b, x, y)
	min = Mux2Bus(b, x, y, xGreater) // xGreater=1 → min is y
	max = Mux2Bus(b, y, x, xGreater) // xGreater=1 → max is x
	return min, max, xGreater
}

// AbsDiff builds the |a−b| unit of Figure 8 as two ripple subtractors and
// a bus multiplexer selected by the borrow: out = (a<b) ? b−a : a−b.
// The duplicated subtractor makes the block's delay paths realistically
// unbalanced — exactly the structure whose glitches §4.2 measures.
func AbsDiff(b *netlist.Builder, style Style, x, y []netlist.NetID) []netlist.NetID {
	mustSameWidth("AbsDiff", x, y)
	dxy, borrow := RippleSub(b, style, x, y)
	dyx := RippleSubDiff(b, style, y, x)
	return Mux2Bus(b, dxy, dyx, borrow)
}
