package circuits

import "glitchsim/netlist"

// partialProducts builds the N×M AND matrix pp[i][j] = x[j]·y[i].
func partialProducts(b *netlist.Builder, x, y []netlist.NetID) [][]netlist.NetID {
	pp := make([][]netlist.NetID, len(y))
	for i := range y {
		pp[i] = make([]netlist.NetID, len(x))
		for j := range x {
			pp[i][j] = b.And(x[j], y[i])
		}
	}
	return pp
}

// ArrayMultiply builds the classic ripple-carry array multiplier of the
// paper's Figure 6: each row of multiplier cells (AND + full adder) adds
// one shifted partial product to the running sum, with carries rippling
// within the row. The structure has many unbalanced delay paths — the
// paper's high-glitch architecture. Returns the 2N-bit product.
func ArrayMultiply(b *netlist.Builder, style Style, x, y []netlist.NetID) []netlist.NetID {
	mustSameWidth("ArrayMultiply", x, y)
	n := len(x)
	pp := partialProducts(b, x, y)
	product := make([]netlist.NetID, 2*n)

	// Running accumulator: row 0 of partial products.
	acc := append([]netlist.NetID(nil), pp[0]...)
	product[0] = acc[0]
	topCarry := b.Const(0)
	for i := 1; i < n; i++ {
		// Add pp[i] (weight i+j) to acc shifted down one bit:
		// operand A = acc[1..n-1] ++ topCarry.
		opA := make([]netlist.NetID, n)
		copy(opA, acc[1:])
		opA[n-1] = topCarry
		zero := b.Const(0)
		sum, cout := RippleAdd(b, style, opA, pp[i], zero)
		product[i] = sum[0]
		acc = sum
		topCarry = cout
	}
	copy(product[n:2*n-1], acc[1:])
	product[2*n-1] = topCarry
	return product
}

// WallaceMultiply builds a Wallace-tree multiplier (the paper's Figure
// 7): partial product columns are reduced with carry-save adder stages
// until at most two rows remain, then a final ripple-carry adder merges
// them. The balanced tree has far fewer unbalanced delay paths, and —
// as Table 1 shows — far fewer useless transitions. Returns the 2N-bit
// product.
func WallaceMultiply(b *netlist.Builder, style Style, x, y []netlist.NetID) []netlist.NetID {
	mustSameWidth("WallaceMultiply", x, y)
	n := len(x)
	pp := partialProducts(b, x, y)

	// cols[k] holds the bits of weight 2^k awaiting reduction. Since
	// x·y < 2^{2n}, any carry out of the top column is provably constant
	// 0, so it is dropped at the source rather than reduced in a spare
	// column nothing reads.
	cols := make([][]netlist.NetID, 2*n)
	for i := range y {
		for j := range x {
			cols[i+j] = append(cols[i+j], pp[i][j])
		}
	}

	// Wallace reduction: in every stage, each column applies full adders
	// to groups of three and a half adder to a remaining pair, until all
	// columns have height ≤ 2.
	for maxHeight(cols) > 2 {
		next := make([][]netlist.NetID, len(cols))
		for k, col := range cols {
			i := 0
			for ; i+3 <= len(col); i += 3 {
				s, c := FullAdd(b, style, col[i], col[i+1], col[i+2])
				next[k] = append(next[k], s)
				if k+1 < len(next) {
					next[k+1] = append(next[k+1], c)
				}
			}
			if len(col)-i == 2 {
				s, c := HalfAdd(b, style, col[i], col[i+1])
				next[k] = append(next[k], s)
				if k+1 < len(next) {
					next[k+1] = append(next[k+1], c)
				}
			} else if len(col)-i == 1 {
				next[k] = append(next[k], col[i])
			}
		}
		cols = next
	}

	// Final addition: merge the remaining ≤2 rows with a ripple-carry
	// adder (the "17bit RCA" of Figure 7).
	product := make([]netlist.NetID, 2*n)
	zero := b.Const(0)
	carry := zero
	for k := 0; k < 2*n; k++ {
		switch len(cols[k]) {
		case 0:
			product[k] = carry
			carry = zero
		case 1:
			if carry == zero {
				product[k] = cols[k][0]
			} else {
				product[k], carry = HalfAdd(b, style, cols[k][0], carry)
			}
		case 2:
			product[k], carry = FullAdd(b, style, cols[k][0], cols[k][1], carry)
		default:
			panic("circuits: wallace reduction left a column higher than 2")
		}
	}
	return product
}

func maxHeight(cols [][]netlist.NetID) int {
	h := 0
	for _, c := range cols {
		if len(c) > h {
			h = len(c)
		}
	}
	return h
}

// NewArrayMultiplier returns a complete N×N unsigned array multiplier
// netlist with input buses "x", "y" and output bus "p".
func NewArrayMultiplier(width int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("arraymul", width, style))
	x := b.InputBus("x", width)
	y := b.InputBus("y", width)
	p := ArrayMultiply(b, style, x, y)
	b.OutputBus("p", p)
	return b.MustBuild()
}

// NewWallaceMultiplier returns a complete N×N unsigned Wallace-tree
// multiplier netlist with input buses "x", "y" and output bus "p".
func NewWallaceMultiplier(width int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("wallacemul", width, style))
	x := b.InputBus("x", width)
	y := b.InputBus("y", width)
	p := WallaceMultiply(b, style, x, y)
	b.OutputBus("p", p)
	return b.MustBuild()
}
