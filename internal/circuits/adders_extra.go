package circuits

import "glitchsim/netlist"

// CarryLookaheadAdd builds a carry-lookahead adder with 4-bit lookahead
// blocks (ripple between blocks). Per bit, generate g=a·b and propagate
// p=a⊕b feed two-level AND/OR lookahead logic inside each block, so the
// carry tree is much shallower — and much better balanced — than a
// ripple chain. This is the style of arithmetic the paper's reference
// [2] (Callaway & Swartzlander) compares for transition counts.
func CarryLookaheadAdd(b *netlist.Builder, x, y []netlist.NetID, cin netlist.NetID) (sum []netlist.NetID, cout netlist.NetID) {
	mustSameWidth("CarryLookaheadAdd", x, y)
	n := len(x)
	g := make([]netlist.NetID, n)
	p := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		g[i] = b.And(x[i], y[i])
		p[i] = b.Xor(x[i], y[i])
	}
	sum = make([]netlist.NetID, n)
	carry := cin
	for blk := 0; blk < n; blk += 4 {
		end := blk + 4
		if end > n {
			end = n
		}
		// Carries within the block from two-level lookahead:
		// c_{i+1} = g_i + p_i g_{i-1} + ... + p_i...p_blk * carryIn.
		cins := make([]netlist.NetID, end-blk+1)
		cins[0] = carry
		for i := blk; i < end; i++ {
			terms := []netlist.NetID{g[i]}
			for j := blk; j < i; j++ {
				factors := []netlist.NetID{g[j]}
				for k := j + 1; k <= i; k++ {
					factors = append(factors, p[k])
				}
				terms = append(terms, b.And(factors...))
			}
			chain := []netlist.NetID{carry}
			for k := blk; k <= i; k++ {
				chain = append(chain, p[k])
			}
			terms = append(terms, b.And(chain...))
			if len(terms) == 1 {
				cins[i-blk+1] = terms[0]
			} else {
				cins[i-blk+1] = b.Or(terms...)
			}
		}
		for i := blk; i < end; i++ {
			sum[i] = b.Xor(p[i], cins[i-blk])
		}
		carry = cins[end-blk]
	}
	return sum, carry
}

// CarrySelectAdd builds a carry-select adder: each block computes both
// possible results with two ripple adders (carry-in 0 and 1) and a
// multiplexer picks the right one once the block carry arrives. Block
// carries still ripple, but each block's internal work happens in
// parallel — a middle ground between RCA and CLA in balance and cost.
func CarrySelectAdd(b *netlist.Builder, style Style, x, y []netlist.NetID, cin netlist.NetID, blockSize int) (sum []netlist.NetID, cout netlist.NetID) {
	mustSameWidth("CarrySelectAdd", x, y)
	if blockSize < 1 {
		panic("circuits: carry-select block size must be positive")
	}
	n := len(x)
	sum = make([]netlist.NetID, n)
	carry := cin
	for blk := 0; blk < n; blk += blockSize {
		end := blk + blockSize
		if end > n {
			end = n
		}
		xs, ys := x[blk:end], y[blk:end]
		zero := b.Const(0)
		one := b.Const(1)
		s0, c0 := RippleAdd(b, style, xs, ys, zero)
		s1, c1 := RippleAdd(b, style, xs, ys, one)
		sel := Mux2Bus(b, s0, s1, carry)
		copy(sum[blk:end], sel)
		carry = b.Mux(c0, c1, carry)
	}
	return sum, carry
}

// CarrySkipAdd builds a carry-skip adder: ripple blocks whose carry can
// bypass the block through a multiplexer when every bit propagates
// (block propagate = AND of the per-bit p_i). The skip path shortens the
// worst case but adds reconvergent carry paths — another distinct glitch
// profile between RCA and CLA.
func CarrySkipAdd(b *netlist.Builder, style Style, x, y []netlist.NetID, cin netlist.NetID, blockSize int) (sum []netlist.NetID, cout netlist.NetID) {
	mustSameWidth("CarrySkipAdd", x, y)
	if blockSize < 1 {
		panic("circuits: carry-skip block size must be positive")
	}
	n := len(x)
	sum = make([]netlist.NetID, n)
	carry := cin
	for blk := 0; blk < n; blk += blockSize {
		end := blk + blockSize
		if end > n {
			end = n
		}
		props := make([]netlist.NetID, 0, end-blk)
		blockIn := carry
		c := carry
		for i := blk; i < end; i++ {
			props = append(props, b.Xor(x[i], y[i]))
			sum[i], c = FullAdd(b, style, x[i], y[i], c)
		}
		var blockP netlist.NetID
		if len(props) == 1 {
			blockP = props[0]
		} else {
			blockP = b.And(props...)
		}
		// Skip: if every bit propagates, the block's carry out equals
		// its carry in, available without rippling.
		carry = b.Mux(c, blockIn, blockP)
	}
	return sum, carry
}

// NewCarrySkip returns a complete N-bit carry-skip adder netlist with
// the given block size and the same interface as NewRCA.
func NewCarrySkip(width, blockSize int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("cskip", width, style))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	zero := b.Const(0)
	sum, cout := CarrySkipAdd(b, style, a, bb, zero, blockSize)
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	b.NameBus("sum", sum)
	return b.MustBuild()
}

// NewCLA returns a complete N-bit carry-lookahead adder netlist with the
// same interface as NewRCA (buses "a", "b", "s", "cout").
func NewCLA(width int) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("cla", width, Gates))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	zero := b.Const(0)
	sum, cout := CarryLookaheadAdd(b, a, bb, zero)
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	b.NameBus("sum", sum)
	return b.MustBuild()
}

// NewCarrySelect returns a complete N-bit carry-select adder netlist
// with the given block size and the same interface as NewRCA.
func NewCarrySelect(width, blockSize int, style Style) *netlist.Netlist {
	b := netlist.NewBuilder(circuitName("csel", width, style))
	a := b.InputBus("a", width)
	bb := b.InputBus("b", width)
	zero := b.Const(0)
	sum, cout := CarrySelectAdd(b, style, a, bb, zero, blockSize)
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	b.NameBus("sum", sum)
	return b.MustBuild()
}
