package stats

import (
	"math"
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

func buildBuf(t *testing.T) (*netlist.Netlist, netlist.NetID, netlist.NetID) {
	t.Helper()
	b := netlist.NewBuilder("buf")
	x := b.Input("x")
	y := b.Buf(x)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n, x, y
}

func drive(t *testing.T, n *netlist.Netlist, c *Collector, bits []uint64) {
	t.Helper()
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(c)
	for _, bit := range bits {
		if err := s.Step(logic.Vector{logic.FromBit(bit)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProbAndToggle(t *testing.T) {
	n, x, y := buildBuf(t)
	c := NewCollector(n, nil)
	// 8 cycles: 1,1,1,1,0,0,0,0 -> p=0.5, one toggle in 7 pairs.
	drive(t, n, c, []uint64{1, 1, 1, 1, 0, 0, 0, 0})
	if c.Cycles() != 8 {
		t.Fatalf("cycles = %d", c.Cycles())
	}
	for _, id := range []netlist.NetID{x, y} {
		if got := c.Prob(id); got != 0.5 {
			t.Errorf("prob = %v, want 0.5", got)
		}
		if got := c.ToggleRate(id); math.Abs(got-1.0/7) > 1e-12 {
			t.Errorf("toggle = %v, want 1/7", got)
		}
	}
}

func TestAutocorrExtremes(t *testing.T) {
	n, x, _ := buildBuf(t)
	// Strongly positively correlated: long runs.
	c1 := NewCollector(n, nil)
	drive(t, n, c1, []uint64{1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0})
	if got := c1.Autocorr(x); got < 0.5 {
		t.Errorf("run-structured series autocorr = %v, want high", got)
	}
	// Alternating: strong negative correlation.
	n2, x2, _ := buildBuf(t)
	c2 := NewCollector(n2, nil)
	drive(t, n2, c2, []uint64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	if got := c2.Autocorr(x2); got > -0.5 {
		t.Errorf("alternating series autocorr = %v, want strongly negative", got)
	}
}

func TestConstantNetIsZero(t *testing.T) {
	n, _, _ := buildBuf(t)
	c := NewCollector(n, nil)
	drive(t, n, c, []uint64{1, 1, 1, 1})
	// x stuck at 1: p=1 -> autocorr defined as 0, toggle 0.
	if c.Autocorr(0) != 0 || c.ToggleRate(0) != 0 {
		t.Error("constant net should have zero autocorr and toggle rate")
	}
}

func TestRandomIsWhite(t *testing.T) {
	n, x, _ := buildBuf(t)
	c := NewCollector(n, nil)
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(c)
	rng := stimulus.NewPRNG(11)
	for i := 0; i < 20000; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(rng.Uint64())}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Prob(x); math.Abs(got-0.5) > 0.02 {
		t.Errorf("random prob = %v", got)
	}
	if got := c.Autocorr(x); math.Abs(got) > 0.03 {
		t.Errorf("random autocorr = %v, want ~0", got)
	}
	if got := c.ToggleRate(x); math.Abs(got-0.5) > 0.02 {
		t.Errorf("random toggle rate = %v, want ~0.5", got)
	}
}

func TestBusSummaryAndSelection(t *testing.T) {
	b := netlist.NewBuilder("bus")
	xs := b.InputBus("x", 4)
	inv := make([]netlist.NetID, 4)
	for i, id := range xs {
		inv[i] = b.Not(id)
	}
	b.OutputBus("o", inv)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Monitor only the output bus.
	c := NewCollector(n, n.Bus("o"))
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(c)
	rng := stimulus.NewPRNG(3)
	pi := make(logic.Vector, 4)
	for i := 0; i < 2000; i++ {
		for j := range pi {
			pi[j] = logic.FromBit(rng.Uint64())
		}
		if err := s.Step(pi); err != nil {
			t.Fatal(err)
		}
	}
	sum := c.Bus("o")
	if math.Abs(sum.MeanProb-0.5) > 0.05 || math.Abs(sum.MeanToggle-0.5) > 0.05 {
		t.Errorf("bus summary off: %+v", sum)
	}
	// Unmonitored bus reports zeros.
	if got := c.Bus("x"); got.MeanProb != 0 {
		t.Errorf("unmonitored bus should be zero, got %+v", got)
	}
	if got := c.Bus("nope"); got.MeanProb != 0 || got.Bus != "nope" {
		t.Errorf("unknown bus: %+v", got)
	}
}

// TestCorrelationDiesAfterAbsDiff verifies the paper's §4.2 claim: feed
// the direction detector smoothly varying (highly autocorrelated) video
// samples; the inputs show strong lag-1 autocorrelation, but after the
// absolute-difference stage the signals are already nearly white.
func TestCorrelationDiesAfterAbsDiff(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	c := NewCollector(n, nil)
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(c)
	src := stimulus.NewConcat(
		stimulus.NewCorrelated(6, 8, 2, 99),              // slow random walks: video-like
		stimulus.NewConstant(logic.VectorFromUint(8, 8)), // threshold
	)
	for i := 0; i < 4000; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Correlation is carried by the low-order bits that dominate the
	// switching activity; high bits of |a−b| stay correlated simply
	// because small differences keep them at 0. Compare the two least
	// significant bits, where nearly all transitions happen.
	lowBits := func(bus string) float64 {
		ids := n.Bus(bus)
		return (math.Abs(c.Autocorr(ids[0])) + math.Abs(c.Autocorr(ids[1]))) / 2
	}
	inputCorr := 0.0
	for _, bus := range []string{"a0", "a1", "a2", "b0", "b1", "b2"} {
		inputCorr += lowBits(bus)
	}
	inputCorr /= 6
	diffCorr := (lowBits("d0") + lowBits("d1") + lowBits("d2")) / 3

	if inputCorr < 0.1 {
		t.Fatalf("video inputs not correlated enough for the test: %v", inputCorr)
	}
	if diffCorr > inputCorr/2 {
		t.Errorf("correlation after abs-diff (%.3f) not well below inputs (%.3f) — paper §4.2 claim violated",
			diffCorr, inputCorr)
	}
	// Sanity: full-bus probabilities stay in range.
	if p := c.Bus("d0").MeanProb; p <= 0 || p >= 1 {
		t.Errorf("d0 probability %v implausible", p)
	}
}
