// Package stats measures signal statistics during simulation: per-net
// signal probability, cycle-to-cycle toggle rate and lag-1
// autocorrelation of the settled end-of-cycle values.
//
// The paper justifies random stimulus by claiming that "the original
// video input signal statistics and correlations are almost completely
// lost very early in the circuit, immediately after the absolute
// differences are taken" (§4.2). This package makes that claim testable:
// drive the direction detector with strongly correlated video-like
// samples and watch the autocorrelation collapse stage by stage.
package stats

import (
	"math"

	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// Collector is a sim.Monitor sampling settled end-of-cycle values of a
// set of nets.
type Collector struct {
	n       *netlist.Netlist
	include []bool
	nets    []netlist.NetID

	cur  []logic.V // running value (updated by OnChange)
	prev []logic.V // sample at the previous cycle end

	cycles  int
	ones    []uint64 // cycles with value 1
	toggles []uint64 // sample-to-sample changes
	both1   []uint64 // cycles where sample and previous sample are both 1
	pairs   []uint64 // valid consecutive known sample pairs
}

// NewCollector monitors the given nets (nil = every net including
// primary inputs).
func NewCollector(n *netlist.Netlist, nets []netlist.NetID) *Collector {
	if nets == nil {
		nets = make([]netlist.NetID, n.NumNets())
		for i := range nets {
			nets[i] = netlist.NetID(i)
		}
	}
	c := &Collector{
		n:       n,
		include: make([]bool, n.NumNets()),
		nets:    append([]netlist.NetID(nil), nets...),
		cur:     make([]logic.V, n.NumNets()),
		prev:    make([]logic.V, n.NumNets()),
		ones:    make([]uint64, n.NumNets()),
		toggles: make([]uint64, n.NumNets()),
		both1:   make([]uint64, n.NumNets()),
		pairs:   make([]uint64, n.NumNets()),
	}
	for _, id := range nets {
		c.include[id] = true
	}
	return c
}

// OnChange implements sim.Monitor.
func (c *Collector) OnChange(net netlist.NetID, _, _ int, _, newV logic.V) {
	if c.include[net] {
		c.cur[net] = newV
	}
}

// OnCycleEnd implements sim.Monitor: samples every monitored net.
func (c *Collector) OnCycleEnd(int) {
	for _, id := range c.nets {
		v := c.cur[id]
		if !v.Known() {
			continue
		}
		if v == logic.L1 {
			c.ones[id]++
		}
		if p := c.prev[id]; p.Known() {
			c.pairs[id]++
			if p != v {
				c.toggles[id]++
			}
			if p == logic.L1 && v == logic.L1 {
				c.both1[id]++
			}
		}
		c.prev[id] = v
	}
	c.cycles++
}

// Cycles returns the number of sampled cycles.
func (c *Collector) Cycles() int { return c.cycles }

// Prob returns the measured signal probability P(net = 1).
func (c *Collector) Prob(net netlist.NetID) float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.ones[net]) / float64(c.cycles)
}

// ToggleRate returns the fraction of cycle boundaries at which the
// settled value changed: the useful-transition rate of the net.
func (c *Collector) ToggleRate(net netlist.NetID) float64 {
	if c.pairs[net] == 0 {
		return 0
	}
	return float64(c.toggles[net]) / float64(c.pairs[net])
}

// Autocorr returns the lag-1 autocorrelation (phi coefficient) of the
// net's binary end-of-cycle sample series; 0 for constant nets.
func (c *Collector) Autocorr(net netlist.NetID) float64 {
	n := float64(c.pairs[net])
	if n == 0 {
		return 0
	}
	p := float64(c.ones[net]) / float64(c.cycles)
	q := 1 - p
	if p == 0 || q == 0 {
		return 0
	}
	p11 := float64(c.both1[net]) / n
	return (p11 - p*p) / (p * q)
}

// BusSummary aggregates statistics over a named bus.
type BusSummary struct {
	Bus string
	// MeanProb is the average signal probability over the bus bits.
	MeanProb float64
	// MeanToggle is the average per-cycle toggle rate.
	MeanToggle float64
	// MeanAbsAutocorr is the average |lag-1 autocorrelation|: near 0 for
	// white signals, near 1 for strongly correlated ones.
	MeanAbsAutocorr float64
}

// Bus summarizes a named bus; it returns the zero value for unknown or
// empty buses.
func (c *Collector) Bus(name string) BusSummary {
	ids := c.n.Bus(name)
	if len(ids) == 0 {
		return BusSummary{Bus: name}
	}
	s := BusSummary{Bus: name}
	for _, id := range ids {
		s.MeanProb += c.Prob(id)
		s.MeanToggle += c.ToggleRate(id)
		s.MeanAbsAutocorr += math.Abs(c.Autocorr(id))
	}
	k := float64(len(ids))
	s.MeanProb /= k
	s.MeanToggle /= k
	s.MeanAbsAutocorr /= k
	return s
}
