package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"glitchsim"
	"glitchsim/internal/jobs"
	"glitchsim/internal/service"
	"glitchsim/internal/testutil"
)

// The chaos suite boots real daemons (service.Server over httptest) and
// lets the Harness abuse them. Scale is tuned to stay well under ~30s;
// -short shrinks it further for the race-enabled CI job.

func chaosScale() (workers, opsEach int) {
	if testing.Short() {
		return 4, 8
	}
	return 8, 25
}

// daemon is one live service instance the tests can kill and replace.
type daemon struct {
	srv *service.Server
	ts  *httptest.Server
}

func startDaemon(t *testing.T, opts []service.Option, jopts jobs.Options) *daemon {
	t.Helper()
	e := glitchsim.NewEngine(glitchsim.WithMaxConcurrency(4))
	if jopts.Retry.MaxAttempts == 0 {
		jopts.Retry = jobs.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	}
	opts = append(opts, service.WithJobOptions(jopts), service.WithBaseContext(context.Background()))
	s := service.New(e, opts...)
	if s.Jobs() == nil {
		t.Fatal("job subsystem failed to start")
	}
	return &daemon{srv: s, ts: httptest.NewServer(s)}
}

// stop kills the daemon the way a deploy would: stop accepting, then
// drain the job manager with a bounded grace period.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.srv.Drain(ctx); err != nil {
		t.Errorf("drain: %v", err)
	}
}

// flakyInjector fails a deterministic slice of job attempts: every 5th
// intercepted attempt panics, every 7th reports a transient error. The
// suite's contract is that neither class may wedge the daemon or leak
// an untyped response.
func flakyInjector() jobs.FaultInjector {
	var n atomic.Int64
	return jobs.InjectorFunc(func(rec jobs.Record, attempt int) error {
		switch i := n.Add(1); {
		case i%5 == 0:
			panic(fmt.Sprintf("chaos: injected panic (job %s attempt %d)", rec.ID, attempt))
		case i%7 == 0:
			return jobs.Transient(fmt.Errorf("chaos: injected transient fault"))
		}
		return nil
	})
}

func requireClean(t *testing.T, res Result) {
	t.Helper()
	for _, f := range res.Failures {
		t.Errorf("contract violation: %s", f)
	}
	t.Logf("ops=%v statuses=%v codes=%v", res.Ops, res.Statuses, res.Codes)
}

// TestChaosMixedTraffic storms one daemon with the full op mix — good
// measures, budget trips, oscillating delay models, oversized bodies,
// uploads, bogus references, mid-run disconnects and a flaky job
// pipeline — and requires every single response to be typed, and every
// goroutine to be gone afterwards.
func TestChaosMixedTraffic(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	d := startDaemon(t,
		[]service.Option{service.WithUploadDir(t.TempDir())},
		jobs.Options{Workers: 2, QueueDepth: 8, Injector: flakyInjector()})
	t.Cleanup(func() { d.stop(t) })

	h, err := New(d.ts.URL, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)

	workers, opsEach := chaosScale()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	res := h.Run(ctx, workers, opsEach)
	requireClean(t, res)
	if ctx.Err() != nil {
		t.Fatalf("chaos run hit the %s deadline — daemon wedged?", "25s")
	}
	if !testing.Short() {
		for _, op := range []Op{OpMeasure, OpBudget, OpUploadMeasure, OpJobSubmit} {
			if res.Ops[op] == 0 {
				t.Errorf("op %s never ran — schedule degenerate", op)
			}
		}
		if res.Codes[service.CodeBudgetExceeded] == 0 {
			t.Error("no budget_exceeded observed across the run")
		}
	}

	// The daemon must come out of the storm healthy.
	resp, err := http.Get(d.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", resp.StatusCode)
	}
}

// TestChaosRestartUploadsSurvive is the durability acceptance test:
// with randomized kill/restart cycles folded into the traffic mix and
// both stores (circuits, jobs) on disk, every fingerprint ever uploaded
// must still be measurable after the final restart.
func TestChaosRestartUploadsSurvive(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	uploadDir := t.TempDir()
	jobDir := t.TempDir()
	boot := func() *daemon {
		store, err := jobs.NewFileStore(jobDir)
		if err != nil {
			t.Fatalf("job store: %v", err)
		}
		return startDaemon(t,
			[]service.Option{service.WithUploadDir(uploadDir)},
			jobs.Options{Workers: 2, QueueDepth: 8, Store: store})
	}
	d := boot()
	t.Cleanup(func() { d.stop(t) })

	h, err := New(d.ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	var restarts atomic.Int64
	h.SetRestart(func() string {
		restarts.Add(1)
		d.stop(t)
		d = boot()
		return d.ts.URL
	})

	// Seed every fixture before the storm so the durability assertion
	// covers all of them regardless of which upload ops the schedule
	// happens to draw.
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
	defer cancel()
	for i := range h.fixtures {
		if err := h.execute(ctx, OpUploadMeasure, rand.New(rand.NewSource(int64(100+i)))); err != nil {
			t.Fatalf("seeding upload %d: %v", i, err)
		}
	}

	workers, opsEach := chaosScale()
	res := h.Run(ctx, workers, opsEach)
	requireClean(t, res)

	// Force one final kill/restart, then require every fingerprint the
	// run uploaded to still resolve and measure on the fresh daemon.
	h.mu.Lock()
	h.base = h.restart()
	h.mu.Unlock()
	fps := map[string]bool{}
	for _, fp := range h.Fingerprints() {
		fps[fp] = true
	}
	if len(fps) == 0 {
		t.Fatal("no uploads recorded — schedule degenerate")
	}
	for fp := range fps {
		body := fmt.Sprintf(`{"circuit":%q,"cycles":10}`, fp)
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			t.Fatalf("measuring %s after restart: %v", fp, err)
		}
		if status != http.StatusOK {
			t.Errorf("fingerprint %s did not survive restart: %d %s", fp, status, raw)
		}
	}
	t.Logf("%d restarts, %d distinct fingerprints survived", restarts.Add(1), len(fps))
}

// TestChaosKillMidMeasureResume is the zero-lost-work acceptance test:
// a checkpointing measurement job is killed (drain + full daemon
// teardown) mid-run, twice, and after each restart over the same job
// store it must resume from its persisted chunk boundary rather than
// start over — and the final activity must be bit-identical to a
// synchronous run of the same measurement.
func TestChaosKillMidMeasureResume(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	jobDir := t.TempDir()
	boot := func() *daemon {
		store, err := jobs.NewFileStore(jobDir)
		if err != nil {
			t.Fatalf("job store: %v", err)
		}
		return startDaemon(t, nil, jobs.Options{Workers: 1, QueueDepth: 4, Store: store})
	}
	d := boot()
	t.Cleanup(func() { d.stop(t) })

	getJob := func(id string) service.JobDTO {
		t.Helper()
		resp, err := http.Get(d.ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job service.JobDTO
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("get job %s: status %d err %v", id, resp.StatusCode, err)
		}
		return job
	}

	// Lanes=8 over 4000 cycles gives 500 chunk boundaries; a checkpoint
	// every 4 keeps the kill window wide open (125 durable snapshots,
	// each an fsync) without slowing the run past the suite budget.
	const measure = `{"circuit":"wallace8","cycles":4000,"lanes":8,"seed":11,"checkpoint_every":4}`
	resp, err := http.Post(d.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"measure","measure":`+measure+`}`))
	if err != nil {
		t.Fatal(err)
	}
	var job service.JobDTO
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	id := job.ID

	deadline := time.Now().Add(30 * time.Second)
	kills, lastCheckpoint := 0, 0
	for {
		if time.Now().After(deadline) {
			t.Fatalf("kill/restart cycle wedged: %d kills, checkpoint at %d", kills, lastCheckpoint)
		}
		j := getJob(id)
		if j.State == string(jobs.StateSucceeded) {
			if kills == 0 {
				t.Fatal("job finished before the first kill — measurement too short for the chaos window")
			}
			break
		}
		if j.State == string(jobs.StateFailed) {
			t.Fatalf("job failed mid-chaos: %s", j.Error)
		}
		// Kill only once fresh progress is durably checkpointed, so each
		// restart provably resumes past the previous one.
		if kills < 2 && j.CheckpointCycle > lastCheckpoint {
			lastCheckpoint = j.CheckpointCycle
			d.stop(t)
			d = boot()
			kills++
			recovered := getJob(id)
			if recovered.CheckpointCycle < lastCheckpoint {
				t.Fatalf("kill %d lost work: checkpoint %d on disk, had reached %d",
					kills, recovered.CheckpointCycle, lastCheckpoint)
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}

	final := getJob(id)
	if final.ResumedFromCycle == 0 {
		t.Fatal("job succeeded with resumed_from_cycle = 0 — it restarted from scratch instead of resuming")
	}
	if final.CheckpointCycle != 0 {
		t.Fatalf("terminal job still carries checkpoint_cycle %d", final.CheckpointCycle)
	}
	t.Logf("%d kills, last checkpoint at chunk %d, resumed from %d", kills, lastCheckpoint, final.ResumedFromCycle)

	// Zero lost work means bit-identical statistics: the resumed job's
	// activity must equal a synchronous, uninterrupted run of the same
	// measurement on the same daemon.
	var interrupted, reference struct {
		Activity service.ActivityDTO `json:"activity"`
	}
	resp, err = http.Get(d.ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&interrupted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("job result: status %d err %v", resp.StatusCode, err)
	}
	resp, err = http.Post(d.ts.URL+"/v1/measure", "application/json", strings.NewReader(measure))
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&reference)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reference measure: status %d err %v", resp.StatusCode, err)
	}
	if interrupted.Activity != reference.Activity {
		t.Fatalf("resumed activity diverged from uninterrupted run:\n got %+v\nwant %+v",
			interrupted.Activity, reference.Activity)
	}
}

// TestChaosPanickyJobsDoNotWedge drives every job through an injector
// that panics on its first attempt: each job must reach a terminal,
// well-formed state (retried to success or failed with the recovered
// stack on record), and the daemon must keep serving throughout.
func TestChaosPanickyJobsDoNotWedge(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	d := startDaemon(t, nil, jobs.Options{
		Workers:    2,
		QueueDepth: 16,
		Injector: jobs.InjectorFunc(func(rec jobs.Record, attempt int) error {
			if attempt == 1 {
				panic("chaos: first-attempt panic for job " + rec.ID)
			}
			return nil
		}),
	})
	t.Cleanup(func() { d.stop(t) })

	const njobs = 8
	ids := make([]string, 0, njobs)
	for i := 0; i < njobs; i++ {
		body := fmt.Sprintf(`{"kind":"measure","measure":{"circuit":"rca8","cycles":%d}}`, 10+i)
		resp, err := http.Post(d.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var job service.JobDTO
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d err %v", i, resp.StatusCode, err)
		}
		ids = append(ids, job.ID)
	}
	deadline := time.Now().Add(20 * time.Second)
	for _, id := range ids {
		for {
			resp, err := http.Get(d.ts.URL + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var job service.JobDTO
			err = json.NewDecoder(resp.Body).Decode(&job)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			switch job.State {
			case string(jobs.StateSucceeded):
			case string(jobs.StateFailed):
				if job.Stack == "" {
					t.Errorf("job %s failed without a recovered stack", id)
				}
			default:
				if time.Now().After(deadline) {
					t.Fatalf("job %s wedged in state %q", id, job.State)
				}
				time.Sleep(20 * time.Millisecond)
				continue
			}
			break
		}
	}
	resp, err := http.Get(d.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panics: %d", resp.StatusCode)
	}
}
