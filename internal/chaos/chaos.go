// Package chaos drives randomized fault-heavy traffic at a live
// glitchsim service and validates every observable outcome against the
// service's typed failure taxonomy: whatever mix of oversized uploads,
// budget-exhausted measurements, oscillating delay models, mid-run
// disconnects, job floods and daemon restarts the schedule produces,
// every HTTP response must be well-formed — 2xx with the documented
// payload, or an error envelope carrying a known machine-readable code.
// A wedged handler, a leaked goroutine, an untyped 500 or a torn upload
// after a restart is a bug, and the TestChaos* suite fails on it.
//
// The harness is deliberately dependency-free and deterministic per
// seed: worker w of a run seeded s draws from rand.New(s + w), so a
// failing schedule replays exactly.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"glitchsim/internal/registry"
	"glitchsim/internal/service"
)

// Op names one traffic pattern the harness mixes into a run.
type Op string

const (
	OpHealthz        Op = "healthz"         // GET /healthz -> 200
	OpMeasure        Op = "measure"         // well-formed measure -> 200
	OpBudget         Op = "budget"          // budget-exhausting measure -> 422 budget_exceeded
	OpOscillation    Op = "oscillation"     // guard-tripping delay model -> 422 oscillation
	OpOversizedBody  Op = "oversized"       // >4MiB upload -> 413 payload_too_large
	OpUploadMeasure  Op = "upload-measure"  // upload then measure by fingerprint -> 200
	OpUnknownCircuit Op = "unknown-circuit" // bogus reference -> 404 unknown_circuit
	OpCancelMidRun   Op = "cancel"          // client disconnects mid-measure
	OpJobSubmit      Op = "job-submit"      // async submit -> 202 | 429 queue_full | 503 draining
	OpRestart        Op = "restart"         // kill/restart the daemon, then liveness
)

// knownCodes is the documented error-code enum; any error envelope
// carrying a code outside it fails the run.
var knownCodes = map[string]bool{
	service.CodeBadRequest: true, service.CodeMethodNotAllowed: true,
	service.CodePayloadTooLarge: true, service.CodeUnknownCircuit: true,
	service.CodeUnknownJob: true, service.CodeNotFound: true,
	service.CodeBudgetExceeded: true, service.CodeOscillation: true,
	service.CodeCostExceeded: true, service.CodeOverloaded: true,
	service.CodeQueueFull: true, service.CodeDraining: true,
	service.CodeUploadsDisabled: true, service.CodeJobsDisabled: true,
	service.CodeJobFailed: true, service.CodeJobTimedOut: true,
	service.CodeJobCanceled: true, service.CodeJobNotFinished: true,
	service.CodeJobFinished: true, service.CodeInternal: true,
}

// Result summarizes one Run: per-op and per-status counts, the error
// codes observed, and every validation failure (empty on a clean run).
type Result struct {
	Ops      map[Op]int
	Statuses map[int]int
	Codes    map[string]int
	Failures []string
}

// Harness drives one service instance. Safe for concurrent workers; a
// restart takes the write lock, so no request is ever in flight across
// the kill (in-flight work is cancelled server-side by the shutdown,
// not torn mid-response at the client).
type Harness struct {
	mu      sync.RWMutex // guards base; RLock held across each exchange
	base    string
	client  *http.Client
	restart func() string

	seed     int64
	fixtures []string // JSON netlist sources for upload ops

	resMu sync.Mutex
	res   Result

	fpMu sync.Mutex
	fps  []string // fingerprints uploaded during the run
}

// New builds a harness against the service at baseURL. The same seed
// replays the same per-worker schedules.
func New(baseURL string, seed int64) (*Harness, error) {
	h := &Harness{
		base:   baseURL,
		client: &http.Client{Timeout: 30 * time.Second},
		seed:   seed,
		res: Result{
			Ops:      map[Op]int{},
			Statuses: map[int]int{},
			Codes:    map[string]int{},
		},
	}
	for _, name := range []string{"rca4", "rca8", "wallace8"} {
		n, err := registry.Build(name)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := n.WriteJSON(&buf); err != nil {
			return nil, err
		}
		h.fixtures = append(h.fixtures, buf.String())
	}
	return h, nil
}

// SetRestart arms the restart op: fn must stop the serving daemon,
// start a replacement, and return its base URL.
func (h *Harness) SetRestart(fn func() string) { h.restart = fn }

// Close releases the harness's idle keep-alive connections so a
// goroutine-leak check does not mistake pool state for a leak.
func (h *Harness) Close() { h.client.CloseIdleConnections() }

// Fingerprints returns the circuit fingerprints uploaded during the
// run, for post-run durability assertions.
func (h *Harness) Fingerprints() []string {
	h.fpMu.Lock()
	defer h.fpMu.Unlock()
	return append([]string(nil), h.fps...)
}

// Run executes workers concurrent schedules of opsEach operations each
// and returns the aggregated result. Context cancellation stops the
// schedules early (without flagging a failure).
func (h *Harness) Run(ctx context.Context, workers, opsEach int) Result {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.seed + int64(w)))
			for i := 0; i < opsEach; i++ {
				if ctx.Err() != nil {
					return
				}
				op := h.pick(rng)
				err := h.execute(ctx, op, rng)
				h.record(op, err)
			}
		}(w)
	}
	wg.Wait()
	h.resMu.Lock()
	defer h.resMu.Unlock()
	out := h.res
	h.res = Result{Ops: map[Op]int{}, Statuses: map[int]int{}, Codes: map[string]int{}}
	return out
}

// pick draws the next op from the weighted mix.
func (h *Harness) pick(rng *rand.Rand) Op {
	type weighted struct {
		op Op
		w  int
	}
	mix := []weighted{
		{OpHealthz, 2}, {OpMeasure, 4}, {OpBudget, 3}, {OpOscillation, 2},
		{OpOversizedBody, 1}, {OpUploadMeasure, 3}, {OpUnknownCircuit, 2},
		{OpCancelMidRun, 2}, {OpJobSubmit, 3},
	}
	if h.restart != nil {
		mix = append(mix, weighted{OpRestart, 1})
	}
	total := 0
	for _, m := range mix {
		total += m.w
	}
	n := rng.Intn(total)
	for _, m := range mix {
		if n < m.w {
			return m.op
		}
		n -= m.w
	}
	return OpHealthz
}

func (h *Harness) record(op Op, err error) {
	h.resMu.Lock()
	defer h.resMu.Unlock()
	h.res.Ops[op]++
	if err != nil && len(h.res.Failures) < 32 {
		h.res.Failures = append(h.res.Failures, fmt.Sprintf("%s: %v", op, err))
	}
}

// exchange performs one HTTP exchange under the read lock (so restarts
// never interleave with an in-flight request), fully reading the body.
func (h *Harness) exchange(ctx context.Context, method, path, contentType string, body []byte) (int, http.Header, []byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, h.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading body: %w", err)
	}
	h.resMu.Lock()
	h.res.Statuses[resp.StatusCode]++
	h.resMu.Unlock()
	return resp.StatusCode, resp.Header, raw, nil
}

// validate checks one response against the taxonomy: the status must be
// one of want, and any non-2xx body must be an envelope with a known
// code. It returns the decoded envelope code ("" on success bodies).
func (h *Harness) validate(status int, raw []byte, want ...int) (string, error) {
	code := ""
	if status >= 400 {
		var e service.ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil {
			return "", fmt.Errorf("status %d with undecodable error body %q: %w", status, truncate(raw), err)
		}
		if e.Code == "" || e.Error == "" {
			return "", fmt.Errorf("status %d with untyped error body %q", status, truncate(raw))
		}
		if !knownCodes[e.Code] {
			return "", fmt.Errorf("status %d with unknown error code %q", status, e.Code)
		}
		code = e.Code
		h.resMu.Lock()
		h.res.Codes[code]++
		h.resMu.Unlock()
	}
	for _, w := range want {
		if status == w {
			return code, nil
		}
	}
	return code, fmt.Errorf("status %d (code %q, body %q), want one of %v", status, code, truncate(raw), want)
}

func truncate(raw []byte) string {
	s := strings.TrimSpace(string(raw))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// execute runs one operation, returning a validation error if the
// service's behaviour was outside the contract.
func (h *Harness) execute(ctx context.Context, op Op, rng *rand.Rand) error {
	switch op {
	case OpHealthz:
		status, _, raw, err := h.exchange(ctx, http.MethodGet, "/healthz", "", nil)
		if err != nil {
			return err
		}
		if _, err := h.validate(status, raw, http.StatusOK); err != nil {
			return err
		}
		var hz struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(raw, &hz); err != nil || hz.Status != "ok" {
			return fmt.Errorf("healthz body %q not ok", truncate(raw))
		}
		return nil

	case OpMeasure:
		body := fmt.Sprintf(`{"circuit":"rca16","cycles":%d,"seed":%d}`, 20+rng.Intn(60), 1+rng.Intn(1000))
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			return err
		}
		if _, err := h.validate(status, raw, http.StatusOK); err != nil {
			return err
		}
		var mr service.MeasureResponse
		if err := json.Unmarshal(raw, &mr); err != nil {
			return fmt.Errorf("measure body %q: %w", truncate(raw), err)
		}
		if mr.Kernel == "" || mr.Activity.Cycles == 0 {
			return fmt.Errorf("measure reply incomplete: %q", truncate(raw))
		}
		return nil

	case OpBudget:
		body := fmt.Sprintf(`{"circuit":"array16","cycles":500,"budget_events":%d}`, 256+rng.Intn(768))
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			return err
		}
		code, err := h.validate(status, raw, http.StatusUnprocessableEntity)
		if err != nil {
			return err
		}
		if code != service.CodeBudgetExceeded {
			return fmt.Errorf("budget trip answered code %q", code)
		}
		return nil

	case OpOscillation:
		body := `{"circuit":"rca8","cycles":4,"dsum":70000,"dcarry":70000}`
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			return err
		}
		code, err := h.validate(status, raw, http.StatusUnprocessableEntity)
		if err != nil {
			return err
		}
		if code != service.CodeOscillation {
			return fmt.Errorf("oscillation answered code %q", code)
		}
		return nil

	case OpOversizedBody:
		big := bytes.Repeat([]byte{'x'}, (4<<20)+1024)
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/circuits?format=json", "application/json", big)
		if err != nil {
			return err
		}
		code, err := h.validate(status, raw, http.StatusRequestEntityTooLarge)
		if err != nil {
			return err
		}
		if code != service.CodePayloadTooLarge {
			return fmt.Errorf("oversized upload answered code %q", code)
		}
		return nil

	case OpUploadMeasure:
		src := h.fixtures[rng.Intn(len(h.fixtures))]
		env, _ := json.Marshal(service.UploadRequest{Format: "json", Source: src})
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/circuits", "application/json", env)
		if err != nil {
			return err
		}
		if _, err := h.validate(status, raw, http.StatusOK); err != nil {
			return err
		}
		var info service.CircuitInfo
		if err := json.Unmarshal(raw, &info); err != nil || info.Fingerprint == "" {
			return fmt.Errorf("upload reply %q lacks fingerprint", truncate(raw))
		}
		h.fpMu.Lock()
		h.fps = append(h.fps, info.Fingerprint)
		h.fpMu.Unlock()
		body := fmt.Sprintf(`{"circuit":%q,"cycles":%d}`, info.Fingerprint, 10+rng.Intn(40))
		status, _, raw, err = h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			return err
		}
		_, err = h.validate(status, raw, http.StatusOK)
		return err

	case OpUnknownCircuit:
		body := fmt.Sprintf(`{"circuit":"nonesuch-%d","cycles":10}`, rng.Int63())
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/measure", "application/json", []byte(body))
		if err != nil {
			return err
		}
		code, err := h.validate(status, raw, http.StatusNotFound)
		if err != nil {
			return err
		}
		if code != service.CodeUnknownCircuit {
			return fmt.Errorf("unknown circuit answered code %q", code)
		}
		return nil

	case OpCancelMidRun:
		// Disconnect while a large measurement runs: the only acceptable
		// outcomes are a transport-level cancellation (the server writes
		// nothing to a gone client) or a completed, valid response.
		cctx, cancel := context.WithTimeout(ctx, time.Duration(1+rng.Intn(15))*time.Millisecond)
		defer cancel()
		status, _, raw, err := h.exchange(cctx, http.MethodPost, "/v1/measure", "application/json",
			[]byte(`{"circuit":"array16","cycles":200000}`))
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return nil
			}
			return fmt.Errorf("cancelled request failed oddly: %w", err)
		}
		_, err = h.validate(status, raw, http.StatusOK, http.StatusUnprocessableEntity,
			http.StatusTooManyRequests)
		return err

	case OpJobSubmit:
		body := fmt.Sprintf(`{"kind":"measure","measure":{"circuit":"rca8","cycles":%d}}`, 10+rng.Intn(40))
		status, _, raw, err := h.exchange(ctx, http.MethodPost, "/v1/jobs", "application/json", []byte(body))
		if err != nil {
			return err
		}
		code, err := h.validate(status, raw, http.StatusAccepted,
			http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError)
		if err != nil {
			return err
		}
		switch status {
		case http.StatusAccepted:
			var job service.JobDTO
			if err := json.Unmarshal(raw, &job); err != nil || job.ID == "" {
				return fmt.Errorf("job submit reply %q lacks id", truncate(raw))
			}
			// Poll the status endpoint once; any well-formed reply is fine.
			st, _, raw, err := h.exchange(ctx, http.MethodGet, "/v1/jobs/"+job.ID, "", nil)
			if err != nil {
				return err
			}
			_, err = h.validate(st, raw, http.StatusOK, http.StatusNotFound)
			return err
		case http.StatusTooManyRequests:
			if code != service.CodeQueueFull && code != service.CodeOverloaded {
				return fmt.Errorf("shed job submit answered code %q", code)
			}
		case http.StatusServiceUnavailable:
			if code != service.CodeDraining && code != service.CodeJobsDisabled {
				return fmt.Errorf("unavailable job submit answered code %q", code)
			}
		case http.StatusInternalServerError:
			// Injected panics and faults surface here — typed is enough.
		}
		return nil

	case OpRestart:
		h.mu.Lock()
		h.base = h.restart()
		h.mu.Unlock()
		status, _, raw, err := h.exchange(ctx, http.MethodGet, "/healthz", "", nil)
		if err != nil {
			return fmt.Errorf("restarted daemon unreachable: %w", err)
		}
		_, err = h.validate(status, raw, http.StatusOK)
		return err
	}
	return fmt.Errorf("unknown op %q", op)
}
