package vcd

import (
	"strings"
	"testing"

	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/netlist"
)

func hazardNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("hazard")
	a := b.Input("a")
	na := b.Not(a)
	out := b.And(a, na)
	b.Output("out", out)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestVCDOutput(t *testing.T) {
	n := hazardNetlist(t)
	var sb strings.Builder
	w, err := New(&sb, n, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(w)
	for i := 0; i < 4; i++ {
		if err := s.Step(logic.Vector{logic.FromBit(uint64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(4); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$var wire 1 ! a $end", "$enddefinitions",
		"$dumpvars", "#0", "#16",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// The glitch on `out` in cycle 1 must appear: time 17 (rise) and 18
	// (fall) within cycle 1 (period 16).
	if !strings.Contains(out, "#17\n") || !strings.Contains(out, "#18\n") {
		t.Errorf("glitch timestamps missing:\n%s", out)
	}
}

func TestVCDSelectedNets(t *testing.T) {
	n := hazardNetlist(t)
	var sb strings.Builder
	out := n.NetByName("a")
	w, err := New(&sb, n, []netlist.NetID{out}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "$var") != 1 {
		t.Error("expected exactly one declared var")
	}
}

func TestVCDRejectsBadPeriod(t *testing.T) {
	n := hazardNetlist(t)
	if _, err := New(&strings.Builder{}, n, nil, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestIDCodes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := idCode(i)
		if c == "" || seen[c] {
			t.Fatalf("code %d = %q duplicate or empty", i, c)
		}
		seen[c] = true
		for _, r := range c {
			if r < '!' || r > '~' {
				t.Fatalf("code %d contains non-printable %q", i, r)
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("s[3] x") != "s(3)_x" {
		t.Errorf("got %q", sanitize("s[3] x"))
	}
}
