// Package vcd writes IEEE 1364 value-change-dump waveforms from a
// running simulation, so glitch trains can be inspected in any waveform
// viewer. The writer is a sim.Monitor: attach it before stepping.
//
// Time mapping: VCD time = cycle·cyclePeriod + t, where t is the
// intra-cycle settling time in gate-delay units. cyclePeriod must exceed
// the worst settling time of the circuit.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"glitchsim/internal/logic"
	"glitchsim/netlist"
)

// Writer emits VCD. It buffers internally; call Flush when done.
type Writer struct {
	w           *bufio.Writer
	n           *netlist.Netlist
	cyclePeriod int
	codes       map[netlist.NetID]string
	lastTime    int
	timeOpen    bool
	err         error
}

// New creates a Writer dumping the given nets (nil = all nets). The
// header is written immediately.
func New(w io.Writer, n *netlist.Netlist, nets []netlist.NetID, cyclePeriod int) (*Writer, error) {
	if cyclePeriod < 1 {
		return nil, fmt.Errorf("vcd: cycle period %d must be positive", cyclePeriod)
	}
	if nets == nil {
		nets = make([]netlist.NetID, n.NumNets())
		for i := range nets {
			nets[i] = netlist.NetID(i)
		}
	}
	v := &Writer{
		w:           bufio.NewWriter(w),
		n:           n,
		cyclePeriod: cyclePeriod,
		codes:       make(map[netlist.NetID]string, len(nets)),
		lastTime:    -1,
	}
	fmt.Fprintf(v.w, "$date\n  glitchsim\n$end\n$version\n  glitchsim vcd writer\n$end\n$timescale\n  1ns\n$end\n")
	fmt.Fprintf(v.w, "$scope module %s $end\n", sanitize(n.Name))
	sorted := append([]netlist.NetID(nil), nets...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, id := range sorted {
		code := idCode(i)
		v.codes[id] = code
		fmt.Fprintf(v.w, "$var wire 1 %s %s $end\n", code, sanitize(n.Net(id).Name))
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n$dumpvars\n")
	for _, id := range sorted {
		fmt.Fprintf(v.w, "x%s\n", v.codes[id])
	}
	fmt.Fprintf(v.w, "$end\n")
	return v, nil
}

// idCode maps an index to a short printable VCD identifier.
func idCode(i int) string {
	const base = 94 // printable ASCII '!'..'~'
	var sb strings.Builder
	for {
		sb.WriteByte(byte('!' + i%base))
		i /= base
		if i == 0 {
			break
		}
		i--
	}
	return sb.String()
}

func sanitize(s string) string {
	r := strings.NewReplacer(" ", "_", "[", "(", "]", ")")
	return r.Replace(s)
}

// OnChange implements sim.Monitor.
func (v *Writer) OnChange(net netlist.NetID, cycle, t int, _, newV logic.V) {
	code, ok := v.codes[net]
	if !ok || v.err != nil {
		return
	}
	now := cycle*v.cyclePeriod + t
	if now != v.lastTime {
		if _, err := fmt.Fprintf(v.w, "#%d\n", now); err != nil {
			v.err = err
			return
		}
		v.lastTime = now
	}
	if _, err := fmt.Fprintf(v.w, "%s%s\n", newV, code); err != nil {
		v.err = err
	}
}

// OnCycleEnd implements sim.Monitor.
func (v *Writer) OnCycleEnd(int) {}

// Flush writes a final timestamp and drains the buffer.
func (v *Writer) Flush(finalCycle int) error {
	if v.err != nil {
		return v.err
	}
	fmt.Fprintf(v.w, "#%d\n", finalCycle*v.cyclePeriod)
	return v.w.Flush()
}
