package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"glitchsim/internal/logic"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// Change records one value change of a signal.
type Change struct {
	Time int
	V    logic.V
}

// Signal is one scalar VCD variable with its changes in file order
// (timestamps nondecreasing, Parse enforces this).
type Signal struct {
	Name    string
	Changes []Change
}

// At returns the signal value at time t: the value of the last change at
// or before t, or X before the first change.
func (s *Signal) At(t int) logic.V {
	i := sort.Search(len(s.Changes), func(i int) bool { return s.Changes[i].Time > t })
	if i == 0 {
		return logic.X
	}
	return s.Changes[i-1].V
}

// Dump is a parsed value-change dump.
type Dump struct {
	signals map[string]*Signal
	// FinalTime is the largest timestamp in the dump (the Flush
	// timestamp for dumps produced by Writer).
	FinalTime int
}

// Signal returns the named signal, or nil when the dump has none.
func (d *Dump) Signal(name string) *Signal { return d.signals[name] }

// Names returns the declared signal names, sorted.
func (d *Dump) Names() []string {
	names := make([]string, 0, len(d.signals))
	for n := range d.signals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse reads a VCD file of scalar (1-bit) variables, as produced by
// Writer or any standard dumper. Malformed input fails with an error
// naming the offending line — unknown identifier codes, bad value
// characters, non-monotonic or unparsable timestamps and truncated
// directives are all reported rather than silently truncating the dump.
func Parse(r io.Reader) (*Dump, error) {
	d := &Dump{signals: map[string]*Signal{}}
	byCode := map[string]*Signal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	line := 0
	now := 0
	headerDone := false
	// Directive being skipped until its $end ("" when none), with the
	// line it started on for the truncation error.
	skipping := ""
	skipLine := 0
	// Tokens of a $var directive still awaiting its $end.
	var varTokens []string
	varLine := 0

	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		for _, tok := range fields {
			switch {
			case skipping != "":
				if tok == "$end" {
					skipping = ""
				}
			case varTokens != nil:
				if tok != "$end" {
					varTokens = append(varTokens, tok)
					continue
				}
				sig, err := declareVar(varTokens, byCode, d.signals)
				if err != nil {
					return nil, fmt.Errorf("vcd: line %d: %v", varLine, err)
				}
				d.signals[sig.Name] = sig
				varTokens = nil
			case tok == "$var":
				varTokens = []string{}
				varLine = line
			case tok == "$enddefinitions":
				headerDone = true
				skipping, skipLine = tok, line
			case tok == "$date" || tok == "$version" || tok == "$timescale" ||
				tok == "$comment" || tok == "$scope" || tok == "$upscope":
				skipping, skipLine = tok, line
			case tok == "$dumpvars" || tok == "$dumpall" || tok == "$dumpon" || tok == "$dumpoff" || tok == "$end":
				// Value changes inside dump sections are handled like any
				// other; the section markers themselves carry no state.
			case strings.HasPrefix(tok, "#"):
				t, err := strconv.Atoi(tok[1:])
				if err != nil {
					return nil, fmt.Errorf("vcd: line %d: bad timestamp %q", line, tok)
				}
				if t < now {
					return nil, fmt.Errorf("vcd: line %d: timestamp #%d goes backwards (previous #%d)", line, t, now)
				}
				now = t
				if t > d.FinalTime {
					d.FinalTime = t
				}
			case tok[0] == 'b' || tok[0] == 'B' || tok[0] == 'r' || tok[0] == 'R':
				return nil, fmt.Errorf("vcd: line %d: vector value change %q not supported (scalar dumps only)", line, tok)
			case !headerDone:
				return nil, fmt.Errorf("vcd: line %d: value change %q before $enddefinitions", line, tok)
			default:
				v, err := valueOf(tok[0])
				if err != nil {
					return nil, fmt.Errorf("vcd: line %d: %v in %q", line, err, tok)
				}
				code := tok[1:]
				sig, ok := byCode[code]
				if !ok {
					return nil, fmt.Errorf("vcd: line %d: unknown identifier code %q", line, tok)
				}
				sig.Changes = append(sig.Changes, Change{Time: now, V: v})
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vcd: line %d: %v", line, err)
	}
	if varTokens != nil {
		return nil, fmt.Errorf("vcd: line %d: unterminated $var directive", varLine)
	}
	if skipping != "" {
		return nil, fmt.Errorf("vcd: line %d: unterminated %s directive", skipLine, skipping)
	}
	if !headerDone {
		return nil, fmt.Errorf("vcd: line %d: missing $enddefinitions", line)
	}
	return d, nil
}

// declareVar interprets the tokens between $var and $end:
// type width code name[ index].
func declareVar(tokens []string, byCode, byName map[string]*Signal) (*Signal, error) {
	if len(tokens) < 4 {
		return nil, fmt.Errorf("malformed $var directive (want: type width code name)")
	}
	width, err := strconv.Atoi(tokens[1])
	if err != nil {
		return nil, fmt.Errorf("bad $var width %q", tokens[1])
	}
	if width != 1 {
		return nil, fmt.Errorf("$var %q has width %d, only scalar (1-bit) variables are supported", tokens[3], width)
	}
	code := tokens[2]
	// A bit select separated by whitespace ("data [3]") belongs to the
	// name.
	name := strings.Join(tokens[3:], "")
	if _, dup := byCode[code]; dup {
		return nil, fmt.Errorf("duplicate identifier code %q", code)
	}
	if _, dup := byName[name]; dup {
		return nil, fmt.Errorf("duplicate signal name %q", name)
	}
	sig := &Signal{Name: name}
	byCode[code] = sig
	return sig, nil
}

func valueOf(c byte) (logic.V, error) {
	switch c {
	case '0':
		return logic.L0, nil
	case '1':
		return logic.L1, nil
	case 'x', 'X', 'z', 'Z':
		return logic.X, nil
	}
	return logic.X, fmt.Errorf("bad value character %q", c)
}

// Replay builds a stimulus source that drives n's primary inputs with
// the dump's waveforms: vector k samples every PI signal at time
// k·cyclePeriod, the start of clock cycle k under the writer's time
// mapping. It returns the source (cyclic, per stimulus.Sequence) and the
// number of whole cycles the dump covers. Signal names are matched
// against the PI net names in the writer's sanitized form first, then
// verbatim, and every PI must be present.
func (d *Dump) Replay(n *netlist.Netlist, cyclePeriod int) (stimulus.Source, int, error) {
	if cyclePeriod < 1 {
		return nil, 0, fmt.Errorf("vcd: cycle period %d must be positive", cyclePeriod)
	}
	sigs := make([]*Signal, len(n.PIs))
	for i, id := range n.PIs {
		name := n.Net(id).Name
		sig := d.signals[sanitize(name)]
		if sig == nil {
			sig = d.signals[name]
		}
		if sig == nil {
			return nil, 0, fmt.Errorf("vcd: dump has no signal for primary input %q of circuit %q", name, n.Name)
		}
		sigs[i] = sig
	}
	cycles := d.FinalTime / cyclePeriod
	if cycles < 1 {
		return nil, 0, fmt.Errorf("vcd: dump ends at time %d, shorter than one %d-unit cycle", d.FinalTime, cyclePeriod)
	}
	vs := make([]logic.Vector, cycles)
	cursor := make([]int, len(sigs))
	for k := range vs {
		t := k * cyclePeriod
		v := logic.NewVector(len(sigs))
		for i, sig := range sigs {
			for cursor[i] < len(sig.Changes) && sig.Changes[cursor[i]].Time <= t {
				cursor[i]++
			}
			if cursor[i] > 0 {
				v[i] = sig.Changes[cursor[i]-1].V
			}
		}
		vs[k] = v
	}
	return stimulus.NewSequence(vs...), cycles, nil
}
