package vcd_test

import (
	"bytes"
	"strings"
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/registry"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/vcd"
	"glitchsim/netlist"
)

// record simulates the circuit for cycles random vectors, dumping every
// net to a VCD buffer and counting activity, and returns both.
func record(t *testing.T, nl *netlist.Netlist, seed uint64, cycles, period int) ([]byte, *core.Counter) {
	t.Helper()
	var buf bytes.Buffer
	w, err := vcd.New(&buf, nl, nil, period)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl, sim.Options{})
	counter := core.NewCounter(nl)
	s.AttachMonitor(w)
	s.AttachMonitor(counter)
	src := stimulus.NewRandom(nl.InputWidth(), seed)
	for i := 0; i < cycles; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(cycles); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), counter
}

// TestVCDReplayRoundTrip: a dump recorded from a run, parsed back and
// replayed as a stimulus source must reproduce the original run's
// activity statistics bit-exactly — on combinational and sequential
// circuits alike (replay drives only the primary inputs; register state
// is rebuilt by the simulation itself).
func TestVCDReplayRoundTrip(t *testing.T) {
	for _, circuit := range []string{"rca8", "hazard", "accum16", "pipemult8"} {
		nl, err := registry.Build(circuit)
		if err != nil {
			t.Fatal(err)
		}
		const cycles = 40
		period := nl.LogicDepth() + 2
		dump, want := record(t, nl, 7, cycles, period)

		d, err := vcd.Parse(bytes.NewReader(dump))
		if err != nil {
			t.Fatalf("%s: parse recorded dump: %v", circuit, err)
		}
		src, have, err := d.Replay(nl, period)
		if err != nil {
			t.Fatalf("%s: replay: %v", circuit, err)
		}
		if have != cycles {
			t.Fatalf("%s: replay covers %d cycles, recorded %d", circuit, have, cycles)
		}

		s := sim.New(nl, sim.Options{})
		got := core.NewCounter(nl)
		s.AttachMonitor(got)
		for i := 0; i < cycles; i++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if got.Cycles() != want.Cycles() {
			t.Fatalf("%s: replay ran %d cycles, original %d", circuit, got.Cycles(), want.Cycles())
		}
		for i := 0; i < nl.NumNets(); i++ {
			id := netlist.NetID(i)
			if g, w := got.Stats(id), want.Stats(id); g != w {
				t.Fatalf("%s: net %s stats differ after replay\nreplay:   %+v\noriginal: %+v",
					circuit, nl.Net(id).Name, g, w)
			}
		}
	}
}

// header returns a minimal valid VCD header declaring one scalar signal
// "a" with identifier code "!".
func header() string {
	return "$timescale 1ns $end\n$scope module m $end\n$var wire 1 ! a $end\n$upscope $end\n$enddefinitions $end\n"
}

// TestVCDReplayErrors: malformed input must fail with an error naming
// the offending line, not silently truncate the dump.
func TestVCDReplayErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
		want  string
	}{
		{"bad-var-width", "$var wire eight ! a $end\n$enddefinitions $end\n", "line 1: bad $var width"},
		{"vector-var", "$var wire 8 ! bus $end\n$enddefinitions $end\n", `line 1: $var "bus" has width 8`},
		{"short-var", "$var wire 1 $end\n$enddefinitions $end\n", "line 1: malformed $var"},
		{"dup-code", header() + "$scope module m2 $end\n$var wire 1 ! b $end\n", "line 7: duplicate identifier code"},
		{"unknown-code", header() + "#0\n1?\n", `line 7: unknown identifier code "1?"`},
		{"bad-value-char", header() + "#0\nq!\n", "line 7: bad value character 'q'"},
		{"vector-change", header() + "#0\nb1010 !\n", "line 7: vector value change"},
		{"bad-timestamp", header() + "#zero\n", `line 6: bad timestamp "#zero"`},
		{"backwards-timestamp", header() + "#5\n1!\n#3\n", "line 8: timestamp #3 goes backwards"},
		{"change-before-header", "$scope module m $end\n1!\n", `line 2: value change "1!" before $enddefinitions`},
		{"unterminated-var", "$var wire 1 ! a\n", "line 1: unterminated $var"},
		{"unterminated-scope", "$scope module m\n", "line 1: unterminated $scope"},
		{"missing-enddefinitions", "$timescale 1ns $end\n", "missing $enddefinitions"},
	} {
		_, err := vcd.Parse(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: parse accepted malformed input", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestVCDReplayMissingInput: replaying against a circuit whose primary
// inputs the dump does not cover must name the missing signal.
func TestVCDReplayMissingInput(t *testing.T) {
	d, err := vcd.Parse(strings.NewReader(header() + "#0\n1!\n#8\n"))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := registry.Build("rca4")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Replay(nl, 4); err == nil || !strings.Contains(err.Error(), `no signal for primary input "a[0]"`) {
		t.Fatalf("replay err = %v, want missing-PI error", err)
	}
}
