// Package balance implements the paper's second glitch-reduction
// technique: delay-path balancing. Where retiming kills glitches with
// flipflops, balancing pads the faster input paths of every cell with
// buffers until all inputs arrive simultaneously — then no cell ever
// sees a skewed input change, every net settles with a single
// transition per cycle, and useless activity drops to zero.
//
// The paper's §4.2 uses this as a thought experiment ("transition
// activity ... can be reduced with a factor of 1 + 3.8 = 4.8 if all
// delay paths are balanced"); this package makes the transformation real
// so the claim can be verified by measurement, including the buffer
// overhead the thought experiment ignores.
package balance

import (
	"fmt"
	"sort"

	"glitchsim/internal/delay"
	"glitchsim/netlist"
)

// Result describes a balanced circuit.
type Result struct {
	// Netlist is the rebuilt, delay-balanced circuit.
	Netlist *netlist.Netlist
	// BuffersInserted is the number of padding buffers added.
	BuffersInserted int
	// CriticalPath is the (unchanged) critical path length.
	CriticalPath int
}

// Options configures Pad.
type Options struct {
	// AlignOutputs additionally pads primary outputs so all POs settle
	// at the same instant (needed for glitch-free output buses feeding
	// an unbalanced consumer).
	AlignOutputs bool
	// BufferDelay is the delay of one padding buffer under the target
	// delay model; it must evenly divide all arrival-time gaps. Unit
	// delay models use 1 (the default).
	BufferDelay int
	// Name names the resulting netlist; empty derives "<orig>_bal".
	Name string
}

// Pad rebuilds the netlist with buffer chains inserted on every cell
// input whose source settles earlier than the cell's latest-arriving
// input. DFF data inputs are not padded (they are sampled at the cycle
// boundary, where alignment is irrelevant). The resulting circuit is
// functionally identical cycle-by-cycle and — under the same delay
// model, with buffers of the configured delay — entirely glitch-free.
//
// It returns an error when an arrival-time gap is not a multiple of the
// buffer delay, since exact alignment is then impossible.
func Pad(n *netlist.Netlist, dm delay.Model, opts Options) (Result, error) {
	if dm == nil {
		dm = delay.Unit()
	}
	bufDelay := opts.BufferDelay
	if bufDelay == 0 {
		bufDelay = 1
	}
	if bufDelay < 1 {
		return Result{}, fmt.Errorf("balance: buffer delay %d must be positive", bufDelay)
	}
	name := opts.Name
	if name == "" {
		name = n.Name + "_bal"
	}

	arr := n.ArrivalTimes(func(c *netlist.Cell, pin int) int {
		if c.Type == netlist.Const0 || c.Type == netlist.Const1 {
			return 0 // constants settle at start-up
		}
		return dm.Delay(c, pin)
	})

	b := netlist.NewBuilder(name)
	newNet := make([]netlist.NetID, n.NumNets())
	for i := range newNet {
		newNet[i] = netlist.NoNet
	}
	for _, id := range n.PIs {
		newNet[id] = b.Input(n.Net(id).Name)
	}

	// Buffer chains per source net, tapped at multiples of bufDelay.
	chains := map[netlist.NetID][]netlist.NetID{}
	buffers := 0
	tap := func(src netlist.NetID, pad int) (netlist.NetID, error) {
		if pad == 0 {
			return newNet[src], nil
		}
		if pad%bufDelay != 0 {
			return netlist.NoNet, fmt.Errorf("balance: gap %d on net %q is not a multiple of the buffer delay %d",
				pad, n.Net(src).Name, bufDelay)
		}
		depth := pad / bufDelay
		chain, ok := chains[src]
		if !ok {
			chain = []netlist.NetID{newNet[src]}
		}
		for len(chain) <= depth {
			chain = append(chain, b.Buf(chain[len(chain)-1]))
			buffers++
		}
		chains[src] = chain
		return chain[depth], nil
	}

	// Rebuild cells in topological order, padding early inputs. DFFs
	// appear first in the order (their Q outputs are sources) but their
	// D inputs may be driven by cells built later, so they get a
	// placeholder input and are rewired afterwards.
	var placeholder netlist.NetID = netlist.NoNet
	type fixup struct {
		cell netlist.CellID
		port int
		net  netlist.NetID // original net to connect
	}
	var fixups []fixup
	for _, cid := range n.TopoOrder() {
		c := n.Cell(cid)
		target := 0
		if c.Type != netlist.DFF {
			for _, in := range c.In {
				if arr[in] > target {
					target = arr[in]
				}
			}
		}
		ins := make([]netlist.NetID, len(c.In))
		newCell := netlist.CellID(b.NumCells())
		for port, in := range c.In {
			if newNet[in] == netlist.NoNet {
				// Forward reference (only possible for DFF D inputs,
				// which are never padded).
				if placeholder == netlist.NoNet {
					placeholder = b.Const(0)
					newCell = netlist.CellID(b.NumCells())
				}
				ins[port] = placeholder
				fixups = append(fixups, fixup{cell: newCell, port: port, net: in})
				continue
			}
			pad := 0
			if c.Type != netlist.DFF {
				pad = target - arr[in]
			}
			nn, err := tap(in, pad)
			if err != nil {
				return Result{}, err
			}
			ins[port] = nn
		}
		outs := b.AddCell(c.Type, c.Name, ins...)
		for pin, o := range c.Out {
			if o != netlist.NoNet {
				newNet[o] = outs[pin]
			}
		}
	}
	for _, f := range fixups {
		b.Rewire(f.cell, f.port, newNet[f.net])
	}

	// Primary outputs, optionally aligned to the latest-settling PO.
	poPad := make([]int, len(n.POs))
	if opts.AlignOutputs {
		worst := 0
		for _, po := range n.POs {
			if arr[po] > worst {
				worst = arr[po]
			}
		}
		for j, po := range n.POs {
			poPad[j] = worst - arr[po]
		}
	}
	newPOs := make([]netlist.NetID, len(n.POs))
	for j, po := range n.POs {
		nn, err := tap(po, poPad[j])
		if err != nil {
			return Result{}, err
		}
		newPOs[j] = nn
		b.Output("", nn)
	}

	// Recreate bus names (PI buses map directly; PO buses through the
	// padded outputs; internal buses through their rebuilt nets).
	poIndex := map[netlist.NetID][]int{}
	for j, id := range n.POs {
		poIndex[id] = append(poIndex[id], j)
	}
	for _, busName := range busNames(n) {
		ids := n.Buses[busName]
		bus := make([]netlist.NetID, len(ids))
		usable := true
		used := map[netlist.NetID]int{}
		for i, id := range ids {
			if list := poIndex[id]; used[id] < len(list) && opts.AlignOutputs {
				bus[i] = newPOs[list[used[id]]]
				used[id]++
			} else if newNet[id] != netlist.NoNet {
				bus[i] = newNet[id]
			} else {
				usable = false
				break
			}
		}
		if usable {
			b.NameBus(busName, bus)
		}
	}

	out, err := b.Build()
	if err != nil {
		return Result{}, err
	}
	return Result{
		Netlist:         out,
		BuffersInserted: buffers,
		CriticalPath:    maxOf(arr),
	}, nil
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func busNames(n *netlist.Netlist) []string {
	names := make([]string, 0, len(n.Buses))
	for name := range n.Buses {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
