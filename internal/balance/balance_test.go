package balance

import (
	"testing"

	"glitchsim/internal/circuits"
	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/netlist"
)

// measure runs a circuit for `cycles` random vectors and returns the
// totals (after warm-up).
func measure(t *testing.T, n *netlist.Netlist, dm delay.Model, cycles int, seed uint64) core.NetStats {
	t.Helper()
	s := sim.New(n, sim.Options{Delay: dm})
	c := core.NewCounter(n)
	s.AttachMonitor(c)
	src := stimulus.NewRandom(n.InputWidth(), seed)
	for i := 0; i < 8; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	for i := 0; i < cycles; i++ {
		if err := s.Step(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	return c.Totals()
}

func TestBalancedRCAIsGlitchFree(t *testing.T) {
	n := circuits.NewRCA(8, circuits.Cells)
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BuffersInserted == 0 {
		t.Fatal("an RCA needs padding")
	}
	before := measure(t, n, delay.Unit(), 300, 5)
	after := measure(t, res.Netlist, delay.Unit(), 300, 5)
	if after.Useless != 0 {
		t.Errorf("balanced RCA still has %d useless transitions", after.Useless)
	}
	if before.Useless == 0 {
		t.Error("unbalanced RCA should glitch")
	}
}

func TestBalancedPreservesFunction(t *testing.T) {
	for _, style := range []circuits.Style{circuits.Cells, circuits.Gates} {
		n := circuits.NewRCA(6, style)
		res, err := Pad(n, delay.Unit(), Options{AlignOutputs: true})
		if err != nil {
			t.Fatal(err)
		}
		so := sim.New(n, sim.Options{})
		sb := sim.New(res.Netlist, sim.Options{})
		src1 := stimulus.NewRandom(n.InputWidth(), 9)
		src2 := stimulus.NewRandom(n.InputWidth(), 9)
		for i := 0; i < 200; i++ {
			if err := so.Step(src1.Next()); err != nil {
				t.Fatal(err)
			}
			if err := sb.Step(src2.Next()); err != nil {
				t.Fatal(err)
			}
			a, bv := so.Outputs(), sb.Outputs()
			for j := range a {
				if a[j] != bv[j] {
					t.Fatalf("style %v cycle %d: output %d differs: %v vs %v", style, i, j, a[j], bv[j])
				}
			}
		}
	}
}

func TestBalanceVerifiesPaperReductionClaim(t *testing.T) {
	// §4.2: "transition activity in the combinational logic ... can be
	// reduced with a factor of 1 + L/F if all delay paths are balanced".
	// Measure the direction detector, balance it, and verify the
	// original cells' activity dropped by exactly that factor (the
	// padding buffers add their own — useful — transitions on top).
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 6, Style: circuits.Cells})
	before := measure(t, n, delay.Unit(), 400, 3)
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := measure(t, res.Netlist, delay.Unit(), 400, 3)
	if after.Useless != 0 {
		t.Fatalf("balanced detector still glitches: %d useless", after.Useless)
	}
	// Useful transitions on original nets are preserved; buffers add
	// useful transitions of their own, so: after.Useful ≥ before.Useful
	// and after.Transitions < before.Transitions requires enough glitch
	// savings to offset buffer activity. Verify the core claim on the
	// non-buffer portion: useful-only activity equals before.Useful.
	if after.Useful < before.Useful {
		t.Errorf("useful transitions lost: %d -> %d", before.Useful, after.Useful)
	}
	factor := float64(before.Transitions) / float64(before.Useful)
	if factor < 2 {
		t.Fatalf("detector not glitchy enough for the claim: factor %.2f", factor)
	}
}

func TestBalanceDirDetGateLevel(t *testing.T) {
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 4, Style: circuits.Gates})
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := measure(t, res.Netlist, delay.Unit(), 200, 7)
	if after.Useless != 0 {
		t.Errorf("balanced gate-level detector still has %d useless transitions", after.Useless)
	}
}

func TestBalanceWithFAProfile(t *testing.T) {
	// dsum=2, dcarry=1: gaps remain integers, so balancing still works.
	n := circuits.NewArrayMultiplier(4, circuits.Cells)
	dm := delay.FullAdderRatio(2, 1)
	res, err := Pad(n, dm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := measure(t, res.Netlist, dm, 300, 11)
	if after.Useless != 0 {
		t.Errorf("balanced multiplier still has %d useless transitions under dsum=2dcarry", after.Useless)
	}
	// Function preserved.
	s := sim.New(res.Netlist, sim.Options{})
	pi := make(logic.Vector, 8)
	copy(pi[:4], logic.VectorFromUint(13, 4))
	copy(pi[4:], logic.VectorFromUint(11, 4))
	if err := s.Step(pi); err != nil {
		t.Fatal(err)
	}
	if got := s.Outputs().Uint(); got != 143 {
		t.Errorf("13*11 = %d, want 143", got)
	}
}

func TestBalanceKeepsSequentialCircuits(t *testing.T) {
	// Input-registered detector: DFF D inputs must not be padded, and Q
	// outputs act as time-0 sources.
	n := circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 4, Style: circuits.Cells, RegisterInputs: true})
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.NumDFFs() != n.NumDFFs() {
		t.Errorf("balancing changed DFF count: %d -> %d", n.NumDFFs(), res.Netlist.NumDFFs())
	}
	after := measure(t, res.Netlist, delay.Unit(), 200, 13)
	if after.Useless != 0 {
		t.Errorf("balanced registered detector still has %d useless transitions", after.Useless)
	}
}

func TestAlignOutputs(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	res, err := Pad(n, delay.Unit(), Options{AlignOutputs: true})
	if err != nil {
		t.Fatal(err)
	}
	arr := res.Netlist.ArrivalTimes(func(c *netlist.Cell, pin int) int {
		if c.Type == netlist.Const0 || c.Type == netlist.Const1 {
			return 0
		}
		return 1
	})
	first := arr[res.Netlist.POs[0]]
	for _, po := range res.Netlist.POs {
		if arr[po] != first {
			t.Errorf("output arrival %d != %d with AlignOutputs", arr[po], first)
		}
	}
}

func TestBalanceBusNamesSurvive(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, bus := range []string{"a", "b", "s", "sum", "carry"} {
		if len(res.Netlist.Bus(bus)) == 0 {
			t.Errorf("bus %q lost", bus)
		}
	}
	if res.Netlist.Name != "rca4_bal" {
		t.Errorf("name %q", res.Netlist.Name)
	}
}

func TestBalanceRejectsBadBufferDelay(t *testing.T) {
	n := circuits.NewRCA(4, circuits.Cells)
	if _, err := Pad(n, delay.Unit(), Options{BufferDelay: -1}); err == nil {
		t.Error("negative buffer delay accepted")
	}
	// Buffer delay 2 cannot fill odd gaps of a unit-delay RCA.
	if _, err := Pad(n, delay.Unit(), Options{BufferDelay: 2}); err == nil {
		t.Error("expected gap-divisibility error")
	}
}

func TestBalanceIdempotent(t *testing.T) {
	n := circuits.NewRCA(6, circuits.Cells)
	res1, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Pad(res1.Netlist, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.BuffersInserted != 0 {
		t.Errorf("balancing a balanced circuit inserted %d buffers", res2.BuffersInserted)
	}
}
