package balance

import (
	"testing"

	"glitchsim/internal/core"
	"glitchsim/internal/delay"
	"glitchsim/internal/logic"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/testutil"
)

// TestPropertyBalancedAlwaysGlitchFree: for arbitrary random netlists,
// the padded circuit has zero useless transitions under the same delay
// model and remains cycle-accurate equivalent.
func TestPropertyBalancedAlwaysGlitchFree(t *testing.T) {
	rng := stimulus.NewPRNG(2024)
	for trial := 0; trial < 25; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs:       3 + int(rng.Uintn(5)),
			Gates:        15 + int(rng.Uintn(50)),
			Outputs:      3,
			WithDFFs:     trial%2 == 0,
			WithCompound: trial%3 == 0,
		})
		dm := delay.Unit()
		if trial%4 == 1 {
			dm = delay.FullAdderRatio(2, 1)
		}
		res, err := Pad(n, dm, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		so := sim.New(n, sim.Options{Delay: dm})
		sb := sim.New(res.Netlist, sim.Options{Delay: dm})
		counter := core.NewCounter(res.Netlist)
		sb.AttachMonitor(counter)

		seed := rng.Uint64()
		srcA := stimulus.NewRandom(n.InputWidth(), seed)
		srcB := stimulus.NewRandom(n.InputWidth(), seed)
		for cycle := 0; cycle < 30; cycle++ {
			if err := so.Step(srcA.Next()); err != nil {
				t.Fatal(err)
			}
			if err := sb.Step(srcB.Next()); err != nil {
				t.Fatal(err)
			}
			a, b := so.Outputs(), sb.Outputs()
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("trial %d cycle %d: output %d differs (%v vs %v)", trial, cycle, j, a[j], b[j])
				}
			}
		}
		if got := counter.Totals().Useless; got != 0 {
			t.Fatalf("trial %d: balanced circuit has %d useless transitions", trial, got)
		}
	}
}

// TestPropertyEveryNetSingleTransition: in a balanced circuit, no net
// transitions more than once per cycle (the defining property of
// glitch-freeness), checked per net rather than in aggregate.
func TestPropertyEveryNetSingleTransition(t *testing.T) {
	rng := stimulus.NewPRNG(555)
	for trial := 0; trial < 10; trial++ {
		n := testutil.RandomNetlist(rng, testutil.RandConfig{
			Inputs: 4, Gates: 40, Outputs: 2, WithCompound: true,
		})
		res, err := Pad(n, delay.Unit(), Options{AlignOutputs: true})
		if err != nil {
			t.Fatal(err)
		}
		s := sim.New(res.Netlist, sim.Options{})
		counter := core.NewCounter(res.Netlist)
		s.AttachMonitor(counter)
		src := stimulus.NewRandom(n.InputWidth(), rng.Uint64())
		for cycle := 0; cycle < 40; cycle++ {
			if err := s.Step(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range res.Netlist.InternalNets() {
			if st := counter.Stats(id); st.MaxPerCycle > 1 {
				t.Fatalf("trial %d: net %s transitioned %d times in one cycle",
					trial, res.Netlist.Net(id).Name, st.MaxPerCycle)
			}
		}
	}
}

// TestPropertyPadPreservesThreeValuedInit: balanced circuits settle from
// reset identically to the original under X-propagation.
func TestPropertyPadPreservesThreeValuedInit(t *testing.T) {
	rng := stimulus.NewPRNG(99)
	n := testutil.RandomNetlist(rng, testutil.RandConfig{
		Inputs: 4, Gates: 30, Outputs: 3, WithDFFs: true,
	})
	res, err := Pad(n, delay.Unit(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	so := sim.New(n, sim.Options{})
	sb := sim.New(res.Netlist, sim.Options{})
	// First cycle from reset with all-zero inputs.
	pi := make(logic.Vector, n.InputWidth())
	for i := range pi {
		pi[i] = logic.L0
	}
	if err := so.Step(pi); err != nil {
		t.Fatal(err)
	}
	if err := sb.Step(pi); err != nil {
		t.Fatal(err)
	}
	a, b := so.Outputs(), sb.Outputs()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("reset-cycle output %d differs: %v vs %v", j, a[j], b[j])
		}
	}
}
