// Package analysistest runs an analysis.Analyzer over fixture packages
// and checks its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// Fixtures live under <testdata>/src/<importpath>/ as ordinary Go
// files. A line that should be flagged carries a trailing comment:
//
//	fmt.Sprintf("x") // want `call to fmt\.Sprintf allocates`
//
// The pattern is a Go string literal (quoted or backquoted) holding a
// regular expression that must match a diagnostic reported on that
// line; several patterns on one line expect several diagnostics. Lines
// without a want comment must produce no diagnostics.
//
// Standard-library imports are typechecked from GOROOT source
// (importer "source" — no export data or network needed); imports that
// resolve under <testdata>/src are loaded recursively, so fixtures can
// ship stub dependencies (e.g. a local "http" package standing in for
// net/http).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"glitchsim/internal/analysis"
)

// Run loads each fixture package under dir/src and applies a to it,
// failing t on any mismatch between reported diagnostics and // want
// expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			res, err := l.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      l.fset,
				Files:     res.files,
				Pkg:       res.pkg,
				TypesInfo: res.info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s: %v", a.Name, err)
			}
			check(t, l.fset, res.files, diags)
		})
	}
}

// check matches diagnostics against want expectations.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*expectation{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, exp := range parseWants(t, fset, c) {
					k := key{exp.file, exp.line}
					wants[k] = append(wants[k], exp)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var unmatched []string
	for _, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				unmatched = append(unmatched, fmt.Sprintf("%s:%d: no diagnostic matching %q", filepath.Base(exp.file), exp.line, exp.re))
			}
		}
	}
	sort.Strings(unmatched)
	for _, msg := range unmatched {
		t.Errorf("%s", msg)
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the expectation list from a comment: everything
// after the `want` keyword.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRE matches one Go string literal: interpreted or raw.
var patRE = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// parseWants extracts the expectations from one comment.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := m[1]
	var out []*expectation
	for {
		pm := patRE.FindStringSubmatch(rest)
		if pm == nil {
			break
		}
		rest = rest[len(pm[0]):]
		lit := pm[1]
		var pat string
		if strings.HasPrefix(lit, "`") {
			pat = lit[1 : len(lit)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(lit)
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no string literal pattern", pos)
	}
	return out
}

// loader typechecks fixture packages, chaining fixture-local imports
// (under srcDir) with standard-library imports compiled from GOROOT
// source.
type loader struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	pkgs   map[string]*loaded
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcDir: srcDir,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*loaded{},
	}
}

// Import implements types.Importer for the fixture typechecker.
func (l *loader) Import(path string) (*types.Package, error) {
	if dirExists(filepath.Join(l.srcDir, filepath.FromSlash(path))) {
		res, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return res.pkg, nil
	}
	return l.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and typechecks one fixture package (memoized).
func (l *loader) load(path string) (*loaded, error) {
	if res, ok := l.pkgs[path]; ok {
		return res, res.err
	}
	res := &loaded{}
	l.pkgs[path] = res // pre-register: import cycles fail in Import, not loop
	dir := filepath.Join(l.srcDir, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		res.err = fmt.Errorf("no fixture files in %s", dir)
		return res, res.err
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			res.err = err
			return res, res.err
		}
		res.files = append(res.files, f)
	}
	res.info = &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Implicits: map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	res.pkg, res.err = conf.Check(path, l.fset, res.files, res.info)
	return res, res.err
}
