// Fixture for the kernelpoll analyzer: unbounded loops in hotpath
// functions must consult the pollState surface (poll/due).
package kernelpoll

type state struct{ budget int }

func (p *state) poll(ev uint64, cyc int) bool { return p.budget > 0 }
func (p *state) due(ev uint64) bool           { return ev%64 == 0 }

type kern struct {
	poll  state
	queue []int
}

//glitchsim:hotpath
func (k *kern) runGood() {
	for len(k.queue) > 0 {
		if k.poll.due(1) && !k.poll.poll(1, 0) {
			return
		}
		k.queue = k.queue[:len(k.queue)-1]
	}
}

//glitchsim:hotpath
func (k *kern) runBad() {
	for len(k.queue) > 0 { // want `unbounded loop in hotpath function runBad does not poll cancellation/budget state`
		k.queue = k.queue[:len(k.queue)-1]
	}
}

//glitchsim:hotpath
func (k *kern) spinBad() {
	for { // want `unbounded loop in hotpath function spinBad does not poll cancellation/budget state`
		if len(k.queue) == 0 {
			return
		}
		k.queue = k.queue[:0]
	}
}

// countedOK: three-clause and range loops are bounded by construction.
//
//glitchsim:hotpath
func (k *kern) countedOK(n int) {
	for i := 0; i < n; i++ {
		k.queue = k.queue[:0]
	}
	for range k.queue {
	}
}

// nestedOK: the poll call sits in an inner loop; the outer loop still
// reaches it every iteration.
//
//glitchsim:hotpath
func (k *kern) nestedOK() {
	for len(k.queue) > 0 {
		for len(k.queue) > 0 {
			if !k.poll.poll(1, 0) {
				return
			}
			k.queue = k.queue[:len(k.queue)-1]
		}
	}
}

// cold is not annotated: unbounded loops are fine here.
func cold(k *kern) {
	for len(k.queue) > 0 {
		k.queue = k.queue[:0]
	}
}
