// Fixture for the ctxbg analyzer: fresh root contexts are forbidden in
// library paths.
package ctxbg

import "context"

func bad() context.Context {
	return context.Background() // want `context\.Background\(\) in a library path detaches cancellation`
}

func alsoBad() context.Context {
	return context.TODO() // want `context\.TODO\(\) in a library path detaches cancellation`
}

// oldEntry runs the study with defaults.
//
// Deprecated: use NewEntry with an explicit context.
func oldEntry() context.Context {
	return context.Background() // Deprecated wrapper: allowed
}

func plumbed(ctx context.Context) context.Context {
	return ctx // accepting a context: the point of the rule
}
