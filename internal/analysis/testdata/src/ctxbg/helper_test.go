package ctxbg

import "context"

// testRoot is in a _test.go file: tests own their root contexts.
func testRoot() context.Context {
	return context.Background()
}
