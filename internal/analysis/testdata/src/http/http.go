// Package http is a fixture stub standing in for net/http: just enough
// surface for the typederr fixtures to typecheck without compiling the
// real net/http from source.
package http

// ResponseWriter mirrors net/http.ResponseWriter.
type ResponseWriter interface {
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// Error replies to the request with the given error message and status
// code, like net/http.Error.
func Error(w ResponseWriter, error string, code int) {}

const (
	StatusOK         = 200
	StatusBadRequest = 400
	StatusTeapot     = 418
)
