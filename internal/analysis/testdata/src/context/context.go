// Package context is a fixture stub standing in for the standard
// context package, so the ctxbg fixtures typecheck without compiling
// the real dependency tree from source.
package context

// Context is a minimal stand-in for context.Context.
type Context interface {
	Done() <-chan struct{}
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

// Background returns a root context.
func Background() Context { return emptyCtx{} }

// TODO returns a root context.
func TODO() Context { return emptyCtx{} }
