// Fixture for the hotpathalloc analyzer: every construct it must flag,
// and every reuse pattern it must accept.
package hotpathalloc

import "errors"

type buf struct {
	out      []int
	inflight map[int][]int
}

func idle() {}

func sink(v any) {}

//glitchsim:hotpath
func badConstructs(n int) {
	m := map[int]int{} // want `map literal allocates in hotpath function badConstructs`
	_ = m
	s := []int{1, 2, 3} // want `slice literal allocates in hotpath function badConstructs`
	_ = s
	p := &buf{} // want `&composite literal allocates in hotpath function badConstructs`
	_ = p
	q := new(buf) // want `new allocates in hotpath function badConstructs`
	_ = q
	mm := make(map[int]int) // want `make\(map\) allocates in hotpath function badConstructs`
	_ = mm
	ch := make(chan int) // want `make\(chan\) allocates in hotpath function badConstructs`
	_ = ch
	sl := make([]int, n) // want `make without explicit capacity allocates in hotpath function badConstructs`
	_ = sl
	err := errors.New("boom") // want `call to errors\.New allocates in hotpath function badConstructs`
	_ = err
	f := func() {} // want `closure allocates in hotpath function badConstructs`
	f()
	go idle() // want `go statement allocates in hotpath function badConstructs`
}

//glitchsim:hotpath
func badAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append into a fresh slice allocates in hotpath function badAppend`
	}
	return out
}

//glitchsim:hotpath
func badBox(n int) any {
	var x any
	x = n // want `assignment boxes int into interface in hotpath function badBox`
	_ = x
	var y any = n // want `declaration boxes int into interface in hotpath function badBox`
	_ = y
	sink(n)  // want `argument boxes int into interface in hotpath function badBox`
	return n // want `return boxes int into interface in hotpath function badBox`
}

//glitchsim:hotpath
func badConv(b []byte) string {
	return string(b) // want `string conversion allocates in hotpath function badConv`
}

// good exercises the sanctioned patterns: reslice-of-field,
// preallocated-cap make, append chains rooted in parameters, and
// panic arguments (exempt — a panic is never steady-state cost).
//
//glitchsim:hotpath
func (b *buf) good(vals []int, scratch *[]int) {
	out := b.out[:0]
	for _, v := range vals {
		out = append(out, v)
	}
	b.out = out
	tmp := make([]int, 0, 8)
	tmp = append(tmp, 1)
	_ = tmp
	list := b.inflight[3]
	kept := list[:0]
	kept = append(kept, 1)
	b.inflight[3] = kept
	ins := (*scratch)[:0]
	ins = append(ins, 2)
	*scratch = ins
	var iface any = nil // untyped nil into interface: no box
	_ = iface
	if len(vals) > 1<<20 {
		panic(errors.New("too many")) // panic argument: exempt
	}
}

// coldAlloc is not annotated: allocations are fine here.
func coldAlloc(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
