// Fixture: package main owns its root context; ctxbg must stay silent.
package main

import "context"

func main() {
	_ = context.Background()
	_ = context.TODO()
}
