// Fixture for the typederr analyzer. The package is named "service" so
// the analyzer treats it as internal/service; the http import resolves
// to the fixture stub.
package service

import "http"

// ErrorResponse mirrors the service error envelope.
type ErrorResponse struct {
	Code    string
	Message string
}

func bad1(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http\.Error bypasses the error taxonomy`
}

func bad2(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTeapot) // want `WriteHeader\(418\) bypasses the error taxonomy`
}

func bad3() ErrorResponse {
	return ErrorResponse{Message: "boom"} // want `ErrorResponse without a Code field bypasses the error taxonomy`
}

func bad4() ErrorResponse {
	return ErrorResponse{Code: "", Message: "boom"} // want `ErrorResponse with empty Code bypasses the error taxonomy`
}

// writeError is a taxonomy helper: the code parameter exempts its
// direct WriteHeader call.
func writeError(w http.ResponseWriter, status int, code string, msg string) {
	w.WriteHeader(status)
	_ = ErrorResponse{Code: code, Message: msg}
}

func ok(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK) // 2xx: fine
	w.WriteHeader(200)
	_ = ErrorResponse{Code: "bad_request", Message: "msg"}
	writeError(w, 400, "bad_request", "msg")
}

// statusWriter embeds ResponseWriter: its WriteHeader pass-through is
// exempt.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) report() {
	sw.WriteHeader(500)
}
