package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TypedErr enforces the service error taxonomy: in packages named
// "service", every error response must flow through the Code* helpers
// of internal/service/errors.go. It reports:
//
//   - calls to http.Error (a naked text/plain reply with no machine
//     code);
//   - WriteHeader with a constant status >= 300 outside the taxonomy
//     helpers themselves (a function is a helper when it takes a
//     parameter named `code`, or is a method on a type that embeds
//     http.ResponseWriter — a pass-through wrapper like statusWriter);
//   - ErrorResponse composite literals without a non-empty Code field.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "service error responses must carry a Code from the error taxonomy",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) error {
	if pass.Pkg.Name() != "service" {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			exempt := writeHeaderExempt(info, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if pkg, name := calleePkgPath(info, n); name == "Error" && isHTTPPath(pkg) {
						pass.Reportf(n.Pos(), "http.Error bypasses the error taxonomy; use writeError with a Code* constant")
					}
					if !exempt {
						checkWriteHeader(pass, n)
					}
				case *ast.CompositeLit:
					checkErrorResponseLit(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// isHTTPPath matches the net/http package in both real builds and
// analysistest fixtures (which substitute a local stub named "http").
func isHTTPPath(pkg string) bool {
	return pkg == "net/http" || pkg == "http" || strings.HasSuffix(pkg, "/http")
}

// writeHeaderExempt reports whether fn is allowed to call WriteHeader
// with an error status directly: it is one of the taxonomy helpers
// (takes a parameter named "code") or a response-writer wrapper (method
// on a type embedding http.ResponseWriter).
func writeHeaderExempt(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if name.Name == "code" {
					return true
				}
			}
		}
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && strings.HasSuffix(types.TypeString(f.Type(), nil), "ResponseWriter") {
			return true
		}
	}
	return false
}

// checkWriteHeader flags WriteHeader(<constant >= 300>).
func checkWriteHeader(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if status, ok := constant.Int64Val(tv.Value); ok && status >= 300 {
		pass.Reportf(call.Pos(), "WriteHeader(%d) bypasses the error taxonomy; use writeError with a Code* constant", status)
	}
}

// checkErrorResponseLit flags ErrorResponse{...} literals whose Code
// field is missing or the empty string.
func checkErrorResponseLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "ErrorResponse" {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Code" {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[kv.Value]; ok && tv.Value != nil &&
			tv.Value.Kind() == constant.String && constant.StringVal(tv.Value) == "" {
			pass.Reportf(lit.Pos(), "ErrorResponse with empty Code bypasses the error taxonomy")
		}
		return // Code present and non-empty (or non-constant): fine
	}
	pass.Reportf(lit.Pos(), "ErrorResponse without a Code field bypasses the error taxonomy")
}
