package analysis

import (
	"go/ast"
)

// KernelPoll enforces the budget/cancellation contract on kernel
// loops: inside a //glitchsim:hotpath function, any `for` loop that
// can run unbounded — no post statement, i.e. `for { ... }` or
// `for cond { ... }` — must contain a call to the pollState methods
// poll or due somewhere in its body. Counted loops (three-clause for,
// range) are bounded by construction and exempt.
//
// This is how a future kernel cannot silently lose budget enforcement:
// the moment its event loop stops consulting pollState, the build
// fails.
var KernelPoll = &Analyzer{
	Name: "kernelpoll",
	Doc:  "unbounded loops in //glitchsim:hotpath functions must poll pollState (poll/due)",
	Run:  runKernelPoll,
}

func runKernelPoll(pass *Pass) error {
	for _, fn := range hotPathFuncs(pass) {
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Post != nil {
				return true
			}
			if !callsPoll(loop.Body) {
				pass.Reportf(loop.Pos(), "unbounded loop in hotpath function %s does not poll cancellation/budget state (call poll or due)", fn.Name.Name)
			}
			return true
		})
	}
	return nil
}

// callsPoll reports whether body contains a call whose callee is named
// poll or due (the pollState surface).
func callsPoll(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name == "poll" || name == "due" {
			found = true
			return false
		}
		return true
	})
	return found
}
