package analysis

import (
	"go/ast"
	"strings"
)

// CtxBG keeps cancellation plumbed end to end: context.Background()
// and context.TODO() mint fresh root contexts, so a call in a library
// path silently detaches everything below it from the caller's
// cancellation and budget. They are allowed only where a root context
// is legitimately born:
//
//   - package main (process entry points own their root);
//   - _test.go files (tests are their own entry points);
//   - functions whose doc comment contains "Deprecated:" (the
//     compatibility wrappers intentionally predate the context API).
//
// Everything else must accept a context or take one from an
// explicitly-configured base (e.g. jobs.Options.BaseContext).
var CtxBG = &Analyzer{
	Name: "ctxbg",
	Doc:  "forbid context.Background/TODO outside main, tests and Deprecated wrappers",
	Run:  runCtxBG,
}

func runCtxBG(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := calleePkgPath(info, call)
			if pkg != "context" || (name != "Background" && name != "TODO") {
				return true
			}
			if strings.Contains(funcDoc(pass, call.Pos()), "Deprecated:") {
				return true
			}
			pass.Reportf(call.Pos(), "context.%s() in a library path detaches cancellation; accept a context or use a configured base context", name)
			return true
		})
	}
	return nil
}
