package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc reports heap-allocating constructs inside functions
// annotated //glitchsim:hotpath. The kernels' zero
// steady-state-allocation guarantee is pinned dynamically by
// internal/sim's alloc tests; this analyzer proves the same property
// structurally, so a regression is a compile-time finding instead of a
// test that has to exercise the right path.
//
// Flagged constructs:
//
//   - map and slice composite literals, and &T{} pointer literals;
//   - make of maps, channels, and slices without an explicit capacity
//     (a 3-argument make is the sanctioned preallocated-cap pattern:
//     its one allocation is visible right there);
//   - new(T);
//   - append whose destination is not a reused buffer (a struct field,
//     a parameter, a reslice of either, or a local with an explicit
//     capacity) — appends into fresh locals grow a new backing array
//     every call;
//   - calls into fmt, log and errors (formatting machinery allocates);
//   - string <-> []byte/[]rune conversions;
//   - closures and go statements;
//   - implicit interface boxing: assigning, passing or returning a
//     concrete value where an interface is expected.
//
// Arguments of panic calls are exempt: a panic unwinds the call, so
// its formatting is never steady-state cost.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap-allocating constructs in //glitchsim:hotpath functions",
	Run:  runHotPathAlloc,
}

// allocPkgs are packages whose entire API is considered allocating.
var allocPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

func runHotPathAlloc(pass *Pass) error {
	for _, fn := range hotPathFuncs(pass) {
		if fn.Body == nil {
			continue
		}
		(&hotPathChecker{pass: pass, fn: fn}).check(fn.Body)
	}
	return nil
}

type hotPathChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (c *hotPathChecker) check(body ast.Node) {
	info := c.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				c.pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", c.fn.Name.Name)
			case *types.Slice:
				c.pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", c.fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "&composite literal allocates in hotpath function %s", c.fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure allocates in hotpath function %s", c.fn.Name.Name)
			return false
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates in hotpath function %s", c.fn.Name.Name)
		case *ast.AssignStmt:
			c.checkAssignBoxing(n)
		case *ast.ValueSpec:
			c.checkValueSpecBoxing(n)
		case *ast.ReturnStmt:
			c.checkReturnBoxing(n)
		case *ast.CallExpr:
			return c.checkCall(n)
		}
		return true
	})
}

// checkCall handles builtins, allocating packages, conversions and
// call-argument boxing. It returns false when the node's children must
// not be visited (panic arguments are exempt).
func (c *hotPathChecker) checkCall(call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	name := c.fn.Name.Name

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion. string <-> []byte/[]rune copies; conversion
		// to an interface type boxes.
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if isStringBytesConv(to, from) {
				c.pass.Reportf(call.Pos(), "string conversion allocates in hotpath function %s", name)
			}
			if boxes(to, from) {
				c.pass.Reportf(call.Pos(), "conversion to interface %s boxes in hotpath function %s", types.TypeString(to, nil), name)
			}
		}
		return true
	}

	switch builtinName(info, call) {
	case "panic":
		return false // unwinds: not steady-state cost
	case "new":
		c.pass.Reportf(call.Pos(), "new allocates in hotpath function %s", name)
		return true
	case "make":
		switch info.TypeOf(call).Underlying().(type) {
		case *types.Map:
			c.pass.Reportf(call.Pos(), "make(map) allocates in hotpath function %s", name)
		case *types.Chan:
			c.pass.Reportf(call.Pos(), "make(chan) allocates in hotpath function %s", name)
		case *types.Slice:
			if len(call.Args) < 3 {
				c.pass.Reportf(call.Pos(), "make without explicit capacity allocates in hotpath function %s", name)
			}
		}
		return true
	case "append":
		if len(call.Args) > 0 && !c.reusedBuffer(call.Args[0], map[types.Object]bool{}) {
			c.pass.Reportf(call.Pos(), "append into a fresh slice allocates in hotpath function %s (reuse a field or preallocated buffer)", name)
		}
		return true
	}

	if pkg, fname := calleePkgPath(info, call); allocPkgs[pkg] {
		c.pass.Reportf(call.Pos(), "call to %s.%s allocates in hotpath function %s", pkg, fname, name)
	}
	c.checkCallArgBoxing(call)
	return true
}

// reusedBuffer reports whether an append destination is a reused
// buffer rather than a fresh per-call slice: rooted at a struct field
// or package variable (selector), a parameter or receiver, an element,
// reslice or dereference of such, a make with explicit capacity, or a
// local whose every (non-self-append) assignment is rooted likewise.
func (c *hotPathChecker) reusedBuffer(expr ast.Expr, seen map[types.Object]bool) bool {
	info := c.pass.TypesInfo
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return true // field or package-level buffer: persists across calls
	case *ast.IndexExpr:
		return c.reusedBuffer(e.X, seen)
	case *ast.SliceExpr:
		return c.reusedBuffer(e.X, seen)
	case *ast.StarExpr:
		return c.reusedBuffer(e.X, seen)
	case *ast.CallExpr:
		if builtinName(info, e) == "make" && len(e.Args) == 3 {
			return true // preallocated cap: the make is reported, appends within it not
		}
		if builtinName(info, e) == "append" && len(e.Args) > 0 {
			return c.reusedBuffer(e.Args[0], seen)
		}
		return false
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if c.isParam(obj) {
			return true
		}
		if seen[obj] {
			return true // cycle: only self-referential assignments seen
		}
		seen[obj] = true
		return c.localOriginsReused(obj, seen)
	}
	return false
}

// localOriginsReused scans the function body for assignments defining
// obj and reports whether every origin is a reused buffer. A local
// with no defining assignment at all (declared nil, only appended to)
// is fresh.
func (c *hotPathChecker) localOriginsReused(obj types.Object, seen map[types.Object]bool) bool {
	info := c.pass.TypesInfo
	found, allReused := false, true
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value assignment from one expression: treat a
				// matching LHS as an unknown (fresh) origin.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && info.ObjectOf(id) == obj {
						found, allReused = true, false
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.ObjectOf(id) != obj {
					continue
				}
				if selfAppend(info, obj, n.Rhs[i]) {
					continue // x = append(x, ...) does not define the origin
				}
				found = true
				if !c.reusedBuffer(n.Rhs[i], seen) {
					allReused = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if info.ObjectOf(name) != obj || i >= len(n.Values) {
					continue
				}
				found = true
				if !c.reusedBuffer(n.Values[i], seen) {
					allReused = false
				}
			}
		}
		return true
	})
	return found && allReused
}

// selfAppend reports whether rhs is append(x, ...) with x resolving to
// obj itself.
func selfAppend(info *types.Info, obj types.Object, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// isParam reports whether obj is a parameter or the receiver of the
// checked function.
func (c *hotPathChecker) isParam(obj types.Object) bool {
	info := c.pass.TypesInfo
	match := func(fields *ast.FieldList) bool {
		if fields == nil {
			return false
		}
		for _, f := range fields.List {
			for _, name := range f.Names {
				if info.ObjectOf(name) == obj {
					return true
				}
			}
		}
		return false
	}
	return match(c.fn.Recv) || match(c.fn.Type.Params)
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// boxes reports whether assigning a value of type from to a slot of
// type to requires an interface allocation: to is an interface, from a
// concrete (non-interface, non-nil) type.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(to.Underlying()) {
		return false
	}
	if types.IsInterface(from.Underlying()) {
		return false
	}
	if basic, ok := from.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func isStringBytesConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isByteish(from)) || (isByteish(to) && isStr(from))
}

func (c *hotPathChecker) checkAssignBoxing(n *ast.AssignStmt) {
	info := c.pass.TypesInfo
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		to := info.TypeOf(lhs)
		if n.Tok.String() == ":=" {
			continue // inferred type: never a boxing site
		}
		if boxes(to, info.TypeOf(n.Rhs[i])) {
			c.pass.Reportf(n.Rhs[i].Pos(), "assignment boxes %s into interface in hotpath function %s", types.TypeString(info.TypeOf(n.Rhs[i]), nil), c.fn.Name.Name)
		}
	}
}

func (c *hotPathChecker) checkValueSpecBoxing(n *ast.ValueSpec) {
	info := c.pass.TypesInfo
	if n.Type == nil {
		return
	}
	to := info.TypeOf(n.Type)
	for _, v := range n.Values {
		if boxes(to, info.TypeOf(v)) {
			c.pass.Reportf(v.Pos(), "declaration boxes %s into interface in hotpath function %s", types.TypeString(info.TypeOf(v), nil), c.fn.Name.Name)
		}
	}
}

func (c *hotPathChecker) checkReturnBoxing(n *ast.ReturnStmt) {
	info := c.pass.TypesInfo
	results := c.fn.Type.Results
	if results == nil || len(n.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		t := info.TypeOf(f.Type)
		k := len(f.Names)
		if k == 0 {
			k = 1
		}
		for j := 0; j < k; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(n.Results) != len(resultTypes) {
		return // multi-value return from one call: origins unknown
	}
	for i, r := range n.Results {
		if boxes(resultTypes[i], info.TypeOf(r)) {
			c.pass.Reportf(r.Pos(), "return boxes %s into interface in hotpath function %s", types.TypeString(info.TypeOf(r), nil), c.fn.Name.Name)
		}
	}
}

// checkCallArgBoxing flags concrete values passed where the callee's
// signature expects an interface (including variadic ...any).
func (c *hotPathChecker) checkCallArgBoxing(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var to types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			to = s.Elem()
		case i < params.Len():
			to = params.At(i).Type()
		default:
			continue
		}
		if boxes(to, info.TypeOf(arg)) {
			c.pass.Reportf(arg.Pos(), "argument boxes %s into interface in hotpath function %s", types.TypeString(info.TypeOf(arg), nil), c.fn.Name.Name)
		}
	}
}
