// Package analysis is the project's static-invariant suite: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus four custom
// analyzers that prove, at compile time, the structural invariants the
// simulator's correctness and performance claims rest on:
//
//   - hotpathalloc: functions annotated //glitchsim:hotpath must not
//     contain heap-allocating constructs (the kernels' zero
//     steady-state-allocation guarantee, statically).
//   - kernelpoll: unbounded loops in hotpath functions must poll the
//     cancellation/budget state (pollState.due/poll), so no kernel can
//     silently lose budget enforcement.
//   - typederr: every non-2xx reply in internal/service must flow
//     through the Code* taxonomy helpers — no naked http.Error,
//     WriteHeader(4xx/5xx) or code-less error envelopes.
//   - ctxbg: context.Background()/context.TODO() are forbidden outside
//     package main, _test.go files and Deprecated compatibility
//     wrappers, so cancellation stays plumbed end to end.
//
// cmd/glitchsim-vet packages the suite as a `go vet -vettool=`
// multichecker; the analysistest subpackage runs each analyzer over
// fixture packages with // want expectations.
//
// The x/tools module is deliberately not imported (the repo is
// dependency-free); the subset implemented here — syntax plus full
// go/types information per package, no cross-package facts — is all
// these analyzers need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer: parsed syntax with
// comments, complete type information, and a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full invariant suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{HotPathAlloc, KernelPoll, TypedErr, CtxBG}
}

// HotPathDirective is the annotation that opts a function into the
// hotpathalloc and kernelpoll invariants. It is written as a directive
// comment (no space after //) in the function's doc comment:
//
//	// evalTouched re-evaluates every touched cell.
//	//
//	//glitchsim:hotpath
//	func (s *Simulator) evalTouched(t int) { ... }
const HotPathDirective = "//glitchsim:hotpath"

// isHotPath reports whether a function declaration carries the
// //glitchsim:hotpath directive in its doc comment.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, HotPathDirective) {
			return true
		}
	}
	return false
}

// hotPathFuncs returns every function in the pass annotated
// //glitchsim:hotpath.
func hotPathFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && isHotPath(fn) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// funcDoc returns the doc comment text of the function declaration
// enclosing pos, or "".
func funcDoc(pass *Pass, pos token.Pos) string {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if fn.Pos() <= pos && pos <= fn.End() {
					return fn.Doc.Text()
				}
			}
		}
	}
	return ""
}

// calleePkgPath returns the import path of the package a call's callee
// belongs to ("" for builtins, locals and method values that cannot be
// resolved), plus the callee's name.
func calleePkgPath(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
	}
	return "", ""
}
