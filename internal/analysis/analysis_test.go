package analysis_test

import (
	"testing"

	"glitchsim/internal/analysis"
	"glitchsim/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathAlloc, "hotpathalloc")
}

func TestKernelPoll(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.KernelPoll, "kernelpoll")
}

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TypedErr, "service")
}

func TestCtxBG(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxBG, "ctxbg", "ctxbgmain")
}

func TestSuite(t *testing.T) {
	all := analysis.All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d analyzers, want 4", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
