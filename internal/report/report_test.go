package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta", "2.5", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q in:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Error("row count")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Errorf("got %d lines", len(lines))
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("xxxxxxx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[0]) < 9 {
		t.Errorf("header not padded: %q", lines[0])
	}
}

func TestTablePanicsOnRaggedRow(t *testing.T) {
	tb := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "name", "note")
	tb.AddRow("x", `has "quotes", and commas`)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, `"has ""quotes"", and commas"`) {
		t.Errorf("csv escaping wrong: %q", csv)
	}
}

func TestChart(t *testing.T) {
	out := Chart("activity", []string{"bit0", "bit1"}, []Series{
		{Name: "useful", Values: []float64{10, 20}},
		{Name: "useless", Values: []float64{0, 40}},
	}, 20)
	if !strings.Contains(out, "activity") || !strings.Contains(out, "bit0") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
	// The 40-value bar must be full width, the 10-value a quarter.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "useless") && strings.Contains(line, "40") {
			if !strings.Contains(line, strings.Repeat("#", 20)) {
				t.Errorf("max bar not full: %q", line)
			}
		}
	}
}

func TestChartZeroMax(t *testing.T) {
	out := Chart("flat", []string{"x"}, []Series{{Name: "s", Values: []float64{0}}}, 10)
	if !strings.Contains(out, "|          |") {
		t.Errorf("zero chart wrong:\n%s", out)
	}
}
