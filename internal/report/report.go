// Package report renders experiment results as aligned ASCII tables,
// CSV, and simple text charts — the output layer of the benchmark
// harness that regenerates the paper's tables and figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics when the cell count does not match the
// header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with %.4g.
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(esc(c))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, c := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is one named line in a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders grouped horizontal bars: one group per label, one bar
// per series, scaled to width characters — the text equivalent of the
// paper's Figure 5 and Figure 10 plots.
func Chart(title string, labels []string, series []Series, width int) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s (full bar = %.4g)\n", title, max)
	}
	for li, label := range labels {
		for si, s := range series {
			lab := ""
			if si == 0 {
				lab = label
			}
			v := 0.0
			if li < len(s.Values) {
				v = s.Values[li]
			}
			n := 0
			if max > 0 {
				n = int(math.Round(v / max * float64(width)))
			}
			fmt.Fprintf(&sb, "%-*s %-*s |%s%s| %.4g\n",
				labelW, lab, nameW, s.Name,
				strings.Repeat("#", n), strings.Repeat(" ", width-n), v)
		}
	}
	return sb.String()
}
