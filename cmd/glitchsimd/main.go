// Command glitchsimd serves the glitchsim measurement engine over
// HTTP/JSON: one shared Engine (compiled-netlist cache + worker pool)
// behind /v1/measure, the /v1/experiments endpoints, the /v1/circuits
// catalogue/upload endpoint, the /v1/jobs async job API and /healthz.
// See internal/service for the endpoint and parameter reference.
//
// Usage:
//
//	glitchsimd [-addr :8347] [-workers N] [-cache N] [-lanes N] [-uploads N]
//	           [-uploads-dir DIR] [-job-workers N] [-job-queue N] [-job-timeout D]
//	           [-store DIR] [-budget-events N] [-budget-wall D] [-budget-memory N]
//	           [-max-events N] [-shed-events N] [-grace D] [-idle-timeout D]
//	           [-write-timeout D] [-pprof]
//
// Examples:
//
//	curl localhost:8347/healthz
//	curl -d '{"circuit":"wallace8","cycles":500}' localhost:8347/v1/measure
//	curl 'localhost:8347/v1/measure?circuit=rca16&seeds=1,2,3,4&stream=1'
//	curl -d '{"cycles":500}' localhost:8347/v1/experiments/table1
//	curl --data-binary @design.v 'localhost:8347/v1/circuits?format=verilog'
//	curl -d '{"circuit":"<fingerprint>","cycles":500}' localhost:8347/v1/measure
//	curl -d '{"kind":"measure","measure":{"circuit":"rca16","cycles":5000}}' localhost:8347/v1/jobs
//	curl localhost:8347/v1/jobs/<id>/result
//	go tool pprof localhost:8347/debug/pprof/profile   # with -pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glitchsim"
	"glitchsim/internal/jobs"
	"glitchsim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "measurement worker goroutines per request (0 = all CPUs)")
	cache := flag.Int("cache", glitchsim.DefaultCacheSize, "compiled-netlist cache entries (0 disables caching)")
	lanes := flag.Int("lanes", 0, "word-parallel stimulus lanes per measurement (1 = scalar kernel, 0 = 64)")
	uploads := flag.Int("uploads", service.DefaultUploadCapacity, "uploaded circuits retained (LRU; 0 disables /v1/circuits uploads)")
	uploadsDir := flag.String("uploads-dir", "", "directory persisting circuit uploads across restarts (empty = in-memory only)")
	budgetEvents := flag.Uint64("budget-events", 0, "default per-measurement kernel event budget (0 = unlimited)")
	budgetWall := flag.Duration("budget-wall", 0, "default per-measurement wall-clock budget (0 = unlimited)")
	budgetMemory := flag.Uint64("budget-memory", 0, "default per-measurement estimated-memory budget in bytes (0 = unlimited)")
	maxEvents := flag.Uint64("max-events", 0, "reject measurements whose estimated event cost exceeds N (422; 0 = no ceiling)")
	shedEvents := flag.Uint64("shed-events", 0, "shed measurements above N estimated events while the engine is saturated (429; 0 = never shed)")
	jobWorkers := flag.Int("job-workers", 0, "async job workers (0 = default)")
	jobQueue := flag.Int("job-queue", 0, "async job queue depth before 429 (0 = default)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline across retries (0 = default, negative disables)")
	storeDir := flag.String("store", "", "directory persisting job records across restarts (empty = in-memory only)")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for in-flight requests and jobs")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive connection idle timeout (0 = no limit)")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "per-response write deadline; streaming endpoints clear it per request (0 = no limit)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
	flag.Parse()

	engine := glitchsim.NewEngine(
		glitchsim.WithWorkers(*workers),
		glitchsim.WithCacheSize(*cache),
		glitchsim.WithLanes(*lanes),
	)
	jobOpts := jobs.Options{Workers: *jobWorkers, QueueDepth: *jobQueue, Timeout: *jobTimeout}
	if *storeDir != "" {
		store, err := jobs.NewFileStore(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glitchsimd: job store: %v\n", err)
			os.Exit(1)
		}
		jobOpts.Store = store
	}
	opts := []service.Option{
		service.WithUploadCapacity(*uploads),
		service.WithJobOptions(jobOpts),
		service.WithBaseContext(context.Background()),
		service.WithLogf(log.Printf),
		service.WithDefaultBudget(glitchsim.Budget{
			Events:      *budgetEvents,
			MemoryBytes: *budgetMemory,
			WallClock:   *budgetWall,
		}),
		service.WithLimits(service.Limits{
			MaxEstimatedEvents:  *maxEvents,
			ShedEstimatedEvents: *shedEvents,
		}),
	}
	if *uploadsDir != "" {
		opts = append(opts, service.WithUploadDir(*uploadsDir))
	}
	svc := service.New(engine, opts...)
	var handler http.Handler = svc
	if *pprofOn {
		// Profiling is opt-in: the endpoints expose internals (heap and
		// goroutine dumps, CPU profiles) no public deployment should
		// serve. The handlers are mounted explicitly on our own mux, so
		// importing net/http/pprof does not leak them onto the service
		// routes when the flag is off.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("glitchsimd: pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// IdleTimeout reaps abandoned keep-alive connections; WriteTimeout
		// bounds how long a stuck client can hold a response open. The
		// NDJSON streaming endpoints (measure?stream=1, job event follows)
		// legitimately outlive any fixed write budget, so they clear their
		// own deadline per request via http.ResponseController — the
		// server-wide value protects every buffered-reply endpoint without
		// killing tails mid-follow.
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("glitchsimd listening on %s (workers=%d, lanes=%d, cache=%d)", *addr, engine.Workers(), engine.Lanes(), *cache)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "glitchsimd: %v\n", err)
		os.Exit(1)
	case sig := <-stop:
		log.Printf("glitchsimd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		exit := 0
		if err := srv.Shutdown(ctx); err != nil {
			// Grace expired with requests still open; keep going — the
			// jobs below still deserve their checkpoint.
			fmt.Fprintf(os.Stderr, "glitchsimd: shutdown: %v\n", err)
			exit = 1
		}
		// Shutdown closed the listener, so the serve goroutine has handed
		// its (expected) close error to errc; drain it for a
		// deterministic exit instead of abandoning the channel.
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "glitchsimd: serve: %v\n", err)
			exit = 1
		}
		// HTTP intake is closed; give running jobs the rest of the grace
		// period, checkpointing whatever cannot finish so a restart with
		// the same -store re-runs it.
		if err := svc.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "glitchsimd: job drain: %v\n", err)
			exit = 1
		}
		log.Printf("glitchsimd: drained, bye")
		os.Exit(exit)
	}
}
