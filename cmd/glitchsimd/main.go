// Command glitchsimd serves the glitchsim measurement engine over
// HTTP/JSON: one shared Engine (compiled-netlist cache + worker pool)
// behind /v1/measure, the /v1/experiments endpoints, the /v1/circuits
// catalogue/upload endpoint and /healthz. See internal/service for the
// endpoint and parameter reference.
//
// Usage:
//
//	glitchsimd [-addr :8347] [-workers N] [-cache N] [-lanes N] [-uploads N] [-pprof]
//
// Examples:
//
//	curl localhost:8347/healthz
//	curl -d '{"circuit":"wallace8","cycles":500}' localhost:8347/v1/measure
//	curl 'localhost:8347/v1/measure?circuit=rca16&seeds=1,2,3,4&stream=1'
//	curl -d '{"cycles":500}' localhost:8347/v1/experiments/table1
//	curl --data-binary @design.v 'localhost:8347/v1/circuits?format=verilog'
//	curl -d '{"circuit":"<fingerprint>","cycles":500}' localhost:8347/v1/measure
//	go tool pprof localhost:8347/debug/pprof/profile   # with -pprof
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glitchsim"
	"glitchsim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("workers", 0, "measurement worker goroutines per request (0 = all CPUs)")
	cache := flag.Int("cache", glitchsim.DefaultCacheSize, "compiled-netlist cache entries (0 disables caching)")
	lanes := flag.Int("lanes", 0, "word-parallel stimulus lanes per measurement (1 = scalar kernel, 0 = 64)")
	uploads := flag.Int("uploads", service.DefaultUploadCapacity, "uploaded circuits retained (LRU; 0 disables /v1/circuits uploads)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")
	flag.Parse()

	engine := glitchsim.NewEngine(
		glitchsim.WithWorkers(*workers),
		glitchsim.WithCacheSize(*cache),
		glitchsim.WithLanes(*lanes),
	)
	var handler http.Handler = service.New(engine, service.WithUploadCapacity(*uploads))
	if *pprofOn {
		// Profiling is opt-in: the endpoints expose internals (heap and
		// goroutine dumps, CPU profiles) no public deployment should
		// serve. The handlers are mounted explicitly on our own mux, so
		// importing net/http/pprof does not leak them onto the service
		// routes when the flag is off.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("glitchsimd: pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("glitchsimd listening on %s (workers=%d, lanes=%d, cache=%d)", *addr, engine.Workers(), engine.Lanes(), *cache)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "glitchsimd: %v\n", err)
		os.Exit(1)
	case sig := <-stop:
		log.Printf("glitchsimd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "glitchsimd: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
