package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"glitchsim"
	"glitchsim/internal/report"
)

func cmdBalance(args []string) error {
	fs := flag.NewFlagSet("balance", flag.ExitOnError)
	cycles := fs.Int("cycles", 300, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().BalanceStudy(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	tb := report.NewTable("Delay-path balancing (the paper's §6 alternative to retiming)",
		"circuit", "L/F", "limit 1+L/F", "buffers", "core reduction", "total w/ buffers", "logic mW before", "after")
	for _, r := range rows {
		tb.AddRowf(r.Circuit, r.Before.LOverF(), r.PredictedFactor, r.Buffers,
			r.CoreFactor, r.TotalFactor, r.BeforeLogicMW, r.AfterLogicMW)
	}
	fmt.Println(tb)
	fmt.Println("Balancing removes every useless transition (core reduction hits the 1+L/F")
	fmt.Println("limit), but the padding buffers switch too — which is why §5 uses retiming.")
	return nil
}

func cmdAdders(args []string) error {
	fs := flag.NewFlagSet("adders", flag.ExitOnError)
	width := fs.Int("width", 16, "adder width")
	cycles := fs.Int("cycles", 500, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().AdderStudy(context.Background(),
		glitchsim.ExperimentRequest{Width: *width, Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("Adder architecture comparison (%d-bit, %d random inputs)", *width, *cycles),
		"architecture", "cells", "depth", "total", "useful", "useless", "L/F")
	for _, r := range rows {
		tb.AddRowf(r.Arch, r.Cells, r.Depth, r.Transitions, r.Useful, r.Useless, r.LOverF())
	}
	fmt.Println(tb)
	return nil
}

func cmdCorr(args []string) error {
	fs := flag.NewFlagSet("corr", flag.ExitOnError)
	cycles := fs.Int("cycles", 4000, "simulated cycles")
	seed := fs.Uint64("seed", 99, "video stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().CorrelationStudy(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	tb := report.NewTable("Signal correlation through the direction detector (video stimulus)",
		"stage", "low-bit |autocorr|", "toggle rate")
	for _, r := range rows {
		tb.AddRowf(r.Stage, r.LowBitAutocorr, r.MeanToggle)
	}
	fmt.Println(tb)
	fmt.Println("§4.2's premise, measured: input correlation is destroyed by the abs-diff")
	fmt.Println("stage, so random stimulus is a fair model for everything behind it.")
	return nil
}

func cmdVerilog(args []string) error {
	fs := flag.NewFlagSet("verilog", flag.ExitOnError)
	sel := addCircuitFlags(fs, "rca16")
	out := fs.String("out", "", "output file (default stdout)")
	check := fs.Bool("check", true, "re-parse the output and verify the round trip")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := glitchsim.ExportVerilog(w, n); err != nil {
		return err
	}
	if *check && *out != "" {
		f, err := os.Open(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		back, err := glitchsim.ImportVerilog(f)
		if err != nil {
			return fmt.Errorf("round-trip parse failed: %w", err)
		}
		fmt.Fprintf(os.Stderr, "round trip ok: %d cells, %d nets\n", back.NumCells(), back.NumNets())
	}
	return nil
}

func cmdMults(args []string) error {
	fs := flag.NewFlagSet("mults", flag.ExitOnError)
	width := fs.Int("width", 8, "multiplier width (even)")
	cycles := fs.Int("cycles", 500, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().MultiplierStudy(context.Background(),
		glitchsim.ExperimentRequest{Width: *width, Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	tb := report.NewTable(fmt.Sprintf("Multiplier architecture comparison (%dx%d, %d random inputs)", *width, *width, *cycles),
		"architecture", "cells", "depth", "total", "useful", "useless", "L/F")
	for _, r := range rows {
		tb.AddRowf(r.Arch, r.Cells, r.Depth, r.Transitions, r.Useful, r.Useless, r.LOverF())
	}
	fmt.Println(tb)
	fmt.Println("The booth multiplier's recode/select trees glitch like the array despite")
	fmt.Println("having half the partial products; only the balanced wallace tree is quiet.")
	return nil
}
