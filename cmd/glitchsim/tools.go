package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"glitchsim"
	"glitchsim/internal/delay"
	"glitchsim/internal/registry"
	"glitchsim/internal/retime"
	"glitchsim/internal/service"
	"glitchsim/internal/sim"
	"glitchsim/internal/stimulus"
	"glitchsim/internal/vcd"
)

// delayFlag builds the delay model from -dsum/-dcarry/-typical flags.
func delayFlag(dsum, dcarry int, typical bool) delay.Model {
	return registry.DelayModel(dsum, dcarry, typical)
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	sel := addCircuitFlags(fs, "rca16")
	cycles := fs.Int("cycles", 500, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	dsum := fs.Int("dsum", 1, "full-adder sum delay")
	dcarry := fs.Int("dcarry", 1, "full-adder carry delay")
	typical := fs.Bool("typical", false, "use the heterogeneous typical delay model")
	inertial := fs.Bool("inertial", false, "inertial instead of transport delay")
	top := fs.Int("top", 10, "list the N most glitching nets")
	stim := fs.String("stimulus", "", "replay primary-input waveforms from a VCD file instead of random stimulus")
	stimPeriod := fs.Int("stimulus-period", 0, "VCD time units per clock cycle when replaying (0 = logic depth + 2, the vcd subcommand's period)")
	budgetEvents := fs.Uint64("budget-events", 0, "abort after N kernel events, reporting the partial result (0 = unlimited)")
	budgetWall := fs.Duration("budget-wall", 0, "abort after the given wall-clock time, reporting the partial result (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	cfg := glitchsim.Config{
		Cycles: *cycles, Seed: *seed,
		Delay: delayFlag(*dsum, *dcarry, *typical), Inertial: *inertial,
		Budget: glitchsim.Budget{Events: *budgetEvents, WallClock: *budgetWall},
	}
	if *stim != "" {
		f, err := os.Open(*stim)
		if err != nil {
			return err
		}
		dump, err := vcd.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		period := *stimPeriod
		if period == 0 {
			period = n.LogicDepth() + 2
		}
		src, have, err := dump.Replay(n, period)
		if err != nil {
			return err
		}
		cfg.Source = src
		if *cycles > have {
			fmt.Fprintf(os.Stderr, "note: %s covers %d cycles, replay wraps around to fill %d\n", *stim, have, *cycles)
		}
	}
	kernel, err := glitchsim.DefaultEngine().SelectedKernel(glitchsim.MeasureRequest{Circuit: glitchsim.CircuitFromNetlist(n), Config: cfg})
	if err != nil {
		return err
	}
	if !jsonOut() {
		fmt.Print(n.Summary())
	}
	counter, err := glitchsim.DefaultEngine().MeasureDetailed(context.Background(),
		glitchsim.MeasureRequest{Circuit: glitchsim.CircuitFromNetlist(n), Config: cfg})
	if err != nil {
		// A budget trip still carries the partial counter: report it,
		// flagged, instead of discarding the completed work.
		if counter == nil || !errors.Is(err, glitchsim.ErrBudgetExceeded) {
			return err
		}
		fmt.Fprintf(os.Stderr, "note: %v; reporting the partial result\n", err)
	}
	if jsonOut() {
		return emitJSON(service.MeasureResponse{
			Activity: service.ActivityFrom(glitchsim.ActivityFromCounter(n.Name, counter)),
			Kernel:   string(kernel),
		})
	}
	rep := counter.Report()
	fmt.Printf("kernel: %s\n", kernel)
	fmt.Printf("\n%v\n", rep)
	fmt.Printf("balance reduction limit: %.2f\n\n", rep.BalanceLimitFactor())
	if *top > 0 && len(rep.PerNet) > 0 {
		fmt.Printf("most glitching nets:\n")
		for i, nr := range rep.PerNet {
			if i >= *top {
				break
			}
			fmt.Printf("  %-16s useful=%-6d useless=%-6d glitches=%d\n",
				nr.Net, nr.Stats.Useful, nr.Stats.Useless, nr.Stats.Glitches)
		}
	}
	return nil
}

func cmdRetime(args []string) error {
	fs := flag.NewFlagSet("retime", flag.ExitOnError)
	sel := addCircuitFlags(fs, "dirdet8r")
	period := fs.Int("period", 0, "target clock period (0 = minimize)")
	stages := fs.Int("stages", 0, "extra pipeline stages to add")
	cycles := fs.Int("cycles", 200, "cycles for before/after activity measurement")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	dm := delay.Unit()
	var res retime.Result
	if *period > 0 && *stages == 0 {
		res, err = retime.ForPeriod(n, dm, *period, 64)
	} else {
		res, err = retime.Retime(n, dm, retime.Options{TargetPeriod: *period, ExtraLatency: *stages})
	}
	if err != nil {
		return err
	}
	fmt.Printf("retimed %s: period %d, latency +%d cycles, %d flipflops (was %d)\n\n",
		n.Name, res.Period, res.Latency, res.Registers, n.NumDFFs())
	ctx := context.Background()
	engine := glitchsim.DefaultEngine()
	before, err := engine.Measure(ctx, glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(n),
		Config:  glitchsim.Config{Cycles: *cycles, Seed: *seed},
	})
	if err != nil {
		return err
	}
	after, err := engine.Measure(ctx, glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(res.Netlist),
		Config:  glitchsim.Config{Cycles: *cycles, Seed: *seed, Warmup: res.Latency + 16},
	})
	if err != nil {
		return err
	}
	fmt.Printf("before: %v\nafter:  %v\n", before, after)
	tech := glitchsim.DefaultTech()
	bdB, _, err := engine.MeasurePower(ctx, glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(n),
		Config:  glitchsim.Config{Cycles: *cycles, Seed: *seed},
		Tech:    &tech,
	})
	if err != nil {
		return err
	}
	bdA, _, err := engine.MeasurePower(ctx, glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(res.Netlist),
		Config:  glitchsim.Config{Cycles: *cycles, Seed: *seed, Warmup: res.Latency + 16},
		Tech:    &tech,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\npower before: %v\npower after:  %v\n", bdB, bdA)
	return nil
}

func cmdVCD(args []string) error {
	fs := flag.NewFlagSet("vcd", flag.ExitOnError)
	sel := addCircuitFlags(fs, "hazard")
	cycles := fs.Int("cycles", 16, "cycles to dump")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	out := fs.String("out", "wave.vcd", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	period := n.LogicDepth() + 2
	w, err := vcd.New(f, n, nil, period)
	if err != nil {
		return err
	}
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(w)
	src := stimulus.NewRandom(n.InputWidth(), *seed)
	for i := 0; i < *cycles; i++ {
		if err := s.Step(src.Next()); err != nil {
			return err
		}
	}
	if err := w.Flush(*cycles); err != nil {
		return err
	}
	fmt.Printf("wrote %d cycles of %s (clock period %d time units) to %s\n",
		*cycles, n.Name, period, *out)
	return nil
}

func cmdDOT(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	sel := addCircuitFlags(fs, "rca4")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return n.WriteDOT(w)
}
