package main

import (
	"fmt"
	"sort"
	"strings"

	"glitchsim/internal/circuits"
	"glitchsim/internal/netlist"
)

// circuitBuilders maps CLI circuit names to generators.
var circuitBuilders = map[string]func() *netlist.Netlist{
	"rca4":      func() *netlist.Netlist { return circuits.NewRCA(4, circuits.Cells) },
	"rca8":      func() *netlist.Netlist { return circuits.NewRCA(8, circuits.Cells) },
	"rca16":     func() *netlist.Netlist { return circuits.NewRCA(16, circuits.Cells) },
	"rca16g":    func() *netlist.Netlist { return circuits.NewRCA(16, circuits.Gates) },
	"array8":    func() *netlist.Netlist { return circuits.NewArrayMultiplier(8, circuits.Cells) },
	"array16":   func() *netlist.Netlist { return circuits.NewArrayMultiplier(16, circuits.Cells) },
	"wallace8":  func() *netlist.Netlist { return circuits.NewWallaceMultiplier(8, circuits.Cells) },
	"wallace16": func() *netlist.Netlist { return circuits.NewWallaceMultiplier(16, circuits.Cells) },
	"dirdet8": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells})
	},
	"dirdet8r": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Cells, RegisterInputs: true})
	},
	"dirdet8g": func() *netlist.Netlist {
		return circuits.NewDirectionDetector(circuits.DirDetConfig{Width: 8, Style: circuits.Gates})
	},
	"booth8":  func() *netlist.Netlist { return circuits.NewBoothMultiplier(8, circuits.Cells) },
	"booth16": func() *netlist.Netlist { return circuits.NewBoothMultiplier(16, circuits.Cells) },
	"cskip16": func() *netlist.Netlist { return circuits.NewCarrySkip(16, 4, circuits.Gates) },
	"cla16":   func() *netlist.Netlist { return circuits.NewCLA(16) },
	"csel16":  func() *netlist.Netlist { return circuits.NewCarrySelect(16, 4, circuits.Gates) },
	"hazard":  buildHazard,
}

func buildHazard() *netlist.Netlist {
	b := netlist.NewBuilder("hazard")
	a := b.Input("a")
	out := b.And(a, b.Not(a))
	b.Output("out", out)
	return b.MustBuild()
}

func circuitNames() string {
	names := make([]string, 0, len(circuitBuilders))
	for n := range circuitBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func buildCircuit(name string) (*netlist.Netlist, error) {
	f, ok := circuitBuilders[name]
	if !ok {
		return nil, fmt.Errorf("unknown circuit %q (available: %s)", name, circuitNames())
	}
	return f(), nil
}
