package main

import (
	"flag"
	"fmt"
	"os"

	"glitchsim"
	"glitchsim/internal/registry"
	"glitchsim/netlist"
)

// The circuit catalogue lives in internal/registry, shared with the
// glitchsimd service so both resolve the same names. These helpers keep
// the CLI's historical shape, extended with user-supplied circuits: any
// subcommand with a -circuit flag also takes -verilog file.v or
// -netlist file.json, so the whole toolchain (sim, vcd, stats, power,
// retime, exports) runs on bring-your-own circuits.

func buildHazard() *netlist.Netlist {
	n, err := registry.Build("hazard")
	if err != nil {
		panic(err) // unreachable: "hazard" is a registry name
	}
	return n
}

func circuitNames() string { return registry.NameList() }

func buildCircuit(name string) (*netlist.Netlist, error) { return registry.Build(name) }

// circuitSelector bundles the three ways a subcommand names its
// circuit: -circuit <registry name>, -verilog <file.v>, -netlist
// <file.json>.
type circuitSelector struct {
	name    *string
	verilog *string
	json    *string
}

// addCircuitFlags registers the circuit-selection flags on a
// subcommand's flag set, with def as the default registry circuit.
func addCircuitFlags(fs *flag.FlagSet, def string) *circuitSelector {
	return &circuitSelector{
		name:    fs.String("circuit", def, "circuit name ("+circuitNames()+")"),
		verilog: fs.String("verilog", "", "read the circuit from a structural Verilog `file` instead of -circuit"),
		json:    fs.String("netlist", "", "read the circuit from a JSON netlist `file` instead of -circuit"),
	}
}

// build resolves the selected circuit through the shared Engine's
// circuit sources, so a file-based circuit measured twice compiles once
// (the compiled-netlist cache is fingerprint-keyed).
func (cs *circuitSelector) build() (*netlist.Netlist, error) {
	e := glitchsim.DefaultEngine()
	switch {
	case *cs.verilog != "" && *cs.json != "":
		return nil, fmt.Errorf("-verilog and -netlist are mutually exclusive")
	case *cs.verilog != "":
		src, err := os.ReadFile(*cs.verilog)
		if err != nil {
			return nil, err
		}
		return e.Resolve(glitchsim.CircuitFromVerilog(src))
	case *cs.json != "":
		src, err := os.ReadFile(*cs.json)
		if err != nil {
			return nil, err
		}
		return e.Resolve(glitchsim.CircuitFromJSON(src))
	default:
		return e.Resolve(glitchsim.CircuitNamed(*cs.name))
	}
}
