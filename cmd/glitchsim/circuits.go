package main

import (
	"glitchsim/internal/netlist"
	"glitchsim/internal/registry"
)

// The circuit catalogue lives in internal/registry, shared with the
// glitchsimd service so both resolve the same names. These helpers keep
// the CLI's historical shape.

func buildHazard() *netlist.Netlist {
	n, err := registry.Build("hazard")
	if err != nil {
		panic(err) // unreachable: "hazard" is a registry name
	}
	return n
}

func circuitNames() string { return registry.NameList() }

func buildCircuit(name string) (*netlist.Netlist, error) { return registry.Build(name) }
