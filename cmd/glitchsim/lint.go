package main

import (
	"flag"
	"fmt"

	"glitchsim/netlist"
)

// cmdLint runs the netlist lint pass over a circuit and reports its
// findings: warnings (floating inputs, undriven nets, dead cells,
// combinational loops) first, then the structure profile infos (fanout,
// reconvergent fanout, register feedback). The exit status is nonzero
// when any warning-severity finding is present, so the subcommand works
// as a CI gate over exported designs.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	sel := addCircuitFlags(fs, "rca8")
	quiet := fs.Bool("quiet", false, "report warnings only, suppress info findings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	findings := n.Lint()
	shown := findings
	if *quiet {
		shown = shown[:0:0]
		for _, f := range findings {
			if f.Severity == netlist.SeverityWarning {
				shown = append(shown, f)
			}
		}
	}
	if jsonOut() {
		if err := emitJSON(struct {
			Circuit  string            `json:"circuit"`
			Findings []netlist.Finding `json:"findings"`
		}{Circuit: n.Name, Findings: shown}); err != nil {
			return err
		}
	} else {
		if len(shown) == 0 {
			fmt.Printf("%s: clean\n", n.Name)
		}
		for _, f := range shown {
			fmt.Printf("%s: %v\n", n.Name, f)
		}
	}
	warnings := 0
	for _, f := range findings {
		if f.Severity == netlist.SeverityWarning {
			warnings++
		}
	}
	if warnings > 0 {
		return fmt.Errorf("%d warning(s)", warnings)
	}
	return nil
}
