// Command glitchsim regenerates every table and figure of "Analysis and
// Reduction of Glitches in Synchronous Networks" (DATE 1995) and exposes
// the underlying tools: activity simulation, retiming, power estimation,
// VCD dumping and netlist export.
//
// Usage:
//
//	glitchsim <subcommand> [flags]
//
// Subcommands:
//
//	worstcase  §3.1/Figure 3: worst-case RCA transition count + probability
//	fig5       Figure 5: per-bit useful/useless transitions, analytic vs sim
//	table1     Table 1: array vs wallace multipliers, 8x8 and 16x16
//	table2     Table 2: dsum=dcarry vs dsum=2*dcarry
//	dirdet     §4.2: direction detector activity study
//	table3     Table 3: power breakdown of four retimed variants
//	fig10      Figure 10: power vs flipflop count sweep
//	sim        activity measurement of a named circuit
//	retime     retime/pipeline a named circuit and report the result
//	vcd        dump a VCD waveform of a simulation run
//	dot        write a Graphviz netlist drawing
//	lint       netlist lint pass: floating/dead/looping structure
//	ablate     extra studies: inertial, zero-delay, granularity, stimulus
//	all        run every paper experiment in sequence
package main

import (
	"flag"
	"fmt"
	"os"

	"glitchsim"
)

var commands = map[string]func(args []string) error{
	"worstcase": cmdWorstCase,
	"fig5":      cmdFig5,
	"table1":    cmdTable1,
	"table2":    cmdTable2,
	"dirdet":    cmdDirDet,
	"table3":    cmdTable3,
	"fig10":     cmdFig10,
	"sim":       cmdSim,
	"retime":    cmdRetime,
	"vcd":       cmdVCD,
	"dot":       cmdDOT,
	"ablate":    cmdAblate,
	"balance":   cmdBalance,
	"adders":    cmdAdders,
	"mults":     cmdMults,
	"corr":      cmdCorr,
	"verilog":   cmdVerilog,
	"lint":      cmdLint,
	"stats":     cmdStats,
	"power":     cmdPower,
	"json":      cmdJSON,
	"all":       cmdAll,
}

// workers is the shared worker-pool size for the experiment drivers,
// settable as either -workers or -parallel ahead of the subcommand.
var workers int

// lanes is the word-parallel stimulus lane count per measurement:
// 1 forces the historical single-stream simulation, 0 keeps the default
// of 64 lanes (one pattern per bit of a machine word).
var lanes int

// format selects the experiment output encoding: "text" renders the
// report tables, "json" emits the service layer's JSON shapes, so
// scripted pipelines see the same schema from the CLI and glitchsimd.
var format string

func init() {
	flag.IntVar(&workers, "workers", 0, "measurement worker goroutines (0 = all CPUs)")
	flag.IntVar(&workers, "parallel", 0, "alias for -workers")
	flag.IntVar(&lanes, "lanes", 0, "word-parallel stimulus lanes per measurement (1 = scalar kernel, 0 = 64)")
	flag.StringVar(&format, "format", "text", "experiment output format: text or json")
}

// jsonOut reports whether -format json was requested.
func jsonOut() bool { return format == "json" }

func main() {
	flag.Usage = usage
	flag.Parse()
	glitchsim.SetDefaultWorkers(workers)
	glitchsim.SetDefaultLanes(lanes)
	if format != "text" && format != "json" {
		fmt.Fprintf(os.Stderr, "glitchsim: unknown -format %q (text or json)\n", format)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, ok := commands[args[0]]
	if !ok {
		fmt.Fprintf(os.Stderr, "glitchsim: unknown subcommand %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
	if err := cmd(args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "glitchsim %s: %v\n", args[0], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `glitchsim - transition activity analysis and glitch reduction (DATE'95)

usage: glitchsim [-workers N] <subcommand> [flags]

global flags:
  -workers N    measurement worker goroutines for the experiment drivers
                (alias -parallel; 0 = all CPUs)
  -format FMT   experiment output: text (default) or json (the glitchsimd
                service schema)

paper experiments:
  worstcase   worst-case RCA transitions and probability (Fig 3, §3.1)
  fig5        per-bit useful/useless transitions of an RCA (Figure 5)
  table1      array vs wallace multiplier activity (Table 1)
  table2      sum/carry delay imbalance study (Table 2)
  dirdet      direction detector activity (§4.2)
  table3      power breakdown of retimed variants (Table 3)
  fig10       power before retiming + vs-flipflop sweep (Figure 10)
  all         run all of the above

tools (every -circuit flag below also accepts -verilog file.v or
-netlist file.json to bring your own circuit):
  sim         measure activity of a circuit (-circuit, -cycles, -seed,
              -stimulus file.vcd replays recorded waveforms, ...)
  retime      retime/pipeline a circuit (-circuit, -period | -stages)
  vcd         dump a waveform (-circuit, -cycles, -out)
  dot         write a Graphviz drawing (-circuit, -out)
  ablate      inertial / zero-delay / granularity / stimulus studies
  balance     delay-path balancing study (the paper's other reduction)
  adders      ripple vs carry-select vs lookahead activity comparison
  mults       array vs wallace vs booth multiplier comparison
  corr        signal-correlation decay through the direction detector
  verilog     export a circuit as structural Verilog (-circuit, -out)
  json        export a circuit as JSON (-circuit, -out)
  lint        netlist lint: floating inputs, dead cells, loops, fanout
              profile (-circuit; nonzero exit on warnings)
  stats       per-bus signal statistics of a circuit
  power       power breakdown + hottest nets of a circuit

run 'glitchsim <subcommand> -h' for flags.
`)
}
