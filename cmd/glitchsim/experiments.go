package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"glitchsim"
	"glitchsim/internal/report"
	"glitchsim/internal/service"
)

// emitJSON writes v to stdout in the service layer's JSON encoding; the
// -format json path of every experiment subcommand funnels through it.
func emitJSON(v any) error { return service.WriteJSON(os.Stdout, v) }

func cmdWorstCase(args []string) error {
	fs := flag.NewFlagSet("worstcase", flag.ExitOnError)
	n := fs.Int("n", 4, "adder width in bits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := glitchsim.DefaultEngine().WorstCase(context.Background(),
		glitchsim.ExperimentRequest{Width: *n})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(res)
	}
	fmt.Printf("Worst case of an N=%d bit ripple-carry adder (paper §3.1, Figure 3)\n\n", res.N)
	fmt.Printf("  previous operands: A=%0*b B=%0*b (alternating carries)\n", res.N, res.PrevA, res.N, res.PrevB)
	fmt.Printf("  new operands:      A=%0*b B=%0*b (kill at stage 0, propagate above)\n\n", res.N, res.NewA, res.N, res.NewB)
	tb := report.NewTable("", "signal", "timeline model", "event-driven sim", "expected")
	tb.AddRowf(fmt.Sprintf("S%d", res.N-1), res.TimelineSumTransitions, res.SimSumTransitions, res.N)
	tb.AddRowf(fmt.Sprintf("C%d", res.N), res.TimelineCarryTransitions, res.SimCarryTransitions, res.N)
	fmt.Println(tb)
	fmt.Printf("probability of the worst case under random inputs: 3*(1/8)^%d = %.3g\n", res.N, res.Probability)
	return nil
}

func cmdFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	n := fs.Int("n", 16, "adder width in bits")
	cycles := fs.Int("cycles", 4000, "random input vectors")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	chart := fs.Bool("chart", true, "render bar charts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := glitchsim.DefaultEngine().Figure5(context.Background(),
		glitchsim.ExperimentRequest{Width: *n, Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(res)
	}
	fmt.Printf("Figure 5: %d-bit RCA, %d random inputs\n\n", res.N, res.Cycles)
	tb := report.NewTable("per-bit transitions (analytic | simulated)",
		"bit", "kind", "useful(eq)", "useless(eq)", "useful(sim)", "useless(sim)")
	for _, b := range res.Bits {
		tb.AddRowf(b.Bit, b.Kind, b.AnalyticUseful, b.AnalyticUseless, b.SimUseful, b.SimUseless)
	}
	fmt.Println(tb)
	fmt.Printf("analytic totals (paper): total=%d useful=%d useless=%d (L/F=%.2f)\n",
		res.AnalyticTotal, res.AnalyticUseful, res.AnalyticUseless,
		float64(res.AnalyticUseless)/float64(res.AnalyticUseful))
	fmt.Printf("simulated totals:        total=%d useful=%d useless=%d (L/F=%.2f)\n\n",
		res.Sim.Transitions, res.Sim.Useful, res.Sim.Useless, res.Sim.LOverF())
	if *chart {
		var labels []string
		var useful, useless report.Series
		useful.Name, useless.Name = "useful", "useless"
		for _, b := range res.Bits {
			if b.Kind != "sum" {
				continue
			}
			labels = append(labels, fmt.Sprintf("s%d", b.Bit))
			useful.Values = append(useful.Values, float64(b.SimUseful))
			useless.Values = append(useless.Values, float64(b.SimUseless))
		}
		fmt.Println(report.Chart("sum bits", labels, []report.Series{useful, useless}, 40))
	}
	return nil
}

func multTable(title string, rows []glitchsim.MultRow) *report.Table {
	tb := report.NewTable(title, "architecture", "size", "dsum/dcarry", "total", "useful F", "useless L", "L/F")
	for _, r := range rows {
		tb.AddRowf(r.Arch, fmt.Sprintf("%dx%d", r.Width, r.Width),
			fmt.Sprintf("%d/%d", r.DSum, r.DCarry),
			r.Transitions, r.Useful, r.Useless, r.LOverF())
	}
	return tb
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	cycles := fs.Int("cycles", 500, "random input vectors")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().Table1(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(service.RowsResponse{Rows: service.MultRowsFrom(rows)})
	}
	fmt.Println(multTable(fmt.Sprintf("Table 1: transition activity for %d random inputs (unit delay)", *cycles), rows))
	fmt.Println("paper reference (500 inputs): array 8x8 L/F=1.51, 16x16 L/F=3.26; wallace 8x8 L/F=0.28, 16x16 L/F=0.16")
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	cycles := fs.Int("cycles", 500, "random input vectors")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().Table2(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(service.RowsResponse{Rows: service.MultRowsFrom(rows)})
	}
	fmt.Println(multTable(fmt.Sprintf("Table 2: 8x8 multipliers, %d random inputs, sum/carry delay imbalance", *cycles), rows))
	fmt.Println("paper reference: array 1.46 -> 2.01, wallace 0.29 -> 0.64")
	return nil
}

func cmdDirDet(args []string) error {
	fs := flag.NewFlagSet("dirdet", flag.ExitOnError)
	cycles := fs.Int("cycles", 4320, "random input vectors (paper: 4320)")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := glitchsim.DefaultEngine().DirectionDetector42(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(service.ActivityFrom(res.Activity))
	}
	fmt.Printf("Direction detector (§4.2), %d random inputs:\n\n", *cycles)
	fmt.Printf("  number of useful transitions:  %d\n", res.Useful)
	fmt.Printf("  number of useless transitions: %d\n", res.Useless)
	fmt.Printf("  ratio useless/useful:          %.2f   (paper: 3.79)\n", res.LOverF())
	fmt.Printf("  balance reduction limit:       %.1f   (paper: 4.8)\n", res.BalanceLimit)
	return nil
}

func table3Table(title string, rows []glitchsim.Table3Row) *report.Table {
	tb := report.NewTable(title,
		"circuit", "period", "latency", "#ff", "area mm2", "cclk pF",
		"logic mW", "ff mW", "clock mW", "total mW", "L/F")
	for _, r := range rows {
		tb.AddRowf(r.Circuit, r.Period, r.Latency, r.FFs, r.AreaMM2, r.ClockCapPF,
			r.LogicMW, r.FlipflopMW, r.ClockMW, r.TotalMW, r.LOverF)
	}
	return tb
}

func cmdTable3(args []string) error {
	fs := flag.NewFlagSet("table3", flag.ExitOnError)
	cycles := fs.Int("cycles", 200, "measured cycles per variant")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := glitchsim.DefaultEngine().Table3(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(service.Table3Response{Rows: service.Table3RowsFrom(rows)})
	}
	fmt.Println(table3Table("Table 3: power dissipation of retimed direction detector variants", rows))
	fmt.Println("paper reference: ffs 48/174/218/350, logic 21.8/9.7/7.5/6.1 mW, total 23.2/14.5/13.4/15.5 mW (minimum at circuit 3)")
	return nil
}

func cmdFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ExitOnError)
	cycles := fs.Int("cycles", 120, "measured cycles per point")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := glitchsim.DefaultEngine().Figure10(context.Background(),
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	if jsonOut() {
		return emitJSON(service.Fig10From(res))
	}
	fmt.Println(table3Table(
		fmt.Sprintf("Figure 10: %s before retiming (circuit 0) and retimed sweep", res.Subject),
		append([]glitchsim.Table3Row{res.Before}, res.Points...)))
	labels := []string{fmt.Sprintf("%dff*", res.Before.FFs)}
	series := []report.Series{{Name: "total"}, {Name: "logic"}, {Name: "ff"}, {Name: "clock"}}
	for _, r := range append([]glitchsim.Table3Row{res.Before}, res.Points...) {
		series[0].Values = append(series[0].Values, r.TotalMW)
		series[1].Values = append(series[1].Values, r.LogicMW)
		series[2].Values = append(series[2].Values, r.FlipflopMW)
		series[3].Values = append(series[3].Values, r.ClockMW)
	}
	for _, r := range res.Points {
		labels = append(labels, fmt.Sprintf("%dff", r.FFs))
	}
	fmt.Println(report.Chart("power dissipation (mW) vs flipflops (* = before retiming)", labels, series, 40))
	return nil
}

func cmdAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	cycles := fs.Int("cycles", 300, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	inert, err := glitchsim.DefaultEngine().AblationInertial(ctx,
		glitchsim.ExperimentRequest{Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("A1 transport vs inertial (dirdet8, typical delays):\n  transport: %v\n  inertial:  %v\n\n", inert.A, inert.B)

	zd, err := glitchsim.DefaultEngine().AblationZeroDelay(ctx,
		glitchsim.ExperimentRequest{Width: 16, Cycles: *cycles * 4, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("A2 zero-delay estimator vs event-driven (rca16):\n")
	fmt.Printf("  estimated %.2f transitions/cycle, measured %.2f (useful %.2f)\n",
		zd.EstimatedPerCycle, zd.MeasuredPerCycle, zd.UsefulPerCycle)
	fmt.Printf("  glitch-blind underestimate factor: %.2f\n\n", zd.Underestimate())

	gran, err := glitchsim.DefaultEngine().AblationGranularity(ctx,
		glitchsim.ExperimentRequest{Width: 8, Cycles: *cycles, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("A4 FA-cell vs gate-level granularity (rca8):\n  cells: %v\n  gates: %v\n\n", gran.A, gran.B)

	gray, err := glitchsim.DefaultEngine().GraySweep(ctx,
		glitchsim.ExperimentRequest{Cycles: *cycles})
	if err != nil {
		return err
	}
	fmt.Println("A6 stimulus statistics (dirdet8):")
	for _, g := range gray {
		fmt.Printf("  %v\n", g)
	}

	seeds, err := glitchsim.DefaultEngine().SeedSweep(ctx,
		glitchsim.ExperimentRequest{Cycles: *cycles, Seeds: []uint64{1, 2, 3, 4, 5}})
	if err != nil {
		return err
	}
	fmt.Println("\nA5 seed sensitivity (8x8 array vs wallace L/F):")
	for _, s := range seeds {
		fmt.Printf("  %s: array %.3f, wallace %.3f\n", s.Name, s.A.LOverF(), s.B.LOverF())
	}
	return nil
}

func cmdAll(args []string) error {
	for _, c := range []struct {
		name string
		run  func([]string) error
	}{
		{"worstcase", cmdWorstCase},
		{"fig5", cmdFig5},
		{"table1", cmdTable1},
		{"table2", cmdTable2},
		{"dirdet", cmdDirDet},
		{"table3", cmdTable3},
		{"fig10", cmdFig10},
		{"ablate", cmdAblate},
		{"balance", cmdBalance},
		{"adders", cmdAdders},
		{"corr", cmdCorr},
	} {
		fmt.Printf("==================== %s ====================\n", c.name)
		if err := c.run(nil); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Println()
	}
	return nil
}
