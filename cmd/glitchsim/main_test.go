package main

import (
	"strings"
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/netlist"
	"glitchsim/internal/registry"
)

func TestBuildCircuitAllNames(t *testing.T) {
	for _, name := range registry.Names() {
		n, err := buildCircuit(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: invalid netlist: %v", name, err)
		}
		if n.InputWidth() == 0 || n.OutputWidth() == 0 {
			t.Errorf("%s: degenerate interface", name)
		}
	}
}

func TestBuildCircuitUnknown(t *testing.T) {
	_, err := buildCircuit("nope")
	if err == nil || !strings.Contains(err.Error(), "available") {
		t.Fatalf("want descriptive error, got %v", err)
	}
}

func TestCircuitNamesSorted(t *testing.T) {
	names := strings.Split(circuitNames(), ", ")
	if len(names) != len(registry.Names()) {
		t.Fatal("name list incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names unsorted")
		}
	}
}

func TestDelayFlag(t *testing.T) {
	if delayFlag(1, 1, false).Name() != delay.Unit().Name() {
		t.Error("default should be unit")
	}
	if !strings.Contains(delayFlag(2, 1, false).Name(), "dsum=2") {
		t.Error("fa ratio not selected")
	}
	if delayFlag(1, 1, true).Name() != "typical" {
		t.Error("typical not selected")
	}
	if !strings.Contains(delayFlag(3, 3, false).Name(), "3") {
		t.Error("uniform not selected")
	}
}

func TestExperimentCommandsRunQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment commands in -short mode")
	}
	// Exercise each experiment entry point with tiny workloads; output
	// goes to stdout but correctness is the absence of errors.
	cases := map[string][]string{
		"worstcase": {"-n", "3"},
		"fig5":      {"-n", "4", "-cycles", "50", "-chart=false"},
		"table1":    {"-cycles", "20"},
		"table2":    {"-cycles", "20"},
		"dirdet":    {"-cycles", "50"},
		"adders":    {"-width", "8", "-cycles", "30"},
		"corr":      {"-cycles", "200"},
		"sim":       {"-circuit", "rca4", "-cycles", "30"},
		"retime":    {"-circuit", "rca8", "-stages", "1", "-cycles", "30"},
	}
	for name, args := range cases {
		if err := commands[name](args); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHazardCircuit(t *testing.T) {
	n := buildHazard()
	if n.NumCells() != 2 || n.Name != "hazard" {
		t.Error("hazard circuit wrong")
	}
	if n.NetByName("a") == netlist.NoNet {
		t.Error("input missing")
	}
}
