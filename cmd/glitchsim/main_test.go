package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"glitchsim/internal/delay"
	"glitchsim/internal/registry"
	"glitchsim/netlist"
	"glitchsim/verilog"
)

func TestBuildCircuitAllNames(t *testing.T) {
	for _, name := range registry.Names() {
		n, err := buildCircuit(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: invalid netlist: %v", name, err)
		}
		if n.InputWidth() == 0 || n.OutputWidth() == 0 {
			t.Errorf("%s: degenerate interface", name)
		}
	}
}

func TestBuildCircuitUnknown(t *testing.T) {
	_, err := buildCircuit("nope")
	if err == nil || !strings.Contains(err.Error(), "available") {
		t.Fatalf("want descriptive error, got %v", err)
	}
}

func TestCircuitNamesSorted(t *testing.T) {
	names := strings.Split(circuitNames(), ", ")
	if len(names) != len(registry.Names()) {
		t.Fatal("name list incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names unsorted")
		}
	}
}

func TestDelayFlag(t *testing.T) {
	if delayFlag(1, 1, false).Name() != delay.Unit().Name() {
		t.Error("default should be unit")
	}
	if !strings.Contains(delayFlag(2, 1, false).Name(), "dsum=2") {
		t.Error("fa ratio not selected")
	}
	if delayFlag(1, 1, true).Name() != "typical" {
		t.Error("typical not selected")
	}
	if !strings.Contains(delayFlag(3, 3, false).Name(), "3") {
		t.Error("uniform not selected")
	}
}

func TestExperimentCommandsRunQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment commands in -short mode")
	}
	// Exercise each experiment entry point with tiny workloads; output
	// goes to stdout but correctness is the absence of errors.
	cases := map[string][]string{
		"worstcase": {"-n", "3"},
		"fig5":      {"-n", "4", "-cycles", "50", "-chart=false"},
		"table1":    {"-cycles", "20"},
		"table2":    {"-cycles", "20"},
		"dirdet":    {"-cycles", "50"},
		"adders":    {"-width", "8", "-cycles", "30"},
		"corr":      {"-cycles", "200"},
		"sim":       {"-circuit", "rca4", "-cycles", "30"},
		"retime":    {"-circuit", "rca8", "-stages", "1", "-cycles", "30"},
	}
	for name, args := range cases {
		if err := commands[name](args); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHazardCircuit(t *testing.T) {
	n := buildHazard()
	if n.NumCells() != 2 || n.Name != "hazard" {
		t.Error("hazard circuit wrong")
	}
	if n.NetByName("a") == netlist.NoNet {
		t.Error("input missing")
	}
}

// TestCircuitSelectorFiles: the -verilog and -netlist flags load a
// circuit from disk and resolve to the same structure (fingerprint) as
// the registry build they were exported from.
func TestCircuitSelectorFiles(t *testing.T) {
	n, err := buildCircuit("rca4")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	vPath := filepath.Join(dir, "rca4.v")
	var vb strings.Builder
	if err := verilog.Write(&vb, n); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vPath, []byte(vb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	jPath := filepath.Join(dir, "rca4.json")
	var jb strings.Builder
	if err := n.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jPath, []byte(jb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	for flagName, path := range map[string]string{"-verilog": vPath, "-netlist": jPath} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		sel := addCircuitFlags(fs, "rca16")
		if err := fs.Parse([]string{flagName, path}); err != nil {
			t.Fatal(err)
		}
		got, err := sel.build()
		if err != nil {
			t.Fatalf("%s: %v", flagName, err)
		}
		if got.Fingerprint() != n.Fingerprint() {
			t.Errorf("%s: fingerprint differs from registry build", flagName)
		}
	}

	// Both files set: a clear error instead of a silent pick.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sel := addCircuitFlags(fs, "rca16")
	if err := fs.Parse([]string{"-verilog", vPath, "-netlist", jPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := sel.build(); err == nil {
		t.Error("conflicting -verilog/-netlist accepted")
	}

	// The sim subcommand end to end on a file circuit.
	if err := commands["sim"]([]string{"-verilog", vPath, "-cycles", "10"}); err != nil {
		t.Errorf("sim -verilog: %v", err)
	}
}
