package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"glitchsim"
	"glitchsim/internal/power"
	"glitchsim/internal/report"
	"glitchsim/internal/sim"
	"glitchsim/internal/stats"
	"glitchsim/internal/stimulus"
)

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	sel := addCircuitFlags(fs, "dirdet8")
	cycles := fs.Int("cycles", 2000, "simulated cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	collector := stats.NewCollector(n, nil)
	s := sim.New(n, sim.Options{})
	s.AttachMonitor(collector)
	src := stimulus.NewRandom(n.InputWidth(), *seed)
	for i := 0; i < *cycles; i++ {
		if err := s.Step(src.Next()); err != nil {
			return err
		}
	}
	buses := make([]string, 0, len(n.Buses))
	for name := range n.Buses {
		buses = append(buses, name)
	}
	sort.Strings(buses)
	tb := report.NewTable(fmt.Sprintf("signal statistics of %s (%d random cycles)", n.Name, *cycles),
		"bus", "bits", "P(1)", "toggle rate", "|lag-1 autocorr|")
	for _, bus := range buses {
		sum := collector.Bus(bus)
		tb.AddRowf(bus, len(n.Bus(bus)), sum.MeanProb, sum.MeanToggle, sum.MeanAbsAutocorr)
	}
	fmt.Println(tb)
	return nil
}

func cmdPower(args []string) error {
	fs := flag.NewFlagSet("power", flag.ExitOnError)
	sel := addCircuitFlags(fs, "dirdet8r")
	cycles := fs.Int("cycles", 500, "measured cycles")
	seed := fs.Uint64("seed", 1, "stimulus seed")
	top := fs.Int("top", 12, "list the N hottest nets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	tech := glitchsim.DefaultTech()
	counter, err := glitchsim.DefaultEngine().MeasureDetailed(context.Background(), glitchsim.MeasureRequest{
		Circuit: glitchsim.CircuitFromNetlist(n),
		Config:  glitchsim.Config{Cycles: *cycles, Seed: *seed},
	})
	if err != nil {
		return err
	}
	bd := power.FromActivity(counter, tech)
	fmt.Printf("%s: %v\n\n", n.Name, bd)
	if *top > 0 {
		tb := report.NewTable("hottest combinational nets",
			"net", "uW", "rising/cycle", "cap fF")
		for _, np := range power.TopConsumers(counter, tech, *top) {
			tb.AddRowf(np.Net, np.PowerW*1e6,
				float64(np.Rising)/float64(counter.Cycles()), np.CapF*1e15)
		}
		fmt.Println(tb)
	}
	return nil
}

func cmdJSON(args []string) error {
	fs := flag.NewFlagSet("json", flag.ExitOnError)
	sel := addCircuitFlags(fs, "rca8")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	n, err := sel.build()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return n.WriteJSON(w)
}
