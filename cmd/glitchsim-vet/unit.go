package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"

	"glitchsim/internal/analysis"
)

// unitConfig mirrors the JSON the go command writes next to each
// compilation unit when driving a -vettool (the unitchecker protocol).
// Field names must match; unknown fields are ignored.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit executes the analyzer suite over one compilation unit,
// printing diagnostics to stderr. It returns the process exit code:
// 0 clean, 2 findings.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The go command asks for a facts file (vetx) for every dependency
	// of the vetted packages. None of our analyzers use cross-package
	// facts, so dependency runs are pure bookkeeping: write the (empty)
	// facts file and skip parsing/typechecking entirely.
	writeVetx := func() error {
		if cfg.VetxOutput != "" {
			return os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
		return nil
	}
	if cfg.VetxOnly {
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx()
			}
			return 0, err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// compiled: ImportMap takes the path as written to the canonical
	// package path, PackageFile takes that to an export data file.
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 0, err
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	if err := writeVetx(); err != nil {
		return 0, err
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
